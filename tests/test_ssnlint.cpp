// Unit tests for the ssnlint rule engine: every rule class is demonstrated
// against fixture snippets, both firing and staying quiet, plus the
// suppression syntax and the comment/string stripper.
#include "ssnlint_core.hpp"
#include "ssnlint_output.hpp"
#include "ssnlint_project.hpp"
#include "ssnlint_registry.hpp"
#include "ssnlint_units.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using ssnlint::Diagnostic;
using ssnlint::lint_source;

std::vector<Diagnostic> lint(const std::string& src) {
  return lint_source("fixture.cpp", src);
}

int count_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return int(std::count_if(diags.begin(), diags.end(),
                           [&](const Diagnostic& d) { return d.rule == rule; }));
}

// --- SSN-L001: exact floating-point comparison ------------------------------

TEST(SsnlintL001, FlagsExactFloatLiteralComparison) {
  const auto d = lint("bool f(double x) { return x == 0.3; }\n");
  ASSERT_EQ(count_rule(d, "SSN-L001"), 1);
  EXPECT_EQ(d[0].line, 1);
}

TEST(SsnlintL001, FlagsBothSidesAndNotEquals) {
  EXPECT_EQ(count_rule(lint("bool f(double x) { return 1.5 != x; }\n"), "SSN-L001"), 1);
  EXPECT_EQ(count_rule(lint("bool f(double x) { return x == 1e-6; }\n"), "SSN-L001"), 1);
  EXPECT_EQ(count_rule(lint("bool f(double x) { return x == -0.5; }\n"), "SSN-L001"), 1);
  EXPECT_EQ(count_rule(lint("bool f(float x) { return x == 2.0f; }\n"), "SSN-L001"), 1);
}

TEST(SsnlintL001, IgnoresIntegerAndRelationalComparisons) {
  EXPECT_EQ(count_rule(lint("bool f(int i) { return i == 3; }\n"), "SSN-L001"), 0);
  EXPECT_EQ(count_rule(lint("bool f(double x) { return x <= 0.5; }\n"), "SSN-L001"), 0);
  EXPECT_EQ(count_rule(lint("bool f(unsigned u) { return u == 0x10; }\n"), "SSN-L001"), 0);
  EXPECT_EQ(count_rule(lint("bool f(double a, double b) { return a == b; }\n"),
                       "SSN-L001"), 0);  // literal-free compares are out of scope
}

TEST(SsnlintL001, SuppressionOnSameLineAndLineAbove) {
  EXPECT_EQ(count_rule(lint("bool f(double x) {\n"
                            "  return x == 0.0;  // ssnlint-ignore(SSN-L001)\n"
                            "}\n"),
                       "SSN-L001"), 0);
  EXPECT_EQ(count_rule(lint("bool f(double x) {\n"
                            "  // exact-zero skip is intentional\n"
                            "  // ssnlint-ignore(SSN-L001)\n"
                            "  return x == 0.0;\n"
                            "}\n"),
                       "SSN-L001"), 0);
  // A suppression for a different rule does not hide the violation.
  EXPECT_EQ(count_rule(lint("bool f(double x) {\n"
                            "  return x == 0.0;  // ssnlint-ignore(SSN-L002)\n"
                            "}\n"),
                       "SSN-L001"), 1);
  // Comma-separated rule lists work.
  EXPECT_EQ(count_rule(lint("bool f(double x) {\n"
                            "  return x == 0.0;  // ssnlint-ignore(SSN-L002, SSN-L001)\n"
                            "}\n"),
                       "SSN-L001"), 0);
}

// --- SSN-L002: std::rand / srand --------------------------------------------

TEST(SsnlintL002, FlagsRandAndSrand) {
  const auto d = lint("#include <cstdlib>\n"
                      "int f() { srand(42); return std::rand(); }\n");
  EXPECT_EQ(count_rule(d, "SSN-L002"), 2);
}

TEST(SsnlintL002, IgnoresMemberNamedRandAndMt19937) {
  EXPECT_EQ(count_rule(lint("int f(Gen& g) { return g.rand(); }\n"), "SSN-L002"), 0);
  EXPECT_EQ(count_rule(lint("double f() { std::mt19937 rng(7); return 0.5; }\n"),
                       "SSN-L002"), 0);
}

// --- SSN-L003: unguarded solver entry points --------------------------------

TEST(SsnlintL003, FlagsUnguardedSolver) {
  const auto d = lint("Vector solve_system(const Matrix& a, const Vector& b) {\n"
                      "  return lu(a).back_substitute(b);\n"
                      "}\n");
  ASSERT_EQ(count_rule(d, "SSN-L003"), 1);
  EXPECT_EQ(d[0].line, 1);
}

TEST(SsnlintL003, GuardedSolverIsClean) {
  EXPECT_EQ(count_rule(lint("Vector solve_system(const Matrix& a, const Vector& b) {\n"
                            "  SSN_REQUIRE(a.rows() == b.size(), \"shape\");\n"
                            "  return lu(a).back_substitute(b);\n"
                            "}\n"),
                       "SSN-L003"), 0);
  EXPECT_EQ(count_rule(lint("Vector rk45(const Rhs& f, Vector y0) {\n"
                            "  SSN_ASSERT_FINITE(y0);\n"
                            "  return y0;\n"
                            "}\n"),
                       "SSN-L003"), 0);
}

TEST(SsnlintL003, PrototypesAndCallsAreNotDefinitions) {
  EXPECT_EQ(count_rule(lint("Vector solve_system(const Matrix&, const Vector&);\n"),
                       "SSN-L003"), 0);
  EXPECT_EQ(count_rule(lint("void g() { auto x = solve_system(a, b); }\n"),
                       "SSN-L003"), 0);
  EXPECT_EQ(count_rule(lint("void g() { auto x = lu.solve(b); }\n"), "SSN-L003"), 0);
}

TEST(SsnlintL003, NonSolverNamesAreNotFlagged) {
  EXPECT_EQ(count_rule(lint("int frobnicate(int x) { return x; }\n"), "SSN-L003"), 0);
  EXPECT_EQ(count_rule(lint("int run_cli(int argc) { return argc; }\n"), "SSN-L003"), 0);
}

// --- SSN-L004: uninitialized double members ---------------------------------

TEST(SsnlintL004, FlagsBareDoubleMember) {
  const auto d = lint("struct Point {\n  double x;\n  double y = 0.0;\n  int n;\n};\n");
  ASSERT_EQ(count_rule(d, "SSN-L004"), 1);
  EXPECT_EQ(d[0].line, 2);
  EXPECT_NE(d[0].message.find("'double x'"), std::string::npos);
}

TEST(SsnlintL004, FlagsEachNameInCommaList) {
  EXPECT_EQ(count_rule(lint("struct Q { double a, b; };\n"), "SSN-L004"), 2);
  EXPECT_EQ(count_rule(lint("struct Q { double a = 1.0, b; };\n"), "SSN-L004"), 1);
}

TEST(SsnlintL004, InitializedAndNonMemberDoublesAreClean) {
  EXPECT_EQ(count_rule(lint("struct P { double x = 0.0; double y{1.0}; };\n"),
                       "SSN-L004"), 0);
  // Function parameters and locals inside member functions are not members.
  EXPECT_EQ(count_rule(lint("struct P {\n"
                            "  double f(double v) const { double t = v; return t; }\n"
                            "  double z = 0.0;\n"
                            "};\n"),
                       "SSN-L004"), 0);
  // Free functions are not structs.
  EXPECT_EQ(count_rule(lint("double f() { double local; return local; }\n"),
                       "SSN-L004"), 0);
}

// --- SSN-L005: catch (...) swallowing ---------------------------------------

TEST(SsnlintL005, FlagsSwallowingCatchAll) {
  const auto d = lint("void f() {\n  try { g(); } catch (...) { count++; }\n}\n");
  ASSERT_EQ(count_rule(d, "SSN-L005"), 1);
  EXPECT_EQ(d[0].line, 2);
}

TEST(SsnlintL005, RethrowingCatchAllIsClean) {
  EXPECT_EQ(count_rule(lint("void f() {\n"
                            "  try { g(); } catch (...) { cleanup(); throw; }\n"
                            "}\n"),
                       "SSN-L005"), 0);
  EXPECT_EQ(count_rule(lint("void f() {\n"
                            "  try { g(); } catch (const std::exception& e) { log(e); }\n"
                            "}\n"),
                       "SSN-L005"), 0);
}

// --- SSN-L006: bare runtime_error in solver code ----------------------------

TEST(SsnlintL006, FlagsBareRuntimeErrorInSolverLayers) {
  const std::string src =
      "void f() { throw std::runtime_error(\"singular\"); }\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/engine.cpp", src), "SSN-L006"), 1);
  EXPECT_EQ(count_rule(lint_source("src/numeric/lu.cpp", src), "SSN-L006"), 1);
  // Unqualified spelling (using std::runtime_error) is caught too.
  EXPECT_EQ(count_rule(lint_source("src/sim/x.cpp",
                                   "void f() { throw runtime_error(\"x\"); }\n"),
                       "SSN-L006"),
            1);
}

TEST(SsnlintL006, OtherLayersAndTypedThrowsAreClean) {
  const std::string bare =
      "void f() { throw std::runtime_error(\"boom\"); }\n";
  EXPECT_EQ(count_rule(lint_source("src/waveform/waveform.cpp", bare),
                       "SSN-L006"), 0);
  EXPECT_EQ(count_rule(lint_source("fixture.cpp", bare), "SSN-L006"), 0);
  // The typed SolverError (which derives runtime_error) does not trip it.
  EXPECT_EQ(count_rule(lint_source(
                "src/sim/engine.cpp",
                "void f() { throw support::SolverError(kind, \"m\", d); }\n"),
            "SSN-L006"), 0);
  // Deriving from runtime_error is fine; only throwing it bare is not.
  EXPECT_EQ(count_rule(lint_source(
                "src/numeric/x.hpp",
                "class E : public std::runtime_error { using runtime_error::runtime_error; };\n"),
            "SSN-L006"), 0);
}

TEST(SsnlintL006, SuppressionWorks) {
  EXPECT_EQ(count_rule(lint_source(
                "src/sim/legacy.cpp",
                "void f() {\n"
                "  throw std::runtime_error(\"x\");  // ssnlint-ignore(SSN-L006)\n"
                "}\n"),
            "SSN-L006"), 0);
}

// --- SSN-L007: bare numeric-conversion calls --------------------------------

TEST(SsnlintL007, FlagsBareStodAndFriends) {
  const auto d = lint("double f(const std::string& s) { return std::stod(s); }\n");
  ASSERT_EQ(count_rule(d, "SSN-L007"), 1);
  EXPECT_EQ(d[0].line, 1);
  EXPECT_EQ(count_rule(lint("int f(const char* s) { return atoi(s); }\n"),
            "SSN-L007"), 1);
  EXPECT_EQ(count_rule(lint("long f(const char* s) { return strtol(s, nullptr, 10); }\n"),
            "SSN-L007"), 1);
  EXPECT_EQ(count_rule(lint("int f(const std::string& s) { return std::stoll(s); }\n"),
            "SSN-L007"), 1);
}

TEST(SsnlintL007, HardenedParserFileIsAllowlisted) {
  const std::string src =
      "double f(const std::string& s) { return std::stod(s); }\n";
  EXPECT_EQ(count_rule(lint_source("src/io/diagnostics.cpp", src), "SSN-L007"), 0);
  // Only that exact file: same name elsewhere still fires.
  EXPECT_EQ(count_rule(lint_source("src/sim/diagnostics.cpp", src), "SSN-L007"), 1);
  EXPECT_EQ(count_rule(lint_source("src/io/csv.cpp", src), "SSN-L007"), 1);
}

TEST(SsnlintL007, MemberCallsAndNonCallsAreClean) {
  // A member function named stod on an unrelated object is not the banned
  // std:: free function.
  EXPECT_EQ(count_rule(lint("double f(Conv& c) { return c.stod(\"1\"); }\n"),
            "SSN-L007"), 0);
  EXPECT_EQ(count_rule(lint("double f(Conv* c) { return c->stoi(\"1\"); }\n"),
            "SSN-L007"), 0);
  // Mentioning the name without calling it is fine.
  EXPECT_EQ(count_rule(lint("int stod_count = 0; // not a call\n"), "SSN-L007"), 0);
}

TEST(SsnlintL007, SuppressionWorks) {
  EXPECT_EQ(count_rule(lint(
                "double f(const std::string& s) {\n"
                "  return std::stod(s);  // ssnlint-ignore(SSN-L007)\n"
                "}\n"),
            "SSN-L007"), 0);
}

// --- SSN-L008: dense matrix builds inside loops in solver code --------------

TEST(SsnlintL008, FlagsMatrixCtorInLoopInSolverLayer) {
  const std::string src =
      "void newton() {\n"
      "  for (int it = 0; it < 50; ++it) {\n"
      "    Matrix a(n, n);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/sim/engine.cpp", src), "SSN-L008"), 1);
  EXPECT_EQ(count_rule(lint_source("src/numeric/ode.cpp", src), "SSN-L008"), 1);
  // Outside the solver layers the pattern is fine.
  EXPECT_EQ(count_rule(lint_source("src/analysis/sweeps.cpp", src), "SSN-L008"),
            0);
  EXPECT_EQ(count_rule(lint_source("fixture.cpp", src), "SSN-L008"), 0);
}

TEST(SsnlintL008, FlagsFromDenseAndTemporariesInLoops) {
  EXPECT_EQ(count_rule(lint_source(
                "src/sim/x.cpp",
                "void f() {\n"
                "  while (!done) {\n"
                "    auto s = SparseMatrix::from_dense(a);\n"
                "  }\n"
                "}\n"),
            "SSN-L008"), 1);
  EXPECT_EQ(count_rule(lint_source(
                "src/numeric/x.cpp",
                "void f() { do { use(Matrix(n, n)); } while (again()); }\n"),
            "SSN-L008"), 1);
  // Braceless single-statement loop body.
  EXPECT_EQ(count_rule(lint_source(
                "src/sim/x.cpp",
                "void f() {\n"
                "  for (int i = 0; i < k; ++i) frob(Matrix(n, n));\n"
                "}\n"),
            "SSN-L008"), 1);
}

TEST(SsnlintL008, QuietOutsideLoopsAndForReferences) {
  // A loop-free dense build (setup / factor-once) is fine.
  EXPECT_EQ(count_rule(lint_source("src/sim/x.cpp",
                                   "void f() { Matrix a(n, n); fill(a); }\n"),
            "SSN-L008"), 0);
  // References and parameters inside loops are not constructions.
  EXPECT_EQ(count_rule(lint_source(
                "src/sim/x.cpp",
                "void f(const Matrix& a) {\n"
                "  for (int i = 0; i < k; ++i) { stamp(a, i); }\n"
                "}\n"),
            "SSN-L008"), 0);
  // Member access named from_dense on another object is out of scope.
  EXPECT_EQ(count_rule(lint_source(
                "src/sim/x.cpp",
                "void f(Conv& c) { while (go()) { c.from_dense(a); } }\n"),
            "SSN-L008"), 0);
}

TEST(SsnlintL008, SuppressionWorks) {
  EXPECT_EQ(count_rule(lint_source(
                "src/numeric/levenberg_marquardt.cpp",
                "void f() {\n"
                "  for (int it = 0; it < 50; ++it) {\n"
                "    Matrix jtj(n, n);  // ssnlint-ignore(SSN-L008)\n"
                "  }\n"
                "}\n"),
            "SSN-L008"), 0);
}

// --- stripper ---------------------------------------------------------------

TEST(SsnlintStrip, CommentsAndStringsDoNotTrigger) {
  EXPECT_TRUE(lint("// bool f(double x) { return x == 0.3; }\n").empty());
  EXPECT_TRUE(lint("/* x == 0.3 and rand() live here */ int f();\n").empty());
  EXPECT_TRUE(lint("const char* s = \"x == 0.3 rand()\";\n").empty());
  EXPECT_TRUE(lint("const char* s = R\"(x == 0.3)\";\n").empty());
}

TEST(SsnlintStrip, LineNumbersSurviveMultilineComments) {
  const auto d = lint("/* a\n   b\n   c */\nbool f(double x) { return x == 0.3; }\n");
  ASSERT_EQ(int(d.size()), 1);
  EXPECT_EQ(d[0].line, 4);
}

TEST(SsnlintDriver, DiagnosticsAreSortedAndCountRules) {
  const auto d = lint("struct P { double x; };\n"
                      "bool f(double v) { return v == 0.25; }\n");
  ASSERT_EQ(int(d.size()), 2);
  EXPECT_LE(d[0].line, d[1].line);
  EXPECT_EQ(int(ssnlint::rule_catalog().size()), 14);
}

// --- SSN-L009: lifecycle hygiene --------------------------------------------

TEST(SsnlintL009, FlagsRawSignalCallsOutsideSupport) {
  const std::string sig = "void f() { signal(2, handler); }\n";
  const std::string act =
      "void f() { struct sigaction sa; sigaction(15, &sa, nullptr); }\n";
  const std::string rse = "void f() { std::raise(15); }\n";
  EXPECT_EQ(count_rule(lint_source("src/cli/commands.cpp", sig), "SSN-L009"), 1);
  // The declaration `struct sigaction sa;` is not a call; only the actual
  // sigaction(...) invocation fires.
  EXPECT_EQ(count_rule(lint_source("src/analysis/x.cpp", act), "SSN-L009"), 1);
  EXPECT_EQ(count_rule(lint_source("src/io/x.cpp", rse), "SSN-L009"), 1);
  // The support layer owns signal handling (ScopedSignalCancel lives there).
  EXPECT_EQ(count_rule(lint_source("src/support/runcontext.cpp", sig),
                       "SSN-L009"), 0);
  EXPECT_EQ(count_rule(lint_source("src/support/runcontext.cpp", act),
                       "SSN-L009"), 0);
  // Member calls on unrelated objects are not signal management.
  EXPECT_EQ(count_rule(lint_source("src/cli/x.cpp",
                                   "void f() { bus.raise(alarm); }\n"),
            "SSN-L009"), 0);
}

TEST(SsnlintL009, FlagsUnboundedAnalysisLoopsWithoutLifecyclePolling) {
  const std::string spin =
      "void drain() {\n"
      "  while (true) {\n"
      "    step();\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_source("src/analysis/montecarlo.cpp", spin),
                       "SSN-L009"), 1);
  EXPECT_EQ(count_rule(lint_source("src/analysis/x.cpp",
                                   "void f() { while (1) step(); }\n"),
            "SSN-L009"), 1);
  EXPECT_EQ(count_rule(lint_source("src/analysis/x.cpp",
                                   "void f() { for (;;) { step(); } }\n"),
            "SSN-L009"), 1);
  // Outside src/analysis the loop rule does not apply (the engine's stepping
  // loop is bounded by t_stop/max_steps and polls run_ctx itself).
  EXPECT_EQ(count_rule(lint_source("src/sim/engine.cpp", spin), "SSN-L009"), 0);
}

TEST(SsnlintL009, QuietWhenLoopPollsLifecycleLayer) {
  EXPECT_EQ(count_rule(lint_source(
                "src/analysis/x.cpp",
                "void f(const RunContext* ctx) {\n"
                "  while (true) {\n"
                "    if (ctx->stop_requested() != StopReason::kNone) break;\n"
                "    step();\n"
                "  }\n"
                "}\n"),
            "SSN-L009"), 0);
  EXPECT_EQ(count_rule(lint_source(
                "src/analysis/x.cpp",
                "void f(const RunContext& ctx) {\n"
                "  for (;;) {\n"
                "    if (!ctx.try_start_item()) break;\n"
                "    step();\n"
                "  }\n"
                "}\n"),
            "SSN-L009"), 0);
  // Bounded loops are fine regardless.
  EXPECT_EQ(count_rule(lint_source(
                "src/analysis/x.cpp",
                "void f() { for (int i = 0; i < n; ++i) step(i); }\n"),
            "SSN-L009"), 0);
}

TEST(SsnlintL009, SuppressionWorks) {
  EXPECT_EQ(count_rule(lint_source(
                "src/cli/x.cpp",
                "// ssnlint-ignore(SSN-L009)\n"
                "void f() { signal(2, handler); }\n"),
            "SSN-L009"), 0);
}

// --- SSN-L014: raw process-management syscalls ------------------------------

TEST(SsnlintL014, FlagsRawProcessCallsOutsideSanctionedHomes) {
  EXPECT_EQ(count_rule(lint_source("src/analysis/x.cpp",
                                   "int f() { return fork(); }\n"),
                       "SSN-L014"), 1);
  EXPECT_EQ(count_rule(lint_source("src/cli/x.cpp",
                                   "void f(int p) { kill(p, 9); }\n"),
                       "SSN-L014"), 1);
  EXPECT_EQ(count_rule(lint_source(
                "src/serve/server.cpp",
                "void f(int p) { int s; waitpid(p, &s, 0); }\n"),
            "SSN-L014"), 1);
  EXPECT_EQ(count_rule(lint_source("src/io/x.cpp",
                                   "void f(char** a) { execvp(a[0], a); }\n"),
                       "SSN-L014"), 1);
}

TEST(SsnlintL014, QuietInSupportAndSupervisor) {
  EXPECT_EQ(count_rule(lint_source("src/support/subprocess.cpp",
                                   "int f() { return fork(); }\n"),
                       "SSN-L014"), 0);
  EXPECT_EQ(count_rule(lint_source("src/support/crashclean.cpp",
                                   "void f(int p) { kill(p, 9); }\n"),
                       "SSN-L014"), 0);
  EXPECT_EQ(count_rule(lint_source(
                "src/serve/supervisor.cpp",
                "void f(int p) { int s; waitpid(p, &s, 0); }\n"),
            "SSN-L014"), 0);
}

TEST(SsnlintL014, QuietOnMemberCallsAndNonCallUses) {
  EXPECT_EQ(count_rule(lint_source("src/serve/server.cpp",
                                   "void f(CV& cv, L& l) { cv.wait(l); }\n"),
            "SSN-L014"), 0);
  EXPECT_EQ(count_rule(lint_source("src/analysis/x.cpp",
                                   "void f(P* p) { p->kill(); }\n"),
            "SSN-L014"), 0);
  EXPECT_EQ(count_rule(lint_source("src/analysis/x.cpp",
                                   "int f() { int fork = 0; return fork; }\n"),
            "SSN-L014"), 0);
  EXPECT_EQ(count_rule(lint_source(
                "src/serve/server.cpp",
                "void f(long p) { support::kill_child(p); }\n"),
            "SSN-L014"), 0);
}

TEST(SsnlintL014, SuppressionWorks) {
  EXPECT_EQ(count_rule(lint_source(
                "src/cli/x.cpp",
                "// ssnlint-ignore(SSN-L014)\n"
                "void f(int p) { kill(p, 9); }\n"),
            "SSN-L014"), 0);
}

// --- SSN-L013: result consumed without a status/trust check -----------------

TEST(SsnlintL013, FlagsChainedTemporaryAccess) {
  EXPECT_EQ(count_rule(
                lint("double f(int s) { return measure_ssn(s).v_max; }\n"),
                "SSN-L013"), 1);
  EXPECT_EQ(count_rule(
                lint("void f(R& r, int s) {\n"
                     "  r.v = analysis::monte_carlo_vmax(s).mean;\n"
                     "}\n"),
                "SSN-L013"), 1);
}

TEST(SsnlintL013, FlagsNamedResultWithOnlyValueReads) {
  EXPECT_EQ(count_rule(
                lint("double f(int s) {\n"
                     "  const auto mc = monte_carlo_vmax(s);\n"
                     "  return mc.mean + mc.p95;\n"
                     "}\n"),
                "SSN-L013"), 1);
}

TEST(SsnlintL013, StatusInspectionAnywhereOnTheChainIsClean) {
  EXPECT_EQ(count_rule(
                lint("double f(int s) {\n"
                     "  const auto mc = monte_carlo_vmax(s);\n"
                     "  if (mc.stop != 0) return 0.0;\n"
                     "  return mc.mean;\n"
                     "}\n"),
                "SSN-L013"), 0);
  // The status member may sit deeper in the chain (.measurement.trust).
  EXPECT_EQ(count_rule(
                lint("double f(int s) {\n"
                     "  const auto m = measure_ssn_resilient(s);\n"
                     "  log(m.measurement.trust.verdict);\n"
                     "  return m.measurement.v_max;\n"
                     "}\n"),
                "SSN-L013"), 0);
  // A chained temporary whose member IS the status check is fine.
  EXPECT_EQ(count_rule(
                lint("bool f(int s) { return measure_ssn_resilient(s).ok(); }\n"),
                "SSN-L013"), 0);
}

TEST(SsnlintL013, ForwardingTheResultDelegatesTheObligation) {
  // Passing the result to a function (verify_measurement here) delegates.
  EXPECT_EQ(count_rule(
                lint("double f(int s) {\n"
                     "  auto m = measure_ssn(s);\n"
                     "  verify_measurement(m);\n"
                     "  return m.v_max;\n"
                     "}\n"),
                "SSN-L013"), 0);
  // Returning the whole result forwards it to the caller.
  EXPECT_EQ(count_rule(
                lint("M f(int s) { return measure_ssn(s); }\n"),
                "SSN-L013"), 0);
}

TEST(SsnlintL013, DefinitionsAndPrototypesAreNotConsumptionSites) {
  EXPECT_EQ(count_rule(
                lint("M measure_ssn(int spec);\n"
                     "M measure_ssn(int spec) { M m; return m; }\n"),
                "SSN-L013"), 0);
  // A member call named like a producer on an unrelated object is not one.
  EXPECT_EQ(count_rule(
                lint("double f(Lab& lab) { return lab.measure_ssn(1).v; }\n"),
                "SSN-L013"), 0);
}

TEST(SsnlintL013, SuppressionWorks) {
  EXPECT_EQ(count_rule(
                lint("double f(int s) {\n"
                     "  // failures surface as thrown SolverError here\n"
                     "  return measure_ssn(s).v_max;  // ssnlint-ignore(SSN-L013)\n"
                     "}\n"),
                "SSN-L013"), 0);
}

// --- tokenizer edge cases ---------------------------------------------------

TEST(SsnlintStrip, RawStringsSpanningLinesKeepLineNumbers) {
  const auto d = lint(
      "const char* s = R\"(line1\n"
      "x == 0.3\n"
      ")\";\n"
      "bool f(double x) { return x == 0.5; }\n");
  ASSERT_EQ(int(d.size()), 1);
  EXPECT_EQ(d[0].rule, "SSN-L001");
  EXPECT_EQ(d[0].line, 4);
}

TEST(SsnlintStrip, CustomRawDelimitersAndEncodingPrefixes) {
  const auto d = lint(
      "const char* a = R\"ssn(x == 0.25)ssn\";\n"
      "const wchar_t* b = LR\"(x == 0.25)\";\n"
      "const char* c = u8R\"(x == 0.25)\";\n"
      "bool f(double x) { return x == 0.5; }\n");
  ASSERT_EQ(int(d.size()), 1);
  EXPECT_EQ(d[0].line, 4);
}

TEST(SsnlintStrip, DigitSeparatorsAreNotCharLiterals) {
  // If 1'000'000 opened a char literal, everything after it would be
  // swallowed as string content and the comparison below would vanish.
  const auto d =
      lint("bool f(double x) { int big = 1'000'000; return x == 0.25; }\n");
  EXPECT_EQ(count_rule(d, "SSN-L001"), 1);
  EXPECT_EQ(count_rule(lint("double g() { return 1'000.5; }\n"), "SSN-L001"), 0);
}

TEST(SsnlintStrip, EncodedCharLiteralsAreStillCharLiterals) {
  // u8'...' / L'...' open character literals (their quotes are not digit
  // separators); the quote inside survives without desyncing the lexer.
  const auto d = lint(
      "bool f(double x) { char c = u8'\"'; wchar_t w = L'\\''; "
      "return x == 0.5; }\n");
  EXPECT_EQ(count_rule(d, "SSN-L001"), 1);
}

TEST(SsnlintStrip, BackslashNewlineInsideStringKeepsLineNumbers) {
  const auto d = lint(
      "const char* s = \"abc\\\n"
      "def\";\n"
      "bool f(double x) { return x == 0.5; }\n");
  ASSERT_EQ(int(d.size()), 1);
  EXPECT_EQ(d[0].line, 3);
}

TEST(SsnlintStrip, UserDefinedLiteralsLexAsOneToken) {
  const auto d = lint(
      "bool f(double x) { auto y = 12.5_nH; (void)y; return x == 0.5; }\n");
  EXPECT_EQ(count_rule(d, "SSN-L001"), 1);
}

// --- fingerprints / baseline / SARIF ----------------------------------------

TEST(SsnlintFingerprint, StableAcrossLineShiftsAndReindentation) {
  const auto a = lint("bool f(double x) { return x == 0.25; }\n");
  const auto b = lint("\n\n    bool f(double x) { return x == 0.25; }\n");
  ASSERT_EQ(int(a.size()), 1);
  ASSERT_EQ(int(b.size()), 1);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(a[0].fingerprint, b[0].fingerprint);
  EXPECT_EQ(int(a[0].fingerprint.size()), 16);
  // The basename, not the directory, participates: a move between layers
  // does not invalidate a baseline.
  const auto c = lint_source("src/analysis/fixture.cpp",
                             "bool f(double x) { return x == 0.25; }\n");
  ASSERT_EQ(int(c.size()), 1);
  EXPECT_EQ(a[0].fingerprint, c[0].fingerprint);
}

TEST(SsnlintBaseline, AppliedFingerprintsSuppressFindings) {
  const auto d = lint("bool f(double x) { return x == 0.25; }\n");
  ASSERT_EQ(int(d.size()), 1);
  std::size_t suppressed = 0;
  const auto kept =
      ssnlint::apply_baseline(d, {d[0].fingerprint}, &suppressed);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(suppressed, 1u);
  std::ostringstream os;
  ssnlint::write_baseline(os, d);
  // Round-trip: the written file's first field is the same fingerprint.
  EXPECT_NE(os.str().find("\n" + d[0].fingerprint + " SSN-L001"),
            std::string::npos);
}

TEST(SsnlintSarif, EmitsCatalogResultsAndPartialFingerprints) {
  const auto d = lint("bool f(double x) { return x == 0.25; }\n");
  std::ostringstream os;
  ssnlint::write_sarif(os, d);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"id\": \"SSN-L012\""), std::string::npos);  // catalog
  EXPECT_NE(s.find("\"ruleId\": \"SSN-L001\""), std::string::npos);
  EXPECT_NE(s.find("\"ssnlintFingerprint/v1\": \"" + d[0].fingerprint),
            std::string::npos);
}

// --- whole-project fixtures (tests/lint/) -----------------------------------

namespace fs = std::filesystem;

std::vector<fs::path> tree_files(const std::string& tree) {
  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(
           fs::path(SSNLINT_FIXTURE_DIR) / tree))
    if (e.is_regular_file() && ssnlint::lintable_extension(e.path()))
      files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

int count_message(const std::vector<Diagnostic>& diags, const std::string& s) {
  return int(std::count_if(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.message.find(s) != std::string::npos;
  }));
}

TEST(SsnlintL010, FiresOnUpwardIncludesAndCycles) {
  const auto proj = ssnlint::load_project(tree_files("layering_bad"));
  std::vector<Diagnostic> out;
  ssnlint::pass_layering(proj, out);
  EXPECT_EQ(count_rule(out, "SSN-L010"), 4);
  EXPECT_EQ(count_message(out, "upward include"), 1);
  EXPECT_EQ(count_message(out, "include cycle"), 2);
  EXPECT_EQ(count_message(out, "layer cycle"), 1);
}

TEST(SsnlintL010, QuietOnDownwardIncludes) {
  const auto proj = ssnlint::load_project(tree_files("layering_good"));
  std::vector<Diagnostic> out;
  ssnlint::pass_layering(proj, out);
  EXPECT_TRUE(out.empty());
}

TEST(SsnlintL011, FiresOnFixtureUnitMixes) {
  const auto proj = ssnlint::load_project(tree_files("units_bad"));
  std::vector<Diagnostic> out;
  ssnlint::pass_units(proj, out);
  ASSERT_EQ(count_rule(out, "SSN-L011"), 2);
  EXPECT_EQ(count_message(out, "[V] and [A]"), 1);
  EXPECT_EQ(count_message(out, "[H] and [F]"), 1);
}

TEST(SsnlintL011, QuietOnConsistentFixture) {
  const auto proj = ssnlint::load_project(tree_files("units_good"));
  std::vector<Diagnostic> out;
  ssnlint::pass_units(proj, out);
  EXPECT_TRUE(out.empty());
}

// In-memory units checks: suffix conventions and transcendental arguments.

std::vector<Diagnostic> lint_units(const std::string& path,
                                   const std::string& src) {
  ssnlint::FileInfo info;
  info.display = path;
  info.path = fs::path(path);
  ssnlint::detail::classify_layer(info.path, info.layer, info.rank, info.root);
  info.source = src;
  info.stripped = ssnlint::strip_source(src);
  std::vector<Diagnostic> out;
  ssnlint::pass_units_file(info, out);
  return out;
}

TEST(SsnlintL011, SuffixConventionSeedsUnits) {
  EXPECT_EQ(count_rule(lint_units("src/core/x.cpp",
                                  "double f(double l_h, double c_f) {\n"
                                  "  return l_h + c_f;\n"
                                  "}\n"),
            "SSN-L011"), 1);
  EXPECT_EQ(count_rule(lint_units("src/core/x.cpp",
                                  "double f(double v_a, double v_b) {\n"
                                  "  return v_a + v_b;\n"  // both amps
                                  "}\n"),
            "SSN-L011"), 0);
}

TEST(SsnlintL011, TranscendentalsWantDimensionlessArguments) {
  EXPECT_EQ(count_rule(lint_units("src/core/x.cpp",
                                  "// ssn-units: t=s\n"
                                  "double f(double t) { return std::exp(t); }\n"),
            "SSN-L011"), 1);
  EXPECT_EQ(count_rule(lint_units("src/core/x.cpp",
                                  "// ssn-units: t=s, tau=s\n"
                                  "double f(double t, double tau) {\n"
                                  "  return std::exp(t / tau);\n"
                                  "}\n"),
            "SSN-L011"), 0);
}

TEST(SsnlintL011, OutsideModelLayersOnlyAnnotatedFilesParticipate) {
  const std::string src =
      "double f(double l_h, double c_f) { return l_h + c_f; }\n";
  EXPECT_EQ(count_rule(lint_units("src/io/x.cpp", src), "SSN-L011"), 0);
  EXPECT_EQ(count_rule(lint_units("src/io/x.cpp",
                                  "// ssn-units: scale=1\n" + src),
            "SSN-L011"), 1);
}

TEST(SsnlintL012, FiresOnBrokenRegistryFixture) {
  const auto proj = ssnlint::load_project(tree_files("registry_bad"));
  ssnlint::RegistryOptions reg;
  reg.doc_files = {fs::path(SSNLINT_FIXTURE_DIR) / "registry_bad" / "docs" /
                   "CATALOG.md"};
  reg.full_surface = true;
  std::vector<Diagnostic> out;
  ssnlint::pass_registry(proj, reg, out);
  EXPECT_EQ(count_rule(out, "SSN-L012"), 3);
  EXPECT_EQ(count_message(out, "undocumented diagnostic code SSN-E901"), 1);
  EXPECT_EQ(count_message(out, "duplicate catalog row for SSN-E902"), 1);
  EXPECT_EQ(count_message(out, "dead catalog row: SSN-E902"), 1);
  // Without the full-surface claim the dead-row check stands down.
  std::vector<Diagnostic> partial;
  reg.full_surface = false;
  ssnlint::pass_registry(proj, reg, partial);
  EXPECT_EQ(count_rule(partial, "SSN-L012"), 2);
  EXPECT_EQ(count_message(partial, "dead catalog row"), 0);
}

TEST(SsnlintL012, QuietOnCleanRegistryFixture) {
  const auto proj = ssnlint::load_project(tree_files("registry_good"));
  ssnlint::RegistryOptions reg;
  reg.doc_files = {fs::path(SSNLINT_FIXTURE_DIR) / "registry_good" / "docs" /
                   "CATALOG.md"};
  reg.full_surface = true;
  std::vector<Diagnostic> out;
  ssnlint::pass_registry(proj, reg, out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
