// Device models: smoothing primitives, alpha-power golden, BSIM-lite
// golden, the ASDM, and the width-scaling adapter.
#include "devices/alpha_power.hpp"
#include "devices/asdm.hpp"
#include "devices/bsim_lite.hpp"
#include "process/package.hpp"
#include "process/technology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::devices;

TEST(SmoothRelu, LimitsAndMidpoint) {
  EXPECT_NEAR(smooth_relu(1.0, 1e-3), 1.0, 1e-5);
  EXPECT_NEAR(smooth_relu(-1.0, 1e-3), 0.0, 1e-5);
  EXPECT_NEAR(smooth_relu(0.0, 1e-3), 1e-3, 1e-12);
  EXPECT_THROW(smooth_relu(0.0, 0.0), std::invalid_argument);
}

TEST(SmoothRelu, DerivativeMatchesFiniteDifference) {
  const double eps = 2e-3;
  for (double x : {-0.1, -0.001, 0.0, 0.001, 0.1}) {
    const double h = 1e-7;
    const double fd = (smooth_relu(x + h, eps) - smooth_relu(x - h, eps)) / (2 * h);
    EXPECT_NEAR(smooth_relu_deriv(x, eps), fd, 1e-6);
  }
}

TEST(BodyEffect, RaisesThresholdWithSourceBias) {
  const double vt0 = 0.45, gamma = 0.35, phi2f = 0.85;
  EXPECT_DOUBLE_EQ(body_effect_vt(vt0, gamma, phi2f, 0.0), vt0);
  const double vt_biased = body_effect_vt(vt0, gamma, phi2f, 0.5);
  EXPECT_GT(vt_biased, vt0);
  EXPECT_NEAR(vt_biased,
              vt0 + gamma * (std::sqrt(phi2f + 0.5) - std::sqrt(phi2f)), 1e-12);
  // gamma = 0 disables the effect entirely.
  EXPECT_DOUBLE_EQ(body_effect_vt(vt0, 0.0, phi2f, 0.5), vt0);
}

class AlphaPowerTest : public ::testing::Test {
 protected:
  AlphaPowerParams params_ = ssnkit::process::tech_180nm().alpha_power;
  AlphaPowerModel model_{params_};
};

TEST_F(AlphaPowerTest, OffBelowThreshold) {
  EXPECT_LT(model_.ids(0.1, 1.8, 0.0), 1e-6);
  EXPECT_LT(model_.ids(0.0, 1.8, 0.0), 1e-6);
}

TEST_F(AlphaPowerTest, Id0AtFullBias) {
  // At vgs = vds = vdd the current equals id0 times the CLM factor.
  const double expected = params_.id0 * (1.0 + params_.lambda_clm * params_.vdd);
  EXPECT_NEAR(model_.ids(params_.vdd, params_.vdd, 0.0), expected,
              0.02 * expected);
}

TEST_F(AlphaPowerTest, MonotoneInVgs) {
  double prev = 0.0;
  for (double vgs = 0.5; vgs <= 1.8; vgs += 0.05) {
    const double i = model_.ids(vgs, 1.8, 0.0);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST_F(AlphaPowerTest, TriodeBelowSaturation) {
  const double vgs = 1.8;
  const double vdsat = model_.vdsat(vgs, 0.0);
  EXPECT_GT(vdsat, 0.1);
  EXPECT_LT(model_.ids(vgs, vdsat / 4.0, 0.0), model_.ids(vgs, vdsat, 0.0));
  // Zero vds -> zero current.
  EXPECT_NEAR(model_.ids(vgs, 0.0, 0.0), 0.0, 1e-12);
}

TEST_F(AlphaPowerTest, ContinuousAcrossVdsat) {
  const double vgs = 1.4;
  const double vdsat = model_.vdsat(vgs, 0.0);
  const double below = model_.ids(vgs, vdsat * (1 - 1e-9), 0.0);
  const double above = model_.ids(vgs, vdsat * (1 + 1e-9), 0.0);
  EXPECT_NEAR(below, above, 1e-9 * above + 1e-15);
  // C1: derivative continuous too (compare secants on both sides).
  const double h = 1e-6;
  const double d_below =
      (model_.ids(vgs, vdsat, 0.0) - model_.ids(vgs, vdsat - h, 0.0)) / h;
  const double d_above =
      (model_.ids(vgs, vdsat + h, 0.0) - model_.ids(vgs, vdsat, 0.0)) / h;
  EXPECT_NEAR(d_below, d_above, 5e-3 * std::fabs(d_below) + 1e-9);
}

TEST_F(AlphaPowerTest, BodyEffectReducesCurrent) {
  // Same vgs, source lifted above bulk (vbs < 0): current must drop.
  EXPECT_LT(model_.ids(1.2, 1.5, -0.5), model_.ids(1.2, 1.5, 0.0));
}

TEST_F(AlphaPowerTest, EvaluateDerivativesMatchFiniteDifference) {
  const auto eval = model_.evaluate(1.2, 1.5, -0.2);
  const double h = 1e-6;
  EXPECT_NEAR(eval.gm,
              (model_.ids(1.2 + h, 1.5, -0.2) - model_.ids(1.2 - h, 1.5, -0.2)) /
                  (2 * h),
              1e-8);
  EXPECT_GT(eval.gm, 0.0);
  EXPECT_GE(eval.gds, 0.0);
  EXPECT_GT(eval.gmb, 0.0);  // raising vbs lowers vt -> more current
}

TEST_F(AlphaPowerTest, ParamValidation) {
  AlphaPowerParams p = params_;
  p.alpha = 2.5;
  EXPECT_THROW(AlphaPowerModel{p}, std::invalid_argument);
  p = params_;
  p.vt0 = -0.1;
  EXPECT_THROW(AlphaPowerModel{p}, std::invalid_argument);
  p = params_;
  p.id0 = 0.0;
  EXPECT_THROW(AlphaPowerModel{p}, std::invalid_argument);
}

class BsimLiteTest : public ::testing::Test {
 protected:
  BsimLiteParams params_ = ssnkit::process::tech_180nm().bsim_lite;
  BsimLiteModel model_{params_};
};

TEST_F(BsimLiteTest, OffBelowThreshold) {
  EXPECT_LT(model_.ids(0.2, 1.8, 0.0), 1e-6);
}

TEST_F(BsimLiteTest, SaturatesWithVds) {
  const double i_half = model_.ids(1.8, 0.9, 0.0);
  const double i_full = model_.ids(1.8, 1.8, 0.0);
  EXPECT_GT(i_full, i_half * 0.9);
  // Past vdsat the current rises only via CLM.
  const double vdsat = model_.vdsat(1.8, 0.0);
  const double i1 = model_.ids(1.8, vdsat * 2.0, 0.0);
  const double i2 = model_.ids(1.8, vdsat * 2.5, 0.0);
  EXPECT_LT((i2 - i1) / i1, 0.1);
}

TEST_F(BsimLiteTest, MobilityDegradationSubQuadratic) {
  // With theta > 0 the I(vgs) curve grows slower than square law.
  const double i1 = model_.ids(1.0, 1.8, 0.0);
  const double i2 = model_.ids(1.8, 1.8, 0.0);
  const double vt = params_.vt0;
  const double square_ratio = std::pow((1.8 - vt) / (1.0 - vt), 2.0);
  EXPECT_LT(i2 / i1, square_ratio);
}

TEST_F(BsimLiteTest, BodyEffectReducesCurrent) {
  EXPECT_LT(model_.ids(1.2, 1.5, -0.5), model_.ids(1.2, 1.5, 0.0));
}

TEST_F(BsimLiteTest, CloneIsIndependent) {
  const auto clone = model_.clone();
  EXPECT_DOUBLE_EQ(clone->ids(1.5, 1.8, 0.0), model_.ids(1.5, 1.8, 0.0));
}

TEST(Asdm, PaperFormAndTurnOn) {
  AsdmModel m({.k = 5e-3, .lambda = 1.3, .vx = 0.6});
  EXPECT_DOUBLE_EQ(m.ids_gate_source(0.5, 0.0), 0.0);  // below vx
  EXPECT_NEAR(m.ids_gate_source(1.6, 0.0), 5e-3 * 1.0, 1e-12);
  // Source bounce of 0.2 V costs lambda*0.2 of gate overdrive.
  EXPECT_NEAR(m.ids_gate_source(1.6, 0.2), 5e-3 * (1.6 - 1.3 * 0.2 - 0.6), 1e-12);
  EXPECT_NEAR(m.turn_on_vg(0.2), 1.3 * 0.2 + 0.6, 1e-12);
}

TEST(Asdm, MosfetInterfaceMatchesPaperForm) {
  // The simulator-facing interface smooths the paper's hard clamp with a
  // ~1 mV width; deep in the on region the two agree to K*eps^2/overdrive.
  AsdmModel m({.k = 5e-3, .lambda = 1.3, .vx = 0.6});
  // vg = 1.5, vs = 0.3, bulk at true ground: vgs = 1.2, vbs = -0.3.
  EXPECT_NEAR(m.ids(1.2, 1.5, -0.3), m.ids_gate_source(1.5, 0.3), 1e-7);
  const auto eval = m.evaluate(1.2, 1.5, -0.3);
  EXPECT_NEAR(eval.gm, 5e-3, 1e-7);
  EXPECT_DOUBLE_EQ(eval.gds, 0.0);
  EXPECT_NEAR(eval.gmb, 5e-3 * 0.3, 1e-7);
}

TEST(Asdm, NegligibleCurrentAndGainWhenOff) {
  AsdmModel m({.k = 5e-3, .lambda = 1.3, .vx = 0.6});
  const auto eval = m.evaluate(0.1, 1.8, 0.0);  // 0.5 V below turn-on
  EXPECT_LT(eval.ids, 1e-8);
  EXPECT_LT(eval.gm, 1e-7);
  // The hard-clamped paper form is exactly zero there.
  EXPECT_DOUBLE_EQ(m.ids_gate_source(0.1, 0.0), 0.0);
}

TEST(Asdm, ParamValidation) {
  EXPECT_THROW(AsdmModel({.k = -1.0, .lambda = 1.3, .vx = 0.6}),
               std::invalid_argument);
  EXPECT_THROW(AsdmModel({.k = 1e-3, .lambda = 0.9, .vx = 0.6}),
               std::invalid_argument);
  EXPECT_THROW(AsdmModel({.k = 1e-3, .lambda = 1.3, .vx = -0.1}),
               std::invalid_argument);
}

TEST(ScaledModel, ScalesCurrentAndDerivatives) {
  auto base = std::make_unique<AsdmModel>(
      AsdmParams{.k = 5e-3, .lambda = 1.3, .vx = 0.6});
  ScaledMosfetModel scaled(std::move(base), 4.0);
  EXPECT_NEAR(scaled.ids(1.2, 1.8, 0.0), 4.0 * 5e-3 * (1.2 - 0.6), 1e-12);
  const auto eval = scaled.evaluate(1.2, 1.8, 0.0);
  EXPECT_DOUBLE_EQ(eval.gm, 4.0 * 5e-3);
  EXPECT_THROW(ScaledMosfetModel(nullptr, 2.0), std::invalid_argument);
  EXPECT_THROW(ScaledMosfetModel(scaled.clone(), 0.0), std::invalid_argument);
}

TEST(Technology, PresetsAreValidAndDistinct) {
  using namespace ssnkit::process;
  for (const char* name : {"180nm", "250nm", "350nm"}) {
    const Technology t = technology_by_name(name);
    EXPECT_NO_THROW(t.validate());
    EXPECT_EQ(t.name, name);
  }
  EXPECT_GT(tech_350nm().vdd, tech_180nm().vdd);
  EXPECT_THROW(technology_by_name("90nm"), std::invalid_argument);
}

TEST(Technology, GoldenFactoryScalesWidth) {
  const auto tech = ssnkit::process::tech_180nm();
  const auto unit = tech.make_golden(ssnkit::process::GoldenKind::kAlphaPower, 1.0);
  const auto twice = tech.make_golden(ssnkit::process::GoldenKind::kAlphaPower, 2.0);
  EXPECT_NEAR(twice->ids(1.8, 1.8, 0.0), 2.0 * unit->ids(1.8, 1.8, 0.0), 1e-12);
}

TEST(Package, PresetsAndPadScaling) {
  using namespace ssnkit::process;
  const Package pga = package_pga();
  EXPECT_DOUBLE_EQ(pga.inductance, 5e-9);
  EXPECT_DOUBLE_EQ(pga.capacitance, 1e-12);
  EXPECT_DOUBLE_EQ(pga.resistance, 10e-3);
  const Package doubled = pga.with_ground_pads(2);
  EXPECT_DOUBLE_EQ(doubled.inductance, 2.5e-9);
  EXPECT_DOUBLE_EQ(doubled.capacitance, 2e-12);
  EXPECT_THROW(pga.with_ground_pads(0), std::invalid_argument);
  EXPECT_THROW(package_by_name("dip"), std::invalid_argument);
  EXPECT_LT(package_flip_chip().inductance, package_wire_bond().inductance);
}

}  // namespace
