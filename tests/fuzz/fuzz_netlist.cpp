// Fuzz target: the recovering netlist parser. Contract under test:
// parse_netlist_ex NEVER throws, never crashes, and respects its resource
// guards no matter the input. There is deliberately no try/catch here — an
// escaping exception is a finding.
#include "circuit/netlist.hpp"

#include <cstdint>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  ssnkit::circuit::ParseOptions opts;
  // Tighter guards than the defaults keep each execution fast and make the
  // guard paths themselves easy for the fuzzer to reach.
  opts.limits.max_input_bytes = 1u << 20;
  opts.limits.max_subckt_depth = 16;
  opts.limits.max_elements = 4096;
  const auto result = ssnkit::circuit::parse_netlist_ex(text, opts);
  // Invariant: a result flagged ok has no error diagnostics, and vice versa.
  if (result.ok == result.diagnostics.has_errors()) __builtin_trap();
  return 0;
}
