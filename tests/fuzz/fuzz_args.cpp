// Fuzz target: the CLI argument parser. The input is split on whitespace
// into an argv vector; Args::parse_ex never throws, and the typed accessors
// may only throw std::invalid_argument.
#include "cli/args.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream iss(text);
  std::vector<std::string> argv;
  std::string tok;
  while (iss >> tok && argv.size() < 64) argv.push_back(tok);

  ssnkit::io::DiagnosticSink sink;
  const auto args =
      ssnkit::cli::Args::parse_ex(argv, {"verify", "no-c"}, sink);
  for (const char* key : {"n", "tech", "pads", "l", "x"}) {
    try {
      args.get_int(key, 0);
    } catch (const std::invalid_argument&) {
    }
    try {
      args.get_double(key, 0.0);
    } catch (const std::invalid_argument&) {
    }
  }
  args.unused_keys();
  return 0;
}
