// Fuzz target: SPICE number parsing. parse_spice_number_ex never throws;
// the throwing wrapper may only throw std::invalid_argument (anything else
// escaping — std::out_of_range from a leaked stod, say — is a finding).
// A successful parse must be a finite double.
#include "circuit/netlist.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string token(reinterpret_cast<const char*>(data), size);

  const auto p = ssnkit::circuit::parse_spice_number_ex(token);
  if (p.ok && !std::isfinite(p.value)) __builtin_trap();
  if (!p.ok && p.error.empty()) __builtin_trap();

  try {
    const double v = ssnkit::circuit::parse_spice_number(token);
    if (!std::isfinite(v)) __builtin_trap();
    if (!p.ok) __builtin_trap();  // wrapper and _ex must agree
  } catch (const std::invalid_argument&) {
    if (p.ok) __builtin_trap();  // wrapper and _ex must agree
  }
  return 0;
}
