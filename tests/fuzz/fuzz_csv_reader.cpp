// Fuzz target: CsvReader in error-recovery mode. read_string never throws;
// on a clean read every row must match the header width.
#include "io/csv.hpp"

#include <cstdint>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  ssnkit::io::CsvLimits limits;
  limits.max_input_bytes = 1u << 20;
  limits.max_columns = 256;
  const ssnkit::io::CsvReader reader(limits);
  ssnkit::io::DiagnosticSink sink;
  const auto table = reader.read_string(text, sink);
  if (!sink.has_errors()) {
    for (const auto& row : table.rows)
      if (row.size() != table.headers.size()) __builtin_trap();
  }
  return 0;
}
