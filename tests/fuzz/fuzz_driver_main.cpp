// Standalone replacement for libFuzzer's main, used when the toolchain
// cannot build -fsanitize=fuzzer (gcc). Replays every file of the corpus
// directories/files given on the command line through
// LLVMFuzzerTestOneInput and exits; dash-arguments (libFuzzer flags like
// -runs=0) are ignored so the same ctest command drives both builds.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int run_one(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag: ignore
    const std::filesystem::path p(arg);
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::directory_iterator(p))
        if (e.is_regular_file()) inputs.push_back(e.path());
    } else {
      inputs.push_back(p);
    }
  }
  int rc = 0;
  for (const auto& p : inputs) rc |= run_one(p);
  std::fprintf(stderr, "fuzz driver: replayed %zu inputs\n", inputs.size());
  return rc;
}
