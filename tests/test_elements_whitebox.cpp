// White-box element tests: companion-model algebra per integrator, PMOS
// polarity mapping, reverse-mode MOSFET operation, and element bookkeeping.
#include "circuit/circuit.hpp"
#include "devices/asdm.hpp"
#include "process/technology.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;
using numeric::Matrix;
using numeric::Vector;

// Assemble one transient stamp of a single element into a fresh system.
struct StampHarness {
  explicit StampHarness(Circuit& ckt) : n(std::size_t(ckt.finalize())), a(n, n), b(n) {
    ctx.mode = AnalysisMode::kTransient;
    ctx.a = &a;
    ctx.b = &b;
    x = Vector(n);
    ctx.x = &x;
  }
  std::size_t n;
  Matrix a;
  Vector b;
  Vector x;
  StampContext ctx;
};

TEST(CapacitorStamp, BackwardEulerCompanion) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& cap = ckt.add_capacitor("C1", a, kGround, 2e-12);
  StampHarness h(ckt);
  h.ctx.coeffs.method = Integrator::kBackwardEuler;
  h.ctx.coeffs.h = 1e-12;
  // History: v_prev = 0 (default state after construction + reset).
  cap.reset_derivative_history();
  cap.stamp(h.ctx);
  // geq = C/h = 2 S on the diagonal; no history current.
  EXPECT_NEAR(h.a(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(h.b[0], 0.0, 1e-15);
}

TEST(InductorStamp, DcIsShort) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_inductor("L1", a, kGround, 5e-9);
  StampHarness h(ckt);
  h.ctx.mode = AnalysisMode::kDc;
  ckt.elements()[0]->stamp(h.ctx);
  // Branch row: v_a = 0 -> A(branch, a) = 1, no current coefficient.
  EXPECT_NEAR(h.a(1, 0), 1.0, 1e-12);   // branch row, voltage column
  EXPECT_NEAR(h.a(0, 1), 1.0, 1e-12);   // KCL incidence
  EXPECT_NEAR(h.a(1, 1), 0.0, 1e-12);   // short: no -L/h term
}

TEST(InductorStamp, BackwardEulerCompanion) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& ind = ckt.add_inductor("L1", a, kGround, 4e-9);
  StampHarness h(ckt);
  h.ctx.coeffs.method = Integrator::kBackwardEuler;
  h.ctx.coeffs.h = 2e-12;
  ind.reset_derivative_history();
  ind.stamp(h.ctx);
  // Branch row: v_a - (L/h) i = -(L/h) i_prev; i_prev = 0.
  EXPECT_NEAR(h.a(1, 1), -2000.0, 1e-9);  // L/h = 2e3
  EXPECT_NEAR(h.b[1], 0.0, 1e-15);
}

TEST(MosfetElement, PmosMirrorsNmosSurface) {
  // A PMOS with mirrored biases must conduct the mirrored current.
  Circuit ckt;
  const auto tech = process::tech_180nm();
  std::shared_ptr<const devices::MosfetModel> model(tech.make_golden());
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  const NodeId s = ckt.node("s");
  auto& mn = ckt.add_mosfet("Mn", d, g, s, kGround, model);
  // The PMOS n-well ties to its source so both devices see zero
  // source-bulk bias and the mirror is exact.
  auto& mp = ckt.add_mosfet("Mp", d, g, s, s, model, MosfetPolarity::kPmos);
  ckt.finalize();
  // NMOS forward: d=1.8, g=1.2, s=0.
  Vector x_n{1.8, 1.2, 0.0};
  const double i_n = mn.drain_current(x_n, ckt.node_count());
  // PMOS mirrored: d=0, g=0.6, s=1.8 (vsg=1.2, vsd=1.8).
  Vector x_p{0.0, 0.6, 1.8};
  const double i_p = mp.drain_current(x_p, ckt.node_count());
  EXPECT_GT(i_n, 1e-4);
  EXPECT_NEAR(i_p, -i_n, 1e-3 * i_n);  // flows source->drain
}

TEST(MosfetElement, ReverseModeSwapsTerminals) {
  Circuit ckt;
  const auto tech = process::tech_180nm();
  std::shared_ptr<const devices::MosfetModel> model(tech.make_golden());
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  const NodeId s = ckt.node("s");
  auto& m = ckt.add_mosfet("M1", d, g, s, kGround, model);
  ckt.finalize();
  // Forward: (d, g, s) = (1.0, 1.8, 0).
  Vector fwd{1.0, 1.8, 0.0};
  // Reversed roles: (d, g, s) = (0, 1.8, 1.0) -> same magnitude, opposite
  // sign (the physical device is symmetric in our models' forward region).
  Vector rev{0.0, 1.8, 1.0};
  const double i_fwd = m.drain_current(fwd, ckt.node_count());
  const double i_rev = m.drain_current(rev, ckt.node_count());
  EXPECT_GT(i_fwd, 0.0);
  EXPECT_LT(i_rev, 0.0);
  // Not exactly equal (body effect differs: bulk at 0 biases the swapped
  // source) but same order.
  EXPECT_NEAR(-i_rev, i_fwd, 0.5 * i_fwd);
}

TEST(ElementBookkeeping, RemoveElementAndReuseName) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_resistor("R1", a, kGround, 1e3);
  ckt.add_resistor("R2", a, kGround, 2e3);
  ckt.remove_element("R1");
  EXPECT_EQ(ckt.find_element("R1"), nullptr);
  EXPECT_NE(ckt.find_element("R2"), nullptr);
  // Name can be reused after removal.
  EXPECT_NO_THROW(ckt.add_resistor("R1", a, kGround, 3e3));
  EXPECT_THROW(ckt.remove_element("Rx"), std::invalid_argument);
}

TEST(ElementBookkeeping, BranchIndicesReassignedAfterRemoval) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, waveform::Dc{1.0});
  ckt.add_inductor("L1", a, b, 1e-9);
  ckt.add_resistor("R1", b, kGround, 10.0);
  ckt.finalize();
  EXPECT_EQ(ckt.branch_count(), 2);
  ckt.remove_element("V1");
  ckt.add_isource("I1", kGround, a, waveform::Dc{1e-3});
  ckt.finalize();
  EXPECT_EQ(ckt.branch_count(), 1);
  // The circuit still solves correctly after the surgery.
  const auto dc = sim::dc_operating_point(ckt);
  EXPECT_NEAR(dc.voltage(ckt, "b"), 1e-3 * 10.0, 1e-9);
  EXPECT_NEAR(dc.voltage(ckt, "a"), 1e-3 * 10.0, 1e-9);  // inductor shorts a-b
}

TEST(AsdmElement, SourceBounceReducesCurrentInCircuit) {
  // The lambda > 1 coupling visible at the element level: raising the
  // source node by dv reduces the current by K*lambda*dv.
  Circuit ckt;
  const devices::AsdmParams p{.k = 5e-3, .lambda = 1.3, .vx = 0.6};
  auto model = std::make_shared<devices::AsdmModel>(p);
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  const NodeId s = ckt.node("s");
  auto& m = ckt.add_mosfet("M1", d, g, s, kGround, model);
  ckt.finalize();
  Vector quiet{1.8, 1.5, 0.0};
  Vector bounced{1.8, 1.5, 0.2};
  const double di = m.drain_current(quiet, ckt.node_count()) -
                    m.drain_current(bounced, ckt.node_count());
  EXPECT_NEAR(di, p.k * p.lambda * 0.2, 1e-5);
}

}  // namespace
