// Circuit construction, node management, and the netlist front end.
#include "circuit/circuit.hpp"
#include "circuit/netlist.hpp"
#include "circuit/testbench.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ssnkit::circuit;

TEST(Circuit, GroundAliases) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_EQ(ckt.node("GND"), kGround);
}

TEST(Circuit, NodeCreationAndLookup) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_EQ(ckt.node("a"), a);  // idempotent
  EXPECT_EQ(ckt.find_node("a"), a);
  EXPECT_TRUE(ckt.has_node("a"));
  EXPECT_FALSE(ckt.has_node("b"));
  EXPECT_THROW(ckt.find_node("b"), std::out_of_range);
  EXPECT_EQ(ckt.node_name(a), "a");
  EXPECT_EQ(ckt.node_count(), 2);
}

TEST(Circuit, DuplicateElementNameThrows) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1e3);
  EXPECT_THROW(ckt.add_resistor("R1", ckt.node("b"), kGround, 1e3),
               std::invalid_argument);
}

TEST(Circuit, FinalizeAssignsBranches) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1e3);
  ckt.add_vsource("V1", ckt.node("a"), kGround, ssnkit::waveform::Dc{1.0});
  ckt.add_inductor("L1", ckt.node("a"), ckt.node("b"), 1e-9);
  const int unknowns = ckt.finalize();
  EXPECT_EQ(ckt.branch_count(), 2);      // V1 + L1
  EXPECT_EQ(unknowns, 2 + 2);            // nodes a,b + two branches
  const Element* v1 = ckt.find_element("V1");
  ASSERT_NE(v1, nullptr);
  EXPECT_GE(ckt.branch_unknown_index(*v1), 2);
  const Element* r1 = ckt.find_element("R1");
  EXPECT_THROW(ckt.branch_unknown_index(*r1), std::invalid_argument);
}

TEST(Circuit, ElementParameterValidation) {
  Circuit ckt;
  EXPECT_THROW(ckt.add_resistor("R1", ckt.node("a"), kGround, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.add_capacitor("C1", ckt.node("a"), kGround, -1e-12),
               std::invalid_argument);
  EXPECT_THROW(ckt.add_inductor("L1", ckt.node("a"), kGround, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.add_mosfet("M1", 1, 1, 0, 0, nullptr), std::invalid_argument);
}

// --- SPICE numbers -----------------------------------------------------------

TEST(SpiceNumber, SuffixScales) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("3.3u"), 3.3e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("10m"), 10e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("2MEG"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("4f"), 4e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3e-9"), -3e-9);
}

TEST(SpiceNumber, UnitNamesTolerated) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("5nH"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("2V"), 2.0);
}

TEST(SpiceNumber, MalformedThrows) {
  EXPECT_THROW(parse_spice_number(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_number("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_number("1.5q"), std::invalid_argument);
}

// --- netlist -----------------------------------------------------------------

TEST(Netlist, ParsesRlcDivider) {
  const auto parsed = parse_netlist(R"(simple divider
V1 in 0 DC 2.0
R1 in out 1k
R2 out 0 1k
C1 out 0 10p
.tran 1p 1n
.end
)");
  EXPECT_EQ(parsed.title, "simple divider");
  ASSERT_TRUE(parsed.tran.has_value());
  EXPECT_DOUBLE_EQ(parsed.tran->tstep, 1e-12);
  EXPECT_DOUBLE_EQ(parsed.tran->tstop, 1e-9);
  EXPECT_TRUE(parsed.circuit.has_node("in"));
  EXPECT_TRUE(parsed.circuit.has_node("out"));
  EXPECT_NE(parsed.circuit.find_element("C1"), nullptr);
}

TEST(Netlist, ParsesSourceShapes) {
  const auto parsed = parse_netlist(R"(
V1 a 0 RAMP(0 1.8 0 0.1n)
V2 b 0 PULSE(0 1 0 10p 10p 1n 2n)
V3 c 0 PWL(0 0, 1n 1, 2n 0)
V4 d 0 SIN(0 1 1g)
V5 e 0 1.8
I1 f 0 DC 1m
)");
  const auto* v1 = dynamic_cast<const VoltageSource*>(parsed.circuit.find_element("V1"));
  ASSERT_NE(v1, nullptr);
  EXPECT_TRUE(std::holds_alternative<ssnkit::waveform::Ramp>(v1->spec()));
  const auto* v5 = dynamic_cast<const VoltageSource*>(parsed.circuit.find_element("V5"));
  ASSERT_NE(v5, nullptr);
  EXPECT_TRUE(std::holds_alternative<ssnkit::waveform::Dc>(v5->spec()));
  EXPECT_NE(parsed.circuit.find_element("I1"), nullptr);
}

TEST(Netlist, ParsesDevicesAndModels) {
  const auto parsed = parse_netlist(R"(
.model NDRV ALPHA VDD=1.8 VT0=0.45 ALPHA=1.3 ID0=6.5m VD0=0.9 GAMMA=0.35
.model PDRV ALPHA VDD=1.8 VT0=0.45 ALPHA=1.3 ID0=5m VD0=0.9 PMOS
.model LIN ASDM K=5.8m LAMBDA=1.28 VX=0.61
M1 out in vssi 0 NDRV W=2
M2 out in vdd vdd PDRV
M3 out2 in vssi 0 LIN
D1 0 vssi IS=1e-14 N=1
C1 out 0 10p IC=1.8
L1 vssi 0 5n
)");
  EXPECT_NE(parsed.circuit.find_element("M1"), nullptr);
  EXPECT_NE(parsed.circuit.find_element("M2"), nullptr);
  EXPECT_NE(parsed.circuit.find_element("D1"), nullptr);
  const auto* c1 = dynamic_cast<const Capacitor*>(parsed.circuit.find_element("C1"));
  ASSERT_NE(c1, nullptr);
  ASSERT_TRUE(c1->initial_condition().has_value());
  EXPECT_DOUBLE_EQ(*c1->initial_condition(), 1.8);
}

TEST(Netlist, CommentsAndBlanksIgnored) {
  const auto parsed = parse_netlist(R"(* a title comment
* full comment
R1 a 0 1k ; trailing comment
R2 a 0 2k // another
)");
  EXPECT_NE(parsed.circuit.find_element("R1"), nullptr);
  EXPECT_NE(parsed.circuit.find_element("R2"), nullptr);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("R1 a 0 1k\nQ1 a b c\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    // Diagnostics render as file:line:column.
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
}

TEST(Netlist, UnknownModelThrows) {
  EXPECT_THROW(parse_netlist("M1 d g s 0 NOPE\n"), std::invalid_argument);
}

TEST(Netlist, MissingFieldsThrow) {
  EXPECT_THROW(parse_netlist("R1 a 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist("V1 a 0 RAMP(0 1)\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist(".tran 1p\n"), std::invalid_argument);
}

// --- testbench ----------------------------------------------------------------

TEST(Testbench, BuildsExpectedTopology) {
  SsnBenchSpec spec;
  spec.n_drivers = 4;
  const SsnBench bench = make_ssn_testbench(spec);
  EXPECT_EQ(bench.input_nodes.size(), 4u);
  EXPECT_EQ(bench.output_nodes.size(), 4u);
  EXPECT_TRUE(bench.circuit.has_node("vssi"));
  EXPECT_NE(bench.circuit.find_element("Lgnd"), nullptr);
  EXPECT_NE(bench.circuit.find_element("Cpad"), nullptr);
  EXPECT_NE(bench.circuit.find_element("Mn0"), nullptr);
  EXPECT_NE(bench.circuit.find_element("Mp3"), nullptr);
  EXPECT_DOUBLE_EQ(bench.t_ramp_end, spec.input_rise_time);
  EXPECT_NEAR(bench.slope, spec.tech.vdd / spec.input_rise_time, 1e-3);
}

TEST(Testbench, OptionsChangeTopology) {
  SsnBenchSpec spec;
  spec.n_drivers = 2;
  spec.include_package_c = false;
  spec.include_pullup = false;
  spec.include_package_r = true;
  const SsnBench bench = make_ssn_testbench(spec);
  EXPECT_EQ(bench.circuit.find_element("Cpad"), nullptr);
  EXPECT_EQ(bench.circuit.find_element("Mp0"), nullptr);
  EXPECT_NE(bench.circuit.find_element("Rgnd"), nullptr);
}

TEST(Testbench, QuietDriversAndStagger) {
  SsnBenchSpec spec;
  spec.n_drivers = 2;
  spec.n_quiet = 1;
  spec.stagger = {0.0, 50e-12};
  const SsnBench bench = make_ssn_testbench(spec);
  EXPECT_EQ(bench.input_nodes.size(), 3u);
  EXPECT_NEAR(bench.t_ramp_end, 50e-12 + spec.input_rise_time, 1e-18);
}

TEST(Testbench, SpecValidation) {
  SsnBenchSpec spec;
  spec.n_drivers = 0;
  EXPECT_THROW(make_ssn_testbench(spec), std::invalid_argument);
  spec = {};
  spec.input_rise_time = 0.0;
  EXPECT_THROW(make_ssn_testbench(spec), std::invalid_argument);
  spec = {};
  spec.stagger = {1e-12};  // wrong length for 8 drivers
  EXPECT_THROW(make_ssn_testbench(spec), std::invalid_argument);
}


TEST(Netlist, SubcircuitExpansion) {
  const auto parsed = parse_netlist(R"(* subckt demo
.subckt RCDIV in out
R1 in out 1k
R2 out 0 1k
C1 out 0 1p
.ends
V1 top 0 DC 2.0
X1 top mid RCDIV
X2 mid bot RCDIV
Rload bot 0 1meg
)");
  // Expanded names are prefixed with the instance.
  EXPECT_NE(parsed.circuit.find_element("X1.R1"), nullptr);
  EXPECT_NE(parsed.circuit.find_element("X2.C1"), nullptr);
  EXPECT_EQ(parsed.circuit.find_element("R1"), nullptr);
  // Ports connect across instances: X1's "out" is the global "mid".
  EXPECT_TRUE(parsed.circuit.has_node("mid"));
  EXPECT_TRUE(parsed.circuit.has_node("X1.out") == false);
}

TEST(Netlist, SubcircuitDcSolvesCorrectly) {
  auto parsed = parse_netlist(R"(
.subckt HALVER in out
Ra in out 1k
Rb out 0 1k
.ends
V1 a 0 DC 4.0
X1 a b HALVER
)");
  const auto dc = ssnkit::sim::dc_operating_point(parsed.circuit);
  EXPECT_NEAR(dc.voltage(parsed.circuit, "b"), 2.0, 1e-9);
}

TEST(Netlist, NestedSubcircuits) {
  auto parsed = parse_netlist(R"(
.subckt UNIT a b
Ru a b 100
.ends
.subckt PAIR x y
X1 x m UNIT
X2 m y UNIT
.ends
V1 p 0 DC 1.0
Xtop p q PAIR
Rq q 0 200
)");
  // 200 Ohm of subcircuit resistance + 200 load: q = 0.5 V.
  const auto dc = ssnkit::sim::dc_operating_point(parsed.circuit);
  EXPECT_NEAR(dc.voltage(parsed.circuit, "q"), 0.5, 1e-9);
  EXPECT_NE(parsed.circuit.find_element("Xtop.X1.Ru"), nullptr);
}

TEST(Netlist, SubcircuitErrors) {
  EXPECT_THROW(parse_netlist("X1 a b NOPE\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist(".subckt A x\nR1 x 0 1k\n"),
               std::invalid_argument);  // unterminated
  EXPECT_THROW(parse_netlist(".ends\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist(
                   ".subckt A x\nR1 x 0 1k\n.ends\nX1 a b A\n"),
               std::invalid_argument);  // port count mismatch
  // Self-recursive subcircuit trips the depth limit.
  EXPECT_THROW(parse_netlist(
                   ".subckt A x\nX1 x A\n.ends\nX1 a A\n"),
               std::invalid_argument);
}

TEST(Netlist, GroundIsGlobalInsideSubcircuits) {
  auto parsed = parse_netlist(R"(
.subckt TIE a
Rt a 0 50
.ends
V1 n 0 DC 1.0
X1 n TIE
)");
  const auto dc = ssnkit::sim::dc_operating_point(parsed.circuit);
  // The subcircuit's "0" is the real ground: current flows, V1 sees 20 mA.
  const auto* v1 =
      dynamic_cast<const VoltageSource*>(parsed.circuit.find_element("V1"));
  ASSERT_NE(v1, nullptr);
  const int idx = parsed.circuit.branch_unknown_index(*v1);
  EXPECT_NEAR(dc.solution[std::size_t(idx)], -1.0 / 50.0, 1e-9);
}

TEST(Netlist, MalformedInputsThrowNotCrash) {
  // A grab-bag of malformed netlists: every one must throw
  // std::invalid_argument (never crash, never silently succeed).
  const char* cases[] = {
      "R1\n",
      "R1 a\n",
      "Rname a 0 notanumber\n",
      "C1 a 0 1p IC\n",
      "C1 a 0 1p IC=\n",
      "V1 a 0 PULSE(1 2 3)\n",
      "V1 a 0 SIN()\n",
      "M1 d g s b\n",
      "K1 L1\n",
      "X1\n",
      ".model\n",
      ".model FOO\n",
      ".model FOO WEIRD\n",
      ".model FOO ASDM K=\n",
      ".tran\n",
      ".bogus directive\n",
      ".subckt\n",
      ".subckt ONLYNAME\n",
      "L1 a 0 5n\nK1 L1 L1 0.5\nK2 L1 LX 0.5\n",
  };
  for (const char* text : cases) {
    EXPECT_THROW(parse_netlist(text), std::invalid_argument) << text;
  }
}

TEST(Netlist, DegenerateButValidInputs) {
  // Things that look odd but are legal.
  EXPECT_NO_THROW(parse_netlist(""));
  EXPECT_NO_THROW(parse_netlist("\n\n\n"));
  EXPECT_NO_THROW(parse_netlist("* only a comment\n"));
  EXPECT_NO_THROW(parse_netlist("just a title line\n"));
  // Binary garbage on the first line is (by SPICE convention) the title.
  EXPECT_NO_THROW(parse_netlist("\x01\x02 binary garbage\n.tran 1p 1n\n"));
  EXPECT_NO_THROW(parse_netlist(".end\n"));
  // Cards after .end are ignored.
  const auto parsed = parse_netlist("R1 a 0 1k\n.end\nR2 a 0 1k\n");
  EXPECT_NE(parsed.circuit.find_element("R1"), nullptr);
  EXPECT_EQ(parsed.circuit.find_element("R2"), nullptr);
}

}  // namespace
