// Section 4 / Table 1 (LC model): damping classification, per-region exact
// solutions against RK45, the four max-SSN formulas, and limits.
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "numeric/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using ssnkit::core::DampingRegion;
using ssnkit::core::LcModel;
using ssnkit::core::LOnlyModel;
using ssnkit::core::MaxSsnCase;
using ssnkit::core::SsnScenario;
using ssnkit::numeric::rk45;
using ssnkit::numeric::Vector;

SsnScenario base_scenario() {
  SsnScenario s;
  s.n_drivers = 8;
  s.inductance = 5e-9;
  s.capacitance = 1e-12;  // PGA pad capacitance
  s.vdd = 1.8;
  s.slope = 1.8 / 0.1e-9;
  s.device = {.k = 6e-3, .lambda = 1.25, .vx = 0.61};
  return s;
}

TEST(LcModel, RequiresCapacitance) {
  EXPECT_THROW(LcModel(base_scenario().with_capacitance(0.0)),
               std::invalid_argument);
}

TEST(LcModel, RegionClassificationAgainstCcrit) {
  const SsnScenario s = base_scenario();
  const double c_crit = s.critical_capacitance();
  EXPECT_EQ(LcModel(s.with_capacitance(c_crit * 0.5)).region(),
            DampingRegion::kOverDamped);
  EXPECT_EQ(LcModel(s.with_capacitance(c_crit * 2.0)).region(),
            DampingRegion::kUnderDamped);
  EXPECT_EQ(LcModel(s.with_capacitance(c_crit)).region(),
            DampingRegion::kCriticallyDamped);
}

TEST(LcModel, ZetaFormula) {
  const SsnScenario s = base_scenario();
  const LcModel m(s);
  const double expected_zeta = 0.5 * 8.0 * 6e-3 * 1.25 *
                               std::sqrt(5e-9 / 1e-12);
  EXPECT_NEAR(m.zeta(), expected_zeta, 1e-9 * expected_zeta);
  EXPECT_NEAR(m.omega0(), 1.0 / std::sqrt(5e-9 * 1e-12), 1.0);
}

TEST(LcModel, CcritIsQuadraticInN) {
  const SsnScenario s = base_scenario();
  const double c1 = s.with_drivers(4).critical_capacitance();
  const double c2 = s.with_drivers(8).critical_capacitance();
  EXPECT_NEAR(c2 / c1, 4.0, 1e-9);
}

TEST(LcModel, InitialConditionsHold) {
  for (double c_mult : {0.3, 1.0, 3.0}) {
    const SsnScenario s = base_scenario().with_capacitance(
        base_scenario().critical_capacitance() * c_mult);
    const LcModel m(s);
    EXPECT_NEAR(m.vn(s.t_on()), 0.0, 1e-12);
    // The derivative starts at 0 and ramps at a rate of order V_inf*omega0^2;
    // scale the tolerance accordingly.
    const double dt = 1e-6 / m.omega0();
    EXPECT_NEAR(m.vn_dot(s.t_on() + dt), 0.0,
                1e-4 * s.v_inf() * m.omega0());
  }
}

class LcOdeResidual : public ::testing::TestWithParam<double> {};

TEST_P(LcOdeResidual, SolutionSatisfiesEqn13) {
  // L*C*V'' + N*L*K*lambda*V' + V = N*L*K*S across all damping regions,
  // with V'' from finite differences of the analytic solution.
  const SsnScenario base = base_scenario();
  const SsnScenario s =
      base.with_capacitance(base.critical_capacitance() * GetParam());
  const LcModel m(s);
  const double nlk = double(s.n_drivers) * s.inductance * s.device.k;
  const double lc = s.inductance * s.capacitance;
  // h balances truncation against double-rounding in the second difference.
  const double h = (s.t_ramp_end() - s.t_on()) * 1e-3;
  for (double frac : {0.1, 0.4, 0.7, 0.95}) {
    const double t = s.t_on() + frac * (s.t_ramp_end() - s.t_on());
    const double vpp = (m.vn(t + h) - 2.0 * m.vn(t) + m.vn(t - h)) / (h * h);
    const double residual =
        lc * vpp + nlk * s.device.lambda * m.vn_dot(t) + m.vn(t) - nlk * s.slope;
    EXPECT_NEAR(residual / (nlk * s.slope), 0.0, 1e-4)
        << "c_mult=" << GetParam() << " frac=" << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegions, LcOdeResidual,
                         ::testing::Values(0.2, 0.5, 0.9999999, 2.0, 5.0, 20.0));

class LcVsRk45 : public ::testing::TestWithParam<double> {};

TEST_P(LcVsRk45, WaveformMatchesReference) {
  const SsnScenario base = base_scenario();
  const SsnScenario s =
      base.with_capacitance(base.critical_capacitance() * GetParam());
  const LcModel m(s);
  const double nlk = double(s.n_drivers) * s.inductance * s.device.k;
  const double lc = s.inductance * s.capacitance;
  // y = (V, V'); V'' = (NLKS - V - NLK*lambda*V')/(LC).
  const auto rhs = [&](double, const Vector& y) {
    return Vector{y[1],
                  (nlk * s.slope - y[0] - nlk * s.device.lambda * y[1]) / lc};
  };
  const auto sol = rk45(rhs, s.t_on(), s.t_ramp_end(), Vector{0.0, 0.0});
  // Compare at the integrator's own points (interpolating between its
  // large steps would dominate the error budget).
  for (std::size_t i = 0; i < sol.t.size(); ++i)
    EXPECT_NEAR(m.vn(sol.t[i]), sol.y[i][0], 1e-6 * s.v_inf())
        << "c_mult=" << GetParam() << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(AllRegions, LcVsRk45,
                         ::testing::Values(0.25, 1.0, 4.0, 16.0));

TEST(LcModel, ContinuousAcrossCriticalDamping) {
  // The three analytic branches must agree to high accuracy near zeta = 1.
  const SsnScenario base = base_scenario();
  const double c_crit = base.critical_capacitance();
  const LcModel slightly_over(base.with_capacitance(c_crit * (1.0 - 1e-4)));
  const LcModel critical(base.with_capacitance(c_crit));
  const LcModel slightly_under(base.with_capacitance(c_crit * (1.0 + 1e-4)));
  const double t = base.t_on() + 0.5 * base.active_ramp();
  EXPECT_NEAR(slightly_over.vn(t), critical.vn(t), 1e-3 * critical.vn(t));
  EXPECT_NEAR(slightly_under.vn(t), critical.vn(t), 1e-3 * critical.vn(t));
  EXPECT_NEAR(slightly_over.v_max(), slightly_under.v_max(),
              1e-3 * critical.v_max());
}

TEST(LcModel, SmallCapacitanceApproachesLOnly) {
  const SsnScenario base = base_scenario();
  const LOnlyModel l_only(base.with_capacitance(0.0));
  const LcModel tiny_c(base.with_capacitance(1e-18));
  EXPECT_NEAR(tiny_c.v_max(), l_only.v_max(), 1e-3 * l_only.v_max());
  const double t = base.t_on() + 0.7 * base.active_ramp();
  EXPECT_NEAR(tiny_c.vn(t), l_only.vn(t), 1e-3 * l_only.vn(t));
}

TEST(LcModel, FourCasesAreReachable) {
  const SsnScenario base = base_scenario();
  const double c_crit = base.critical_capacitance();
  EXPECT_EQ(LcModel(base.with_capacitance(c_crit * 0.3)).max_case(),
            MaxSsnCase::kOverDamped);
  EXPECT_EQ(LcModel(base.with_capacitance(c_crit)).max_case(),
            MaxSsnCase::kCriticallyDamped);
  // Strongly under-damped with a fast ramp: the first peak fits inside.
  const LcModel deep_under(base.with_capacitance(c_crit * 50.0));
  ASSERT_EQ(deep_under.region(), DampingRegion::kUnderDamped);
  // Whether 3a or 3b applies depends on timing; force each with the slope.
  const SsnScenario slow = base.with_capacitance(c_crit * 9.0).with_slope(
      base.slope / 40.0);  // long ramp: peak inside -> 3a
  EXPECT_EQ(LcModel(slow).max_case(), MaxSsnCase::kUnderDampedFirstPeak);
  const SsnScenario fast = base.with_capacitance(c_crit * 9.0).with_slope(
      base.slope * 20.0);  // short ramp: boundary -> 3b
  EXPECT_EQ(LcModel(fast).max_case(), MaxSsnCase::kUnderDampedBoundary);
}

TEST(LcModel, Case3aPeakFormula) {
  // In case 3a, v_max equals the analytic first-peak value AND the peak of
  // the sampled waveform.
  const SsnScenario base = base_scenario();
  const SsnScenario s = base.with_capacitance(base.critical_capacitance() * 9.0)
                            .with_slope(base.slope / 40.0);
  const LcModel m(s);
  ASSERT_EQ(m.max_case(), MaxSsnCase::kUnderDampedFirstPeak);
  const double expected =
      s.v_inf() * (1.0 + std::exp(-m.sigma() * M_PI / m.omega_d()));
  EXPECT_NEAR(m.v_max(), expected, 1e-12);
  EXPECT_NEAR(m.t_first_peak(), s.t_on() + M_PI / m.omega_d(), 1e-18);
  const auto w = m.vn_waveform(4096);
  EXPECT_NEAR(w.maximum().value, m.v_max(), 2e-3 * m.v_max());
  EXPECT_NEAR(w.maximum().t, m.t_first_peak(), 0.02 * m.t_first_peak());
}

TEST(LcModel, BoundaryCasesMatchWaveformMax) {
  const SsnScenario base = base_scenario();
  for (double c_mult : {0.3, 1.0, 3.0}) {
    const LcModel m(base.with_capacitance(base.critical_capacitance() * c_mult));
    const auto w = m.vn_waveform(4096);
    EXPECT_NEAR(w.maximum().value, m.v_max(), 3e-3 * m.v_max())
        << "c_mult=" << c_mult;
  }
}

TEST(LcModel, TFirstPeakThrowsOutsideUnderdamped) {
  const SsnScenario base = base_scenario();
  const LcModel over(base.with_capacitance(base.critical_capacitance() * 0.3));
  EXPECT_THROW(over.t_first_peak(), std::logic_error);
}

TEST(LcModel, OverdampedMonotoneDuringRamp) {
  // The paper: the derivative is positive definite in cases 1 and 2.
  const SsnScenario base = base_scenario();
  const LcModel m(base.with_capacitance(base.critical_capacitance() * 0.4));
  double prev = -1.0;
  for (double frac = 0.01; frac <= 1.0; frac += 0.01) {
    const double t = base.t_on() + frac * base.active_ramp();
    const double v = m.vn(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LcModel, UnderdampedOvershootsVInf) {
  // Case 3a peaks above the asymptote (up to 2x), unlike the L-only model.
  const SsnScenario base = base_scenario();
  const SsnScenario s = base.with_capacitance(base.critical_capacitance() * 9.0)
                            .with_slope(base.slope / 40.0);
  const LcModel m(s);
  EXPECT_GT(m.v_max(), s.v_inf());
  EXPECT_LT(m.v_max(), 2.0 * s.v_inf());
}

TEST(LcModel, InductorCurrentSplitsFromDriverCurrent) {
  // i_L = N*i_driver - C*dV/dt: at the first peak dV/dt = 0, so they match.
  const SsnScenario base = base_scenario();
  const SsnScenario s = base.with_capacitance(base.critical_capacitance() * 9.0)
                            .with_slope(base.slope / 40.0);
  const LcModel m(s);
  const double tp = m.t_first_peak();
  EXPECT_NEAR(m.i_inductor(tp), double(s.n_drivers) * m.i_driver(tp),
              1e-9);
}

TEST(LcModel, StringsForEnums) {
  using ssnkit::core::to_string;
  EXPECT_STREQ(to_string(DampingRegion::kOverDamped), "over-damped");
  EXPECT_NE(std::string(to_string(MaxSsnCase::kUnderDampedFirstPeak)).find("3a"),
            std::string::npos);
}

}  // namespace
