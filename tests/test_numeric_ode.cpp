// Reference ODE integrators and the Levenberg–Marquardt fitter.
#include "numeric/levenberg_marquardt.hpp"
#include "numeric/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::numeric;

TEST(Rk4, ExponentialDecay) {
  // y' = -y, y(0) = 1 -> y(1) = e^-1.
  const auto sol = rk4([](double, const Vector& y) { return Vector{-y[0]}; }, 0.0,
                       1.0, Vector{1.0}, 200);
  EXPECT_NEAR(sol.y.back()[0], std::exp(-1.0), 1e-9);
}

TEST(Rk4, FourthOrderConvergence) {
  const auto err_with = [](std::size_t steps) {
    const auto sol = rk4([](double, const Vector& y) { return Vector{-y[0]}; },
                         0.0, 1.0, Vector{1.0}, steps);
    return std::fabs(sol.y.back()[0] - std::exp(-1.0));
  };
  const double e1 = err_with(20);
  const double e2 = err_with(40);
  // Halving h should shrink the error by ~2^4.
  EXPECT_GT(e1 / e2, 12.0);
  EXPECT_LT(e1 / e2, 20.0);
}

TEST(Rk45, HarmonicOscillatorEnergy) {
  // y'' = -y as a system; after a full period the state returns.
  const auto rhs = [](double, const Vector& y) { return Vector{y[1], -y[0]}; };
  Rk45Options opts;
  opts.rel_tol = 1e-10;
  opts.abs_tol = 1e-12;
  const auto sol = rk45(rhs, 0.0, 2.0 * M_PI, Vector{1.0, 0.0}, opts);
  EXPECT_NEAR(sol.y.back()[0], 1.0, 1e-7);
  EXPECT_NEAR(sol.y.back()[1], 0.0, 1e-7);
  EXPECT_GT(sol.steps_taken, 10u);
}

TEST(Rk45, AdaptivityRejectsSteps) {
  // A stiff-ish transition forces rejections with a large initial step.
  const auto rhs = [](double t, const Vector& y) {
    return Vector{-100.0 * (y[0] - std::sin(t))};
  };
  Rk45Options opts;
  opts.initial_step = 0.5;
  const auto sol = rk45(rhs, 0.0, 1.0, Vector{0.0}, opts);
  EXPECT_GT(sol.steps_rejected, 0u);
}

TEST(Rk45, SampleInterpolates) {
  const auto sol = rk4([](double, const Vector&) { return Vector{1.0}; }, 0.0, 1.0,
                       Vector{0.0}, 10);
  EXPECT_NEAR(sol.sample(0.55), 0.55, 1e-12);
  EXPECT_NEAR(sol.sample(-1.0), 0.0, 1e-12);  // clamped
  EXPECT_NEAR(sol.sample(2.0), 1.0, 1e-12);
}

TEST(Rk45, BadSpanThrows) {
  EXPECT_THROW(rk45([](double, const Vector& y) { return y; }, 1.0, 0.0,
                    Vector{1.0}),
               std::invalid_argument);
}

TEST(Rk45, StepBudgetReturnsTruncatedPrefix) {
  // A tiny step budget cannot reach t1; the accepted prefix must come back
  // with the status flag instead of an exception, and stay sampleable.
  const auto rhs = [](double, const Vector& y) { return Vector{-y[0]}; };
  Rk45Options opts;
  opts.rel_tol = 1e-12;
  opts.abs_tol = 1e-14;
  opts.max_steps = 10;
  const auto sol = rk45(rhs, 0.0, 1.0, Vector{1.0}, opts);
  EXPECT_EQ(sol.status, OdeStatus::kStepBudgetExhausted);
  EXPECT_FALSE(sol.ok());
  ASSERT_GE(sol.t.size(), 2u);
  EXPECT_LT(sol.t.back(), 1.0);
  // The prefix is a valid trajectory of the ODE.
  const double t_end = sol.t.back();
  EXPECT_NEAR(sol.sample(t_end), std::exp(-t_end), 1e-6);
}

TEST(Rk45, StepUnderflowReturnsTruncatedPrefix) {
  // A violently stiff RHS with min_step close to the initial step: every
  // trial step is rejected until h underflows. The initial point survives.
  const auto rhs = [](double, const Vector& y) { return Vector{-1e12 * y[0]}; };
  Rk45Options opts;
  opts.initial_step = 0.5;
  opts.min_step = 0.4;
  const auto sol = rk45(rhs, 0.0, 1.0, Vector{1.0}, opts);
  EXPECT_EQ(sol.status, OdeStatus::kStepUnderflow);
  EXPECT_FALSE(sol.ok());
  ASSERT_GE(sol.t.size(), 1u);
  EXPECT_DOUBLE_EQ(sol.t.front(), 0.0);
  EXPECT_DOUBLE_EQ(sol.sample(0.0), 1.0);
  EXPECT_LT(sol.t.back(), 1.0);
}

TEST(Rk45, CleanRunReportsOk) {
  const auto sol = rk45(
      [](double, const Vector& y) { return Vector{-y[0]}; }, 0.0, 1.0,
      Vector{1.0});
  EXPECT_EQ(sol.status, OdeStatus::kOk);
  EXPECT_TRUE(sol.ok());
}

TEST(Lm, FitsExponential) {
  // Data from y = 3*exp(-2x); recover (a, b) from y = a*exp(-b x).
  const int n = 30;
  std::vector<double> xs(n), ys(n);
  for (int i = 0; i < n; ++i) {
    xs[std::size_t(i)] = 0.1 * i;
    ys[std::size_t(i)] = 3.0 * std::exp(-2.0 * xs[std::size_t(i)]);
  }
  const auto residual = [&](const Vector& p, Vector& r) {
    for (int i = 0; i < n; ++i)
      r[std::size_t(i)] = p[0] * std::exp(-p[1] * xs[std::size_t(i)]) -
                          ys[std::size_t(i)];
  };
  const auto fit = levenberg_marquardt(residual, Vector{1.0, 1.0}, n);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.parameters[0], 3.0, 1e-5);
  EXPECT_NEAR(fit.parameters[1], 2.0, 1e-5);
  EXPECT_LT(fit.residual_norm, 1e-6);
}

TEST(Lm, RespectsBounds) {
  // Unconstrained optimum at p = 5; bound caps it at 2.
  const auto residual = [](const Vector& p, Vector& r) { r[0] = p[0] - 5.0; };
  LmOptions opts;
  opts.lower_bounds = Vector{0.0};
  opts.upper_bounds = Vector{2.0};
  const auto fit = levenberg_marquardt(residual, Vector{1.0}, 1, opts);
  EXPECT_NEAR(fit.parameters[0], 2.0, 1e-8);
}

TEST(Lm, FewerResidualsThanParamsThrows) {
  const auto residual = [](const Vector&, Vector& r) { r[0] = 0.0; };
  EXPECT_THROW(levenberg_marquardt(residual, Vector{1.0, 2.0}, 1),
               std::invalid_argument);
}

TEST(Lm, AlreadyConvergedStaysPut) {
  const auto residual = [](const Vector& p, Vector& r) { r[0] = p[0] - 1.0; };
  const auto fit = levenberg_marquardt(residual, Vector{1.0}, 1);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.parameters[0], 1.0, 1e-12);
}

}  // namespace
