// Tapered driver-chain builder and its qualitative physics.
#include "circuit/driver_chain.hpp"
#include "sim/engine.hpp"
#include "waveform/metrics.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;

TEST(DriverChain, SpecValidation) {
  TaperedDriverSpec spec;
  spec.stages = 0;
  EXPECT_THROW(make_tapered_driver_bench(spec), std::invalid_argument);
  spec = {};
  spec.taper = 1.0;
  EXPECT_THROW(make_tapered_driver_bench(spec), std::invalid_argument);
  spec = {};
  spec.n_drivers = 0;
  EXPECT_THROW(make_tapered_driver_bench(spec), std::invalid_argument);
  spec = {};
  spec.input_rise_time = 0.0;
  EXPECT_THROW(make_tapered_driver_bench(spec), std::invalid_argument);
}

TEST(DriverChain, TopologyShape) {
  TaperedDriverSpec spec;
  spec.n_drivers = 2;
  spec.stages = 3;
  const auto bench = make_tapered_driver_bench(spec);
  EXPECT_EQ(bench.input_nodes.size(), 2u);
  EXPECT_EQ(bench.output_nodes.size(), 2u);
  // 3 stages per driver: Mn/Mp each, inter-stage gate caps, pad loads.
  EXPECT_NE(bench.circuit.find_element("Mn0_0"), nullptr);
  EXPECT_NE(bench.circuit.find_element("Mn1_2"), nullptr);
  EXPECT_NE(bench.circuit.find_element("Cg0_0"), nullptr);
  EXPECT_NE(bench.circuit.find_element("Cl0"), nullptr);
  EXPECT_FALSE(bench.final_gate_node.empty());
}

TEST(DriverChain, DcLevelsAlternateThroughTheChain) {
  // With a 4-stage chain the input starts HIGH (falling edge chosen so the
  // final gate rises): stage outputs alternate low/high/low and the pad
  // starts HIGH.
  TaperedDriverSpec spec;
  spec.n_drivers = 1;
  spec.stages = 4;
  auto bench = make_tapered_driver_bench(spec);
  const auto dc = sim::dc_operating_point(bench.circuit);
  const double vdd = spec.tech.vdd;
  EXPECT_NEAR(dc.voltage(bench.circuit, "in0"), vdd, 0.01);       // input high
  EXPECT_NEAR(dc.voltage(bench.circuit, "n0_0"), 0.0, 0.05);      // inverted
  EXPECT_NEAR(dc.voltage(bench.circuit, "n0_1"), vdd, 0.05);
  EXPECT_NEAR(dc.voltage(bench.circuit, "n0_2"), 0.0, 0.05);      // final gate
  EXPECT_NEAR(dc.voltage(bench.circuit, "out0"), vdd, 0.05);      // pad high
}

TEST(DriverChain, PadDischargesAndGroundBounces) {
  TaperedDriverSpec spec;
  spec.n_drivers = 2;
  spec.stages = 3;
  spec.taper = 3.0;
  auto bench = make_tapered_driver_bench(spec);
  sim::TransientOptions opts;
  opts.t_stop = 4e-9;
  opts.dt_max = 10e-12;
  const auto result = sim::run_transient(bench.circuit, opts);
  // Pad ends low.
  EXPECT_LT(result.final_value("out0"), 0.2);
  // Ground bounced on the way.
  EXPECT_GT(result.waveform("vssi").maximum().value, 0.05);
}

TEST(DriverChain, EdgeSharpensThroughTheChain) {
  // The whole point of tapering: the final gate's edge is much faster than
  // the 0.3 ns core edge feeding the chain.
  TaperedDriverSpec spec;
  spec.n_drivers = 1;
  spec.stages = 4;
  spec.taper = 2.5;
  auto bench = make_tapered_driver_bench(spec);
  sim::TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt_max = 5e-12;
  const auto result = sim::run_transient(bench.circuit, opts);
  const auto gate = result.waveform(bench.final_gate_node);
  const auto t10 = waveform::first_rising_crossing(gate, 0.1 * spec.tech.vdd);
  const auto t90 = waveform::first_rising_crossing(gate, 0.9 * spec.tech.vdd);
  ASSERT_TRUE(t10 && t90);
  EXPECT_LT(*t90 - *t10, spec.input_rise_time);
}

TEST(DriverChain, NoisyPredriverGroundSelfThrottles) {
  const auto vmax_with = [](bool noisy_predrivers) {
    TaperedDriverSpec spec;
    spec.n_drivers = 4;
    spec.stages = 4;
    spec.predrivers_on_noisy_ground = noisy_predrivers;
    auto bench = make_tapered_driver_bench(spec);
    sim::TransientOptions opts;
    opts.t_stop = 2e-9;
    opts.dt_max = 10e-12;
    return sim::run_transient(bench.circuit, opts)
        .waveform("vssi")
        .maximum()
        .value;
  };
  // Counter-intuitive but real: pre-drivers returning through the noisy
  // I/O ground are slowed by the very bounce they help create (their
  // pull-downs lose overdrive), which softens the final gate's edge —
  // negative feedback. Moving them to a quiet core ground removes that
  // throttle and the peak bounce INCREASES.
  const double v_noisy = vmax_with(true);
  const double v_quiet = vmax_with(false);
  EXPECT_GT(v_quiet, v_noisy);
  // Both remain physical (well under the rail).
  EXPECT_LT(v_quiet, 1.5);
}

}  // namespace
