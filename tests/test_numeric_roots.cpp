// Scalar root finding, the stable quadratic, and the statistics helpers.
#include "numeric/polynomial.hpp"
#include "numeric/roots.hpp"
#include "numeric/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::numeric;

TEST(Bisect, FindsSqrtTwo) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, EndpointRootReturnsImmediately) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, NoBracketThrows) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Brent, FindsCosRoot) {
  const double r = brent([](double x) { return std::cos(x); }, 1.0, 2.0);
  EXPECT_NEAR(r, M_PI / 2.0, 1e-10);
}

TEST(Brent, HighMultiplicityStillConverges) {
  const double r = brent([](double x) { return (x - 1.0) * (x - 1.0) * (x - 1.0); },
                         0.0, 3.0);
  EXPECT_NEAR(r, 1.0, 1e-4);
}

TEST(NewtonSafeguarded, QuadraticConvergence) {
  const auto f = [](double x) { return x * x * x - 8.0; };
  const auto df = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(newton_safeguarded(f, df, 1.0, 0.0, 10.0), 2.0, 1e-10);
}

TEST(NewtonSafeguarded, FallsBackWhenDerivativeVanishes) {
  // f'(0) = 0 at the start point; the bracket rescues the iteration.
  const auto f = [](double x) { return x * x * x - 1.0; };
  const auto df = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(newton_safeguarded(f, df, 0.0, -1.0, 2.0), 1.0, 1e-9);
}

TEST(Newton, PlainNewtonConverges) {
  const auto r = newton([](double x) { return x * x - 4.0; },
                        [](double x) { return 2.0 * x; }, 3.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 2.0, 1e-10);
}

TEST(Newton, ZeroDerivativeFails) {
  const auto r = newton([](double) { return 1.0; }, [](double) { return 0.0; }, 0.0);
  EXPECT_FALSE(r.has_value());
}

TEST(FixedPoint, ConvergesToCosineFixedPoint) {
  const auto r = fixed_point([](double x) { return std::cos(x); }, 1.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 0.7390851332, 1e-6);
}

TEST(FixedPoint, BadDampingThrows) {
  EXPECT_THROW(fixed_point([](double x) { return x; }, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(fixed_point([](double x) { return x; }, 0.0, 1.5),
               std::invalid_argument);
}

TEST(Quadratic, SimpleRoots) {
  const auto r = quadratic_real_roots(1.0, -3.0, 2.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR((*r)[0], 1.0, 1e-14);
  EXPECT_NEAR((*r)[1], 2.0, 1e-14);
}

TEST(Quadratic, ComplexRootsReturnNullopt) {
  EXPECT_FALSE(quadratic_real_roots(1.0, 0.0, 1.0).has_value());
}

TEST(Quadratic, LinearDegenerate) {
  const auto r = quadratic_real_roots(0.0, 2.0, -4.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ((*r)[0], 2.0);
  EXPECT_DOUBLE_EQ((*r)[1], 2.0);
}

TEST(Quadratic, CancellationResistant) {
  // Roots 1e-8 and 1e8: the naive formula loses the small root entirely.
  const double a = 1.0, b = -(1e8 + 1e-8), c = 1.0;
  const auto r = quadratic_real_roots(a, b, c);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR((*r)[0] / 1e-8, 1.0, 1e-9);
  EXPECT_NEAR((*r)[1] / 1e8, 1.0, 1e-9);
}

TEST(Quadratic, ComplexPairConjugate) {
  const auto roots = quadratic_complex_roots(1.0, 2.0, 5.0);  // -1 ± 2i
  EXPECT_NEAR(roots[0].real(), -1.0, 1e-12);
  EXPECT_NEAR(std::fabs(roots[0].imag()), 2.0, 1e-12);
  EXPECT_NEAR(roots[0].imag(), -roots[1].imag(), 1e-12);
}

TEST(Polyval, HornerMatchesDirect) {
  const double coeffs[] = {1.0, -2.0, 3.0};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(polyval(coeffs, 3, 2.0), 9.0);
  EXPECT_DOUBLE_EQ(polyval(coeffs, 0, 2.0), 0.0);
}

TEST(Stats, BasicReductions) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(max_value(xs), 4.0);
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_NEAR(rms(xs), std::sqrt(30.0 / 4.0), 1e-14);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-14);
  const double ys[] = {-5.0, 3.0};
  EXPECT_DOUBLE_EQ(max_abs(ys), 5.0);
}

TEST(Stats, RelativeErrorFloorGuardsZeroReference) {
  EXPECT_DOUBLE_EQ(relative_error(1.0, 2.0), 0.5);
  EXPECT_LE(relative_error(1e-15, 0.0, 1e-12), 1e-3 + 1e-12);
  EXPECT_THROW(relative_error(1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Stats, VectorRelativeErrors) {
  const double got[] = {1.1, 2.0};
  const double want[] = {1.0, 2.0};
  EXPECT_NEAR(max_relative_error(got, want), 0.1, 1e-12);
  EXPECT_NEAR(rms_relative_error(got, want), 0.1 / std::sqrt(2.0), 1e-12);
  const double short_ref[] = {1.0};
  EXPECT_THROW(max_relative_error(got, short_ref), std::invalid_argument);
}

}  // namespace
