// Contract-layer tests: every migrated precondition throws ContractViolation
// (which is-a std::invalid_argument, so pre-migration call sites still work),
// and SSN_ASSERT_FINITE stops seeded NaNs at the solver boundaries.
#include "support/contracts.hpp"

#include "circuit/driver_chain.hpp"
#include "circuit/testbench.hpp"
#include "numeric/levenberg_marquardt.hpp"
#include "numeric/lu.hpp"
#include "numeric/ode.hpp"
#include "process/package.hpp"
#include "process/technology.hpp"
#include "waveform/source_spec.hpp"
#include "waveform/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace {

using ssnkit::ContractViolation;
using ssnkit::numeric::LmOptions;
using ssnkit::numeric::Matrix;
using ssnkit::numeric::Vector;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Contracts, RequirePassesAndFails) {
  EXPECT_NO_THROW(SSN_REQUIRE(1 + 1 == 2, "arithmetic works"));
  EXPECT_THROW(SSN_REQUIRE(false, "always fails"), ContractViolation);
}

TEST(Contracts, EnsurePassesAndFails) {
  EXPECT_NO_THROW(SSN_ENSURE(true, "ok"));
  EXPECT_THROW(SSN_ENSURE(false, "bad result"), ContractViolation);
}

TEST(Contracts, ViolationIsInvalidArgument) {
  // Migrated call sites used to throw std::invalid_argument; catching that
  // must keep working.
  EXPECT_THROW(SSN_REQUIRE(false, "compat"), std::invalid_argument);
  EXPECT_THROW(SSN_REQUIRE(false, "compat"), std::logic_error);
}

TEST(Contracts, MessageCarriesFileLineAndKind) {
  try {
    SSN_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("the message"), std::string::npos) << what;
  }
  try {
    SSN_ENSURE(false, "post");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, AssertFiniteOnScalarsAndRanges) {
  const double ok = 1.5;
  EXPECT_NO_THROW(SSN_ASSERT_FINITE(ok));
  const double bad = kNaN;
  EXPECT_THROW(SSN_ASSERT_FINITE(bad), ContractViolation);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(SSN_ASSERT_FINITE(inf), ContractViolation);

  const Vector v{1.0, 2.0, 3.0};
  EXPECT_NO_THROW(SSN_ASSERT_FINITE(v));
  const Vector poisoned{1.0, kNaN, 3.0};
  EXPECT_THROW(SSN_ASSERT_FINITE(poisoned), ContractViolation);
  const std::vector<double> stdvec{0.0, -inf};
  EXPECT_THROW(SSN_ASSERT_FINITE(stdvec), ContractViolation);
}

// --- migrated preconditions -------------------------------------------------

TEST(Contracts, PackageNegativeInductanceThrows) {
  ssnkit::process::Package p{"bad", -1e-9, 1e-12, 0.01};
  EXPECT_THROW(p.validate(), ContractViolation);
  EXPECT_THROW(ssnkit::process::package_pga().with_ground_pads(0),
               ContractViolation);
}

TEST(Contracts, TechnologyBadVddThrows) {
  ssnkit::process::Technology t = ssnkit::process::tech_180nm();
  t.vdd = 0.0;
  EXPECT_THROW(t.validate(), ContractViolation);
}

TEST(Contracts, WaveformNonIncreasingTimesThrows) {
  EXPECT_THROW(ssnkit::waveform::Waveform({0.0, 1.0, 1.0}, {0.0, 1.0, 2.0}),
               ContractViolation);
  EXPECT_THROW(ssnkit::waveform::Waveform({0.0, 1.0}, {0.0}), ContractViolation);
  ssnkit::waveform::Waveform w({0.0, 1.0}, {0.0, 1.0});
  EXPECT_THROW(w.append(0.5, 2.0), ContractViolation);
}

TEST(Contracts, SourceSpecValidation) {
  using namespace ssnkit::waveform;
  EXPECT_THROW(validate(SourceSpec{Ramp{.t_start = 0.0, .rise_time = 0.0}}),
               ContractViolation);
  EXPECT_THROW(validate(SourceSpec{Sine{.frequency = -1.0}}), ContractViolation);
}

TEST(Contracts, LmBoundSizeMismatchThrows) {
  const auto residual = [](const Vector& p, Vector& r) { r[0] = p[0]; r[1] = p[0]; };
  LmOptions opts;
  opts.lower_bounds = {0.0, 0.0};  // two bounds for a one-parameter problem
  EXPECT_THROW(
      ssnkit::numeric::levenberg_marquardt(residual, Vector{1.0}, 2, opts),
      ContractViolation);
}

TEST(Contracts, LmNonFiniteInitialResidualFailsFast) {
  // Regression: a NaN cost at p0 used to exhaust the damping loop and
  // return converged=true with untouched parameters.
  const auto residual = [](const Vector& p, Vector& r) {
    r[0] = kNaN;
    r[1] = p[0];
  };
  EXPECT_THROW(ssnkit::numeric::levenberg_marquardt(residual, Vector{1.0}, 2, {}),
               ContractViolation);
}

TEST(Contracts, BenchSpecPreconditions) {
  ssnkit::circuit::SsnBenchSpec spec;
  spec.tech = ssnkit::process::tech_350nm();
  spec.package = ssnkit::process::package_pga();
  spec.n_drivers = 0;
  EXPECT_THROW(spec.validate(), ContractViolation);

  ssnkit::circuit::TaperedDriverSpec tspec;
  tspec.tech = ssnkit::process::tech_350nm();
  tspec.package = ssnkit::process::package_pga();
  tspec.taper = 0.5;
  EXPECT_THROW(tspec.validate(), ContractViolation);
}

// --- finite-value postconditions on the hot kernels -------------------------

TEST(Contracts, LuSolveTrapsSeededNan) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  ssnkit::numeric::LuFactorization lu(a);
  EXPECT_THROW(lu.solve(Vector{1.0, kNaN}), ContractViolation);
  EXPECT_NO_THROW(lu.solve(Vector{1.0, 1.0}));
  EXPECT_THROW(ssnkit::numeric::solve_linear(a, Vector{kNaN, 0.0}),
               ContractViolation);
}

TEST(Contracts, Rk4TrapsNanState) {
  const auto rhs = [](double, const Vector& y) { return y; };
  EXPECT_THROW(ssnkit::numeric::rk4(rhs, 0.0, 1.0, Vector{kNaN}, 8),
               ContractViolation);
  // RHS that blows up mid-integration: 1/(t - 0.5) crosses a pole.
  const auto pole = [](double t, const Vector& y) {
    Vector dy(y.size());
    dy[0] = 1.0 / (t - 0.5) / (t - 0.5) * 1e300;
    return dy;
  };
  EXPECT_THROW(ssnkit::numeric::rk4(pole, 0.0, 1.0, Vector{0.0}, 4),
               ContractViolation);
}

TEST(Contracts, Rk45TrapsNanState) {
  const auto rhs = [](double, const Vector& y) { return y; };
  EXPECT_THROW(ssnkit::numeric::rk45(rhs, 0.0, 1.0, Vector{kNaN}, {}),
               ContractViolation);
  const auto nan_rhs = [](double t, const Vector& y) {
    Vector dy(y.size());
    dy[0] = t > 0.2 ? kNaN : 1.0;
    return dy;
  };
  EXPECT_THROW(ssnkit::numeric::rk45(nan_rhs, 0.0, 1.0, Vector{0.0}, {}),
               ContractViolation);
}

TEST(Contracts, NoContractsCompileOut) {
  // The macros are exercised with SSNKIT_NO_CONTRACTS in a nested scope via
  // the shipped no-op definitions; here we just confirm the always-on build
  // evaluates the condition exactly once.
  int evaluations = 0;
  SSN_REQUIRE(++evaluations == 1, "single evaluation");
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
