// The batch runner's core guarantee: serial (threads = 1) and parallel
// (threads > 1) execution of every analysis batch produce bit-identical
// results. Variation factors are drawn up front in serial order, each
// sample/point writes only its index-addressed slot, and order-dependent
// bookkeeping (summaries, survivor statistics) is replayed sequentially
// after the join — so EXPECT_EQ on doubles is the correct assertion here,
// not EXPECT_NEAR.
#include "analysis/montecarlo.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/sweeps.hpp"
#include "support/faultinject.hpp"

#include <gtest/gtest.h>

#include <cstddef>

namespace {

using namespace ssnkit;

core::SsnScenario nominal_scenario() {
  core::SsnScenario s;
  s.n_drivers = 8;
  s.inductance = 5e-9;
  s.vdd = 1.8;
  s.slope = 1.8e10;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  s.capacitance = s.critical_capacitance();
  return s;
}

TEST(ParallelEquivalence, ClosedFormMonteCarloIsBitIdentical) {
  const core::SsnScenario s = nominal_scenario();
  analysis::MonteCarloOptions serial;
  serial.samples = 2000;
  serial.threads = 1;
  analysis::MonteCarloOptions parallel = serial;
  parallel.threads = 4;

  const auto a = analysis::monte_carlo_vmax(s, serial);
  const auto b = analysis::monte_carlo_vmax(s, parallel);

  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;  // ssnlint-ignore(SSN-L001)
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.region_flip_fraction, b.region_flip_fraction);
}

TEST(ParallelEquivalence, SimMonteCarloIsBitIdentical) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  analysis::SimMonteCarloOptions serial;
  serial.samples = 6;
  serial.threads = 1;
  analysis::SimMonteCarloOptions parallel = serial;
  parallel.threads = 4;

  const auto a = analysis::monte_carlo_vmax_sim(cal, process::package_pga(), 4,
                                                0.1e-9, true, serial);
  const auto b = analysis::monte_carlo_vmax_sim(cal, process::package_pga(), 4,
                                                0.1e-9, true, parallel);

  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].index, b.samples[i].index);
    EXPECT_EQ(a.samples[i].l_factor, b.samples[i].l_factor);
    EXPECT_EQ(a.samples[i].c_factor, b.samples[i].c_factor);
    EXPECT_EQ(a.samples[i].rise_factor, b.samples[i].rise_factor);
    EXPECT_EQ(a.samples[i].width_factor, b.samples[i].width_factor);
    EXPECT_EQ(a.samples[i].v_max, b.samples[i].v_max) << "sample " << i;
    EXPECT_EQ(a.samples[i].fidelity, b.samples[i].fidelity);
  }
  EXPECT_EQ(a.surviving, b.surviving);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  // Summary bookkeeping is replayed in index order after the join, so even
  // the human-readable notes must match line for line.
  EXPECT_EQ(a.summary.total, b.summary.total);
  EXPECT_EQ(a.summary.by_fidelity, b.summary.by_fidelity);
  EXPECT_EQ(a.summary.by_error, b.summary.by_error);
  EXPECT_EQ(a.summary.notes, b.summary.notes);
}

TEST(ParallelEquivalence, DriverSweepIsBitIdentical) {
  analysis::DriverSweepConfig serial;
  serial.driver_counts = {1, 2, 4, 8};
  serial.threads = 1;
  analysis::DriverSweepConfig parallel = serial;
  parallel.threads = 4;

  const auto a = analysis::run_driver_sweep(serial);
  const auto b = analysis::run_driver_sweep(parallel);

  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].n, b.rows[i].n);
    EXPECT_EQ(a.rows[i].sim, b.rows[i].sim) << "row " << i;
    EXPECT_EQ(a.rows[i].this_work, b.rows[i].this_work);
    EXPECT_EQ(a.rows[i].err_this, b.rows[i].err_this);
    EXPECT_EQ(a.rows[i].fidelity, b.rows[i].fidelity);
  }
  EXPECT_EQ(a.summary.notes, b.summary.notes);
}

TEST(ParallelEquivalence, SensitivitiesAreBitIdentical) {
  const core::SsnScenario s = nominal_scenario();
  const auto a = analysis::lc_sensitivities(s, 1e-4, /*threads=*/1);
  const auto b = analysis::lc_sensitivities(s, 1e-4, /*threads=*/4);
  EXPECT_EQ(a.wrt_drivers, b.wrt_drivers);
  EXPECT_EQ(a.wrt_inductance, b.wrt_inductance);
  EXPECT_EQ(a.wrt_capacitance, b.wrt_capacitance);
  EXPECT_EQ(a.wrt_slope, b.wrt_slope);
  EXPECT_EQ(a.wrt_k, b.wrt_k);
  EXPECT_EQ(a.wrt_lambda, b.wrt_lambda);
  EXPECT_EQ(a.wrt_vx, b.wrt_vx);
}

// Under fault injection the per-sample RNG streams (FaultSampleScope) make
// the injected faults — and therefore the recovery paths each sample takes —
// a function of the sample index alone, not of scheduling. The whole batch,
// failures included, must still be bit-identical across thread counts.
TEST(ParallelEquivalence, SimMonteCarloUnderFaultInjectionIsBitIdentical) {
  if (!support::kFaultInjectionEnabled)
    GTEST_SKIP() << "requires the fault-injection preset";

  support::FaultPlan plan;
  plan.probability = 0.5;
  plan.seed = 99;
  support::FaultInjector::instance().arm(support::FaultKind::kSingularLu, plan);

  analysis::SimMonteCarloOptions serial;
  serial.samples = 6;
  serial.threads = 1;
  analysis::SimMonteCarloOptions parallel = serial;
  parallel.threads = 4;

  const auto cal = analysis::calibrate(process::tech_180nm());
  const auto a = analysis::monte_carlo_vmax_sim(cal, process::package_pga(), 4,
                                                0.1e-9, true, serial);
  const auto b = analysis::monte_carlo_vmax_sim(cal, process::package_pga(), 4,
                                                0.1e-9, true, parallel);
  support::FaultInjector::instance().disarm_all();

  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].v_max, b.samples[i].v_max) << "sample " << i;
    EXPECT_EQ(a.samples[i].fidelity, b.samples[i].fidelity) << "sample " << i;
  }
  EXPECT_EQ(a.surviving, b.surviving);
  EXPECT_EQ(a.summary.by_fidelity, b.summary.by_fidelity);
  EXPECT_EQ(a.summary.by_error, b.summary.by_error);
  EXPECT_EQ(a.summary.notes, b.summary.notes);
}

}  // namespace
