// The numerical trust layer: verdict algebra, the scaled-residual check and
// Hager condition estimator, iterative-refinement recovery, the physics
// invariants (passivity / extremum / closed-form cross-check), and the
// trust statistics carried by Monte Carlo (ci95 shrink, thread invariance,
// journal-resume bit-identity of verdicts).
#include "analysis/calibrate.hpp"
#include "analysis/design.hpp"
#include "analysis/measure.hpp"
#include "analysis/montecarlo.hpp"
#include "circuit/testbench.hpp"
#include "numeric/sparse.hpp"
#include "support/journal.hpp"
#include "support/runcontext.hpp"
#include "verify/physics.hpp"
#include "verify/residual.hpp"
#include "verify/trust.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace {

using namespace ssnkit;
using verify::TrustReport;
using verify::Verdict;

// --- verdict algebra --------------------------------------------------------

TEST(TrustVerdict, RankOrderAndWorse) {
  EXPECT_LT(verify::verdict_rank(Verdict::kVerified),
            verify::verdict_rank(Verdict::kRefined));
  EXPECT_LT(verify::verdict_rank(Verdict::kRefined),
            verify::verdict_rank(Verdict::kUnverified));
  EXPECT_LT(verify::verdict_rank(Verdict::kUnverified),
            verify::verdict_rank(Verdict::kDegraded));
  EXPECT_EQ(verify::worse(Verdict::kVerified, Verdict::kDegraded),
            Verdict::kDegraded);
  EXPECT_EQ(verify::worse(Verdict::kRefined, Verdict::kVerified),
            Verdict::kRefined);
  EXPECT_EQ(verify::worse(Verdict::kUnverified, Verdict::kUnverified),
            Verdict::kUnverified);
}

TEST(TrustVerdict, NamesRoundTrip) {
  for (const Verdict v : {Verdict::kVerified, Verdict::kRefined,
                          Verdict::kUnverified, Verdict::kDegraded}) {
    Verdict parsed = Verdict::kVerified;
    ASSERT_TRUE(verify::verdict_from_name(verify::to_string(v), parsed))
        << verify::to_string(v);
    EXPECT_EQ(parsed, v);
  }
  Verdict sink = Verdict::kVerified;
  EXPECT_FALSE(verify::verdict_from_name("trustworthy", sink));
  EXPECT_FALSE(verify::verdict_from_name("", sink));
}

TEST(TrustReportAlgebra, DowngradeNeverImproves) {
  TrustReport t;
  t.verdict = Verdict::kVerified;
  t.downgrade(Verdict::kRefined);
  EXPECT_EQ(t.verdict, Verdict::kRefined);
  t.downgrade(Verdict::kVerified);  // an upgrade attempt is a no-op
  EXPECT_EQ(t.verdict, Verdict::kRefined);
  t.downgrade(Verdict::kDegraded);
  EXPECT_EQ(t.verdict, Verdict::kDegraded);
}

TEST(TrustReportAlgebra, MergeTakesWorstOfEverything) {
  TrustReport a;
  a.verdict = Verdict::kVerified;
  a.residual = 1e-15;
  a.refinements = 1;
  a.note("SSN-W070: refined once");

  TrustReport b;
  b.verdict = Verdict::kDegraded;
  b.residual = 1e-6;
  b.cond_estimate = 1e12;
  b.refinements = 2;
  b.note("SSN-W071: residual stayed high");

  a.merge(b);
  EXPECT_EQ(a.verdict, Verdict::kDegraded);
  EXPECT_DOUBLE_EQ(a.residual, 1e-6);        // worst finite residual
  EXPECT_DOUBLE_EQ(a.cond_estimate, 1e12);   // finite beats NaN
  EXPECT_EQ(a.refinements, 3u);
  ASSERT_EQ(a.notes.size(), 2u);

  // Duplicate notes are not re-appended.
  a.merge(b);
  EXPECT_EQ(a.notes.size(), 2u);
}

TEST(TrustReportAlgebra, SummaryNamesTheVerdict) {
  TrustReport t;
  t.verdict = Verdict::kVerified;
  t.residual = 3.0e-15;
  EXPECT_NE(t.summary().find("verified"), std::string::npos);
  t.verdict = Verdict::kDegraded;
  EXPECT_NE(t.summary().find("degraded"), std::string::npos);
}

// --- scaled residual / norms / condition estimate ---------------------------

/// 3x3 test system with an MNA-like diagonally dominant pattern. The
/// discovery pass doubles as assembly, so one add() sweep suffices.
numeric::StampedMatrix small_system() {
  numeric::StampedMatrix a;
  a.begin_pattern(3);
  const double vals[3][3] = {
      {4.0, -1.0, 0.0}, {-1.0, 4.0, -2.0}, {0.0, -2.0, 5.0}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      if (vals[r][c] != 0.0) a.add(r, c, vals[r][c]);
  a.finalize_pattern();
  return a;
}

TEST(ScaledResidual, ExactSolveIsMachineSmallPerturbedIsNot) {
  const numeric::StampedMatrix a = small_system();
  numeric::SparseFactor lu;
  ASSERT_TRUE(lu.factorize(a));
  numeric::Vector b(3), x;
  b[0] = 1.0;
  b[1] = -2.0;
  b[2] = 0.5;
  lu.solve(b, x);
  EXPECT_LT(verify::scaled_residual(a, x, b), 1e-13);

  numeric::Vector bad = x;
  bad[1] += 1e-3;
  EXPECT_GT(verify::scaled_residual(a, bad, b), 1e-6);
}

TEST(ScaledResidual, NonFiniteSolutionReadsAsMaximallyWrong) {
  const numeric::StampedMatrix a = small_system();
  numeric::Vector b(3), x(3);
  b[0] = 1.0;
  x[0] = std::nan("");
  EXPECT_TRUE(std::isinf(verify::scaled_residual(a, x, b)));
}

TEST(Norm1, MatchesHandComputedColumnSums) {
  // Columns sums of small_system(): {5, 7, 7} -> ||A||_1 = 7.
  EXPECT_DOUBLE_EQ(verify::norm1(small_system()), 7.0);
}

TEST(Condest, WellAndIllConditionedSystemsSeparate) {
  const numeric::StampedMatrix a = small_system();
  numeric::SparseFactor lu;
  ASSERT_TRUE(lu.factorize(a));
  const double cond_good = verify::condest_1norm(a, lu);
  EXPECT_GE(cond_good, 1.0);
  EXPECT_LT(cond_good, 1e3);

  numeric::StampedMatrix ill;
  ill.begin_pattern(2);
  ill.add(0, 0, 1.0);
  ill.add(1, 1, 1e-12);
  ill.finalize_pattern();
  numeric::SparseFactor lu2;
  ASSERT_TRUE(lu2.factorize(ill));
  EXPECT_GT(verify::condest_1norm(ill, lu2), 1e10);
}

// --- iterative refinement (the degraded-solve rescue) -----------------------

TEST(Refine, OneStepRecoversAPerturbedSolveOnANearSingularSystem) {
  // A nearly singular 2x2 (rows almost parallel), the shape a package
  // netlist takes when a tiny shunt conductance barely separates two nodes.
  numeric::StampedMatrix a;
  a.begin_pattern(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 1.0 + 1e-9);
  a.finalize_pattern();

  numeric::SparseFactor lu;
  ASSERT_TRUE(lu.factorize(a));
  numeric::Vector b(2), x;
  b[0] = 2.0;
  b[1] = 2.0 + 1e-9;  // exact solution x = (1, 1)
  lu.solve(b, x);

  // Corrupt the solve the way a rotted factor would: the residual check
  // must see it, and one refinement step must bring it back.
  x[0] += 1e-4;
  const double before = verify::scaled_residual(a, x, b);
  ASSERT_GT(before, 1e-8);
  numeric::Vector r, d;
  lu.refine(a, b, x, r, d);
  const double after = verify::scaled_residual(a, x, b);
  EXPECT_LT(after, 1e-12);
  EXPECT_LT(after, before * 1e-3);
  // cond ~ 4e9, so the recovered components are good to ~cond * eps.
  EXPECT_NEAR(x[0], 1.0, 1e-5);
  EXPECT_NEAR(x[1], 1.0, 1e-5);
}

// --- physics invariants ------------------------------------------------------

const analysis::Calibration& cal() {
  static const analysis::Calibration c =
      analysis::calibrate(process::tech_180nm());
  return c;
}

analysis::SsnMeasurement healthy_measurement(core::SsnScenario& scenario_out) {
  circuit::SsnBenchSpec spec;
  spec.tech = cal().tech;
  spec.n_drivers = 4;
  spec.input_rise_time = 0.1e-9;
  spec.include_package_c = true;
  analysis::SsnMeasurement m = analysis::measure_ssn(spec);
  scenario_out = analysis::make_scenario(cal(), spec.package, spec.n_drivers,
                                         spec.input_rise_time, true);
  return m;
}

TEST(PhysicsInvariants, HealthySimulationStaysVerified) {
  core::SsnScenario scenario;
  analysis::SsnMeasurement m = healthy_measurement(scenario);
  ASSERT_EQ(m.trust.verdict, Verdict::kVerified) << m.trust.summary();
  analysis::verify_measurement(m, scenario);
  EXPECT_EQ(m.trust.verdict, Verdict::kVerified) << m.trust.summary();
  EXPECT_GT(m.stats.residual_checks, 0u);
  EXPECT_LT(m.stats.worst_scaled_residual, 1e-9);
  EXPECT_GT(m.stats.condition_estimate, 0.0);
}

TEST(PhysicsInvariants, CorruptedExtremumIsCaughtAndDegrades) {
  core::SsnScenario scenario;
  analysis::SsnMeasurement m = healthy_measurement(scenario);
  m.v_max *= 5.0;  // the corruption a rotted cache entry would report
  analysis::verify_measurement(m, scenario);
  EXPECT_EQ(m.trust.verdict, Verdict::kDegraded);
  bool noted = false;
  for (const std::string& n : m.trust.notes)
    if (n.find("SSN-W073") != std::string::npos) noted = true;
  EXPECT_TRUE(noted);
}

TEST(PhysicsInvariants, PassivityViolationIsCaught) {
  core::SsnScenario scenario;
  analysis::SsnMeasurement m = healthy_measurement(scenario);
  // Scale the inductor current up: stored energy then exceeds what the
  // (unchanged) vssi record injected — no passive network does that.
  std::vector<double> scaled = m.i_l.values();
  for (double& v : scaled) v *= 3.0;
  const waveform::Waveform hot(m.i_l.times(), std::move(scaled));
  verify::PhysicsFindings f = verify::check_ground_path(
      scenario, m.vssi, hot, m.v_max, m.t_at_max);
  EXPECT_FALSE(f.passivity_ok);
  TrustReport t;
  t.verdict = Verdict::kVerified;
  verify::apply(f, t);
  EXPECT_EQ(t.verdict, Verdict::kDegraded);
}

TEST(PhysicsInvariants, ClosedFormCrossCheckEnforcesThePapersBar) {
  TrustReport ok;
  ok.verdict = Verdict::kVerified;
  EXPECT_TRUE(verify::cross_check_closed_form(1.00, 1.02, ok));
  EXPECT_EQ(ok.verdict, Verdict::kVerified);

  TrustReport bad;
  bad.verdict = Verdict::kVerified;
  EXPECT_FALSE(verify::cross_check_closed_form(1.00, 1.20, bad));
  EXPECT_EQ(bad.verdict, Verdict::kDegraded);
  bool noted = false;
  for (const std::string& n : bad.notes)
    if (n.find("SSN-W074") != std::string::npos) noted = true;
  EXPECT_TRUE(noted);
}

// --- Monte Carlo trust statistics -------------------------------------------

TEST(McTrust, Ci95ShrinksLikeOneOverRootN) {
  core::SsnScenario s;
  s.n_drivers = 8;
  s.inductance = 5e-9;
  s.capacitance = 1e-12;
  s.vdd = 1.8;
  s.slope = 1.8e10;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};

  analysis::MonteCarloOptions small_opts;
  small_opts.samples = 400;
  analysis::MonteCarloOptions big_opts;
  big_opts.samples = 1600;
  const auto small_run = analysis::monte_carlo_vmax(s, small_opts);
  const auto big_run = analysis::monte_carlo_vmax(s, big_opts);
  ASSERT_GT(small_run.ci95, 0.0);
  ASSERT_GT(big_run.ci95, 0.0);
  // 4x the samples -> half the half-width (the sample stddev itself moves a
  // little between draws, hence the generous band around 0.5).
  const double ratio = big_run.ci95 / small_run.ci95;
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.65);
  // And the reported interval matches its definition.
  EXPECT_NEAR(big_run.ci95,
              1.96 * big_run.stddev / std::sqrt(double(big_run.samples.size())),
              1e-12);
}

TEST(McTrust, SimTrustIsThreadCountInvariant) {
  analysis::SimMonteCarloOptions opts;
  opts.samples = 4;
  opts.seed = 777;
  const auto pkg = process::package_pga();
  const auto serial = analysis::monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9,
                                                     true, opts);
  ASSERT_EQ(serial.stop, support::StopReason::kNone);
  auto par_opts = opts;
  par_opts.threads = 4;
  const auto parallel = analysis::monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9,
                                                       true, par_opts);
  ASSERT_EQ(parallel.stop, support::StopReason::kNone);
  EXPECT_EQ(serial.trust.verdict, parallel.trust.verdict);
  EXPECT_EQ(serial.ci95, parallel.ci95);  // bit-identical, not just close
  EXPECT_EQ(serial.trust.ci95, parallel.trust.ci95);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i)
    EXPECT_EQ(serial.samples[i].verdict, parallel.samples[i].verdict) << i;
}

TEST(McTrust, VerdictsSurviveJournalResumeBitIdentically) {
  analysis::SimMonteCarloOptions opts;
  opts.samples = 4;
  opts.seed = 777;
  const auto pkg = process::package_pga();
  const auto clean = analysis::monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9,
                                                    true, opts);
  ASSERT_EQ(clean.stop, support::StopReason::kNone);

  const std::string path =
      testing::TempDir() + "verify_mc_trust_journal.txt";
  std::remove(path.c_str());
  auto part_opts = opts;
  support::RunContext budget;
  budget.set_item_budget(2);
  part_opts.run_ctx = &budget;
  support::BatchJournal journal(path, "mc-sim", 7,
                                std::size_t(opts.samples));
  part_opts.journal = &journal;
  const auto partial = analysis::monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9,
                                                      true, part_opts);
  ASSERT_EQ(partial.completed, 2u);

  const auto loaded = support::BatchJournal::load(path);
  auto resume_opts = opts;
  resume_opts.resume = &loaded.items;
  const auto resumed = analysis::monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9,
                                                      true, resume_opts);
  ASSERT_EQ(resumed.stop, support::StopReason::kNone);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.trust.verdict, clean.trust.verdict);
  EXPECT_EQ(resumed.ci95, clean.ci95);
  EXPECT_EQ(resumed.mean, clean.mean);
  ASSERT_EQ(resumed.samples.size(), clean.samples.size());
  for (std::size_t i = 0; i < clean.samples.size(); ++i) {
    EXPECT_EQ(resumed.samples[i].verdict, clean.samples[i].verdict) << i;
    EXPECT_EQ(resumed.samples[i].v_max, clean.samples[i].v_max) << i;
  }
  std::remove(path.c_str());
}

}  // namespace
