// The structured failure taxonomy (support/diagnostics.hpp): SolverError
// carries a kind, a location and the homotopy/recovery trails, and the
// solver entry points actually populate them.
#include "circuit/circuit.hpp"
#include "numeric/ode.hpp"
#include "sim/engine.hpp"
#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using support::SolverDiagnostics;
using support::SolverError;
using support::SolverErrorKind;
using ssnkit::waveform::Dc;

TEST(SolverErrorKind, NamesAreStable) {
  EXPECT_STREQ(to_string(SolverErrorKind::kNewtonDivergence),
               "newton-divergence");
  EXPECT_STREQ(to_string(SolverErrorKind::kSingularMatrix), "singular-matrix");
  EXPECT_STREQ(to_string(SolverErrorKind::kNonFiniteValue),
               "non-finite-value");
  EXPECT_STREQ(to_string(SolverErrorKind::kStepUnderflow), "step-underflow");
  EXPECT_STREQ(to_string(SolverErrorKind::kStepBudgetExhausted),
               "step-budget-exhausted");
  EXPECT_STREQ(to_string(SolverErrorKind::kHomotopyExhausted),
               "homotopy-exhausted");
}

TEST(SolverErrorKind, OnlyHomotopyExhaustionIsFatal) {
  EXPECT_TRUE(support::is_retryable(SolverErrorKind::kNewtonDivergence));
  EXPECT_TRUE(support::is_retryable(SolverErrorKind::kSingularMatrix));
  EXPECT_TRUE(support::is_retryable(SolverErrorKind::kNonFiniteValue));
  EXPECT_TRUE(support::is_retryable(SolverErrorKind::kStepUnderflow));
  EXPECT_TRUE(support::is_retryable(SolverErrorKind::kStepBudgetExhausted));
  EXPECT_FALSE(support::is_retryable(SolverErrorKind::kHomotopyExhausted));
}

TEST(SolverDiagnostics, FormatRendersEveryField) {
  SolverDiagnostics diag;
  diag.where = "dc_operating_point";
  diag.time = 1.5e-9;
  diag.node = 3;
  diag.node_name = "vssi";
  diag.newton_iterations = 42;
  diag.residual = 1e-3;
  diag.max_dv = 0.25;
  diag.injected = true;
  diag.homotopy_trail.push_back({"plain-newton", false, 100, 2.0, 1.9});
  diag.homotopy_trail.push_back({"gmin=1e-02", true, 7, 1e-10, 1e-9});
  diag.recovery_trail.push_back({"full-device", false, "newton-divergence"});
  diag.recovery_trail.push_back({"tighten-damping", true, ""});

  const std::string s =
      diag.format(SolverErrorKind::kNewtonDivergence, "no convergence");
  EXPECT_NE(s.find("SolverError[newton-divergence]"), std::string::npos);
  EXPECT_NE(s.find("dc_operating_point: no convergence"), std::string::npos);
  EXPECT_NE(s.find("node 3 'vssi'"), std::string::npos);
  EXPECT_NE(s.find("newton iterations=42"), std::string::npos);
  EXPECT_NE(s.find("[fault-injected]"), std::string::npos);
  EXPECT_NE(s.find("plain-newton(stalled"), std::string::npos);
  EXPECT_NE(s.find("gmin=1e-02(ok"), std::string::npos);
  EXPECT_NE(s.find("full-device(failed)"), std::string::npos);
  EXPECT_NE(s.find("tighten-damping(ok)"), std::string::npos);
}

TEST(SolverDiagnostics, FormatOmitsUnknownFields) {
  const SolverDiagnostics diag;  // all defaults: NaN time, node -1, no trails
  const std::string s = diag.format(SolverErrorKind::kStepUnderflow, "boom");
  EXPECT_NE(s.find("SolverError[step-underflow] boom"), std::string::npos);
  EXPECT_EQ(s.find("(t="), std::string::npos);
  EXPECT_EQ(s.find("node"), std::string::npos);
  EXPECT_EQ(s.find("homotopy"), std::string::npos);
  EXPECT_EQ(s.find("recovery"), std::string::npos);
}

TEST(SolverError, RoundtripsKindAndDiagnostics) {
  SolverDiagnostics diag;
  diag.where = "run_transient";
  diag.time = 2e-9;
  const SolverError err(SolverErrorKind::kStepUnderflow, "underflow", diag);
  EXPECT_EQ(err.kind(), SolverErrorKind::kStepUnderflow);
  EXPECT_TRUE(err.retryable());
  EXPECT_EQ(err.diagnostics().where, "run_transient");
  EXPECT_NE(std::string(err.what()).find("SolverError[step-underflow]"),
            std::string::npos);
}

TEST(SolverError, CatchableAsRuntimeError) {
  // Pre-existing callers catch std::runtime_error; the typed error must
  // keep satisfying them.
  const auto boom = [] {
    throw SolverError(SolverErrorKind::kSingularMatrix, "singular");
  };
  EXPECT_THROW(boom(), std::runtime_error);
  try {
    boom();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("singular"), std::string::npos);
  }
}

TEST(DcTrail, SuccessRecordsPlainNewtonStage) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_resistor("R1", a, b, 1e3);
  ckt.add_resistor("R2", b, kGround, 1e3);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_FALSE(dc.used_gmin_stepping);
  EXPECT_FALSE(dc.used_source_stepping);
  ASSERT_FALSE(dc.homotopy_trail.empty());
  EXPECT_EQ(dc.homotopy_trail.front().name, "plain-newton");
  EXPECT_TRUE(dc.homotopy_trail.front().converged);
  EXPECT_GT(dc.homotopy_trail.front().iterations, 0u);
  EXPECT_NEAR(dc.voltage(ckt, "b"), 0.5, 1e-9);
}

TEST(DcTrail, FloatingNodeFailureCarriesFullHomotopyTrail) {
  // A node with no DC path: every homotopy leg must be recorded in the
  // typed error so a caller can see what was tried (satellite: DC failure
  // diagnostics include the gmin/source trail and the final residual).
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_capacitor("C1", b, kGround, 1e-12);  // b floats at DC
  try {
    dc_operating_point(ckt);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.kind(), SolverErrorKind::kSingularMatrix);
    EXPECT_TRUE(e.retryable());
    const auto& diag = e.diagnostics();
    EXPECT_EQ(diag.where, "dc_operating_point");
    ASSERT_FALSE(diag.homotopy_trail.empty());
    EXPECT_EQ(diag.homotopy_trail.front().name, "plain-newton");
    EXPECT_FALSE(diag.homotopy_trail.front().converged);
    bool saw_gmin = false, saw_source = false;
    for (const auto& stage : diag.homotopy_trail) {
      if (stage.name.rfind("gmin", 0) == 0) saw_gmin = true;
      if (stage.name.rfind("source", 0) == 0) saw_source = true;
    }
    EXPECT_TRUE(saw_gmin);
    EXPECT_TRUE(saw_source);
  }
}

TEST(TransientEx, StepBudgetReturnsTypedErrorWithPrefix) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_resistor("R1", a, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.adaptive = false;
  opts.dt_initial = 1e-15;  // would need 1e6 steps
  opts.max_steps = 1000;
  const TransientRun run = run_transient_ex(ckt, opts);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error->kind(), SolverErrorKind::kStepBudgetExhausted);
  EXPECT_TRUE(run.error->retryable());
  EXPECT_EQ(run.error->diagnostics().where, "run_transient");
  // The high-fidelity prefix (every accepted step) is preserved.
  EXPECT_GT(run.result.point_count(), 100u);
  EXPECT_NEAR(run.result.final_value("a"), 1.0, 1e-9);
}

TEST(OdeStatus, NamesAreStable) {
  using numeric::OdeStatus;
  EXPECT_STREQ(numeric::to_string(OdeStatus::kOk), "ok");
  EXPECT_STREQ(numeric::to_string(OdeStatus::kStepBudgetExhausted),
               "step-budget-exhausted");
  EXPECT_STREQ(numeric::to_string(OdeStatus::kStepUnderflow),
               "step-underflow");
}

}  // namespace
