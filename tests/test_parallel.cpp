// The deterministic batch runner: resolve_threads policy, ThreadPool
// dispatch, exception propagation, and the serial inline path of
// parallel_for_index. The bit-identical serial-vs-parallel guarantees of
// the analysis layer are covered in test_parallel_equivalence.cpp.
#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using ssnkit::support::parallel_for_index;
using ssnkit::support::resolve_threads;
using ssnkit::support::ThreadPool;

TEST(ResolveThreads, ExplicitCountIsHonored) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(64), 64);
  // Clamped above to keep a typo from spawning thousands of threads.
  EXPECT_EQ(resolve_threads(100000), 64);
}

TEST(ResolveThreads, AutoIsPositiveAndBounded) {
  for (int req : {0, -1, -100}) {
    const int n = resolve_threads(req);
    EXPECT_GE(n, 1) << "requested " << req;
    EXPECT_LE(n, 16) << "requested " << req;
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.for_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::vector<int> out(10, 0);
  pool.for_index(out.size(), [&](std::size_t i) { out[i] = int(i); });
  pool.for_index(out.size(), [&](std::size_t i) { out[i] += int(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2 * int(i));
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.for_index(50,
                              [&](std::size_t i) {
                                if (i == 7) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
  // The failed batch must not poison the pool.
  std::atomic<int> count{0};
  pool.for_index(20, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 20);
}

TEST(ParallelForIndex, SerialAndParallelComputeSameSlots) {
  const std::size_t n = 257;
  std::vector<double> serial(n), parallel(n);
  const auto body = [](std::size_t i) { return double(i) * 1.5 + 1.0; };
  parallel_for_index(1, n, [&](std::size_t i) { serial[i] = body(i); });
  parallel_for_index(4, n, [&](std::size_t i) { parallel[i] = body(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForIndex, SingleItemRunsInline) {
  // threads <= 1 or count <= 1 must not spawn; observable via the body
  // running on the calling thread (thread-id equality).
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for_index(8, 1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
  parallel_for_index(1, 1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ParallelForIndex, SerialPathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_index(1, 5,
                         [](std::size_t i) {
                           if (i == 3) throw std::invalid_argument("bad");
                         }),
      std::invalid_argument);
}

TEST(ParallelForIndex, ParallelSumMatchesSerial) {
  const std::size_t n = 1000;
  std::vector<long> terms(n, 0);
  parallel_for_index(4, n, [&](std::size_t i) { terms[i] = long(i) * long(i); });
  long want = 0;
  for (std::size_t i = 0; i < n; ++i) want += long(i) * long(i);
  EXPECT_EQ(std::accumulate(terms.begin(), terms.end(), 0L), want);
}

}  // namespace
