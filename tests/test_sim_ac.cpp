// Small-signal AC analysis against textbook transfer functions.
#include "circuit/circuit.hpp"
#include "process/technology.hpp"
#include "sim/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using ssnkit::waveform::Dc;

TEST(Ac, OptionsValidation) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1e3);
  AcOptions opts;
  opts.f_start = 0.0;
  EXPECT_THROW(run_ac(ckt, opts), std::invalid_argument);
  opts = {};
  opts.f_stop = opts.f_start;
  EXPECT_THROW(run_ac(ckt, opts), std::invalid_argument);
  opts = {};
  opts.points_per_decade = 0;
  EXPECT_THROW(run_ac(ckt, opts), std::invalid_argument);
}

TEST(Ac, RcLowPass) {
  // R = 1k, C = 1p: f_c = 1/(2*pi*RC) ~= 159.2 MHz.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  auto& vin = ckt.add_vsource("Vin", in, kGround, Dc{0.0});
  vin.set_ac(1.0);
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_capacitor("C1", out, kGround, 1e-12);

  AcOptions opts;
  opts.f_start = 1e6;
  opts.f_stop = 100e9;
  opts.points_per_decade = 40;
  const AcResult res = run_ac(ckt, opts);

  const double fc = 1.0 / (2.0 * M_PI * 1e3 * 1e-12);
  // Interpolate |H| at the nearest grid point to fc.
  std::size_t i_fc = 0;
  for (std::size_t i = 0; i < res.point_count(); ++i)
    if (std::fabs(std::log10(res.frequencies()[i] / fc)) <
        std::fabs(std::log10(res.frequencies()[i_fc] / fc)))
      i_fc = i;
  const auto h = res.value("out", i_fc);
  EXPECT_NEAR(std::abs(h), 1.0 / std::sqrt(2.0), 0.03);
  EXPECT_NEAR(std::arg(h) * 180.0 / M_PI, -45.0, 3.0);
  // Deep stopband rolls off 20 dB/decade.
  const auto db = res.magnitude_db("out");
  const double slope =
      (db.back() - db[db.size() - 1 - std::size_t(opts.points_per_decade)]);
  EXPECT_NEAR(slope, -20.0, 1.0);
  // Passband is flat at 0 dB.
  EXPECT_NEAR(db.front(), 0.0, 0.1);
}

TEST(Ac, SeriesRlcResonance) {
  // Voltage across C peaks near f0 with Q = (1/R)*sqrt(L/C).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  const NodeId out = ckt.node("out");
  auto& vin = ckt.add_vsource("Vin", in, kGround, Dc{0.0});
  vin.set_ac(1.0);
  ckt.add_resistor("R1", in, mid, 5.0);
  ckt.add_inductor("L1", mid, out, 5e-9);
  ckt.add_capacitor("C1", out, kGround, 1e-12);

  AcOptions opts;
  opts.f_start = 1e8;
  opts.f_stop = 1e11;
  opts.points_per_decade = 200;
  const AcResult res = run_ac(ckt, opts);

  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(5e-9 * 1e-12));
  const double q = std::sqrt(5e-9 / 1e-12) / 5.0;
  const auto peak = res.peak("out");
  EXPECT_NEAR(peak.frequency, f0, 0.03 * f0);
  EXPECT_NEAR(peak.magnitude, q, 0.08 * q);
}

TEST(Ac, GroundPathImpedance) {
  // 1 A AC into L || C from the node: |Z| peaks at the LC resonance.
  Circuit ckt;
  const NodeId vssi = ckt.node("vssi");
  auto& iin = ckt.add_isource("Iac", kGround, vssi, Dc{0.0});
  iin.set_ac(1.0);
  ckt.add_inductor("Lgnd", vssi, kGround, 5e-9);
  ckt.add_capacitor("Cpad", vssi, kGround, 1e-12);
  ckt.add_resistor("Rdamp", vssi, kGround, 1e3);  // finite Q

  AcOptions opts;
  opts.f_start = 1e8;
  opts.f_stop = 1e11;
  opts.points_per_decade = 100;
  const AcResult res = run_ac(ckt, opts);
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(5e-9 * 1e-12));
  const auto peak = res.peak("vssi");
  EXPECT_NEAR(peak.frequency, f0, 0.05 * f0);
  // At the peak, Z = R (parallel resonance).
  EXPECT_NEAR(peak.magnitude, 1e3, 0.05 * 1e3);
  // Inductive region: |Z| ~ omega*L a decade below resonance.
  std::size_t i_low = 0;
  while (res.frequencies()[i_low] < f0 / 10.0) ++i_low;
  const double f_low = res.frequencies()[i_low];
  EXPECT_NEAR(res.magnitude("vssi")[i_low], 2.0 * M_PI * f_low * 5e-9,
              0.1 * 2.0 * M_PI * f_low * 5e-9);
}

TEST(Ac, CommonSourceAmplifierGain) {
  // Golden NMOS common-source stage: |A_v| ~= gm*(Rload || ro) at low f,
  // rolling off through the output pole.
  Circuit ckt;
  const auto tech = process::tech_180nm();
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("Vdd", vdd, kGround, Dc{tech.vdd});
  auto& vin = ckt.add_vsource("Vin", in, kGround, Dc{0.7});  // bias near VT+
  vin.set_ac(1.0);
  std::shared_ptr<const devices::MosfetModel> nmos(tech.make_golden());
  ckt.add_mosfet("M1", out, in, kGround, kGround, nmos);
  ckt.add_resistor("Rload", vdd, out, 150.0);
  ckt.add_capacitor("Cload", out, kGround, 1e-12);

  AcOptions opts;
  opts.f_start = 1e6;
  opts.f_stop = 1e12;
  opts.points_per_decade = 20;
  const AcResult res = run_ac(ckt, opts);

  // Expected low-frequency gain from the model's own small-signal params.
  const DcResult dc = dc_operating_point(ckt);
  const auto eval = nmos->evaluate(0.7, dc.voltage(ckt, "out"), 0.0);
  const double g_load = 1.0 / 150.0 + eval.gds;
  const double expected = eval.gm / g_load;
  EXPECT_NEAR(res.magnitude("out").front(), expected, 0.05 * expected);
  // Phase inversion at low frequency.
  EXPECT_NEAR(std::fabs(res.phase_deg("out").front()), 180.0, 5.0);
  // High-frequency rolloff present.
  EXPECT_LT(res.magnitude("out").back(), 0.2 * expected);
}

TEST(Ac, CoupledInductorsTransformerRatio) {
  // Well above the L/R corner the open-secondary voltage ratio approaches
  // M/L1 = k*sqrt(L2/L1).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId p = ckt.node("p");
  const NodeId s = ckt.node("s");
  auto& vin = ckt.add_vsource("Vin", in, kGround, Dc{0.0});
  vin.set_ac(1.0);
  // Small series resistance: keeps the DC point non-degenerate (a 0 V
  // source directly across a DC-shorted winding is a redundant constraint).
  ckt.add_resistor("Rp", in, p, 0.1);
  ckt.add_coupled_inductors("K1", p, kGround, s, kGround, 4e-9, 1e-9, 0.8);
  ckt.add_resistor("Rs", s, kGround, 1e6);

  AcOptions opts;
  opts.f_start = 1e9;
  opts.f_stop = 1e10;
  opts.points_per_decade = 5;
  const AcResult res = run_ac(ckt, opts);
  const double ratio = 0.8 * std::sqrt(1e-9 / 4e-9);
  EXPECT_NEAR(res.magnitude("s").back(), ratio, 0.03 * ratio);
}

TEST(Ac, QuietSourcesContributeNothing) {
  // Without any set_ac() excitation the response is identically zero.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, Dc{5.0});
  ckt.add_resistor("R1", a, ckt.node("b"), 1e3);
  ckt.add_capacitor("C1", ckt.node("b"), kGround, 1e-12);
  AcOptions opts;
  opts.points_per_decade = 2;
  const AcResult res = run_ac(ckt, opts);
  for (std::size_t i = 0; i < res.point_count(); ++i)
    EXPECT_EQ(std::abs(res.value("b", i)), 0.0);
}

TEST(Ac, UnknownSignalThrows) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1e3);
  AcOptions opts;
  opts.points_per_decade = 1;
  const AcResult res = run_ac(ckt, opts);
  EXPECT_THROW(res.magnitude("zzz"), std::out_of_range);
}

}  // namespace
