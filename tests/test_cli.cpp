// The command-line front end: argument parser and subcommands.
#include "cli/args.hpp"
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace {

using namespace ssnkit::cli;

TEST(Args, KeyValueForms) {
  const Args args = Args::parse({"--n", "8", "--tr=0.1n", "pos1", "--flagy"},
                                {"flagy"});
  EXPECT_EQ(args.get_int("n", 0), 8);
  EXPECT_DOUBLE_EQ(args.get_double("tr", 0.0), 0.1e-9);
  EXPECT_TRUE(args.flag("flagy"));
  EXPECT_FALSE(args.flag("other"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Args, DefaultsAndMissing) {
  const Args args = Args::parse({});
  EXPECT_FALSE(args.has("n"));
  EXPECT_EQ(args.get_or("tech", "180nm"), "180nm");
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("l", 5e-9), 5e-9);
}

TEST(Args, Malformed) {
  EXPECT_THROW(Args::parse({"--n"}), std::invalid_argument);
  EXPECT_THROW(Args::parse({"--"}), std::invalid_argument);
  EXPECT_THROW(Args::parse({"--verify=1"}, {"verify"}), std::invalid_argument);
  const Args bad_int = Args::parse({"--n", "eight"});
  EXPECT_THROW(bad_int.get_int("n", 0), std::invalid_argument);
}

TEST(Args, SpiceSuffixesInNumbers) {
  const Args args = Args::parse({"--l", "2.5n", "--c", "1p", "--budget", "270m"});
  EXPECT_DOUBLE_EQ(args.get_double("l", 0), 2.5e-9);
  EXPECT_DOUBLE_EQ(args.get_double("c", 0), 1e-12);
  EXPECT_DOUBLE_EQ(args.get_double("budget", 0), 0.27);
}

TEST(Args, UnusedKeysDetected) {
  const Args args = Args::parse({"--n", "8", "--typo", "1"});
  (void)args.get_int("n", 0);
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

int run(const std::vector<std::string>& argv, std::string& out,
        std::string& err) {
  std::ostringstream os, es;
  const int rc = run_cli(argv, os, es);
  out = os.str();
  err = es.str();
  return rc;
}

TEST(Cli, HelpAndUnknownCommand) {
  std::string out, err;
  EXPECT_EQ(run({"help"}, out, err), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"frobnicate"}, out, err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
  EXPECT_EQ(run({}, out, err), 2);
}

TEST(Cli, Calibrate) {
  std::string out, err;
  ASSERT_EQ(run({"calibrate", "--tech", "180nm"}, out, err), 0) << err;
  EXPECT_NE(out.find("lambda"), std::string::npos);
  EXPECT_NE(out.find("V_x"), std::string::npos);
}

TEST(Cli, EstimateWithAndWithoutC) {
  std::string out, err;
  ASSERT_EQ(run({"estimate", "--n", "8", "--tr", "0.1n"}, out, err), 0) << err;
  EXPECT_NE(out.find("Table 1 case"), std::string::npos);
  ASSERT_EQ(run({"estimate", "--n", "8", "--no-c"}, out, err), 0) << err;
  EXPECT_NE(out.find("Eqn 7"), std::string::npos);
}

TEST(Cli, EstimateVerifyRunsSimulator) {
  std::string out, err;
  ASSERT_EQ(run({"estimate", "--n", "4", "--verify"}, out, err), 0) << err;
  EXPECT_NE(out.find("simulated max SSN"), std::string::npos);
}

TEST(Cli, SweepNEmitsCsv) {
  std::string out, err;
  ASSERT_EQ(run({"sweep-n", "--max-n", "4", "--no-c"}, out, err), 0) << err;
  EXPECT_NE(out.find("n,sim,this_work"), std::string::npos);
  // Header + at least 4 rows.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Cli, DesignAnswersQueries) {
  std::string out, err;
  ASSERT_EQ(run({"design", "--budget", "0.3"}, out, err), 0) << err;
  EXPECT_NE(out.find("ground pads needed"), std::string::npos);
  EXPECT_NE(out.find("max simultaneous drivers"), std::string::npos);
}

TEST(Cli, MonteCarloStats) {
  std::string out, err;
  ASSERT_EQ(run({"mc", "--samples", "50"}, out, err), 0) << err;
  EXPECT_NE(out.find("p95"), std::string::npos);
}

TEST(Cli, SweepCEmitsCsv) {
  std::string out, err;
  ASSERT_EQ(run({"sweep-c", "--n", "4"}, out, err), 0) << err;
  EXPECT_NE(out.find("c,zeta,sim,lc_model"), std::string::npos);
}

TEST(Cli, EstimateExtendedReportsTruePeak) {
  std::string out, err;
  ASSERT_EQ(run({"estimate", "--n", "2", "--extended"}, out, err), 0) << err;
  EXPECT_NE(out.find("post-ramp"), std::string::npos);
}

TEST(Cli, AcImpedanceCsv) {
  std::string out, err;
  ASSERT_EQ(run({"ac", "--n", "2", "--ppd", "3"}, out, err), 0) << err;
  EXPECT_NE(out.find("freq,z_mag,z_phase_deg"), std::string::npos);
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Cli, SimulateNetlistFile) {
  const char* path = "cli_test_netlist.cir";
  {
    std::ofstream f(path);
    f << "* tiny rc\n"
         "V1 in 0 PWL(0 0, 1p 1)\n"
         "R1 in out 1k\n"
         "C1 out 0 1p\n"
         ".tran 10p 5n\n";
  }
  std::string out, err;
  ASSERT_EQ(run({"simulate", path, "--probe", "out"}, out, err), 0) << err;
  EXPECT_NE(out.find("v(out)"), std::string::npos);
  ASSERT_EQ(run({"simulate", path}, out, err), 0) << err;  // CSV mode
  EXPECT_NE(out.find("time,"), std::string::npos);
  std::remove(path);
}

TEST(Cli, SimulateErrors) {
  std::string out, err;
  EXPECT_EQ(run({"simulate"}, out, err), 1);
  EXPECT_EQ(run({"simulate", "/no/such/file.cir"}, out, err), 1);
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST(Cli, BadOptionValueFails) {
  std::string out, err;
  EXPECT_EQ(run({"estimate", "--tech", "90nm"}, out, err), 1);
  EXPECT_NE(err.find("unknown technology"), std::string::npos);
  EXPECT_EQ(run({"calibrate", "--golden", "spice"}, out, err), 1);
}

TEST(Cli, UnrecognizedOptionWarns) {
  std::string out, err;
  ASSERT_EQ(run({"calibrate", "--bogus", "1"}, out, err), 0);
  EXPECT_NE(out.find("unrecognized option --bogus"), std::string::npos);
}

}  // namespace
