// Nonlinear devices in the MNA engine: diode, MOSFET inverter, and the SSN
// testbench end to end.
#include "analysis/measure.hpp"
#include "circuit/circuit.hpp"
#include "circuit/testbench.hpp"
#include "devices/asdm.hpp"
#include "process/technology.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using ssnkit::waveform::Dc;
using ssnkit::waveform::Ramp;

TEST(DcNonlinear, DiodeForwardDrop) {
  // 5 V through 1 kOhm into a diode: drop settles near 0.6-0.75 V.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", in, kGround, Dc{5.0});
  ckt.add_resistor("R1", in, a, 1e3);
  ckt.add_diode("D1", a, kGround);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_GT(dc.voltage(ckt, "a"), 0.5);
  EXPECT_LT(dc.voltage(ckt, "a"), 0.85);
  // KCL consistency: diode current equals resistor current.
  const double v = dc.voltage(ckt, "a");
  const double i_r = (5.0 - v) / 1e3;
  const double i_d = 1e-14 * (std::exp(v / 0.025852) - 1.0);
  EXPECT_NEAR(i_d, i_r, 0.02 * i_r);
}

TEST(DcNonlinear, DiodeReverseBlocks) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", in, kGround, Dc{-5.0});
  ckt.add_resistor("R1", in, a, 1e3);
  ckt.add_diode("D1", a, kGround);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_NEAR(dc.voltage(ckt, "a"), -5.0, 1e-2);
}

class InverterVtc : public ::testing::Test {
 protected:
  // CMOS inverter from the 180 nm golden models.
  double vout_at(double vin) {
    Circuit ckt;
    const auto tech = process::tech_180nm();
    const NodeId n_vdd = ckt.node("vdd");
    const NodeId n_in = ckt.node("in");
    const NodeId n_out = ckt.node("out");
    ckt.add_vsource("Vdd", n_vdd, kGround, Dc{tech.vdd});
    ckt.add_vsource("Vin", n_in, kGround, Dc{vin});
    std::shared_ptr<const devices::MosfetModel> nmos(tech.make_golden());
    std::shared_ptr<const devices::MosfetModel> pmos(tech.make_golden());
    ckt.add_mosfet("Mn", n_out, n_in, kGround, kGround, nmos);
    ckt.add_mosfet("Mp", n_out, n_in, n_vdd, n_vdd, pmos, MosfetPolarity::kPmos);
    const DcResult dc = dc_operating_point(ckt);
    return dc.voltage(ckt, "out");
  }
};

TEST_F(InverterVtc, RailsAndTransition) {
  EXPECT_NEAR(vout_at(0.0), 1.8, 0.02);
  EXPECT_NEAR(vout_at(1.8), 0.0, 0.02);
  const double mid = vout_at(0.9);
  EXPECT_GT(mid, 0.1);
  EXPECT_LT(mid, 1.7);
  // Monotone decreasing VTC.
  double prev = 1.9;
  for (double vin = 0.0; vin <= 1.8; vin += 0.15) {
    const double v = vout_at(vin);
    EXPECT_LE(v, prev + 1e-6) << "vin=" << vin;
    prev = v;
  }
}

TEST(InverterTransient, OutputFallsOnInputRise) {
  Circuit ckt;
  const auto tech = process::tech_180nm();
  const NodeId n_vdd = ckt.node("vdd");
  const NodeId n_in = ckt.node("in");
  const NodeId n_out = ckt.node("out");
  ckt.add_vsource("Vdd", n_vdd, kGround, Dc{tech.vdd});
  ckt.add_vsource("Vin", n_in, kGround, Ramp{0.0, 1.8, 0.1e-9, 0.1e-9});
  std::shared_ptr<const devices::MosfetModel> nmos(tech.make_golden());
  std::shared_ptr<const devices::MosfetModel> pmos(tech.make_golden());
  ckt.add_mosfet("Mn", n_out, n_in, kGround, kGround, nmos);
  ckt.add_mosfet("Mp", n_out, n_in, n_vdd, n_vdd, pmos, MosfetPolarity::kPmos);
  ckt.add_capacitor("Cl", n_out, kGround, 1e-12);

  TransientOptions opts;
  opts.t_stop = 2e-9;
  const TransientResult result = run_transient(ckt, opts);
  EXPECT_NEAR(result.waveform("out").sample(0.0), 1.8, 0.02);
  EXPECT_NEAR(result.final_value("out"), 0.0, 0.02);
}

TEST(SsnBench, DcAllOutputsHigh) {
  SsnBenchSpec spec;
  spec.n_drivers = 4;
  SsnBench bench = make_ssn_testbench(spec);
  const DcResult dc = dc_operating_point(bench.circuit);
  for (const auto& out : bench.output_nodes)
    EXPECT_NEAR(dc.voltage(bench.circuit, out), spec.tech.vdd, 0.02) << out;
  EXPECT_NEAR(dc.voltage(bench.circuit, "vssi"), 0.0, 1e-6);
}

TEST(SsnBench, GroundBounceAppearsAndDecays) {
  SsnBenchSpec spec;
  spec.n_drivers = 8;
  spec.input_rise_time = 0.1e-9;
  analysis::MeasureOptions mopts;
  mopts.overshoot_factor = 3.0;
  const auto m = analysis::measure_ssn(spec, mopts);
  // A healthy bounce: hundreds of mV but below the rail.
  EXPECT_GT(m.v_max, 0.2);
  EXPECT_LT(m.v_max, spec.tech.vdd);
  EXPECT_GT(m.t_at_max, 0.0);
  EXPECT_LE(m.t_at_max, spec.input_rise_time + 1e-15);
  // Inductor current is substantial and positive at the ramp end.
  EXPECT_GT(m.i_l.maximum().value, 1e-3);
  // Outputs barely moved during the ramp (the paper's assumption).
  EXPECT_GT(m.vout.sample(spec.input_rise_time), 0.8 * spec.tech.vdd);
}

TEST(SsnBench, BounceGrowsWithDriverCount) {
  double prev = 0.0;
  for (int n : {2, 4, 8}) {
    SsnBenchSpec spec;
    spec.n_drivers = n;
    const auto m = analysis::measure_ssn(spec);
    EXPECT_GT(m.v_max, prev) << n;
    prev = m.v_max;
  }
}

TEST(SsnBench, AsdmOverrideDeviceRuns) {
  // Replace the golden pull-down with a fitted-style ASDM and simulate:
  // this is the configuration that isolates formula error from fit error.
  SsnBenchSpec spec;
  spec.n_drivers = 8;
  spec.include_pullup = false;
  spec.pulldown_override = std::make_shared<devices::AsdmModel>(
      devices::AsdmParams{.k = 6e-3, .lambda = 1.25, .vx = 0.6});
  const auto m = analysis::measure_ssn(spec);
  EXPECT_GT(m.v_max, 0.1);
  EXPECT_LT(m.v_max, spec.tech.vdd);
}

TEST(SsnBench, QuietDriversBarelyChangeBounce) {
  SsnBenchSpec base;
  base.n_drivers = 4;
  const double v_base = analysis::measure_ssn(base).v_max;
  SsnBenchSpec with_quiet = base;
  with_quiet.n_quiet = 4;
  const double v_quiet = analysis::measure_ssn(with_quiet).v_max;
  EXPECT_NEAR(v_quiet, v_base, 0.1 * v_base);
}

TEST(SsnBench, StaggerReducesPeak) {
  SsnBenchSpec together;
  together.n_drivers = 4;
  together.input_rise_time = 0.1e-9;
  const double v_together = analysis::measure_ssn(together).v_max;

  SsnBenchSpec spread = together;
  spread.stagger = {0.0, 100e-12, 200e-12, 300e-12};
  const double v_spread = analysis::measure_ssn(spread).v_max;
  EXPECT_LT(v_spread, v_together);
}

TEST(SsnBench, PackageRIsNegligible) {
  // The paper neglects the 10 mOhm resistance; quantify that this is fair.
  SsnBenchSpec no_r;
  no_r.n_drivers = 8;
  const double v0 = analysis::measure_ssn(no_r).v_max;
  SsnBenchSpec with_r = no_r;
  with_r.include_package_r = true;
  const double v1 = analysis::measure_ssn(with_r).v_max;
  EXPECT_NEAR(v1, v0, 0.01 * v0);
}

TEST(Measure, OptionsValidated) {
  SsnBenchSpec spec;
  analysis::MeasureOptions mopts;
  mopts.overshoot_factor = 0.5;
  EXPECT_THROW(analysis::measure_ssn(spec, mopts), std::invalid_argument);
}

}  // namespace
