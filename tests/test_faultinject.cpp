// Deterministic fault injection (support/faultinject.hpp). The injector's
// trigger logic is tested in every build; the end-to-end tests — every
// injected fault class recovers or surfaces a typed SolverError, never a
// crash, hang or silent NaN — need the instrumented binary and GTEST_SKIP
// elsewhere (build with the `fault-injection` preset to run them).
#include "analysis/calibrate.hpp"
#include "analysis/montecarlo.hpp"
#include "analysis/resilience.hpp"
#include "circuit/circuit.hpp"
#include "circuit/testbench.hpp"
#include "sim/engine.hpp"
#include "sim/recovery.hpp"
#include "support/faultinject.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using support::FaultInjector;
using support::FaultKind;
using support::FaultPlan;
using support::SolverErrorKind;
using ssnkit::waveform::Dc;

class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm_all(); }
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

// --- trigger logic (runs in every build) ------------------------------------

TEST_F(FaultInjection, FiresOnExactNthQuery) {
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.fire_on_nth = 3;
  injector.arm(FaultKind::kNewtonDivergence, plan);
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i)
    fired.push_back(injector.should_fire(FaultKind::kNewtonDivergence));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(injector.query_count(FaultKind::kNewtonDivergence), 5u);
  EXPECT_EQ(injector.fire_count(FaultKind::kNewtonDivergence), 1u);
}

TEST_F(FaultInjection, MaxFiresCapsCertainFiring) {
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.probability = 1.0;
  plan.max_fires = 2;
  injector.arm(FaultKind::kStepUnderflow, plan);
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    if (injector.should_fire(FaultKind::kStepUnderflow)) ++fires;
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(injector.fire_count(FaultKind::kStepUnderflow), 2u);
}

TEST_F(FaultInjection, SeededBernoulliSequenceIsReproducible) {
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.seed = 42;
  plan.probability = 0.5;
  const auto draw = [&] {
    injector.arm(FaultKind::kSingularLu, plan);
    std::vector<bool> seq;
    for (int i = 0; i < 100; ++i)
      seq.push_back(injector.should_fire(FaultKind::kSingularLu));
    return seq;
  };
  const auto a = draw();
  const auto b = draw();
  EXPECT_EQ(a, b);  // identical plan => identical fire sequence
  plan.seed = 43;
  EXPECT_NE(a, draw());
}

TEST_F(FaultInjection, DisarmedSiteNeverFires) {
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.probability = 1.0;
  injector.arm(FaultKind::kNanResidual, plan);
  EXPECT_TRUE(injector.should_fire(FaultKind::kNanResidual));
  injector.disarm(FaultKind::kNanResidual);
  EXPECT_FALSE(injector.should_fire(FaultKind::kNanResidual));
  // Other sites are independent.
  EXPECT_FALSE(injector.should_fire(FaultKind::kStepUnderflow));
}

TEST_F(FaultInjection, ArmResetsCounters) {
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.fire_on_nth = 1;
  injector.arm(FaultKind::kNewtonDivergence, plan);
  EXPECT_TRUE(injector.should_fire(FaultKind::kNewtonDivergence));
  injector.arm(FaultKind::kNewtonDivergence, plan);
  EXPECT_EQ(injector.query_count(FaultKind::kNewtonDivergence), 0u);
  EXPECT_TRUE(injector.should_fire(FaultKind::kNewtonDivergence));
}

TEST_F(FaultInjection, KindNamesRoundTripThroughTheRegistry) {
  // The chaos harness addresses sites by name; every kind — including the
  // trust-layer classes — must round-trip, and unknown names must fail.
  for (int k = 0; k < support::kFaultKindCount; ++k) {
    FaultKind out = FaultKind::kNewtonDivergence;
    ASSERT_TRUE(
        support::fault_kind_from_name(support::to_string(FaultKind(k)), out))
        << support::to_string(FaultKind(k));
    EXPECT_EQ(out, FaultKind(k));
  }
  FaultKind sink = FaultKind::kNewtonDivergence;
  EXPECT_FALSE(support::fault_kind_from_name("meteor-strike", sink));
  EXPECT_FALSE(support::fault_kind_from_name("", sink));
}

TEST_F(FaultInjection, ArmFromPlanStringArmsNamedSites) {
  auto& injector = FaultInjector::instance();
  EXPECT_EQ(support::arm_from_plan_string(
                "seed=7,factor-bit-flip=1.0,cache-rot=0.5,journal-truncate=1"),
            3u);
  // p = 1.0 sites fire on the first query; the p = 0.5 site is armed (its
  // draw stream is seeded, so whether it fires is deterministic either way).
  EXPECT_TRUE(injector.should_fire(FaultKind::kFactorBitFlip));
  EXPECT_TRUE(injector.should_fire(FaultKind::kJournalTruncate));
  injector.should_fire(FaultKind::kCacheRot);
  EXPECT_EQ(injector.query_count(FaultKind::kCacheRot), 1u);
}

TEST_F(FaultInjection, ArmFromPlanStringSkipsMalformedEntriesBestEffort) {
  auto& injector = FaultInjector::instance();
  // Of these entries only journal-truncate=0.5 is valid: seed value is not
  // a number, one key is empty, one probability is garbage, one kind is
  // unknown, one probability is out of (0, 1], one entry has no '='.
  EXPECT_EQ(support::arm_from_plan_string(
                "seed=x,=0.5,factor-bit-flip=abc,meteor-strike=0.5,"
                "cache-rot=2.0,journal-truncate=0.5,factor-bit-flip"),
            1u);
  EXPECT_FALSE(injector.should_fire(FaultKind::kFactorBitFlip));
  EXPECT_FALSE(injector.should_fire(FaultKind::kCacheRot));
  EXPECT_EQ(injector.query_count(FaultKind::kJournalTruncate), 0u);
  // The empty plan arms nothing at all.
  EXPECT_EQ(support::arm_from_plan_string(""), 0u);
}

TEST_F(FaultInjection, PlanStringSeedMakesTheStreamsReproducible) {
  auto& injector = FaultInjector::instance();
  const auto draw_pattern = [&] {
    injector.disarm_all();
    support::arm_from_plan_string("seed=42,factor-bit-flip=0.5");
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i)
      fired.push_back(injector.should_fire(FaultKind::kFactorBitFlip));
    return fired;
  };
  const auto first = draw_pattern();
  const auto second = draw_pattern();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
}

TEST_F(FaultInjection, PlanStringSampleSuffixScopesTheSite) {
  auto& injector = FaultInjector::instance();
  // `worker-crash@13=1` arms the site restricted to sample scope 13 — the
  // chaos soak's deterministic poison pill (serve workers scope requests by
  // driver count).
  EXPECT_EQ(support::arm_from_plan_string("seed=7,worker-crash@13=1"), 1u);
  // Dead outside any scope, and in the wrong scope.
  EXPECT_FALSE(injector.should_fire(FaultKind::kWorkerCrash));
  {
    support::FaultSampleScope wrong(12);
    EXPECT_FALSE(injector.should_fire(FaultKind::kWorkerCrash));
  }
  {
    support::FaultSampleScope right(13);
    EXPECT_TRUE(injector.should_fire(FaultKind::kWorkerCrash));
  }
  // Malformed suffixes are skipped best-effort, like every other entry.
  injector.disarm_all();
  EXPECT_EQ(support::arm_from_plan_string(
                "worker-crash@=1,worker-hang@x=1,worker-oom@1.5=1"),
            0u);
}

// --- end-to-end (instrumented builds only) ----------------------------------

#define SSN_NEEDS_INSTRUMENTED_BUILD()                                 \
  do {                                                                 \
    if (!support::kFaultInjectionEnabled)                              \
      GTEST_SKIP() << "SSNKIT_FAULT_INJECTION is compiled out; "       \
                      "use the fault-injection preset";                \
  } while (0)

const analysis::Calibration& cal() {
  static const analysis::Calibration c =
      analysis::calibrate(process::tech_180nm());
  return c;
}

SsnBenchSpec small_spec() {
  SsnBenchSpec spec;
  spec.n_drivers = 2;
  return spec;
}

TransientOptions bench_opts(const SsnBench& bench, double rise) {
  TransientOptions opts;
  opts.t_stop = bench.t_ramp_end;
  opts.dt_max = rise / 200.0;
  return opts;
}

void expect_waveform_finite(const TransientResult& result,
                            const std::string& node, double t_stop) {
  const auto& w = result.waveform(node);
  for (int i = 0; i <= 100; ++i) {
    const double t = t_stop * double(i) / 100.0;
    EXPECT_TRUE(std::isfinite(w.sample(t))) << node << " at t=" << t;
  }
}

TEST_F(FaultInjection, SingleTransientFaultsRecoverInline) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  // One forced Newton divergence / LU singularity / NaN update mid-run is
  // absorbed by the engine's own step cutting (or the DC gmin homotopy):
  // full fidelity, no NaN anywhere in the waveform.
  for (FaultKind kind : {FaultKind::kNewtonDivergence, FaultKind::kSingularLu,
                         FaultKind::kNanResidual}) {
    auto& injector = FaultInjector::instance();
    FaultPlan plan;
    plan.fire_on_nth = 10;
    injector.arm(kind, plan);

    const SsnBenchSpec spec = small_spec();
    SsnBench bench = make_ssn_testbench(spec);
    const TransientOptions opts = bench_opts(bench, spec.input_rise_time);
    const RecoveryOutcome out = run_transient_resilient(bench.circuit, opts);
    injector.disarm(kind);

    ASSERT_TRUE(out.ok()) << "fault kind: " << support::to_string(kind);
    EXPECT_EQ(out.fidelity, Fidelity::kFullDevice)
        << "fault kind: " << support::to_string(kind);
    EXPECT_EQ(injector.fire_count(kind), 1u);
    expect_waveform_finite(out.result, bench.vssi_node, opts.t_stop);
  }
}

TEST_F(FaultInjection, FactorBitFlipIsNeverSilentlyWrong) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  // A silently corrupted LU factor is the trust layer's canonical enemy:
  // the solve "succeeds" with wrong numbers. Depending on where the flip
  // lands, one of three honest outcomes is allowed — the next Newton
  // iteration re-factorizes and absorbs it (the numbers must then match a
  // clean run), the post-solve residual check catches it (refined with an
  // SSN-W070 note, or a typed kResidualDegraded failure), or the pivot
  // sanity check rejects the factors outright. What is never allowed is a
  // wrong number wearing a verified badge. Sweep the flip across every
  // factorization of the run and hold that contract at each site.
  auto& injector = FaultInjector::instance();
  const SsnBenchSpec spec = small_spec();

  SsnBench ref_bench = make_ssn_testbench(spec);
  const TransientOptions opts = bench_opts(ref_bench, spec.input_rise_time);
  const TransientResult ref = run_transient(ref_bench.circuit, opts);
  ASSERT_EQ(ref.trust.verdict, ssnkit::verify::Verdict::kVerified)
      << ref.trust.summary();
  const double v_ref = ref.waveform(ref_bench.vssi_node).maximum().value;

  // Count the run's factorizations: arm a plan that can never fire and
  // read back how often the fault point was queried.
  FaultPlan probe;
  probe.fire_on_nth = std::size_t(-1);  // query-count probe: never fires
  injector.arm(FaultKind::kFactorBitFlip, probe);
  {
    SsnBench bench = make_ssn_testbench(spec);
    run_transient(bench.circuit, bench_opts(bench, spec.input_rise_time));
  }
  const auto sites = unsigned(
      injector.query_count(FaultKind::kFactorBitFlip));
  injector.disarm(FaultKind::kFactorBitFlip);
  ASSERT_GE(sites, 10u);

  unsigned healed = 0, confessed = 0, failed_typed = 0;
  for (unsigned nth = 1; nth <= sites; ++nth) {
    FaultPlan plan;
    plan.fire_on_nth = nth;
    injector.arm(FaultKind::kFactorBitFlip, plan);
    SsnBench bench = make_ssn_testbench(spec);
    const TransientRun run = run_transient_ex(
        bench.circuit, bench_opts(bench, spec.input_rise_time));
    const bool fired = injector.fire_count(FaultKind::kFactorBitFlip) == 1u;
    injector.disarm(FaultKind::kFactorBitFlip);
    ASSERT_TRUE(fired) << "site " << nth << " of " << sites;

    if (run.error) {
      ++failed_typed;  // typed failure: honest, the ladder would retry
      continue;
    }
    expect_waveform_finite(run.result, bench.vssi_node, opts.t_stop);
    if (run.result.trust.verdict == ssnkit::verify::Verdict::kVerified) {
      // Absorbed before any accepted solve: the verdict is only honest if
      // the numbers actually match the clean run's.
      const double v =
          run.result.waveform(bench.vssi_node).maximum().value;
      EXPECT_NEAR(v, v_ref, 1e-6 * std::fabs(v_ref) + 1e-9)
          << "site " << nth << ": verified but wrong — the trust layer "
          << "served a corrupted number with a verified badge";
      ++healed;
    } else {
      // Refined or degraded: the downgrade must come with its note.
      bool noted = false;
      for (const auto& n : run.result.trust.notes)
        if (n.find("SSN-W070") != std::string::npos ||
            n.find("SSN-W071") != std::string::npos)
          noted = true;
      EXPECT_TRUE(noted) << run.result.trust.summary();
      ++confessed;
    }
  }
  EXPECT_EQ(healed + confessed + failed_typed, sites);
  // With the default tolerances every flip is absorbed: Newton's own
  // convergence test (abstol 1e-9 V) screens out any corrupted update the
  // residual check could see, so `healed == sites` here is the expected
  // outcome, not a gap.
  EXPECT_EQ(healed, sites);

  // The residual check earns its keep in the regime Newton cannot heal.
  // A single flip is always repaired by the next iteration's clean
  // refactorization — that is exactly why every site above healed. So
  // corrupt EVERY factorization (probability 1): the engine solves the
  // full MNA system A·x = b each iteration, and with a persistently
  // perturbed factor M the iteration converges to the fixed point
  // M(x*)·x* = b(x*), whose true linear residual (M − A)·x* carries an
  // irreducible ~2^-4 pivot term no refactorization can remove. The
  // post-solve residual check is now the only line of defense and it must
  // engage: the run either fails typed (kResidualDegraded), or survives
  // only with a refined/degraded verdict and its SSN-W070/W071 note — and
  // if any accepted point still says verified, its numbers must match the
  // clean reference.
  FaultPlan persistent;
  persistent.probability = 1.0;
  injector.arm(FaultKind::kFactorBitFlip, persistent);
  SsnBench pbench = make_ssn_testbench(spec);
  const TransientRun prun = run_transient_ex(
      pbench.circuit, bench_opts(pbench, spec.input_rise_time));
  const auto fires = injector.fire_count(FaultKind::kFactorBitFlip);
  injector.disarm(FaultKind::kFactorBitFlip);
  ASSERT_GE(fires, 2u) << "persistent plan never fired";

  bool caught = false;
  if (prun.error) {
    caught = true;  // typed failure: honest, nothing was served
  } else if (prun.result.trust.verdict != ssnkit::verify::Verdict::kVerified) {
    EXPECT_GE(prun.result.stats.residual_checks, 1u);
    bool noted = false;
    for (const auto& n : prun.result.trust.notes)
      if (n.find("SSN-W070") != std::string::npos ||
          n.find("SSN-W071") != std::string::npos)
        noted = true;
    EXPECT_TRUE(noted) << prun.result.trust.summary();
    caught = true;
  } else {
    // A verified badge under wall-to-wall corruption is only acceptable if
    // refinement scrubbed every accepted solve back to the true system —
    // in which case the numbers must be right.
    const double v = prun.result.waveform(pbench.vssi_node).maximum().value;
    EXPECT_NEAR(v, v_ref, 1e-6 * std::fabs(v_ref) + 1e-9)
        << "persistent corruption: verified but wrong";
    caught = prun.result.trust.refinements > 0;
  }
  EXPECT_TRUE(caught)
      << "every factorization of the run was corrupted, yet the residual "
         "check never engaged (verdict: " << prun.result.trust.summary()
      << ")";
}

TEST_F(FaultInjection, RepeatedUnderflowClimbsToAlternateIntegrator) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  // Exactly two forced underflows: the full-device and tighten-damping
  // rungs each die at their first step, the alternate-integrator rung runs
  // clean.
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.probability = 1.0;
  plan.max_fires = 2;
  injector.arm(FaultKind::kStepUnderflow, plan);

  const SsnBenchSpec spec = small_spec();
  SsnBench bench = make_ssn_testbench(spec);
  const TransientOptions opts = bench_opts(bench, spec.input_rise_time);
  const RecoveryOutcome out = run_transient_resilient(bench.circuit, opts);

  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.fidelity, Fidelity::kAlternateIntegrator);
  ASSERT_EQ(out.attempts.size(), 3u);
  EXPECT_FALSE(out.attempts[0].succeeded);
  EXPECT_FALSE(out.attempts[1].succeeded);
  EXPECT_TRUE(out.attempts[2].succeeded);
  EXPECT_EQ(injector.fire_count(FaultKind::kStepUnderflow), 2u);
  expect_waveform_finite(out.result, bench.vssi_node, opts.t_stop);
}

TEST_F(FaultInjection, UnlimitedUnderflowExhaustsLadderWithTypedError) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.probability = 1.0;
  injector.arm(FaultKind::kStepUnderflow, plan);

  const SsnBenchSpec spec = small_spec();
  SsnBench bench = make_ssn_testbench(spec);
  const TransientOptions opts = bench_opts(bench, spec.input_rise_time);
  const RecoveryOutcome out = run_transient_resilient(bench.circuit, opts);

  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.fidelity, Fidelity::kFailed);
  EXPECT_EQ(out.attempts.size(), 5u);
  EXPECT_EQ(out.error->kind(), SolverErrorKind::kStepUnderflow);
  EXPECT_TRUE(out.error->diagnostics().injected);
  EXPECT_EQ(out.error->diagnostics().recovery_trail.size(), 5u);
}

TEST_F(FaultInjection, ExhaustedLadderDegradesToAnalyticRung) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.probability = 1.0;
  injector.arm(FaultKind::kStepUnderflow, plan);

  const SsnBenchSpec spec = small_spec();
  const core::SsnScenario scenario = analysis::make_scenario(
      cal(), spec.package, spec.n_drivers, spec.input_rise_time, true);
  const auto m = analysis::measure_ssn_resilient(spec, {}, {}, &scenario);

  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.fidelity, Fidelity::kAnalytic);
  ASSERT_TRUE(m.error.has_value());
  EXPECT_TRUE(m.error->diagnostics().injected);
  EXPECT_DOUBLE_EQ(m.measurement.v_max,
                   analysis::analytic_measurement(scenario).v_max);
}

TEST_F(FaultInjection, DcNewtonFaultForcesGminStepping) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  // Killing the plain-Newton stage routes the DC solve through the gmin
  // homotopy; the solution must match the uninjected one exactly.
  const auto build = [] {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    ckt.add_vsource("V1", a, kGround, Dc{1.0});
    ckt.add_resistor("R1", a, b, 1e3);
    ckt.add_resistor("R2", b, kGround, 1e3);
    return ckt;
  };
  Circuit clean_ckt = build();
  const double v_clean = dc_operating_point(clean_ckt).voltage(clean_ckt, "b");

  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.fire_on_nth = 1;  // first Newton iteration of the plain stage
  injector.arm(FaultKind::kNewtonDivergence, plan);
  Circuit ckt = build();
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_TRUE(dc.used_gmin_stepping);
  EXPECT_FALSE(dc.used_source_stepping);
  ASSERT_FALSE(dc.homotopy_trail.empty());
  EXPECT_EQ(dc.homotopy_trail.front().name, "plain-newton");
  EXPECT_FALSE(dc.homotopy_trail.front().converged);
  EXPECT_DOUBLE_EQ(dc.voltage(ckt, "b"), v_clean);
}

TEST_F(FaultInjection, DcNewtonFaultCascadeForcesSourceStepping) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  // Two fires kill plain Newton and the first gmin stage, so the gmin
  // homotopy aborts and the source-stepping branch finishes the solve.
  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.probability = 1.0;
  plan.max_fires = 2;
  injector.arm(FaultKind::kNewtonDivergence, plan);

  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_resistor("R1", a, b, 1e3);
  ckt.add_resistor("R2", b, kGround, 1e3);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_TRUE(dc.used_source_stepping);
  EXPECT_NEAR(dc.voltage(ckt, "b"), 0.5, 1e-6);
}

TEST_F(FaultInjection, SeededSoakIsBitForBitReproducible) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  // A probabilistic underflow storm over the whole ladder: the outcome
  // (fidelity, attempt count, waveform) must be identical when the same
  // plan is re-armed.
  const auto run_once = [] {
    auto& injector = FaultInjector::instance();
    FaultPlan plan;
    plan.seed = 7;
    plan.probability = 0.3;
    plan.max_fires = 3;
    injector.arm(FaultKind::kStepUnderflow, plan);
    const SsnBenchSpec spec = small_spec();
    SsnBench bench = make_ssn_testbench(spec);
    const TransientOptions opts = bench_opts(bench, spec.input_rise_time);
    RecoveryOutcome out = run_transient_resilient(bench.circuit, opts);
    injector.disarm_all();
    return out;
  };
  const RecoveryOutcome a = run_once();
  const RecoveryOutcome b = run_once();
  EXPECT_EQ(a.fidelity, b.fidelity);
  EXPECT_EQ(a.attempts.size(), b.attempts.size());
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_EQ(a.result.point_count(), b.result.point_count());
    EXPECT_DOUBLE_EQ(a.result.final_value("vssi"),
                     b.result.final_value("vssi"));
  }
}

TEST_F(FaultInjection, MonteCarloSurvivorsMatchUninjectedRun) {
  SSN_NEEDS_INSTRUMENTED_BUILD();
  // One injected failure in the first sample's first attempt: the batch
  // completes, the hit sample recovers on a ladder rung, and the remaining
  // samples are bit-for-bit identical to the uninjected baseline (the
  // variation factors are drawn up front, so failures cannot shift them).
  analysis::SimMonteCarloOptions opts;
  opts.samples = 3;
  opts.analytic_fallback = false;
  const auto pkg = process::package_pga();
  const auto baseline =
      analysis::monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts);
  ASSERT_EQ(baseline.surviving, 3u);
  ASSERT_TRUE(baseline.summary.all_full_fidelity());

  auto& injector = FaultInjector::instance();
  FaultPlan plan;
  plan.fire_on_nth = 1;
  plan.max_fires = 1;
  // Each sample runs in its own FaultSampleScope with its own trigger
  // stream, so an untargeted fire_on_nth=1 would hit every sample's first
  // query; only_sample confines the fault to sample 0.
  plan.only_sample = 0;
  injector.arm(FaultKind::kStepUnderflow, plan);
  const auto injected =
      analysis::monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts);

  EXPECT_EQ(injected.surviving, 3u);
  EXPECT_EQ(injected.summary.total, 3u);
  EXPECT_EQ(injected.summary.recovered, 1u);
  ASSERT_EQ(injected.samples.size(), 3u);
  EXPECT_NE(injected.samples[0].fidelity, Fidelity::kFullDevice);
  // The faulted sample recovered on a cheaper rung: same physics, slightly
  // different numerics.
  EXPECT_NEAR(injected.samples[0].v_max, baseline.samples[0].v_max,
              1e-2 * baseline.samples[0].v_max);
  // Untouched samples are identical, factors included.
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(injected.samples[i].v_max, baseline.samples[i].v_max);
    EXPECT_DOUBLE_EQ(injected.samples[i].l_factor,
                     baseline.samples[i].l_factor);
    EXPECT_EQ(injected.samples[i].fidelity, Fidelity::kFullDevice);
  }
}

}  // namespace
