// Mutual inductance: the CoupledInductors element against transformer
// physics and analytic parallel-pin inductance, plus the netlist K card.
#include "circuit/circuit.hpp"
#include "circuit/netlist.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using ssnkit::waveform::Dc;
using ssnkit::waveform::Pwl;
using ssnkit::waveform::Waveform;

TEST(CoupledInductors, Validation) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_THROW(ckt.add_coupled_inductors("K1", a, kGround, a, kGround, 0.0,
                                         1e-9, 0.5),
               std::invalid_argument);
  EXPECT_THROW(ckt.add_coupled_inductors("K2", a, kGround, a, kGround, 1e-9,
                                         1e-9, 1.0),
               std::invalid_argument);
  auto& k = ckt.add_coupled_inductors("K3", a, kGround, ckt.node("b"), kGround,
                                      4e-9, 1e-9, 0.5);
  EXPECT_NEAR(k.mutual(), 0.5 * std::sqrt(4e-9 * 1e-9), 1e-18);
}

TEST(CoupledInductors, DcBothWindingsShort) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", in, kGround, Dc{1.0});
  ckt.add_resistor("R1", in, a, 100.0);
  ckt.add_resistor("R2", in, b, 100.0);
  ckt.add_coupled_inductors("K1", a, kGround, b, kGround, 5e-9, 5e-9, 0.6);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_NEAR(dc.voltage(ckt, "a"), 0.0, 1e-9);
  EXPECT_NEAR(dc.voltage(ckt, "b"), 0.0, 1e-9);
}

TEST(CoupledInductors, OpenSecondaryTransformerVoltage) {
  // Drive the primary with a current ramp dI/dt = 1e6 A/s; the open
  // secondary shows v2 = M * di1/dt.
  Circuit ckt;
  const NodeId p = ckt.node("p");
  const NodeId s = ckt.node("s");
  ckt.add_isource("I1", kGround, p,
                  Pwl{{{0.0, 0.0}, {10e-6, 10.0}}});  // 1e6 A/s ramp
  ckt.add_coupled_inductors("K1", p, kGround, s, kGround, 4e-9, 1e-9, 0.8);
  ckt.add_resistor("Rs", s, kGround, 1e9);  // effectively open

  TransientOptions opts;
  opts.t_stop = 8e-6;
  const TransientResult result = run_transient(ckt, opts);
  const double m = 0.8 * std::sqrt(4e-9 * 1e-9);
  EXPECT_NEAR(result.waveform("s").sample(5e-6), m * 1e6, 0.03 * m * 1e6);
  // Primary sees L1 * di/dt.
  EXPECT_NEAR(result.waveform("p").sample(5e-6), 4e-9 * 1e6,
              0.03 * 4e-9 * 1e6);
}

class ParallelPinsTest : public ::testing::TestWithParam<Integrator> {};

TEST_P(ParallelPinsTest, CoupledParallelPinsActLikeLPlusMOverTwo) {
  // Two identical inductors in parallel with coupling k behave as
  // L_eff = L(1+k)/2. Compare the RL rise time constant against a single
  // inductor of that value.
  const double l = 5e-9, k = 0.6, r = 10.0;
  const double l_eff = l * (1.0 + k) / 2.0;

  // Each pin gets its own small series resistance (also breaks the DC
  // degeneracy of two shorts across the same node pair); the uncoupled
  // comparator uses the parallel combination.
  const double r_pin = 1.0;
  const auto current_at = [&](bool coupled, double t_probe) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.add_vsource("V1", in, kGround, Pwl{{{0.0, 0.0}, {1e-15, 1.0}}});
    ckt.add_resistor("R1", in, mid, r);
    if (coupled) {
      const NodeId a = ckt.node("a");
      const NodeId b = ckt.node("b");
      ckt.add_resistor("Rp1", mid, a, r_pin);
      ckt.add_resistor("Rp2", mid, b, r_pin);
      ckt.add_coupled_inductors("K1", a, kGround, b, kGround, l, l, k);
    } else {
      const NodeId c = ckt.node("c");
      ckt.add_resistor("Rp", mid, c, r_pin / 2.0);
      ckt.add_inductor("L1", c, kGround, l_eff);
    }
    TransientOptions opts;
    opts.t_stop = 3e-9;
    opts.method = GetParam();
    opts.lte_reltol = 1e-5;
    const TransientResult res = run_transient(ckt, opts);
    return res.waveform("mid").sample(t_probe);
  };

  for (double t : {0.2e-9, 0.5e-9, 1.5e-9}) {
    EXPECT_NEAR(current_at(true, t), current_at(false, t),
                0.02 * std::fabs(current_at(false, t)) + 1e-4)
        << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIntegrators, ParallelPinsTest,
                         ::testing::Values(Integrator::kBackwardEuler,
                                           Integrator::kTrapezoidal,
                                           Integrator::kGear2),
                         [](const ::testing::TestParamInfo<Integrator>& pinfo) {
                           switch (pinfo.param) {
                             case Integrator::kBackwardEuler: return "BE";
                             case Integrator::kTrapezoidal: return "Trap";
                             case Integrator::kGear2: return "Gear2";
                           }
                           return "?";
                         });

TEST(CoupledInductors, EnergyTransferOscillates) {
  // A charged LC tank coupled to an identical tank slowly exchanges energy
  // (beat between the split modes) — a qualitative coupling check: the
  // second tank's peak voltage approaches the first one's initial value.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_capacitor("C1", a, kGround, 1e-12, 1.0);  // charged to 1 V
  ckt.add_capacitor("C2", b, kGround, 1e-12, 0.0);
  ckt.add_coupled_inductors("K1", a, kGround, b, kGround, 5e-9, 5e-9, 0.3);

  TransientOptions opts;
  opts.t_stop = 4e-9;
  opts.use_ic = true;
  opts.lte_reltol = 1e-5;
  const TransientResult result = run_transient(ckt, opts);
  const double peak_b = result.waveform("b").maximum().value;
  EXPECT_GT(peak_b, 0.5);  // substantial energy transferred
  EXPECT_LT(peak_b, 1.05);
}

TEST(CoupledInductors, NetlistKCard) {
  const auto parsed = parse_netlist(R"(
V1 in 0 DC 1.0
R1 in a 100
R2 in b 100
L1 a 0 5n
L2 b 0 5n
K1 L1 L2 0.7
)");
  EXPECT_EQ(parsed.circuit.find_element("L1"), nullptr);  // fused away
  EXPECT_EQ(parsed.circuit.find_element("L2"), nullptr);
  const auto* k =
      dynamic_cast<const CoupledInductors*>(parsed.circuit.find_element("K1"));
  ASSERT_NE(k, nullptr);
  EXPECT_DOUBLE_EQ(k->coupling(), 0.7);
}

TEST(CoupledInductors, NetlistKCardUnknownInductor) {
  EXPECT_THROW(parse_netlist("L1 a 0 5n\nK1 L1 LX 0.5\n"), std::invalid_argument);
}

}  // namespace
