// End-to-end: calibration, model-vs-simulator agreement (the paper's
// headline claims), sweeps and the design helpers.
#include "analysis/calibrate.hpp"
#include "analysis/design.hpp"
#include "analysis/measure.hpp"
#include "analysis/sweeps.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "waveform/metrics.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace ssnkit;
using analysis::calibrate;
using analysis::Calibration;
using analysis::make_scenario;
using process::GoldenKind;

const Calibration& cal180() {
  static const Calibration cal = calibrate(process::tech_180nm());
  return cal;
}

TEST(Calibrate, ProducesSaneDeviceAbstractions) {
  const Calibration& cal = cal180();
  EXPECT_GT(cal.asdm.params.k, 1e-3);
  EXPECT_GT(cal.asdm.params.lambda, 1.0);
  EXPECT_GT(cal.asdm.params.vx, cal.tech.alpha_power.vt0);
  EXPECT_TRUE(cal.alpha.converged);
  EXPECT_GT(cal.baseline_b(), 0.0);
  EXPECT_THROW(calibrate(cal.tech, GoldenKind::kAlphaPower, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Calibrate, ScenarioFactory) {
  const auto scenario =
      make_scenario(cal180(), process::package_pga(), 8, 0.1e-9, true);
  EXPECT_EQ(scenario.n_drivers, 8);
  EXPECT_DOUBLE_EQ(scenario.inductance, 5e-9);
  EXPECT_DOUBLE_EQ(scenario.capacitance, 1e-12);
  EXPECT_NEAR(scenario.slope, 1.8e10, 1e-3);
  const auto no_c =
      make_scenario(cal180(), process::package_pga(), 8, 0.1e-9, false);
  EXPECT_DOUBLE_EQ(no_c.capacitance, 0.0);
}

// --- the paper's central accuracy claims -------------------------------------

TEST(EndToEnd, FormulaErrorIsolatedWithAsdmDevice) {
  // Same ASDM device in both the formula and the simulator, L-only bench:
  // the remaining discrepancy is formula error alone and must be tiny.
  const Calibration& cal = cal180();
  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = 8;
  spec.input_rise_time = 0.1e-9;
  spec.include_package_c = false;
  spec.include_pullup = false;
  spec.pulldown_override = std::make_shared<devices::AsdmModel>(cal.asdm.params);
  const auto m = analysis::measure_ssn(spec);

  const auto scenario =
      make_scenario(cal, process::package_pga(), 8, 0.1e-9, false);
  const core::LOnlyModel model(scenario);
  EXPECT_NEAR(model.v_max(), m.v_max, 0.02 * m.v_max);

  // Whole waveform, not just the peak.
  const auto err =
      waveform::compare(model.vn_waveform(), m.vssi, scenario.t_on() * 1.001,
                        scenario.t_ramp_end());
  EXPECT_LT(err.norm_max_abs, 0.03);
}

TEST(EndToEnd, LOnlyModelVsGoldenSimulator) {
  // Full path: golden device in the simulator, fitted ASDM in the formula.
  // The paper's Fig. 2/3 agreement: within several percent.
  const Calibration& cal = cal180();
  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = 8;
  spec.input_rise_time = 0.1e-9;
  spec.include_package_c = false;
  const auto m = analysis::measure_ssn(spec);

  const auto scenario =
      make_scenario(cal, process::package_pga(), 8, 0.1e-9, false);
  const double v_model = core::LOnlyModel(scenario).v_max();
  EXPECT_NEAR(v_model, m.v_max, 0.10 * m.v_max);
}

TEST(EndToEnd, LcModelVsGoldenSimulatorAcrossRegions) {
  // The paper's Fig. 4 claim: the LC model tracks the simulator in both
  // damping regions (< ~3% there; we allow extra for our golden devices).
  const Calibration& cal = cal180();
  const auto base = make_scenario(cal, process::package_pga(), 8, 0.1e-9, false);
  const double c_crit = base.critical_capacitance();
  for (double c_mult : {0.25, 4.0}) {
    const double c = c_crit * c_mult;
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = 8;
    spec.input_rise_time = 0.1e-9;
    spec.package.capacitance = c;
    const auto m = analysis::measure_ssn(spec);
    const double v_model = core::LcModel(base.with_capacitance(c)).v_max();
    EXPECT_NEAR(v_model, m.v_max, 0.10 * m.v_max) << "c_mult=" << c_mult;
  }
}

TEST(EndToEnd, LOnlyModelFailsWhenStronglyUnderdamped) {
  // The motivation for Section 4: with C far above C_crit the L-only
  // formula misses the resonant overshoot that the LC formula captures.
  const Calibration& cal = cal180();
  const auto base = make_scenario(cal, process::package_pga(), 2, 0.5e-9, false);
  const double c = base.critical_capacitance() * 60.0;

  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = 2;
  spec.input_rise_time = 0.5e-9;
  spec.package.capacitance = c;
  const auto m = analysis::measure_ssn(spec);

  const double err_l_only =
      std::fabs(core::LOnlyModel(base).v_max() - m.v_max) / m.v_max;
  const double err_lc =
      std::fabs(core::LcModel(base.with_capacitance(c)).v_max() - m.v_max) /
      m.v_max;
  EXPECT_LT(err_lc, err_l_only);
  EXPECT_GT(err_l_only, 0.10);
}

// --- sweeps -------------------------------------------------------------------

TEST(Sweeps, DriverSweepShapeMatchesFig3) {
  analysis::DriverSweepConfig config;
  config.driver_counts = {2, 4, 8, 12};
  const auto result = analysis::run_driver_sweep(config);
  ASSERT_EQ(result.rows.size(), 4u);
  // Monotone increase of the simulated noise with N.
  for (std::size_t i = 1; i < result.rows.size(); ++i)
    EXPECT_GT(result.rows[i].sim, result.rows[i - 1].sim);
  // The paper's model is the most accurate on average.
  double e_this = 0.0, e_vem = 0.0, e_song = 0.0, e_sp = 0.0;
  for (const auto& row : result.rows) {
    e_this += row.err_this;
    e_vem += row.err_vemuru;
    e_song += row.err_song;
    e_sp += row.err_senthinathan;
  }
  EXPECT_LT(e_this, e_vem);
  EXPECT_LT(e_this, e_song);
  EXPECT_LT(e_this, e_sp);
  EXPECT_LT(e_this / double(result.rows.size()), 0.08);
}

TEST(Sweeps, CapacitanceSweepShapeMatchesFig4) {
  analysis::CapacitanceSweepConfig config;
  const auto base = make_scenario(cal180(), config.package, config.n_drivers,
                                  config.input_rise_time, false);
  const double c_crit = base.critical_capacitance();
  config.capacitances = {c_crit * 0.2, c_crit * 0.7, c_crit * 2.0, c_crit * 8.0};
  const auto result = analysis::run_capacitance_sweep(config);
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_NEAR(result.critical_capacitance, c_crit, 1e-3 * c_crit);
  // Over-damped rows: both models acceptable. Under-damped rows: the LC
  // model must beat the L-only model.
  for (const auto& row : result.rows) {
    if (row.zeta < 0.8) {
      EXPECT_LE(row.err_lc, row.err_l_only + 0.02) << row.c;
    }
    EXPECT_LT(row.err_lc, 0.12) << row.c;
  }
}

TEST(Sweeps, SlopeSweepModelTracksSim) {
  const auto rows = analysis::run_slope_sweep(
      cal180(), process::package_pga(), 8, {0.05e-9, 0.1e-9, 0.3e-9}, false);
  ASSERT_EQ(rows.size(), 3u);
  // Faster edges, more noise.
  EXPECT_GT(rows[0].sim, rows[1].sim);
  EXPECT_GT(rows[1].sim, rows[2].sim);
  for (const auto& r : rows) EXPECT_LT(r.err, 0.12);
}

TEST(Sweeps, BetaEquivalence) {
  const auto pts = analysis::beta_equivalence_points(
      cal180(), 8.0 * 5e-9 * 1.8e10, {1, 2, 4, 8, 16}, 0.1e-9);
  ASSERT_EQ(pts.size(), 5u);
  for (const auto& p : pts) {
    EXPECT_NEAR(p.beta, pts[0].beta, 1e-6 * pts[0].beta);
    EXPECT_NEAR(p.v_max, pts[0].v_max, 1e-9);
  }
}

// --- design helpers -----------------------------------------------------------

TEST(Design, PredictVmaxDispatches) {
  const auto with_c = make_scenario(cal180(), process::package_pga(), 8,
                                    0.1e-9, true);
  const auto no_c = make_scenario(cal180(), process::package_pga(), 8,
                                  0.1e-9, false);
  EXPECT_GT(analysis::predict_vmax(with_c), 0.0);
  EXPECT_GT(analysis::predict_vmax(no_c), 0.0);
}

TEST(Design, RequiredGroundPads) {
  const auto scenario = make_scenario(cal180(), process::package_pga(), 16,
                                      0.1e-9, true);
  const double unpadded = analysis::predict_vmax(scenario);
  const double budget = unpadded / 3.0;
  const int pads = analysis::required_ground_pads(scenario,
                                                  process::package_pga(), budget);
  EXPECT_GT(pads, 1);
  // Verify the answer actually meets the budget and is minimal.
  const auto meets = [&](int k) {
    const auto pkg = process::package_pga().with_ground_pads(k);
    auto s = scenario;
    s.inductance = pkg.inductance;
    s.capacitance = pkg.capacitance;
    return analysis::predict_vmax(s) <= budget;
  };
  EXPECT_TRUE(meets(pads));
  EXPECT_FALSE(meets(pads - 1));
  EXPECT_THROW(analysis::required_ground_pads(scenario, process::package_pga(),
                                              1e-6, 4),
               std::runtime_error);
}

TEST(Design, MaxSimultaneousDrivers) {
  const auto scenario = make_scenario(cal180(), process::package_pga(), 1,
                                      0.1e-9, false);
  const double v16 = analysis::predict_vmax(scenario.with_drivers(16));
  const int n = analysis::max_simultaneous_drivers(scenario, v16);
  EXPECT_GE(n, 16);
  EXPECT_LT(analysis::predict_vmax(scenario.with_drivers(n)), v16 * 1.0001);
  // Tiny budget -> zero drivers allowed.
  EXPECT_EQ(analysis::max_simultaneous_drivers(scenario, 1e-9), 0);
}

TEST(Design, MaxInputSlope) {
  const auto scenario = make_scenario(cal180(), process::package_pga(), 8,
                                      0.1e-9, false);
  const double budget = analysis::predict_vmax(scenario) * 0.5;
  const double s_max = analysis::max_input_slope(scenario, budget);
  EXPECT_LT(s_max, scenario.slope);
  EXPECT_NEAR(analysis::predict_vmax(scenario.with_slope(s_max)), budget,
              0.01 * budget);
  EXPECT_THROW(analysis::max_input_slope(scenario, 1e-9, 1e10, 1e9),
               std::invalid_argument);
}

}  // namespace
