// Fixture: emits a diagnostic code that the catalog does not document.
#include <string>

namespace fixture {

std::string undocumented_code() { return "SSN-E901: fixture boom"; }

}  // namespace fixture
