// Fixture: the same consumption patterns as trust_bad, made legitimate —
// each result's status is inspected (or the result is forwarded to code
// that can inspect it) before its values are read. SSN-L013 must stay
// quiet on every site here.

struct Trust {
  int verdict = 0;
};

struct Measurement {
  double v_max = 0.0;
  Trust trust;
};

struct McResult {
  double mean = 0.0;
  double p95 = 0.0;
  int stop = 0;
};

Measurement measure_ssn(int spec);
McResult monte_carlo_vmax(int scenario);
void verify_measurement(Measurement& m);

namespace fixture {

double trust_checked(int spec) {
  const auto m = measure_ssn(spec);
  if (m.trust.verdict > 1) return 0.0;
  return m.v_max;
}

double stop_checked(int scenario) {
  const auto mc = monte_carlo_vmax(scenario);
  if (mc.stop != 0) return 0.0;
  return mc.mean + mc.p95;
}

double forwarded(int spec) {
  // Handing the result to verify_measurement delegates the status check.
  auto m = measure_ssn(spec);
  verify_measurement(m);
  return m.v_max;
}

Measurement returned_whole(int spec) {
  // Returning the producer's result forwards the obligation to the caller.
  return measure_ssn(spec);
}

}  // namespace fixture
