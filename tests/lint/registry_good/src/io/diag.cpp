// Fixture: every emitted diagnostic code has exactly one catalog row.
#include <string>

namespace fixture {

std::string documented_code() { return "SSN-E901: fixture boom"; }

}  // namespace fixture
