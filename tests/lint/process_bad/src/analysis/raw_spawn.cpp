// Fixture: raw process management in the analysis layer. All three shapes
// of SSN-L014 must fire — the fork itself, the ad-hoc waitpid reap, and
// the bare kill. None of these pids reach the crash-kill registry, so a
// crash-path _Exit would orphan the child.

using pid_t_fixture = int;

pid_t_fixture fork();
pid_t_fixture waitpid(pid_t_fixture pid, int* status, int flags);
int kill(pid_t_fixture pid, int sig);
int execvp(const char* file, char* const argv[]);

namespace fixture {

int run_helper(char* const argv[]) {
  const pid_t_fixture pid = fork();  // SSN-L014: unregistered child
  if (pid == 0) {
    execvp(argv[0], argv);  // SSN-L014: exec outside the spawn wrapper
    return 127;
  }
  int status = 0;
  waitpid(pid, &status, 0);  // SSN-L014: races the supervisor's reaper
  return status;
}

void stop_helper(pid_t_fixture pid) {
  kill(pid, 9);  // SSN-L014: bare kill outside support/supervisor
}

}  // namespace fixture
