// Fixture: sim -> support is a legal downward include, but together with
// support/buffer.hpp's upward edge it closes a file-level include cycle.
#pragma once

#include "support/buffer.hpp"

namespace fixture {
struct Stepper {
  int steps = 0;
};
}  // namespace fixture
