// Fixture: io and numeric share rank 1; including each other is a layer
// cycle even though neither edge is "upward".
#pragma once

#include "numeric/table.hpp"

namespace fixture {
struct Reader {
  int rows = 0;
};
}  // namespace fixture
