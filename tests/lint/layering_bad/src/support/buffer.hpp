// Fixture: the support layer (rank 0) must never reach up into sim (rank 3).
#pragma once

#include "sim/stepper.hpp"

namespace fixture {
struct Buffer {
  int capacity = 0;
};
}  // namespace fixture
