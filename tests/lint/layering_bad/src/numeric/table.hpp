// Fixture: second half of the io <-> numeric same-rank layer cycle.
#pragma once

#include "io/reader.hpp"

namespace fixture {
struct Table {
  int cols = 0;
};
}  // namespace fixture
