// Fixture: results consumed blind. Both shapes of SSN-L013 must fire —
// the chained temporary (the result object dies before anything could
// inspect it) and the named result whose only uses read value members.

struct Measurement {
  double v_max = 0.0;
  double t_at_max = 0.0;
};

struct McResult {
  double mean = 0.0;
  double p95 = 0.0;
};

Measurement measure_ssn(int spec);
McResult monte_carlo_vmax(int scenario);

namespace fixture {

double chained_temporary(int spec) {
  // (a) reading v_max straight off the temporary: nothing can ever check
  // the verdict this measurement earned.
  return measure_ssn(spec).v_max;
}

double named_but_blind(int scenario) {
  // (b) mc's only uses are .mean/.p95; .stop and .trust are never looked
  // at, so a cancelled or degraded batch reads like a good one.
  const auto mc = monte_carlo_vmax(scenario);
  const double headline = mc.mean;
  return headline + mc.p95;
}

}  // namespace fixture
