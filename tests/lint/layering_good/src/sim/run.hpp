// Fixture: sim (rank 3) -> numeric (rank 1) flows down: legal.
#pragma once

#include "numeric/vec.hpp"

namespace fixture {
struct Run {
  int iterations = 0;
};
}  // namespace fixture
