// Fixture: numeric (rank 1) -> support (rank 0) flows down: legal.
#pragma once

#include "support/base.hpp"

namespace fixture {
struct Vec {
  int size = 0;
};
}  // namespace fixture
