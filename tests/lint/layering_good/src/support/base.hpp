// Fixture: rank-0 leaf with no project includes.
#pragma once

namespace fixture {
struct Base {
  int id = 0;
};
}  // namespace fixture
