// Fixture: dimensionally consistent dataflow through the same operations the
// bad twin abuses. SSN-L011 must stay quiet here.
// ssn-units: v_a=V, v_b=V, i_out=A, g_load=A/V, t_rise=s, tau_g=s

namespace fixture {

double settle(double v_a, double v_b, double g_load, double t_rise,
              double tau_g) {
  const double v_sum = v_a + v_b;
  const double i_out = g_load * v_sum;
  const double ratio = t_rise / tau_g;
  return i_out * ratio;
}

}  // namespace fixture
