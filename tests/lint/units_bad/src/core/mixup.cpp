// Fixture: deliberately wrong dimensional arithmetic. Adding a voltage to a
// current (and an inductance to a capacitance) must trip SSN-L011.
// ssn-units: v_noise=V, i_load=A, l_gnd=H, c_pad=F

namespace fixture {

double broken_sum() {
  const double v_noise = 0.3;
  const double i_load = 0.01;
  const double l_gnd = 5e-9;
  const double c_pad = 1e-12;
  const double bad = v_noise + i_load;
  const double worse = l_gnd + c_pad;
  return bad * worse;
}

}  // namespace fixture
