// Fixture: analysis code that manages children the sanctioned way — through
// the support-layer wrappers — plus the member-call and non-call shapes the
// SSN-L014 call-position check must not confuse with raw syscalls.

namespace support_fixture {
struct ChildProcess {
  long pid = -1;
  int fd = -1;
  void kill() {}  // member call named kill is not the syscall
};
bool spawn_child(ChildProcess& child);
bool wait_child(long pid, bool block);
void kill_child(long pid);
}  // namespace support_fixture

struct Waiter {
  void wait() {}
};

namespace fixture {

int run_helper() {
  support_fixture::ChildProcess child;
  if (!support_fixture::spawn_child(child)) return 1;
  child.kill();  // member call, quiet
  support_fixture::kill_child(child.pid);
  support_fixture::wait_child(child.pid, true);
  Waiter w;
  w.wait();  // member wait, quiet
  int fork = 0;  // identifier in non-call position, quiet
  return fork;
}

}  // namespace fixture
