// Fixture: the serve-layer supervisor is a sanctioned home for raw process
// syscalls (its stem starts with "supervisor"), so SSN-L014 stays quiet
// here even on direct fork/waitpid/kill calls.

using pid_t_fixture = int;

pid_t_fixture fork();
pid_t_fixture waitpid(pid_t_fixture pid, int* status, int flags);
int kill(pid_t_fixture pid, int sig);

namespace fixture {

pid_t_fixture spawn_worker() { return fork(); }

void reap_worker(pid_t_fixture pid) {
  int status = 0;
  waitpid(pid, &status, 0);
}

void kill_worker(pid_t_fixture pid) { kill(pid, 9); }

}  // namespace fixture
