// Monte Carlo variation analysis on the closed-form models, plus the
// failure-tolerant simulator-backed Monte Carlo.
#include "analysis/calibrate.hpp"
#include "analysis/design.hpp"
#include "analysis/montecarlo.hpp"
#include "numeric/stats.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ssnkit;
using analysis::monte_carlo_vmax;
using analysis::monte_carlo_vmax_sim;
using analysis::MonteCarloOptions;
using analysis::SimMonteCarloOptions;

core::SsnScenario nominal() {
  core::SsnScenario s;
  s.n_drivers = 8;
  s.inductance = 5e-9;
  s.capacitance = 1e-12;
  s.vdd = 1.8;
  s.slope = 1.8e10;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  return s;
}

TEST(Quantile, InterpolatesSorted) {
  const double xs[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(ssnkit::numeric::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ssnkit::numeric::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(ssnkit::numeric::quantile(xs, 0.5), 2.5);
  EXPECT_THROW(ssnkit::numeric::quantile(std::span<const double>{}, 0.5),
               std::invalid_argument);
  EXPECT_THROW(ssnkit::numeric::quantile(xs, 1.5), std::invalid_argument);
}

TEST(MonteCarlo, DistributionBracketsNominal) {
  const auto s = nominal();
  MonteCarloOptions opts;
  opts.samples = 500;
  const auto result = monte_carlo_vmax(s, opts);
  ASSERT_EQ(result.samples.size(), 500u);
  const double v_nom = analysis::predict_vmax(s);
  EXPECT_LT(result.min, v_nom);
  EXPECT_GT(result.max, v_nom);
  EXPECT_NEAR(result.mean, v_nom, 0.1 * v_nom);
  EXPECT_GT(result.stddev, 0.0);
  EXPECT_GE(result.p95, result.mean);
  EXPECT_GE(result.p99, result.p95);
  EXPECT_LE(result.p99, result.max);
}

TEST(MonteCarlo, Deterministic) {
  const auto a = monte_carlo_vmax(nominal());
  const auto b = monte_carlo_vmax(nominal());
  EXPECT_EQ(a.samples, b.samples);
  MonteCarloOptions other_seed;
  other_seed.seed = 999;
  const auto c = monte_carlo_vmax(nominal(), other_seed);
  EXPECT_NE(a.samples, c.samples);
  // Regression: an explicitly set seed reproduces bit-for-bit across fresh
  // options objects, not just the default-constructed path.
  MonteCarloOptions same_seed;
  same_seed.seed = 999;
  const auto d = monte_carlo_vmax(nominal(), same_seed);
  EXPECT_EQ(c.samples, d.samples);
  EXPECT_DOUBLE_EQ(c.p95, d.p95);
}

TEST(MonteCarlo, ZeroSigmaCollapses) {
  MonteCarloOptions opts;
  opts.samples = 10;
  opts.sigma_k = opts.sigma_lambda = opts.sigma_vx = 0.0;
  opts.sigma_l = opts.sigma_c = opts.sigma_slope = 0.0;
  const auto result = monte_carlo_vmax(nominal(), opts);
  EXPECT_DOUBLE_EQ(result.stddev, 0.0);
  EXPECT_DOUBLE_EQ(result.min, result.max);
  EXPECT_DOUBLE_EQ(result.region_flip_fraction, 0.0);
}

TEST(MonteCarlo, WiderSigmaWiderSpread) {
  MonteCarloOptions narrow;
  narrow.samples = 400;
  narrow.sigma_l = 0.02;
  MonteCarloOptions wide = narrow;
  wide.sigma_l = 0.20;
  const double s_narrow = monte_carlo_vmax(nominal(), narrow).stddev;
  const double s_wide = monte_carlo_vmax(nominal(), wide).stddev;
  EXPECT_GT(s_wide, s_narrow);
}

TEST(MonteCarlo, RegionFlipsDetectedNearBoundary) {
  // Put the nominal right at critical damping: variation flips the region
  // in roughly half of the samples.
  auto s = nominal();
  s.capacitance = s.critical_capacitance();
  MonteCarloOptions opts;
  opts.samples = 400;
  const auto result = monte_carlo_vmax(s, opts);
  EXPECT_GT(result.region_flip_fraction, 0.3);
  // Deep in the over-damped region, flips are rare.
  auto far = nominal();
  far.capacitance = far.critical_capacitance() * 0.05;
  EXPECT_LT(monte_carlo_vmax(far, opts).region_flip_fraction, 0.05);
}

TEST(MonteCarlo, LOnlyPathWorks) {
  auto s = nominal();
  s.capacitance = 0.0;
  const auto result = monte_carlo_vmax(s);
  EXPECT_GT(result.mean, 0.0);
  EXPECT_DOUBLE_EQ(result.region_flip_fraction, 0.0);
}

TEST(MonteCarlo, OptionValidation) {
  MonteCarloOptions opts;
  opts.samples = 1;
  EXPECT_THROW(monte_carlo_vmax(nominal(), opts), std::invalid_argument);
  opts = {};
  opts.sigma_k = 0.9;
  EXPECT_THROW(monte_carlo_vmax(nominal(), opts), std::invalid_argument);
}

// --- simulator-backed, failure-tolerant Monte Carlo --------------------------

const analysis::Calibration& cal() {
  static const analysis::Calibration c =
      analysis::calibrate(process::tech_180nm());
  return c;
}

TEST(SimMonteCarlo, SmallHealthyBatchIsDeterministic) {
  SimMonteCarloOptions opts;
  opts.samples = 3;
  const auto pkg = process::package_pga();
  const auto a = monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts);
  ASSERT_EQ(a.samples.size(), 3u);
  EXPECT_EQ(a.surviving, 3u);
  EXPECT_TRUE(a.summary.all_full_fidelity());
  EXPECT_GT(a.mean, 0.0);
  EXPECT_GE(a.max, a.min);
  for (const auto& s : a.samples) {
    EXPECT_EQ(s.fidelity, sim::Fidelity::kFullDevice);
    EXPECT_GT(s.v_max, 0.0);
    EXPECT_NE(s.l_factor, 0.0);
  }
  const auto b = monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].v_max, b.samples[i].v_max);
    EXPECT_DOUBLE_EQ(a.samples[i].l_factor, b.samples[i].l_factor);
  }
}

TEST(SimMonteCarlo, ForcedFailuresDegradeToAnalytic) {
  // A 1-step budget kills every simulation rung of every sample; with the
  // analytic fallback the batch still yields a full set of estimates.
  SimMonteCarloOptions opts;
  opts.samples = 3;
  opts.measure.transient.max_steps = 1;
  opts.recovery.try_tighten_damping = false;
  opts.recovery.try_gmin_recovery = false;
  opts.recovery.try_reduced_timestep = false;
  const auto pkg = process::package_pga();
  const auto result = monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts);
  EXPECT_EQ(result.surviving, 3u);
  EXPECT_EQ(result.summary.analytic, 3u);
  EXPECT_EQ(result.summary.by_error.at("step-budget-exhausted"), 3u);
  EXPECT_GT(result.mean, 0.0);
  for (const auto& s : result.samples)
    EXPECT_EQ(s.fidelity, sim::Fidelity::kAnalytic);
}

TEST(SimMonteCarlo, ForcedFailuresWithoutFallbackAreDropped) {
  SimMonteCarloOptions opts;
  opts.samples = 3;
  opts.analytic_fallback = false;
  opts.measure.transient.max_steps = 1;
  opts.recovery.enabled = false;
  const auto pkg = process::package_pga();
  const auto result = monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts);
  EXPECT_EQ(result.samples.size(), 3u);  // drawn factors are still reported
  EXPECT_EQ(result.surviving, 0u);
  EXPECT_EQ(result.summary.failed, 3u);
  EXPECT_DOUBLE_EQ(result.mean, 0.0);
  for (const auto& s : result.samples)
    EXPECT_EQ(s.fidelity, sim::Fidelity::kFailed);
}

TEST(SimMonteCarlo, OptionValidation) {
  const auto pkg = process::package_pga();
  SimMonteCarloOptions opts;
  opts.samples = 0;
  EXPECT_THROW(monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts),
               std::invalid_argument);
  opts = {};
  opts.sigma_l = 0.9;
  EXPECT_THROW(monte_carlo_vmax_sim(cal(), pkg, 2, 0.1e-9, true, opts),
               std::invalid_argument);
}

}  // namespace
