// Waveform container, analytic sources and comparison metrics.
#include "waveform/metrics.hpp"
#include "waveform/source_spec.hpp"
#include "waveform/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::waveform;

TEST(Waveform, ConstructionValidation) {
  EXPECT_NO_THROW(Waveform({0.0, 1.0}, {1.0, 2.0}));
  EXPECT_THROW(Waveform({0.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({1.0, 1.0}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({2.0, 1.0}, {0.0, 0.0}), std::invalid_argument);
}

TEST(Waveform, SampleInterpolatesAndClamps) {
  Waveform w({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(w.sample(0.5), 5.0);
  EXPECT_DOUBLE_EQ(w.sample(1.5), 5.0);
  EXPECT_DOUBLE_EQ(w.sample(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.sample(5.0), 0.0);
}

TEST(Waveform, AppendEnforcesOrder) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 2.0);
  EXPECT_THROW(w.append(0.5, 3.0), std::invalid_argument);
  EXPECT_THROW(w.append(1.0, 3.0), std::invalid_argument);
}

TEST(Waveform, MaximumAndWindowedMaximum) {
  Waveform w({0.0, 1.0, 2.0, 3.0}, {0.0, 4.0, 1.0, 9.0});
  EXPECT_DOUBLE_EQ(w.maximum().value, 9.0);
  EXPECT_DOUBLE_EQ(w.maximum().t, 3.0);
  const auto win = w.maximum_in(0.0, 2.0);
  EXPECT_DOUBLE_EQ(win.value, 4.0);
  EXPECT_DOUBLE_EQ(win.t, 1.0);
  // Window edges are interpolated.
  const auto frac = w.maximum_in(0.0, 0.5);
  EXPECT_DOUBLE_EQ(frac.value, 2.0);
}

TEST(Waveform, FromFunctionAndResample) {
  const auto w = Waveform::from_function([](double t) { return t * t; }, 0.0, 2.0,
                                         101);
  EXPECT_NEAR(w.sample(1.0), 1.0, 1e-3);
  const auto coarse = w.resampled(11);
  EXPECT_EQ(coarse.size(), 11u);
  EXPECT_NEAR(coarse.sample(2.0), 4.0, 1e-9);
}

TEST(Waveform, ArithmeticAndScaling) {
  Waveform a({0.0, 1.0}, {1.0, 3.0});
  Waveform b({0.0, 1.0}, {1.0, 1.0});
  const Waveform diff = a - b;
  EXPECT_DOUBLE_EQ(diff.sample(1.0), 2.0);
  const Waveform sum = a + b;
  EXPECT_DOUBLE_EQ(sum.sample(0.0), 2.0);
  EXPECT_DOUBLE_EQ(a.scaled(2.0).sample(1.0), 6.0);
  EXPECT_DOUBLE_EQ(a.shifted(-1.0).sample(0.0), 0.0);
}

TEST(Waveform, DerivativeAndIntegral) {
  const auto w = Waveform::from_function([](double t) { return 3.0 * t; }, 0.0,
                                         1.0, 51);
  const auto d = w.derivative();
  EXPECT_NEAR(d.sample(0.5), 3.0, 1e-9);
  const auto integral = w.integral();
  EXPECT_NEAR(integral.sample(1.0), 1.5, 1e-9);  // ∫3t dt = 1.5 at t=1
}

TEST(Waveform, WindowedExtractsInterior) {
  const auto w = Waveform::from_function([](double t) { return t; }, 0.0, 10.0, 101);
  const auto win = w.windowed(2.5, 7.5);
  EXPECT_DOUBLE_EQ(win.t_begin(), 2.5);
  EXPECT_DOUBLE_EQ(win.t_end(), 7.5);
  EXPECT_NEAR(win.sample(5.0), 5.0, 1e-12);
}

// --- sources ---------------------------------------------------------------

TEST(SourceSpec, RampShape) {
  const Ramp ramp{0.0, 1.8, 1e-9, 0.1e-9};
  EXPECT_DOUBLE_EQ(source_value(ramp, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(source_value(ramp, 1e-9), 0.0);
  EXPECT_NEAR(source_value(ramp, 1.05e-9), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(source_value(ramp, 2e-9), 1.8);
  EXPECT_NEAR(ramp.slope(), 1.8e10, 1e-3);
}

TEST(SourceSpec, RampBreakpoints) {
  const Ramp ramp{0.0, 1.0, 1e-9, 2e-9};
  const auto bps = source_breakpoints(ramp, 0.0, 10e-9);
  ASSERT_EQ(bps.size(), 2u);
  EXPECT_DOUBLE_EQ(bps[0], 1e-9);
  EXPECT_DOUBLE_EQ(bps[1], 3e-9);
}

TEST(SourceSpec, PulseIsPeriodic) {
  const Pulse p{0.0, 1.0, 0.0, 1e-10, 1e-10, 1e-9, 3e-9};
  EXPECT_NEAR(source_value(p, 0.5e-9), 1.0, 1e-12);
  EXPECT_NEAR(source_value(p, 2e-9), 0.0, 1e-12);
  EXPECT_NEAR(source_value(p, 3.5e-9), 1.0, 1e-12);  // second period
}

TEST(SourceSpec, PwlInterpolates) {
  Pwl pwl;
  pwl.points = {{0.0, 0.0}, {1.0, 2.0}, {3.0, 0.0}};
  EXPECT_DOUBLE_EQ(source_value(pwl, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(source_value(pwl, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(source_value(pwl, 9.0), 0.0);
}

TEST(SourceSpec, SineDelayed) {
  const Sine s{0.5, 1.0, 1e9, 1e-9};
  EXPECT_DOUBLE_EQ(source_value(s, 0.0), 0.5);
  EXPECT_NEAR(source_value(s, 1e-9 + 0.25e-9), 1.5, 1e-9);
}

TEST(SourceSpec, ValidationCatchesBadShapes) {
  EXPECT_THROW(validate(Ramp{0.0, 1.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate(Pulse{0.0, 1.0, 0.0, 0.0, 1e-12, 1e-9, 2e-9}),
               std::invalid_argument);
  Pwl bad;
  bad.points = {{1.0, 0.0}, {0.5, 1.0}};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  EXPECT_THROW(validate(Sine{0.0, 1.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_NO_THROW(validate(Dc{1.0}));
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, Crossings) {
  const auto w = Waveform::from_function([](double t) { return std::sin(t); }, 0.0,
                                         6.0, 601);
  const auto up = first_rising_crossing(w, 0.5);
  ASSERT_TRUE(up.has_value());
  EXPECT_NEAR(*up, std::asin(0.5), 1e-3);
  const auto down = first_falling_crossing(w, 0.5);
  ASSERT_TRUE(down.has_value());
  EXPECT_NEAR(*down, M_PI - std::asin(0.5), 1e-3);
  EXPECT_FALSE(first_rising_crossing(w, 2.0).has_value());
}

TEST(Metrics, LocalMaximaOfDampedSine) {
  const auto w = Waveform::from_function(
      [](double t) { return std::exp(-0.2 * t) * std::sin(t); }, 0.0, 15.0, 3001);
  const auto peaks = local_maxima(w);
  ASSERT_GE(peaks.size(), 2u);
  // Peaks of e^{-at} sin t sit at t = atan(1/a) + 2k*pi, spaced by 2*pi.
  EXPECT_NEAR(peaks[1].t - peaks[0].t, 2.0 * M_PI, 1e-2);
  EXPECT_GT(peaks[0].value, peaks[1].value);
}

TEST(Metrics, CompareIdenticalIsZero) {
  const auto w = Waveform::from_function([](double t) { return t; }, 0.0, 1.0, 21);
  const auto err = compare(w, w);
  EXPECT_DOUBLE_EQ(err.max_abs, 0.0);
  EXPECT_DOUBLE_EQ(err.peak_rel, 0.0);
}

TEST(Metrics, CompareReportsPeakError) {
  const auto ref = Waveform::from_function([](double t) { return std::sin(t); },
                                           0.0, M_PI, 201);
  const auto model = ref.scaled(1.1);
  const auto err = compare(model, ref);
  EXPECT_NEAR(err.peak_rel, 0.1, 1e-6);
  EXPECT_NEAR(err.norm_max_abs, 0.1, 1e-6);
}

TEST(Metrics, PeakToPeak) {
  Waveform w({0.0, 1.0, 2.0}, {-1.0, 3.0, 0.0});
  EXPECT_DOUBLE_EQ(peak_to_peak(w), 4.0);
}

}  // namespace
