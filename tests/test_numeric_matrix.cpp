// Dense linear algebra: Vector/Matrix arithmetic, LU, QR, least squares.
#include "numeric/least_squares.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace {

using ssnkit::numeric::LuFactorization;
using ssnkit::numeric::Matrix;
using ssnkit::numeric::QrFactorization;
using ssnkit::numeric::solve_least_squares;
using ssnkit::numeric::solve_linear;
using ssnkit::numeric::Vector;

TEST(Vector, BasicArithmetic) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  const Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 5.0);
  EXPECT_DOUBLE_EQ(sum[2], 9.0);
  const Vector diff = b - a;
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  const Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[2], 6.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 3.0);
  EXPECT_NEAR(a.norm2(), std::sqrt(14.0), 1e-15);
}

TEST(Vector, SizeMismatchThrows) {
  Vector a{1.0, 2.0};
  Vector b{1.0, 2.0, 3.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.dot(b), std::invalid_argument);
}

TEST(Vector, BoundsCheckedAccess) {
  Vector a{1.0};
  EXPECT_THROW(a.at(1), std::out_of_range);
  EXPECT_DOUBLE_EQ(a.at(0), 1.0);
}

TEST(Matrix, InitializerAndTranspose) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 2u);
  const Matrix t = m.transposed();
  EXPECT_DOUBLE_EQ(t(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, MatVecAndMatMat) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Vector x{1.0, 1.0};
  const Vector y = m * x;
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const Matrix sq = m * m;
  EXPECT_DOUBLE_EQ(sq(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sq(1, 1), 22.0);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix id = Matrix::identity(3);
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 10.0}};
  const Matrix prod = id * m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), m(r, c));
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = solve_linear(a, Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, Determinant) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuFactorization(a).determinant(), 6.0, 1e-12);
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};  // permutation: det = -1
  EXPECT_NEAR(LuFactorization(b).determinant(), -1.0, 1e-12);
}

TEST(Lu, SingularDetected) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuFactorization lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_THROW(lu.solve(Vector{1.0, 1.0}), std::runtime_error);
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
}

TEST(Lu, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, std::invalid_argument);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solve_linear(a, Vector{2.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + std::size_t(trial % 12);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
      a(r, r) += 3.0;  // keep it comfortably nonsingular
    }
    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = dist(rng);
    const Vector b = a * x_true;
    const Vector x = solve_linear(a, b);
    EXPECT_NEAR((x - x_true).norm_inf(), 0.0, 1e-10);
  }
}

TEST(Qr, ExactSquareSolve) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  QrFactorization qr(a);
  EXPECT_FALSE(qr.rank_deficient());
  const Vector x = qr.solve(Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
  EXPECT_NEAR(qr.residual_norm(Vector{3.0, 5.0}), 0.0, 1e-12);
}

TEST(Qr, OverdeterminedLeastSquares) {
  // Fit y = 2 + 3x exactly through noisy-free points.
  Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  Vector b{2.0, 5.0, 8.0, 11.0};
  const auto fit = solve_least_squares(a, b);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-12);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-12);
  EXPECT_NEAR(fit.residual_norm, 0.0, 1e-11);
}

TEST(Qr, ResidualOfInconsistentSystem) {
  // x must split the difference between b = 0 and b = 2: residual sqrt(2).
  Matrix a{{1.0}, {1.0}};
  Vector b{0.0, 2.0};
  const auto fit = solve_least_squares(a, b);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-12);
  EXPECT_NEAR(fit.residual_norm, std::sqrt(2.0), 1e-12);
}

TEST(Qr, RankDeficientDetected) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  QrFactorization qr(a);
  EXPECT_TRUE(qr.rank_deficient());
  EXPECT_THROW(qr.solve(Vector{1.0, 1.0, 1.0}), std::runtime_error);
}

TEST(LeastSquares, WeightsChangeTheAnswer) {
  // Two contradictory observations of a constant; weights pick the winner.
  Matrix a{{1.0}, {1.0}};
  Vector b{0.0, 1.0};
  const auto heavy_second = solve_least_squares(a, b, Vector{1.0, 9.0});
  EXPECT_NEAR(heavy_second.coefficients[0], 0.9, 1e-12);
  const auto heavy_first = solve_least_squares(a, b, Vector{9.0, 1.0});
  EXPECT_NEAR(heavy_first.coefficients[0], 0.1, 1e-12);
}

TEST(LeastSquares, NegativeWeightThrows) {
  Matrix a{{1.0}, {1.0}};
  Vector b{0.0, 1.0};
  EXPECT_THROW(solve_least_squares(a, b, Vector{1.0, -1.0}), std::invalid_argument);
}

}  // namespace
