// Sensitivity (elasticity) analysis of the closed-form V_max.
#include "analysis/design.hpp"
#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit;
using analysis::l_only_sensitivities;
using analysis::lc_sensitivities;

core::SsnScenario base() {
  core::SsnScenario s;
  s.n_drivers = 8;
  s.inductance = 5e-9;
  s.capacitance = 0.0;
  s.vdd = 1.8;
  s.slope = 1.8e10;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  return s;
}

TEST(LOnlySensitivity, MatchesFiniteDifference) {
  const auto s = base();
  const auto sens = l_only_sensitivities(s);
  // Check the analytic elasticities against direct finite differences.
  const auto fd = [&](auto mutate) {
    const double h = 1e-5;
    core::SsnScenario up = s, dn = s;
    mutate(up, 1.0 + h);
    mutate(dn, 1.0 - h);
    return (analysis::predict_vmax(up) - analysis::predict_vmax(dn)) /
           (2.0 * h * analysis::predict_vmax(s));
  };
  EXPECT_NEAR(sens.wrt_inductance,
              fd([](core::SsnScenario& x, double f) { x.inductance *= f; }),
              1e-5);
  EXPECT_NEAR(sens.wrt_slope,
              fd([](core::SsnScenario& x, double f) { x.slope *= f; }), 1e-5);
  EXPECT_NEAR(sens.wrt_k,
              fd([](core::SsnScenario& x, double f) { x.device.k *= f; }), 1e-5);
  EXPECT_NEAR(sens.wrt_lambda,
              fd([](core::SsnScenario& x, double f) { x.device.lambda *= f; }),
              1e-5);
  EXPECT_NEAR(sens.wrt_vx,
              fd([](core::SsnScenario& x, double f) { x.device.vx *= f; }), 1e-4);
}

TEST(LOnlySensitivity, BetaEquivalenceOfElasticities) {
  // Eqn 9: N, L, S, K are interchangeable, so their elasticities coincide.
  const auto sens = l_only_sensitivities(base());
  EXPECT_DOUBLE_EQ(sens.wrt_drivers, sens.wrt_inductance);
  EXPECT_DOUBLE_EQ(sens.wrt_drivers, sens.wrt_slope);
  EXPECT_DOUBLE_EQ(sens.wrt_drivers, sens.wrt_k);
}

TEST(LOnlySensitivity, SignsAndRanges) {
  const auto sens = l_only_sensitivities(base());
  EXPECT_GT(sens.wrt_inductance, 0.0);  // more L, more noise
  EXPECT_LT(sens.wrt_inductance, 1.0);  // sub-linear (saturation)
  EXPECT_LT(sens.wrt_lambda, 0.0);      // stronger feedback, less noise
  EXPECT_LT(sens.wrt_vx, 0.0);          // later turn-on, less noise
  EXPECT_DOUBLE_EQ(sens.wrt_capacitance, 0.0);
}

TEST(LOnlySensitivity, SaturationLimits) {
  // Tiny beta: V ~ A, elasticity -> 1. Huge beta: V saturates, -> 0.
  auto weak = base();
  weak.inductance = 1e-12;
  EXPECT_NEAR(l_only_sensitivities(weak).wrt_inductance, 1.0, 0.05);
  auto strong = base();
  strong.inductance = 1e-6;
  EXPECT_NEAR(l_only_sensitivities(strong).wrt_inductance, 0.0, 0.05);
}

TEST(LcSensitivity, OverdampedNearLOnly) {
  // Far into the over-damped region the capacitance barely matters and the
  // other elasticities approach the L-only values.
  auto s = base();
  s.capacitance = s.critical_capacitance() * 0.02;
  const auto lc = lc_sensitivities(s);
  const auto lo = l_only_sensitivities(s);
  EXPECT_NEAR(lc.wrt_inductance, lo.wrt_inductance, 0.05);
  EXPECT_NEAR(lc.wrt_slope, lo.wrt_slope, 0.05);
  EXPECT_LT(std::fabs(lc.wrt_capacitance), 0.05);
}

TEST(LcSensitivity, CapacitanceMattersUnderdamped) {
  auto s = base();
  s.capacitance = s.critical_capacitance() * 6.0;
  const auto lc = lc_sensitivities(s);
  // In the under-damped boundary regime, more C strongly reduces the
  // within-ramp maximum.
  EXPECT_LT(lc.wrt_capacitance, -0.2);
}

TEST(LcSensitivity, Validation) {
  EXPECT_THROW(lc_sensitivities(base()), std::invalid_argument);
  auto s = base();
  s.capacitance = 1e-12;
  EXPECT_THROW(lc_sensitivities(s, 0.5), std::invalid_argument);
}

}  // namespace
