// Steady-state allocation regression for the transient hot path. The
// engine's SolverWorkspace promises zero heap allocations per accepted
// step once the stamp plan, factorization and history buffers exist —
// doubling the number of steps must not meaningfully change the total
// allocation count (growth comes only from the recorded waveform, which
// both runs pre-reserve). A counting global operator new catches any
// per-step Matrix/Vector construction someone reintroduces.
//
// This file overrides the global allocator, so it must stay its own test
// binary (see tests/CMakeLists.txt) and must not be linked with sanitizer
// interceptors' replacement allocators in mind — under ASan the counts
// still move in lockstep, which is all the assertion needs.
#include "circuit/testbench.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_allocs{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ssnkit;

/// Allocations of a fixed-step transient with `steps` accepted points.
std::size_t count_transient_allocs(std::size_t steps) {
  circuit::SsnBenchSpec spec;
  spec.n_drivers = 4;
  auto bench = circuit::make_ssn_testbench(spec);

  sim::TransientOptions opts;
  opts.t_stop = 0.5e-9;
  opts.adaptive = false;  // fixed step isolates the per-step cost
  opts.dt_initial = opts.t_stop / double(steps);
  opts.dt_max = opts.dt_initial;

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const auto run = sim::run_transient_ex(bench.circuit, opts);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_TRUE(run.ok());
  EXPECT_GE(run.result.point_count(), steps);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(AllocRegression, TransientStepsDoNotAllocate) {
  const std::size_t small = 200;
  const std::size_t large = 400;

  // Warm-up run absorbs one-time lazy initialization (gtest, locale,
  // element caches) so the two measured runs see identical fixed costs.
  (void)count_transient_allocs(small);

  const std::size_t a_small = count_transient_allocs(small);
  const std::size_t a_large = count_transient_allocs(large);

  // Everything per-run (workspace, pattern, factor, reserves) is identical;
  // the extra `large - small` accepted steps must contribute nothing. The
  // slack absorbs waveform-recording growth if a reserve is ever loosened,
  // while still failing loudly on a per-step allocation (which would add
  // hundreds).
  const std::size_t delta = a_large > a_small ? a_large - a_small : 0;
  EXPECT_LE(delta, 32u) << "per-run allocations: " << a_small << " -> "
                        << a_large << " when doubling accepted steps";
}

TEST(AllocRegression, SecondRunCostsNoMoreThanFirst) {
  // The workspace is per-call, so runs are independent; this guards against
  // accidental global-state growth (e.g. an append-only cache).
  const std::size_t first = count_transient_allocs(200);
  const std::size_t second = count_transient_allocs(200);
  EXPECT_LE(second, first + 8);
}

}  // namespace
