// The job lifecycle layer: RunContext semantics, the signal watcher, the
// cancellation-aware batch runner, engine-level stop polling, the checkpoint
// journal, and — the layer's central promise — that a batch interrupted at
// an arbitrary point and resumed from its journal produces bit-identical
// results to an uninterrupted run, at any thread count.
#include "analysis/montecarlo.hpp"
#include "analysis/resilience.hpp"
#include "analysis/sweeps.hpp"
#include "cli/commands.hpp"
#include "support/atomic_file.hpp"
#include "support/crashclean.hpp"
#include "io/csv.hpp"
#include "support/faultinject.hpp"
#include "support/journal.hpp"
#include "support/parallel.hpp"
#include "support/runcontext.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace ssnkit;
using support::RunContext;
using support::StopReason;

// --- RunContext -------------------------------------------------------------

TEST(Lifecycle, RunContextDefaultsToNoStop) {
  RunContext ctx;
  EXPECT_FALSE(ctx.cancel_requested());
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_EQ(ctx.stop_requested(), StopReason::kNone);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kNone);
  EXPECT_TRUE(ctx.try_start_item());  // unlimited budget by default
}

TEST(Lifecycle, CancelIsStickyAndWinsOverDeadline) {
  RunContext ctx;
  ctx.set_timeout(-1.0);  // already expired
  EXPECT_EQ(ctx.stop_requested(), StopReason::kDeadlineExpired);
  ctx.request_cancel();
  EXPECT_EQ(ctx.stop_requested(), StopReason::kCancelled);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
  EXPECT_FALSE(ctx.try_start_item());
}

TEST(Lifecycle, DeadlineExpiryIsObservedByPolls) {
  RunContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() +
                   std::chrono::hours(24));
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_EQ(ctx.stop_requested(), StopReason::kNone);
  ctx.set_timeout(0.0);
  EXPECT_EQ(ctx.stop_requested(), StopReason::kDeadlineExpired);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadlineExpired);
}

TEST(Lifecycle, ItemBudgetStopsNewItemsButNotThePoll) {
  RunContext ctx;
  ctx.set_item_budget(2);
  EXPECT_TRUE(ctx.try_start_item());
  EXPECT_TRUE(ctx.try_start_item());
  EXPECT_FALSE(ctx.try_start_item());
  // Budget exhaustion is a driver-level verdict, not an engine stop: an
  // in-flight transient must be allowed to finish.
  EXPECT_EQ(ctx.stop_requested(), StopReason::kNone);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kItemBudget);
}

TEST(Lifecycle, NegativeBudgetMeansUnlimited) {
  RunContext ctx;
  ctx.set_item_budget(-1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ctx.try_start_item());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kNone);
}

TEST(Lifecycle, TryStartItemIsThreadSafeExactClaimCount) {
  RunContext ctx;
  ctx.set_item_budget(50);
  std::atomic<int> claimed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < 100; ++i)
        if (ctx.try_start_item()) claimed.fetch_add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(claimed.load(), 50);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kItemBudget);
}

// --- ScopedSignalCancel -----------------------------------------------------

TEST(Lifecycle, SignalWatcherTripsTokenAndRecordsSignal) {
  RunContext ctx;
  {
    support::ScopedSignalCancel watcher(ctx);
    EXPECT_EQ(support::ScopedSignalCancel::last_signal(), 0);
    std::raise(SIGTERM);
    EXPECT_TRUE(ctx.cancel_requested());
    EXPECT_EQ(support::ScopedSignalCancel::last_signal(), SIGTERM);
  }
  // After the watcher is gone the default disposition is restored; a second
  // context is not affected by the first one's trip.
  RunContext ctx2;
  support::ScopedSignalCancel watcher2(ctx2);
  EXPECT_EQ(support::ScopedSignalCancel::last_signal(), 0);
  EXPECT_FALSE(ctx2.cancel_requested());
}

// --- parallel runner --------------------------------------------------------

TEST(Lifecycle, ParallelForIndexReportsCompletionWithoutContext) {
  const auto status = support::parallel_for_index(4, 32, [](std::size_t) {});
  EXPECT_EQ(status.completed, 32u);
  EXPECT_FALSE(status.stopped);
}

TEST(Lifecycle, SerialRunnerDrainsOnCancelMidBatch) {
  RunContext ctx;
  std::atomic<std::size_t> ran{0};
  const auto status = support::parallel_for_index(
      1, 10,
      [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 3) ctx.request_cancel();
      },
      &ctx);
  // Items 0..3 ran; the poll before item 4 saw the trip.
  EXPECT_EQ(ran.load(), 4u);
  EXPECT_EQ(status.completed, 4u);
  EXPECT_TRUE(status.stopped);
}

TEST(Lifecycle, PoolRunnerDrainsOnCancel) {
  RunContext ctx;
  std::atomic<std::size_t> ran{0};
  const auto status = support::parallel_for_index(
      4, 64,
      [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 0) ctx.request_cancel();
      },
      &ctx);
  EXPECT_TRUE(status.stopped);
  EXPECT_EQ(status.completed, ran.load());
  EXPECT_LT(status.completed, 64u);  // the drain skipped unclaimed items
}

TEST(Lifecycle, ExceptionOutranksCancellation) {
  RunContext ctx;
  EXPECT_THROW(
      support::parallel_for_index(
          2, 16,
          [&](std::size_t i) {
            if (i == 1) {
              ctx.request_cancel();
              throw std::logic_error("body failure");
            }
          },
          &ctx),
      std::logic_error);
}

TEST(Lifecycle, PreCancelledContextRunsNothing) {
  RunContext ctx;
  ctx.request_cancel();
  std::atomic<std::size_t> ran{0};
  const auto status = support::parallel_for_index(
      4, 16, [&](std::size_t) { ran.fetch_add(1); }, &ctx);
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_EQ(status.completed, 0u);
  EXPECT_TRUE(status.stopped);
}

// --- engine-level stop polling ----------------------------------------------

circuit::Circuit rc_circuit() {
  circuit::Circuit ckt;
  const circuit::NodeId in = ckt.node("in");
  const circuit::NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, circuit::kGround,
                  waveform::Pwl{{{0.0, 0.0}, {1e-12, 1.0}}});
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_capacitor("C1", out, circuit::kGround, 1e-12);
  return ckt;
}

TEST(Lifecycle, EngineStopsWithTypedCancelledErrorAndPartialWaveform) {
  circuit::Circuit ckt = rc_circuit();
  RunContext ctx;
  ctx.request_cancel();
  sim::TransientOptions opts;
  opts.t_stop = 4e-9;
  opts.run_ctx = &ctx;
  const sim::TransientRun run = sim::run_transient_ex(ckt, opts);
  ASSERT_TRUE(run.error.has_value());
  EXPECT_EQ(run.error->kind(), support::SolverErrorKind::kCancelled);
  EXPECT_FALSE(run.error->retryable());
  EXPECT_TRUE(support::is_stop_kind(run.error->kind()));
}

TEST(Lifecycle, EngineStopsOnExpiredDeadline) {
  circuit::Circuit ckt = rc_circuit();
  RunContext ctx;
  ctx.set_timeout(0.0);
  sim::TransientOptions opts;
  opts.t_stop = 4e-9;
  opts.run_ctx = &ctx;
  const sim::TransientRun run = sim::run_transient_ex(ckt, opts);
  ASSERT_TRUE(run.error.has_value());
  EXPECT_EQ(run.error->kind(), support::SolverErrorKind::kDeadlineExpired);
}

TEST(Lifecycle, EngineWithoutContextIsUnaffected) {
  circuit::Circuit ckt = rc_circuit();
  sim::TransientOptions opts;
  opts.t_stop = 4e-9;
  const sim::TransientRun run = sim::run_transient_ex(ckt, opts);
  EXPECT_FALSE(run.error.has_value());
  EXPECT_GT(run.result.point_count(), 0u);
}

TEST(Lifecycle, StepBudgetExhaustionKeepsPartialWaveform) {
  circuit::Circuit ckt = rc_circuit();
  sim::TransientOptions opts;
  opts.t_stop = 4e-9;
  opts.adaptive = false;
  opts.dt_initial = 1e-12;
  opts.max_steps = 5;
  const sim::TransientRun run = sim::run_transient_ex(ckt, opts);
  ASSERT_TRUE(run.error.has_value());
  EXPECT_EQ(run.error->kind(), support::SolverErrorKind::kStepBudgetExhausted);
  // The accepted prefix is preserved — a partial result, not a truncation.
  EXPECT_GT(run.result.point_count(), 0u);
  EXPECT_LT(run.result.times().back(), opts.t_stop);
}

TEST(Lifecycle, StoppedSampleIsNotDegradedToAnalytic) {
  // An interrupted sample must surface as failed/not-run, never silently
  // fall back to the closed forms: the resume contract needs it re-run.
  circuit::SsnBenchSpec spec;
  spec.n_drivers = 2;
  RunContext ctx;
  ctx.request_cancel();
  analysis::MeasureOptions mopts;
  mopts.transient.run_ctx = &ctx;
  core::SsnScenario scenario;
  scenario.n_drivers = 2;
  scenario.inductance = 5e-9;
  scenario.vdd = 1.8;
  scenario.slope = 1.8e10;
  scenario.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  const auto rm = analysis::measure_ssn_resilient(spec, mopts, {}, &scenario);
  EXPECT_EQ(rm.fidelity, sim::Fidelity::kFailed);
  ASSERT_TRUE(rm.error.has_value());
  EXPECT_EQ(rm.error->kind(), support::SolverErrorKind::kCancelled);
}

// --- journal primitives -----------------------------------------------------

TEST(Lifecycle, DoubleBitsRoundTripIsExact) {
  for (const double v : {0.0, -0.0, 1.0, -1.5, 0.1, 1e-300, 1.8e308}) {
    EXPECT_EQ(support::double_bits(support::bits_double(
                  support::double_bits(v))),
              support::double_bits(v));
  }
  const double nan = std::nan("");
  EXPECT_TRUE(std::isnan(support::bits_double(support::double_bits(nan))));
  // -0.0 and 0.0 have different bit patterns; the journal preserves that.
  EXPECT_NE(support::double_bits(-0.0), support::double_bits(0.0));
}

TEST(Lifecycle, HexU64RoundTripAndStrictParse) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{0xdeadbeef},
        std::uint64_t{0xffffffffffffffffULL}}) {
    const std::string h = support::hex_u64(v);
    EXPECT_EQ(h.size(), 16u);
    std::uint64_t back = 1;
    ASSERT_TRUE(support::parse_hex_u64(h, back));
    EXPECT_EQ(back, v);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(support::parse_hex_u64("", out));
  EXPECT_FALSE(support::parse_hex_u64("123", out));              // short
  EXPECT_FALSE(support::parse_hex_u64("00000000000000zz", out)); // non-hex
  EXPECT_FALSE(support::parse_hex_u64(" 000000000000000", out)); // space
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(Lifecycle, JournalRecordLoadRoundTrip) {
  const std::string path = temp_path("journal_roundtrip.txt");
  std::remove(path.c_str());
  {
    support::BatchJournal j(path, "mc-sim", 0xabcdef0123456789ULL, 8);
    j.record(3, {2, support::double_bits(0.25), -1});
    j.record(0, {0, support::double_bits(-0.0), 4});
    EXPECT_EQ(j.size(), 2u);
  }
  const auto loaded = support::BatchJournal::load(path);
  EXPECT_EQ(loaded.header.kind, "mc-sim");
  EXPECT_EQ(loaded.header.config_hash, 0xabcdef0123456789ULL);
  EXPECT_EQ(loaded.header.total, 8u);
  ASSERT_EQ(loaded.items.size(), 2u);
  EXPECT_EQ(loaded.items.at(3).fidelity, 2);
  EXPECT_EQ(loaded.items.at(3).v_bits, support::double_bits(0.25));
  EXPECT_EQ(loaded.items.at(3).error_kind, -1);
  EXPECT_EQ(loaded.items.at(0).v_bits, support::double_bits(-0.0));
  EXPECT_EQ(loaded.items.at(0).error_kind, 4);
  support::BatchJournal::validate_against(loaded, "mc-sim",
                                          0xabcdef0123456789ULL, 8, path);
  std::remove(path.c_str());
}

TEST(Lifecycle, JournalLoadRejectsMissingAndMalformed) {
  using support::BatchJournal;
  using support::JournalError;
  try {
    BatchJournal::load(temp_path("no_such_journal.txt"));
    FAIL() << "expected JournalError";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.kind(), JournalError::Kind::kOpenFailed);
  }
  const std::string path = temp_path("bad_journal.txt");
  for (const char* body : {
           "not a journal\n",
           "ssnkit-journal v2\nkind mc-sim\nconfig 0000000000000000\ntotal 1\n",
           "ssnkit-journal v1\nkind mc-sim\nconfig zz\ntotal 1\n",
           "ssnkit-journal v1\nkind mc-sim\nconfig 0000000000000000\n"
           "total 1\nitem 0 -2 0000000000000000 -1\n",  // negative fidelity
           "ssnkit-journal v1\nkind mc-sim\nconfig 0000000000000000\n"
           "total 1\nitem 5 0 0000000000000000 -1\n",  // index >= total
       }) {
    support::write_file_atomic(path, body);
    try {
      BatchJournal::load(path);
      FAIL() << "expected JournalError for: " << body;
    } catch (const JournalError& e) {
      EXPECT_EQ(e.kind(), JournalError::Kind::kBadFormat) << body;
    }
  }
  std::remove(path.c_str());
}

TEST(Lifecycle, JournalValidateRejectsOtherJobs) {
  using support::BatchJournal;
  using support::JournalError;
  const std::string path = temp_path("mismatch_journal.txt");
  std::remove(path.c_str());
  { BatchJournal j(path, "mc-sim", 7, 4); j.record(0, {0, 0, -1}); }
  const auto loaded = BatchJournal::load(path);
  const auto expect_mismatch = [&](const std::string& kind,
                                   std::uint64_t hash, std::size_t total) {
    try {
      BatchJournal::validate_against(loaded, kind, hash, total, path);
      FAIL() << "expected kMismatch";
    } catch (const JournalError& e) {
      EXPECT_EQ(e.kind(), JournalError::Kind::kMismatch);
    }
  };
  expect_mismatch("sweep-n", 7, 4);  // kind differs
  expect_mismatch("mc-sim", 8, 4);   // config differs
  expect_mismatch("mc-sim", 7, 5);   // total differs
  std::remove(path.c_str());
}

TEST(Lifecycle, DriverRejectsJournalWithOutOfRangeFidelity) {
  // The support-layer loader is sim-agnostic (fidelity is just a
  // non-negative int there); the driver's decode enforces the enum range.
  const std::string path = temp_path("oor_fidelity_journal.txt");
  support::write_file_atomic(
      path,
      "ssnkit-journal v1\nkind mc-sim\nconfig 0000000000000000\n"
      "total 2\nitem 0 99 0000000000000000 -1\n");
  const auto loaded = support::BatchJournal::load(path);
  const auto cal = analysis::calibrate(process::tech_180nm());
  analysis::SimMonteCarloOptions opts;
  opts.samples = 2;
  opts.resume = &loaded.items;
  EXPECT_THROW(analysis::monte_carlo_vmax_sim(cal, process::package_pga(), 4,
                                              0.1e-9, true, opts),
               std::invalid_argument);
  std::remove(path.c_str());
}

// --- write_file_atomic ------------------------------------------------------

TEST(Lifecycle, AtomicWriteReplacesContentCompletely) {
  const std::string path = temp_path("atomic_write.txt");
  support::write_file_atomic(path, "first version\n");
  support::write_file_atomic(path, "second\n");
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "second\n");
  std::remove(path.c_str());
}

TEST(Lifecycle, AtomicWriteFailureLeavesNoTemporary) {
  EXPECT_THROW(support::write_file_atomic("/no/such/dir/x.txt", "data"),
               support::IoError);
}

// --- interrupted + resumed Monte Carlo is bit-identical ---------------------

analysis::SimMonteCarloOptions mc_base_options() {
  analysis::SimMonteCarloOptions o;
  o.samples = 6;
  o.seed = 777;
  return o;
}

void expect_outcomes_identical(const analysis::SimMonteCarloResult& a,
                               const analysis::SimMonteCarloResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].index, b.samples[i].index);
    EXPECT_EQ(a.samples[i].l_factor, b.samples[i].l_factor);
    EXPECT_EQ(a.samples[i].c_factor, b.samples[i].c_factor);
    EXPECT_EQ(a.samples[i].rise_factor, b.samples[i].rise_factor);
    EXPECT_EQ(a.samples[i].width_factor, b.samples[i].width_factor);
    EXPECT_EQ(a.samples[i].v_max, b.samples[i].v_max) << "sample " << i;
    EXPECT_EQ(a.samples[i].fidelity, b.samples[i].fidelity);
    EXPECT_EQ(a.samples[i].completed, b.samples[i].completed);
  }
  EXPECT_EQ(a.surviving, b.surviving);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.summary.total, b.summary.total);
  EXPECT_EQ(a.summary.by_fidelity, b.summary.by_fidelity);
  EXPECT_EQ(a.summary.by_error, b.summary.by_error);
  EXPECT_EQ(a.summary.notes, b.summary.notes);
  EXPECT_EQ(a.summary.not_run, b.summary.not_run);
  EXPECT_EQ(a.summary.to_string(), b.summary.to_string());
}

TEST(Resume, InterruptedMonteCarloResumesBitIdenticalAtAnyThreadCount) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  const auto pkg = process::package_pga();
  const auto opts = mc_base_options();

  // The uninterrupted reference, serial.
  const auto clean =
      analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, opts);
  ASSERT_EQ(clean.completed, std::size_t(opts.samples));
  ASSERT_EQ(clean.stop, StopReason::kNone);

  std::mt19937 rng(20260806u);
  for (const int threads : {1, 4, 8}) {
    // Interrupt at a random cut: budget of k samples, journal everything.
    const int k = 1 + int(rng() % unsigned(opts.samples - 1));
    const std::string path = temp_path(
        "resume_t" + std::to_string(threads) + ".txt");
    std::remove(path.c_str());

    auto part_opts = opts;
    part_opts.threads = threads;
    RunContext budget_ctx;
    budget_ctx.set_item_budget(k);
    part_opts.run_ctx = &budget_ctx;
    support::BatchJournal journal(path, "mc-sim", 42, std::size_t(opts.samples));
    part_opts.journal = &journal;
    const auto partial =
        analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, part_opts);
    ASSERT_EQ(partial.completed, std::size_t(k)) << "threads " << threads;
    ASSERT_EQ(partial.stop, StopReason::kItemBudget);
    ASSERT_EQ(partial.summary.not_run, std::size_t(opts.samples - k));

    // Resume: load the journal, restore its items, run the rest.
    const auto loaded = support::BatchJournal::load(path);
    support::BatchJournal::validate_against(loaded, "mc-sim", 42,
                                            std::size_t(opts.samples), path);
    ASSERT_EQ(loaded.items.size(), std::size_t(k));
    auto resume_opts = opts;
    resume_opts.threads = threads;
    const std::string path2 = path + ".resumed";
    std::remove(path2.c_str());
    support::BatchJournal journal2(path2, "mc-sim", 42,
                                   std::size_t(opts.samples));
    resume_opts.journal = &journal2;
    resume_opts.resume = &loaded.items;
    const auto resumed =
        analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, resume_opts);

    ASSERT_EQ(resumed.stop, StopReason::kNone) << "threads " << threads;
    EXPECT_EQ(resumed.resumed, std::size_t(k));
    expect_outcomes_identical(clean, resumed);
    // The completed journal must equal a clean run's journal: same records
    // for every sample.
    const auto final_items = support::BatchJournal::load(path2).items;
    EXPECT_EQ(final_items.size(), std::size_t(opts.samples));
    std::remove(path.c_str());
    std::remove(path2.c_str());
  }
}

TEST(Resume, MidFlightInterruptDiscardsPartialSamplesForDeterminism) {
  // Cancel *during* sample k's transient (not between samples): the
  // interrupted sample must come back not-run and unjournaled, so a resume
  // re-runs it and still matches the clean run bit for bit.
  const auto cal = analysis::calibrate(process::tech_180nm());
  const auto pkg = process::package_pga();
  auto opts = mc_base_options();
  opts.samples = 4;

  const auto clean =
      analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, opts);

  RunContext ctx;
  auto part_opts = opts;
  part_opts.run_ctx = &ctx;
  // Trip the token from a watchdog thread while the serial batch is mid-
  // sample; whichever sample is in flight is discarded.
  std::thread watchdog([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ctx.request_cancel();
  });
  const std::string path = temp_path("midflight_journal.txt");
  std::remove(path.c_str());
  support::BatchJournal journal(path, "mc-sim", 9, std::size_t(opts.samples));
  part_opts.journal = &journal;
  const auto partial =
      analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, part_opts);
  watchdog.join();

  // Every journaled sample matches the clean run exactly; interrupted or
  // unstarted samples are simply absent. On a loaded machine the cancel can
  // land before sample 0 finishes, in which case nothing was journaled and
  // the file was never created — resuming from an empty map is the contract.
  support::BatchJournal::Loaded loaded;
  if (partial.completed > 0) loaded = support::BatchJournal::load(path);
  EXPECT_EQ(loaded.items.size(), partial.completed);
  for (const auto& [idx, rec] : loaded.items) {
    EXPECT_EQ(rec.v_bits, support::double_bits(clean.samples[idx].v_max))
        << "sample " << idx;
    EXPECT_EQ(rec.fidelity, int(clean.samples[idx].fidelity));
  }
  if (partial.completed < std::size_t(opts.samples)) {
    EXPECT_EQ(partial.stop, StopReason::kCancelled);
    // And the resumed run reproduces the clean result.
    auto resume_opts = opts;
    resume_opts.resume = &loaded.items;
    const auto resumed =
        analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, resume_opts);
    expect_outcomes_identical(clean, resumed);
  }
  std::remove(path.c_str());
}

TEST(Resume, FaultInjectedSampleOutcomeSurvivesResume) {
  if (!support::kFaultInjectionEnabled)
    GTEST_SKIP() << "fault injection compiled out";
  // A sample that failed (or recovered) before the interrupt must restore
  // from the journal with its exact degraded outcome, not be re-promoted.
  auto& injector = support::FaultInjector::instance();
  injector.disarm_all();
  support::FaultPlan plan;
  plan.fire_on_nth = 1;
  plan.only_sample = 1;
  injector.arm(support::FaultKind::kNewtonDivergence, plan);

  const auto cal = analysis::calibrate(process::tech_180nm());
  const auto pkg = process::package_pga();
  auto opts = mc_base_options();
  opts.samples = 4;

  const auto clean =
      analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, opts);

  const std::string path = temp_path("fi_resume_journal.txt");
  std::remove(path.c_str());
  auto part_opts = opts;
  RunContext ctx;
  ctx.set_item_budget(3);  // past the faulted sample
  part_opts.run_ctx = &ctx;
  support::BatchJournal journal(path, "mc-sim", 11, std::size_t(opts.samples));
  part_opts.journal = &journal;
  const auto partial =
      analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, part_opts);
  ASSERT_EQ(partial.completed, 3u);

  const auto loaded = support::BatchJournal::load(path);
  auto resume_opts = opts;
  resume_opts.resume = &loaded.items;
  const auto resumed =
      analysis::monte_carlo_vmax_sim(cal, pkg, 4, 0.1e-9, true, resume_opts);
  injector.disarm_all();
  expect_outcomes_identical(clean, resumed);
}

// --- sweep resume ------------------------------------------------------------

TEST(Resume, DriverSweepResumesBitIdentical) {
  analysis::DriverSweepConfig base;
  base.driver_counts = {1, 2, 4, 8};

  const auto clean = analysis::run_driver_sweep(base);
  ASSERT_EQ(clean.summary.not_run, 0u);

  auto part = base;
  RunContext ctx;
  ctx.set_item_budget(2);
  part.run_ctx = &ctx;
  const std::string path = temp_path("sweep_resume_journal.txt");
  std::remove(path.c_str());
  support::BatchJournal journal(path, "sweep-n", 3, base.driver_counts.size());
  part.journal = &journal;
  const auto partial = analysis::run_driver_sweep(part);
  EXPECT_EQ(partial.summary.not_run, 2u);
  EXPECT_EQ(partial.summary.stop, StopReason::kItemBudget);
  EXPECT_EQ(partial.rows.size(), 2u);

  const auto loaded = support::BatchJournal::load(path);
  ASSERT_EQ(loaded.items.size(), 2u);
  auto res = base;
  res.resume = &loaded.items;
  const auto resumed = analysis::run_driver_sweep(res);
  EXPECT_EQ(resumed.resumed, 2u);
  ASSERT_EQ(resumed.rows.size(), clean.rows.size());
  for (std::size_t i = 0; i < clean.rows.size(); ++i) {
    EXPECT_EQ(resumed.rows[i].n, clean.rows[i].n);
    EXPECT_EQ(resumed.rows[i].sim, clean.rows[i].sim) << "row " << i;
    EXPECT_EQ(resumed.rows[i].this_work, clean.rows[i].this_work);
    EXPECT_EQ(resumed.rows[i].err_this, clean.rows[i].err_this);
    EXPECT_EQ(resumed.rows[i].fidelity, clean.rows[i].fidelity);
  }
  EXPECT_EQ(resumed.summary.notes, clean.summary.notes);
  std::remove(path.c_str());
}

// --- CLI end-to-end ----------------------------------------------------------

TEST(Resume, CliInterruptThenResumeMatchesCleanRun) {
  const std::string j_clean = temp_path("cli_clean_journal.txt");
  const std::string j_part = temp_path("cli_part_journal.txt");
  const std::string csv_clean = temp_path("cli_clean.csv");
  const std::string csv_resumed = temp_path("cli_resumed.csv");
  for (const auto& p : {j_clean, j_part, csv_clean, csv_resumed})
    std::remove(p.c_str());

  const auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  std::ostringstream os, es;
  int rc = cli::run_cli({"mc", "--sim", "--samples", "4", "--journal",
                         j_clean, "--out", csv_clean},
                        os, es);
  EXPECT_EQ(rc, 0);

  os.str({});
  rc = cli::run_cli({"mc", "--sim", "--samples", "4", "--max-samples", "2",
                     "--journal", j_part},
                    os, es);
  EXPECT_EQ(rc, cli::kExitInterrupted);
  EXPECT_NE(os.str().find("interrupted (item-budget)"), std::string::npos);
  EXPECT_NE(os.str().find("--resume"), std::string::npos);

  os.str({});
  rc = cli::run_cli({"mc", "--sim", "--samples", "4", "--resume", j_part,
                     "--out", csv_resumed},
                    os, es);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(os.str().find("resumed 2 samples"), std::string::npos);

  EXPECT_EQ(slurp(csv_clean), slurp(csv_resumed));
  EXPECT_EQ(slurp(j_clean), slurp(j_part));  // resume completed the journal

  for (const auto& p : {j_clean, j_part, csv_clean, csv_resumed})
    std::remove(p.c_str());
}

TEST(Resume, CliExpiredDeadlineExitsInterrupted) {
  std::ostringstream os, es;
  const int rc = cli::run_cli(
      {"mc", "--sim", "--samples", "2", "--deadline", "0"}, os, es);
  EXPECT_EQ(rc, cli::kExitInterrupted);
  EXPECT_NE(os.str().find("deadline-expired"), std::string::npos);
}

TEST(Resume, CliRejectsResumeForDifferentJob) {
  const std::string path = temp_path("cli_wrong_journal.txt");
  std::remove(path.c_str());
  std::ostringstream os, es;
  int rc = cli::run_cli({"mc", "--sim", "--samples", "4", "--journal", path},
                        os, es);
  ASSERT_EQ(rc, 0);
  // Different sample count => different config hash and total.
  std::ostringstream os2, es2;
  rc = cli::run_cli({"mc", "--sim", "--samples", "5", "--resume", path},
                    os2, es2);
  EXPECT_EQ(rc, 1);
  std::remove(path.c_str());
}

// --- torn-record tolerance ---------------------------------------------------

TEST(Lifecycle, JournalToleratesTornTrailingRecord) {
  // A crash mid-record loses the tail of the last line along with its
  // newline; the loader must keep every intact record, warn (SSN-W067), and
  // let the resume proceed — the torn item simply re-runs.
  const std::string path = temp_path("torn_journal.txt");
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << "ssnkit-journal v1\nkind mc-sim\nconfig 0000000000000000\n"
         "total 4\nitem 0 1 3fd0000000000000 -1\n"
         "item 1 1 3fe00000";  // cut mid-field, no trailing newline
  const auto loaded = support::BatchJournal::load(path);
  EXPECT_EQ(loaded.items.size(), 1u);
  EXPECT_EQ(loaded.items.count(0), 1u);
  ASSERT_EQ(loaded.warnings.size(), 1u);
  EXPECT_NE(loaded.warnings[0].find("SSN-W067"), std::string::npos)
      << loaded.warnings[0];
  std::remove(path.c_str());
}

TEST(Lifecycle, JournalStillRejectsMalformedRecordWithNewline) {
  // The torn-record signature is "last line AND no final newline"; a
  // malformed record that *is* newline-terminated was written whole and is
  // real corruption, which must keep aborting the resume.
  const std::string path = temp_path("corrupt_not_torn_journal.txt");
  support::write_file_atomic(
      path,
      "ssnkit-journal v1\nkind mc-sim\nconfig 0000000000000000\n"
      "total 4\nitem 0 1 3fe00000 garbage extra\n");
  EXPECT_THROW(support::BatchJournal::load(path), support::JournalError);
  std::remove(path.c_str());
}

// --- crash-unlink registry ---------------------------------------------------

TEST(Lifecycle, CrashUnlinkRegistryUnlinksRegisteredPaths) {
  const std::string keep = temp_path("crashclean_keep");
  const std::string doomed = temp_path("crashclean_doomed");
  support::write_file_atomic(keep, "keep\n");
  support::write_file_atomic(doomed, "doomed\n");
  const int slot = support::crash_unlink_register(doomed.c_str());
  ASSERT_GE(slot, 0);
  {
    // Registered then unregistered (the normal RAII path): must survive.
    support::ScopedCrashUnlink scoped(keep.c_str());
    EXPECT_TRUE(scoped.covered());
  }
  support::crash_unlink_all();
  EXPECT_TRUE(std::ifstream(keep).good()) << "unregistered path was unlinked";
  EXPECT_FALSE(std::ifstream(doomed).good()) << "registered path survived";
  support::crash_unlink_unregister(slot);
  std::remove(keep.c_str());
}

TEST(Lifecycle, CrashUnlinkRegistryFailsSoftWhenFull) {
  // Fill every slot; the next registration must return -1 (losing crash
  // coverage, never correctness) and unregister(-1) must be a no-op.
  std::vector<int> slots;
  for (int i = 0; i < support::kCrashUnlinkSlots; ++i) {
    const int s = support::crash_unlink_register("/nonexistent/fill");
    if (s < 0) break;  // earlier tests may hold a slot or two
    slots.push_back(s);
  }
  EXPECT_EQ(support::crash_unlink_register("/nonexistent/overflow"), -1);
  support::crash_unlink_unregister(-1);
  for (const int s : slots) support::crash_unlink_unregister(s);
  // Slots are reusable after release.
  const int again = support::crash_unlink_register("/nonexistent/again");
  EXPECT_GE(again, 0);
  support::crash_unlink_unregister(again);
}

}  // namespace
