// Large parameterized property sweeps:
//  * the LC closed form against RK45 over a (N, C/C_crit, slope) grid,
//  * Table 1 case selection consistency over the same grid,
//  * AC steady state against transient sine response (cross-engine check).
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "numeric/ode.hpp"
#include "sim/ac.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using ssnkit::core::LcModel;
using ssnkit::core::MaxSsnCase;
using ssnkit::core::SsnScenario;
using ssnkit::numeric::rk45;
using ssnkit::numeric::Vector;

SsnScenario scenario_for(int n, double c_mult, double slope_mult) {
  SsnScenario s;
  s.n_drivers = n;
  s.inductance = 5e-9;
  s.vdd = 1.8;
  s.slope = 1.8e10 * slope_mult;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  s.capacitance = s.critical_capacitance() * c_mult;
  return s;
}

using GridParam = std::tuple<int, double, double>;  // N, C/C_crit, slope mult

class LcGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(LcGrid, WaveformMatchesRk45EverywhereOnTheGrid) {
  const auto [n, c_mult, slope_mult] = GetParam();
  const SsnScenario s = scenario_for(n, c_mult, slope_mult);
  const LcModel m(s);

  const double nlk = double(s.n_drivers) * s.inductance * s.device.k;
  const double lc = s.inductance * s.capacitance;
  const auto rhs = [&](double, const Vector& y) {
    return Vector{y[1],
                  (nlk * s.slope - y[0] - nlk * s.device.lambda * y[1]) / lc};
  };
  const auto sol = rk45(rhs, s.t_on(), s.t_ramp_end(), Vector{0.0, 0.0});
  double ref_max = 0.0;
  for (std::size_t i = 0; i < sol.t.size(); ++i) {
    EXPECT_NEAR(m.vn(sol.t[i]), sol.y[i][0], 2e-6 * s.v_inf())
        << "i=" << i << " N=" << n << " c_mult=" << c_mult;
    ref_max = std::max(ref_max, sol.y[i][0]);
  }
  // Table 1's maximum dominates the trajectory's sampled maximum (3a's
  // analytic peak may exceed the last sample slightly).
  EXPECT_GE(m.v_max() * (1.0 + 1e-6), ref_max);
}

TEST_P(LcGrid, CaseSelectionConsistent) {
  const auto [n, c_mult, slope_mult] = GetParam();
  const SsnScenario s = scenario_for(n, c_mult, slope_mult);
  const LcModel m(s);
  switch (m.max_case()) {
    case MaxSsnCase::kOverDamped:
      EXPECT_GT(m.zeta(), 1.0);
      break;
    case MaxSsnCase::kCriticallyDamped:
      EXPECT_NEAR(m.zeta(), 1.0, 1e-5);
      break;
    case MaxSsnCase::kUnderDampedFirstPeak:
      EXPECT_LT(m.zeta(), 1.0);
      EXPECT_LE(M_PI / m.omega_d(), s.active_ramp());
      // The analytic peak value must match vn at the peak time.
      EXPECT_NEAR(m.v_max(), m.vn(m.t_first_peak()), 1e-9 * s.v_inf());
      break;
    case MaxSsnCase::kUnderDampedBoundary:
      EXPECT_LT(m.zeta(), 1.0);
      EXPECT_GT(M_PI / m.omega_d(), s.active_ramp());
      EXPECT_NEAR(m.v_max(), m.vn(s.t_ramp_end()), 1e-12);
      break;
  }
}

TEST_P(LcGrid, MaxIsNonNegativeAndBounded) {
  const auto [n, c_mult, slope_mult] = GetParam();
  const LcModel m(scenario_for(n, c_mult, slope_mult));
  EXPECT_GE(m.v_max(), 0.0);
  // Never more than twice the asymptote (under-damped first peak bound).
  EXPECT_LE(m.v_max(), 2.0 * m.scenario().v_inf() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LcGrid,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(0.1, 0.5, 1.0, 3.0, 12.0),
                       ::testing::Values(0.25, 1.0, 4.0)));

// --- cross-engine: AC steady state vs transient sine ------------------------

class AcVsTransient : public ::testing::TestWithParam<double> {};

TEST_P(AcVsTransient, RcSineSteadyStateAmplitudeAgrees) {
  const double freq = GetParam();
  using namespace ssnkit::circuit;
  const double r = 1e3, c = 1e-12;

  // AC prediction.
  Circuit ac_ckt;
  {
    const NodeId in = ac_ckt.node("in");
    const NodeId out = ac_ckt.node("out");
    auto& v = ac_ckt.add_vsource("V1", in, kGround, ssnkit::waveform::Dc{0.0});
    v.set_ac(1.0);
    ac_ckt.add_resistor("R1", in, out, r);
    ac_ckt.add_capacitor("C1", out, kGround, c);
  }
  ssnkit::sim::AcOptions aopts;
  aopts.f_start = freq * 0.99;
  aopts.f_stop = freq * 1.01;
  aopts.points_per_decade = 300;
  const auto ac = ssnkit::sim::run_ac(ac_ckt, aopts);
  const double mag_ac = ac.magnitude("out")[ac.point_count() / 2];

  // Transient: drive with a sine, measure the late-time amplitude.
  Circuit tr_ckt;
  {
    const NodeId in = tr_ckt.node("in");
    const NodeId out = tr_ckt.node("out");
    tr_ckt.add_vsource("V1", in, kGround,
                       ssnkit::waveform::Sine{0.0, 1.0, freq, 0.0});
    tr_ckt.add_resistor("R1", in, out, r);
    tr_ckt.add_capacitor("C1", out, kGround, c);
  }
  ssnkit::sim::TransientOptions topts;
  topts.t_stop = 12.0 / freq;  // several periods to settle
  topts.dt_max = 1.0 / (freq * 200.0);
  topts.lte_reltol = 1e-5;
  const auto tr = ssnkit::sim::run_transient(tr_ckt, topts);
  const auto wave = tr.waveform("out");
  // Amplitude over the last two periods.
  const auto tail = wave.windowed(10.0 / freq, 12.0 / freq);
  const double mag_tr =
      0.5 * (tail.maximum().value - tail.minimum().value);

  EXPECT_NEAR(mag_tr, mag_ac, 0.03 * mag_ac) << "f=" << freq;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, AcVsTransient,
                         ::testing::Values(5e7, 1.59e8, 1e9));

}  // namespace
