// Post-ramp analytic continuation of the LC model (extension beyond the
// paper's [0, t_r] window): continuity, agreement with RK45 over the full
// horizon, and the fast-edge case where the true peak lies after t_r.
#include "core/lc_model.hpp"
#include "numeric/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using ssnkit::core::DampingRegion;
using ssnkit::core::LcModel;
using ssnkit::core::MaxSsnCase;
using ssnkit::core::SsnScenario;
using ssnkit::numeric::rk45;
using ssnkit::numeric::Vector;

SsnScenario scenario_for(double c_mult, double slope_mult = 1.0) {
  SsnScenario s;
  s.n_drivers = 8;
  s.inductance = 5e-9;
  s.vdd = 1.8;
  s.slope = 1.8e10 * slope_mult;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  s.capacitance = s.critical_capacitance() * c_mult;
  return s;
}

TEST(PostRamp, ContinuousAtRampEnd) {
  for (double c_mult : {0.3, 1.0, 6.0}) {
    const SsnScenario s = scenario_for(c_mult);
    const LcModel m(s);
    const double tr = s.t_ramp_end();
    const double eps = tr * 1e-9;
    EXPECT_NEAR(m.vn_extended(tr - eps), m.vn_extended(tr + eps),
                1e-5 * s.v_inf())
        << c_mult;
    EXPECT_NEAR(m.vn_dot_extended(tr - eps), m.vn_dot_extended(tr + eps),
                1e-3 * std::fabs(m.vn_dot_extended(tr - eps)) + 1.0)
        << c_mult;
  }
}

class PostRampVsRk45 : public ::testing::TestWithParam<double> {};

TEST_P(PostRampVsRk45, FullTrajectoryMatchesReference) {
  const SsnScenario s = scenario_for(GetParam());
  const LcModel m(s);
  const double nlk = double(s.n_drivers) * s.inductance * s.device.k;
  const double lc = s.inductance * s.capacitance;
  // Forcing follows the clamped ramp: S before t_r, 0 after.
  const auto rhs = [&](double t, const Vector& y) {
    const double forcing = t <= s.t_ramp_end() ? nlk * s.slope : 0.0;
    return Vector{y[1],
                  (forcing - y[0] - nlk * s.device.lambda * y[1]) / lc};
  };
  const double horizon = s.t_ramp_end() * 4.0;
  // Integrate the two smooth segments separately (forcing is discontinuous
  // at t_r, which a single adaptive pass would smear).
  const auto ramp = rk45(rhs, s.t_on(), s.t_ramp_end(), Vector{0.0, 0.0});
  const auto tail = rk45(rhs, s.t_ramp_end(), horizon,
                         Vector{ramp.y.back()[0], ramp.y.back()[1]});
  for (std::size_t i = 0; i < tail.t.size(); ++i)
    EXPECT_NEAR(m.vn_extended(tail.t[i]), tail.y[i][0], 5e-6 * s.v_inf())
        << "i=" << i << " c_mult=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Regions, PostRampVsRk45,
                         ::testing::Values(0.25, 1.0, 4.0, 16.0));

TEST(PostRamp, OverdampedOvershootsThenDecays) {
  // V_n is still rising when the ramp ends (the case 1 derivative is
  // positive definite), so even the over-damped bounce keeps climbing a
  // little past t_r before relaxing — the paper's boundary value is a
  // slight underestimate of the physical peak.
  const SsnScenario s = scenario_for(0.3);
  const LcModel m(s);
  const double tr = s.t_ramp_end();
  const auto ext = m.v_max_extended();
  EXPECT_TRUE(ext.after_ramp);
  EXPECT_GT(ext.v, m.v_max());
  EXPECT_LT(ext.v, 1.3 * m.v_max());  // small overshoot, not a resonance
  // Monotone decay after the extended peak, down to ~zero.
  double prev = m.vn_extended(ext.t);
  for (double t = ext.t; t <= ext.t + 10.0 * tr; t += tr / 10.0) {
    const double v = m.vn_extended(t);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
  EXPECT_LT(m.vn_extended(ext.t + 20.0 * tr), 0.05 * m.v_max());
}

TEST(PostRamp, UnderdampedRingsAroundZero) {
  const SsnScenario s = scenario_for(12.0);
  const LcModel m(s);
  // Past the ramp the free response must cross zero (ringing).
  bool saw_negative = false;
  for (double t = s.t_ramp_end(); t <= 20.0 * s.t_ramp_end();
       t += s.t_ramp_end() / 20.0)
    if (m.vn_extended(t) < 0.0) saw_negative = true;
  EXPECT_TRUE(saw_negative);
}

TEST(PostRamp, FastEdgePeaksAfterRamp) {
  // Case 3b: the ramp ends before the resonator has swung up; the physical
  // peak is after t_r and exceeds the paper's boundary value.
  const SsnScenario s = scenario_for(9.0, /*slope_mult=*/8.0);
  const LcModel m(s);
  ASSERT_EQ(m.max_case(), MaxSsnCase::kUnderDampedBoundary);
  const auto ext = m.v_max_extended();
  EXPECT_TRUE(ext.after_ramp);
  EXPECT_GT(ext.v, m.v_max() * 1.5);
  EXPECT_GT(ext.t, s.t_ramp_end());
}

TEST(PostRamp, SlowRampPeakStaysInside) {
  // Case 3a: the first peak is inside the ramp; the extension agrees with
  // Table 1 and reports no post-ramp peak.
  const SsnScenario s = scenario_for(9.0, /*slope_mult=*/1.0 / 40.0);
  const LcModel m(s);
  ASSERT_EQ(m.max_case(), MaxSsnCase::kUnderDampedFirstPeak);
  const auto ext = m.v_max_extended();
  EXPECT_FALSE(ext.after_ramp);
  EXPECT_NEAR(ext.v, m.v_max(), 1e-9);
}

TEST(PostRamp, HorizonValidation) {
  const LcModel m(scenario_for(1.0));
  EXPECT_THROW(m.v_max_extended(m.scenario().t_ramp_end() * 0.5),
               std::invalid_argument);
}

}  // namespace
