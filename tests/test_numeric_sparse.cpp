// Sparse matrix + Gilbert–Peierls LU, validated against the dense solver.
#include "numeric/lu.hpp"
#include "numeric/sparse.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace ssnkit::numeric;

TEST(SparseMatrix, BuildAndLookup) {
  SparseMatrix s(3, 3);
  s.add(0, 0, 2.0);
  s.add(1, 2, 5.0);
  s.add(1, 2, 1.0);  // duplicate accumulates
  EXPECT_DOUBLE_EQ(s.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(s.at(2, 2), 0.0);
  EXPECT_EQ(s.nonzeros(), 2u);
  EXPECT_THROW(s.add(3, 0, 1.0), std::out_of_range);
}

TEST(SparseMatrix, FromDenseRoundTrip) {
  Matrix d{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}, {4.0, 0.0, 5.0}};
  const SparseMatrix s = SparseMatrix::from_dense(d);
  EXPECT_EQ(s.nonzeros(), 5u);
  const Matrix back = s.to_dense();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(back(r, c), d(r, c));
}

TEST(SparseMatrix, MatVec) {
  SparseMatrix s(2, 3);
  s.add(0, 0, 1.0);
  s.add(0, 2, 2.0);
  s.add(1, 1, 3.0);
  const Vector y = s.mul(Vector{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_THROW(s.mul(Vector{1.0}), std::invalid_argument);
}

TEST(SparseLu, SolvesSmallSystem) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 2.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 3.0);
  SparseLu lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector x = lu.solve(Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SparseLu, PivotsZeroDiagonal) {
  // MNA-style: voltage-source branch rows have structural zeros on the
  // diagonal, which is what kills naive no-pivot sparse solvers.
  SparseMatrix a(2, 2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  SparseLu lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector x = lu.solve(Vector{2.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, DetectsSingular) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 4.0);
  SparseLu lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_THROW(lu.solve(Vector{1.0, 1.0}), std::runtime_error);
  // Structurally empty column.
  SparseMatrix b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 0, 1.0);
  EXPECT_TRUE(SparseLu(b).singular());
}

TEST(SparseLu, NonSquareThrows) {
  SparseMatrix a(2, 3);
  EXPECT_THROW(SparseLu{a}, std::invalid_argument);
}

TEST(SparseLu, TridiagonalHasLinearFill) {
  // A tridiagonal system factors with O(n) fill — the point of sparsity.
  const std::size_t n = 200;
  SparseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.0);
  }
  SparseLu lu(a);
  ASSERT_FALSE(lu.singular());
  EXPECT_LT(lu.factor_nonzeros(), 4 * n);  // ~3n for a tridiagonal
  // Check the solution against the residual.
  Vector b(n, 1.0);
  const Vector x = lu.solve(b);
  const Vector r = a.mul(x) - b;
  EXPECT_LT(r.norm_inf(), 1e-10);
}

class SparseVsDense : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDense, RandomSparseSystemsAgree) {
  const std::size_t n = std::size_t(GetParam());
  std::mt19937 rng(unsigned(1234 + GetParam()));
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_int_distribution<std::size_t> col(0, n - 1);

  Matrix dense(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    dense(r, r) = 6.0 + val(rng);  // dominant diagonal keeps it nonsingular
    for (int k = 0; k < 4; ++k) dense(r, col(rng)) += val(rng);
  }
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = val(rng);

  const Vector x_dense = LuFactorization(dense).solve(b);
  SparseLu sparse(SparseMatrix::from_dense(dense));
  ASSERT_FALSE(sparse.singular());
  const Vector x_sparse = sparse.solve(b);
  EXPECT_LT((x_dense - x_sparse).norm_inf(), 1e-9);

  // And through the auto-dispatch helper.
  const Vector x_auto = solve_linear_auto(dense, b, 8);
  EXPECT_LT((x_dense - x_auto).norm_inf(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseVsDense,
                         ::testing::Values(3, 10, 37, 64, 150));

TEST(SparseLu, PermutedIdentity) {
  const std::size_t n = 20;
  SparseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) a.add(i, (i + 7) % n, 1.0);
  SparseLu lu(a);
  ASSERT_FALSE(lu.singular());
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = double(i);
  const Vector x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[(i + 7) % n], double(i), 1e-12);
}

}  // namespace
