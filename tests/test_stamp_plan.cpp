// The solver hot path's stamp plan: StampedMatrix pattern discovery /
// bound-mode refill, the missed() drift counter, and SparseFactor's
// factorize-once / refactorize-per-iteration split. These are the
// invariants the engine's zero-allocation Newton loop rests on (see
// docs/PERFORMANCE.md).
#include "circuit/mna.hpp"
#include "circuit/testbench.hpp"
#include "numeric/sparse.hpp"
#include "sim/engine.hpp"
#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

namespace {

using namespace ssnkit;
using numeric::Matrix;
using numeric::SparseFactor;
using numeric::SparseLu;
using numeric::SparseMatrix;
using numeric::StampedMatrix;
using numeric::Vector;

// --- StampedMatrix ----------------------------------------------------------

TEST(StampedMatrix, DiscoveryPassDoublesAsAssembly) {
  StampedMatrix m;
  m.begin_pattern(3);
  EXPECT_TRUE(m.discovering());
  m.add(0, 0, 2.0);
  m.add(0, 1, -1.0);
  m.add(1, 1, 3.0);
  m.add(2, 2, 4.0);
  m.add(0, 0, 0.5);  // duplicate coordinates merge
  m.finalize_pattern();
  EXPECT_TRUE(m.has_pattern());
  EXPECT_EQ(m.nonzeros(), 4u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);  // absent => 0
}

TEST(StampedMatrix, BoundModeRefillsWithoutChangingPattern) {
  StampedMatrix m;
  m.begin_pattern(2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.finalize_pattern();
  const std::size_t epoch = m.epoch();

  m.clear();
  m.add(0, 0, 7.0);
  m.add(1, 1, -2.0);
  EXPECT_EQ(m.missed(), 0u);
  EXPECT_EQ(m.epoch(), epoch);  // refill does not bump the epoch
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), -2.0);
}

TEST(StampedMatrix, OutOfPatternAddIsCountedNotStored) {
  StampedMatrix m;
  m.begin_pattern(2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.finalize_pattern();

  m.clear();
  m.add(0, 1, 5.0);  // not in the pattern
  EXPECT_EQ(m.missed(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  m.clear();  // clear() resets the drift counter
  EXPECT_EQ(m.missed(), 0u);
}

TEST(StampedMatrix, FinalizeBumpsEpoch) {
  StampedMatrix m;
  m.begin_pattern(1);
  m.add(0, 0, 1.0);
  m.finalize_pattern();
  const std::size_t e1 = m.epoch();
  m.begin_pattern(1);
  m.add(0, 0, 1.0);
  m.finalize_pattern();
  EXPECT_GT(m.epoch(), e1);
}

TEST(StampedMatrix, MulIntoMatchesDense) {
  StampedMatrix m;
  m.begin_pattern(3);
  m.add(0, 0, 2.0);
  m.add(0, 2, 1.0);
  m.add(1, 1, -3.0);
  m.add(2, 0, 4.0);
  m.add(2, 2, 5.0);
  m.finalize_pattern();
  Vector x(3);
  x[0] = 1.0;
  x[1] = 2.0;
  x[2] = -1.0;
  Vector y(3);
  m.mul_into(x, y);
  const Matrix d = m.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    double want = 0.0;
    for (std::size_t c = 0; c < 3; ++c) want += d(r, c) * x[c];
    EXPECT_DOUBLE_EQ(y[r], want);
  }
}

// --- stamped assembly vs dense assembly on a real circuit -------------------

TEST(StampPlan, StampedAssemblyMatchesDenseOnTestbench) {
  circuit::SsnBenchSpec spec;
  spec.n_drivers = 6;
  auto bench = circuit::make_ssn_testbench(spec);
  const Vector x = sim::dc_operating_point(bench.circuit).solution;
  const std::size_t n = std::size_t(bench.circuit.unknown_count());

  Matrix dense(n, n);
  Vector b_dense(n);
  {
    circuit::StampContext ctx;
    ctx.mode = circuit::AnalysisMode::kDc;
    ctx.x = &x;
    ctx.a = &dense;
    ctx.b = &b_dense;
    for (const auto& el : bench.circuit.elements()) el->stamp(ctx);
  }

  StampedMatrix sm;
  Vector b_sparse(n);
  circuit::StampContext ctx;
  ctx.mode = circuit::AnalysisMode::kDc;
  ctx.x = &x;
  ctx.sa = &sm;
  ctx.b = &b_sparse;
  sm.begin_pattern(n);
  for (const auto& el : bench.circuit.elements()) el->stamp(ctx);
  sm.finalize_pattern();

  const Matrix got = sm.to_dense();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_DOUBLE_EQ(got(r, c), dense(r, c)) << "entry (" << r << "," << c << ")";
    EXPECT_DOUBLE_EQ(b_sparse[r], b_dense[r]) << "rhs row " << r;
  }

  // Bound-mode refill of the cached pattern reproduces the same matrix
  // with zero misses — the invariant the engine's debug assert checks.
  sm.clear();
  b_sparse.fill(0.0);
  for (const auto& el : bench.circuit.elements()) el->stamp(ctx);
  EXPECT_EQ(sm.missed(), 0u);
  const Matrix refilled = sm.to_dense();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_DOUBLE_EQ(refilled(r, c), dense(r, c));
}

// --- SparseFactor -----------------------------------------------------------

StampedMatrix small_system() {
  // Unsymmetric, needs pivoting on column 0 (zero diagonal head).
  StampedMatrix m;
  m.begin_pattern(3);
  m.add(0, 0, 0.0);  // exact zero kept in the pattern
  m.add(0, 1, 2.0);
  m.add(1, 0, 1.0);
  m.add(1, 2, 1.0);
  m.add(2, 1, 1.0);
  m.add(2, 2, 3.0);
  m.finalize_pattern();
  return m;
}

TEST(SparseFactor, AgreesWithSparseLu) {
  StampedMatrix m = small_system();
  SparseFactor f;
  ASSERT_TRUE(f.factorize(m));
  EXPECT_FALSE(f.singular());
  EXPECT_EQ(f.pattern_epoch(), m.epoch());

  Vector b(3);
  b[0] = 1.0;
  b[1] = -2.0;
  b[2] = 0.5;
  Vector x(3);
  f.solve(b, x);

  SparseMatrix ref(3, 3);
  const Matrix d = m.to_dense();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      if (d(r, c) != 0.0) ref.add(r, c, d(r, c));  // ssnlint-ignore(SSN-L001)
  const Vector want = SparseLu(ref).solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], want[i], 1e-12);
}

TEST(SparseFactor, RefactorizeMatchesFreshFactorize) {
  StampedMatrix m = small_system();
  SparseFactor f;
  ASSERT_TRUE(f.factorize(m));

  // New values, same pattern (the exact-zero slot stays zero).
  m.clear();
  m.add(0, 1, 5.0);
  m.add(1, 0, 2.0);
  m.add(1, 2, -1.0);
  m.add(2, 1, 0.5);
  m.add(2, 2, 4.0);
  ASSERT_TRUE(f.refactorize(m));

  Vector b(3);
  b[0] = 3.0;
  b[1] = 1.0;
  b[2] = -1.0;
  Vector x_re(3);
  f.solve(b, x_re);

  SparseFactor fresh;
  ASSERT_TRUE(fresh.factorize(m));
  Vector x_fresh(3);
  fresh.solve(b, x_fresh);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x_re[i], x_fresh[i], 1e-12);

  // Residual check against the matrix itself.
  Vector ax(3);
  m.mul_into(x_re, ax);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(SparseFactor, RefactorizeRejectsStaleEpoch) {
  StampedMatrix m = small_system();
  SparseFactor f;
  ASSERT_TRUE(f.factorize(m));

  // Rediscovering the pattern bumps the epoch; the old symbolic analysis
  // must refuse to replay over it.
  m.begin_pattern(3);
  m.add(0, 1, 2.0);
  m.add(1, 0, 1.0);
  m.add(1, 2, 1.0);
  m.add(2, 1, 1.0);
  m.add(2, 2, 3.0);
  m.finalize_pattern();
  EXPECT_FALSE(f.refactorize(m));
}

TEST(SparseFactor, SingularMatrixReportsAndThrows) {
  StampedMatrix m;
  m.begin_pattern(2);
  m.add(0, 0, 1.0);
  m.add(0, 1, 2.0);
  m.add(1, 0, 2.0);
  m.add(1, 1, 4.0);  // row 1 = 2 * row 0
  m.finalize_pattern();

  SparseFactor f;
  EXPECT_FALSE(f.factorize(m));
  EXPECT_TRUE(f.singular());
  Vector b(2);
  b[0] = 1.0;
  b[1] = 1.0;
  Vector x(2);
  EXPECT_THROW(f.solve(b, x), support::SolverError);
}

TEST(SparseFactor, RefactorizeFlagsDegradedPivot) {
  // Factorize with a healthy diagonal, then refill with values that make
  // the frozen pivot catastrophically small relative to its column — the
  // numeric replay must report failure so the caller re-factorizes.
  StampedMatrix m;
  m.begin_pattern(2);
  m.add(0, 0, 4.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 4.0);
  m.finalize_pattern();
  SparseFactor f;
  ASSERT_TRUE(f.factorize(m));

  m.clear();
  m.add(0, 0, 1e-14);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 1e-14);
  const bool ok = f.refactorize(m);
  if (ok) {
    // Tolerated: then the solve must still be accurate.
    Vector b(2);
    b[0] = 1.0;
    b[1] = 2.0;
    Vector x(2);
    f.solve(b, x);
    Vector ax(2);
    m.mul_into(x, ax);
    EXPECT_NEAR(ax[0], b[0], 1e-6);
    EXPECT_NEAR(ax[1], b[1], 1e-6);
  } else {
    // Degradation flagged: a fresh factorization (new pivots) succeeds.
    SparseFactor fresh;
    EXPECT_TRUE(fresh.factorize(m));
  }
}

}  // namespace
