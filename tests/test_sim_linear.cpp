// The transient engine against closed-form linear-circuit responses. This
// is what justifies using src/sim as the paper's HSPICE stand-in.
#include "circuit/circuit.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using ssnkit::waveform::Dc;
using ssnkit::waveform::Pwl;
using ssnkit::waveform::Ramp;
using ssnkit::waveform::Waveform;

TEST(Dc, VoltageDivider) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Dc{10.0});
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_resistor("R2", out, kGround, 3e3);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_NEAR(dc.voltage(ckt, "out"), 7.5, 1e-9);
  EXPECT_NEAR(dc.voltage(ckt, "in"), 10.0, 1e-9);
}

TEST(Dc, InductorIsShort) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_resistor("R1", a, b, 100.0);
  ckt.add_inductor("L1", b, kGround, 1e-9);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_NEAR(dc.voltage(ckt, "b"), 0.0, 1e-9);
  // Branch current through the inductor: 1 V / 100 Ohm.
  const Element* l1 = ckt.find_element("L1");
  EXPECT_NEAR(dc.solution[std::size_t(ckt.branch_unknown_index(*l1))], 0.01, 1e-9);
}

TEST(Dc, CapacitorIsOpen) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{5.0});
  ckt.add_resistor("R1", a, b, 1e3);
  ckt.add_capacitor("C1", b, kGround, 1e-12);
  ckt.add_resistor("Rload", b, kGround, 1e9);  // keep node b well-posed
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_NEAR(dc.voltage(ckt, "b"), 5.0, 1e-4);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_isource("I1", kGround, a, Dc{1e-3});  // pushes 1 mA into a
  ckt.add_resistor("R1", a, kGround, 2e3);
  const DcResult dc = dc_operating_point(ckt);
  EXPECT_NEAR(dc.voltage(ckt, "a"), 2.0, 1e-9);
}

TEST(Dc, VccsGain) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Dc{1.0});
  ckt.add_vccs("G1", out, kGround, in, kGround, 2e-3);  // 2 mA out of node out
  ckt.add_resistor("R1", out, kGround, 1e3);
  const DcResult dc = dc_operating_point(ckt);
  // Current 2 mA flows out -> 0 through G1, pulled through R1: v = -2 V.
  EXPECT_NEAR(dc.voltage(ckt, "out"), -2.0, 1e-9);
}

// --- RC charging -------------------------------------------------------------

class RcChargeTest : public ::testing::TestWithParam<Integrator> {};

TEST_P(RcChargeTest, MatchesAnalytic) {
  // Step through R into C: v(t) = V*(1 - e^{-t/RC}), RC = 1 ns.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround,
                  Pwl{{{0.0, 0.0}, {1e-15, 1.0}}});  // near-ideal step
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_capacitor("C1", out, kGround, 1e-12);

  TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.method = GetParam();
  opts.lte_reltol = 1e-5;
  const TransientResult result = run_transient(ckt, opts);
  const Waveform v = result.waveform("out");
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expected = 1.0 - std::exp(-t / 1e-9);
    EXPECT_NEAR(v.sample(t), expected, 4e-3) << "t=" << t;
  }
  EXPECT_GT(result.stats.accepted_steps, 20u);
}

INSTANTIATE_TEST_SUITE_P(AllIntegrators, RcChargeTest,
                         ::testing::Values(Integrator::kBackwardEuler,
                                           Integrator::kTrapezoidal,
                                           Integrator::kGear2),
                         [](const ::testing::TestParamInfo<Integrator>& pinfo) {
                           switch (pinfo.param) {
                             case Integrator::kBackwardEuler: return "BE";
                             case Integrator::kTrapezoidal: return "Trap";
                             case Integrator::kGear2: return "Gear2";
                           }
                           return "?";
                         });

TEST(Transient, RlCurrentRise) {
  // Series R-L driven by a step: i(t) = (V/R)(1 - e^{-tR/L}).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add_vsource("V1", in, kGround, Pwl{{{0.0, 0.0}, {1e-15, 1.0}}});
  ckt.add_resistor("R1", in, mid, 10.0);
  ckt.add_inductor("L1", mid, kGround, 10e-9);  // tau = 1 ns

  TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.lte_reltol = 1e-5;
  const TransientResult result = run_transient(ckt, opts);
  const Waveform i = result.waveform("I(L1)");
  for (double t : {1e-9, 3e-9}) {
    const double expected = 0.1 * (1.0 - std::exp(-t / 1e-9));
    EXPECT_NEAR(i.sample(t), expected, 1e-3) << "t=" << t;
  }
}

TEST(Transient, SeriesRlcUnderdampedRings) {
  // Series RLC step response, under-damped: check frequency and first peak.
  // L = 5 nH, C = 1 pF, R = 10 Ohm: omega0 = 1/sqrt(LC) = 1.414e10 rad/s,
  // zeta = R/2*sqrt(C/L) = 0.0707.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId a = ckt.node("a");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Pwl{{{0.0, 0.0}, {1e-15, 1.0}}});
  ckt.add_resistor("R1", in, a, 10.0);
  ckt.add_inductor("L1", a, out, 5e-9);
  ckt.add_capacitor("C1", out, kGround, 1e-12);

  TransientOptions opts;
  opts.t_stop = 3e-9;
  opts.lte_reltol = 1e-5;
  const TransientResult result = run_transient(ckt, opts);
  const Waveform v = result.waveform("out");

  const double omega0 = 1.0 / std::sqrt(5e-9 * 1e-12);
  const double zeta = 10.0 / 2.0 * std::sqrt(1e-12 / 5e-9);
  const double omega_d = omega0 * std::sqrt(1.0 - zeta * zeta);
  const double t_peak = M_PI / omega_d;
  const double v_peak = 1.0 + std::exp(-zeta * omega0 * t_peak);

  const auto peak = v.maximum();
  EXPECT_NEAR(peak.t, t_peak, 0.03 * t_peak);
  EXPECT_NEAR(peak.value, v_peak, 0.02 * v_peak);
}

TEST(Transient, ParallelRlcDecay) {
  // Current step into parallel RLC; final value v = I*R.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_isource("I1", kGround, a, Dc{1e-3});
  ckt.add_resistor("R1", a, kGround, 50.0);
  ckt.add_capacitor("C1", a, kGround, 1e-12);
  ckt.add_inductor("L1", a, ckt.node("b"), 5e-9);
  ckt.add_resistor("R2", ckt.node("b"), kGround, 1e3);

  TransientOptions opts;
  opts.t_stop = 50e-9;
  const TransientResult result = run_transient(ckt, opts);
  // At steady state the inductor shorts node a to R2: v = 1mA * (50||1050)...
  // Actually L in series with R2 forms a DC path: v = 1mA * (50 || 1000).
  const double r_eff = 1.0 / (1.0 / 50.0 + 1.0 / 1e3);
  EXPECT_NEAR(result.final_value("a"), 1e-3 * r_eff, 2e-4);
}

TEST(Transient, RampBreakpointIsHit) {
  // The engine must land exactly on ramp corners; check the source node
  // tracks the ramp tightly even with large allowed steps.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  ckt.add_vsource("V1", in, kGround, Ramp{0.0, 1.8, 1e-9, 0.1e-9});
  ckt.add_resistor("R1", in, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 2e-9;
  const TransientResult result = run_transient(ckt, opts);
  const Waveform v = result.waveform("in");
  EXPECT_NEAR(v.sample(1e-9), 0.0, 1e-9);
  EXPECT_NEAR(v.sample(1.05e-9), 0.9, 2e-2);
  EXPECT_NEAR(v.sample(1.1e-9), 1.8, 1e-9);
  // Breakpoints present as exact time points.
  bool saw_start = false, saw_end = false;
  for (double t : result.times()) {
    if (std::fabs(t - 1e-9) < 1e-16) saw_start = true;
    if (std::fabs(t - 1.1e-9) < 1e-16) saw_end = true;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_end);
}

TEST(Transient, UicHonorsInitialConditions) {
  // Pre-charged capacitor discharging through R: v(t) = 2 e^{-t/RC}.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_capacitor("C1", a, kGround, 1e-12, 2.0);
  ckt.add_resistor("R1", a, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 3e-9;
  opts.use_ic = true;
  const TransientResult result = run_transient(ckt, opts);
  const Waveform v = result.waveform("a");
  EXPECT_NEAR(v.sample(1e-9), 2.0 * std::exp(-1.0), 2e-2);
}

TEST(Transient, TrapezoidalBeatsBackwardEulerOnAccuracy) {
  const auto max_err_with = [](Integrator method) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add_vsource("V1", in, kGround, Pwl{{{0.0, 0.0}, {1e-15, 1.0}}});
    ckt.add_resistor("R1", in, out, 1e3);
    ckt.add_capacitor("C1", out, kGround, 1e-12);
    TransientOptions opts;
    opts.t_stop = 5e-9;
    opts.adaptive = false;        // fixed 5 ps steps
    opts.dt_initial = 5e-12;
    opts.method = method;
    const TransientResult result = run_transient(ckt, opts);
    const Waveform v = result.waveform("out");
    double err = 0.0;
    for (double t = 0.2e-9; t < 5e-9; t += 0.2e-9)
      err = std::max(err, std::fabs(v.sample(t) - (1.0 - std::exp(-t / 1e-9))));
    return err;
  };
  const double err_be = max_err_with(Integrator::kBackwardEuler);
  const double err_trap = max_err_with(Integrator::kTrapezoidal);
  const double err_gear = max_err_with(Integrator::kGear2);
  EXPECT_LT(err_trap, err_be / 5.0);
  EXPECT_LT(err_gear, err_be);
}

TEST(Transient, StatsArepopulated) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_resistor("R1", a, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  const TransientResult result = run_transient(ckt, opts);
  EXPECT_GT(result.stats.accepted_steps, 0u);
  EXPECT_GT(result.stats.newton_iterations, 0u);
  EXPECT_GT(result.point_count(), 1u);
  EXPECT_TRUE(result.has_signal("a"));
  EXPECT_TRUE(result.has_signal("I(V1)"));
  EXPECT_FALSE(result.has_signal("nope"));
  EXPECT_THROW(result.waveform("nope"), std::out_of_range);
}

TEST(Transient, BadWindowThrows) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 0.0;
  EXPECT_THROW(run_transient(ckt, opts), std::invalid_argument);
}

}  // namespace
