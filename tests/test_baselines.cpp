// Reconstructed baseline SSN estimators (Senthinathan–Prince, Vemuru, Song).
#include "core/baselines.hpp"
#include "core/l_only_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::core;

BaselineInputs typical() {
  BaselineInputs in;
  in.n_drivers = 8;
  in.inductance = 5e-9;
  in.slope = 1.8e10;
  in.vdd = 1.8;
  in.b = 6.5e-3 / std::pow(1.8 - 0.45, 1.3);
  in.vt = 0.45;
  in.alpha = 1.3;
  return in;
}

TEST(Baselines, AllPredictPlausibleNoise) {
  const BaselineInputs in = typical();
  for (double v : {senthinathan_prince_vmax(in), vemuru_vmax(in), song_vmax(in)}) {
    EXPECT_GT(v, 0.05);
    EXPECT_LT(v, in.vdd);
  }
}

TEST(Baselines, SelfConsistency) {
  // Each estimate must satisfy its own implicit equation.
  const BaselineInputs in = typical();
  const double nl = 8.0 * 5e-9;
  {
    const double v = vemuru_vmax(in);
    const double gm = in.alpha * in.b * std::pow(in.vdd - v - in.vt, in.alpha - 1);
    const double tau = nl * gm;
    const double rhs =
        tau * in.slope * (1.0 - std::exp(-(in.vdd - in.vt) / (in.slope * tau)));
    EXPECT_NEAR(v, rhs, 1e-9);
  }
  {
    const double v = song_vmax(in);
    const double gm = in.alpha * in.b * std::pow(in.vdd - v - in.vt, in.alpha - 1);
    const double rhs = nl * gm * in.slope * (1.0 - v / (in.vdd - in.vt));
    EXPECT_NEAR(v, rhs, 1e-9);
  }
}

TEST(Baselines, MonotoneInDriverCount) {
  BaselineInputs in = typical();
  double prev_v = 0.0, prev_s = 0.0, prev_p = 0.0;
  for (int n = 1; n <= 16; n += 3) {
    in.n_drivers = n;
    const double v = vemuru_vmax(in);
    const double s = song_vmax(in);
    const double p = senthinathan_prince_vmax(in);
    EXPECT_GT(v, prev_v);
    EXPECT_GT(s, prev_s);
    EXPECT_GT(p, prev_p);
    prev_v = v;
    prev_s = s;
    prev_p = p;
  }
}

TEST(Baselines, SaturateBelowOverdrive) {
  // The noise can never reach the full overdrive (the device would be off).
  BaselineInputs in = typical();
  in.n_drivers = 4096;
  for (double v : {senthinathan_prince_vmax(in), vemuru_vmax(in), song_vmax(in)}) {
    EXPECT_LT(v, in.vdd - in.vt);
    EXPECT_GT(v, 0.5 * (in.vdd - in.vt));  // deep saturation
  }
}

TEST(Baselines, SongBelowVemuru) {
  // Song's linear-V_n assumption subtracts the dV/dt feedback term, so for
  // identical inputs its estimate sits below Vemuru's.
  const BaselineInputs in = typical();
  EXPECT_LT(song_vmax(in), vemuru_vmax(in));
}

TEST(Baselines, ZeroNoiseLimit) {
  // Vanishing inductance -> vanishing noise.
  BaselineInputs in = typical();
  in.inductance = 1e-15;
  EXPECT_LT(vemuru_vmax(in), 1e-2);
  EXPECT_LT(song_vmax(in), 1e-2);
  EXPECT_LT(senthinathan_prince_vmax(in), 1e-2);
}

TEST(Baselines, Validation) {
  BaselineInputs in = typical();
  in.b = 0.0;
  EXPECT_THROW(vemuru_vmax(in), std::invalid_argument);
  in = typical();
  in.alpha = 2.5;
  EXPECT_THROW(song_vmax(in), std::invalid_argument);
  in = typical();
  in.vt = 2.0;
  EXPECT_THROW(senthinathan_prince_vmax(in), std::invalid_argument);
  in = typical();
  in.n_drivers = 0;
  EXPECT_THROW(vemuru_vmax(in), std::invalid_argument);
}

TEST(Baselines, VemuruNearThisWorkForLambdaOne) {
  // With lambda -> 1 and K ~ gm the paper's model degenerates to Vemuru's
  // form; check they are in the same neighbourhood for a mild scenario.
  BaselineInputs in = typical();
  in.n_drivers = 4;
  const double v_vemuru = vemuru_vmax(in);

  SsnScenario s;
  s.n_drivers = 4;
  s.inductance = in.inductance;
  s.capacitance = 0.0;
  s.slope = in.slope;
  s.vdd = in.vdd;
  const double gm_full =
      in.alpha * in.b * std::pow(in.vdd - v_vemuru - in.vt, in.alpha - 1.0);
  s.device = {.k = gm_full, .lambda = 1.0, .vx = in.vt};
  const double v_this = LOnlyModel(s).v_max();
  EXPECT_NEAR(v_this, v_vemuru, 0.25 * v_vemuru);
}

}  // namespace
