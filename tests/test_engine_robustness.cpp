// Engine robustness and accuracy properties: global convergence order,
// stamped-sparse solver validation on a large driver bank, Gear-2 on the
// full SSN bench, and pathological-input handling.
#include "analysis/measure.hpp"
#include "circuit/circuit.hpp"
#include "circuit/testbench.hpp"
#include "sim/engine.hpp"
#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using ssnkit::waveform::Dc;
using ssnkit::waveform::Pwl;

double rc_error_with_step(Integrator method, double h) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", in, kGround, Pwl{{{0.0, 0.0}, {1e-15, 1.0}}});
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_capacitor("C1", out, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 4e-9;
  opts.adaptive = false;
  opts.dt_initial = h;
  opts.method = method;
  const TransientResult res = run_transient(ckt, opts);
  double err = 0.0;
  for (double t = 1e-9; t <= 3.5e-9; t += 0.25e-9)
    err = std::max(err, std::fabs(res.waveform("out").sample(t) -
                                  (1.0 - std::exp(-t / 1e-9))));
  return err;
}

TEST(ConvergenceOrder, BackwardEulerIsFirstOrder) {
  const double e1 = rc_error_with_step(Integrator::kBackwardEuler, 20e-12);
  const double e2 = rc_error_with_step(Integrator::kBackwardEuler, 10e-12);
  EXPECT_NEAR(e1 / e2, 2.0, 0.4);
}

TEST(ConvergenceOrder, TrapezoidalIsSecondOrder) {
  const double e1 = rc_error_with_step(Integrator::kTrapezoidal, 40e-12);
  const double e2 = rc_error_with_step(Integrator::kTrapezoidal, 20e-12);
  EXPECT_NEAR(e1 / e2, 4.0, 1.0);
}

TEST(ConvergenceOrder, Gear2IsSecondOrder) {
  const double e1 = rc_error_with_step(Integrator::kGear2, 40e-12);
  const double e2 = rc_error_with_step(Integrator::kGear2, 20e-12);
  EXPECT_NEAR(e1 / e2, 4.0, 1.2);
}

TEST(SparsePath, LargeDriverBankDcSatisfiesKcl) {
  // 24 drivers -> ~75 unknowns. The engine's stamped-sparse solver is the
  // only path now, so validate it against an independent dense assembly:
  // the DC solution it returns must satisfy KCL of the dense-stamped MNA
  // system to Newton tolerance.
  SsnBenchSpec spec;
  spec.n_drivers = 24;
  SsnBench bench = make_ssn_testbench(spec);
  const DcResult dc = dc_operating_point(bench.circuit);

  const std::size_t n = std::size_t(bench.circuit.unknown_count());
  numeric::Matrix a(n, n);
  numeric::Vector b(n);
  StampContext ctx;
  ctx.mode = AnalysisMode::kDc;
  ctx.x = &dc.solution;
  ctx.a = &a;
  ctx.b = &b;
  for (const auto& el : bench.circuit.elements()) el->stamp(ctx);

  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = -b[i];
    for (std::size_t j = 0; j < n; ++j) row += a(i, j) * dc.solution[j];
    resid = std::max(resid, std::fabs(row));
  }
  EXPECT_LT(resid, 1e-4);
}

TEST(SparsePath, LargeDriverBankVmaxIsReproducible) {
  // Two independent runs of the full measurement exercise pattern caching
  // and refactorization reuse from scratch; they must agree exactly and
  // produce a physically sensible bounce.
  const auto run = [] {
    SsnBenchSpec spec;
    spec.n_drivers = 24;
    return analysis::measure_ssn(spec, analysis::MeasureOptions{}).v_max;
  };
  const double v1 = run();
  const double v2 = run();
  EXPECT_EQ(v1, v2);
  EXPECT_GT(v1, 0.5);
}

TEST(SsnBenchIntegrators, AllMethodsAgreeOnVmax) {
  double v_ref = 0.0;
  for (auto method : {Integrator::kTrapezoidal, Integrator::kBackwardEuler,
                      Integrator::kGear2}) {
    SsnBenchSpec spec;
    spec.n_drivers = 8;
    analysis::MeasureOptions mopts;
    mopts.transient.method = method;
    mopts.transient.dt_max = spec.input_rise_time / 400.0;
    const double v = analysis::measure_ssn(spec, mopts).v_max;
    if (v_ref == 0.0) v_ref = v;
    EXPECT_NEAR(v, v_ref, 0.01 * v_ref);
  }
}

TEST(Robustness, FloatingNodeReportsFailure) {
  // A node with no DC path at all: the operating point must fail loudly,
  // not return garbage — and the failure must be the typed SolverError
  // (still catchable as runtime_error for legacy callers).
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_capacitor("C1", b, kGround, 1e-12);  // b floats
  (void)a;
  EXPECT_THROW(dc_operating_point(ckt), std::runtime_error);
  try {
    dc_operating_point(ckt);
  } catch (const support::SolverError& e) {
    EXPECT_EQ(e.kind(), support::SolverErrorKind::kSingularMatrix);
    EXPECT_EQ(e.diagnostics().where, "dc_operating_point");
    EXPECT_FALSE(e.diagnostics().homotopy_trail.empty());
  }
}

TEST(Robustness, StepBudgetConvertsGrindToError) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_resistor("R1", a, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.adaptive = false;
  opts.dt_initial = 1e-15;  // would need 1e6 steps
  opts.max_steps = 1000;
  EXPECT_THROW(run_transient(ckt, opts), std::runtime_error);
  try {
    run_transient(ckt, opts);
  } catch (const support::SolverError& e) {
    EXPECT_EQ(e.kind(), support::SolverErrorKind::kStepBudgetExhausted);
    EXPECT_TRUE(e.retryable());
    EXPECT_TRUE(std::isfinite(e.diagnostics().time));
  }
}

TEST(PathologicalFixtures, LargeNonlinearBankRecordsDcTrail) {
  // 32 strongly-driven nonlinear pull-downs sharing one bouncing rail: the
  // DC solve must converge and record how it did so.
  SsnBenchSpec spec;
  spec.n_drivers = 32;
  spec.bulk_to_vssi = true;
  SsnBench bench = make_ssn_testbench(spec);
  const DcResult dc = dc_operating_point(bench.circuit);
  ASSERT_FALSE(dc.homotopy_trail.empty());
  EXPECT_EQ(dc.homotopy_trail.front().name, "plain-newton");
  EXPECT_TRUE(dc.homotopy_trail.back().converged);
  EXPECT_GT(dc.iterations, 0u);
  EXPECT_NEAR(dc.voltage(bench.circuit, bench.vdd_node), spec.tech.vdd, 1e-6);
}

TEST(PathologicalFixtures, StarvedNewtonFallsBackToHomotopy) {
  // Starve Newton of iterations while capping the per-iteration voltage
  // move: the plain stage cannot walk the supply rail up to vdd, so the DC
  // solve must escalate through the homotopy branches and still land on
  // the right operating point.
  SsnBenchSpec spec;
  spec.n_drivers = 8;
  SsnBench bench = make_ssn_testbench(spec);
  NewtonOptions nopts;
  nopts.max_voltage_step = 0.05;  // vdd = 1.8 V: needs ~36 damped iterations
  nopts.max_iterations = 10;
  const DcResult dc = dc_operating_point(bench.circuit, 0.0, nopts);
  EXPECT_TRUE(dc.used_gmin_stepping || dc.used_source_stepping);
  ASSERT_FALSE(dc.homotopy_trail.empty());
  EXPECT_FALSE(dc.homotopy_trail.front().converged);
  EXPECT_TRUE(dc.homotopy_trail.back().converged);
  EXPECT_NEAR(dc.voltage(bench.circuit, bench.vdd_node), spec.tech.vdd, 1e-6);
  // The result agrees with the unconstrained solve.
  SsnBench fresh = make_ssn_testbench(spec);
  const DcResult easy = dc_operating_point(fresh.circuit);
  EXPECT_NEAR(dc.voltage(bench.circuit, bench.vssi_node),
              easy.voltage(fresh.circuit, bench.vssi_node), 1e-6);
}

TEST(PathologicalFixtures, HopelessNewtonBudgetCarriesFullTrail) {
  // With an absurdly tight step cap even the homotopies cannot finish: the
  // typed error must show every branch that was attempted and the residual
  // the final one stalled at (satellite: DC failure diagnostics).
  SsnBenchSpec spec;
  spec.n_drivers = 4;
  SsnBench bench = make_ssn_testbench(spec);
  NewtonOptions nopts;
  nopts.max_voltage_step = 1e-4;
  nopts.max_iterations = 3;
  try {
    dc_operating_point(bench.circuit, 0.0, nopts);
    FAIL() << "expected SolverError";
  } catch (const support::SolverError& e) {
    const auto& diag = e.diagnostics();
    EXPECT_EQ(diag.where, "dc_operating_point");
    EXPECT_GT(diag.newton_iterations, 0u);
    bool saw_gmin = false, saw_source = false;
    for (const auto& stage : diag.homotopy_trail) {
      if (stage.name.rfind("gmin", 0) == 0) saw_gmin = true;
      if (stage.name.rfind("source", 0) == 0) saw_source = true;
    }
    EXPECT_TRUE(saw_gmin);
    EXPECT_TRUE(saw_source);
    EXPECT_TRUE(std::isfinite(diag.residual));
    EXPECT_GT(diag.residual, 0.0);
  }
}

TEST(Robustness, ZeroLengthRampRejected) {
  Circuit ckt;
  EXPECT_THROW(ckt.add_vsource("V1", ckt.node("a"), kGround,
                               ssnkit::waveform::Ramp{0.0, 1.0, 0.0, 0.0}),
               std::invalid_argument);
}

TEST(Robustness, RepeatSimulationIsIdempotent) {
  // Running the same circuit object twice must give identical results
  // (element history fully re-initialized each run).
  SsnBench bench = make_ssn_testbench({});
  TransientOptions opts;
  opts.t_stop = 0.1e-9;
  const auto r1 = run_transient(bench.circuit, opts);
  const auto r2 = run_transient(bench.circuit, opts);
  EXPECT_EQ(r1.point_count(), r2.point_count());
  EXPECT_DOUBLE_EQ(r1.final_value("vssi"), r2.final_value("vssi"));
}

TEST(Robustness, DcAtNonzeroTimeUsesSourceValue) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround,
                  ssnkit::waveform::Ramp{0.0, 2.0, 0.0, 1e-9});
  ckt.add_resistor("R1", a, kGround, 1e3);
  EXPECT_NEAR(dc_operating_point(ckt, 0.5e-9).voltage(ckt, "a"), 1.0, 1e-9);
  EXPECT_NEAR(dc_operating_point(ckt, 5e-9).voltage(ckt, "a"), 2.0, 1e-9);
}

}  // namespace
