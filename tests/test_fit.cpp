// Parameter extraction: the ASDM least-squares fit (the paper's Fig. 1
// claim) and the alpha-power calibration used by the baselines.
#include "devices/fit.hpp"
#include "process/technology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ssnkit::devices;
using ssnkit::process::GoldenKind;
using ssnkit::process::tech_180nm;
using ssnkit::process::tech_250nm;
using ssnkit::process::tech_350nm;

AsdmFitRegion region_for(double vdd) {
  AsdmFitRegion r;
  r.vd = vdd;
  r.vg_lo = 0.45 * vdd;
  r.vg_hi = vdd;
  r.vs_lo = 0.0;
  r.vs_hi = 0.45 * vdd;
  return r;
}

TEST(FitAsdm, RecoversExactAsdmDevice) {
  // Fitting the fit model itself must reproduce it to rounding error.
  const AsdmParams truth{.k = 6e-3, .lambda = 1.25, .vx = 0.62};
  AsdmModel golden(truth);
  const auto fit = fit_asdm(golden, region_for(1.8));
  EXPECT_NEAR(fit.params.k, truth.k, 1e-9);
  EXPECT_NEAR(fit.params.lambda, truth.lambda, 1e-6);
  EXPECT_NEAR(fit.params.vx, truth.vx, 1e-6);
  EXPECT_LT(fit.rms_error, 1e-12);
}

TEST(FitAsdm, AlphaPowerGoldenFitsWell) {
  // The paper's Fig. 1: the linear model captures the SSN region within a
  // few percent of the peak current.
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kAlphaPower);
  const auto fit = fit_asdm(*golden, region_for(tech.vdd));
  EXPECT_LT(fit.max_rel_error, 0.09);
  EXPECT_GT(fit.samples, 50u);
}

TEST(FitAsdm, LambdaExceedsOneWithBodyEffect) {
  // The body effect of the bouncing source makes lambda > 1 (paper:
  // "always greater than 1 in real processes").
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kAlphaPower);
  const auto fit = fit_asdm(*golden, region_for(tech.vdd));
  EXPECT_GT(fit.params.lambda, 1.05);
  EXPECT_LT(fit.params.lambda, 2.0);
}

TEST(FitAsdm, VxExceedsThreshold) {
  // The paper: V_x (0.61 V) is a fitted displacement, above the true
  // threshold (~0.5 V) because the tangent of a super-linear I(V) curve
  // intercepts the axis beyond V_T.
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kAlphaPower);
  const auto fit = fit_asdm(*golden, region_for(tech.vdd));
  EXPECT_GT(fit.params.vx, tech.alpha_power.vt0);
  EXPECT_LT(fit.params.vx, tech.vdd / 2.0);
}

TEST(FitAsdm, WorksOnBsimLiteGolden) {
  // The extraction is model-agnostic: a structurally different golden
  // surface still fits to a few percent.
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kBsimLite);
  const auto fit = fit_asdm(*golden, region_for(tech.vdd));
  EXPECT_LT(fit.max_rel_error, 0.10);
  EXPECT_GT(fit.params.lambda, 1.0);
}

TEST(FitAsdm, ScalesLinearlyWithWidth) {
  const auto tech = tech_180nm();
  const auto g1 = tech.make_golden(GoldenKind::kAlphaPower, 1.0);
  const auto g2 = tech.make_golden(GoldenKind::kAlphaPower, 2.0);
  const auto f1 = fit_asdm(*g1, region_for(tech.vdd));
  const auto f2 = fit_asdm(*g2, region_for(tech.vdd));
  EXPECT_NEAR(f2.params.k, 2.0 * f1.params.k, 1e-3 * f2.params.k);
  EXPECT_NEAR(f2.params.lambda, f1.params.lambda, 1e-6);
  EXPECT_NEAR(f2.params.vx, f1.params.vx, 1e-6);
}

TEST(FitAsdm, OtherProcessNodes) {
  // The paper reports similar quality for 0.25 um and 0.35 um processes.
  // Larger alpha (longer channel) means more I-V curvature, so the linear
  // fit's worst corner (near the region's low-current edge) grows a little.
  for (const auto& tech : {tech_250nm(), tech_350nm()}) {
    const auto golden = tech.make_golden(GoldenKind::kAlphaPower);
    const auto fit = fit_asdm(*golden, region_for(tech.vdd));
    EXPECT_LT(fit.max_rel_error, 0.13) << tech.name;
    EXPECT_GT(fit.params.lambda, 1.0) << tech.name;
  }
}

TEST(FitAsdm, RegionValidation) {
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kAlphaPower);
  AsdmFitRegion bad = region_for(tech.vdd);
  bad.vg_hi = bad.vg_lo;
  EXPECT_THROW(fit_asdm(*golden, bad), std::invalid_argument);
  AsdmFitRegion few = region_for(tech.vdd);
  few.n_vg = 1;
  EXPECT_THROW(fit_asdm(*golden, few), std::invalid_argument);
  EXPECT_THROW(fit_asdm(*golden, region_for(tech.vdd), 1.5), std::invalid_argument);
}

TEST(FitAsdm, NonConductingRegionThrows) {
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kAlphaPower);
  AsdmFitRegion off;
  off.vd = tech.vdd;
  off.vg_lo = 0.0;
  off.vg_hi = 0.2;  // below threshold everywhere
  off.vs_lo = 0.0;
  off.vs_hi = 0.1;
  EXPECT_THROW(fit_asdm(*golden, off), std::runtime_error);
}

TEST(FitAlphaPower, RecoversOwnParameters) {
  const auto tech = tech_180nm();
  AlphaPowerParams truth = tech.alpha_power;
  truth.gamma = 0.0;        // fit is at vs = 0; body effect not exercised
  truth.lambda_clm = 0.0;   // pure saturation law
  AlphaPowerModel golden(truth);
  const auto fit = fit_alpha_power(golden, tech.vdd, tech.alpha_power);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params.id0, truth.id0, 0.02 * truth.id0);
  EXPECT_NEAR(fit.params.vt0, truth.vt0, 0.05);
  EXPECT_NEAR(fit.params.alpha, truth.alpha, 0.1);
  EXPECT_LT(fit.max_rel_error, 0.02);
}

TEST(FitAlphaPower, FitsBsimLiteSurface) {
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kBsimLite);
  const auto fit = fit_alpha_power(*golden, tech.vdd, tech.alpha_power);
  EXPECT_LT(fit.max_rel_error, 0.05);
  // Velocity saturation pulls alpha well below 2.
  EXPECT_LT(fit.params.alpha, 1.8);
  EXPECT_GE(fit.params.alpha, 1.0);
}

TEST(FitAlphaPower, InputValidation) {
  const auto tech = tech_180nm();
  const auto golden = tech.make_golden(GoldenKind::kAlphaPower);
  EXPECT_THROW(fit_alpha_power(*golden, -1.0, tech.alpha_power),
               std::invalid_argument);
  EXPECT_THROW(fit_alpha_power(*golden, tech.vdd, tech.alpha_power, 3),
               std::invalid_argument);
}

}  // namespace
