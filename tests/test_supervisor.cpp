// The serve supervisor (--isolate=process): the respawn-backoff schedule,
// crash-correlation quarantine bookkeeping, the worker wire round trip
// (render_request / split_response_line), the deterministic shed-retry
// jitter, and — on POSIX — the live containment guarantees: a SIGKILLed
// worker degrades exactly its own request (SSN-E069), a drain stays bounded
// even when the in-flight worker is a non-cooperative hang, and (under the
// fault-injection preset) the watchdog and quarantine close the loop with
// SSN-E068/E070. See docs/SERVING.md's process-isolation section.
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "support/faultinject.hpp"

#if !defined(_WIN32)
#include <csignal>
#include <sys/types.h>
#endif

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace ssnkit;
using serve::CrashCorrelation;
using serve::Supervisor;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

class ResponseCollector {
 public:
  serve::ResponseSink sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
      cv_.notify_all();
    };
  }
  std::vector<std::string> await(std::size_t count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::seconds(60),
                 [&] { return lines_.size() >= count; });
    return lines_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

int count_lines_with(const std::vector<std::string>& lines,
                     const std::string& needle) {
  int n = 0;
  for (const auto& line : lines)
    if (line.find(needle) != std::string::npos) ++n;
  return n;
}

serve::ServerConfig process_config(int workers) {
  serve::ServerConfig config;
  config.threads = 2;
  config.queue_capacity = 64;
  config.cache_capacity = 64;
  config.isolate = serve::IsolateMode::kProcess;
  config.supervisor.workers = workers;
  return config;
}

// --- backoff schedule --------------------------------------------------------

TEST(SupervisorBackoff, ExponentialScheduleIsCapped) {
  EXPECT_DOUBLE_EQ(Supervisor::restart_backoff_ms(1, 25.0, 2000.0), 25.0);
  EXPECT_DOUBLE_EQ(Supervisor::restart_backoff_ms(2, 25.0, 2000.0), 50.0);
  EXPECT_DOUBLE_EQ(Supervisor::restart_backoff_ms(3, 25.0, 2000.0), 100.0);
  EXPECT_DOUBLE_EQ(Supervisor::restart_backoff_ms(4, 25.0, 2000.0), 200.0);
  EXPECT_DOUBLE_EQ(Supervisor::restart_backoff_ms(7, 25.0, 2000.0), 1600.0);
  // 25 * 2^7 = 3200 crosses the cap.
  EXPECT_DOUBLE_EQ(Supervisor::restart_backoff_ms(8, 25.0, 2000.0), 2000.0);
  // A long crash loop must not overflow past the cap.
  EXPECT_DOUBLE_EQ(Supervisor::restart_backoff_ms(500, 25.0, 2000.0), 2000.0);
}

// --- crash correlation -------------------------------------------------------

TEST(CrashCorrelation, QuarantinesOnTheNthDeathAndJournalsTheLine) {
  const std::string journal = temp_path("quarantine_unit.jsonl");
  std::remove(journal.c_str());
  const std::string line = R"({"id":"poison","cmd":"estimate","n":13})";
  CrashCorrelation cc(2, journal);
  EXPECT_FALSE(cc.quarantined(13));
  EXPECT_EQ(cc.record(13, line), 1);
  EXPECT_FALSE(cc.quarantined(13)) << "N-1 deaths must still retry";
  EXPECT_EQ(cc.quarantined_keys(), 0u);
  EXPECT_EQ(cc.record(13, line), 2);
  EXPECT_TRUE(cc.quarantined(13)) << "the Nth death trips the threshold";
  EXPECT_EQ(cc.quarantined_keys(), 1u);
  EXPECT_FALSE(cc.quarantined(14)) << "other keys are unaffected";
  // The journaled line is the raw request, directly replayable.
  std::ifstream in(journal);
  std::string journaled;
  ASSERT_TRUE(std::getline(in, journaled));
  EXPECT_EQ(journaled, line);
  // Deaths past the threshold do not journal the line again.
  EXPECT_EQ(cc.record(13, line), 3);
  std::string extra;
  std::ifstream in2(journal);
  int rows = 0;
  while (std::getline(in2, extra)) ++rows;
  EXPECT_EQ(rows, 1);
  std::remove(journal.c_str());
}

TEST(CrashCorrelation, EmptyJournalPathDisablesTheFileNotTheThreshold) {
  CrashCorrelation cc(1, "");
  EXPECT_EQ(cc.record(5, "{}"), 1);
  EXPECT_TRUE(cc.quarantined(5));
}

// --- worker wire round trip --------------------------------------------------

TEST(SupervisorWire, RenderRequestRoundTripsBitIdentically) {
  serve::ServeRequest r;
  r.id = "w1";
  r.cmd = "mc";
  r.tech = "250nm";
  r.package = "qfp";
  r.pads = 3;
  r.inductance = 3.1e-9;
  r.n_drivers = 13;
  r.rise_time = 0.137e-9;
  r.include_c = false;
  r.samples = 257;
  r.seed = 99;
  r.deadline_s = 1.25;
  const std::string wire = serve::render_request(r);
  const auto parsed = serve::parse_request(wire);
  ASSERT_TRUE(parsed.ok) << parsed.error << " <- " << wire;
  EXPECT_EQ(serve::render_request(parsed.request), wire);
  EXPECT_EQ(parsed.request.id, "w1");
  EXPECT_EQ(parsed.request.n_drivers, 13);
  EXPECT_DOUBLE_EQ(parsed.request.inductance, 3.1e-9);
  EXPECT_DOUBLE_EQ(parsed.request.deadline_s, 1.25);
  EXPECT_FALSE(parsed.request.include_c);
  // The same request hashes to the same cache key across the process hop —
  // that is what makes crash correlation (and caching) well-defined.
  EXPECT_EQ(serve::cache_key(r), serve::cache_key(parsed.request));
}

TEST(SupervisorWire, SplitResponseLineRecoversFragmentAndCode) {
  serve::ResponseView v;
  const std::string ok =
      serve::render_ok("a", R"({"v_max":0.25,"unit":"V"})", false, 42);
  ASSERT_TRUE(serve::split_response_line(ok, v));
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.fragment, R"({"v_max":0.25,"unit":"V"})");
  EXPECT_EQ(v.code, "");

  const std::string err = serve::render_error("a", "SSN-E065", "boom");
  ASSERT_TRUE(serve::split_response_line(err, v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.code, "SSN-E065");
  EXPECT_FALSE(v.cancelled);

  const std::string cancelled =
      serve::render_error("a", "SSN-E066", "deadline expired");
  ASSERT_TRUE(serve::split_response_line(cancelled, v));
  EXPECT_TRUE(v.cancelled);

  EXPECT_FALSE(serve::split_response_line("not json at all", v));
  EXPECT_FALSE(serve::split_response_line("", v));
}

// --- shed-retry jitter -------------------------------------------------------

TEST(SupervisorJitter, DeterministicAndSpreadOverHalfToThreeHalves) {
  bool saw_distinct = false;
  double first = -1.0;
  for (int i = 0; i < 100; ++i) {
    std::ostringstream id;
    id << "client-" << i;
    const double v = serve::jittered_retry_after_ms(100.0, id.str(), 7);
    EXPECT_GE(v, 50.0) << id.str();
    EXPECT_LT(v, 150.0) << id.str();
    EXPECT_DOUBLE_EQ(v, serve::jittered_retry_after_ms(100.0, id.str(), 7))
        << "jitter must be a pure function of (id, seed)";
    if (first < 0.0) first = v;
    else if (v != first) saw_distinct = true;
  }
  EXPECT_TRUE(saw_distinct) << "jitter never spread the herd";
  // A different seed re-shuffles the same id.
  bool seed_matters = false;
  for (int i = 0; i < 100 && !seed_matters; ++i) {
    std::ostringstream id;
    id << "client-" << i;
    seed_matters = serve::jittered_retry_after_ms(100.0, id.str(), 7) !=
                   serve::jittered_retry_after_ms(100.0, id.str(), 8);
  }
  EXPECT_TRUE(seed_matters);
}

#if !defined(_WIN32)

// --- live process isolation --------------------------------------------------

TEST(SupervisorProcess, ComputesAndCachesAcrossTheProcessBoundary) {
  serve::Server server(process_config(2));
  ResponseCollector rc;
  server.submit_line(R"({"id":"p1","cmd":"estimate","n":6,"tr":1e-10})",
                     rc.sink());
  rc.await(1);
  server.submit_line(R"({"id":"p2","cmd":"estimate","n":6,"tr":1e-10})",
                     rc.sink());
  const auto lines = rc.await(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(count_lines_with(lines, "\"ok\":true"), 2);
  EXPECT_EQ(count_lines_with(lines, "\"cached\":true"), 1);
  ASSERT_NE(server.supervisor(), nullptr);
  EXPECT_EQ(server.supervisor()->worker_pids().size(), 2u);
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST(SupervisorProcess, Kill9MidRequestAnswersExactlyOneE069) {
  // One worker so the victim is unambiguous; a long sweep keeps it busy.
  serve::ServerConfig config = process_config(1);
  config.cache_capacity = 0;
  serve::Server server(config);
  ResponseCollector rc;
  server.submit_line(
      R"({"id":"victim","cmd":"sweep-n","max_n":32,"deadline":30})",
      rc.sink());
  // Wait until the worker provably holds the request (admission precedes
  // the socketpair write — killing an idle worker would just be retried).
  const auto t0 = std::chrono::steady_clock::now();
  while (server.supervisor()->busy_workers() == 0 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(server.supervisor()->busy_workers(), 1u);
  ASSERT_EQ(server.stats().responded, 0u) << "sweep finished before the kill";
  const auto pids = server.supervisor()->worker_pids();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_EQ(::kill(pid_t(pids[0]), SIGKILL), 0);
  const auto lines = rc.await(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(count_lines_with(lines, "SSN-E069"), 1)
      << "the killed worker's request must fail typed exactly once: "
      << lines[0];
  // The daemon is unharmed: the slot respawns (backoff ~25 ms) and serves.
  server.submit_line(R"({"id":"after","cmd":"estimate","n":4,"tr":1e-10})",
                     rc.sink());
  const auto after = rc.await(2);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(count_lines_with(after, "\"id\":\"after\",\"ok\":true"), 1);
  EXPECT_EQ(server.stats().worker_crashes, 1u);
  EXPECT_EQ(server.supervisor()->counters().crashes, 1u);
}

TEST(SupervisorProcess, DrainStaysBoundedWhenTheWorkerIsStopped) {
  // Regression for the drain-vs-hang hole: SIGSTOP freezes the worker into
  // a perfect non-cooperative hang (it will never poll anything again).
  // finish() must still return promptly because the drain deadline routes
  // through kill_inflight() rather than waiting on cooperation.
  serve::ServerConfig config = process_config(1);
  config.threads = 1;
  config.cache_capacity = 0;
  config.drain_deadline_s = 0.2;
  ResponseCollector rc;
  serve::ServerStats stats;
  {
    serve::Server server(config);
    server.submit_line(R"({"id":"frozen","cmd":"sweep-n","max_n":32})",
                       rc.sink());
    const auto t0 = std::chrono::steady_clock::now();
    while (server.supervisor()->busy_workers() == 0 &&
           std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.supervisor()->busy_workers(), 1u);
    ASSERT_EQ(server.stats().responded, 0u);
    const auto pids = server.supervisor()->worker_pids();
    ASSERT_EQ(pids.size(), 1u);
    ASSERT_EQ(::kill(pid_t(pids[0]), SIGSTOP), 0);
    const auto drain0 = std::chrono::steady_clock::now();
    server.finish();
    const double drain_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      drain0)
            .count();
    EXPECT_LT(drain_s, 5.0) << "drain hung on a stopped worker";
    stats = server.stats();
  }
  const auto lines = rc.await(1);
  ASSERT_EQ(lines.size(), 1u) << "the frozen request went unanswered";
  EXPECT_EQ(count_lines_with(lines, "\"ok\":false"), 1) << lines[0];
  EXPECT_EQ(stats.responded, 1u);
}

// --- injected worker faults (fault-injection preset only) --------------------

TEST(SupervisorFaultInjection, PoisonKeyIsQuarantinedOnTheNthCrash) {
  if (!support::kFaultInjectionEnabled)
    GTEST_SKIP() << "needs -DSSNKIT_FAULT_INJECTION=ON (fault-injection preset)";
  // Workers fork from this process, inheriting the armed plan; only the
  // n=13 design point crashes (the worker scopes requests by n_drivers).
  auto& injector = support::FaultInjector::instance();
  support::FaultPlan plan;
  plan.probability = 1.0;
  plan.only_sample = 13;
  injector.arm(support::FaultKind::kWorkerCrash, plan);

  const std::string journal = temp_path("quarantine_e2e.jsonl");
  std::remove(journal.c_str());
  serve::ServerConfig config = process_config(2);
  config.cache_capacity = 0;
  config.supervisor.quarantine_after = 2;
  config.supervisor.quarantine_file = journal;
  serve::Server server(config);
  ResponseCollector rc;
  const char* poison = R"({"id":"q%d","cmd":"estimate","n":13,"tr":1e-10})";
  for (int i = 0; i < 3; ++i) {
    char line[96];
    std::snprintf(line, sizeof line, poison, i);
    server.submit_line(line, rc.sink());
    rc.await(std::size_t(i) + 1);  // keep the deaths strictly ordered
  }
  const auto lines = rc.await(3);
  injector.disarm_all();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(count_lines_with(lines, "SSN-E069"), 2)
      << "the first N-1 crashes must still be retried";
  EXPECT_EQ(count_lines_with(lines, "SSN-E070"), 1)
      << "the Nth crash must quarantine the key";
  EXPECT_EQ(server.supervisor()->correlation().quarantined_keys(), 1u);
  // A healthy design point keeps serving.
  server.submit_line(R"({"id":"fine","cmd":"estimate","n":8,"tr":1e-10})",
                     rc.sink());
  EXPECT_EQ(count_lines_with(rc.await(4), "\"id\":\"fine\",\"ok\":true"), 1);
  // The journal holds the raw poison line, ready for offline replay.
  std::ifstream in(journal);
  std::string journaled;
  ASSERT_TRUE(std::getline(in, journaled)) << "quarantine journal is empty";
  EXPECT_NE(journaled.find("\"n\":13"), std::string::npos) << journaled;
  EXPECT_TRUE(serve::parse_request(journaled).ok) << journaled;
  std::remove(journal.c_str());
}

TEST(SupervisorFaultInjection, WatchdogKillsANonCooperativeHangWithE068) {
  if (!support::kFaultInjectionEnabled)
    GTEST_SKIP() << "needs -DSSNKIT_FAULT_INJECTION=ON (fault-injection preset)";
  auto& injector = support::FaultInjector::instance();
  support::FaultPlan plan;
  plan.probability = 1.0;
  plan.only_sample = 11;
  injector.arm(support::FaultKind::kWorkerHang, plan);

  serve::ServerConfig config = process_config(1);
  config.cache_capacity = 0;
  config.supervisor.grace_s = 0.2;
  serve::Server server(config);
  ResponseCollector rc;
  server.submit_line(
      R"({"id":"hung","cmd":"estimate","n":11,"tr":1e-10,"deadline":0.2})",
      rc.sink());
  const auto lines = rc.await(1);
  injector.disarm_all();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(count_lines_with(lines, "SSN-E068"), 1) << lines[0];
  EXPECT_EQ(server.stats().worker_timeouts, 1u);
  EXPECT_EQ(server.supervisor()->counters().timeouts, 1u);
  // The hung slot respawned; the daemon keeps serving.
  server.submit_line(R"({"id":"next","cmd":"estimate","n":5,"tr":1e-10})",
                     rc.sink());
  EXPECT_EQ(count_lines_with(rc.await(2), "\"id\":\"next\",\"ok\":true"), 1);
}

TEST(SupervisorFaultInjection, RlimitOomDiesTypedNotSilent) {
  if (!support::kFaultInjectionEnabled)
    GTEST_SKIP() << "needs -DSSNKIT_FAULT_INJECTION=ON (fault-injection preset)";
  auto& injector = support::FaultInjector::instance();
  support::FaultPlan plan;
  plan.probability = 1.0;
  plan.only_sample = 12;
  injector.arm(support::FaultKind::kWorkerOom, plan);

  serve::ServerConfig config = process_config(1);
  config.cache_capacity = 0;
  config.supervisor.mem_limit_mb = 256;
  serve::Server server(config);
  ResponseCollector rc;
  server.submit_line(R"({"id":"oom","cmd":"estimate","n":12,"tr":1e-10})",
                     rc.sink());
  const auto lines = rc.await(1);
  injector.disarm_all();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(count_lines_with(lines, "SSN-E069"), 1) << lines[0];
  EXPECT_EQ(server.stats().worker_crashes, 1u);
}

#endif  // !defined(_WIN32)

}  // namespace
