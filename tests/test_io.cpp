// Output helpers: CSV, text tables, ASCII charts, gnuplot scripts.
#include "io/ascii_chart.hpp"
#include "io/csv.hpp"
#include "io/gnuplot.hpp"
#include "io/table.hpp"
#include "waveform/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace ssnkit::io;
using ssnkit::waveform::Waveform;
using ssnkit::waveform::ascii_chart;
using ssnkit::waveform::write_gnuplot_script;
using ssnkit::waveform::write_waveforms_csv;

TEST(Csv, HeaderAndRows) {
  CsvWriter csv({"n", "vmax"});
  csv.add_row({1.0, 0.25});
  csv.add_row({2.0, 0.4});
  std::ostringstream os;
  csv.write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("n,vmax\n"), std::string::npos);
  EXPECT_NE(text.find("1,0.25"), std::string::npos);
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, WidthValidation) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(Csv, WaveformDump) {
  const Waveform w({0.0, 1.0}, {0.5, 1.5});
  std::ostringstream os;
  write_waveforms_csv(os, {"v"}, {&w});
  EXPECT_NE(os.str().find("time,v"), std::string::npos);
  EXPECT_NE(os.str().find("0,0.5"), std::string::npos);
  EXPECT_THROW(write_waveforms_csv(os, {"a", "b"}, {&w}), std::invalid_argument);
}

TEST(Table, AlignedOutput) {
  TextTable t({"case", "v_max"});
  t.add_row({std::string("over"), std::string("0.81")});
  t.add_row({0.5, 0.123456789}, 4);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| case"), std::string::npos);
  EXPECT_NE(s.find("0.1235"), std::string::npos);
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::invalid_argument);
}

TEST(Table, SiFormat) {
  EXPECT_EQ(si_format(5e-9), "5n");
  EXPECT_EQ(si_format(1e-12), "1p");
  EXPECT_EQ(si_format(1.8e10, 3), "18G");
  EXPECT_EQ(si_format(0.0), "0");
  EXPECT_EQ(si_format(-3e-3), "-3m");
  EXPECT_EQ(si_format(42.0), "42");
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  const auto w = Waveform::from_function(
      [](double t) { return t * (1.0 - t); }, 0.0, 1.0, 64);
  ChartOptions opts;
  opts.title = "parabola";
  opts.y_label = "v";
  const std::string chart = ascii_chart(w, opts);
  EXPECT_NE(chart.find("parabola"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesDistinctGlyphs) {
  const auto a = Waveform::from_function([](double t) { return t; }, 0.0, 1.0, 32);
  const auto b =
      Waveform::from_function([](double t) { return 1.0 - t; }, 0.0, 1.0, 32);
  const std::string chart = ascii_chart({&a, &b}, {"up", "down"});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find("up"), std::string::npos);
  EXPECT_NE(chart.find("down"), std::string::npos);
}

TEST(AsciiChart, XyChartAndValidation) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<std::vector<double>> ys{{0.1, 0.2, 0.3}};
  EXPECT_NO_THROW(ascii_xy_chart(x, ys, {"series"}));
  EXPECT_THROW(ascii_xy_chart(x, {{0.1}}, {"bad"}), std::invalid_argument);
  EXPECT_THROW(ascii_chart(std::vector<const Waveform*>{}, std::vector<std::string>{}),
               std::invalid_argument);
}

TEST(Gnuplot, ScriptContainsDataAndTitles) {
  const Waveform w({0.0, 1.0}, {0.0, 2.0});
  std::ostringstream os;
  GnuplotOptions opts;
  opts.title = "ssn";
  write_gnuplot_script(os, {&w}, {"vssi"}, opts);
  const std::string s = os.str();
  EXPECT_NE(s.find("set title 'ssn'"), std::string::npos);
  EXPECT_NE(s.find("with lines title 'vssi'"), std::string::npos);
  EXPECT_NE(s.find("\ne\n"), std::string::npos);
}

TEST(Gnuplot, XyScript) {
  std::ostringstream os;
  write_gnuplot_xy_script(os, {1.0, 2.0}, {{0.1, 0.2}}, {"vmax"});
  EXPECT_NE(os.str().find("linespoints"), std::string::npos);
  EXPECT_THROW(
      write_gnuplot_xy_script(os, {1.0}, {{0.1, 0.2}}, {"bad"}),
      std::invalid_argument);
}

}  // namespace
