// The serve daemon: JSON wire parser, request validation, the result cache
// (LRU + crash-safe spill + torn-record tolerance), and the server core's
// robustness contract — bounded admission (SSN-E064), per-request deadlines
// (SSN-E066), failure isolation (SSN-E065), and the every-accepted-request-
// gets-exactly-one-response drain guarantee. See docs/SERVING.md.
#include "serve/cache.hpp"
#include "serve/handlers.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "support/atomic_file.hpp"
#include "support/faultinject.hpp"
#include "support/journal.hpp"

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#endif

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace ssnkit;
using serve::parse_json;
using serve::parse_request;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// --- JSON parser -------------------------------------------------------------

TEST(ServeJson, ParsesScalarsObjectsAndArrays) {
  const auto p = parse_json(
      R"({"a":1.5,"b":"x\n\"y\"","c":[true,false,null],"d":{"e":-2e-3}})");
  ASSERT_TRUE(p.ok) << p.error;
  ASSERT_TRUE(p.value.is_object());
  ASSERT_NE(p.value.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(p.value.find("a")->number, 1.5);
  EXPECT_EQ(p.value.find("b")->string, "x\n\"y\"");
  ASSERT_EQ(p.value.find("c")->elements.size(), 3u);
  EXPECT_TRUE(p.value.find("c")->elements[0].boolean);
  EXPECT_EQ(p.value.find("c")->elements[2].kind, serve::JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(p.value.find("d")->find("e")->number, -2e-3);
}

TEST(ServeJson, ParsesUnicodeEscapes) {
  const auto p = parse_json(R"({"s":"\u0041\u00e9"})");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.value.find("s")->string, "A\xc3\xa9");
}

TEST(ServeJson, RejectsMalformedInput) {
  for (const char* bad : {
           "",                      // empty
           "{",                     // unterminated object
           "{\"a\":1,}",            // trailing comma
           "{\"a\":1} x",           // trailing garbage
           "{\"a\":1,\"a\":2}",     // duplicate key
           "{\"a\":01}",            // leading zero
           "{\"a\":+1}",            // leading plus
           "{\"a\":.5}",            // bare fraction
           "{\"a\":\"\x01\"}",      // raw control char in string
           "{\"a\":\"\\ud800\"}",   // lone surrogate
           "{\"a\":\"\\q\"}",       // unknown escape
           "[1, 2",                 // unterminated array
           "nul",                   // truncated literal
       }) {
    const auto p = parse_json(bad);
    EXPECT_FALSE(p.ok) << "accepted: " << bad;
    EXPECT_FALSE(p.error.empty()) << bad;
  }
}

TEST(ServeJson, EnforcesDepthAndSizeBounds) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "[";
  EXPECT_FALSE(parse_json(deep).ok);
  EXPECT_FALSE(parse_json("[1]", /*max_depth=*/16, /*max_bytes=*/2).ok);
  EXPECT_TRUE(parse_json("[[[1]]]", /*max_depth=*/3).ok);
  EXPECT_FALSE(parse_json("[[[[1]]]]", /*max_depth=*/3).ok);
}

TEST(ServeJson, EscapeAndNumberRendering) {
  EXPECT_EQ(serve::json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(serve::json_number(0.5), "0.5");
  // Non-finite doubles have no JSON representation. The strict renderer
  // refuses them with a typed error (the server maps it onto SSN-E067);
  // only the explicit _or_null variant may degrade them, and it says so.
  EXPECT_THROW(serve::json_number(std::numeric_limits<double>::quiet_NaN()),
               serve::NonFiniteJsonError);
  EXPECT_THROW(serve::json_number(std::numeric_limits<double>::infinity()),
               serve::NonFiniteJsonError);
  EXPECT_THROW(serve::json_number(-std::numeric_limits<double>::infinity()),
               serve::NonFiniteJsonError);
  EXPECT_EQ(serve::json_number_or_null(
                std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(serve::json_number_or_null(0.5), "0.5");
  // Round-trip precision: the rendered number reparses to the same bits.
  const double v = 0.1 + 0.2;
  std::string array = serve::json_number(v);
  array.insert(array.begin(), '[');
  array.push_back(']');
  const auto p = parse_json(array);
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(support::double_bits(p.value.elements[0].number),
            support::double_bits(v));
}

// --- protocol ----------------------------------------------------------------

TEST(ServeProtocol, ParsesFullRequestAndDefaults) {
  const auto full = parse_request(
      R"({"id":"r1","cmd":"mc","tech":"250nm","golden":"bsim","package":"qfp",)"
      R"("pads":4,"l":5e-9,"c":1e-12,"n":16,"tr":2e-10,"include_c":false,)"
      R"("samples":5000,"seed":7,"deadline":2.5})");
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_EQ(full.request.id, "r1");
  EXPECT_EQ(full.request.cmd, "mc");
  EXPECT_EQ(full.request.tech, "250nm");
  EXPECT_EQ(full.request.golden, "bsim");
  EXPECT_EQ(full.request.pads, 4);
  EXPECT_DOUBLE_EQ(full.request.inductance, 5e-9);
  EXPECT_DOUBLE_EQ(full.request.capacitance, 1e-12);
  EXPECT_EQ(full.request.n_drivers, 16);
  EXPECT_FALSE(full.request.include_c);
  EXPECT_EQ(full.request.samples, 5000);
  EXPECT_DOUBLE_EQ(full.request.deadline_s, 2.5);

  const auto minimal = parse_request(R"({"cmd":"estimate"})");
  ASSERT_TRUE(minimal.ok) << minimal.error;
  EXPECT_EQ(minimal.request.tech, "180nm");
  EXPECT_EQ(minimal.request.n_drivers, 8);
  EXPECT_TRUE(minimal.request.include_c);
  EXPECT_LT(minimal.request.inductance, 0.0);  // "use the package default"
}

TEST(ServeProtocol, RejectsBadRequestsWithRecoveredId) {
  for (const char* bad : {
           "not json at all",
           "[1,2,3]",                                  // not an object
           R"({"id":"x"})",                            // missing cmd
           R"({"id":"x","cmd":"explode"})",            // unknown cmd
           R"({"id":"x","cmd":"mc","bogus":1})",       // unknown key
           R"({"id":"x","cmd":"mc","n":0})",           // below range
           R"({"id":"x","cmd":"mc","n":257})",         // above range
           R"({"id":"x","cmd":"mc","samples":300000})",
           R"({"id":"x","cmd":"mc","tr":"fast"})",     // wrong type
           R"({"id":"x","cmd":"mc","tech":"90nm"})",   // unknown tech
           R"({"id":"x","cmd":"mc","package":"bga"})", // unknown package
           R"({"id":"x","cmd":"mc","golden":"spice"})",
           R"({"id":1,"cmd":"mc"})",                   // id must be a string
       }) {
    const auto p = parse_request(bad);
    EXPECT_FALSE(p.ok) << "accepted: " << bad;
    EXPECT_FALSE(p.error.empty()) << bad;
  }
  // The id still comes back when the line parsed far enough to hold one, so
  // the SSN-E063 response stays correlatable.
  const auto p = parse_request(R"({"id":"find-me","cmd":"nope"})");
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.id, "find-me");
}

TEST(ServeProtocol, CacheKeyIgnoresIdAndDeadlineOnly) {
  const auto base = parse_request(R"({"id":"a","cmd":"estimate","n":8})");
  const auto same = parse_request(
      R"({"id":"b","cmd":"estimate","n":8,"deadline":9})");
  const auto other = parse_request(R"({"id":"a","cmd":"estimate","n":9})");
  ASSERT_TRUE(base.ok && same.ok && other.ok);
  EXPECT_EQ(serve::cache_key(base.request), serve::cache_key(same.request));
  EXPECT_NE(serve::cache_key(base.request), serve::cache_key(other.request));
  // The canonical string distinguishes bit-different doubles exactly.
  auto tweaked = base.request;
  tweaked.rise_time = std::nextafter(tweaked.rise_time, 1.0);
  EXPECT_NE(serve::cache_key_string(base.request),
            serve::cache_key_string(tweaked));
}

TEST(ServeProtocol, RendersResponsesAsSingleJsonLines) {
  const std::string ok = serve::render_ok("r1", "{\"x\":1}", true, 42);
  EXPECT_TRUE(parse_json(ok).ok) << ok;
  EXPECT_NE(ok.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(ok.find("\"result\":{\"x\":1}"), std::string::npos);

  const std::string err =
      serve::render_error("r\"2", "SSN-E063", "bad \"thing\"");
  EXPECT_TRUE(parse_json(err).ok) << err;
  EXPECT_NE(err.find("SSN-E063"), std::string::npos);

  const std::string shed = serve::render_overloaded("r3", 50.0);
  EXPECT_TRUE(parse_json(shed).ok) << shed;
  EXPECT_NE(shed.find("SSN-E064"), std::string::npos);
  EXPECT_NE(shed.find("\"retry_after_ms\":50"), std::string::npos);

  // Stop kinds map to SSN-E066 and are retryable; real failures to E065.
  const std::string cancelled = serve::render_solver_error(
      "r4", support::SolverError(support::SolverErrorKind::kDeadlineExpired,
                                 "too slow"));
  EXPECT_TRUE(parse_json(cancelled).ok) << cancelled;
  EXPECT_NE(cancelled.find("SSN-E066"), std::string::npos);
  EXPECT_NE(cancelled.find("\"retryable\":true"), std::string::npos);
  const std::string failed = serve::render_solver_error(
      "r5", support::SolverError(support::SolverErrorKind::kSingularMatrix,
                                 "singular"));
  EXPECT_TRUE(parse_json(failed).ok) << failed;
  EXPECT_NE(failed.find("SSN-E065"), std::string::npos);

  serve::ServerStats stats;
  stats.accepted = 3;
  const std::string line = serve::render_stats(stats);
  ASSERT_TRUE(parse_json(line).ok) << line;
  EXPECT_DOUBLE_EQ(parse_json(line).value.find("accepted")->number, 3.0);
}

// --- result cache ------------------------------------------------------------

TEST(ServeCache, LruEvictsLeastRecentlyUsed) {
  serve::ResultCache cache(2);
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_EQ(cache.get(1).value_or(""), "one");  // bumps 1 over 2
  cache.put(3, "three");                        // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value_or(""), "one");
  EXPECT_EQ(cache.get(3).value_or(""), "three");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ServeCache, ZeroCapacityDisablesAndNewlinePayloadsRejected) {
  serve::ResultCache off(0);
  off.put(1, "x");
  EXPECT_FALSE(off.get(1).has_value());
  EXPECT_EQ(off.size(), 0u);

  serve::ResultCache cache(4);
  cache.put(1, "torn\npayload");  // would corrupt the line-oriented spill
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ServeCache, SaveLoadRoundTripAndExistingEntriesWin) {
  const std::string path = temp_path("serve_cache_roundtrip");
  std::remove(path.c_str());
  {
    serve::ResultCache cache(8);
    cache.put(10, "{\"v\":1}");
    cache.put(11, "{\"v\":2}");
    cache.save(path);
  }
  serve::ResultCache warmed(8);
  warmed.put(11, "{\"v\":99}");  // pre-existing entry must not be clobbered
  const auto warnings = warmed.load(path);
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(warmed.get(10).value_or(""), "{\"v\":1}");
  EXPECT_EQ(warmed.get(11).value_or(""), "{\"v\":99}");
  EXPECT_EQ(warmed.stats().warmed, 1u);
  std::remove(path.c_str());
}

TEST(ServeCache, MissingSpillIsSilentColdStart) {
  serve::ResultCache cache(4);
  EXPECT_TRUE(cache.load(temp_path("no_such_spill")).empty());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ServeCache, TornTrailingRecordDiscardedWithWarning) {
  const std::string path = temp_path("serve_cache_torn");
  {
    serve::ResultCache cache(8);
    cache.put(10, "{\"v\":1}");
    cache.put(11, "{\"v\":2}");
    cache.save(path);
  }
  // Tear the file mid-record, as a crash mid-write would.
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string body = ss.str();
  body.resize(body.size() - 9);  // chop the trailing newline + record tail
  std::ofstream(path, std::ios::binary | std::ios::trunc) << body;

  serve::ResultCache warmed(8);
  const auto warnings = warmed.load(path);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("SSN-W067"), std::string::npos) << warnings[0];
  EXPECT_EQ(warmed.size(), 1u);  // the intact record still loads
  EXPECT_EQ(warmed.stats().discarded_on_load, 1u);
  std::remove(path.c_str());
}

TEST(ServeCache, ChecksumMismatchDiscardsOnlyTheBadEntry) {
  const std::string path = temp_path("serve_cache_bitrot");
  {
    serve::ResultCache cache(8);
    cache.put(10, "{\"v\":1}");
    cache.put(11, "{\"v\":2}");
    cache.save(path);
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string body = ss.str();
  // Flip one payload byte ('1' -> '7') without touching the stored checksum.
  const std::size_t pos = body.find("{\"v\":1}");
  ASSERT_NE(pos, std::string::npos);
  body[pos + 5] = '7';
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc) << body;

  serve::ResultCache warmed(8);
  const auto warnings = warmed.load(path);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("SSN-W067"), std::string::npos);
  EXPECT_EQ(warmed.size(), 1u);
  EXPECT_EQ(warmed.get(11).value_or(""), "{\"v\":2}");
  std::remove(path.c_str());
}

TEST(ServeCache, BadHeaderAbandonsFileWithWarning) {
  const std::string path = temp_path("serve_cache_header");
  support::write_file_atomic(path, "not a cache file\n");
  serve::ResultCache warmed(8);
  const auto warnings = warmed.load(path);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("SSN-W067"), std::string::npos);
  EXPECT_EQ(warmed.size(), 0u);
  std::remove(path.c_str());
}

// --- server core -------------------------------------------------------------

/// Collects responses from worker threads and lets a test await a count.
class ResponseCollector {
 public:
  serve::ResponseSink sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
      cv_.notify_all();
    };
  }
  std::vector<std::string> await(std::size_t count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::seconds(60),
                 [&] { return lines_.size() >= count; });
    return lines_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

serve::ServerConfig quick_config() {
  serve::ServerConfig config;
  config.threads = 2;
  config.queue_capacity = 64;
  config.cache_capacity = 64;
  return config;
}

bool any_line_contains(const std::vector<std::string>& lines,
                       const std::string& needle) {
  for (const auto& line : lines)
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

TEST(ServeServer, AnswersComputesAndCaches) {
  serve::Server server(quick_config());
  ResponseCollector rc;
  const std::string req = R"({"id":"a","cmd":"estimate","n":4,"tr":1e-10})";
  server.submit_line(req, rc.sink());
  rc.await(1);
  server.submit_line(R"({"id":"b","cmd":"estimate","n":4,"tr":1e-10})",
                     rc.sink());
  const auto lines = rc.await(2);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) EXPECT_TRUE(parse_json(line).ok) << line;
  EXPECT_TRUE(any_line_contains(lines, "\"id\":\"a\",\"ok\":true"));
  EXPECT_TRUE(any_line_contains(lines, "\"id\":\"b\",\"ok\":true,\"cached\":true"));
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(ServeServer, MalformedLineAnswersE063Immediately) {
  serve::Server server(quick_config());
  ResponseCollector rc;
  server.submit_line(R"({"id":"bad","cmd":"nope"})", rc.sink());
  const auto lines = rc.await(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("SSN-E063"), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":\"bad\""), std::string::npos);
  EXPECT_EQ(server.stats().malformed, 1u);
  EXPECT_EQ(server.stats().accepted, 0u);
}

TEST(ServeServer, DrainingShedsNewRequestsWithE064) {
  serve::Server server(quick_config());
  server.begin_drain();
  ResponseCollector rc;
  server.submit_line(R"({"id":"late","cmd":"estimate"})", rc.sink());
  const auto lines = rc.await(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("SSN-E064"), std::string::npos);
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(ServeServer, OverloadShedsWithE064AndBoundedQueue) {
  // One worker, a one-slot queue, and a slow request pinning the worker:
  // the second submission queues, the third must be shed.
  serve::ServerConfig config;
  config.threads = 1;
  config.queue_capacity = 1;
  config.cache_capacity = 0;
  serve::Server server(config);
  ResponseCollector rc;
  // Slow enough to straddle the later submissions, bounded by its own
  // deadline so the test never waits on the full sweep.
  server.submit_line(
      R"({"id":"slow","cmd":"sweep-n","max_n":32,"deadline":0.5})", rc.sink());
  // Give the dispatcher time to claim the slow request off the queue.
  const auto t0 = std::chrono::steady_clock::now();
  while (server.stats().accepted < 1 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10))
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.submit_line(R"({"id":"queued","cmd":"estimate","n":2})", rc.sink());
  server.submit_line(R"({"id":"shed","cmd":"estimate","n":3})", rc.sink());
  const auto lines = rc.await(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(any_line_contains(lines, "\"id\":\"shed\""));
  EXPECT_TRUE(any_line_contains(lines, "SSN-E064"));
  EXPECT_TRUE(any_line_contains(lines, "\"retry_after_ms\""));
  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.accepted, 2u);
}

TEST(ServeServer, PerRequestDeadlineCancelsOnlyThatRequest) {
  serve::Server server(quick_config());
  ResponseCollector rc;
  server.submit_line(
      R"({"id":"doomed","cmd":"sweep-n","max_n":32,"deadline":0.05})",
      rc.sink());
  server.submit_line(R"({"id":"fine","cmd":"estimate","n":4})", rc.sink());
  const auto lines = rc.await(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(any_line_contains(lines, "SSN-E066"));
  EXPECT_TRUE(any_line_contains(lines, "\"id\":\"fine\",\"ok\":true"));
  // The daemon is unharmed: a follow-up request still answers.
  server.submit_line(R"({"id":"after","cmd":"estimate","n":5})", rc.sink());
  EXPECT_TRUE(
      any_line_contains(rc.await(3), "\"id\":\"after\",\"ok\":true"));
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(ServeServer, DrainAnswersEveryAcceptedRequest) {
  serve::ServerConfig config;
  config.threads = 1;
  config.cache_capacity = 0;
  config.drain_deadline_s = 0.05;  // force the expired-drain E066 path
  ResponseCollector rc;
  {
    serve::Server server(config);
    for (int i = 0; i < 6; ++i) {
      std::ostringstream req;
      req << "{\"id\":\"d" << i << "\",\"cmd\":\"sweep-n\",\"max_n\":32}";
      server.submit_line(req.str(), rc.sink());
    }
    server.finish();
    const auto stats = server.stats();
    EXPECT_EQ(stats.accepted, 6u);
    EXPECT_EQ(stats.responded, 6u) << "an accepted request went unanswered";
    EXPECT_GT(stats.cancelled, 0u) << "expected the drain to cancel work";
  }
  const auto lines = rc.await(6);
  ASSERT_EQ(lines.size(), 6u);
  for (const auto& line : lines) EXPECT_TRUE(parse_json(line).ok) << line;
  EXPECT_TRUE(any_line_contains(lines, "SSN-E066"));
}

TEST(ServeServer, CacheSpillWarmsARestartedServer) {
  const std::string path = temp_path("serve_server_spill");
  std::remove(path.c_str());
  serve::ServerConfig config = quick_config();
  config.cache_file = path;
  const std::string req = R"({"id":"w1","cmd":"estimate","n":6,"tr":1e-10})";
  {
    serve::Server server(config);
    ResponseCollector rc;
    server.submit_line(req, rc.sink());
    rc.await(1);
    server.finish();  // drain-time spill
  }
  serve::Server warmed(config);
  EXPECT_TRUE(warmed.warm_warnings().empty());
  ResponseCollector rc;
  warmed.submit_line(R"({"id":"w2","cmd":"estimate","n":6,"tr":1e-10})",
                     rc.sink());
  const auto lines = rc.await(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"cached\":true"), std::string::npos) << lines[0];
  EXPECT_EQ(warmed.stats().cache_hits, 1u);
  std::remove(path.c_str());
}

TEST(ServeServer, CorruptSpillSurfacesW067AndStillStarts) {
  const std::string path = temp_path("serve_server_badspill");
  support::write_file_atomic(path, "garbage header\n");
  serve::ServerConfig config = quick_config();
  config.cache_file = path;
  serve::Server server(config);
  ASSERT_EQ(server.warm_warnings().size(), 1u);
  EXPECT_NE(server.warm_warnings()[0].find("SSN-W067"), std::string::npos);
  ResponseCollector rc;
  server.submit_line(R"({"id":"ok","cmd":"estimate","n":4})", rc.sink());
  EXPECT_TRUE(any_line_contains(rc.await(1), "\"ok\":true"));
  std::remove(path.c_str());
}

TEST(ServeServer, ServeStreamEndToEnd) {
  std::istringstream in(
      "{\"id\":\"s1\",\"cmd\":\"estimate\",\"n\":4}\n"
      "\n"
      "this is not json\n"
      "{\"id\":\"s2\",\"cmd\":\"estimate\",\"n\":4}\n");
  std::ostringstream out;
  serve::Server server(quick_config());
  // Warm the cache first: the stream submits s1 and s2 back to back onto
  // two workers, so whether s2 hits s1's entry is a scheduling race — but
  // both must hit an entry that predates the stream.
  ResponseCollector warm;
  server.submit_line(R"({"id":"warm","cmd":"estimate","n":4})", warm.sink());
  ASSERT_EQ(warm.await(1).size(), 1u);
  EXPECT_EQ(server.serve_stream(in, out), 0);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> parsed;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(parse_json(line).ok) << line;
    parsed.push_back(line);
  }
  ASSERT_EQ(parsed.size(), 4u);  // two results, one E063, the stats line
  EXPECT_TRUE(any_line_contains(parsed, "SSN-E063"));
  EXPECT_TRUE(any_line_contains(parsed, "\"cached\":true"));
  const auto& stats_line = parsed.back();
  ASSERT_NE(stats_line.find("\"event\":\"stats\""), std::string::npos);
  const auto stats = parse_json(stats_line);
  ASSERT_TRUE(stats.ok);
  EXPECT_DOUBLE_EQ(stats.value.find("accepted")->number,
                   stats.value.find("responded")->number);
}

// --- socket transport --------------------------------------------------------

#if !defined(_WIN32)

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_response_line(int fd) {
  std::string out;
  char c = '\0';
  while (::read(fd, &c, 1) == 1 && c != '\n') out.push_back(c);
  return out;
}

TEST(ServeSocket, BurstOfFreshConnectionsIsServedAndDrained) {
  // Regression: a connection accepted after the loop snapshots its pollfd
  // array must wait for the next poll cycle — walking it against the stale
  // snapshot read past the array's end (caught by ASan). A burst of clients
  // connecting back-to-back lands every accept in that window.
  serve::Server server(quick_config());
  serve::SocketOptions sopt;
  sopt.path = temp_path("serve_socket_burst.sock");
  std::remove(sopt.path.c_str());
  sopt.poll_interval_ms = 20;
  support::RunContext ctx;
  std::string err;
  int rc = -1;
  std::thread loop(
      [&] { rc = serve::serve_unix_socket(server, sopt, &ctx, err); });
  int probe = -1;
  for (int i = 0; i < 500 && probe < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    probe = connect_unix(sopt.path);
  }
  ASSERT_GE(probe, 0) << err;
  std::vector<int> fds{probe};
  for (int i = 0; i < 7; ++i) {
    const int fd = connect_unix(sopt.path);
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    std::ostringstream req;
    req << "{\"id\":\"s" << i << "\",\"cmd\":\"estimate\",\"n\":" << (4 + i)
        << ",\"tr\":1e-10}\n";
    const std::string text = req.str();
    ASSERT_EQ(::write(fds[i], text.data(), text.size()),
              ssize_t(text.size()));
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const std::string line = read_response_line(fds[i]);
    std::ostringstream want;
    want << "\"id\":\"s" << i << "\",\"ok\":true";
    EXPECT_NE(line.find(want.str()), std::string::npos) << line;
    ::close(fds[i]);
  }
  ctx.request_cancel();
  loop.join();
  EXPECT_EQ(rc, 0) << err;
  const auto final_stats = server.stats();
  EXPECT_EQ(final_stats.accepted, final_stats.responded);
  EXPECT_EQ(final_stats.ok, 8u);
  std::remove(sopt.path.c_str());
}

#endif  // !defined(_WIN32)

// --- fault injection ---------------------------------------------------------

TEST(ServeFaultInjection, SolverFaultsStayIsolatedToTheirRequest) {
  if (!support::kFaultInjectionEnabled)
    GTEST_SKIP() << "needs -DSSNKIT_FAULT_INJECTION=ON (fault-injection preset)";
  auto& injector = support::FaultInjector::instance();
  support::FaultPlan plan;
  plan.probability = 1.0;  // every Newton solve diverges
  injector.arm(support::FaultKind::kNewtonDivergence, plan);

  serve::ServerConfig config;
  config.threads = 2;
  config.cache_capacity = 0;  // keep every request on the faulted path
  serve::Server server(config);
  ResponseCollector rc;
  for (int i = 0; i < 4; ++i) {
    std::ostringstream req;
    req << "{\"id\":\"f" << i
        << "\",\"cmd\":\"estimate\",\"sim\":true,\"n\":" << (2 + i) << "}";
    server.submit_line(req.str(), rc.sink());
  }
  const auto lines = rc.await(4);
  injector.disarm_all();
  ASSERT_EQ(lines.size(), 4u) << "a faulted request went unanswered";
  for (const auto& line : lines) {
    ASSERT_TRUE(parse_json(line).ok) << line;
    // Each request either degraded through the recovery ladder to a valid
    // (analytic-fidelity) result or failed typed — never silence, never a
    // daemon crash.
    const bool ok = line.find("\"ok\":true") != std::string::npos;
    const bool typed = line.find("SSN-E065") != std::string::npos;
    EXPECT_TRUE(ok || typed) << line;
    if (ok) {
      EXPECT_NE(line.find("\"fidelity\":"), std::string::npos) << line;
    }
  }
  // With the faults disarmed the daemon serves full-fidelity results again.
  server.submit_line(R"({"id":"clean","cmd":"estimate","sim":true,"n":3})",
                     rc.sink());
  const auto after = rc.await(5);
  ASSERT_EQ(after.size(), 5u);
  EXPECT_TRUE(any_line_contains(after, "\"id\":\"clean\",\"ok\":true"));
  EXPECT_EQ(server.stats().responded, 5u);
}

// --- trust on the wire -------------------------------------------------------

TEST(ServeJson, RejectsNonFiniteLiteralsOnInput) {
  // JSON has no NaN/Infinity tokens; a client trying to smuggle one in is
  // rejected at the parser, mirroring SSN-E067 on the output side.
  for (const char* bad : {"{\"x\":NaN}", "{\"x\":Infinity}",
                          "{\"x\":-Infinity}", "{\"x\":nan}", "{\"x\":inf}"}) {
    EXPECT_FALSE(parse_json(bad).ok) << "accepted: " << bad;
  }
}

TEST(ServeTrust, RenderAndExtractVerdictRoundTrip) {
  using verify::Verdict;
  for (const Verdict v : {Verdict::kVerified, Verdict::kRefined,
                          Verdict::kUnverified, Verdict::kDegraded}) {
    verify::TrustReport t;
    t.verdict = v;
    const std::string fragment =
        "{\"v_max\":0.5,\"trust\":" + serve::render_trust(t) + "}";
    ASSERT_TRUE(parse_json(fragment).ok) << fragment;
    Verdict out = Verdict::kVerified;
    ASSERT_TRUE(serve::extract_trust_verdict(fragment, out)) << fragment;
    EXPECT_EQ(out, v);
  }
}

TEST(ServeTrust, RenderHandlesNansNotesAndEscapes) {
  verify::TrustReport t;
  t.verdict = verify::Verdict::kDegraded;
  t.residual = 2.5e-7;  // finite -> rendered as a number
  // cond_estimate / ci95 stay NaN -> rendered as null, keeping the
  // response a single parseable JSON line (the strict renderer would
  // throw; trust fields are exactly the "not computed is legal" case).
  t.refinements = 2;
  t.note("SSN-W071: residual 2.5e-07 above tolerance \"strict\"");
  const std::string rendered = serve::render_trust(t);
  EXPECT_NE(rendered.find("\"cond\":null"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("\"ci95\":null"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("\"refinements\":2"), std::string::npos) << rendered;
  const auto parsed = parse_json(rendered);
  ASSERT_TRUE(parsed.ok) << rendered;  // the escaped quote survives parsing
  const auto* residual = parsed.value.find("residual");
  ASSERT_NE(residual, nullptr);
  EXPECT_DOUBLE_EQ(residual->number, 2.5e-7);
  const auto* notes = parsed.value.find("notes");
  ASSERT_NE(notes, nullptr);
  ASSERT_EQ(notes->elements.size(), 1u);
  EXPECT_NE(notes->elements[0].string.find("\"strict\""), std::string::npos);
}

TEST(ServeTrust, ExtractRefusesFragmentsWithoutAUsableVerdict) {
  verify::Verdict out = verify::Verdict::kVerified;
  EXPECT_FALSE(serve::extract_trust_verdict("{\"v_max\":0.5}", out));
  EXPECT_FALSE(serve::extract_trust_verdict("{\"trust\":{}}", out));
  EXPECT_FALSE(serve::extract_trust_verdict(
      "{\"trust\":{\"verdict\":\"totally-fine\"}}", out));
  EXPECT_FALSE(serve::extract_trust_verdict("{\"trust\":3}", out));
  EXPECT_FALSE(serve::extract_trust_verdict("not json", out));
}

TEST(ServeCache, RottedEntryDropsWithW072AndMisses) {
  if (!support::kFaultInjectionEnabled)
    GTEST_SKIP() << "needs -DSSNKIT_FAULT_INJECTION=ON (fault-injection preset)";
  auto& injector = support::FaultInjector::instance();
  support::FaultPlan plan;
  plan.probability = 1.0;  // every hit rots
  injector.arm(support::FaultKind::kCacheRot, plan);

  serve::ResultCache cache(4);
  cache.put(1, "{\"v_max\":0.5,\"trust\":{\"verdict\":\"verified\"}}");
  std::string warning;
  const auto hit = cache.get(1, &warning);
  injector.disarm_all();
  EXPECT_FALSE(hit.has_value()) << "a rotted payload was served";
  EXPECT_NE(warning.find("SSN-W072"), std::string::npos) << warning;
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
  // The entry is gone, not quarantined: the next lookup is a clean miss
  // and the slot can be refilled by the recompute.
  warning.clear();
  EXPECT_FALSE(cache.get(1, &warning).has_value());
  EXPECT_TRUE(warning.empty());
}

TEST(ServeServer, DegradedSpillEntryIsRecomputedNotServed) {
  const std::string path = temp_path("serve_degraded_spill");
  std::remove(path.c_str());
  serve::ServerConfig config = quick_config();
  config.cache_file = path;
  const std::string req = R"({"id":"g1","cmd":"estimate","n":5,"tr":1e-10})";
  {
    serve::Server server(config);
    ResponseCollector rc;
    server.submit_line(req, rc.sink());
    rc.await(1);
    server.finish();
  }

  // Rewrite the spilled fragment's verdict to "degraded", fixing the
  // payload checksum so only the trust layer — not the integrity check —
  // can refuse it.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, line;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, line));
  in.close();
  ASSERT_EQ(line.rfind("entry ", 0), 0u) << line;
  std::string payload = line.substr(6 + 17 + 17);
  const std::string from = "\"verdict\":\"verified\"";
  const auto pos = payload.find(from);
  ASSERT_NE(pos, std::string::npos) << payload;
  payload.replace(pos, from.size(), "\"verdict\":\"degraded\"");
  std::ofstream out(path, std::ios::trunc);
  out << header << "\n"
      << line.substr(0, 6 + 17) << support::hex_u64(support::fnv1a(payload))
      << " " << payload << "\n";
  out.close();

  serve::Server warmed(config);
  EXPECT_TRUE(warmed.warm_warnings().empty());
  ResponseCollector rc;
  warmed.submit_line(R"({"id":"g2","cmd":"estimate","n":5,"tr":1e-10})",
                     rc.sink());
  const auto lines = rc.await(1);
  ASSERT_EQ(lines.size(), 1u);
  // The warmed entry checksums clean but carries a degraded verdict, so
  // the server recomputes instead of replaying it.
  EXPECT_NE(lines[0].find("\"cached\":false"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"verdict\":\"verified\""), std::string::npos)
      << lines[0];
  EXPECT_EQ(warmed.stats().cache_hits, 0u);
  std::remove(path.c_str());
}

}  // namespace
