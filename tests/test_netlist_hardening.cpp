// Input-boundary hardening tests: error-recovery parse diagnostics
// (line/column/caret), semantic validation, resource guards, the hardened
// number parsers, the CSV round trip and the CLI argument parser. The
// malformed-netlist fixtures live in tests/data/bad_netlists; their golden
// diagnostic renderings sit next to them as *.expected.
#include "circuit/netlist.hpp"
#include "circuit/validate.hpp"
#include "cli/args.hpp"
#include "io/csv.hpp"
#include "io/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

using ssnkit::circuit::Circuit;
using ssnkit::circuit::parse_netlist;
using ssnkit::circuit::parse_netlist_ex;
using ssnkit::circuit::parse_spice_number;
using ssnkit::circuit::parse_spice_number_ex;
using ssnkit::circuit::ParseOptions;
using ssnkit::io::Diagnostic;
using ssnkit::io::DiagnosticSink;
using ssnkit::io::IoError;
using ssnkit::io::ParseError;
using ssnkit::io::Severity;

std::string data_path(const std::string& rel) {
  return std::string(SSNKIT_TEST_DATA_DIR) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(bool(in)) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const Diagnostic* find_code(const DiagnosticSink& sink,
                            const std::string& code) {
  for (const auto& d : sink.diagnostics())
    if (d.code == code) return &d;
  return nullptr;
}

int count_code(const DiagnosticSink& sink, const std::string& code) {
  int n = 0;
  for (const auto& d : sink.diagnostics())
    if (d.code == code) ++n;
  return n;
}

// --- structured diagnostics -------------------------------------------------

TEST(Hardening, MultiErrorNetlistCollectsAllInOnePass) {
  ParseOptions opts;
  opts.filename = "multi_error.cir";
  const auto result =
      parse_netlist_ex(read_file(data_path("bad_netlists/multi_error.cir")), opts);
  EXPECT_FALSE(result.ok);
  ASSERT_GE(result.diagnostics.error_count(), 3u);

  // Three distinct errors, each with the right line and column.
  const Diagnostic* suffix = find_code(result.diagnostics, "SSN-E002");
  ASSERT_NE(suffix, nullptr);
  EXPECT_EQ(suffix->loc.line, 3);
  EXPECT_EQ(suffix->loc.column, 10);
  EXPECT_EQ(suffix->token, "1q");

  const Diagnostic* unknown = find_code(result.diagnostics, "SSN-E011");
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->loc.line, 4);
  EXPECT_EQ(unknown->loc.column, 1);

  const Diagnostic* number = find_code(result.diagnostics, "SSN-E001");
  ASSERT_NE(number, nullptr);
  EXPECT_EQ(number->loc.line, 5);
  EXPECT_EQ(number->loc.column, 10);

  // Golden rendering: file:line:col, severity, code and caret excerpts.
  const std::string golden =
      read_file(data_path("bad_netlists/multi_error.expected"));
  EXPECT_EQ(result.diagnostics.format_all(), golden);
}

TEST(Hardening, CaretExcerptUnderlinesTheToken) {
  const auto result = parse_netlist_ex("R1 a 0 1q\n");
  ASSERT_TRUE(result.diagnostics.has_errors());
  const std::string rendered = result.diagnostics.diagnostics()[0].format();
  EXPECT_NE(rendered.find("R1 a 0 1q"), std::string::npos);
  EXPECT_NE(rendered.find("^"), std::string::npos);
  EXPECT_NE(rendered.find(":1:8:"), std::string::npos);
}

TEST(Hardening, ThrowingWrapperStaysInvalidArgumentCompatible) {
  try {
    parse_netlist("R1 a 0 1k\nC1 a 0 oops\nQ9 x\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.diagnostics().size(), 2u);
    EXPECT_NE(std::string(e.what()).find("error"), std::string::npos);
  }
  // And the same throw is catchable as std::invalid_argument (legacy sites).
  EXPECT_THROW(parse_netlist("R1 a 0 1k\nQ9 x\n"), std::invalid_argument);
}

TEST(Hardening, KCardSelfCouplingIsDiagnosed) {
  const auto result =
      parse_netlist_ex("K1 L1 L1 0.5\nL1 a 0 1n\nR1 a 0 50\n");
  EXPECT_FALSE(result.ok);
  const Diagnostic* d = find_code(result.diagnostics, "SSN-E021");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("itself"), std::string::npos);
}

TEST(Hardening, SinkDeduplicatesAndCaps) {
  DiagnosticSink sink(4);
  for (int i = 0; i < 10; ++i)
    sink.error({"f", 1, 1}, "SSN-E001", "same message");
  EXPECT_EQ(sink.error_count(), 1u);  // deduplicated
  for (int i = 0; i < 10; ++i)
    sink.error({"f", i + 2, 1}, "SSN-E001", "message " + std::to_string(i));
  EXPECT_TRUE(sink.overflowed());
  EXPECT_LE(sink.error_count(), 5u);  // cap + the overflow note
}

// --- resource guards --------------------------------------------------------

TEST(Hardening, HundredDeepSubcktNestIsRejectedNotOverflowed) {
  std::string text;
  text += ".subckt s0 a b\nR1 a b 1k\n.ends\n";
  for (int i = 1; i < 100; ++i) {
    text += ".subckt s" + std::to_string(i) + " a b\n";
    text += "X1 a b S" + std::to_string(i - 1) + "\n.ends\n";
  }
  text += "X0 p q S99\n";
  const auto result = parse_netlist_ex(text);
  EXPECT_FALSE(result.ok);
  ASSERT_NE(find_code(result.diagnostics, "SSN-E030"), nullptr);
}

TEST(Hardening, RecursiveSubcktIsRejectedNotOverflowed) {
  const auto result = parse_netlist_ex(
      ".subckt loop a b\nX1 a b LOOP\n.ends\nX0 p q LOOP\n");
  EXPECT_FALSE(result.ok);
  ASSERT_NE(find_code(result.diagnostics, "SSN-E030"), nullptr);
}

TEST(Hardening, OversizeInputIsRejectedTyped) {
  ParseOptions opts;
  opts.limits.max_input_bytes = 1024;
  const std::string big(4096, 'x');
  const auto result = parse_netlist_ex(big, opts);
  EXPECT_FALSE(result.ok);
  const Diagnostic* d = find_code(result.diagnostics, "SSN-E030");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("byte limit"), std::string::npos);
}

TEST(Hardening, SubcktDoublingBombHitsElementBudget) {
  // Each level instantiates the previous one twice: 2^20 resistors if the
  // expansion were allowed to run.
  std::string text = ".subckt s0 a b\nR1 a b 1k\nR2 a b 1k\n.ends\n";
  for (int i = 1; i < 20; ++i) {
    text += ".subckt s" + std::to_string(i) + " a b\n";
    text += "X1 a b S" + std::to_string(i - 1) + "\n";
    text += "X2 a b S" + std::to_string(i - 1) + "\n.ends\n";
  }
  text += "X0 p q S19\n";
  ParseOptions opts;
  opts.limits.max_elements = 1000;
  const auto result = parse_netlist_ex(text, opts);
  EXPECT_FALSE(result.ok);
  const Diagnostic* d = find_code(result.diagnostics, "SSN-E030");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("element budget"), std::string::npos);
  // The abort fired at the budget, not after expanding the full million.
  EXPECT_LE(result.netlist.circuit.elements().size(), 1001u);
}

TEST(Hardening, LineAndTokenLengthGuards) {
  ParseOptions opts;
  opts.limits.max_line_length = 64;
  auto result = parse_netlist_ex("R1 a 0 " + std::string(100, '1') + "\n", opts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(find_code(result.diagnostics, "SSN-E030"), nullptr);

  ParseOptions topts;
  topts.limits.max_token_length = 16;
  result = parse_netlist_ex("R" + std::string(32, 'a') + " a 0 1k\n", topts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(find_code(result.diagnostics, "SSN-E030"), nullptr);
}

// --- hardened number parsing ------------------------------------------------

TEST(Hardening, SpiceNumberRejectsNonDecimalForms) {
  for (const char* bad : {"inf", "INF", "-inf", "nan", "NAN", "0x10", "0x1p3",
                          "1e999", "-1e999", "", "+", "-", ".", "e3", "1e",
                          " 1.5", "1..5"}) {
    EXPECT_THROW(parse_spice_number(bad), std::invalid_argument) << bad;
    EXPECT_FALSE(parse_spice_number_ex(bad).ok) << bad;
  }
}

TEST(Hardening, SpiceNumberStillAcceptsTheSpiceDialect) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5k"), 1500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("2MEG"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("10pF"), 1e-11);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3e-9"), -3e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("+.5e+2"), 50.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("3.3V"), 3.3);
}

TEST(Hardening, OutOfRangeIsDiagnosedNotLeaked) {
  // std::stod would throw std::out_of_range here; the hardened parser
  // reports it as a parse failure instead.
  const auto p = parse_spice_number_ex("1e999");
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.error.find("out of range"), std::string::npos);

  const auto ip = ssnkit::io::parse_int_strict("99999999999999999999");
  EXPECT_FALSE(ip.ok);
  EXPECT_NE(ip.error.find("out of range"), std::string::npos);
}

// --- semantic validation ----------------------------------------------------

TEST(Hardening, ValidationWarnsOnDanglingNodeAndInductorLoop) {
  const auto result = parse_netlist_ex(
      "V1 a 0 DC 1\nL1 a b 1n\nL2 a b 1n\nR1 b 0 50\nC9 c 0 1p\n");
  EXPECT_TRUE(result.ok);  // warnings only
  const Diagnostic* dangling = find_code(result.diagnostics, "SSN-W102");
  ASSERT_NE(dangling, nullptr);
  EXPECT_NE(dangling->message.find("'c'"), std::string::npos);
  ASSERT_NE(find_code(result.diagnostics, "SSN-W104"), nullptr);
}

TEST(Hardening, UnitSanityWarnsOnOneFaradBondWire) {
  const auto result =
      parse_netlist_ex("V1 a 0 DC 1\nR1 a b 50\nC1 b 0 1\n");
  EXPECT_TRUE(result.ok);
  const Diagnostic* w = find_code(result.diagnostics, "SSN-W106");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->token, "C1");
}

TEST(Hardening, ValidateCircuitWorksOnProgrammaticCircuits) {
  using ssnkit::circuit::validate_circuit;
  Circuit empty;
  DiagnosticSink sink;
  EXPECT_FALSE(validate_circuit(empty, sink));
  EXPECT_NE(find_code(sink, "SSN-E105"), nullptr);

  // The factories already reject non-physical values (contracts), so a
  // programmatic circuit's findings are the topology-level ones: here a
  // node touched by only one terminal.
  Circuit c;
  const auto a = c.node("a");
  const auto b = c.node("b");
  c.add_vsource("V1", a, ssnkit::circuit::kGround, ssnkit::waveform::Dc{1.0});
  c.add_resistor("R1", a, b, 50.0);
  DiagnosticSink sink2;
  EXPECT_TRUE(validate_circuit(c, sink2));  // warnings do not fail validation
  const Diagnostic* d = find_code(sink2, "SSN-W102");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'b'"), std::string::npos);
}

TEST(Hardening, BadModelParametersAreRangeChecked) {
  const auto result = parse_netlist_ex(
      ".model bad ASDM K=-5.8m LAMBDA=1.28 VX=1.4\n"
      "V1 d 0 DC 3.3\nM1 d g 0 0 bad\nR1 g 0 1k\n");
  EXPECT_FALSE(result.ok);
  ASSERT_NE(find_code(result.diagnostics, "SSN-E103"), nullptr);
}

// --- CSV round trip and IO errors -------------------------------------------

TEST(Hardening, CsvRoundTripsThroughReader) {
  ssnkit::io::CsvWriter w({"t", "v", "i"});
  w.add_row({0.0, 1.5, -2e-9});
  w.add_row({1e-12, 3.25, 4.5e-3});
  std::ostringstream os;
  w.write(os);

  ssnkit::io::CsvReader reader;
  DiagnosticSink sink;
  const auto table = reader.read_string(os.str(), sink);
  EXPECT_FALSE(sink.has_errors());
  ASSERT_EQ(table.headers.size(), 3u);
  EXPECT_EQ(table.headers[0], "t");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][1], 1.5);
  EXPECT_DOUBLE_EQ(table.rows[1][2], 4.5e-3);
}

TEST(Hardening, CsvReaderDiagnosesEveryMalformedCell) {
  ssnkit::io::CsvReader reader;
  DiagnosticSink sink;
  const auto table = reader.read_string(
      "a,b\n"
      "1,2,3\n"     // width mismatch (line 2)
      "4\n"         // width mismatch (line 3)
      "nan,5\n"     // non-finite (line 4)
      "6,seven\n",  // not a number (line 5)
      sink, "fixture.csv");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(count_code(sink, "SSN-E062"), 2);
  EXPECT_GE(count_code(sink, "SSN-E061"), 2);
  const Diagnostic* bad = find_code(sink, "SSN-E061");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->loc.file, "fixture.csv");
  EXPECT_GE(bad->loc.line, 4);
  EXPECT_TRUE(table.rows.empty());  // every data row had a defect
}

TEST(Hardening, CsvReaderRejectsQuotingAndMissingHeader) {
  ssnkit::io::CsvReader reader;
  DiagnosticSink sink;
  reader.read_string("a,\"b\"\n1,2\n", sink);
  EXPECT_NE(find_code(sink, "SSN-E060"), nullptr);

  DiagnosticSink sink2;
  reader.read_string("", sink2);
  EXPECT_NE(find_code(sink2, "SSN-E060"), nullptr);
}

TEST(Hardening, CsvWriterReportsFailedStreamAsTypedIoError) {
  ssnkit::io::CsvWriter w({"x"});
  w.add_row({1.0});
  std::ostringstream os;
  os.setstate(std::ios::badbit);
  try {
    w.write(os);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoError::Kind::kWriteFailed);
  }
}

TEST(Hardening, CsvFileErrorsAreTyped) {
  ssnkit::io::CsvReader reader;
  try {
    reader.read_file("/no/such/dir/x.csv");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoError::Kind::kOpenFailed);
    EXPECT_EQ(e.path(), "/no/such/dir/x.csv");
  }

  ssnkit::io::CsvWriter w({"x"});
  EXPECT_THROW(w.write_file("/no/such/dir/x.csv"), IoError);
  // Disk-full reporting, where the platform provides /dev/full.
  std::ifstream devfull("/dev/full");
  if (devfull.good()) {
    try {
      w.add_row({1.0});
      w.write_file("/dev/full");
      FAIL() << "expected IoError on /dev/full";
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoError::Kind::kWriteFailed);
    }
  }
}

// --- CLI argument parsing ---------------------------------------------------

TEST(Hardening, ArgsCollectsEveryErrorWithColumns) {
  using ssnkit::cli::Args;
  DiagnosticSink sink;
  Args::parse_ex({"--", "--verify=1", "--n"}, {"verify"}, sink);
  EXPECT_EQ(sink.error_count(), 3u);
  const auto& diags = sink.diagnostics();
  EXPECT_EQ(diags[0].loc.file, "<command-line>");
  EXPECT_EQ(diags[0].loc.column, 1);
  EXPECT_EQ(diags[1].loc.column, 4);
  EXPECT_EQ(diags[2].loc.column, 15);
  EXPECT_EQ(diags[0].excerpt, "-- --verify=1 --n");
}

TEST(Hardening, ArgsIntOverflowIsInvalidArgumentNotOutOfRange) {
  using ssnkit::cli::Args;
  const Args args = Args::parse({"--n", "99999999999999999999"});
  try {
    args.get_int("n", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

}  // namespace
