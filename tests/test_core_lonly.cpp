// Section 3 formulas (L-only model): exact-solution checks against the ODE,
// the beta figure, and the design-implication properties.
#include "core/l_only_model.hpp"
#include "numeric/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using ssnkit::core::LOnlyModel;
using ssnkit::core::SsnScenario;
using ssnkit::numeric::rk45;
using ssnkit::numeric::Vector;

SsnScenario typical() {
  SsnScenario s;
  s.n_drivers = 8;
  s.inductance = 5e-9;
  s.capacitance = 0.0;
  s.vdd = 1.8;
  s.slope = 1.8 / 0.1e-9;  // t_r = 0.1 ns
  s.device = {.k = 6e-3, .lambda = 1.25, .vx = 0.61};
  return s;
}

TEST(Scenario, DerivedQuantities) {
  const SsnScenario s = typical();
  EXPECT_NEAR(s.t_on(), 0.61 / 1.8e10, 1e-18);
  EXPECT_NEAR(s.t_ramp_end(), 0.1e-9, 1e-18);
  EXPECT_NEAR(s.beta(), 8.0 * 5e-9 * 1.8e10, 1e-6);
  EXPECT_NEAR(s.v_inf(), s.device.k * s.beta(), 1e-12);
  EXPECT_NEAR(s.critical_capacitance(),
              std::pow(8.0 * 6e-3 * 1.25, 2.0) * 5e-9 / 4.0, 1e-18);
}

TEST(Scenario, Validation) {
  SsnScenario s = typical();
  s.n_drivers = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = typical();
  s.inductance = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = typical();
  s.device.vx = 2.0;  // above vdd
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = typical();
  s.capacitance = -1e-12;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(LOnly, ZeroBeforeTurnOn) {
  const LOnlyModel m(typical());
  EXPECT_DOUBLE_EQ(m.vn(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.vn(m.scenario().t_on() * 0.999), 0.0);
  EXPECT_DOUBLE_EQ(m.i_driver(0.0), 0.0);
}

TEST(LOnly, SatisfiesTheOde) {
  // Plug Eqn 6 back into V_n = N*L*K*(S - lambda*dV_n/dt): the residual
  // must vanish over the whole active ramp.
  const SsnScenario s = typical();
  const LOnlyModel m(s);
  const double nlk = double(s.n_drivers) * s.inductance * s.device.k;
  for (double frac : {0.05, 0.2, 0.5, 0.8, 0.99}) {
    const double t = s.t_on() + frac * (s.t_ramp_end() - s.t_on());
    const double residual = m.vn(t) - nlk * (s.slope - s.device.lambda * m.vn_dot(t));
    EXPECT_NEAR(residual, 0.0, 1e-9 * s.v_inf()) << "frac=" << frac;
  }
}

TEST(LOnly, MatchesRk45Reference) {
  // Independent numerical integration of the exact nonlinear start
  // (current clamped at 0 before V_in = V_x) must land on Eqn 6.
  const SsnScenario s = typical();
  const LOnlyModel m(s);
  // State: y = inductor current (total); V_n = L * dy/dt inverted form:
  // Work with V_n directly: dV/dt = (NLKS - V)/(NLK*lambda) after turn-on.
  const double tau = m.tau();
  const double v_inf = s.v_inf();
  const auto rhs = [&](double, const Vector& y) {
    return Vector{(v_inf - y[0]) / tau};
  };
  const auto sol = rk45(rhs, s.t_on(), s.t_ramp_end(), Vector{0.0});
  // Compare at the integrator's own points (sample() would add linear
  // interpolation error between the large steps RK45 takes here).
  for (std::size_t i = 0; i < sol.t.size(); ++i)
    EXPECT_NEAR(m.vn(sol.t[i]), sol.y[i][0], 1e-7 * v_inf) << "i=" << i;
}

TEST(LOnly, VmaxIsValueAtRampEnd) {
  const LOnlyModel m(typical());
  EXPECT_NEAR(m.v_max(), m.vn(m.scenario().t_ramp_end()), 1e-15);
  // And the waveform agrees.
  const auto w = m.vn_waveform();
  EXPECT_NEAR(w.maximum().value, m.v_max(), 1e-6 * m.v_max());
}

TEST(LOnly, PaperMagnitudeBallpark) {
  // The paper's Fig. 2 setup peaks near 0.8-1.0 V at vdd = 1.8 V.
  const LOnlyModel m(typical());
  EXPECT_GT(m.v_max(), 0.4);
  EXPECT_LT(m.v_max(), 1.3);
}

TEST(LOnly, CurrentFormulaConsistentWithInductor) {
  // V_n = L * d(N i)/dt: differentiate the current waveform numerically.
  const SsnScenario s = typical();
  const LOnlyModel m(s);
  const double t = s.t_on() + 0.6 * (s.t_ramp_end() - s.t_on());
  const double h = 1e-15;
  const double didt = (m.i_inductor(t + h) - m.i_inductor(t - h)) / (2.0 * h);
  EXPECT_NEAR(s.inductance * didt, m.vn(t), 2e-3 * m.vn(t));
}

TEST(LOnly, BetaEquivalenceExact) {
  // Same beta = N*L*S -> identical V_max (Eqn 10), exactly.
  const SsnScenario a = typical();
  SsnScenario b = a;
  b.n_drivers = 4;
  b.inductance = 2.0 * a.inductance;  // N*L unchanged
  SsnScenario c = a;
  c.slope = 2.0 * a.slope;
  c.inductance = 0.5 * a.inductance;  // L*S unchanged
  const double va = LOnlyModel(a).v_max();
  EXPECT_NEAR(LOnlyModel(b).v_max(), va, 1e-12);
  EXPECT_NEAR(LOnlyModel(c).v_max(), va, 1e-12);
}

TEST(LOnly, MonotoneInDriversInductanceSlope) {
  const SsnScenario s = typical();
  double prev = 0.0;
  for (int n = 1; n <= 32; n *= 2) {
    const double v = LOnlyModel(s.with_drivers(n)).v_max();
    EXPECT_GT(v, prev);
    prev = v;
  }
  prev = 0.0;
  for (double l = 1e-9; l <= 16e-9; l *= 2.0) {
    const double v = LOnlyModel(s.with_inductance(l)).v_max();
    EXPECT_GT(v, prev);
    prev = v;
  }
  prev = 0.0;
  for (double slope = 2e9; slope <= 6.4e10; slope *= 2.0) {
    const double v = LOnlyModel(s.with_slope(slope)).v_max();
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(LOnly, SaturatesBelowVInf) {
  // V_max < V_inf always; the saturation fraction grows as the ramp slows.
  const SsnScenario s = typical();
  EXPECT_LT(LOnlyModel(s).v_max(), s.v_inf());
  const SsnScenario fast = s.with_slope(s.slope * 100.0);
  const SsnScenario slow = s.with_slope(s.slope / 100.0);
  EXPECT_GT(LOnlyModel(fast).v_max() / fast.v_inf(), 0.0);
  EXPECT_LT(LOnlyModel(fast).v_max() / fast.v_inf(),
            LOnlyModel(s).v_max() / s.v_inf());
  EXPECT_GT(LOnlyModel(slow).v_max() / slow.v_inf(), 0.999);
}

TEST(LOnly, SlowRampLimit) {
  // For very slow inputs the exponential saturates: V_max -> V_inf * 1,
  // i.e. the noise equals N*L*K*S, which itself goes to 0 as S -> 0.
  const SsnScenario s = typical().with_slope(1e8);
  const LOnlyModel m(s);
  EXPECT_NEAR(m.v_max(), s.v_inf(), 1e-3 * s.v_inf());
}

TEST(LOnly, HoldsValueAfterRamp) {
  const LOnlyModel m(typical());
  const double at_end = m.vn(m.scenario().t_ramp_end());
  EXPECT_DOUBLE_EQ(m.vn(m.scenario().t_ramp_end() * 2.0), at_end);
  EXPECT_DOUBLE_EQ(m.vn_dot(m.scenario().t_ramp_end() * 2.0), 0.0);
}

}  // namespace
