// The recovery ladder (sim/recovery.hpp) and its analysis-layer end
// (analysis/resilience.hpp): healthy runs stay at full fidelity, hopeless
// circuits walk every rung and surface a typed error, and the analytic rung
// degrades to the paper's closed forms instead of losing the sample.
#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "analysis/resilience.hpp"
#include "analysis/sweeps.hpp"
#include "circuit/circuit.hpp"
#include "circuit/testbench.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "sim/recovery.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace ssnkit;
using namespace ssnkit::circuit;
using namespace ssnkit::sim;
using support::SolverErrorKind;
using ssnkit::waveform::Dc;

const analysis::Calibration& cal() {
  static const analysis::Calibration c =
      analysis::calibrate(process::tech_180nm());
  return c;
}

TEST(Fidelity, NamesAreStable) {
  EXPECT_STREQ(to_string(Fidelity::kFullDevice), "full-device");
  EXPECT_STREQ(to_string(Fidelity::kTightenedDamping), "tighten-damping");
  EXPECT_STREQ(to_string(Fidelity::kAlternateIntegrator),
               "alternate-integrator");
  EXPECT_STREQ(to_string(Fidelity::kGminRecovery), "gmin-recovery");
  EXPECT_STREQ(to_string(Fidelity::kReducedTimestep), "reduced-timestep");
  EXPECT_STREQ(to_string(Fidelity::kAnalytic), "analytic");
  EXPECT_STREQ(to_string(Fidelity::kFailed), "failed");
}

TEST(RecoveryLadder, HealthyRunStaysFullFidelity) {
  SsnBenchSpec spec;
  spec.n_drivers = 2;
  SsnBench bench = make_ssn_testbench(spec);
  TransientOptions opts;
  opts.t_stop = bench.t_ramp_end;
  opts.dt_max = spec.input_rise_time / 200.0;
  const RecoveryOutcome out = run_transient_resilient(bench.circuit, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.fidelity, Fidelity::kFullDevice);
  EXPECT_FALSE(out.degraded());
  ASSERT_EQ(out.attempts.size(), 1u);
  EXPECT_EQ(out.attempts[0].rung, "full-device");
  EXPECT_TRUE(out.attempts[0].succeeded);
  EXPECT_GT(out.result.point_count(), 10u);
}

TEST(RecoveryLadder, HopelessCircuitWalksEveryRung) {
  // A floating node fails identically on every rung; the outcome must list
  // all five attempts and re-wrap the error with the recovery trail.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_capacitor("C1", b, kGround, 1e-12);  // b floats at DC
  TransientOptions opts;
  opts.t_stop = 1e-9;
  const RecoveryOutcome out = run_transient_resilient(ckt, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.fidelity, Fidelity::kFailed);
  ASSERT_EQ(out.attempts.size(), 5u);
  EXPECT_EQ(out.attempts[0].rung, "full-device");
  EXPECT_EQ(out.attempts[1].rung, "tighten-damping");
  EXPECT_EQ(out.attempts[2].rung, "alternate-integrator");
  EXPECT_EQ(out.attempts[3].rung, "gmin-recovery");
  EXPECT_EQ(out.attempts[4].rung, "reduced-timestep");
  for (const auto& attempt : out.attempts) EXPECT_FALSE(attempt.succeeded);
  EXPECT_NE(std::string(out.error->what()).find("recovery ladder exhausted"),
            std::string::npos);
  EXPECT_EQ(out.error->diagnostics().recovery_trail.size(), 5u);
}

TEST(RecoveryLadder, DisabledPolicyStopsAfterFirstAttempt) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_capacitor("C1", b, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  RecoveryPolicy policy;
  policy.enabled = false;
  const RecoveryOutcome out = run_transient_resilient(ckt, opts, policy);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.fidelity, Fidelity::kFailed);
  EXPECT_EQ(out.attempts.size(), 1u);
}

TEST(RecoveryLadder, RungSelectionIsHonored) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Dc{1.0});
  ckt.add_capacitor("C1", b, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  RecoveryPolicy policy;
  policy.try_tighten_damping = false;
  policy.try_gmin_recovery = false;
  const RecoveryOutcome out = run_transient_resilient(ckt, opts, policy);
  ASSERT_EQ(out.attempts.size(), 3u);
  EXPECT_EQ(out.attempts[0].rung, "full-device");
  EXPECT_EQ(out.attempts[1].rung, "alternate-integrator");
  EXPECT_EQ(out.attempts[2].rung, "reduced-timestep");
}

TEST(MeasureResilient, HealthyBenchMatchesMeasureSsn) {
  SsnBenchSpec spec;
  spec.n_drivers = 4;
  analysis::MeasureOptions mopts;
  mopts.transient.dt_max = spec.input_rise_time / 200.0;
  const auto plain = analysis::measure_ssn(spec, mopts);
  const auto resilient = analysis::measure_ssn_resilient(spec, mopts);
  ASSERT_TRUE(resilient.ok());
  EXPECT_EQ(resilient.fidelity, Fidelity::kFullDevice);
  EXPECT_DOUBLE_EQ(resilient.measurement.v_max, plain.v_max);
  EXPECT_DOUBLE_EQ(resilient.measurement.t_at_max, plain.t_at_max);
}

TEST(AnalyticMeasurement, MatchesClosedFormModels) {
  const auto& c = cal();
  const auto pkg = process::package_pga();
  const core::SsnScenario lc =
      analysis::make_scenario(c, pkg, 8, 0.1e-9, /*include_c=*/true);
  const auto m_lc = analysis::analytic_measurement(lc);
  EXPECT_DOUBLE_EQ(m_lc.v_max, core::LcModel(lc).v_max());
  EXPECT_NEAR(m_lc.vin.sample(lc.t_ramp_end()), lc.vdd, 1e-12);
  EXPECT_GT(m_lc.t_at_max, 0.0);

  const core::SsnScenario l_only =
      analysis::make_scenario(c, pkg, 8, 0.1e-9, /*include_c=*/false);
  const auto m_l = analysis::analytic_measurement(l_only);
  EXPECT_DOUBLE_EQ(m_l.v_max, core::LOnlyModel(l_only).v_max());
}

TEST(MeasureResilient, ForcedFailureDegradesToAnalytic) {
  // max_steps = 1 makes every simulation rung fail with a (retryable)
  // step-budget error; with a scenario supplied the analytic rung catches
  // the sample instead of dropping it.
  SsnBenchSpec spec;
  spec.n_drivers = 2;
  analysis::MeasureOptions mopts;
  mopts.transient.max_steps = 1;
  const core::SsnScenario scenario = analysis::make_scenario(
      cal(), spec.package, spec.n_drivers, spec.input_rise_time, true);

  const auto degraded =
      analysis::measure_ssn_resilient(spec, mopts, {}, &scenario);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.degraded());
  EXPECT_EQ(degraded.fidelity, Fidelity::kAnalytic);
  ASSERT_TRUE(degraded.error.has_value());
  EXPECT_EQ(degraded.error->kind(), SolverErrorKind::kStepBudgetExhausted);
  EXPECT_EQ(degraded.attempts.back().rung, "analytic");
  EXPECT_TRUE(degraded.attempts.back().succeeded);
  EXPECT_DOUBLE_EQ(degraded.measurement.v_max,
                   analysis::analytic_measurement(scenario).v_max);

  const auto failed = analysis::measure_ssn_resilient(spec, mopts, {});
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.fidelity, Fidelity::kFailed);
  ASSERT_TRUE(failed.error.has_value());
  EXPECT_EQ(failed.error->kind(), SolverErrorKind::kStepBudgetExhausted);
}

TEST(BatchSummary, RecordsPerFidelityAndPerError) {
  analysis::BatchSummary summary;
  summary.record("a", Fidelity::kFullDevice, std::nullopt);
  summary.record("b", Fidelity::kTightenedDamping, std::nullopt);
  summary.record("c", Fidelity::kAnalytic,
                 support::SolverError(SolverErrorKind::kStepUnderflow, "x"));
  summary.record("d", Fidelity::kFailed,
                 support::SolverError(SolverErrorKind::kNewtonDivergence, "y"));
  EXPECT_EQ(summary.total, 4u);
  EXPECT_EQ(summary.full_fidelity, 1u);
  EXPECT_EQ(summary.recovered, 1u);
  EXPECT_EQ(summary.analytic, 1u);
  EXPECT_EQ(summary.failed, 1u);
  EXPECT_FALSE(summary.all_full_fidelity());
  EXPECT_EQ(summary.by_fidelity.at("tighten-damping"), 1u);
  EXPECT_EQ(summary.by_error.at("step-underflow"), 1u);
  EXPECT_EQ(summary.by_error.at("newton-divergence"), 1u);
  ASSERT_EQ(summary.notes.size(), 3u);
  EXPECT_EQ(summary.notes[0], "b: tighten-damping");
  EXPECT_EQ(summary.notes[1], "c: analytic [step-underflow]");
  EXPECT_EQ(summary.notes[2], "d: failed [newton-divergence]");
  const std::string s = summary.to_string();
  EXPECT_NE(s.find("4 runs: 1 full-fidelity"), std::string::npos);
  EXPECT_NE(s.find("1 recovered"), std::string::npos);
  EXPECT_NE(s.find("newton-divergence=1"), std::string::npos);
}

TEST(BatchSummary, AllFullFidelityWhenNothingDegrades) {
  analysis::BatchSummary summary;
  summary.record("a", Fidelity::kFullDevice, std::nullopt);
  summary.record("b", Fidelity::kFullDevice, std::nullopt);
  EXPECT_TRUE(summary.all_full_fidelity());
  EXPECT_TRUE(summary.notes.empty());
  EXPECT_EQ(summary.to_string(), "2 runs: 2 full-fidelity");
}

TEST(ResilientSweep, HealthySweepReportsAllFullFidelity) {
  analysis::DriverSweepConfig config;
  config.driver_counts = {1, 2};
  const auto result = analysis::run_driver_sweep(config);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_TRUE(result.summary.all_full_fidelity());
  EXPECT_EQ(result.summary.total, 2u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.fidelity, Fidelity::kFullDevice);
    EXPECT_GT(row.sim, 0.0);
  }
}

TEST(ResilientSweep, FailingPointIsSkippedNotFatal) {
  // A 1-step budget kills every simulation; the sweep must complete with
  // zero rows and a summary accounting for both failed points.
  analysis::DriverSweepConfig config;
  config.driver_counts = {1, 2};
  config.transient.max_steps = 1;
  // Bound the retry cost: the ladder outcome is identical on every rung.
  config.recovery.try_tighten_damping = false;
  config.recovery.try_gmin_recovery = false;
  config.recovery.try_reduced_timestep = false;
  const auto result = analysis::run_driver_sweep(config);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.summary.total, 2u);
  EXPECT_EQ(result.summary.failed, 2u);
  EXPECT_EQ(result.summary.by_error.at("step-budget-exhausted"), 2u);
  EXPECT_FALSE(result.summary.all_full_fidelity());
}

TEST(ResilientSweep, NonResilientModeThrows) {
  analysis::DriverSweepConfig config;
  config.driver_counts = {1};
  config.transient.max_steps = 1;
  config.resilient = false;
  EXPECT_THROW(analysis::run_driver_sweep(config), std::runtime_error);
}

}  // namespace
