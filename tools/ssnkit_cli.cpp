// The ssnkit command-line tool; all logic lives in src/cli (testable).
#include "cli/commands.hpp"

#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ssnkit::cli::run_cli(args, std::cout, std::cerr);
}
