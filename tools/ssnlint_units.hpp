// ssnlint SSN-L011: annotation-driven physical-units dataflow.
//
// The SSN model mixes inductances, capacitances, slopes, and voltages in
// dense arithmetic (beta = N*L*S, C_crit = tau/(2R), ...). A transposed
// operand usually still compiles, still runs, and produces numbers of the
// wrong magnitude — the class of bug a type system would catch if the code
// used unit-typed wrappers. This pass recovers most of that safety without
// changing any signatures:
//
//   * units are seeded from `// ssn-units: name=EXPR, ...` comments and from
//     naming conventions (`inductance_h`, `cap_f`, `vdd_v`, `rise_time_s`);
//   * dimensions propagate at token level through + - * / comparisons,
//     assignments, and the few math functions with unit semantics
//     (sqrt halves exponents; exp/log demand a dimensionless argument);
//   * a mix is flagged only when BOTH operands have fully known, different
//     dimensions — unknowns and bare numeric literals never fire, which is
//     what keeps a lexer-level checker honest about false positives.
//
// Unit expressions use a V/A/s pseudo-basis (volt, ampere, second): H is
// V*s/A, F is A*s/V, Ohm is V/A, Hz is 1/s. `1` means dimensionless.
#pragma once

#include "ssnlint_core.hpp"
#include "ssnlint_project.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ssnlint {

/// Dimension vector over the V/A/s pseudo-basis.
struct Dim {
  int v = 0, a = 0, s = 0;
  friend bool operator==(const Dim& x, const Dim& y) {
    return x.v == y.v && x.a == y.a && x.s == y.s;
  }
  friend bool operator!=(const Dim& x, const Dim& y) { return !(x == y); }
};

inline std::string to_string(const Dim& d) {
  if (d.v == 0 && d.a == 0 && d.s == 0) return "1";
  // Prefer the familiar derived names for the common cases.
  static const std::vector<std::pair<Dim, std::string>> kNamed = {
      {{1, 0, 0}, "V"},        {{0, 1, 0}, "A"},      {{0, 0, 1}, "s"},
      {{1, -1, 1}, "H"},       {{-1, 1, 1}, "F"},     {{1, -1, 0}, "Ohm"},
      {{0, 0, -1}, "Hz"},      {{1, 1, 0}, "W"},      {{0, 1, 1}, "C"},
      {{1, 1, 1}, "J"},        {{1, 0, -1}, "V/s"},
  };
  for (const auto& [dim, name] : kNamed)
    if (dim == d) return name;
  std::string out;
  const auto term = [&](const char* base, int e) {
    if (e == 0) return;
    if (!out.empty()) out += '*';
    out += base;
    if (e != 1) out += '^' + std::to_string(e);
  };
  term("V", d.v);
  term("A", d.a);
  term("s", d.s);
  return out;
}

/// Lattice value for an expression: no information, a bare numeric literal
/// (unifies with anything), or a fully known dimension.
struct UnitValue {
  enum class State { kUnknown, kWildcard, kKnown };
  State state = State::kUnknown;
  Dim dim;

  static UnitValue unknown() { return {}; }
  static UnitValue wildcard() { return {State::kWildcard, {}}; }
  static UnitValue known(Dim d) { return {State::kKnown, d}; }
  bool is_known() const { return state == State::kKnown; }
};

namespace detail_units {

inline const std::map<std::string, Dim>& base_units() {
  static const std::map<std::string, Dim> kUnits = {
      {"V", {1, 0, 0}},   {"A", {0, 1, 0}},  {"s", {0, 0, 1}},
      {"H", {1, -1, 1}},  {"F", {-1, 1, 1}}, {"Ohm", {1, -1, 0}},
      {"ohm", {1, -1, 0}}, {"Hz", {0, 0, -1}}, {"W", {1, 1, 0}},
      {"C", {0, 1, 1}},   {"J", {1, 1, 1}},  {"1", {0, 0, 0}},
  };
  return kUnits;
}

/// Identifier-suffix conventions, matched against the text after the last
/// underscore. `rise_time_s` is seconds; `inductance_h` is henries.
inline const std::map<std::string, Dim>& suffix_units() {
  static const std::map<std::string, Dim> kSuffixes = {
      {"h", {1, -1, 1}},     {"henry", {1, -1, 1}}, {"f", {-1, 1, 1}},
      {"farad", {-1, 1, 1}}, {"v", {1, 0, 0}},      {"volt", {1, 0, 0}},
      {"volts", {1, 0, 0}},  {"a", {0, 1, 0}},      {"amp", {0, 1, 0}},
      {"amps", {0, 1, 0}},   {"s", {0, 0, 1}},      {"sec", {0, 0, 1}},
      {"ohm", {1, -1, 0}},   {"ohms", {1, -1, 0}},  {"hz", {0, 0, -1}},
      {"vps", {1, 0, -1}},
  };
  return kSuffixes;
}

/// Parse a unit expression: FACTOR (('*'|'/') FACTOR)*, FACTOR being a base
/// unit name or `1`, optionally `^INT`. Returns false on malformed input.
inline bool parse_unit_expr(const std::string& text, Dim& out) {
  out = {};
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(unsigned(text[i]))) ++i;
  };
  int sign = +1;
  bool first = true;
  while (true) {
    skip_ws();
    if (i >= text.size()) return !first;
    std::size_t j = i;
    while (j < text.size() && (std::isalnum(unsigned(text[j])))) ++j;
    if (j == i) return false;
    const std::string name = text.substr(i, j - i);
    const auto it = base_units().find(name);
    if (it == base_units().end()) return false;
    i = j;
    int exp = 1;
    skip_ws();
    if (i < text.size() && text[i] == '^') {
      ++i;
      skip_ws();
      int e = 0;
      int esign = 1;
      if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
        esign = text[i] == '-' ? -1 : 1;
        ++i;
      }
      std::size_t digits = 0;
      while (i < text.size() && std::isdigit(unsigned(text[i]))) {
        e = e * 10 + (text[i] - '0');
        ++i;
        ++digits;
      }
      if (digits == 0 || e > 8) return false;
      exp = esign * e;
    }
    out.v += sign * exp * it->second.v;
    out.a += sign * exp * it->second.a;
    out.s += sign * exp * it->second.s;
    first = false;
    skip_ws();
    if (i >= text.size()) return true;
    if (text[i] == '*')
      sign = +1;
    else if (text[i] == '/')
      sign = -1;
    else
      return false;
    ++i;
  }
}

/// Parse one `// ssn-units:` annotation body (`name=EXPR, name2=EXPR`).
inline std::vector<std::pair<std::string, Dim>> parse_annotation(
    const std::string& body) {
  std::vector<std::pair<std::string, Dim>> bindings;
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    std::string item = body.substr(start, comma - start);
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos) {
      std::string name = item.substr(0, eq);
      std::string expr = item.substr(eq + 1);
      const auto trim = [](std::string& s) {
        while (!s.empty() && std::isspace(unsigned(s.front()))) s.erase(0, 1);
        while (!s.empty() && std::isspace(unsigned(s.back()))) s.pop_back();
      };
      trim(name);
      trim(expr);
      Dim d;
      if (!name.empty() && parse_unit_expr(expr, d))
        bindings.emplace_back(name, d);
    }
    start = comma + 1;
  }
  return bindings;
}

inline bool suffix_lookup(const std::string& name, Dim& out) {
  const std::size_t us = name.rfind('_');
  if (us == std::string::npos || us == 0 || us + 1 >= name.size()) return false;
  const auto it = suffix_units().find(name.substr(us + 1));
  if (it == suffix_units().end()) return false;
  out = it->second;
  return true;
}

/// One annotation binding, scoped to the brace depth where it appeared.
struct Binding {
  std::string name;
  Dim dim;
  int depth = 0;
};

/// Expression evaluator over the token stream. Anything it does not
/// recognize degrades to Unknown; only fully-Known mismatches fire.
class UnitChecker {
 public:
  UnitChecker(const std::vector<Token>& toks, const StrippedSource& stripped,
              const std::string& file, std::vector<Diagnostic>& out)
      : toks_(toks), file_(file), out_(out) {
    for (const auto& [line, body] : stripped.unit_annotations)
      for (auto& [name, dim] : parse_annotation(body))
        pending_.emplace_back(line, Binding{name, dim, 0});
    std::sort(pending_.begin(), pending_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  void run() {
    std::size_t i = 0;
    while (i < toks_.size()) {
      apply_annotations_up_to(toks_[i].line);
      const Token& t = toks_[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "{") {
          ++depth_;
          ++i;
          continue;
        }
        if (t.text == "}") {
          --depth_;
          while (!bindings_.empty() && bindings_.back().depth > depth_)
            bindings_.pop_back();
          ++i;
          continue;
        }
      }
      // Statement: tokens up to the next top-level ';', '{', or '}'.
      std::size_t end = i;
      int paren = 0;
      while (end < toks_.size()) {
        const std::string& p = toks_[end].text;
        if (toks_[end].kind == Token::Kind::kPunct) {
          if (p == "(" || p == "[") ++paren;
          if (p == ")" || p == "]") --paren;
          if (paren <= 0 && (p == ";" || p == "{" || p == "}")) break;
        }
        ++end;
      }
      check_statement(i, end);
      i = end;
      if (i < toks_.size() && toks_[i].text == ";") ++i;
      // '{' / '}' handled by the outer loop on the next iteration.
    }
  }

 private:
  void apply_annotations_up_to(int line) {
    while (next_pending_ < pending_.size() &&
           pending_[next_pending_].first <= line) {
      Binding b = pending_[next_pending_].second;
      b.depth = depth_;
      bindings_.push_back(b);
      ++next_pending_;
    }
  }

  bool lookup(const std::string& name, Dim& out) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it)
      if (it->name == name) {
        out = it->dim;
        return true;
      }
    return suffix_lookup(name, out);
  }

  void report(int line, const std::string& what, const UnitValue& lhs,
              const UnitValue& rhs) {
    detail::add(out_, file_, line, "SSN-L011",
                what + " mixes incompatible units [" + to_string(lhs.dim) +
                    "] and [" + to_string(rhs.dim) + "]");
  }

  /// Addition-like combination (+, -, min/max unification): flags a
  /// Known/Known mismatch and otherwise keeps the most informative value.
  UnitValue combine_add(const UnitValue& l, const UnitValue& r, int line,
                        const std::string& what) {
    if (l.is_known() && r.is_known()) {
      if (l.dim != r.dim) {
        report(line, what, l, r);
        return UnitValue::unknown();
      }
      return l;
    }
    if (l.is_known()) return r.state == UnitValue::State::kUnknown ? UnitValue::unknown() : l;
    if (r.is_known()) return l.state == UnitValue::State::kUnknown ? UnitValue::unknown() : r;
    if (l.state == UnitValue::State::kWildcard &&
        r.state == UnitValue::State::kWildcard)
      return UnitValue::wildcard();
    return UnitValue::unknown();
  }

  UnitValue combine_mul(const UnitValue& l, const UnitValue& r, int mul) {
    if (l.state == UnitValue::State::kUnknown ||
        r.state == UnitValue::State::kUnknown)
      return UnitValue::unknown();
    if (l.state == UnitValue::State::kWildcard) {
      if (r.state == UnitValue::State::kWildcard) return UnitValue::wildcard();
      Dim d = r.dim;
      if (mul < 0) {
        d.v = -d.v;
        d.a = -d.a;
        d.s = -d.s;
      }
      return UnitValue::known(d);
    }
    if (r.state == UnitValue::State::kWildcard) return l;
    Dim d = l.dim;
    d.v += mul * r.dim.v;
    d.a += mul * r.dim.a;
    d.s += mul * r.dim.s;
    return UnitValue::known(d);
  }

  // --- recursive-descent expression grammar over toks_[i, end) ------------

  bool at_punct(std::size_t i, std::size_t end, const char* p) const {
    return i < end && toks_[i].kind == Token::Kind::kPunct && toks_[i].text == p;
  }

  UnitValue parse_primary(std::size_t& i, std::size_t end) {
    if (i >= end) return UnitValue::unknown();
    const Token& t = toks_[i];
    if (t.kind == Token::Kind::kNumber) {
      ++i;
      return UnitValue::wildcard();
    }
    if (at_punct(i, end, "(")) {
      ++i;
      UnitValue v = parse_compare(i, end);
      if (at_punct(i, end, ")")) ++i;
      return v;
    }
    if (t.kind == Token::Kind::kIdent) {
      // Identifier chain: a::b, a.b, a->b — the last component names the
      // quantity. A trailing '(' makes it a call.
      std::string last = t.text;
      ++i;
      while (i + 1 < end && toks_[i].kind == Token::Kind::kPunct &&
             (toks_[i].text == "::" || toks_[i].text == "." ||
              toks_[i].text == "->") &&
             toks_[i + 1].kind == Token::Kind::kIdent) {
        last = toks_[i + 1].text;
        i += 2;
      }
      if (at_punct(i, end, "(")) return parse_call(last, i, end);
      if (at_punct(i, end, "[")) {
        // Indexing keeps the element's unit: inductances_h[k].
        int br = 0;
        while (i < end) {
          if (at_punct(i, end, "[")) ++br;
          if (at_punct(i, end, "]") && --br == 0) {
            ++i;
            break;
          }
          ++i;
        }
      }
      Dim d;
      if (lookup(last, d)) return UnitValue::known(d);
      return UnitValue::unknown();
    }
    ++i;  // unrecognized token: consume and give up on this operand
    return UnitValue::unknown();
  }

  UnitValue parse_call(const std::string& fn, std::size_t& i, std::size_t end) {
    // i points at '('. Collect top-level comma-separated argument ranges.
    std::vector<UnitValue> args;
    std::size_t j = i + 1;
    int paren = 1;
    std::size_t arg_start = j;
    int arg_line = j < end ? toks_[i].line : 0;
    const auto eval_arg = [&](std::size_t from, std::size_t to) {
      std::size_t p = from;
      args.push_back(parse_compare(p, to));
    };
    while (j < end && paren > 0) {
      if (toks_[j].kind == Token::Kind::kPunct) {
        if (toks_[j].text == "(") ++paren;
        else if (toks_[j].text == ")") {
          if (--paren == 0) break;
        } else if (toks_[j].text == "," && paren == 1) {
          eval_arg(arg_start, j);
          arg_start = j + 1;
        }
      }
      ++j;
    }
    if (arg_start < j) eval_arg(arg_start, j);
    i = j < end ? j + 1 : end;  // past ')'

    // An annotated or suffix-named function types its result: with
    // `// ssn-units: v_inf=V` every scenario.v_inf() call is a voltage.
    {
      Dim d;
      if (lookup(fn, d)) return UnitValue::known(d);
    }

    // Numeric casts are unit-transparent: double(n) keeps n's dimension.
    static const std::set<std::string> kCasts = {
        "double", "float", "int", "long", "unsigned", "size_t", "int64_t",
        "uint64_t", "int32_t", "uint32_t"};
    if (kCasts.count(fn) && args.size() == 1) return args[0];

    static const std::set<std::string> kUnify = {"abs",  "fabs",  "min",
                                                 "max",  "fmin",  "fmax",
                                                 "clamp", "hypot"};
    static const std::set<std::string> kDimensionless = {
        "exp", "expm1", "log", "log2", "log10", "log1p",
        "sin", "cos",   "tan", "tanh", "atan",  "asin", "acos", "sinh", "cosh"};
    if (kUnify.count(fn) && !args.empty()) {
      UnitValue v = args[0];
      for (std::size_t k = 1; k < args.size(); ++k)
        v = combine_add(v, args[k], arg_line, "call to '" + fn + "'");
      return v;
    }
    if (fn == "sqrt" && args.size() == 1 && args[0].is_known()) {
      const Dim d = args[0].dim;
      if (d.v % 2 == 0 && d.a % 2 == 0 && d.s % 2 == 0)
        return UnitValue::known({d.v / 2, d.a / 2, d.s / 2});
      return UnitValue::unknown();
    }
    if (kDimensionless.count(fn) && args.size() == 1 && args[0].is_known() &&
        args[0].dim != Dim{}) {
      detail::add(out_, file_, arg_line, "SSN-L011",
                  "'" + fn + "' applied to a dimensional quantity [" +
                      to_string(args[0].dim) +
                      "]; divide by a reference scale first");
      return UnitValue::unknown();
    }
    if (kDimensionless.count(fn)) return UnitValue::wildcard();
    return UnitValue::unknown();
  }

  UnitValue parse_unary(std::size_t& i, std::size_t end) {
    if (at_punct(i, end, "+") || at_punct(i, end, "-") ||
        at_punct(i, end, "!")) {
      ++i;
      return parse_unary(i, end);
    }
    return parse_primary(i, end);
  }

  UnitValue parse_mul(std::size_t& i, std::size_t end) {
    UnitValue v = parse_unary(i, end);
    while (i < end && toks_[i].kind == Token::Kind::kPunct &&
           (toks_[i].text == "*" || toks_[i].text == "/")) {
      const int mul = toks_[i].text == "*" ? +1 : -1;
      ++i;
      const UnitValue r = parse_unary(i, end);
      v = combine_mul(v, r, mul);
    }
    return v;
  }

  UnitValue parse_add(std::size_t& i, std::size_t end) {
    UnitValue v = parse_mul(i, end);
    while (i < end && toks_[i].kind == Token::Kind::kPunct &&
           (toks_[i].text == "+" || toks_[i].text == "-")) {
      const int line = toks_[i].line;
      const std::string op = toks_[i].text;
      ++i;
      const UnitValue r = parse_mul(i, end);
      v = combine_add(v, r, line, "'" + op + "'");
    }
    return v;
  }

  UnitValue parse_compare(std::size_t& i, std::size_t end) {
    UnitValue v = parse_add(i, end);
    while (i < end && toks_[i].kind == Token::Kind::kPunct &&
           (toks_[i].text == "<" || toks_[i].text == ">" ||
            toks_[i].text == "<=" || toks_[i].text == ">=" ||
            toks_[i].text == "==" || toks_[i].text == "!=")) {
      const int line = toks_[i].line;
      const std::string op = toks_[i].text;
      ++i;
      const UnitValue r = parse_add(i, end);
      if (v.is_known() && r.is_known() && v.dim != r.dim)
        report(line, "'" + op + "' comparison", v, r);
      v = UnitValue::unknown();  // a bool; further unit algebra is meaningless
    }
    return v;
  }

  /// Statement-level check: find a top-level assignment and compare sides;
  /// otherwise just evaluate the statement for its side-effect diagnostics.
  void check_statement(std::size_t begin, std::size_t end) {
    std::size_t assign = end;
    int paren = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (toks_[k].kind != Token::Kind::kPunct) continue;
      const std::string& p = toks_[k].text;
      if (p == "(" || p == "[") ++paren;
      if (p == ")" || p == "]") --paren;
      if (paren == 0 && (p == "=" || p == "+=" || p == "-=")) {
        assign = k;
        break;
      }
      if (paren == 0 && (p == "*=" || p == "/=")) return;  // changes the unit
    }
    if (assign == end) {
      std::size_t i = begin;
      while (i < end) parse_compare(i, end);
      return;
    }
    // LHS unit: the identifier chain immediately before the operator.
    UnitValue lhs = UnitValue::unknown();
    std::string lhs_name;
    if (assign > begin && toks_[assign - 1].kind == Token::Kind::kIdent) {
      lhs_name = toks_[assign - 1].text;
      Dim d;
      if (lookup(lhs_name, d)) lhs = UnitValue::known(d);
    }
    std::size_t i = assign + 1;
    UnitValue rhs = parse_compare(i, end);
    while (i < end) parse_compare(i, end);  // e.g. comma expressions
    if (lhs.is_known() && rhs.is_known() && lhs.dim != rhs.dim) {
      report(toks_[assign].line, "assignment", lhs, rhs);
    } else if (!lhs_name.empty() && !lhs.is_known() && rhs.is_known() &&
               toks_[assign].text == "=") {
      // Dataflow: `const double l = scenario_.inductance;` teaches the
      // checker that l is an inductance for the rest of this scope.
      bindings_.push_back({lhs_name, rhs.dim, depth_});
    }
  }

  const std::vector<Token>& toks_;
  std::string file_;
  std::vector<Diagnostic>& out_;
  std::vector<std::pair<int, Binding>> pending_;  // (line, binding)
  std::size_t next_pending_ = 0;
  std::vector<Binding> bindings_;
  int depth_ = 0;
};

}  // namespace detail_units

/// True when the units pass is armed for this file: the model layers the
/// ISSUE calls out, plus any file that opts in with an annotation.
inline bool units_pass_applies(const FileInfo& info) {
  if (!info.stripped.unit_annotations.empty()) return true;
  return info.layer == "core" || info.layer == "process" || info.layer == "sim";
}

/// SSN-L011 over one project file.
inline void pass_units_file(const FileInfo& info, std::vector<Diagnostic>& out) {
  if (!units_pass_applies(info)) return;
  const std::vector<Token> toks = tokenize(info.stripped.code);
  detail_units::UnitChecker checker(toks, info.stripped, info.display, out);
  checker.run();
}

/// SSN-L011 over the whole project.
inline void pass_units(const Project& proj, std::vector<Diagnostic>& out) {
  for (const FileInfo& info : proj.files) pass_units_file(info, out);
}

}  // namespace ssnlint
