// ssnlint output back-ends: SARIF 2.1.0 emission and baseline files.
//
// SARIF is what code-scanning UIs ingest (GitHub's security tab, VS Code
// SARIF viewers); the emitter is hand-rolled because the tool is
// dependency-free by design. Baselines let a new rule land with existing
// findings grandfathered: `--write-baseline` records the current findings'
// fingerprints, `--baseline` filters exactly those on later runs. The
// fingerprint hashes the rule, the file basename, and the offending line
// with whitespace removed (see fingerprint_of in ssnlint_core.hpp), so a
// baselined finding survives unrelated edits but resurfaces the moment the
// line itself changes.
#pragma once

#include "ssnlint_core.hpp"

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace ssnlint {

namespace detail_output {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail_output

/// Write the findings as a SARIF 2.1.0 log with the full rule catalog as
/// tool metadata and the baseline fingerprint as a partial fingerprint.
inline void write_sarif(std::ostream& os, const std::vector<Diagnostic>& diags) {
  using detail_output::json_escape;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\n"
     << "      \"name\": \"ssnlint\",\n"
     << "      \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
     << "      \"rules\": [\n";
  const auto& rules = rule_catalog();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "        {\"id\": \"" << json_escape(rules[i].first) << "\", "
       << "\"shortDescription\": {\"text\": \"" << json_escape(rules[i].second)
       << "\"}, \"help\": {\"text\": \"" << json_escape(rule_fixit(rules[i].first))
       << "\"}}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }},\n"
     << "    \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    std::string text = d.message;
    if (!d.hint.empty()) text += "\nfix: " + d.hint;
    os << "      {\"ruleId\": \"" << json_escape(d.rule) << "\", "
       << "\"level\": \"error\", "
       << "\"message\": {\"text\": \"" << json_escape(text) << "\"}, "
       << "\"locations\": [{\"physicalLocation\": {"
       << "\"artifactLocation\": {\"uri\": \"" << json_escape(d.file) << "\"}, "
       << "\"region\": {\"startLine\": " << (d.line > 0 ? d.line : 1) << "}}}], "
       << "\"partialFingerprints\": {\"ssnlintFingerprint/v1\": \""
       << json_escape(d.fingerprint) << "\"}}"
       << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  os << "    ]\n"
     << "  }]\n"
     << "}\n";
}

// ---------------------------------------------------------------------------
// Baselines. A baseline file is line-oriented: fingerprint first, the rest
// of the line is human context (rule, location, message) that the loader
// ignores. '#' lines are comments.
// ---------------------------------------------------------------------------

inline std::set<std::string> load_baseline(const std::filesystem::path& path) {
  std::set<std::string> fingerprints;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(unsigned(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') continue;
    std::size_t j = i;
    while (j < line.size() && !std::isspace(unsigned(line[j]))) ++j;
    fingerprints.insert(line.substr(i, j - i));
  }
  return fingerprints;
}

inline void write_baseline(std::ostream& os,
                           const std::vector<Diagnostic>& diags) {
  os << "# ssnlint baseline: grandfathered findings, one per line.\n"
     << "# <fingerprint> <rule> <file>:<line> <message>\n"
     << "# Regenerate with: ssnlint --write-baseline <this-file> <paths...>\n";
  std::set<std::string> seen;
  for (const Diagnostic& d : diags) {
    if (!seen.insert(d.fingerprint).second) continue;
    os << d.fingerprint << ' ' << d.rule << ' '
       << std::filesystem::path(d.file).filename().string() << ':' << d.line
       << ' ' << d.message << '\n';
  }
}

/// Split findings into kept (not baselined) and suppressed-by-baseline.
inline std::vector<Diagnostic> apply_baseline(
    const std::vector<Diagnostic>& diags, const std::set<std::string>& baseline,
    std::size_t* suppressed = nullptr) {
  std::vector<Diagnostic> kept;
  std::size_t hits = 0;
  for (const Diagnostic& d : diags) {
    if (baseline.count(d.fingerprint)) {
      ++hits;
      continue;
    }
    kept.push_back(d);
  }
  if (suppressed) *suppressed = hits;
  return kept;
}

}  // namespace ssnlint
