// ssnlint — project-specific numeric-hygiene checker for ssnkit.
//
// A deliberately small, dependency-free static checker for the handful of
// mistakes that matter most in this codebase: silent NaN propagation and
// numeric-comparison bugs that a general linter does not know to look for.
// It lexes (it does not parse) C++, which keeps it fast and predictable;
// every rule is a token-pattern with a documented rationale.
//
// Rule catalog (see docs/STATIC_ANALYSIS.md for examples):
//   SSN-L001  exact ==/!= comparison against a floating-point literal
//   SSN-L002  use of std::rand/srand (non-deterministic across platforms)
//   SSN-L003  solver entry point without an SSN_REQUIRE/SSN_ASSERT_FINITE/
//             SSN_ENSURE contract guard
//   SSN-L004  uninitialized double member in a struct
//   SSN-L005  catch (...) that swallows the exception (no rethrow)
//   SSN-L006  bare `throw std::runtime_error` inside src/sim or src/numeric
//             (solver failures must be typed support::SolverError so callers
//             can tell retryable from fatal)
//   SSN-L007  bare std::stod/stoi/strtod/atof-family call outside the
//             hardened parsing helpers in src/io/diagnostics.cpp (they
//             accept "inf"/"nan"/hex and throw std::out_of_range; use
//             io::parse_double_prefix / io::parse_int_strict)
//   SSN-L008  dense Matrix construction or SparseMatrix::from_dense inside
//             a loop body in src/sim or src/numeric (the solver hot path
//             stamps into a cached sparse pattern; a per-iteration dense
//             build reintroduces the O(n^2) allocate-and-convert cost the
//             stamped workspace exists to avoid)
//   SSN-L009  lifecycle hygiene: raw signal/sigaction/raise outside
//             src/support (signal handling must go through
//             support::ScopedSignalCancel so SIGINT/SIGTERM trip the shared
//             RunContext instead of racing ad-hoc handlers), or an unbounded
//             loop (while(true)/while(1)/for(;;)) in src/analysis batch code
//             whose body never consults the lifecycle layer
//             (stop_requested/try_start_item/RunContext) — such a loop can
//             not be cancelled or deadlined cooperatively
//
// Suppression: append `// ssnlint-ignore(SSN-L001)` (comma-separated list
// allowed) on the offending line or the line directly above it.
#pragma once

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ssnlint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

inline const std::vector<std::pair<std::string, std::string>>& rule_catalog() {
  static const std::vector<std::pair<std::string, std::string>> kRules = {
      {"SSN-L001", "exact ==/!= comparison against a floating-point literal"},
      {"SSN-L002", "std::rand/srand is banned; use <random> engines"},
      {"SSN-L003", "solver entry point lacks a contract guard"},
      {"SSN-L004", "uninitialized double member in a struct"},
      {"SSN-L005", "catch (...) swallows the exception"},
      {"SSN-L006", "bare throw std::runtime_error in solver code"},
      {"SSN-L007", "bare std::stod/stoi-family call outside hardened parsers"},
      {"SSN-L008", "dense Matrix build inside a loop in solver code"},
      {"SSN-L009", "raw signal handling or uncancellable batch loop"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Pass 1: strip comments and string/character literals (preserving line
// structure) and harvest `ssnlint-ignore(...)` suppressions from comments.
// ---------------------------------------------------------------------------

struct StrippedSource {
  std::string code;  // same length/line structure as the input
  // line number (1-based) -> rule IDs suppressed on that line and the next
  std::map<int, std::set<std::string>> suppressions;
};

namespace detail {

inline void harvest_suppressions(const std::string& comment, int line,
                                 std::map<int, std::set<std::string>>& out) {
  const std::string kTag = "ssnlint-ignore(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string inner = comment.substr(open, close - open);
    std::stringstream ss(inner);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](unsigned char c) { return std::isspace(c); }),
                 rule.end());
      if (!rule.empty()) out[line].insert(rule);
    }
    pos = close;
  }
}

}  // namespace detail

inline StrippedSource strip_source(const std::string& src) {
  StrippedSource out;
  out.code.assign(src.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  int line = 1;
  std::string comment_text;    // accumulated text of the current comment
  int comment_line = 1;        // line the current comment chunk lives on
  std::string raw_delim;       // )delim" terminator for raw strings

  const auto flush_comment = [&]() {
    if (!comment_text.empty())
      detail::harvest_suppressions(comment_text, comment_line, out.suppressions);
    comment_text.clear();
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      // A comment spanning lines registers its directive per line chunk.
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      } else if (state == State::kBlockComment) {
        flush_comment();
        comment_line = line + 1;
      }
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line;
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R (possibly u8R etc.).
          if (i > 0 && src[i - 1] == 'R') {
            std::size_t j = i + 1;
            std::string delim;
            while (j < src.size() && src[j] != '(') delim += src[j++];
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            out.code[i] = '"';
          } else {
            state = State::kString;
            out.code[i] = '"';
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are part of numbers, not chars.
          const bool digit_sep = i > 0 && std::isalnum(unsigned(src[i - 1])) &&
                                 i + 1 < src.size() &&
                                 std::isalnum(unsigned(src[i + 1]));
          out.code[i] = '\'';
          if (!digit_sep) state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        comment_text += c;
        break;
      case State::kBlockComment:
        comment_text += c;
        if (c == '*' && next == '/') {
          flush_comment();
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (newline escapes are not expected here)
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == raw_delim[0] && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
    }
  }
  flush_comment();
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: lex the stripped code into identifier / number / punctuation tokens.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

namespace detail {

inline bool ident_start(char c) {
  return std::isalpha(unsigned(c)) || c == '_';
}
inline bool ident_char(char c) {
  return std::isalnum(unsigned(c)) || c == '_';
}

}  // namespace detail

inline std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(unsigned(c))) {
      ++i;
      continue;
    }
    if (detail::ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && detail::ident_char(code[j])) ++j;
      toks.push_back({Token::Kind::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(unsigned(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(unsigned(code[i + 1])))) {
      // pp-number: digits, letters, dots, quotes-as-separators, and exponent
      // signs when preceded by e/E/p/P.
      std::size_t j = i + 1;
      while (j < n) {
        const char d = code[j];
        if (detail::ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                    code[j - 1] == 'p' || code[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      toks.push_back({Token::Kind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: greedily take the few multi-char tokens the rules need.
    static const std::vector<std::string> kMulti = {
        "...", "->*", "<<=", ">>=", "::", "->", "==", "!=", "<=", ">=",
        "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "<<", ">>"};
    std::string text(1, c);
    for (const auto& m : kMulti) {
      if (code.compare(i, m.size(), m) == 0) {
        text = m;
        break;
      }
    }
    toks.push_back({Token::Kind::kPunct, text, line});
    i += text.size();
  }
  return toks;
}

inline bool is_float_literal(const std::string& t) {
  if (t.size() >= 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) return false;
  return t.find('.') != std::string::npos || t.find('e') != std::string::npos ||
         t.find('E') != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rules. Each takes the token stream (and emits diagnostics); suppressions
// are applied afterwards by lint_source().
// ---------------------------------------------------------------------------

namespace detail {

inline void add(std::vector<Diagnostic>& out, const std::string& file, int line,
                const char* rule, std::string message) {
  out.push_back({file, line, rule, std::move(message)});
}

/// Index of the matching closer for the opener at `open` (e.g. '(' -> ')'),
/// or toks.size() when unbalanced.
inline std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                                 const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

// SSN-L001: `x == 0.3`-style comparisons. Exact equality on doubles is almost
// always a rounding bug; the rare intentional exact-zero skip gets an
// ssnlint-ignore.
inline void rule_float_compare(const std::vector<Token>& toks,
                               const std::string& file,
                               std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kPunct || (t.text != "==" && t.text != "!="))
      continue;
    bool flagged = false;
    if (i > 0 && toks[i - 1].kind == Token::Kind::kNumber &&
        is_float_literal(toks[i - 1].text))
      flagged = true;
    std::size_t r = i + 1;
    if (r < toks.size() && toks[r].kind == Token::Kind::kPunct &&
        (toks[r].text == "+" || toks[r].text == "-"))
      ++r;  // unary sign
    if (r < toks.size() && toks[r].kind == Token::Kind::kNumber &&
        is_float_literal(toks[r].text))
      flagged = true;
    if (flagged)
      add(out, file, t.line, "SSN-L001",
          "exact '" + t.text +
              "' comparison against a floating-point literal; compare with a "
              "tolerance (or ssnlint-ignore an intentional exact-zero check)");
  }
}

// SSN-L002: std::rand/srand. The C PRNG is low-quality and its sequence is
// implementation-defined, which breaks Monte Carlo reproducibility.
inline void rule_banned_rand(const std::vector<Token>& toks,
                             const std::string& file,
                             std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || (t.text != "rand" && t.text != "srand"))
      continue;
    // Must look like a call (next token '('), not e.g. a member named rand.
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) continue;
    add(out, file, t.line, "SSN-L002",
        "'" + t.text + "' is banned; use a seeded <random> engine");
  }
}

// SSN-L003: solver entry points must carry at least one contract guard so a
// NaN cannot cross a solver boundary silently.
inline bool is_solver_entry_name(const std::string& name) {
  if (name.rfind("solve", 0) == 0) return true;
  static const std::set<std::string> kExact = {
      "rk4",      "rk45",   "levenberg_marquardt", "dc_operating_point",
      "lu_solve", "run_dc", "run_transient",       "run_ac"};
  return kExact.count(name) > 0;
}

inline void rule_unguarded_solver(const std::vector<Token>& toks,
                                  const std::string& file,
                                  std::vector<Diagnostic>& out) {
  static const std::set<std::string> kGuards = {"SSN_REQUIRE", "SSN_ENSURE",
                                                "SSN_ASSERT_FINITE"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || !is_solver_entry_name(t.text)) continue;
    if (toks[i + 1].text != "(") continue;
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call, not a definition
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // A definition: optional qualifiers, then the body brace.
    std::size_t j = close + 1;
    while (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
           (toks[j].text == "const" || toks[j].text == "noexcept" ||
            toks[j].text == "override" || toks[j].text == "final"))
      ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;  // call or prototype
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    bool guarded = false;
    for (std::size_t k = j; k < body_end && !guarded; ++k)
      if (toks[k].kind == Token::Kind::kIdent && kGuards.count(toks[k].text))
        guarded = true;
    if (!guarded)
      add(out, file, t.line, "SSN-L003",
          "solver entry point '" + t.text +
              "' has no SSN_REQUIRE/SSN_ENSURE/SSN_ASSERT_FINITE guard");
  }
}

// SSN-L004: `double x;` members in structs start as garbage; an aggregate
// someone forgets to brace-init then feeds indeterminate values into the
// solvers (UB, and exactly the kind of bug ASan/MSan only catch at runtime).
inline void rule_uninitialized_double_member(const std::vector<Token>& toks,
                                             const std::string& file,
                                             std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "struct") continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) ++j;  // name
    // Skip a base-clause up to the opening brace; stop at ';' (fwd decl).
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    int depth = 0;
    for (std::size_t k = j + 1; k < body_end; ++k) {
      if (toks[k].kind == Token::Kind::kPunct) {
        if (toks[k].text == "{") ++depth;
        if (toks[k].text == "}") --depth;
        continue;
      }
      if (depth != 0) continue;  // inside a member function / nested scope
      if (toks[k].kind != Token::Kind::kIdent || toks[k].text != "double")
        continue;
      if (k > 0 && (toks[k - 1].text == "static" || toks[k - 1].text == "constexpr" ||
                    toks[k - 1].text == "," || toks[k - 1].text == "("))
        continue;  // statics handled elsewhere; ',' / '(' => parameter list
      // Parse: double name [, name...] terminated by ';'. Any declarator not
      // followed by '=' or '{' is uninitialized. Bail on functions/pointers.
      std::size_t p = k + 1;
      while (p < body_end) {
        if (toks[p].kind != Token::Kind::kIdent) break;  // e.g. '*', '&'
        const std::string member = toks[p].text;
        ++p;
        if (p >= body_end) break;
        const std::string& d = toks[p].text;
        if (d == "=" || d == "{") {
          // initialized: skip to ',' or ';' at depth 0
          int br = 0;
          while (p < body_end) {
            if (toks[p].text == "{" || toks[p].text == "(") ++br;
            if (toks[p].text == "}" || toks[p].text == ")") --br;
            if (br == 0 && (toks[p].text == ";" || toks[p].text == ",")) break;
            ++p;
          }
        } else if (d == ";" || d == ",") {
          add(out, file, toks[k].line, "SSN-L004",
              "struct member 'double " + member +
                  "' has no initializer; default it (e.g. '= 0.0')");
        } else {
          break;  // function, array, bitfield... out of scope for this rule
        }
        if (p < body_end && toks[p].text == ",") {
          ++p;
          continue;
        }
        break;
      }
    }
  }
}

// SSN-L005: a catch-all that neither rethrows nor converts hides solver
// failures as silently-wrong results.
inline void rule_catch_all_swallow(const std::vector<Token>& toks,
                                   const std::string& file,
                                   std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "catch") continue;
    if (toks[i + 1].text != "(" || toks[i + 2].text != "..." ||
        toks[i + 3].text != ")" || toks[i + 4].text != "{")
      continue;
    const std::size_t body_end = match_forward(toks, i + 4, "{", "}");
    bool rethrows = false;
    for (std::size_t k = i + 5; k < body_end && !rethrows; ++k)
      if (toks[k].kind == Token::Kind::kIdent && toks[k].text == "throw")
        rethrows = true;
    if (!rethrows)
      add(out, file, toks[i].line, "SSN-L005",
          "catch (...) swallows the exception; rethrow or catch a concrete "
          "type");
  }
}

// SSN-L006: solver code (the sim and numeric layers) must throw the typed
// support::SolverError, not a bare std::runtime_error — the recovery ladder
// and batch drivers dispatch on SolverError::kind()/retryable(), and an
// untyped throw silently opts out of recovery.
inline bool is_solver_layer_path(const std::string& file) {
  for (const auto& part : std::filesystem::path(file))
    if (part == "sim" || part == "numeric") return true;
  return false;
}

inline void rule_untyped_solver_throw(const std::vector<Token>& toks,
                                      const std::string& file,
                                      std::vector<Diagnostic>& out) {
  if (!is_solver_layer_path(file)) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "throw") continue;
    std::size_t j = i + 1;
    if (j + 1 < toks.size() && toks[j].text == "std" && toks[j + 1].text == "::")
      j += 2;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
        toks[j].text == "runtime_error")
      add(out, file, toks[i].line, "SSN-L006",
          "bare 'throw std::runtime_error' in solver code; throw "
          "support::SolverError with a kind and diagnostics instead");
  }
}

// SSN-L007: the std::sto* / strto* / ato* family silently accepts "inf",
// "nan", hex floats ("0x1p3") and leading whitespace, and throws
// std::out_of_range on overflow — three surprises that have no business at
// an input boundary. All conversions must go through the hardened
// io::parse_double_prefix / io::parse_int_strict, which live in
// src/io/diagnostics.cpp (the single allowlisted file).
inline bool is_hardened_parser_file(const std::string& file) {
  const std::filesystem::path p(file);
  return p.filename() == "diagnostics.cpp" &&
         p.parent_path().filename() == "io";
}

inline void rule_bare_numeric_conversion(const std::vector<Token>& toks,
                                         const std::string& file,
                                         std::vector<Diagnostic>& out) {
  if (is_hardened_parser_file(file)) return;
  static const std::set<std::string> kBanned = {
      "stod",  "stof",  "stold",  "stoi",   "stol",   "stoll", "stoul",
      "stoull", "strtod", "strtof", "strtold", "strtol", "strtoll",
      "strtoul", "strtoull", "atof", "atoi", "atol", "atoll"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || kBanned.count(t.text) == 0) continue;
    if (toks[i + 1].text != "(") continue;  // must look like a call
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call on some unrelated object
    add(out, file, t.line, "SSN-L007",
        "bare '" + t.text +
            "' accepts inf/nan/hex and throws std::out_of_range; use "
            "io::parse_double_prefix / io::parse_int_strict instead");
  }
}

// SSN-L008: dense-matrix construction or from_dense conversion inside a loop
// body in solver code. The engine's hot path stamps straight into a cached
// sparse pattern (StampedMatrix + SparseFactor::refactorize) precisely so no
// O(n^2) dense build happens per Newton iteration or per time step; a
// `Matrix a(n, n)` or `SparseMatrix::from_dense(...)` inside a loop quietly
// reintroduces that cost. Loop-free dense builds (setup, factor once) are
// fine, as is anything outside src/sim and src/numeric.
inline void rule_dense_in_loop(const std::vector<Token>& toks,
                               const std::string& file,
                               std::vector<Diagnostic>& out) {
  if (!is_solver_layer_path(file)) return;
  // Token ranges of every loop body: for/while (...) { ... } or a single
  // statement up to ';', and do { ... } while (...).
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    std::size_t body = toks.size();
    if (toks[i].text == "for" || toks[i].text == "while") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;
      body = close + 1;
    } else if (toks[i].text == "do") {
      body = i + 1;
    } else {
      continue;
    }
    if (body >= toks.size()) continue;
    if (toks[body].text == "{") {
      bodies.emplace_back(body + 1, match_forward(toks, body, "{", "}"));
    } else {
      std::size_t j = body;
      while (j < toks.size() && toks[j].text != ";") ++j;
      bodies.emplace_back(body, j);
    }
  }
  if (bodies.empty()) return;
  const auto in_loop = [&bodies](std::size_t k) {
    for (const auto& range : bodies)
      if (k >= range.first && k < range.second) return true;
    return false;
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member access on an unrelated object
    if (!in_loop(i)) continue;
    // `Matrix(...)` temporary, or `Matrix name(...)` / `Matrix name{...}`.
    const bool ctor_temp = toks[i + 1].text == "(";
    const bool ctor_named =
        i + 2 < toks.size() && toks[i + 1].kind == Token::Kind::kIdent &&
        (toks[i + 2].text == "(" || toks[i + 2].text == "{");
    if (t.text == "Matrix" && (ctor_temp || ctor_named)) {
      add(out, file, t.line, "SSN-L008",
          "dense Matrix constructed inside a loop in solver code; hoist it "
          "out or stamp into a cached StampedMatrix pattern");
    } else if (t.text == "from_dense" && ctor_temp) {
      add(out, file, t.line, "SSN-L008",
          "SparseMatrix::from_dense inside a loop in solver code; build the "
          "pattern once and refill with StampedMatrix::clear + stamps");
    }
  }
}

// SSN-L009: job-lifecycle hygiene. Two patterns:
//
//  (a) A raw signal()/sigaction()/raise() call outside src/support. The CLI
//      installs exactly one handler pair through support::ScopedSignalCancel
//      (which trips the shared RunContext and restores the previous handler
//      on scope exit); a second ad-hoc handler silently replaces it and the
//      batch stops responding to Ctrl-C. std::raise in tests is fine — the
//      linter only runs over src/.
//
//  (b) An unbounded loop — `while (true)`, `while (1)`, `for (;;)` — in
//      src/analysis whose body never consults the lifecycle layer
//      (stop_requested / try_start_item / RunContext / cancel_requested).
//      Batch drivers are exactly the code --deadline and SIGINT must be able
//      to stop; an unbounded loop that never polls is uncancellable.
inline bool is_support_layer_path(const std::string& file) {
  for (const auto& part : std::filesystem::path(file))
    if (part == "support") return true;
  return false;
}

inline bool is_analysis_layer_path(const std::string& file) {
  for (const auto& part : std::filesystem::path(file))
    if (part == "analysis") return true;
  return false;
}

inline void rule_lifecycle_hygiene(const std::vector<Token>& toks,
                                   const std::string& file,
                                   std::vector<Diagnostic>& out) {
  // (a) raw signal-management calls outside the support layer.
  if (!is_support_layer_path(file)) {
    static const std::set<std::string> kSignalCalls = {"signal", "sigaction",
                                                       "raise"};
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent || kSignalCalls.count(t.text) == 0)
        continue;
      if (toks[i + 1].text != "(") continue;  // must look like a call
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
        continue;  // member call on an unrelated object
      // `struct sigaction sa;` declares the type, `sigaction(...)` calls it;
      // the call-position check above already separates them.
      add(out, file, t.line, "SSN-L009",
          "raw '" + t.text +
              "' outside src/support; install handlers through "
              "support::ScopedSignalCancel so the shared RunContext is "
              "tripped");
    }
  }

  // (b) unbounded loops in analysis batch code that never poll the
  // lifecycle layer.
  if (!is_analysis_layer_path(file)) return;
  static const std::set<std::string> kLifecycleTokens = {
      "stop_requested", "try_start_item", "RunContext", "cancel_requested"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    bool unbounded = false;
    std::size_t close = toks.size();
    if ((toks[i].text == "while" || toks[i].text == "for") &&
        toks[i + 1].text == "(") {
      close = match_forward(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;
      if (toks[i].text == "while") {
        // while (true) / while (1)
        unbounded = close == i + 3 &&
                    (toks[i + 2].text == "true" || toks[i + 2].text == "1");
      } else {
        // for (;;)
        unbounded =
            close == i + 4 && toks[i + 2].text == ";" && toks[i + 3].text == ";";
      }
    }
    if (!unbounded) continue;
    std::size_t body_end = toks.size();
    std::size_t body = close + 1;
    if (body < toks.size() && toks[body].text == "{") {
      body_end = match_forward(toks, body, "{", "}");
      ++body;
    } else {
      body_end = body;
      while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
    }
    bool polls = false;
    for (std::size_t k = body; k < body_end && !polls; ++k)
      if (toks[k].kind == Token::Kind::kIdent &&
          kLifecycleTokens.count(toks[k].text) != 0)
        polls = true;
    if (!polls)
      add(out, file, toks[i].line, "SSN-L009",
          "unbounded loop in analysis batch code never polls the lifecycle "
          "layer; check RunContext::stop_requested (or gate items with "
          "try_start_item) so --deadline and SIGINT can stop it");
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

inline std::vector<Diagnostic> lint_source(const std::string& file,
                                           const std::string& source) {
  const StrippedSource stripped = strip_source(source);
  const std::vector<Token> toks = tokenize(stripped.code);
  std::vector<Diagnostic> all;
  detail::rule_float_compare(toks, file, all);
  detail::rule_banned_rand(toks, file, all);
  detail::rule_unguarded_solver(toks, file, all);
  detail::rule_uninitialized_double_member(toks, file, all);
  detail::rule_catch_all_swallow(toks, file, all);
  detail::rule_untyped_solver_throw(toks, file, all);
  detail::rule_bare_numeric_conversion(toks, file, all);
  detail::rule_dense_in_loop(toks, file, all);
  detail::rule_lifecycle_hygiene(toks, file, all);

  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : all) {
    bool suppressed = false;
    for (int l : {d.line, d.line - 1}) {
      const auto it = stripped.suppressions.find(l);
      if (it != stripped.suppressions.end() &&
          (it->second.count(d.rule) || it->second.count("all")))
        suppressed = true;
    }
    if (!suppressed) kept.push_back(d);
  }
  std::sort(kept.begin(), kept.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

inline std::vector<Diagnostic> lint_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {{path.string(), 0, "SSN-L000", "cannot open file"}};
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path.string(), ss.str());
}

inline bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Lint every .hpp/.cpp under each path (file or directory, recursive).
inline std::vector<Diagnostic> lint_paths(const std::vector<std::string>& paths,
                                          std::size_t* files_scanned = nullptr) {
  std::vector<std::filesystem::path> files;
  for (const std::string& p : paths) {
    const std::filesystem::path root(p);
    if (std::filesystem::is_directory(root)) {
      for (const auto& e : std::filesystem::recursive_directory_iterator(root))
        if (e.is_regular_file() && lintable_extension(e.path()))
          files.push_back(e.path());
    } else {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned) *files_scanned = files.size();
  std::vector<Diagnostic> out;
  for (const auto& f : files) {
    std::vector<Diagnostic> d = lint_file(f);
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

}  // namespace ssnlint
