// ssnlint — project-specific numeric-hygiene checker for ssnkit.
//
// A deliberately small, dependency-free static checker for the handful of
// mistakes that matter most in this codebase: silent NaN propagation and
// numeric-comparison bugs that a general linter does not know to look for.
// It lexes (it does not parse) C++, which keeps it fast and predictable;
// every rule is a token-pattern with a documented rationale.
//
// Rule catalog (see docs/STATIC_ANALYSIS.md for examples):
//   SSN-L001  exact ==/!= comparison against a floating-point literal
//   SSN-L002  use of std::rand/srand (non-deterministic across platforms)
//   SSN-L003  solver entry point without an SSN_REQUIRE/SSN_ASSERT_FINITE/
//             SSN_ENSURE contract guard
//   SSN-L004  uninitialized double member in a struct
//   SSN-L005  catch (...) that swallows the exception (no rethrow)
//   SSN-L006  bare `throw std::runtime_error` inside src/sim or src/numeric
//             (solver failures must be typed support::SolverError so callers
//             can tell retryable from fatal)
//   SSN-L007  bare std::stod/stoi/strtod/atof-family call outside the
//             hardened parsing helpers in src/io/diagnostics.cpp (they
//             accept "inf"/"nan"/hex and throw std::out_of_range; use
//             io::parse_double_prefix / io::parse_int_strict)
//   SSN-L008  dense Matrix construction or SparseMatrix::from_dense inside
//             a loop body in src/sim or src/numeric (the solver hot path
//             stamps into a cached sparse pattern; a per-iteration dense
//             build reintroduces the O(n^2) allocate-and-convert cost the
//             stamped workspace exists to avoid)
//   SSN-L009  lifecycle hygiene: raw signal/sigaction/raise outside
//             src/support (signal handling must go through
//             support::ScopedSignalCancel so SIGINT/SIGTERM trip the shared
//             RunContext instead of racing ad-hoc handlers), or an unbounded
//             loop (while(true)/while(1)/for(;;)) in src/analysis batch code
//             whose body never consults the lifecycle layer
//             (stop_requested/try_start_item/RunContext) — such a loop can
//             not be cancelled or deadlined cooperatively
//   SSN-L013  a solver/analysis result (run_transient, measure_ssn,
//             monte_carlo_vmax, ...) consumed without ever inspecting its
//             status or TrustReport (ok()/error/stop/trust/...): reading
//             v_max off a result whose verdict was never looked at is
//             exactly the silently-wrong consumption the trust layer exists
//             to prevent
//   SSN-L014  process hygiene: raw fork/vfork/waitpid/wait/kill/exec-family/
//             posix_spawn calls outside src/support and the serve-layer
//             supervisor. Child processes that are not registered with the
//             crash-kill registry (support/crashclean.hpp) survive a
//             crash-path _Exit as orphans, and ad-hoc waitpid loops race the
//             supervisor's reaper; spawn through support/subprocess.hpp
//
// Whole-project passes (ssnlint_project.hpp / _units.hpp / _registry.hpp):
//   SSN-L010  include-graph layering: upward includes against the
//             architecture order and include cycles
//   SSN-L011  physical-units dataflow: unit-incompatible arithmetic on
//             annotated / conventionally named quantities
//   SSN-L012  diagnostic-code registry: duplicate, undocumented, or dead
//             SSN-Exxx/Wxxx/Lxxx codes vs. the docs/ catalog
//
// Suppression: append `// ssnlint-ignore(SSN-L001)` (comma-separated list
// allowed) on the offending line or the line directly above it.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ssnlint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;         ///< fix-it guidance, shown under the finding
  std::string fingerprint;  ///< line-content hash for baseline matching
};

inline const std::vector<std::pair<std::string, std::string>>& rule_catalog() {
  static const std::vector<std::pair<std::string, std::string>> kRules = {
      {"SSN-L001", "exact ==/!= comparison against a floating-point literal"},
      {"SSN-L002", "std::rand/srand is banned; use <random> engines"},
      {"SSN-L003", "solver entry point lacks a contract guard"},
      {"SSN-L004", "uninitialized double member in a struct"},
      {"SSN-L005", "catch (...) swallows the exception"},
      {"SSN-L006", "bare throw std::runtime_error in solver code"},
      {"SSN-L007", "bare std::stod/stoi-family call outside hardened parsers"},
      {"SSN-L008", "dense Matrix build inside a loop in solver code"},
      {"SSN-L009", "raw signal handling or uncancellable batch loop"},
      {"SSN-L010", "include-graph layering violation (upward include or cycle)"},
      {"SSN-L011", "physical-units mismatch in annotated arithmetic"},
      {"SSN-L012", "diagnostic code is duplicated, undocumented, or dead"},
      {"SSN-L013", "solver/analysis result consumed without a status/trust check"},
      {"SSN-L014", "raw process-management syscall outside support/supervisor"},
  };
  return kRules;
}

/// One-line fix-it guidance per rule, attached to every diagnostic and
/// emitted as the SARIF rule help text.
inline std::string rule_fixit(const std::string& rule) {
  static const std::map<std::string, std::string> kHints = {
      {"SSN-L001",
       "compare with an explicit tolerance (std::abs(a - b) < eps), or "
       "ssnlint-ignore an intentional exact-zero/default check"},
      {"SSN-L002",
       "use a seeded std::mt19937/std::mt19937_64 engine from <random>"},
      {"SSN-L003",
       "add an SSN_REQUIRE precondition or SSN_ASSERT_FINITE on the inputs "
       "(see src/support/contracts.hpp)"},
      {"SSN-L004", "default the member in-class, e.g. 'double x = 0.0;'"},
      {"SSN-L005",
       "catch a concrete exception type, or rethrow with 'throw;' after "
       "logging"},
      {"SSN-L006",
       "throw support::SolverError{kind, message} so the recovery ladder can "
       "classify the failure (see docs/ROBUSTNESS.md)"},
      {"SSN-L007",
       "convert through io::parse_double_prefix / io::parse_int_strict "
       "(src/io/diagnostics.hpp)"},
      {"SSN-L008",
       "hoist the dense build out of the loop, or stamp into a cached "
       "StampedMatrix pattern and refactorize numerically"},
      {"SSN-L009",
       "install handlers via support::ScopedSignalCancel, and poll "
       "RunContext::stop_requested (or try_start_item) inside batch loops"},
      {"SSN-L010",
       "invert the dependency (move the shared code into the lower layer) or "
       "lift this file into the layer it reaches up to; the architecture "
       "order is support -> numeric/io -> circuit/process/devices/waveform/"
       "core -> sim -> analysis -> cli/tools"},
      {"SSN-L011",
       "make the operands dimensionally consistent, fix the '// ssn-units:' "
       "annotation or the _h/_f/_v/... name suffix, or convert explicitly "
       "and annotate the result"},
      {"SSN-L012",
       "register the code exactly once in the docs/ catalog tables "
       "(docs/DIAGNOSTICS.md for SSN-E/W, docs/STATIC_ANALYSIS.md for "
       "SSN-L), and delete catalog rows for codes no longer emitted"},
      {"SSN-L013",
       "check the result's status before reading values off it — ok()/error/"
       "stop/trust.verdict — or pass it through verify_measurement; "
       "ssnlint-ignore a site whose failures provably surface as exceptions"},
      {"SSN-L014",
       "spawn and manage children through support/subprocess.hpp "
       "(spawn_child/wait_child/kill_child) so every pid is registered with "
       "the crash-kill registry and reaped exactly once"},
  };
  const auto it = kHints.find(rule);
  return it == kHints.end() ? std::string() : it->second;
}

// ---------------------------------------------------------------------------
// Pass 1: strip comments and string/character literals (preserving line
// structure) and harvest `ssnlint-ignore(...)` suppressions from comments.
// ---------------------------------------------------------------------------

struct StrippedSource {
  std::string code;  // same length/line structure as the input
  // Like `code` but with string/character literal *contents* preserved —
  // comments are still blanked. The diagnostic-code registry pass (L012)
  // scans this so codes in comments do not count as emissions.
  std::string code_with_strings;
  // line number (1-based) -> rule IDs suppressed on that line and the next
  std::map<int, std::set<std::string>> suppressions;
  // line number -> raw `// ssn-units: ...` annotation text on that line
  std::map<int, std::string> unit_annotations;
};

namespace detail {

inline void harvest_suppressions(const std::string& comment, int line,
                                 std::map<int, std::set<std::string>>& out) {
  const std::string kTag = "ssnlint-ignore(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string inner = comment.substr(open, close - open);
    std::stringstream ss(inner);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](unsigned char c) { return std::isspace(c); }),
                 rule.end());
      if (!rule.empty()) out[line].insert(rule);
    }
    pos = close;
  }
}

inline void harvest_unit_annotations(const std::string& comment, int line,
                                     std::map<int, std::string>& out) {
  const std::string kTag = "ssn-units:";
  const std::size_t pos = comment.find(kTag);
  if (pos == std::string::npos) return;
  std::string text = comment.substr(pos + kTag.size());
  while (!text.empty() && std::isspace(unsigned(text.front()))) text.erase(0, 1);
  while (!text.empty() && std::isspace(unsigned(text.back()))) text.pop_back();
  if (text.empty()) return;
  auto& slot = out[line];
  slot = slot.empty() ? text : slot + ", " + text;
}

inline bool ident_char_raw(char c) {
  return std::isalnum(unsigned(c)) || c == '_';
}

/// True when the `"` at position i opens a raw string literal: the text
/// before it must end in an encoding-prefixed R (R, u8R, uR, UR, LR) that is
/// not merely the tail of a longer identifier (`FOO_R"x"` lexes as an
/// identifier followed by an ordinary string).
inline bool is_raw_string_opener(const std::string& src, std::size_t i) {
  if (i == 0 || src[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // position of 'R'
  if (p == 0) return true;
  const char b = src[p - 1];
  if (!ident_char_raw(b)) return true;
  // Allow exactly the encoding prefixes u8R / uR / UR / LR.
  if ((b == 'u' || b == 'U' || b == 'L') &&
      (p - 1 == 0 || !ident_char_raw(src[p - 2])))
    return true;
  if (b == '8' && p >= 2 && src[p - 2] == 'u' &&
      (p - 2 == 0 || !ident_char_raw(src[p - 3])))
    return true;
  return false;
}

/// Scan a raw-string delimiter after the opening quote at `quote`. Returns
/// true and fills `terminator` with ")delim\"" when the opener is well
/// formed (d-char-seq of at most 16 chars, then '('); malformed openers are
/// lexed as ordinary strings, matching the compiler's error recovery.
inline bool scan_raw_delimiter(const std::string& src, std::size_t quote,
                               std::string& terminator) {
  std::string delim;
  for (std::size_t j = quote + 1; j < src.size() && delim.size() <= 16; ++j) {
    const char c = src[j];
    if (c == '(') {
      terminator = ")" + delim + "\"";
      return true;
    }
    // d-chars may not include parens, backslash, quotes, or whitespace.
    if (c == ')' || c == '\\' || c == '"' || std::isspace(unsigned(c)))
      return false;
    delim += c;
  }
  return false;
}

/// True when the `'` at position i separates digits of a pp-number
/// (1'000'000, 0xFF'FF) rather than opening a character literal (u8'a',
/// L'x'): the alphanumeric run immediately before it must start with a
/// digit.
inline bool is_digit_separator(const std::string& src, std::size_t i) {
  if (i == 0 || i + 1 >= src.size()) return false;
  if (!std::isalnum(unsigned(src[i - 1])) || !std::isalnum(unsigned(src[i + 1])))
    return false;
  std::size_t start = i;
  while (start > 0 && (ident_char_raw(src[start - 1]) || src[start - 1] == '\''))
    --start;
  return std::isdigit(unsigned(src[start]));
}

}  // namespace detail

inline StrippedSource strip_source(const std::string& src) {
  StrippedSource out;
  out.code.assign(src.size(), ' ');
  out.code_with_strings.assign(src.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  int line = 1;
  std::string comment_text;    // accumulated text of the current comment
  int comment_line = 1;        // line the current comment chunk lives on
  std::string raw_delim;       // )delim" terminator for raw strings

  const auto flush_comment = [&]() {
    if (!comment_text.empty()) {
      detail::harvest_suppressions(comment_text, comment_line, out.suppressions);
      detail::harvest_unit_annotations(comment_text, comment_line,
                                       out.unit_annotations);
    }
    comment_text.clear();
  };
  // Literal contents survive in code_with_strings; the code view gets the
  // default blank.
  const auto keep_in_strings = [&](std::size_t i, char c) {
    out.code_with_strings[i] = c;
  };
  // Characters visible to both views (code outside comments/literals and the
  // literal delimiters themselves).
  const auto keep_in_both = [&](std::size_t i, char c) {
    out.code[i] = c;
    out.code_with_strings[i] = c;
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      out.code_with_strings[i] = '\n';
      // A comment spanning lines registers its directive per line chunk.
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      } else if (state == State::kBlockComment) {
        flush_comment();
        comment_line = line + 1;
      }
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line;
          ++i;
        } else if (c == '"') {
          std::string terminator;
          if (detail::is_raw_string_opener(src, i) &&
              detail::scan_raw_delimiter(src, i, terminator)) {
            raw_delim = terminator;
            state = State::kRawString;
            keep_in_both(i, '"');
          } else {
            // Includes malformed raw-string openers (`FOO_R"x"`, bad
            // delimiter): lexed as an ordinary string.
            state = State::kString;
            keep_in_both(i, '"');
          }
        } else if (c == '\'') {
          keep_in_both(i, '\'');
          // Digit separators (1'000'000) are part of numbers, not chars;
          // u8'a' / L'x' are character literals despite the alnum prefix.
          if (!detail::is_digit_separator(src, i)) state = State::kChar;
        } else {
          keep_in_both(i, c);
        }
        break;
      case State::kLineComment:
        comment_text += c;
        break;
      case State::kBlockComment:
        comment_text += c;
        if (c == '*' && next == '/') {
          flush_comment();
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\') {
          keep_in_strings(i, c);
          ++i;  // escaped char: keep it, and keep counting its newline
          if (i < src.size()) {
            keep_in_strings(i, src[i]);
            if (src[i] == '\n') {
              out.code[i] = '\n';
              ++line;
            }
          }
        } else if (c == '"') {
          keep_in_both(i, '"');
          state = State::kCode;
        } else {
          keep_in_strings(i, c);
        }
        break;
      case State::kChar:
        if (c == '\\') {
          keep_in_strings(i, c);
          ++i;
          if (i < src.size()) {
            keep_in_strings(i, src[i]);
            if (src[i] == '\n') {
              out.code[i] = '\n';
              ++line;
            }
          }
        } else if (c == '\'') {
          keep_in_both(i, '\'');
          state = State::kCode;
        } else {
          keep_in_strings(i, c);
        }
        break;
      case State::kRawString:
        if (c == raw_delim[0] && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          keep_in_both(i, '"');
          state = State::kCode;
        } else {
          keep_in_strings(i, c);
        }
        break;
    }
  }
  flush_comment();
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: lex the stripped code into identifier / number / punctuation tokens.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

namespace detail {

inline bool ident_start(char c) {
  return std::isalpha(unsigned(c)) || c == '_';
}
inline bool ident_char(char c) {
  return std::isalnum(unsigned(c)) || c == '_';
}

}  // namespace detail

inline std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(unsigned(c))) {
      ++i;
      continue;
    }
    if (detail::ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && detail::ident_char(code[j])) ++j;
      toks.push_back({Token::Kind::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(unsigned(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(unsigned(code[i + 1])))) {
      // pp-number: digits, letters, dots, quotes-as-separators, and exponent
      // signs when preceded by e/E/p/P.
      std::size_t j = i + 1;
      while (j < n) {
        const char d = code[j];
        if (detail::ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                    code[j - 1] == 'p' || code[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      toks.push_back({Token::Kind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: greedily take the few multi-char tokens the rules need.
    static const std::vector<std::string> kMulti = {
        "...", "->*", "<<=", ">>=", "::", "->", "==", "!=", "<=", ">=",
        "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "<<", ">>"};
    std::string text(1, c);
    for (const auto& m : kMulti) {
      if (code.compare(i, m.size(), m) == 0) {
        text = m;
        break;
      }
    }
    toks.push_back({Token::Kind::kPunct, text, line});
    i += text.size();
  }
  return toks;
}

inline bool is_float_literal(const std::string& t) {
  if (t.size() >= 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) return false;
  return t.find('.') != std::string::npos || t.find('e') != std::string::npos ||
         t.find('E') != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rules. Each takes the token stream (and emits diagnostics); suppressions
// are applied afterwards by lint_source().
// ---------------------------------------------------------------------------

namespace detail {

inline void add(std::vector<Diagnostic>& out, const std::string& file, int line,
                const char* rule, std::string message) {
  Diagnostic d;
  d.file = file;
  d.line = line;
  d.rule = rule;
  d.message = std::move(message);
  out.push_back(std::move(d));
}

/// Index of the matching closer for the opener at `open` (e.g. '(' -> ')'),
/// or toks.size() when unbalanced.
inline std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                                 const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

// SSN-L001: `x == 0.3`-style comparisons. Exact equality on doubles is almost
// always a rounding bug; the rare intentional exact-zero skip gets an
// ssnlint-ignore.
inline void rule_float_compare(const std::vector<Token>& toks,
                               const std::string& file,
                               std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kPunct || (t.text != "==" && t.text != "!="))
      continue;
    bool flagged = false;
    if (i > 0 && toks[i - 1].kind == Token::Kind::kNumber &&
        is_float_literal(toks[i - 1].text))
      flagged = true;
    std::size_t r = i + 1;
    if (r < toks.size() && toks[r].kind == Token::Kind::kPunct &&
        (toks[r].text == "+" || toks[r].text == "-"))
      ++r;  // unary sign
    if (r < toks.size() && toks[r].kind == Token::Kind::kNumber &&
        is_float_literal(toks[r].text))
      flagged = true;
    if (flagged)
      add(out, file, t.line, "SSN-L001",
          "exact '" + t.text +
              "' comparison against a floating-point literal; compare with a "
              "tolerance (or ssnlint-ignore an intentional exact-zero check)");
  }
}

// SSN-L002: std::rand/srand. The C PRNG is low-quality and its sequence is
// implementation-defined, which breaks Monte Carlo reproducibility.
inline void rule_banned_rand(const std::vector<Token>& toks,
                             const std::string& file,
                             std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || (t.text != "rand" && t.text != "srand"))
      continue;
    // Must look like a call (next token '('), not e.g. a member named rand.
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) continue;
    add(out, file, t.line, "SSN-L002",
        "'" + t.text + "' is banned; use a seeded <random> engine");
  }
}

// SSN-L003: solver entry points must carry at least one contract guard so a
// NaN cannot cross a solver boundary silently.
inline bool is_solver_entry_name(const std::string& name) {
  if (name.rfind("solve", 0) == 0) return true;
  static const std::set<std::string> kExact = {
      "rk4",      "rk45",   "levenberg_marquardt", "dc_operating_point",
      "lu_solve", "run_dc", "run_transient",       "run_ac"};
  return kExact.count(name) > 0;
}

inline void rule_unguarded_solver(const std::vector<Token>& toks,
                                  const std::string& file,
                                  std::vector<Diagnostic>& out) {
  static const std::set<std::string> kGuards = {"SSN_REQUIRE", "SSN_ENSURE",
                                                "SSN_ASSERT_FINITE"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || !is_solver_entry_name(t.text)) continue;
    if (toks[i + 1].text != "(") continue;
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call, not a definition
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // A definition: optional qualifiers, then the body brace.
    std::size_t j = close + 1;
    while (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
           (toks[j].text == "const" || toks[j].text == "noexcept" ||
            toks[j].text == "override" || toks[j].text == "final"))
      ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;  // call or prototype
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    bool guarded = false;
    for (std::size_t k = j; k < body_end && !guarded; ++k)
      if (toks[k].kind == Token::Kind::kIdent && kGuards.count(toks[k].text))
        guarded = true;
    if (!guarded)
      add(out, file, t.line, "SSN-L003",
          "solver entry point '" + t.text +
              "' has no SSN_REQUIRE/SSN_ENSURE/SSN_ASSERT_FINITE guard");
  }
}

// SSN-L004: `double x;` members in structs start as garbage; an aggregate
// someone forgets to brace-init then feeds indeterminate values into the
// solvers (UB, and exactly the kind of bug ASan/MSan only catch at runtime).
inline void rule_uninitialized_double_member(const std::vector<Token>& toks,
                                             const std::string& file,
                                             std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "struct") continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) ++j;  // name
    // Skip a base-clause up to the opening brace; stop at ';' (fwd decl).
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;
    const std::size_t body_end = match_forward(toks, j, "{", "}");
    int depth = 0;
    for (std::size_t k = j + 1; k < body_end; ++k) {
      if (toks[k].kind == Token::Kind::kPunct) {
        if (toks[k].text == "{") ++depth;
        if (toks[k].text == "}") --depth;
        continue;
      }
      if (depth != 0) continue;  // inside a member function / nested scope
      if (toks[k].kind != Token::Kind::kIdent || toks[k].text != "double")
        continue;
      if (k > 0 && (toks[k - 1].text == "static" || toks[k - 1].text == "constexpr" ||
                    toks[k - 1].text == "," || toks[k - 1].text == "("))
        continue;  // statics handled elsewhere; ',' / '(' => parameter list
      // Parse: double name [, name...] terminated by ';'. Any declarator not
      // followed by '=' or '{' is uninitialized. Bail on functions/pointers.
      std::size_t p = k + 1;
      while (p < body_end) {
        if (toks[p].kind != Token::Kind::kIdent) break;  // e.g. '*', '&'
        const std::string member = toks[p].text;
        ++p;
        if (p >= body_end) break;
        const std::string& d = toks[p].text;
        if (d == "=" || d == "{") {
          // initialized: skip to ',' or ';' at depth 0
          int br = 0;
          while (p < body_end) {
            if (toks[p].text == "{" || toks[p].text == "(") ++br;
            if (toks[p].text == "}" || toks[p].text == ")") --br;
            if (br == 0 && (toks[p].text == ";" || toks[p].text == ",")) break;
            ++p;
          }
        } else if (d == ";" || d == ",") {
          add(out, file, toks[k].line, "SSN-L004",
              "struct member 'double " + member +
                  "' has no initializer; default it (e.g. '= 0.0')");
        } else {
          break;  // function, array, bitfield... out of scope for this rule
        }
        if (p < body_end && toks[p].text == ",") {
          ++p;
          continue;
        }
        break;
      }
    }
  }
}

// SSN-L005: a catch-all that neither rethrows nor converts hides solver
// failures as silently-wrong results.
inline void rule_catch_all_swallow(const std::vector<Token>& toks,
                                   const std::string& file,
                                   std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "catch") continue;
    if (toks[i + 1].text != "(" || toks[i + 2].text != "..." ||
        toks[i + 3].text != ")" || toks[i + 4].text != "{")
      continue;
    const std::size_t body_end = match_forward(toks, i + 4, "{", "}");
    bool rethrows = false;
    for (std::size_t k = i + 5; k < body_end && !rethrows; ++k)
      if (toks[k].kind == Token::Kind::kIdent && toks[k].text == "throw")
        rethrows = true;
    if (!rethrows)
      add(out, file, toks[i].line, "SSN-L005",
          "catch (...) swallows the exception; rethrow or catch a concrete "
          "type");
  }
}

// SSN-L006: solver code (the sim and numeric layers) must throw the typed
// support::SolverError, not a bare std::runtime_error — the recovery ladder
// and batch drivers dispatch on SolverError::kind()/retryable(), and an
// untyped throw silently opts out of recovery.
inline bool is_solver_layer_path(const std::string& file) {
  for (const auto& part : std::filesystem::path(file))
    if (part == "sim" || part == "numeric") return true;
  return false;
}

inline void rule_untyped_solver_throw(const std::vector<Token>& toks,
                                      const std::string& file,
                                      std::vector<Diagnostic>& out) {
  if (!is_solver_layer_path(file)) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "throw") continue;
    std::size_t j = i + 1;
    if (j + 1 < toks.size() && toks[j].text == "std" && toks[j + 1].text == "::")
      j += 2;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
        toks[j].text == "runtime_error")
      add(out, file, toks[i].line, "SSN-L006",
          "bare 'throw std::runtime_error' in solver code; throw "
          "support::SolverError with a kind and diagnostics instead");
  }
}

// SSN-L007: the std::sto* / strto* / ato* family silently accepts "inf",
// "nan", hex floats ("0x1p3") and leading whitespace, and throws
// std::out_of_range on overflow — three surprises that have no business at
// an input boundary. All conversions must go through the hardened
// io::parse_double_prefix / io::parse_int_strict, which live in
// src/io/diagnostics.cpp (the single allowlisted file).
inline bool is_hardened_parser_file(const std::string& file) {
  const std::filesystem::path p(file);
  return p.filename() == "diagnostics.cpp" &&
         p.parent_path().filename() == "io";
}

inline void rule_bare_numeric_conversion(const std::vector<Token>& toks,
                                         const std::string& file,
                                         std::vector<Diagnostic>& out) {
  if (is_hardened_parser_file(file)) return;
  static const std::set<std::string> kBanned = {
      "stod",  "stof",  "stold",  "stoi",   "stol",   "stoll", "stoul",
      "stoull", "strtod", "strtof", "strtold", "strtol", "strtoll",
      "strtoul", "strtoull", "atof", "atoi", "atol", "atoll"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || kBanned.count(t.text) == 0) continue;
    if (toks[i + 1].text != "(") continue;  // must look like a call
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call on some unrelated object
    add(out, file, t.line, "SSN-L007",
        "bare '" + t.text +
            "' accepts inf/nan/hex and throws std::out_of_range; use "
            "io::parse_double_prefix / io::parse_int_strict instead");
  }
}

// SSN-L008: dense-matrix construction or from_dense conversion inside a loop
// body in solver code. The engine's hot path stamps straight into a cached
// sparse pattern (StampedMatrix + SparseFactor::refactorize) precisely so no
// O(n^2) dense build happens per Newton iteration or per time step; a
// `Matrix a(n, n)` or `SparseMatrix::from_dense(...)` inside a loop quietly
// reintroduces that cost. Loop-free dense builds (setup, factor once) are
// fine, as is anything outside src/sim and src/numeric.
inline void rule_dense_in_loop(const std::vector<Token>& toks,
                               const std::string& file,
                               std::vector<Diagnostic>& out) {
  if (!is_solver_layer_path(file)) return;
  // Token ranges of every loop body: for/while (...) { ... } or a single
  // statement up to ';', and do { ... } while (...).
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    std::size_t body = toks.size();
    if (toks[i].text == "for" || toks[i].text == "while") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;
      body = close + 1;
    } else if (toks[i].text == "do") {
      body = i + 1;
    } else {
      continue;
    }
    if (body >= toks.size()) continue;
    if (toks[body].text == "{") {
      bodies.emplace_back(body + 1, match_forward(toks, body, "{", "}"));
    } else {
      std::size_t j = body;
      while (j < toks.size() && toks[j].text != ";") ++j;
      bodies.emplace_back(body, j);
    }
  }
  if (bodies.empty()) return;
  const auto in_loop = [&bodies](std::size_t k) {
    for (const auto& range : bodies)
      if (k >= range.first && k < range.second) return true;
    return false;
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member access on an unrelated object
    if (!in_loop(i)) continue;
    // `Matrix(...)` temporary, or `Matrix name(...)` / `Matrix name{...}`.
    const bool ctor_temp = toks[i + 1].text == "(";
    const bool ctor_named =
        i + 2 < toks.size() && toks[i + 1].kind == Token::Kind::kIdent &&
        (toks[i + 2].text == "(" || toks[i + 2].text == "{");
    if (t.text == "Matrix" && (ctor_temp || ctor_named)) {
      add(out, file, t.line, "SSN-L008",
          "dense Matrix constructed inside a loop in solver code; hoist it "
          "out or stamp into a cached StampedMatrix pattern");
    } else if (t.text == "from_dense" && ctor_temp) {
      add(out, file, t.line, "SSN-L008",
          "SparseMatrix::from_dense inside a loop in solver code; build the "
          "pattern once and refill with StampedMatrix::clear + stamps");
    }
  }
}

// SSN-L009: job-lifecycle hygiene. Two patterns:
//
//  (a) A raw signal()/sigaction()/raise() call outside src/support. The CLI
//      installs exactly one handler pair through support::ScopedSignalCancel
//      (which trips the shared RunContext and restores the previous handler
//      on scope exit); a second ad-hoc handler silently replaces it and the
//      batch stops responding to Ctrl-C. std::raise in tests is fine — the
//      linter only runs over src/.
//
//  (b) An unbounded loop — `while (true)`, `while (1)`, `for (;;)` — in
//      src/analysis whose body never consults the lifecycle layer
//      (stop_requested / try_start_item / RunContext / cancel_requested).
//      Batch drivers are exactly the code --deadline and SIGINT must be able
//      to stop; an unbounded loop that never polls is uncancellable.
inline bool is_support_layer_path(const std::string& file) {
  for (const auto& part : std::filesystem::path(file))
    if (part == "support") return true;
  return false;
}

inline bool is_analysis_layer_path(const std::string& file) {
  for (const auto& part : std::filesystem::path(file))
    if (part == "analysis") return true;
  return false;
}

inline void rule_lifecycle_hygiene(const std::vector<Token>& toks,
                                   const std::string& file,
                                   std::vector<Diagnostic>& out) {
  // (a) raw signal-management calls outside the support layer.
  if (!is_support_layer_path(file)) {
    static const std::set<std::string> kSignalCalls = {"signal", "sigaction",
                                                       "raise"};
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent || kSignalCalls.count(t.text) == 0)
        continue;
      if (toks[i + 1].text != "(") continue;  // must look like a call
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
        continue;  // member call on an unrelated object
      // `struct sigaction sa;` declares the type, `sigaction(...)` calls it;
      // the call-position check above already separates them.
      add(out, file, t.line, "SSN-L009",
          "raw '" + t.text +
              "' outside src/support; install handlers through "
              "support::ScopedSignalCancel so the shared RunContext is "
              "tripped");
    }
  }

  // (b) unbounded loops in analysis batch code that never poll the
  // lifecycle layer.
  if (!is_analysis_layer_path(file)) return;
  static const std::set<std::string> kLifecycleTokens = {
      "stop_requested", "try_start_item", "RunContext", "cancel_requested"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    bool unbounded = false;
    std::size_t close = toks.size();
    if ((toks[i].text == "while" || toks[i].text == "for") &&
        toks[i + 1].text == "(") {
      close = match_forward(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;
      if (toks[i].text == "while") {
        // while (true) / while (1)
        unbounded = close == i + 3 &&
                    (toks[i + 2].text == "true" || toks[i + 2].text == "1");
      } else {
        // for (;;)
        unbounded =
            close == i + 4 && toks[i + 2].text == ";" && toks[i + 3].text == ";";
      }
    }
    if (!unbounded) continue;
    std::size_t body_end = toks.size();
    std::size_t body = close + 1;
    if (body < toks.size() && toks[body].text == "{") {
      body_end = match_forward(toks, body, "{", "}");
      ++body;
    } else {
      body_end = body;
      while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
    }
    bool polls = false;
    for (std::size_t k = body; k < body_end && !polls; ++k)
      if (toks[k].kind == Token::Kind::kIdent &&
          kLifecycleTokens.count(toks[k].text) != 0)
        polls = true;
    if (!polls)
      add(out, file, toks[i].line, "SSN-L009",
          "unbounded loop in analysis batch code never polls the lifecycle "
          "layer; check RunContext::stop_requested (or gate items with "
          "try_start_item) so --deadline and SIGINT can stop it");
  }
}

// SSN-L014: process hygiene. Raw process-management syscalls — fork/vfork,
// waitpid/wait, kill, the exec family, posix_spawn — have exactly two
// sanctioned homes: the support layer (support/subprocess.hpp is the spawn/
// reap/kill wrapper, support/crashclean.cpp the crash-path killer) and the
// serve-layer supervisor (src/serve/supervisor*), which owns worker
// lifecycles end to end. Anywhere else, a hand-rolled fork leaks a pid the
// crash-kill registry doesn't know about (so a crash-path _Exit orphans it)
// and an ad-hoc waitpid races the supervisor's reaper for exit statuses.
inline bool is_process_sanctioned_path(const std::string& file) {
  if (is_support_layer_path(file)) return true;
  const std::filesystem::path p(file);
  bool in_serve = false;
  for (const auto& part : p)
    if (part == "serve") in_serve = true;
  return in_serve && p.stem().string().rfind("supervisor", 0) == 0;
}

inline void rule_process_hygiene(const std::vector<Token>& toks,
                                 const std::string& file,
                                 std::vector<Diagnostic>& out) {
  if (is_process_sanctioned_path(file)) return;
  static const std::set<std::string> kProcessCalls = {
      "fork",  "vfork",  "waitpid",     "wait",         "kill",
      "execl", "execlp", "execle",      "execv",        "execvp",
      "execve", "execvpe", "posix_spawn", "posix_spawnp"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || kProcessCalls.count(t.text) == 0)
      continue;
    if (toks[i + 1].text != "(") continue;  // must look like a call
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call (cv.wait(lock), process.kill()) is fine
    // A preceding identifier means a declaration (`pid_t fork(...)`,
    // `void kill() {}`), not a call — unless it is a statement keyword
    // (`return fork();`), which does precede real calls.
    if (i > 0 && toks[i - 1].kind == Token::Kind::kIdent) {
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_yield", "case", "else", "do"};
      if (kStmtKeywords.count(toks[i - 1].text) == 0) continue;
    }
    add(out, file, t.line, "SSN-L014",
        "raw '" + t.text +
            "' outside src/support and the serve supervisor; use "
            "support/subprocess.hpp (spawn_child/wait_child/kill_child) so "
            "the pid is crash-kill registered and reaped exactly once");
  }
}

// SSN-L013: a solver/analysis result consumed without ever inspecting its
// status. The producers below return status-bearing results (a TrustReport,
// an ok()/error pair, or a StopReason); reading v_max/mean/rows off one
// while never looking at any of those members is a silent-wrong-answer
// hazard — a degraded or cancelled result is indistinguishable from a good
// one at the point of use. Two shapes are checked:
//
//   (a) chained temporary: `measure_ssn(spec).v_max` — the result object is
//       gone before anything could inspect it;
//   (b) a named result whose every use in its scope is a member read of a
//       non-status member. Forwarding the variable anywhere (function
//       argument, return, copy) delegates the obligation and is accepted.
inline bool is_result_producer(const std::string& name) {
  static const std::set<std::string> kProducers = {
      "run_transient", "run_transient_resilient", "measure_ssn",
      "measure_ssn_resilient", "monte_carlo_vmax", "monte_carlo_vmax_sim",
      "run_driver_sweep"};
  return kProducers.count(name) != 0;
}

inline bool is_status_member(const std::string& name) {
  static const std::set<std::string> kInspect = {
      "ok",      "error", "error_kind", "trust",      "verdict", "stop",
      "status",  "summary", "fidelity", "resilience", "stats"};
  return kInspect.count(name) != 0;
}

/// Walk a `.a.b(...)->c` member chain starting at the '.'/'->' token `j`.
/// Returns true when any member on the chain is a status member; `any` is
/// set when the chain contained at least one member access.
inline bool chain_inspects_status(const std::vector<Token>& toks,
                                  std::size_t j, bool& any) {
  while (j + 1 < toks.size() && toks[j].kind == Token::Kind::kPunct &&
         (toks[j].text == "." || toks[j].text == "->") &&
         toks[j + 1].kind == Token::Kind::kIdent) {
    any = true;
    if (is_status_member(toks[j + 1].text)) return true;
    j += 2;
    // Skip a member call's argument list so the chain can continue past it
    // (`.waveform(node).value`).
    if (j < toks.size() && toks[j].text == "(") j = match_forward(toks, j, "(", ")") + 1;
  }
  return false;
}

inline void rule_uninspected_result(const std::vector<Token>& toks,
                                    const std::string& file,
                                    std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || !is_result_producer(t.text)) continue;
    if (toks[i + 1].text != "(") continue;  // must look like a call
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;  // member call on an unrelated object
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close + 1 >= toks.size()) continue;
    // Definitions and prototypes are the producer itself, not a consumption
    // site: the producer token is preceded by its return type
    // (`SsnMeasurement measure_ssn(...)`) or directly followed by its body.
    const std::string& after = toks[close + 1].text;
    if (after == "{" || after == "const" || after == "noexcept") continue;
    if (i > 0 && toks[i - 1].kind == Token::Kind::kIdent &&
        toks[i - 1].text != "return")
      continue;

    // (a) chained temporary access: `producer(...).member...`.
    if (after == "." || after == "->") {
      bool any = false;
      if (!chain_inspects_status(toks, close + 1, any) && any)
        add(out, file, t.line, "SSN-L013",
            "value read off the temporary result of '" + t.text +
                "' without inspecting its status; bind it to a name and "
                "check ok()/error/stop/trust first");
      continue;
    }

    // (b) named result: `[const] [auto|Type] name = [ns ::] producer(...)`.
    // Step back over namespace qualification to find the '=' and the name.
    std::size_t q = i;
    while (q >= 2 && toks[q - 1].text == "::" &&
           toks[q - 2].kind == Token::Kind::kIdent)
      q -= 2;
    if (q < 2 || toks[q - 1].text != "=" ||
        toks[q - 2].kind != Token::Kind::kIdent)
      continue;
    if (q >= 3 && (toks[q - 3].text == "." || toks[q - 3].text == "->"))
      continue;  // assignment into a member: the result escapes
    const std::string name = toks[q - 2].text;

    // Scan every use of `name` until the enclosing scope closes.
    bool inspected = false;
    bool any_use = false;
    int depth = 0;
    for (std::size_t k = close + 1; k < toks.size(); ++k) {
      if (toks[k].kind == Token::Kind::kPunct) {
        if (toks[k].text == "{") ++depth;
        if (toks[k].text == "}" && --depth < 0) break;  // scope ended
        continue;
      }
      if (toks[k].kind != Token::Kind::kIdent || toks[k].text != name) continue;
      if (toks[k - 1].text == "." || toks[k - 1].text == "->" ||
          toks[k - 1].text == "::")
        continue;  // a member of something else that shares the name
      if (k + 1 < toks.size() &&
          (toks[k + 1].text == "." || toks[k + 1].text == "->")) {
        bool any = false;
        if (chain_inspects_status(toks, k + 1, any)) {
          inspected = true;
          break;
        }
        any_use = true;
      } else {
        // Any non-member-access use (argument, return, copy, &name) hands
        // the result to code that can inspect it; accept it.
        inspected = true;
        break;
      }
    }
    if (!inspected && any_use)
      add(out, file, toks[q - 2].line, "SSN-L013",
          "result '" + name + "' of '" + t.text +
              "' is consumed without any status check; inspect "
              "ok()/error/stop/trust (or forward the result) before reading "
              "values off it");
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Baseline fingerprints. A finding is identified by its rule, the file's
// basename, and an FNV-1a hash of the offending line with whitespace removed
// — stable across both line-number drift (edits above the finding) and
// re-indentation, the two most common reasons a grandfathered finding would
// otherwise escape its baseline entry.
// ---------------------------------------------------------------------------

namespace detail {

inline std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace detail

inline std::string fingerprint_of(const std::string& rule,
                                  const std::string& file,
                                  const std::string& line_text) {
  std::string norm;
  norm.reserve(line_text.size());
  for (const char c : line_text)
    if (!std::isspace(unsigned(c))) norm += c;
  const std::string base = std::filesystem::path(file).filename().string();
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    detail::fnv1a(rule + '|' + base + '|' + norm)));
  return buf;
}

inline std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

/// Attach the fix-it hint and baseline fingerprint; `lines` is the file
/// split with split_lines() (may be empty for synthetic diagnostics, which
/// then fingerprint on the message instead of the source line).
inline void finalize_diagnostic(Diagnostic& d,
                                const std::vector<std::string>& lines) {
  d.hint = rule_fixit(d.rule);
  const bool have_line = d.line >= 1 && std::size_t(d.line) <= lines.size();
  d.fingerprint = fingerprint_of(
      d.rule, d.file, have_line ? lines[std::size_t(d.line) - 1] : d.message);
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

inline std::vector<Diagnostic> lint_source(const std::string& file,
                                           const std::string& source) {
  const StrippedSource stripped = strip_source(source);
  const std::vector<Token> toks = tokenize(stripped.code);
  std::vector<Diagnostic> all;
  detail::rule_float_compare(toks, file, all);
  detail::rule_banned_rand(toks, file, all);
  detail::rule_unguarded_solver(toks, file, all);
  detail::rule_uninitialized_double_member(toks, file, all);
  detail::rule_catch_all_swallow(toks, file, all);
  detail::rule_untyped_solver_throw(toks, file, all);
  detail::rule_bare_numeric_conversion(toks, file, all);
  detail::rule_dense_in_loop(toks, file, all);
  detail::rule_lifecycle_hygiene(toks, file, all);
  detail::rule_process_hygiene(toks, file, all);
  detail::rule_uninspected_result(toks, file, all);

  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : all) {
    bool suppressed = false;
    for (int l : {d.line, d.line - 1}) {
      const auto it = stripped.suppressions.find(l);
      if (it != stripped.suppressions.end() &&
          (it->second.count(d.rule) || it->second.count("all")))
        suppressed = true;
    }
    if (!suppressed) kept.push_back(d);
  }
  const std::vector<std::string> lines = split_lines(source);
  for (Diagnostic& d : kept) finalize_diagnostic(d, lines);
  std::sort(kept.begin(), kept.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

inline std::vector<Diagnostic> lint_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Diagnostic d;
    d.file = path.string();
    d.rule = "SSN-L000";
    d.message = "cannot open file";
    return {d};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path.string(), ss.str());
}

inline bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Lint every .hpp/.cpp under each path (file or directory, recursive).
inline std::vector<Diagnostic> lint_paths(const std::vector<std::string>& paths,
                                          std::size_t* files_scanned = nullptr) {
  std::vector<std::filesystem::path> files;
  for (const std::string& p : paths) {
    const std::filesystem::path root(p);
    if (std::filesystem::is_directory(root)) {
      for (const auto& e : std::filesystem::recursive_directory_iterator(root))
        if (e.is_regular_file() && lintable_extension(e.path()))
          files.push_back(e.path());
    } else {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned) *files_scanned = files.size();
  std::vector<Diagnostic> out;
  for (const auto& f : files) {
    std::vector<Diagnostic> d = lint_file(f);
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

}  // namespace ssnlint
