// ssnlint whole-project model and the SSN-L010 layering pass.
//
// The per-file rules in ssnlint_core.hpp see one translation unit at a time;
// the passes here see the whole tree. This header builds the project model —
// every lintable file, its layer, and its resolved quoted-include edges —
// and checks the include graph against the architecture order:
//
//   rank 0  support
//   rank 1  numeric, io
//   rank 2  circuit, process, devices, waveform, core, verify
//   rank 3  sim
//   rank 4  analysis
//   rank 5  serve, cli, tools  (cli -> serve is the allowed direction)
//   rank 6  bench, examples, tests
//
// A file may include same-rank or lower-rank layers, never higher. Include
// cycles are rejected outright: at the file level (a DFS back edge) and at
// the layer level between same-rank layers (io <-> numeric would pass the
// rank test in both directions yet still be an architecture cycle).
#pragma once

#include "ssnlint_core.hpp"

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace ssnlint {

struct IncludeEdge {
  std::string target;  // the quoted path as written
  int line = 0;
};

struct FileInfo {
  std::filesystem::path path;     // normalized absolute path
  std::string display;            // path as given on the command line
  std::string layer;              // "support", "io", ..., "tests"; "" unknown
  int rank = -1;                  // -1 when outside the layered tree
  std::filesystem::path root;     // project root inferred from the path
  std::string source;
  StrippedSource stripped;
  std::vector<IncludeEdge> includes;
  // Edges resolved to scanned files: (index into Project::files, line).
  std::vector<std::pair<std::size_t, int>> resolved;
};

struct Project {
  std::vector<FileInfo> files;
  std::map<std::string, std::size_t> by_path;  // normalized path -> index
};

inline int layer_rank(const std::string& layer) {
  static const std::map<std::string, int> kRanks = {
      {"support", 0},  {"numeric", 1}, {"io", 1},     {"circuit", 2},
      {"process", 2},  {"devices", 2}, {"waveform", 2}, {"core", 2},
      {"verify", 2},   {"sim", 3},     {"analysis", 4}, {"serve", 5},
      {"cli", 5},      {"tools", 5},   {"bench", 6},    {"examples", 6},
      {"tests", 6},
  };
  const auto it = kRanks.find(layer);
  return it == kRanks.end() ? -1 : it->second;
}

namespace detail {

/// Split a path into components (generic format, no empty parts).
inline std::vector<std::string> path_components(const std::filesystem::path& p) {
  std::vector<std::string> parts;
  for (const auto& c : p) {
    const std::string s = c.generic_string();
    if (!s.empty() && s != "/") parts.push_back(s);
  }
  return parts;
}

/// Infer layer, rank, and project root from a path. The rightmost component
/// that is one of the tree markers wins, so a repo checked out under e.g.
/// /home/alice/src/ssnkit still classifies by its own src/ directory.
inline void classify_layer(const std::filesystem::path& path, std::string& layer,
                           int& rank, std::filesystem::path& root) {
  layer.clear();
  rank = -1;
  root.clear();
  const std::vector<std::string> parts = path_components(path);
  if (parts.empty()) return;
  static const std::set<std::string> kMarkers = {"src", "tools", "bench",
                                                 "examples", "tests"};
  // parts.back() is the filename; a marker can be any directory component.
  for (std::size_t i = parts.size() - 1; i-- > 0;) {
    if (kMarkers.count(parts[i]) == 0) continue;
    std::filesystem::path r = path.root_path();
    for (std::size_t k = 0; k < i; ++k) r /= parts[k];
    root = r;
    if (parts[i] == "src") {
      // src/<layer>/...; a file directly under src/ has no layer.
      if (i + 2 < parts.size()) {
        layer = parts[i + 1];
        rank = layer_rank(layer);
      }
    } else {
      layer = parts[i];
      rank = layer_rank(layer);
    }
    return;
  }
}

/// Extract `#include "..."` directives (line-oriented; <...> system includes
/// never participate in project layering). Runs over the comment-stripped
/// view so commented-out includes do not count.
inline std::vector<IncludeEdge> extract_includes(const std::string& code) {
  std::vector<IncludeEdge> edges;
  int line = 1;
  std::size_t pos = 0;
  while (pos <= code.size()) {
    std::size_t eol = code.find('\n', pos);
    if (eol == std::string::npos) eol = code.size();
    std::size_t i = pos;
    while (i < eol && (code[i] == ' ' || code[i] == '\t')) ++i;
    if (i < eol && code[i] == '#') {
      ++i;
      while (i < eol && (code[i] == ' ' || code[i] == '\t')) ++i;
      if (code.compare(i, 7, "include") == 0) {
        i += 7;
        while (i < eol && (code[i] == ' ' || code[i] == '\t')) ++i;
        if (i < eol && code[i] == '"') {
          const std::size_t close = code.find('"', i + 1);
          if (close != std::string::npos && close < eol)
            edges.push_back({code.substr(i + 1, close - i - 1), line});
        }
      }
    }
    pos = eol + 1;
    ++line;
  }
  return edges;
}

inline std::string normal_key(const std::filesystem::path& p) {
  return p.lexically_normal().generic_string();
}

}  // namespace detail

/// Read every file, classify it, and resolve quoted includes against the
/// scanned set. Include targets are tried relative to the including file,
/// then against <root>/src, <root>/tools, and <root> (the include roots the
/// build sets up with target_include_directories).
inline Project load_project(const std::vector<std::filesystem::path>& files) {
  Project proj;
  for (const auto& f : files) {
    FileInfo info;
    info.display = f.string();
    info.path = std::filesystem::absolute(f).lexically_normal();
    detail::classify_layer(info.path, info.layer, info.rank, info.root);
    std::ifstream in(info.path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      info.source = ss.str();
    }
    info.stripped = strip_source(info.source);
    // The include target is a string literal, so extract from the view that
    // keeps strings (comments stay blanked: commented-out includes are dead).
    info.includes = detail::extract_includes(info.stripped.code_with_strings);
    proj.by_path.emplace(detail::normal_key(info.path), proj.files.size());
    proj.files.push_back(std::move(info));
  }
  for (FileInfo& info : proj.files) {
    for (const IncludeEdge& e : info.includes) {
      const std::filesystem::path target(e.target);
      std::vector<std::filesystem::path> candidates = {
          info.path.parent_path() / target};
      if (!info.root.empty()) {
        candidates.push_back(info.root / "src" / target);
        candidates.push_back(info.root / "tools" / target);
        candidates.push_back(info.root / target);
      }
      for (const auto& cand : candidates) {
        const auto it = proj.by_path.find(detail::normal_key(cand));
        if (it != proj.by_path.end()) {
          info.resolved.emplace_back(it->second, e.line);
          break;
        }
      }
    }
  }
  return proj;
}

namespace detail {

/// Depth-first search for include cycles; each distinct cycle is reported
/// once, anchored at its lexically-smallest member so the diagnostic is
/// stable across scan orders.
inline void find_include_cycles(const Project& proj,
                                std::vector<Diagnostic>& out) {
  const std::size_t n = proj.files.size();
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<std::size_t> stack;
  std::set<std::string> reported;

  // Iterative DFS with an explicit work list of (node, next-edge) frames.
  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> frames{{start, 0}};
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, edge] = frames.back();
      if (edge < proj.files[node].resolved.size()) {
        const auto [next, line] = proj.files[node].resolved[edge];
        ++edge;
        if (color[next] == 0) {
          color[next] = 1;
          stack.push_back(next);
          frames.emplace_back(next, 0);
        } else if (color[next] == 1) {
          // Back edge: the cycle is stack[pos(next)..end].
          std::vector<std::size_t> cycle;
          bool in = false;
          for (const std::size_t s : stack) {
            if (s == next) in = true;
            if (in) cycle.push_back(s);
          }
          // Canonicalize: rotate so the smallest display name leads.
          std::size_t lead = 0;
          for (std::size_t k = 1; k < cycle.size(); ++k)
            if (proj.files[cycle[k]].display < proj.files[cycle[lead]].display)
              lead = k;
          std::string key, text;
          for (std::size_t k = 0; k < cycle.size(); ++k) {
            const auto& f = proj.files[cycle[(lead + k) % cycle.size()]];
            key += normal_key(f.path) + ";";
            text += std::filesystem::path(f.display).filename().string() +
                    " -> ";
          }
          text += std::filesystem::path(proj.files[cycle[lead]].display)
                      .filename()
                      .string();
          if (reported.insert(key).second)
            add(out, proj.files[cycle[lead]].display,
                /*line=*/1, "SSN-L010", "include cycle: " + text);
        }
      } else {
        color[node] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

}  // namespace detail

/// SSN-L010: upward includes against the layer ranks, file-level include
/// cycles, and mutual includes between distinct same-rank layers.
inline void pass_layering(const Project& proj, std::vector<Diagnostic>& out) {
  // (a) upward includes.
  for (const FileInfo& f : proj.files) {
    if (f.rank < 0) continue;
    for (const auto& [idx, line] : f.resolved) {
      const FileInfo& g = proj.files[idx];
      if (g.rank < 0 || g.rank <= f.rank) continue;
      detail::add(out, f.display, line, "SSN-L010",
                  "layer '" + f.layer + "' (rank " + std::to_string(f.rank) +
                      ") includes '" + g.layer + "' (rank " +
                      std::to_string(g.rank) +
                      "): upward include against the architecture order");
    }
  }

  // (b) file-level include cycles.
  detail::find_include_cycles(proj, out);

  // (c) mutual includes between same-rank layers. Each direction records one
  // exemplar edge so the diagnostic can point at a concrete include line.
  struct Exemplar {
    std::size_t file = 0;
    int line = 0;
  };
  std::map<std::pair<std::string, std::string>, Exemplar> layer_edges;
  for (std::size_t fi = 0; fi < proj.files.size(); ++fi) {
    const FileInfo& f = proj.files[fi];
    if (f.rank < 0) continue;
    for (const auto& [idx, line] : f.resolved) {
      const FileInfo& g = proj.files[idx];
      if (g.rank != f.rank || g.layer == f.layer) continue;
      layer_edges.emplace(std::make_pair(f.layer, g.layer), Exemplar{fi, line});
    }
  }
  for (const auto& [edge, ex] : layer_edges) {
    if (edge.first >= edge.second) continue;  // visit each pair once
    const auto back = layer_edges.find({edge.second, edge.first});
    if (back == layer_edges.end()) continue;
    detail::add(out, proj.files[ex.file].display, ex.line, "SSN-L010",
                "layer cycle: '" + edge.first + "' and '" + edge.second +
                    "' include each other (see also " +
                    proj.files[back->second.file].display + ":" +
                    std::to_string(back->second.line) + ")");
  }
}

}  // namespace ssnlint
