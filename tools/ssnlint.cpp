// ssnlint command-line driver. The per-file rule engine lives in
// ssnlint_core.hpp; the whole-project passes (include-graph layering,
// physical-units dataflow, diagnostic-code registry) live in
// ssnlint_project.hpp / ssnlint_units.hpp / ssnlint_registry.hpp; SARIF and
// baseline back-ends in ssnlint_output.hpp.
//
// Usage: ssnlint [options] [path...]
//   path                 file or directory (recursed for .hpp/.cpp/.h/.cc);
//                        defaults to ./src
//   --list-rules         print the rule catalog and exit
//   --sarif FILE         also write a SARIF 2.1.0 log ('-' for stdout)
//   --baseline FILE      suppress findings whose fingerprints FILE records
//   --write-baseline FILE  record current findings as the new baseline
//   --threads N          file-scanning threads (default: hardware, min 1)
//   --docs PATH          docs catalog file/dir for SSN-L012 (repeatable;
//                        defaults to <project-root>/docs when detectable)
//   --exclude SUBSTR     skip paths containing SUBSTR (repeatable)
//   --no-project         per-file rules only; skip SSN-L010/L011/L012
//   --full-surface       assert the scan covers all emission sites, enabling
//                        the SSN-L012 dead-code check (auto-detected when
//                        the scanned paths cover <root>/src and <root>/tools)
//   --stats              per-rule counts and phase timings on stderr
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.
#include "ssnlint_core.hpp"
#include "ssnlint_output.hpp"
#include "ssnlint_project.hpp"
#include "ssnlint_registry.hpp"
#include "ssnlint_units.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Options {
  std::vector<std::string> paths;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::filesystem::path> docs;
  std::vector<std::string> excludes;
  unsigned threads = 0;  // 0: hardware_concurrency
  bool project_passes = true;
  bool full_surface = false;
  bool stats = false;
};

int usage_error(const std::string& message) {
  std::cerr << "ssnlint: " << message << " (see --help)\n";
  return 2;
}

void print_help() {
  std::cout <<
      "usage: ssnlint [options] [path...]\n"
      "Scans .hpp/.cpp files for ssnkit hygiene violations: per-file\n"
      "numeric rules (SSN-L001..L009, SSN-L013) plus whole-project passes for\n"
      "include-graph layering (SSN-L010), physical-units dataflow\n"
      "(SSN-L011), and the diagnostic-code registry (SSN-L012).\n"
      "\n"
      "  --list-rules           print the rule catalog and exit\n"
      "  --sarif FILE           also write a SARIF 2.1.0 log ('-' = stdout)\n"
      "  --baseline FILE        suppress findings recorded in FILE\n"
      "  --write-baseline FILE  record current findings as the new baseline\n"
      "  --threads N            file-scanning threads (default: hardware)\n"
      "  --docs PATH            docs catalog for SSN-L012 (repeatable)\n"
      "  --exclude SUBSTR       skip paths containing SUBSTR (repeatable)\n"
      "  --no-project           per-file rules only\n"
      "  --full-surface         enable the SSN-L012 dead-code check\n"
      "  --stats                per-rule counts and timings on stderr\n"
      "\n"
      "Suppress a finding with // ssnlint-ignore(RULE) on the offending\n"
      "line or the line above; annotate units with // ssn-units: name=V.\n";
}

/// Collect lintable files under the requested paths, honoring --exclude.
std::vector<std::filesystem::path> collect_files(const Options& opts,
                                                 bool& io_error) {
  std::vector<std::filesystem::path> files;
  const auto excluded = [&](const std::filesystem::path& p) {
    const std::string s = p.generic_string();
    for (const std::string& e : opts.excludes)
      if (s.find(e) != std::string::npos) return true;
    return false;
  };
  for (const std::string& p : opts.paths) {
    if (!std::filesystem::exists(p)) {
      std::cerr << "ssnlint: no such path '" << p << "'\n";
      io_error = true;
      return files;
    }
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::recursive_directory_iterator(p))
        if (e.is_regular_file() && ssnlint::lintable_extension(e.path()) &&
            !excluded(e.path()))
          files.push_back(e.path());
    } else if (!excluded(p)) {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

/// True when the scanned path set covers <root>/src and <root>/tools.
bool covers_full_surface(const Options& opts,
                         const std::filesystem::path& root) {
  if (root.empty()) return false;
  const auto covers = [&](const std::filesystem::path& target) {
    if (!std::filesystem::exists(target)) return true;  // nothing to cover
    const std::string t =
        std::filesystem::absolute(target).lexically_normal().generic_string();
    for (const std::string& p : opts.paths) {
      const std::string a =
          std::filesystem::absolute(p).lexically_normal().generic_string();
      if (t == a || t.rfind(a + "/", 0) == 0) return true;
    }
    return false;
  };
  return covers(root / "src") && covers(root / "tools");
}

/// Run the per-file rules over `files` with a worker pool; results land in
/// deterministic (sorted-input) order regardless of thread interleaving.
std::vector<ssnlint::Diagnostic> lint_files_parallel(
    const std::vector<std::filesystem::path>& files, unsigned threads) {
  std::vector<std::vector<ssnlint::Diagnostic>> per_file(files.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= files.size()) break;
      per_file[i] = ssnlint::lint_file(files[i]);
    }
  };
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = unsigned(std::min<std::size_t>(threads,
                                           std::max<std::size_t>(files.size(), 1)));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  std::vector<ssnlint::Diagnostic> out;
  for (auto& d : per_file) out.insert(out.end(), d.begin(), d.end());
  return out;
}

/// Apply in-source suppressions and attach hint/fingerprint to diagnostics
/// produced by the project passes (lint_file already does this for the
/// per-file rules).
std::vector<ssnlint::Diagnostic> finalize_project_diags(
    const ssnlint::Project& proj, std::vector<ssnlint::Diagnostic> diags) {
  std::map<std::string, std::size_t> by_display;
  for (std::size_t i = 0; i < proj.files.size(); ++i)
    by_display.emplace(proj.files[i].display, i);
  std::map<std::size_t, std::vector<std::string>> lines_cache;
  std::vector<ssnlint::Diagnostic> kept;
  static const std::vector<std::string> kNoLines;
  for (ssnlint::Diagnostic& d : diags) {
    const auto it = by_display.find(d.file);
    if (it != by_display.end()) {
      const ssnlint::FileInfo& f = proj.files[it->second];
      bool suppressed = false;
      for (int l : {d.line, d.line - 1}) {
        const auto sup = f.stripped.suppressions.find(l);
        if (sup != f.stripped.suppressions.end() &&
            (sup->second.count(d.rule) || sup->second.count("all")))
          suppressed = true;
      }
      if (suppressed) continue;
      auto& lines = lines_cache[it->second];
      if (lines.empty()) lines = ssnlint::split_lines(f.source);
      ssnlint::finalize_diagnostic(d, lines);
    } else {
      // Docs-anchored findings (L012 catalog rows) fingerprint on message.
      ssnlint::finalize_diagnostic(d, kNoLines);
    }
    kept.push_back(std::move(d));
  }
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ssnlint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--list-rules") {
      for (const auto& [id, text] : ssnlint::rule_catalog())
        std::cout << id << "  " << text << "\n";
      return 0;
    } else if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (!v) return 2;
      opts.sarif_path = v;
    } else if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (!v) return 2;
      opts.baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value("--write-baseline");
      if (!v) return 2;
      opts.write_baseline_path = v;
    } else if (arg == "--threads") {
      const char* v = value("--threads");
      if (!v) return 2;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);  // ssnlint-ignore(SSN-L007)
      if (end == v || *end != '\0' || n < 1 || n > 256)
        return usage_error("--threads wants an integer in [1, 256]");
      opts.threads = unsigned(n);
    } else if (arg == "--docs") {
      const char* v = value("--docs");
      if (!v) return 2;
      opts.docs.emplace_back(v);
    } else if (arg == "--exclude") {
      const char* v = value("--exclude");
      if (!v) return 2;
      opts.excludes.push_back(v);
    } else if (arg == "--no-project") {
      opts.project_passes = false;
    } else if (arg == "--full-surface") {
      opts.full_surface = true;
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error("unknown option '" + arg + "'");
    } else {
      opts.paths.push_back(arg);
    }
  }
  if (opts.paths.empty()) opts.paths.push_back("src");

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  bool io_error = false;
  const std::vector<std::filesystem::path> files = collect_files(opts, io_error);
  if (io_error) return 2;

  // Per-file rules (embarrassingly parallel per file).
  std::vector<ssnlint::Diagnostic> diags =
      lint_files_parallel(files, opts.threads);
  const auto t_files = Clock::now();

  // Whole-project passes.
  if (opts.project_passes) {
    const ssnlint::Project proj = ssnlint::load_project(files);
    std::filesystem::path root;
    for (const auto& f : proj.files)
      if (!f.root.empty()) {
        root = f.root;
        break;
      }
    std::vector<ssnlint::Diagnostic> project_diags;
    ssnlint::pass_layering(proj, project_diags);
    ssnlint::pass_units(proj, project_diags);
    ssnlint::RegistryOptions reg;
    reg.full_surface = opts.full_surface || covers_full_surface(opts, root);
    std::vector<std::filesystem::path> doc_sources = opts.docs;
    if (doc_sources.empty() && !root.empty() &&
        std::filesystem::is_directory(root / "docs"))
      doc_sources.push_back(root / "docs");
    for (const auto& d : doc_sources) {
      if (std::filesystem::is_directory(d)) {
        for (const auto& e : std::filesystem::directory_iterator(d))
          if (e.is_regular_file() && e.path().extension() == ".md")
            reg.doc_files.push_back(e.path());
      } else {
        reg.doc_files.push_back(d);
      }
    }
    std::sort(reg.doc_files.begin(), reg.doc_files.end());
    ssnlint::pass_registry(proj, reg, project_diags);
    std::vector<ssnlint::Diagnostic> finalized =
        finalize_project_diags(proj, std::move(project_diags));
    diags.insert(diags.end(), finalized.begin(), finalized.end());
  }
  const auto t_project = Clock::now();

  std::sort(diags.begin(), diags.end(),
            [](const ssnlint::Diagnostic& a, const ssnlint::Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });

  // Baseline handling.
  if (!opts.write_baseline_path.empty()) {
    std::ofstream out(opts.write_baseline_path);
    if (!out)
      return usage_error("cannot write baseline file '" +
                         opts.write_baseline_path + "'");
    ssnlint::write_baseline(out, diags);
    std::cout << "ssnlint: recorded " << diags.size() << " finding"
              << (diags.size() == 1 ? "" : "s") << " into "
              << opts.write_baseline_path << "\n";
    return 0;
  }
  std::size_t baselined = 0;
  if (!opts.baseline_path.empty()) {
    if (!std::filesystem::exists(opts.baseline_path))
      return usage_error("baseline file '" + opts.baseline_path +
                         "' does not exist");
    diags = ssnlint::apply_baseline(
        diags, ssnlint::load_baseline(opts.baseline_path), &baselined);
  }

  for (const auto& d : diags) {
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
              << "\n";
    if (!d.hint.empty()) std::cout << "    fix: " << d.hint << "\n";
  }
  std::cout << "ssnlint: " << files.size() << " files scanned, " << diags.size()
            << " violation" << (diags.size() == 1 ? "" : "s");
  if (baselined) std::cout << " (" << baselined << " baselined)";
  std::cout << "\n";

  if (!opts.sarif_path.empty()) {
    if (opts.sarif_path == "-") {
      ssnlint::write_sarif(std::cout, diags);
    } else {
      std::ofstream out(opts.sarif_path);
      if (!out)
        return usage_error("cannot write SARIF file '" + opts.sarif_path + "'");
      ssnlint::write_sarif(out, diags);
    }
  }

  if (opts.stats) {
    std::map<std::string, std::size_t> per_rule;
    for (const auto& d : diags) ++per_rule[d.rule];
    const auto ms = [](Clock::duration d) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
    };
    std::cerr << "ssnlint: per-file rules " << ms(t_files - t0)
              << " ms, project passes " << ms(t_project - t_files) << " ms\n";
    for (const auto& [rule, count] : per_rule)
      std::cerr << "  " << rule << "  " << count << "\n";
  }
  return diags.empty() ? 0 : 1;
}
