// ssnlint command-line driver. See ssnlint_core.hpp for the rule engine.
//
// Usage: ssnlint [--list-rules] [path...]
//   path   file or directory (recursed for .hpp/.cpp); defaults to ./src
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.
#include "ssnlint_core.hpp"

#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ssnlint [--list-rules] [path...]\n"
                   "Scans .hpp/.cpp files for ssnkit numeric-hygiene "
                   "violations.\nSuppress with // ssnlint-ignore(RULE) on the "
                   "offending line or the line above.\n";
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& [id, text] : ssnlint::rule_catalog())
        std::cout << id << "  " << text << "\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ssnlint: unknown option '" << arg << "'\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.push_back("src");

  for (const std::string& p : paths) {
    if (!std::filesystem::exists(p)) {
      std::cerr << "ssnlint: no such path '" << p << "'\n";
      return 2;
    }
  }

  std::size_t files = 0;
  const std::vector<ssnlint::Diagnostic> diags = ssnlint::lint_paths(paths, &files);
  for (const auto& d : diags)
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
              << "\n";
  std::cout << "ssnlint: " << files << " files scanned, " << diags.size()
            << " violation" << (diags.size() == 1 ? "" : "s") << "\n";
  return diags.empty() ? 0 : 1;
}
