// ssnlint SSN-L012: diagnostic-code registry cross-reference.
//
// Every user-facing diagnostic code in this project has the shape
// SSN-Exxx (error), SSN-Wxxx (warning), or SSN-Lxxx (lint rule), and every
// code is supposed to have exactly one registry row in the docs/ catalog
// tables (docs/DIAGNOSTICS.md for E/W, docs/STATIC_ANALYSIS.md for L). This
// pass makes that contract checkable:
//
//   * duplicate   — a code with two or more catalog rows (stale copy/paste);
//   * undocumented — a code emitted from src/ or tools/ with no catalog row;
//   * dead        — a catalog row whose code is never emitted anywhere
//                   (reported only when the scan covered the full emission
//                   surface, i.e. all of src/ and tools/ — a partial scan
//                   cannot distinguish dead from elsewhere).
//
// "Emitted" means the code appears inside a string literal in a scanned
// source file; comments do not count (the scan runs over the
// comments-stripped, strings-kept source view). A catalog row is a markdown
// table row (a line starting with '|') naming the code.
#pragma once

#include "ssnlint_core.hpp"
#include "ssnlint_project.hpp"

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace ssnlint {

struct CodeSite {
  std::string file;
  int line = 0;
};

namespace detail_registry {

/// All SSN-[EWL]ddd occurrences with their 1-based lines. `text` must keep
/// line structure (both source views and raw markdown qualify).
inline std::vector<std::pair<std::string, int>> scan_codes(
    const std::string& text) {
  std::vector<std::pair<std::string, int>> found;
  int line = 1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      continue;
    }
    if (text.compare(i, 4, "SSN-") != 0) continue;
    const char kind = i + 4 < text.size() ? text[i + 4] : '\0';
    if (kind != 'E' && kind != 'W' && kind != 'L') continue;
    if (i + 7 >= text.size() || !std::isdigit(unsigned(text[i + 5])) ||
        !std::isdigit(unsigned(text[i + 6])) ||
        !std::isdigit(unsigned(text[i + 7])))
      continue;
    // Word boundary: SSN-E0305 is not a code.
    if (i + 8 < text.size() && std::isalnum(unsigned(text[i + 8]))) continue;
    found.emplace_back(text.substr(i, 8), line);
    i += 7;
  }
  return found;
}

}  // namespace detail_registry

struct RegistryOptions {
  /// Markdown files holding the catalog tables.
  std::vector<std::filesystem::path> doc_files;
  /// True when the scanned project covers all of src/ and tools/, which is
  /// what makes "never emitted" a meaningful claim.
  bool full_surface = false;
};

/// SSN-L012 over the whole project plus the docs/ catalog.
inline void pass_registry(const Project& proj, const RegistryOptions& opts,
                          std::vector<Diagnostic>& out) {
  // Emission sites, first one per code kept for the diagnostic anchor.
  std::map<std::string, std::vector<CodeSite>> emitted;
  for (const FileInfo& f : proj.files)
    for (const auto& [code, line] :
         detail_registry::scan_codes(f.stripped.code_with_strings))
      emitted[code].push_back({f.display, line});

  // Catalog rows: markdown table rows naming a code. Only the first code on
  // a row registers, so a row may reference other codes in its prose cell.
  std::map<std::string, std::vector<CodeSite>> documented;
  for (const auto& doc : opts.doc_files) {
    std::ifstream in(doc, std::ios::binary);
    if (!in) continue;
    std::string line_text;
    int line_no = 0;
    while (std::getline(in, line_text)) {
      ++line_no;
      std::size_t i = 0;
      while (i < line_text.size() && std::isspace(unsigned(line_text[i]))) ++i;
      if (i >= line_text.size() || line_text[i] != '|') continue;
      const auto codes = detail_registry::scan_codes(line_text);
      if (!codes.empty())
        documented[codes.front().first].push_back({doc.string(), line_no});
    }
  }

  for (const auto& [code, rows] : documented) {
    if (rows.size() > 1)
      for (std::size_t k = 1; k < rows.size(); ++k)
        detail::add(out, rows[k].file, rows[k].line, "SSN-L012",
                    "duplicate catalog row for " + code + " (first row at " +
                        rows[0].file + ":" + std::to_string(rows[0].line) +
                        ")");
    if (opts.full_surface && emitted.find(code) == emitted.end())
      detail::add(out, rows[0].file, rows[0].line, "SSN-L012",
                  "dead catalog row: " + code +
                      " is never emitted from src/ or tools/");
  }
  for (const auto& [code, sites] : emitted) {
    if (documented.find(code) != documented.end()) continue;
    detail::add(out, sites[0].file, sites[0].line, "SSN-L012",
                "undocumented diagnostic code " + code +
                    ": add a catalog row (docs/DIAGNOSTICS.md for E/W codes, "
                    "docs/STATIC_ANALYSIS.md for L codes)");
  }
}

}  // namespace ssnlint
