#!/usr/bin/env bash
# Interrupt-resume smoke test for the job lifecycle layer, mirroring what a
# user actually does: start a journaled simulator-backed Monte Carlo batch,
# SIGTERM it mid-flight, resume from the journal, and require the resumed
# run's CSV to be byte-identical to an uninterrupted run's.
#
# Exit codes from the CLI under test: 0 = complete, 75 = interrupted with
# partial results flushed (anything else is a failure here). The SIGTERM may
# land after the batch already finished on a fast machine — that run then
# exits 0 and the resume trivially restores every sample, which still
# exercises the journal round-trip, so both codes are accepted for the
# interrupted leg.
#
# Usage: scripts/resume_smoke.sh [path/to/ssnkit]   (default: build/tools/ssnkit)
set -euo pipefail
cd "$(dirname "$0")/.."

SSNKIT=${1:-build/tools/ssnkit}
if [ ! -x "$SSNKIT" ]; then
  echo "resume_smoke: $SSNKIT not built" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# ~6 ms per sample: a 600-sample batch runs ~4 s, so a SIGTERM after ~1 s
# reliably lands mid-batch (and the comment at the top covers the fast-
# machine case where it doesn't).
SAMPLES=600
COMMON=(mc --sim --samples "$SAMPLES" --seed 4242)

echo "=== clean run ==="
"$SSNKIT" "${COMMON[@]}" --journal "$WORK/clean.journal" \
    --out "$WORK/clean.csv" > "$WORK/clean.log"

echo "=== interrupted run (SIGTERM after ~1s) ==="
set +e
"$SSNKIT" "${COMMON[@]}" --journal "$WORK/part.journal" \
    --out "$WORK/part.csv" > "$WORK/part.log" &
PID=$!
sleep 1
kill -TERM "$PID" 2> /dev/null
wait "$PID"
RC=$?
set -e
if [ "$RC" != 75 ] && [ "$RC" != 0 ]; then
  echo "resume_smoke: interrupted run exited $RC (want 75 or 0)" >&2
  cat "$WORK/part.log" >&2
  exit 1
fi
echo "interrupted leg exited $RC"
grep -c '^item ' "$WORK/part.journal" | sed 's/^/journaled samples: /'

echo "=== resumed run ==="
"$SSNKIT" "${COMMON[@]}" --resume "$WORK/part.journal" \
    --out "$WORK/resumed.csv" > "$WORK/resumed.log"
grep resumed "$WORK/resumed.log" || true

echo "=== compare ==="
if ! cmp -s "$WORK/clean.csv" "$WORK/resumed.csv"; then
  echo "resume_smoke: resumed CSV differs from the clean run" >&2
  diff "$WORK/clean.csv" "$WORK/resumed.csv" >&2 || true
  exit 1
fi
if ! cmp -s "$WORK/clean.journal" "$WORK/part.journal"; then
  echo "resume_smoke: completed journal differs from the clean run's" >&2
  diff "$WORK/clean.journal" "$WORK/part.journal" >&2 || true
  exit 1
fi
echo "resume_smoke: PASS (resumed output bit-identical to the clean run)"
