#!/usr/bin/env bash
# Build everything, run the full test suite, regenerate every paper figure
# and table, and run the examples. The one-command reproduction entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure

echo "=== benches (paper figures/tables + extensions) ==="
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "--- $(basename "$b") ---"
  "$b"
done

echo "=== examples ==="
for e in quickstart io_ring_design power_rail_droop netlist_sim corner_analysis; do
  echo "--- $e ---"
  "build/examples/$e"
done

echo "=== CLI smoke ==="
build/tools/ssnkit estimate --n 8 --tr 0.1n --verify
