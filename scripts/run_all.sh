#!/usr/bin/env bash
# Build everything, run the full test suite, regenerate every paper figure
# and table, and run the examples. The one-command reproduction entry point.
#
# Flags:
#   --sanitize   build/run everything under ASan+UBSan (asan-ubsan preset)
#   --lint       also run the standalone ssnlint pass over src/
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
LINT=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    --lint) LINT=1 ;;
    *) echo "usage: $0 [--sanitize] [--lint]" >&2; exit 2 ;;
  esac
done

BUILD=build
if [ "$SANITIZE" = 1 ]; then
  BUILD=build-asan
  export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan
else
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
fi

echo "=== tests ==="
ctest --test-dir "$BUILD" --output-on-failure

if [ "$LINT" = 1 ]; then
  echo "=== ssnlint ==="
  "$BUILD"/tools/ssnlint src
fi

echo "=== benches (paper figures/tables + extensions) ==="
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "--- $(basename "$b") ---"
  "$b"
done

echo "=== examples ==="
for e in quickstart io_ring_design power_rail_droop netlist_sim corner_analysis; do
  echo "--- $e ---"
  "$BUILD/examples/$e"
done

echo "=== CLI smoke ==="
"$BUILD"/tools/ssnkit estimate --n 8 --tr 0.1n --verify
