#!/usr/bin/env bash
# Run the perf suite (bench/bench_perf) and emit BENCH_perf.json.
#
# Usage: scripts/bench.sh [--smoke] [--filter REGEX] [--out FILE]
#   --smoke         fast pass (short min-time, 1 repetition) — CI uses this
#                   to prove the suite runs and to archive a trend artifact;
#                   numbers from a loaded CI box are indicative only
#   --filter REGEX  forward to --benchmark_filter (default: everything)
#   --out FILE      JSON output path (default: BENCH_perf.json in repo root)
#
# For publishable numbers run without --smoke on an idle machine. The
# headline comparisons are documented in docs/PERFORMANCE.md:
#   BM_MnaAssemblyDense vs BM_MnaAssemblySparse  — per-Newton-iteration cost
#   BM_SsnTransient                              — end-to-end transient solve
#   BM_McClosedForm / BM_McSimBatch              — batch runner thread scaling
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
FILTER=""
OUT=BENCH_perf.json
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --filter) FILTER="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

if [ ! -x build/bench/bench_perf ]; then
  echo "=== building bench_perf (release preset) ==="
  cmake --preset release
  cmake --build --preset release --target bench_perf -j
fi

args=(--benchmark_out="$OUT" --benchmark_out_format=json)
if [ "$SMOKE" = 1 ]; then
  # Plain-double min_time form: portable across google-benchmark versions.
  args+=(--benchmark_min_time=0.05 --benchmark_repetitions=1)
fi
if [ -n "$FILTER" ]; then
  args+=(--benchmark_filter="$FILTER")
fi

echo "=== bench_perf -> $OUT ==="
build/bench/bench_perf "${args[@]}"
echo "bench.sh: wrote $OUT"
