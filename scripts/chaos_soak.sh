#!/usr/bin/env bash
# Chaos soak for the numerical trust layer: hammer `ssnkit serve` with a
# deterministic request stream while the fault injector flips LU factor
# bits and rots cache bytes, SIGTERM the daemon mid-stream, restart it from
# its (possibly rotted) cache spill, and prove the "never silently wrong"
# contract:
#
#   zero false-verified responses — every response whose trust verdict
#   claims "verified" matches the golden (fault-free) run's numbers; a
#   faulted result may come back refined, degraded, or as a typed error,
#   but never as a wrong number wearing a verified badge.
#
# A final leg truncates checkpoint-journal tails (kJournalTruncate) under a
# SIGTERM'd simulator-backed Monte Carlo and requires the resumed run to be
# bit-identical to a clean one: a torn tail record may only cost re-work,
# never correctness.
#
# Needs a fault-injection build (cmake --preset fault-injection): release
# builds compile the hooks out and the daemon ignores SSNKIT_FAULT_PLAN,
# which this script detects and reports as exit 2.
#
# Usage: scripts/chaos_soak.sh [path/to/ssnkit [REQUESTS]]
#   default binary build-fi/tools/ssnkit, default stream 10000 requests.
set -euo pipefail
cd "$(dirname "$0")/.."

SSNKIT=${1:-build-fi/tools/ssnkit}
REQUESTS=${2:-10000}
PLAN="seed=7,factor-bit-flip=0.05,cache-rot=0.05"

if [ ! -x "$SSNKIT" ]; then
  echo "chaos_soak: $SSNKIT not built (need the fault-injection preset)" >&2
  exit 2
fi

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "=== probe: the binary must honor SSNKIT_FAULT_PLAN ==="
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve < /dev/null > "$WORK/probe.log"
if ! grep -q '"event":"fault-plan"' "$WORK/probe.log"; then
  echo "chaos_soak: $SSNKIT ignores SSNKIT_FAULT_PLAN — not a" >&2
  echo "fault-injection build. Configure with: cmake --preset fault-injection" >&2
  exit 2
fi

echo "=== generate a deterministic $REQUESTS-request stream ==="
python3 - "$REQUESTS" > "$WORK/stream.jsonl" <<'EOF'
import sys
bodies = []
for n in range(2, 10):
    bodies.append('"cmd":"estimate","n":%d,"tr":1e-10' % n)
for n in range(2, 6):
    bodies.append('"cmd":"estimate","sim":true,"n":%d,"tr":1e-10' % n)
bodies.append('"cmd":"mc","n":8,"samples":2000,"seed":1')
bodies.append('"cmd":"mc","n":4,"samples":1000,"seed":2')
total = int(sys.argv[1])
for i in range(total):
    print('{"id":"q%06d",%s}' % (i, bodies[i % len(bodies)]))
EOF

echo "=== leg 0: golden run (no faults) ==="
"$SSNKIT" serve --queue "$REQUESTS" < "$WORK/stream.jsonl" > "$WORK/golden.log"

echo "=== leg 1: full stream under fault injection, cold cache ==="
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve --queue "$REQUESTS" \
    --cache-file "$WORK/spill" < "$WORK/stream.jsonl" > "$WORK/chaos1.log"

echo "=== leg 2: SIGTERM mid-stream, then restart on the same spill ==="
# Throttle the feed so the SIGTERM reliably lands while requests are still
# arriving; the daemon must drain every accepted request and exit cleanly.
# Feed through a FIFO rather than a pipeline: under pipefail, `wait` on a
# pipeline job reports the feeder's SIGPIPE (the daemon exits mid-stream,
# by design) instead of the daemon's own clean-drain status.
mkfifo "$WORK/feed"
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve --queue "$REQUESTS" \
    --cache-file "$WORK/spill" < "$WORK/feed" > "$WORK/chaos2.log" &
SERVE_PID=$!
awk '{print; fflush(); if (NR % 200 == 0) system("sleep 0.05")}' \
    "$WORK/stream.jsonl" > "$WORK/feed" &
FEED_PID=$!
sleep 1
kill -TERM "$SERVE_PID" 2> /dev/null
set +e
wait "$SERVE_PID"
RC=$?
wait "$FEED_PID" 2> /dev/null  # feeder dies of SIGPIPE once the daemon exits
set -e
SERVE_PID=""
if [ "$RC" != 0 ] && [ "$RC" != 75 ]; then
  echo "chaos_soak: SIGTERM'd daemon exited $RC (want a clean drain)" >&2
  tail "$WORK/chaos2.log" >&2
  exit 1
fi
# The restarted daemon warms from the spill the killed one left behind —
# entries may be rotted (checksum) or carry non-verified verdicts, and
# must then be recomputed, never replayed.
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve --queue "$REQUESTS" \
    --cache-file "$WORK/spill" < "$WORK/stream.jsonl" > "$WORK/chaos3.log"

echo "=== verdict audit: zero false-verified responses ==="
python3 - "$WORK" <<'EOF'
import json, sys

work = sys.argv[1]

def load(path):
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            out.append(json.loads(line))  # every line must be valid JSON
    return out

# Map request id -> request body key (the id-independent part).
keys = {}
for req in load(work + "/stream.jsonl"):
    rid = req.pop("id")
    keys[rid] = json.dumps(req, sort_keys=True)

# Golden values per body key from the fault-free run. A fault-free result
# may still be honestly degraded by a physics invariant (e.g. SSN-W074,
# closed form vs simulator over the 3% bar) — that is the problem talking,
# not a fault — but it must never be refined or unverified.
golden = {}
golden_verdict = {}
for resp in load(work + "/golden.log"):
    if "id" not in resp:
        continue
    assert resp.get("ok"), "golden run failed: %r" % resp
    result = resp["result"]
    verdict = result["trust"]["verdict"]
    assert verdict == "verified" or (
        verdict == "degraded" and result["trust"].get("notes")), \
        "golden run not verified: %r" % resp
    golden[keys[resp["id"]]] = result
    golden_verdict[keys[resp["id"]]] = verdict

def headline(result):
    return result["mean"] if "mean" in result else result["v_max"]

false_verified = 0
evidence = 0   # observable fault impact: warnings or honest downgrades
answered = {}
for leg in ("chaos1", "chaos2", "chaos3"):
    responses = load(work + "/%s.log" % leg)
    armed = [r for r in responses if r.get("event") == "fault-plan"]
    assert armed and armed[0]["armed"] == 2, "%s: fault plan not armed" % leg
    evidence += sum(1 for r in responses
                    if r.get("event") == "warning" and "SSN-W072" in r.get("code", ""))
    seen = set()
    for resp in responses:
        if "id" not in resp:
            continue
        rid = resp["id"]
        assert rid not in seen, "%s: duplicate response for %s" % (leg, rid)
        seen.add(rid)
        if not resp.get("ok"):
            # Admission sheds (drain or backpressure) are neither faults
            # nor fault evidence; any other typed error under chaos is an
            # honest refusal and counts as observable impact.
            if resp.get("code") != "SSN-E064":
                evidence += 1
            continue
        result = resp["result"]
        verdict = result["trust"]["verdict"]
        if resp.get("cached"):
            assert verdict in ("verified", "refined"), \
                "%s: cache replayed a %s result: %r" % (leg, verdict, resp)
        if verdict != "verified":
            # Downgraded under chaos: honest, allowed. Only count it as
            # fault evidence when the fault-free run verified this body.
            if golden_verdict.get(keys[rid]) == "verified":
                evidence += 1
            continue
        want = headline(golden[keys[rid]])
        got = headline(result)
        if abs(got - want) > max(1e-6 * abs(want), 1e-12):
            false_verified += 1
            print("FALSE VERIFIED %s %s: got %r want %r" % (leg, rid, got, want))
    answered[leg] = len(seen)

# Legs 1 and 3 consume the whole stream at their own pace: every request
# must be answered. Leg 2 was SIGTERM'd, so only a prefix was accepted —
# but each accepted one got exactly one response (the duplicate check).
total = len(keys)
assert answered["chaos1"] == total, "chaos1 answered %d/%d" % (answered["chaos1"], total)
assert answered["chaos3"] == total, "chaos3 answered %d/%d" % (answered["chaos3"], total)
assert evidence > 0, "no fault ever fired — the soak proved nothing"
assert false_verified == 0
print("audit: %d responses, %d fault impacts observed, 0 false-verified"
      % (sum(answered.values()), evidence))
EOF

echo "=== leg 3: journal truncation under SIGTERM + resume ==="
MC=(mc --sim --samples 120 --seed 4242)
"$SSNKIT" "${MC[@]}" --journal "$WORK/clean.journal" \
    --out "$WORK/clean.csv" > "$WORK/clean.log"
set +e
SSNKIT_FAULT_PLAN="seed=3,journal-truncate=0.2" \
    "$SSNKIT" "${MC[@]}" --journal "$WORK/torn.journal" \
    --out "$WORK/torn.csv" > "$WORK/torn.log" &
PID=$!
sleep 2
kill -TERM "$PID" 2> /dev/null
wait "$PID"
RC=$?
set -e
if [ "$RC" != 75 ] && [ "$RC" != 0 ]; then
  echo "chaos_soak: interrupted mc exited $RC (want 75 or 0)" >&2
  cat "$WORK/torn.log" >&2
  exit 1
fi
# Resume (fault-free) from the possibly-truncated journal: a torn tail
# record costs at most re-simulation of that sample, never correctness.
"$SSNKIT" "${MC[@]}" --resume "$WORK/torn.journal" \
    --out "$WORK/resumed.csv" > "$WORK/resumed.log"
if ! cmp -s "$WORK/clean.csv" "$WORK/resumed.csv"; then
  echo "chaos_soak: resume from a truncated journal diverged" >&2
  diff "$WORK/clean.csv" "$WORK/resumed.csv" >&2 || true
  exit 1
fi
echo "journal-truncate leg OK (resumed output bit-identical)"

echo "chaos_soak: PASS ($REQUESTS-request stream x 3 legs, 0 false-verified)"
