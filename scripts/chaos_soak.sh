#!/usr/bin/env bash
# Chaos soak for the numerical trust layer: hammer `ssnkit serve` with a
# deterministic request stream while the fault injector flips LU factor
# bits and rots cache bytes, SIGTERM the daemon mid-stream, restart it from
# its (possibly rotted) cache spill, and prove the "never silently wrong"
# contract:
#
#   zero false-verified responses — every response whose trust verdict
#   claims "verified" matches the golden (fault-free) run's numbers; a
#   faulted result may come back refined, degraded, or as a typed error,
#   but never as a wrong number wearing a verified badge.
#
# A journal leg truncates checkpoint-journal tails (kJournalTruncate) under
# a SIGTERM'd simulator-backed Monte Carlo and requires the resumed run to
# be bit-identical to a clean one: a torn tail record may only cost
# re-work, never correctness.
#
# A final supervisor leg re-runs the stream under --isolate=process with
# all three worker faults armed (worker-crash / worker-hang / worker-oom as
# deterministic poison design points) plus a raw kill -9 of a live worker
# mid-soak, and requires: daemon exits 0, every request answered exactly
# once and typed (SSN-E068/E069 for the contained deaths, SSN-E070 once
# each poison key trips the crash-correlation threshold), the quarantine
# journal replayable, and still zero false-verified results.
#
# Needs a fault-injection build (cmake --preset fault-injection): release
# builds compile the hooks out and the daemon ignores SSNKIT_FAULT_PLAN,
# which this script detects and reports as exit 2.
#
# Usage: scripts/chaos_soak.sh [path/to/ssnkit [REQUESTS]]
#   default binary build-fi/tools/ssnkit, default stream 10000 requests.
set -euo pipefail
cd "$(dirname "$0")/.."

SSNKIT=${1:-build-fi/tools/ssnkit}
REQUESTS=${2:-10000}
PLAN="seed=7,factor-bit-flip=0.05,cache-rot=0.05"

if [ ! -x "$SSNKIT" ]; then
  echo "chaos_soak: $SSNKIT not built (need the fault-injection preset)" >&2
  exit 2
fi

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "=== probe: the binary must honor SSNKIT_FAULT_PLAN ==="
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve < /dev/null > "$WORK/probe.log"
if ! grep -q '"event":"fault-plan"' "$WORK/probe.log"; then
  echo "chaos_soak: $SSNKIT ignores SSNKIT_FAULT_PLAN — not a" >&2
  echo "fault-injection build. Configure with: cmake --preset fault-injection" >&2
  exit 2
fi

echo "=== generate a deterministic $REQUESTS-request stream ==="
python3 - "$REQUESTS" > "$WORK/stream.jsonl" <<'EOF'
import sys
bodies = []
for n in range(2, 10):
    bodies.append('"cmd":"estimate","n":%d,"tr":1e-10' % n)
for n in range(2, 6):
    bodies.append('"cmd":"estimate","sim":true,"n":%d,"tr":1e-10' % n)
bodies.append('"cmd":"mc","n":8,"samples":2000,"seed":1')
bodies.append('"cmd":"mc","n":4,"samples":1000,"seed":2')
total = int(sys.argv[1])
for i in range(total):
    print('{"id":"q%06d",%s}' % (i, bodies[i % len(bodies)]))
EOF

echo "=== leg 0: golden run (no faults) ==="
"$SSNKIT" serve --queue "$REQUESTS" < "$WORK/stream.jsonl" > "$WORK/golden.log"

echo "=== leg 1: full stream under fault injection, cold cache ==="
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve --queue "$REQUESTS" \
    --cache-file "$WORK/spill" < "$WORK/stream.jsonl" > "$WORK/chaos1.log"

echo "=== leg 2: SIGTERM mid-stream, then restart on the same spill ==="
# Throttle the feed so the SIGTERM reliably lands while requests are still
# arriving; the daemon must drain every accepted request and exit cleanly.
# Feed through a FIFO rather than a pipeline: under pipefail, `wait` on a
# pipeline job reports the feeder's SIGPIPE (the daemon exits mid-stream,
# by design) instead of the daemon's own clean-drain status.
mkfifo "$WORK/feed"
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve --queue "$REQUESTS" \
    --cache-file "$WORK/spill" < "$WORK/feed" > "$WORK/chaos2.log" &
SERVE_PID=$!
awk '{print; fflush(); if (NR % 200 == 0) system("sleep 0.05")}' \
    "$WORK/stream.jsonl" > "$WORK/feed" &
FEED_PID=$!
sleep 1
kill -TERM "$SERVE_PID" 2> /dev/null
set +e
wait "$SERVE_PID"
RC=$?
wait "$FEED_PID" 2> /dev/null  # feeder dies of SIGPIPE once the daemon exits
set -e
SERVE_PID=""
if [ "$RC" != 0 ] && [ "$RC" != 75 ]; then
  echo "chaos_soak: SIGTERM'd daemon exited $RC (want a clean drain)" >&2
  tail "$WORK/chaos2.log" >&2
  exit 1
fi
# The restarted daemon warms from the spill the killed one left behind —
# entries may be rotted (checksum) or carry non-verified verdicts, and
# must then be recomputed, never replayed.
SSNKIT_FAULT_PLAN="$PLAN" "$SSNKIT" serve --queue "$REQUESTS" \
    --cache-file "$WORK/spill" < "$WORK/stream.jsonl" > "$WORK/chaos3.log"

echo "=== verdict audit: zero false-verified responses ==="
python3 - "$WORK" <<'EOF'
import json, sys

work = sys.argv[1]

def load(path):
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            out.append(json.loads(line))  # every line must be valid JSON
    return out

# Map request id -> request body key (the id-independent part).
keys = {}
for req in load(work + "/stream.jsonl"):
    rid = req.pop("id")
    keys[rid] = json.dumps(req, sort_keys=True)

# Golden values per body key from the fault-free run. A fault-free result
# may still be honestly degraded by a physics invariant (e.g. SSN-W074,
# closed form vs simulator over the 3% bar) — that is the problem talking,
# not a fault — but it must never be refined or unverified.
golden = {}
golden_verdict = {}
for resp in load(work + "/golden.log"):
    if "id" not in resp:
        continue
    assert resp.get("ok"), "golden run failed: %r" % resp
    result = resp["result"]
    verdict = result["trust"]["verdict"]
    assert verdict == "verified" or (
        verdict == "degraded" and result["trust"].get("notes")), \
        "golden run not verified: %r" % resp
    golden[keys[resp["id"]]] = result
    golden_verdict[keys[resp["id"]]] = verdict

def headline(result):
    return result["mean"] if "mean" in result else result["v_max"]

false_verified = 0
evidence = 0   # observable fault impact: warnings or honest downgrades
answered = {}
for leg in ("chaos1", "chaos2", "chaos3"):
    responses = load(work + "/%s.log" % leg)
    armed = [r for r in responses if r.get("event") == "fault-plan"]
    assert armed and armed[0]["armed"] == 2, "%s: fault plan not armed" % leg
    evidence += sum(1 for r in responses
                    if r.get("event") == "warning" and "SSN-W072" in r.get("code", ""))
    seen = set()
    for resp in responses:
        if "id" not in resp:
            continue
        rid = resp["id"]
        assert rid not in seen, "%s: duplicate response for %s" % (leg, rid)
        seen.add(rid)
        if not resp.get("ok"):
            # Admission sheds (drain or backpressure) are neither faults
            # nor fault evidence; any other typed error under chaos is an
            # honest refusal and counts as observable impact.
            if resp.get("code") != "SSN-E064":
                evidence += 1
            continue
        result = resp["result"]
        verdict = result["trust"]["verdict"]
        if resp.get("cached"):
            assert verdict in ("verified", "refined"), \
                "%s: cache replayed a %s result: %r" % (leg, verdict, resp)
        if verdict != "verified":
            # Downgraded under chaos: honest, allowed. Only count it as
            # fault evidence when the fault-free run verified this body.
            if golden_verdict.get(keys[rid]) == "verified":
                evidence += 1
            continue
        want = headline(golden[keys[rid]])
        got = headline(result)
        if abs(got - want) > max(1e-6 * abs(want), 1e-12):
            false_verified += 1
            print("FALSE VERIFIED %s %s: got %r want %r" % (leg, rid, got, want))
    answered[leg] = len(seen)

# Legs 1 and 3 consume the whole stream at their own pace: every request
# must be answered. Leg 2 was SIGTERM'd, so only a prefix was accepted —
# but each accepted one got exactly one response (the duplicate check).
total = len(keys)
assert answered["chaos1"] == total, "chaos1 answered %d/%d" % (answered["chaos1"], total)
assert answered["chaos3"] == total, "chaos3 answered %d/%d" % (answered["chaos3"], total)
assert evidence > 0, "no fault ever fired — the soak proved nothing"
assert false_verified == 0
print("audit: %d responses, %d fault impacts observed, 0 false-verified"
      % (sum(answered.values()), evidence))
EOF

echo "=== leg 3: journal truncation under SIGTERM + resume ==="
MC=(mc --sim --samples 120 --seed 4242)
"$SSNKIT" "${MC[@]}" --journal "$WORK/clean.journal" \
    --out "$WORK/clean.csv" > "$WORK/clean.log"
set +e
SSNKIT_FAULT_PLAN="seed=3,journal-truncate=0.2" \
    "$SSNKIT" "${MC[@]}" --journal "$WORK/torn.journal" \
    --out "$WORK/torn.csv" > "$WORK/torn.log" &
PID=$!
sleep 2
kill -TERM "$PID" 2> /dev/null
wait "$PID"
RC=$?
set -e
if [ "$RC" != 75 ] && [ "$RC" != 0 ]; then
  echo "chaos_soak: interrupted mc exited $RC (want 75 or 0)" >&2
  cat "$WORK/torn.log" >&2
  exit 1
fi
# Resume (fault-free) from the possibly-truncated journal: a torn tail
# record costs at most re-simulation of that sample, never correctness.
"$SSNKIT" "${MC[@]}" --resume "$WORK/torn.journal" \
    --out "$WORK/resumed.csv" > "$WORK/resumed.log"
if ! cmp -s "$WORK/clean.csv" "$WORK/resumed.csv"; then
  echo "chaos_soak: resume from a truncated journal diverged" >&2
  diff "$WORK/clean.csv" "$WORK/resumed.csv" >&2 || true
  exit 1
fi
echo "journal-truncate leg OK (resumed output bit-identical)"

echo "=== leg 4: supervised process isolation under worker faults ==="
# Deterministic poison design points: the fault sites are scoped to one
# driver count each (the worker enters a FaultSampleScope per request), so
# n=13 always crashes its worker, n=11 hangs without polling (only the
# watchdog can end it; the request carries a 0.3 s deadline, grace 0.2 s),
# and n=12 trips the worker's RLIMIT_AS. Normal traffic stays clean.
SUP_PLAN="seed=7,worker-crash@13=1,worker-hang@11=1,worker-oom@12=1"
python3 - "$REQUESTS" > "$WORK/sup_stream.jsonl" <<'EOF'
import sys
bodies = []
for n in range(2, 10):
    bodies.append('"cmd":"estimate","n":%d,"tr":1e-10' % n)
bodies.append('"cmd":"mc","n":8,"samples":2000,"seed":1')
poison = {
    137: '"cmd":"estimate","n":13,"tr":1e-10',
    211: '"cmd":"estimate","n":11,"tr":1e-10,"deadline":0.3',
    307: '"cmd":"estimate","n":12,"tr":1e-10',
}
total = int(sys.argv[1])
for i in range(total):
    # Each poison shape recurs well past the quarantine threshold.
    body = poison.get(i % 997, bodies[i % len(bodies)])
    print('{"id":"s%06d",%s}' % (i, body))
EOF
mkfifo "$WORK/sup_feed"
SSNKIT_FAULT_PLAN="$SUP_PLAN" "$SSNKIT" serve --queue "$REQUESTS" \
    --isolate process --workers 4 --grace 0.2 \
    --quarantine 2 --quarantine-file "$WORK/quarantine.jsonl" \
    < "$WORK/sup_feed" > "$WORK/sup.log" &
SERVE_PID=$!
# Throttle the feed so the soak has a live mid-stream window.
awk '{print; fflush(); if (NR % 500 == 0) system("sleep 0.05")}' \
    "$WORK/sup_stream.jsonl" > "$WORK/sup_feed" &
FEED_PID=$!
# kill -9 a live worker mid-soak: the supervisor must contain it to at most
# one in-flight request (an idle victim costs nothing at all).
sleep 0.7
VICTIM=$(grep -m1 '"event":"worker-spawn"' "$WORK/sup.log" \
         | grep -o '"pid":[0-9]*' | grep -o '[0-9]*' || true)
if [ -n "$VICTIM" ]; then
  kill -9 "$VICTIM" 2> /dev/null || true
fi
set +e
wait "$FEED_PID"
wait "$SERVE_PID"
RC=$?
set -e
SERVE_PID=""
if [ "$RC" != 0 ]; then
  echo "chaos_soak: supervised daemon exited $RC (want 0: worker deaths" >&2
  echo "must never take the daemon down)" >&2
  tail "$WORK/sup.log" >&2
  exit 1
fi

echo "=== supervisor audit: contained, typed, exactly-once, quarantined ==="
python3 - "$WORK" <<'EOF'
import json, sys

work = sys.argv[1]

def load(path):
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))  # every line must be valid JSON
    return out

keys = {}
poison_n = {}
for req in load(work + "/sup_stream.jsonl"):
    rid = req.pop("id")
    keys[rid] = json.dumps(req, sort_keys=True)
    if req.get("n") in (11, 12, 13):
        poison_n[rid] = req["n"]

# golden.log came from the main stream (q-ids), not the supervised one
# (s-ids); map its ids through that stream's bodies. The supervised
# stream's clean bodies are a subset of the main stream's.
golden_keys = {}
for req in load(work + "/stream.jsonl"):
    rid = req.pop("id")
    golden_keys[rid] = json.dumps(req, sort_keys=True)
golden = {}
for resp in load(work + "/golden.log"):
    if "id" in resp and resp.get("ok"):
        golden[golden_keys[resp["id"]]] = resp["result"]

def headline(result):
    return result["mean"] if "mean" in result else result["v_max"]

responses = load(work + "/sup.log")
armed = [r for r in responses if r.get("event") == "fault-plan"]
assert armed and armed[0]["armed"] == 3, "worker fault plan not armed"
spawns = sum(1 for r in responses if r.get("event") == "worker-spawn")
w075 = sum(1 for r in responses
           if r.get("event") == "warning" and r.get("code") == "SSN-W075")
w076 = sum(1 for r in responses
           if r.get("event") == "warning" and r.get("code") == "SSN-W076")
assert spawns >= 4, "initial worker pool never spawned"
assert w075 >= 1, "no SSN-W075 despite worker deaths and a kill -9"
assert w076 >= 1, "no SSN-W076 despite poison keys"

seen = set()
codes = {"SSN-E068": 0, "SSN-E069": 0, "SSN-E070": 0}
false_verified = 0
for resp in responses:
    if "id" not in resp:
        continue
    rid = resp["id"]
    assert rid not in seen, "duplicate response for %s" % rid
    seen.add(rid)
    if rid in poison_n:
        assert not resp.get("ok"), \
            "poison request %s (n=%d) claims ok: %r" % (rid, poison_n[rid], resp)
        code = resp.get("code")
        want = {11: ("SSN-E068", "SSN-E070"),
                12: ("SSN-E069", "SSN-E070"),
                13: ("SSN-E069", "SSN-E070")}[poison_n[rid]]
        assert code in want, \
            "poison %s (n=%d) got %s, want one of %s" % (rid, poison_n[rid], code, want)
        codes[code] += 1
        continue
    if not resp.get("ok"):
        # A clean request may still die collaterally (it shared a worker
        # with the kill -9) — typed, never silent. E070 is poison-only.
        assert resp.get("code") in ("SSN-E069", "SSN-E068", "SSN-E066",
                                    "SSN-E064"), "untyped failure: %r" % resp
        continue
    result = resp["result"]
    if result["trust"]["verdict"] != "verified":
        continue
    key = keys[rid]
    if key not in golden:
        continue
    want = headline(golden[key])
    got = headline(result)
    if abs(got - want) > max(1e-6 * abs(want), 1e-12):
        false_verified += 1
        print("FALSE VERIFIED %s: got %r want %r" % (rid, got, want))

assert len(seen) == len(keys), \
    "answered %d/%d requests" % (len(seen), len(keys))
for code in ("SSN-E068", "SSN-E069", "SSN-E070"):
    assert codes[code] >= 1, "no %s in the soak (codes: %r)" % (code, codes)
assert false_verified == 0

quarantined = load(work + "/quarantine.jsonl")
assert quarantined, "quarantine journal is empty"
for entry in quarantined:
    assert entry.get("n") in (11, 12, 13), \
        "non-poison request quarantined: %r" % entry
print("supervisor audit: %d responses, %d worker spawns, %d deaths (W075), "
      "E068 x%d E069 x%d E070 x%d, quarantine journal %d entries, "
      "0 false-verified"
      % (len(seen), spawns, w075, codes["SSN-E068"], codes["SSN-E069"],
         codes["SSN-E070"], len(quarantined)))
EOF

echo "chaos_soak: PASS ($REQUESTS-request stream x 4 legs, 0 false-verified)"
