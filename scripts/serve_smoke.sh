#!/usr/bin/env bash
# End-to-end smoke test for the serve daemon (docs/SERVING.md), mirroring
# what an operator actually does:
#
#   leg 1  stdin mode: repeated request answers from the cache, a restarted
#          daemon warms the cache from its crash-safe spill file
#   leg 2  socket mode: start the daemon, fire closed-loop load through
#          bench_serve --connect plus one deliberately slow request, SIGTERM
#          the daemon mid-load, and assert the clean-drain contract:
#            - the daemon exits 0
#            - every line it printed is valid JSON (checked with jq)
#            - stats report accepted == responded (no accepted request lost)
#   leg 3  process isolation: run a stream under --isolate process, kill -9
#          a worker mid-load, and assert the containment contract: daemon
#          exits 0, every request answered exactly once (typed SSN-E069 at
#          worst), the dead worker noticed (SSN-W075) and respawned
#
# The SIGTERM may land after the load already finished on a fast machine —
# the drain is then trivial but still exercised end to end, so the
# assertions hold either way.
#
# Usage: scripts/serve_smoke.sh [path/to/ssnkit [path/to/bench_serve]]
set -euo pipefail
cd "$(dirname "$0")/.."

SSNKIT=${1:-build/tools/ssnkit}
BENCH=${2:-build/bench/bench_serve}
if [ ! -x "$SSNKIT" ]; then
  echo "serve_smoke: $SSNKIT not built" >&2
  exit 2
fi
if [ ! -x "$BENCH" ]; then
  echo "serve_smoke: $BENCH not built" >&2
  exit 2
fi

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "=== leg 1: stdin mode, cache + warm restart ==="
REQ='{"id":"r1","cmd":"estimate","n":8,"tr":1e-10}'
printf '%s\n%s\n' "$REQ" "${REQ/r1/r2}" \
  | "$SSNKIT" serve --cache-file "$WORK/spill" > "$WORK/leg1a.log"
grep -q '"id":"r1","ok":true' "$WORK/leg1a.log"
grep -q '"id":"r2","ok":true,"cached":true' "$WORK/leg1a.log"
[ -f "$WORK/spill" ] || { echo "serve_smoke: no cache spill written" >&2; exit 1; }
printf '%s\n' "${REQ/r1/r3}" \
  | "$SSNKIT" serve --cache-file "$WORK/spill" > "$WORK/leg1b.log"
grep -q '"id":"r3","ok":true,"cached":true' "$WORK/leg1b.log" \
  || { echo "serve_smoke: restarted daemon did not warm from spill" >&2
       cat "$WORK/leg1b.log" >&2; exit 1; }
echo "cache hit + warm restart OK"

echo "=== leg 2: socket mode, SIGTERM mid-load ==="
SOCK=$WORK/ssnkit.sock
"$SSNKIT" serve --socket "$SOCK" --queue 128 --drain 2 \
    > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 50); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "serve_smoke: socket never appeared" >&2
                    cat "$WORK/serve.log" >&2; exit 1; }

# Closed-loop load over the socket (ignore its exit status: once the drain
# starts, its in-flight connections are legitimately shed or closed).
"$BENCH" --connect "$SOCK" --requests 100000 --clients 4 --dup-frac 0.2 \
    --out "$WORK/bench.json" > "$WORK/bench.log" 2>&1 &
BENCH_PID=$!

# One deliberately slow request so the SIGTERM reliably has in-flight work
# to drain (and, past the 2 s drain deadline, to cancel with SSN-E066).
python3 - "$SOCK" > "$WORK/slow.log" 2>&1 <<'EOF' &
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(b'{"id":"slow","cmd":"sweep-n","max_n":32}\n')
buf = b""
while b"\n" not in buf:
    chunk = s.recv(65536)
    if not chunk:
        break
    buf += chunk
sys.stdout.write(buf.split(b"\n")[0].decode())
EOF
SLOW_PID=$!

sleep 1
kill -TERM "$SERVE_PID" 2> /dev/null
set +e
wait "$SERVE_PID"
RC=$?
SERVE_PID=""
wait "$BENCH_PID" 2> /dev/null
wait "$SLOW_PID" 2> /dev/null
set -e

if [ "$RC" != 0 ]; then
  echo "serve_smoke: daemon exited $RC on SIGTERM (want clean drain, 0)" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
echo "daemon drained and exited 0"

# Every daemon output line must be a complete JSON object.
while IFS= read -r line; do
  [ -z "$line" ] && continue
  echo "$line" | jq -e . > /dev/null \
    || { echo "serve_smoke: non-JSON daemon output: $line" >&2; exit 1; }
done < "$WORK/serve.log"

# The slow client must have received a valid JSON response line (ok, shed,
# or the drain's SSN-E066 — but never silence or garbage).
if [ -s "$WORK/slow.log" ]; then
  jq -e . "$WORK/slow.log" > /dev/null \
    || { echo "serve_smoke: slow client got garbage:" >&2
         cat "$WORK/slow.log" >&2; exit 1; }
else
  echo "serve_smoke: slow client got no response" >&2
  exit 1
fi

# The drain contract: every accepted request was answered.
STATS=$(grep '"event":"stats"' "$WORK/serve.log" | tail -1)
[ -n "$STATS" ] || { echo "serve_smoke: no stats line" >&2; exit 1; }
ACCEPTED=$(echo "$STATS" | jq -r .accepted)
RESPONDED=$(echo "$STATS" | jq -r .responded)
echo "stats: accepted=$ACCEPTED responded=$RESPONDED"
if [ "$ACCEPTED" != "$RESPONDED" ]; then
  echo "serve_smoke: lost accepted requests ($ACCEPTED accepted, $RESPONDED responded)" >&2
  exit 1
fi
if [ "$ACCEPTED" -lt 1 ]; then
  echo "serve_smoke: load generator never got a request admitted" >&2
  cat "$WORK/bench.log" >&2
  exit 1
fi

echo "=== leg 3: process isolation, kill -9 a worker mid-load ==="
# Release builds have no fault hooks, so the only chaos here is real: a raw
# kill -9 of a live worker. The supervisor must notice (SSN-W075), respawn
# the slot, degrade at most the in-flight request (typed SSN-E069), and
# answer every request exactly once.
# Every body is unique (tr varies per request) so nothing is served from
# the cache and the dead worker's slot is certain to be dispatched to.
python3 - > "$WORK/proc_stream.jsonl" <<'EOF'
for i in range(1000):
    print('{"id":"p%04d","cmd":"estimate","n":%d,"tr":%.6e}'
          % (i, 2 + i % 8, 1e-10 * (1 + 1e-4 * i)))
EOF
mkfifo "$WORK/proc_feed"
"$SSNKIT" serve --queue 1024 --isolate process --workers 2 \
    < "$WORK/proc_feed" > "$WORK/proc.log" &
SERVE_PID=$!
# Throttle the feed so the kill lands while requests are still arriving.
awk '{print; fflush(); if (NR % 100 == 0) system("sleep 0.05")}' \
    "$WORK/proc_stream.jsonl" > "$WORK/proc_feed" &
FEED_PID=$!
sleep 0.3
VICTIM=$(grep -m1 '"event":"worker-spawn"' "$WORK/proc.log" \
         | grep -o '"pid":[0-9]*' | grep -o '[0-9]*' || true)
if [ -n "$VICTIM" ]; then
  kill -9 "$VICTIM" 2> /dev/null || true
fi
set +e
wait "$FEED_PID"
wait "$SERVE_PID"
RC=$?
set -e
SERVE_PID=""
if [ "$RC" != 0 ]; then
  echo "serve_smoke: supervised daemon exited $RC (want 0: a worker death" >&2
  echo "must never take the daemon down)" >&2
  tail "$WORK/proc.log" >&2
  exit 1
fi
while IFS= read -r line; do
  [ -z "$line" ] && continue
  echo "$line" | jq -e . > /dev/null \
    || { echo "serve_smoke: non-JSON daemon output: $line" >&2; exit 1; }
done < "$WORK/proc.log"
ANSWERED=$(grep -c '"id":"p' "$WORK/proc.log")
if [ "$ANSWERED" != 1000 ]; then
  echo "serve_smoke: $ANSWERED/1000 requests answered in process mode" >&2
  exit 1
fi
SPAWNS=$(grep -c '"event":"worker-spawn"' "$WORK/proc.log" || true)
DEATHS=$(grep -c '"code":"SSN-W075"' "$WORK/proc.log" || true)
if [ "$SPAWNS" -lt 2 ]; then
  echo "serve_smoke: worker pool never spawned (spawns=$SPAWNS)" >&2
  exit 1
fi
if [ -n "$VICTIM" ] && [ "$DEATHS" -lt 1 ]; then
  echo "serve_smoke: killed worker $VICTIM but no SSN-W075 was emitted" >&2
  exit 1
fi
# Any failure must be typed with a supervision/admission code — never
# silence, never an untyped error.
BADCODES=$(jq -r 'select(has("id") and (.ok != true)) | .code' "$WORK/proc.log" \
           | grep -v -E '^SSN-E06[4689]$' || true)
if [ -n "$BADCODES" ]; then
  echo "serve_smoke: unexpected failure codes in process mode: $BADCODES" >&2
  exit 1
fi
PSTATS=$(grep '"event":"stats"' "$WORK/proc.log" | tail -1)
PACCEPTED=$(echo "$PSTATS" | jq -r .accepted)
PRESPONDED=$(echo "$PSTATS" | jq -r .responded)
if [ "$PACCEPTED" != "$PRESPONDED" ]; then
  echo "serve_smoke: process mode lost accepted requests" \
       "($PACCEPTED accepted, $PRESPONDED responded)" >&2
  exit 1
fi
echo "process isolation OK (spawns=$SPAWNS deaths=$DEATHS," \
     "$PACCEPTED/$PACCEPTED answered)"

echo "serve_smoke: PASS (clean drain, $ACCEPTED/$ACCEPTED accepted requests answered)"
