#!/usr/bin/env bash
# Local mirror of the CI gate: configure, build, ctest (which includes the
# ssnlint.src lint gate), then clang-tidy on changed files. Run before
# pushing; CI runs the same steps plus the ASan+UBSan leg.
#
# Usage: scripts/check.sh [--preset NAME] [--all-tidy] [--fuzz] [--tsan]
#   --preset NAME  CMake preset to use (default: release)
#   --all-tidy     clang-tidy every src/ file instead of only changed ones
#   --lint         build ssnlint and run only the whole-repo scan (timed)
#   --serve        build the daemon + load generator and run only the
#                  serve smoke (scripts/serve_smoke.sh: SIGTERM mid-load,
#                  clean drain, cache warm restart)
#   --chaos        build the fault-injection preset and run only the chaos
#                  soak (scripts/chaos_soak.sh: serve under injected faults
#                  + SIGTERM/restart, zero false-verified responses)
#   --fuzz         shorthand for --preset fuzz (builds the tests/fuzz
#                  harness and replays the seed corpora; real libFuzzer
#                  mutation needs clang — see tests/fuzz/CMakeLists.txt)
#   --tsan         shorthand for --preset tsan (ThreadSanitizer; exercises
#                  the parallel batch runner for data races)
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=release
ALL_TIDY=0
LINT_ONLY=0
SERVE_ONLY=0
CHAOS_ONLY=0
while [ $# -gt 0 ]; do
  case "$1" in
    --preset) PRESET="$2"; shift 2 ;;
    --all-tidy) ALL_TIDY=1; shift ;;
    --lint) LINT_ONLY=1; shift ;;
    --serve) SERVE_ONLY=1; shift ;;
    --chaos) CHAOS_ONLY=1; PRESET=fault-injection; shift ;;
    --fuzz) PRESET=fuzz; shift ;;
    --tsan) PRESET=tsan; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

BUILD_DIR=build
case "$PRESET" in
  asan-ubsan) BUILD_DIR=build-asan ;;
  tsan) BUILD_DIR=build-tsan ;;
  fault-injection) BUILD_DIR=build-fi ;;
  fuzz) BUILD_DIR=build-fuzz ;;
esac

# The full-repo scan mirrors CI's lint-full job: every first-party tree,
# full-surface registry checking, the checked-in baseline enforced, and
# --stats so the phase timings land in the terminal.
run_lint() {
  echo "=== ssnlint (standalone, full repo, timed) ==="
  "$BUILD_DIR"/tools/ssnlint --stats --full-surface \
    --baseline tests/lint/ssnlint-baseline.txt \
    src tools bench examples
}

if [ "$LINT_ONLY" = 1 ]; then
  echo "=== configure ($PRESET) ==="
  cmake --preset "$PRESET" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  echo "=== build ssnlint ==="
  cmake --build --preset "$PRESET" -j --target ssnlint
  run_lint
  echo "check.sh: lint gate passed"
  exit 0
fi

if [ "$SERVE_ONLY" = 1 ]; then
  echo "=== configure ($PRESET) ==="
  cmake --preset "$PRESET" > /dev/null
  echo "=== build ssnkit + bench_serve ==="
  cmake --build --preset "$PRESET" -j --target ssnkit_tool bench_serve
  scripts/serve_smoke.sh "$BUILD_DIR"/tools/ssnkit "$BUILD_DIR"/bench/bench_serve
  echo "check.sh: serve smoke passed"
  exit 0
fi

if [ "$CHAOS_ONLY" = 1 ]; then
  echo "=== configure (fault-injection) ==="
  cmake --preset fault-injection > /dev/null
  echo "=== build ssnkit (instrumented) ==="
  cmake --build --preset fault-injection -j --target ssnkit_tool
  scripts/chaos_soak.sh "$BUILD_DIR"/tools/ssnkit
  echo "check.sh: chaos soak passed"
  exit 0
fi

echo "=== configure ($PRESET) ==="
cmake --preset "$PRESET" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "=== build ==="
cmake --build --preset "$PRESET" -j

echo "=== ctest (includes ssnlint gate) ==="
ctest --preset "$PRESET"

run_lint

# Sanitizer presets slow each sample ~10-30x, which breaks the smoke's
# timing assumptions (the SIGTERM would land during the *clean* leg's
# samples too early); the release leg covers the end-to-end behavior.
if [ "$PRESET" = release ]; then
  echo "=== interrupt-resume smoke ==="
  scripts/resume_smoke.sh "$BUILD_DIR"/tools/ssnkit
  echo "=== serve smoke ==="
  scripts/serve_smoke.sh "$BUILD_DIR"/tools/ssnkit "$BUILD_DIR"/bench/bench_serve
fi

echo "=== clang-tidy ==="
if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (CI runs it)"
  exit 0
fi

if [ "$ALL_TIDY" = 1 ]; then
  mapfile -t files < <(find src -name '*.cpp' | sort)
else
  # Changed files vs. the merge base with main (fall back to HEAD for a
  # detached or single-branch checkout).
  base=$(git merge-base HEAD origin/main 2> /dev/null \
      || git merge-base HEAD main 2> /dev/null || echo HEAD)
  mapfile -t files < <(git diff --name-only --diff-filter=d "$base" -- 'src/*.cpp' | sort -u)
fi

if [ "${#files[@]}" = 0 ]; then
  echo "no changed src/*.cpp files; nothing to tidy"
else
  clang-tidy -p "$BUILD_DIR" --quiet "${files[@]}"
fi

echo "check.sh: all gates passed"
