#!/usr/bin/env bash
# Run the serve-daemon load generator (bench/bench_serve) and emit
# BENCH_serve.json (throughput, p50/p95/p99 latency, cache hit-rate).
#
# Usage: scripts/bench_serve.sh [--smoke] [--connect PATH] [--out FILE]
#   --smoke         small request count — CI uses this to prove the harness
#                   runs and to archive a trend artifact; numbers from a
#                   loaded CI box are indicative only
#   --connect PATH  drive a daemon already listening on PATH instead of the
#                   default in-process server (measures the socket stack too)
#   --out FILE      JSON output path (default: BENCH_serve.json in repo root)
#
# For publishable numbers run without --smoke on an idle machine; knobs such
# as --clients/--requests/--dup-frac pass through to the binary, see
# bench_serve --help and docs/SERVING.md.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
OUT=BENCH_serve.json
EXTRA=()
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    --connect) EXTRA+=(--connect "$2"); shift 2 ;;
    *) EXTRA+=("$1"); shift ;;
  esac
done

if [ ! -x build/bench/bench_serve ]; then
  echo "=== building bench_serve (release preset) ==="
  cmake --preset release
  cmake --build --preset release --target bench_serve -j
fi

args=(--out "$OUT")
if [ "$SMOKE" = 1 ]; then
  args+=(--requests 300 --clients 4)
fi

echo "=== bench_serve -> $OUT ==="
build/bench/bench_serve "${args[@]}" ${EXTRA[@]+"${EXTRA[@]}"}
echo "bench_serve.sh: wrote $OUT"
