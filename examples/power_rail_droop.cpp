// The power-rail dual of the paper's analysis: when a bank of PMOS pull-ups
// charges the pads simultaneously, the V_DD pin inductance causes supply
// droop. By symmetry (mirror every voltage), the droop vdd - v(vddi) obeys
// exactly the ground-bounce equations, with the ASDM fitted to the mirrored
// device. This example builds the V_DD-side circuit by hand, simulates it,
// and shows the Section 3 closed form predicting the droop.
//
//   $ ./power_rail_droop
#include "analysis/calibrate.hpp"
#include "core/l_only_model.hpp"
#include "waveform/render.hpp"
#include "io/table.hpp"
#include "sim/engine.hpp"

#include <cmath>
#include <cstdio>

using namespace ssnkit;
using namespace ssnkit::circuit;

int main() {
  const auto tech = process::tech_180nm();
  const auto cal = analysis::calibrate(tech);
  const int n_drivers = 8;
  const double t_rise = 0.1e-9;
  const double l_vdd = 5e-9;

  // Build the V_DD-side bank: ideal supply --L_vdd-- vddi; each driver is a
  // full inverter whose input FALLS, so the PMOS (source on vddi, n-well
  // tied to the quiet ideal supply) charges the pad load.
  Circuit ckt;
  const NodeId n_vdd = ckt.node("vdd_ideal");
  const NodeId n_vddi = ckt.node("vddi");
  ckt.add_vsource("Vdd", n_vdd, kGround, waveform::Dc{tech.vdd});
  ckt.add_inductor("Lvdd", n_vdd, n_vddi, l_vdd);

  std::shared_ptr<const devices::MosfetModel> golden(tech.make_golden());
  for (int i = 0; i < n_drivers; ++i) {
    const std::string idx = std::to_string(i);
    const NodeId in = ckt.node("in" + idx);
    const NodeId out = ckt.node("out" + idx);
    ckt.add_vsource("Vin" + idx, in, kGround,
                    waveform::Ramp{tech.vdd, 0.0, 0.0, t_rise});  // falling
    ckt.add_mosfet("Mp" + idx, out, in, n_vddi, n_vdd, golden,
                   MosfetPolarity::kPmos);
    ckt.add_mosfet("Mn" + idx, out, in, kGround, kGround, golden);
    ckt.add_capacitor("Cl" + idx, out, kGround, tech.load_cap);
  }

  sim::TransientOptions topts;
  topts.t_stop = t_rise;
  topts.dt_max = t_rise / 200.0;
  const auto result = sim::run_transient(ckt, topts);
  // The engine verified this solve step by step (scaled residuals plus a
  // condition estimate); surface its verdict before comparing numbers.
  std::printf("solve trust: %s\n\n", result.trust.summary().c_str());

  // Droop waveform: vdd - v(vddi).
  const auto vddi = result.waveform("vddi");
  const auto droop = vddi.scaled(-1.0).shifted(tech.vdd);

  // The dual closed form: identical equations, the mirrored device has the
  // same fitted (K, lambda, V_x) because our golden PMOS is the mirrored
  // golden NMOS.
  core::SsnScenario scenario;
  scenario.n_drivers = n_drivers;
  scenario.inductance = l_vdd;
  scenario.capacitance = 0.0;
  scenario.vdd = tech.vdd;
  scenario.slope = tech.vdd / t_rise;
  scenario.device = cal.asdm.params;
  const core::LOnlyModel model(scenario);
  const auto model_droop = model.vn_waveform(512);

  io::ChartOptions copts;
  copts.title = "V_DD droop [V] vs t: simulator vs dual closed form";
  copts.y_label = "droop";
  std::printf("%s", waveform::ascii_chart({&droop, &model_droop},
                                    {"simulated", "model (dual Eqn 6)"}, copts)
                        .c_str());

  const double sim_max = droop.maximum_in(0.0, t_rise).value;
  io::TextTable t({"quantity", "value"});
  t.add_row({std::string("simulated max droop"), io::si_format(sim_max, 4) + "V"});
  t.add_row({std::string("model max droop (Eqn 7)"),
             io::si_format(model.v_max(), 4) + "V"});
  const double diff_pct = 100.0 * std::fabs(model.v_max() - sim_max) / sim_max;
  t.add_row({std::string("difference"), io::si_format(diff_pct, 3) + "%"});
  std::printf("%s", t.to_string().c_str());
  std::printf("\nThe ground-bounce formulas carry over to supply droop "
              "unchanged — the paper analyzes the ground node 'for\n"
              "simplicity of presentation' and this is the symmetric case it "
              "alludes to.\n");
  return 0;
}
