// I/O ring design exploration — the workload the paper's introduction
// motivates: a wide output bus must switch without collapsing the internal
// ground. This example walks the three design levers the paper identifies
// (Section 3: beta = N*L*S) and verifies the chosen design in the transient
// simulator, including the switching-stagger technique ("reducing N in
// practice means making the drivers not switch simultaneously").
//
//   $ ./io_ring_design
#include "analysis/calibrate.hpp"
#include "analysis/design.hpp"
#include "analysis/measure.hpp"
#include "core/lc_model.hpp"
#include "io/table.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  const auto tech = process::tech_180nm();
  const auto cal = analysis::calibrate(tech);
  const auto pkg = process::package_pga();

  constexpr int kBusWidth = 32;
  constexpr double kEdge = 0.1e-9;
  const double budget = 0.20 * tech.vdd;

  std::printf("task: %d-bit output bus, %.2g V supply, %.1f ps edges, "
              "noise budget %.0f mV\n\n",
              kBusWidth, tech.vdd, kEdge * 1e12, budget * 1e3);

  const auto worst = analysis::make_scenario(cal, pkg, kBusWidth, kEdge, true);
  std::printf("naive design (all %d bits on one ground pin): predicted "
              "V_max = %s V -> %s\n\n",
              kBusWidth, io::si_format(analysis::predict_vmax(worst), 4).c_str(),
              analysis::predict_vmax(worst) > budget ? "VIOLATES budget"
                                                     : "ok");

  // Lever 1: more ground pads (reduces L, raises C).
  io::TextTable pads({"ground pads", "L [nH]", "C [pF]", "zeta",
                      "predicted V_max [V]", "meets budget"});
  for (int k = 1; k <= 8; k *= 2) {
    const auto p = pkg.with_ground_pads(k);
    auto s = worst;
    s.inductance = p.inductance;
    s.capacitance = p.capacitance;
    const double v = analysis::predict_vmax(s);
    pads.add_row({io::si_format(double(k), 2), io::si_format(p.inductance * 1e9, 3),
                  io::si_format(p.capacitance * 1e12, 3),
                  io::si_format(core::LcModel(s).zeta(), 3),
                  io::si_format(v, 4), v <= budget ? "yes" : "no"});
  }
  std::printf("lever 1 - parallel ground pads:\n%s", pads.to_string().c_str());
  const int pads_needed = analysis::required_ground_pads(worst, pkg, budget);
  std::printf("-> smallest pad count meeting the budget: %d\n\n", pads_needed);

  // Lever 2: slower edges (reduce S).
  const double s_max = analysis::max_input_slope(worst, budget);
  std::printf("lever 2 - edge control: slow the input slope from %s V/s to "
              "%s V/s (edge %.0f ps -> %.0f ps)\n\n",
              io::si_format(worst.slope).c_str(), io::si_format(s_max).c_str(),
              tech.vdd / worst.slope * 1e12, tech.vdd / s_max * 1e12);

  // Lever 3: bank the bus so fewer bits switch at once.
  const int n_max = analysis::max_simultaneous_drivers(worst, budget);
  std::printf("lever 3 - bus banking: at most %d bits may switch together "
              "on one pad\n\n", n_max);

  // Stagger in practice: split the bus into 4 groups offset by one edge
  // time each, and *simulate* it (superposition does not hold for the
  // nonlinear drivers, so this is where the simulator earns its keep).
  std::printf("verification in the transient simulator (stagger study, "
              "%d bits in groups of 4 on a 2-pad ground):\n", kBusWidth / 2);
  const auto stagger_run = [&](int ground_pads, double step_ps) {
    circuit::SsnBenchSpec spec;
    spec.tech = tech;
    spec.package = pkg.with_ground_pads(ground_pads);
    spec.n_drivers = kBusWidth / 2;  // 16 bits per ground-pad group
    spec.input_rise_time = kEdge;
    spec.stagger.resize(spec.n_drivers);
    for (int i = 0; i < spec.n_drivers; ++i)
      spec.stagger[std::size_t(i)] = double(i / 4) * step_ps * 1e-12;
    const auto m = analysis::measure_ssn(spec);
    // A design decision hangs on this number, so gate on the trust layer's
    // verdict: a degraded measurement is still an estimate, but it must not
    // silently drive the stagger recommendation.
    if (m.trust.verdict == verify::Verdict::kDegraded)
      std::fprintf(stderr, "warning: stagger run not sign-off grade: %s\n",
                   m.trust.summary().c_str());
    return m.v_max;
  };
  const double v_together = stagger_run(2, 0.0);
  io::TextTable stag({"stagger per group [ps]", "simulated V_max [V]",
                      "reduction vs simultaneous"});
  for (double step_ps : {0.0, 100.0, 300.0, 600.0}) {
    const double v = stagger_run(2, step_ps);
    stag.add_row({io::si_format(step_ps, 3), io::si_format(v, 4),
                  io::si_format(100.0 * (1.0 - v / v_together), 3) + "%"});
  }
  std::printf("%s", stag.to_string().c_str());

  // Combine the levers: 4 ground pads + 300 ps group stagger.
  const double v_combined = stagger_run(4, 300.0);
  std::printf("\ncombined design (4 ground pads + 300 ps group stagger): "
              "simulated V_max = %s V -> %s the %.0f mV budget\n",
              io::si_format(v_combined, 4).c_str(),
              v_combined <= budget ? "meets" : "violates", budget * 1e3);
  std::printf("\nconclusion: once the groups are spread by a few edge times, "
              "only one group's worth of drivers switches at a time —\n"
              "exactly the paper's 'reduce effective N' recommendation; "
              "combined with extra ground pads the budget closes.\n");
  return 0;
}
