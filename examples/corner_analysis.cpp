// Variation-aware SSN sign-off: because one closed-form evaluation costs
// ~tens of nanoseconds (see bench_perf), sweeping thousands of process and
// assembly corners is free — something per-corner transient simulation
// could never afford. This example produces the V_max distribution of an
// 8-driver bank, reports the p95/p99 sign-off numbers, and shows how often
// variation flips the damping region (and with it the Table 1 formula).
//
//   $ ./corner_analysis
#include "analysis/calibrate.hpp"
#include "analysis/design.hpp"
#include "analysis/montecarlo.hpp"
#include "io/ascii_chart.hpp"
#include "io/table.hpp"

#include <cstdio>
#include <vector>

using namespace ssnkit;

int main() {
  const auto cal = analysis::calibrate(process::tech_180nm());
  const auto scenario = analysis::make_scenario(
      cal, process::package_pga(), /*n_drivers=*/8,
      /*input_rise_time=*/0.1e-9, /*include_c=*/true);

  analysis::MonteCarloOptions opts;
  opts.samples = 20000;
  const auto mc = analysis::monte_carlo_vmax(scenario, opts);
  // A stopped batch yields partial statistics — say so rather than present
  // them as the full distribution (see ROBUSTNESS.md, "Numerical trust
  // layer": partial parallel results are best-effort, not reproducible).
  if (mc.stop != support::StopReason::kNone)
    std::printf("note: batch stopped early (%zu of %d corners evaluated); "
                "statistics below are partial\n",
                mc.completed, opts.samples);

  const double nominal = analysis::predict_vmax(scenario);
  io::TextTable t({"statistic", "V_max [V]"});
  t.add_row({std::string("nominal"), io::si_format(nominal, 4)});
  t.add_row({std::string("mean"), io::si_format(mc.mean, 4)});
  t.add_row({std::string("sigma"), io::si_format(mc.stddev, 4)});
  t.add_row({std::string("min / max"),
             io::si_format(mc.min, 4) + " / " + io::si_format(mc.max, 4)});
  t.add_row({std::string("p95 (sign-off)"), io::si_format(mc.p95, 4)});
  t.add_row({std::string("p99"), io::si_format(mc.p99, 4)});
  std::printf("%d corners sampled (K, lambda, V_x, L, C, slope varied):\n%s",
              opts.samples, t.to_string().c_str());
  std::printf("damping-region flips under variation: %.1f %% of corners\n",
              100.0 * mc.region_flip_fraction);

  // Histogram of the distribution.
  const int bins = 40;
  std::vector<double> centers(bins), counts(bins, 0.0);
  const double lo = mc.min, hi = mc.max;
  for (int b = 0; b < bins; ++b)
    centers[std::size_t(b)] = lo + (hi - lo) * (b + 0.5) / bins;
  for (double v : mc.samples) {
    int b = int((v - lo) / (hi - lo) * bins);
    b = std::min(std::max(b, 0), bins - 1);
    counts[std::size_t(b)] += 1.0;
  }
  io::ChartOptions copts;
  copts.title = "V_max distribution over corners";
  copts.x_label = "V_max [V]";
  copts.y_label = "count";
  std::printf("%s", io::ascii_xy_chart(centers, {counts}, {"corners"}, copts)
                        .c_str());

  // The design question: what pad count survives the p95 corner?
  const double budget = 0.25 * cal.tech.vdd;
  for (int pads = 1; pads <= 8; ++pads) {
    const auto pkg = process::package_pga().with_ground_pads(pads);
    auto s = scenario;
    s.inductance = pkg.inductance;
    s.capacitance = pkg.capacitance;
    const auto mc_pads = analysis::monte_carlo_vmax(s, opts);
    if (mc_pads.stop != support::StopReason::kNone)
      continue;  // partial statistics cannot sign off a pad count
    if (mc_pads.p95 <= budget) {
      std::printf(
          "\nwith a %.0f mV budget, %d ground pad(s) pass at the p95 corner "
          "(p95 = %s V); the nominal-only answer would be %d.\n",
          budget * 1e3, pads, io::si_format(mc_pads.p95, 4).c_str(),
          analysis::required_ground_pads(scenario, process::package_pga(),
                                         budget));
      break;
    }
  }
  return 0;
}
