// Quickstart: estimate the ground bounce of an output-driver bank in three
// steps — calibrate the device model once per process, describe the
// switching event, evaluate the closed forms.
//
//   $ ./quickstart
#include "analysis/calibrate.hpp"
#include "analysis/design.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "io/table.hpp"
#include "process/package.hpp"
#include "process/technology.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  // 1. Calibrate: fit the paper's linear ASDM (K, lambda, V_x) to the
  //    process golden device over the SSN operating region. In a real flow
  //    the golden device would be your foundry BSIM model.
  const auto tech = process::tech_180nm();
  const auto cal = analysis::calibrate(tech);
  std::printf("process %s: K = %.3g A/V, lambda = %.3f, V_x = %.3f V "
              "(fit max error %.1f %% of peak current)\n\n",
              tech.name.c_str(), cal.asdm.params.k, cal.asdm.params.lambda,
              cal.asdm.params.vx, 100.0 * cal.asdm.max_rel_error);

  // 2. Describe the event: 8 drivers switching together through one PGA
  //    ground pin, 0.1 ns input edges.
  const auto pkg = process::package_pga();
  const auto scenario = analysis::make_scenario(cal, pkg, /*n_drivers=*/8,
                                                /*input_rise_time=*/0.1e-9,
                                                /*include_c=*/true);

  // 3. Evaluate. The LC model picks the right Table 1 formula by itself.
  const core::LcModel lc(scenario);
  const core::LOnlyModel l_only(scenario.with_capacitance(0.0));

  io::TextTable t({"quantity", "value"});
  t.add_row({std::string("damping region"), core::to_string(lc.region())});
  t.add_row({std::string("zeta"), io::si_format(lc.zeta(), 4)});
  t.add_row({std::string("critical capacitance"),
             io::si_format(scenario.critical_capacitance()) + "F"});
  t.add_row({std::string("Table 1 case"), core::to_string(lc.max_case())});
  t.add_row({std::string("max SSN, LC model"), io::si_format(lc.v_max(), 4) + "V"});
  t.add_row({std::string("max SSN, L-only model"),
             io::si_format(l_only.v_max(), 4) + "V"});
  t.add_row({std::string("beta = N*L*S"), io::si_format(scenario.beta(), 4)});
  std::printf("%s", t.to_string().c_str());

  // Bonus: design queries built on the same closed forms.
  const double budget = 0.15 * tech.vdd;  // 15% of the rail
  std::printf("\nfor a %.0f mV noise budget:\n", budget * 1e3);
  std::printf("  ground pads needed (L, C scale with pads): %d\n",
              analysis::required_ground_pads(scenario, pkg, budget));
  std::printf("  max simultaneous drivers on one pad:       %d\n",
              analysis::max_simultaneous_drivers(scenario, budget));
  std::printf("  max input slope with 8 drivers:            %s V/s\n",
              io::si_format(analysis::max_input_slope(scenario, budget)).c_str());
  return 0;
}
