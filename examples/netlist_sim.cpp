// Drive the circuit simulator from a SPICE-flavoured netlist — either a
// file given on the command line or a built-in demo (a 4-driver SSN bench
// written as plain text, with the fitted ASDM as the device model). Prints
// an ASCII chart of the requested node and writes all signals to CSV.
//
//   $ ./netlist_sim                      # built-in SSN demo
//   $ ./netlist_sim my.cir [node]        # your netlist (needs .tran)
#include "circuit/netlist.hpp"
#include "waveform/render.hpp"
#include "io/csv.hpp"
#include "sim/engine.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ssnkit;

namespace {

constexpr const char* kDemoNetlist = R"(* demo: 4-driver SSN bench, one driver per subcircuit instance
.model DRV ASDM K=5.3m LAMBDA=1.17 VX=0.56
.subckt PAD_DRIVER in pad vss vdd
Mpull pad in vss 0 DRV
Cload pad 0 10p IC=1.8
Ranchor pad vdd 10meg
.ends
Vdd vdd 0 DC 1.8
Lgnd vssi 0 5n
Cpad vssi 0 1p
Vin in 0 RAMP(0 1.8 0 0.1n)
X0 in out0 vssi vdd PAD_DRIVER
X1 in out1 vssi vdd PAD_DRIVER
X2 in out2 vssi vdd PAD_DRIVER
X3 in out3 vssi vdd PAD_DRIVER
.tran 1p 0.1n
.end
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  std::string probe = "vssi";
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
    if (argc >= 3) probe = argv[2];
  } else {
    text = kDemoNetlist;
    std::printf("(no netlist given; running the built-in SSN demo)\n");
  }

  try {
    auto parsed = circuit::parse_netlist(text);
    if (!parsed.title.empty()) std::printf("title: %s\n", parsed.title.c_str());
    if (!parsed.tran) {
      std::fprintf(stderr, "netlist has no .tran directive\n");
      return 1;
    }
    sim::TransientOptions opts;
    opts.t_stop = parsed.tran->tstop;
    opts.dt_initial = parsed.tran->tstep;
    opts.dt_max = parsed.tran->tstop / 100.0;
    const auto result = sim::run_transient(parsed.circuit, opts);

    if (!result.has_signal(probe)) {
      std::fprintf(stderr, "no signal '%s'; available:", probe.c_str());
      for (const auto& n : result.signal_names())
        std::fprintf(stderr, " %s", n.c_str());
      std::fprintf(stderr, "\n");
      return 1;
    }
    const auto wave = result.waveform(probe);
    io::ChartOptions copts;
    copts.title = "v(" + probe + ") vs t";
    copts.y_label = probe;
    std::printf("%s", waveform::ascii_chart(wave, copts).c_str());
    std::printf("%s: min %.6g, max %.6g, final %.6g; %zu time points, "
                "%zu Newton iterations\n",
                probe.c_str(), wave.minimum().value, wave.maximum().value,
                result.final_value(probe), result.point_count(),
                result.stats.newton_iterations);

    std::vector<waveform::Waveform> waves;
    std::vector<const waveform::Waveform*> wave_ptrs;
    for (const auto& n : result.signal_names())
      waves.push_back(result.waveform(n));
    for (const auto& w : waves) wave_ptrs.push_back(&w);
    std::ofstream out("netlist_sim.csv");
    waveform::write_waveforms_csv(out, result.signal_names(), wave_ptrs);
    std::printf("wrote netlist_sim.csv\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
