// SSN-aware design helpers built on the closed-form models — the "design
// implications" of Section 3/4: given a noise budget, how many ground pads
// are needed, how many drivers may switch together, or how slow the inputs
// must be.
#pragma once

#include "analysis/calibrate.hpp"
#include "core/scenario.hpp"
#include "process/package.hpp"

namespace ssnkit::analysis {

/// Predicted max SSN for a scenario, automatically choosing LcModel when
/// the scenario carries a capacitance and LOnlyModel otherwise.
double predict_vmax(const core::SsnScenario& scenario);

/// Smallest number of parallel ground pads (package.with_ground_pads(k))
/// keeping the predicted max SSN at or below `budget`. Searches k in
/// [1, max_pads]; throws std::runtime_error when even max_pads is not
/// enough.
int required_ground_pads(const core::SsnScenario& base_scenario,
                         const process::Package& package, double budget,
                         int max_pads = 64);

/// Largest driver count whose predicted max SSN stays at or below `budget`
/// (0 when even one driver violates it).
int max_simultaneous_drivers(const core::SsnScenario& base_scenario,
                             double budget, int max_drivers = 4096);

/// Largest input slope S (fastest edge) keeping the predicted max SSN at
/// or below `budget`. Evaluated on the L-only model (Section 3), where
/// V_max is provably monotone in S — this is the paper's "slower switching
/// inputs reduce SSN" design rule. (The LC model's within-ramp maximum is
/// NOT monotone in S: a very fast ramp ends before the resonant peak,
/// which the paper's Table 1 deliberately truncates at t_r.) Any
/// capacitance on the scenario is ignored. Returns the slope in V/s.
double max_input_slope(const core::SsnScenario& base_scenario, double budget,
                       double slope_lo = 1e8, double slope_hi = 1e12);

}  // namespace ssnkit::analysis
