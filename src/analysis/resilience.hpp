// Failure-tolerant SSN measurement: the analysis-layer end of the recovery
// ladder. The engine-level rungs (sim/recovery.hpp) retry the transient with
// progressively cheaper numerics; this layer adds the final rung the engine
// cannot reach — degrading to the paper's closed-form LC / L-only models,
// which need the calibrated SsnScenario known only here — and the batch
// bookkeeping (per-fidelity / per-failure summaries) that sweeps and Monte
// Carlo runs report.
#pragma once

#include "analysis/measure.hpp"
#include "core/scenario.hpp"
#include "sim/recovery.hpp"
#include "support/diagnostics.hpp"
#include "support/runcontext.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ssnkit::analysis {

/// A measurement tagged with the solver fidelity that produced it. When the
/// whole ladder (including the analytic rung, if a scenario was supplied)
/// failed, `fidelity` is kFailed and `error` carries the typed diagnostic.
struct ResilientMeasurement {
  SsnMeasurement measurement;
  sim::Fidelity fidelity = sim::Fidelity::kFullDevice;
  /// Every recovery rung attempted, in order, with its outcome.
  std::vector<support::RecoveryAttempt> attempts;
  /// Populated when every simulation rung failed. The analytic rung, when
  /// taken, leaves it set so callers can still see why simulation degraded.
  std::optional<support::SolverError> error;

  bool ok() const { return fidelity != sim::Fidelity::kFailed; }
  bool degraded() const { return fidelity != sim::Fidelity::kFullDevice; }
};

/// measure_ssn with the recovery ladder underneath. Never throws on solver
/// failure. When `analytic_fallback` is non-null and every simulation rung
/// fails, the measurement is evaluated on the closed forms (LcModel when the
/// scenario carries capacitance, LOnlyModel otherwise) and tagged kAnalytic.
ResilientMeasurement measure_ssn_resilient(
    const circuit::SsnBenchSpec& spec, const MeasureOptions& opts = {},
    const sim::RecoveryPolicy& policy = {},
    const core::SsnScenario* analytic_fallback = nullptr);

/// Evaluate the closed-form measurement directly (the analytic rung on its
/// own). Used by batch drivers that already failed simulation elsewhere.
SsnMeasurement analytic_measurement(const core::SsnScenario& scenario,
                                    std::size_t points = 512);

/// Aggregated outcome of a batch of resilient runs (a sweep or a Monte
/// Carlo population): how many items landed at each fidelity and which
/// error kinds were seen.
struct BatchSummary {
  std::size_t total = 0;
  std::size_t full_fidelity = 0;  ///< fidelity == kFullDevice
  std::size_t recovered = 0;      ///< simulation rungs 1-4
  std::size_t analytic = 0;       ///< degraded to the closed forms
  std::size_t failed = 0;         ///< no rung succeeded
  /// Items the lifecycle layer never ran (cancel / deadline / item budget
  /// drained the batch before they started). Not counted in `total`.
  std::size_t not_run = 0;
  /// Why the batch stopped early (kNone for a run that completed).
  support::StopReason stop = support::StopReason::kNone;
  std::map<std::string, std::size_t> by_fidelity;  ///< fidelity name -> count
  std::map<std::string, std::size_t> by_error;     ///< error kind -> count
  /// One line per degraded or failed item ("label: fidelity [error]").
  std::vector<std::string> notes;

  void record(const std::string& label, sim::Fidelity fidelity,
              const std::optional<support::SolverError>& error);
  bool all_full_fidelity() const { return full_fidelity == total; }
  std::string to_string() const;
};

}  // namespace ssnkit::analysis
