// Parameter sweeps that regenerate the paper's evaluation figures: driver
// count (Fig. 3), pad capacitance (Fig. 4), plus slope/inductance sweeps
// and the beta-equivalence check used by the extension benches.
#pragma once

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "analysis/resilience.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "sim/recovery.hpp"
#include "support/journal.hpp"
#include "support/runcontext.hpp"

#include <map>
#include <vector>

namespace ssnkit::analysis {

// --- Fig. 3: max SSN vs number of simultaneously switching drivers --------

struct DriverSweepConfig {
  process::Technology tech = process::tech_180nm();
  process::Package package = process::package_pga();
  process::GoldenKind golden = process::GoldenKind::kAlphaPower;
  double input_rise_time = 0.1e-9;
  std::vector<int> driver_counts = {1, 2, 4, 6, 8, 10, 12, 14, 16};
  bool include_package_c = false;  ///< Fig. 3 compares L-only models
  bool include_pullup = true;
  sim::TransientOptions transient;
  /// When set, a failing simulation point climbs the recovery ladder and a
  /// still-failing point is skipped (and reported in the summary) instead of
  /// aborting the whole sweep.
  bool resilient = true;
  sim::RecoveryPolicy recovery;
  /// Worker threads for the simulation points: 1 = serial (default), 0 =
  /// auto. Points write index-addressed slots and the summary/rows are
  /// assembled in sweep order after the join, so the result is
  /// bit-identical for any value.
  int threads = 1;
  /// Optional lifecycle context (see SimMonteCarloOptions::run_ctx): a stop
  /// drains the sweep; unstarted / interrupted points are reported as
  /// not-run in the summary. Not owned.
  const support::RunContext* run_ctx = nullptr;
  /// Optional checkpoint journal / resume set, exactly as in
  /// SimMonteCarloOptions. Not owned.
  support::BatchJournal* journal = nullptr;
  const std::map<std::size_t, support::PointRecord>* resume = nullptr;
};

struct DriverSweepRow {
  int n = 0;
  double sim = 0.0;           ///< simulator reference (the HSPICE stand-in)
  double this_work = 0.0;     ///< paper's model (L-only or LC per config)
  double vemuru = 0.0;
  double song = 0.0;
  double senthinathan = 0.0;
  double err_this = 0.0;      ///< |model-sim|/sim
  double err_vemuru = 0.0;
  double err_song = 0.0;
  double err_senthinathan = 0.0;
  /// Solver fidelity of the `sim` reference (kFullDevice unless a recovery
  /// rung had to engage for this point).
  sim::Fidelity fidelity = sim::Fidelity::kFullDevice;
};

struct DriverSweepResult {
  Calibration calibration;
  std::vector<DriverSweepRow> rows;
  /// Per-fidelity / per-failure accounting; failed points appear here (and
  /// in `notes`) rather than as rows. Not-run points (lifecycle stop)
  /// appear only in `summary.not_run`.
  BatchSummary summary;
  /// Points restored from the resume journal rather than simulated here.
  std::size_t resumed = 0;
};

DriverSweepResult run_driver_sweep(const DriverSweepConfig& config);

// --- Fig. 4: max SSN vs pad capacitance ------------------------------------

struct CapacitanceSweepConfig {
  process::Technology tech = process::tech_180nm();
  process::Package package = process::package_pga();  ///< supplies L
  process::GoldenKind golden = process::GoldenKind::kAlphaPower;
  int n_drivers = 8;
  double input_rise_time = 0.1e-9;
  std::vector<double> capacitances;  ///< [F]; empty = log sweep 0.1..20 pF
  bool include_pullup = true;
  sim::TransientOptions transient;
  bool resilient = true;  ///< see DriverSweepConfig::resilient
  sim::RecoveryPolicy recovery;
  int threads = 1;  ///< see DriverSweepConfig::threads
  /// Lifecycle / checkpoint knobs; see DriverSweepConfig. Not owned.
  const support::RunContext* run_ctx = nullptr;
  support::BatchJournal* journal = nullptr;
  const std::map<std::size_t, support::PointRecord>* resume = nullptr;
};

struct CapacitanceSweepRow {
  double c = 0.0;
  double sim = 0.0;
  double lc_model = 0.0;       ///< Table 1 formulas (this work, full)
  double l_only = 0.0;         ///< Section 3 formula (capacitance ignored)
  double err_lc = 0.0;
  double err_l_only = 0.0;
  double zeta = 0.0;           ///< damping ratio at this C
  core::MaxSsnCase lc_case = core::MaxSsnCase::kOverDamped;
  sim::Fidelity fidelity = sim::Fidelity::kFullDevice;
};

struct CapacitanceSweepResult {
  Calibration calibration;
  double critical_capacitance = 0.0;
  std::vector<CapacitanceSweepRow> rows;
  BatchSummary summary;
  std::size_t resumed = 0;  ///< see DriverSweepResult::resumed
};

CapacitanceSweepResult run_capacitance_sweep(const CapacitanceSweepConfig& config);

/// The default capacitance grid used when CapacitanceSweepConfig::
/// capacitances is empty (log sweep 0.1..20 pF, 17 points). Exposed so the
/// CLI can know the point count up front — a checkpoint journal must be
/// bound to the batch size before the sweep runs.
std::vector<double> default_capacitance_sweep();

// --- extensions --------------------------------------------------------------

/// Max SSN vs input slope at fixed N, L (model + simulator).
struct SlopeSweepRow {
  double rise_time = 0.0;
  double slope = 0.0;
  double sim = 0.0;
  double model = 0.0;
  double err = 0.0;
  sim::Fidelity fidelity = sim::Fidelity::kFullDevice;
};
/// When `summary` is non-null the sweep runs resiliently: failing points are
/// skipped and accounted there instead of throwing. `threads` follows
/// DriverSweepConfig::threads (1 = serial, 0 = auto; bit-identical output
/// for any value). `run_ctx`, when set, lets the sweep be cancelled /
/// deadlined cooperatively (stopped points are not-run in `summary`).
std::vector<SlopeSweepRow> run_slope_sweep(const Calibration& cal,
                                           const process::Package& package,
                                           int n_drivers,
                                           const std::vector<double>& rise_times,
                                           bool include_c,
                                           const sim::TransientOptions& topts = {},
                                           BatchSummary* summary = nullptr,
                                           int threads = 1,
                                           const support::RunContext* run_ctx =
                                               nullptr);

/// The paper's beta-equivalence claim (Eqn 9/10): configurations with equal
/// beta = N*L*S have equal predicted V_max. For each driver count in `ns`
/// the slope is held at vdd/rise_time and L is chosen so the product stays
/// at beta_target. A test/bench asserts the resulting V_max coincide.
struct BetaPoint {
  int n = 0;
  double l = 0.0;
  double slope = 0.0;
  double v_max = 0.0;
  double beta = 0.0;
};
std::vector<BetaPoint> beta_equivalence_points(const Calibration& cal,
                                               double beta_target,
                                               const std::vector<int>& ns,
                                               double rise_time);

}  // namespace ssnkit::analysis
