// Monte Carlo SSN analysis: propagate process variation (on the fitted
// ASDM constants) and package variation (on L and C) through the closed
// forms to a noise distribution. Because one Table 1 evaluation costs tens
// of nanoseconds, thousands of corners are effectively free — the practical
// payoff of the paper's closed-form approach.
#pragma once

#include "core/scenario.hpp"

#include <vector>

namespace ssnkit::analysis {

/// Relative (1-sigma, Gaussian) variations applied multiplicatively; the
/// defaults are representative process/assembly spreads.
struct MonteCarloOptions {
  int samples = 1000;
  /// PRNG seed (std::mt19937). Fixed default so every run of the same build
  /// reproduces the same sample set bit-for-bit; vary it explicitly to get
  /// independent replicates. Identical seed + options => identical samples.
  unsigned seed = 12345;
  double sigma_k = 0.05;       ///< transconductance K
  double sigma_lambda = 0.02;  ///< source-coupling factor
  double sigma_vx = 0.03;      ///< voltage displacement V_x
  double sigma_l = 0.10;       ///< bond/package inductance
  double sigma_c = 0.10;       ///< pad capacitance
  double sigma_slope = 0.05;   ///< input edge rate

  void validate() const;
};

struct MonteCarloResult {
  std::vector<double> samples;  ///< every sampled V_max [V]
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p95 = 0.0;  ///< 95th percentile — the design sign-off number
  double p99 = 0.0;
  /// Fraction of samples whose damping region differs from the nominal
  /// scenario's (region flips matter: they change which formula applies).
  double region_flip_fraction = 0.0;
};

/// Sample V_max over the variation space. Uses LcModel when the nominal
/// scenario has capacitance, LOnlyModel otherwise.
MonteCarloResult monte_carlo_vmax(const core::SsnScenario& nominal,
                                  const MonteCarloOptions& opts = {});

}  // namespace ssnkit::analysis
