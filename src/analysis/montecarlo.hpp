// Monte Carlo SSN analysis: propagate process variation (on the fitted
// ASDM constants) and package variation (on L and C) through the closed
// forms to a noise distribution. Because one Table 1 evaluation costs tens
// of nanoseconds, thousands of corners are effectively free — the practical
// payoff of the paper's closed-form approach.
#pragma once

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "analysis/resilience.hpp"
#include "core/scenario.hpp"
#include "sim/recovery.hpp"
#include "support/journal.hpp"
#include "support/runcontext.hpp"
#include "verify/trust.hpp"

#include <cstddef>
#include <map>
#include <vector>

namespace ssnkit::analysis {

/// Relative (1-sigma, Gaussian) variations applied multiplicatively; the
/// defaults are representative process/assembly spreads.
struct MonteCarloOptions {
  int samples = 1000;
  /// PRNG seed (std::mt19937). Fixed default so every run of the same build
  /// reproduces the same sample set bit-for-bit; vary it explicitly to get
  /// independent replicates. Identical seed + options => identical samples.
  unsigned seed = 12345;
  double sigma_k = 0.05;       ///< transconductance K
  double sigma_lambda = 0.02;  ///< source-coupling factor
  double sigma_vx = 0.03;      ///< voltage displacement V_x
  double sigma_l = 0.10;       ///< bond/package inductance
  double sigma_c = 0.10;       ///< pad capacitance
  double sigma_slope = 0.05;   ///< input edge rate
  /// Worker threads for the sample loop: 1 = serial (default), 0 = auto
  /// (hardware concurrency). Factors are drawn up front and samples write
  /// index-addressed slots, so the result is bit-identical for any value.
  int threads = 1;
  /// Optional lifecycle context: workers poll it between samples and a stop
  /// drains the batch, keeping whatever samples already finished. Not owned.
  const support::RunContext* run_ctx = nullptr;

  void validate() const;
};

struct MonteCarloResult {
  std::vector<double> samples;  ///< every sampled V_max [V]
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p95 = 0.0;  ///< 95th percentile — the design sign-off number
  double p99 = 0.0;
  /// 95 % confidence-interval half-width on `mean` (1.96 * stddev / sqrt(N)):
  /// the statistical-trust figure the TrustReport carries. Shrinks ~1/sqrt(N);
  /// without it a Monte-Carlo mean is a number with no error bar.
  double ci95 = 0.0;
  /// Fraction of samples whose damping region differs from the nominal
  /// scenario's (region flips matter: they change which formula applies).
  double region_flip_fraction = 0.0;
  /// Samples actually evaluated (== `samples.size()`; less than the
  /// requested count only when the run was stopped early). Which samples a
  /// stopped *parallel* run keeps depends on worker timing — partial
  /// closed-form results are best-effort, not reproducible; only a run that
  /// completes is bit-identical across thread counts.
  std::size_t completed = 0;
  support::StopReason stop = support::StopReason::kNone;
};

/// Sample V_max over the variation space. Uses LcModel when the nominal
/// scenario has capacitance, LOnlyModel otherwise.
MonteCarloResult monte_carlo_vmax(const core::SsnScenario& nominal,
                                  const MonteCarloOptions& opts = {});

// --- simulation-level Monte Carlo (failure tolerant) -------------------------

/// Options for the simulator-backed Monte Carlo. Each sample perturbs the
/// package parasitics, the input edge and the driver width and runs the full
/// MNA transient under the recovery ladder; per-sample failures degrade (to
/// a recovery rung or the calibrated closed form) or are dropped, never
/// abort the batch.
struct SimMonteCarloOptions {
  int samples = 16;  ///< full transients are costly; keep batches small
  unsigned seed = 12345;
  double sigma_l = 0.10;      ///< package inductance
  double sigma_c = 0.10;      ///< pad capacitance
  double sigma_rise = 0.05;   ///< input rise time
  double sigma_width = 0.05;  ///< driver width (scales the fitted K)
  /// Degrade samples whose whole simulation ladder failed to the calibrated
  /// closed-form estimate (tagged kAnalytic) instead of dropping them.
  bool analytic_fallback = true;
  /// Worker threads for the transient batch: 1 = serial (default), 0 =
  /// auto. Each sample runs in its own FaultSampleScope and writes its own
  /// slot; summary/survivor bookkeeping is replayed in index order after
  /// the join, so results are bit-identical for any value — including under
  /// fault injection.
  int threads = 1;
  sim::RecoveryPolicy recovery;
  MeasureOptions measure;
  /// Optional lifecycle context, threaded through to every sample's
  /// transient: a stop drains the batch (unstarted samples stay not-run)
  /// and interrupts the in-flight transients, whose samples are then
  /// *discarded* — never journaled, never counted — so a later resume
  /// re-runs them and reproduces the uninterrupted result. Not owned.
  const support::RunContext* run_ctx = nullptr;
  /// Optional checkpoint journal: every completed sample's outcome is
  /// recorded (atomically) the moment it finishes. Not owned.
  support::BatchJournal* journal = nullptr;
  /// Optional resume set (the items of a loaded, validated journal):
  /// samples present here are restored instead of re-simulated — for free,
  /// without consuming the item budget — and re-recorded into `journal`
  /// so the new journal is complete. Not owned.
  const std::map<std::size_t, support::PointRecord>* resume = nullptr;

  void validate() const;
};

/// One Monte Carlo sample: the drawn variation factors and the outcome.
/// Factors are drawn for every sample up front in a fixed order, so the
/// sample set is identical whether or not any sample later fails — surviving
/// samples are bit-for-bit reproducible under fault injection.
struct SimMcSample {
  int index = 0;
  double l_factor = 1.0;
  double c_factor = 1.0;
  double rise_factor = 1.0;
  double width_factor = 1.0;
  double v_max = 0.0;  ///< meaningful only when fidelity != kFailed
  sim::Fidelity fidelity = sim::Fidelity::kFailed;
  /// Trust verdict of the sample's measurement (journaled, so a resumed
  /// sample replays the verdict it earned when it actually ran).
  verify::Verdict verdict = verify::Verdict::kUnverified;
  /// Whether this sample actually ran (or was restored): false means the
  /// lifecycle layer stopped the batch before the sample finished.
  bool completed = false;
  /// Restored from a journal rather than simulated in this process. The
  /// *outcome* fields are bit-identical either way; only this flag differs.
  bool resumed = false;
};

struct SimMonteCarloResult {
  std::vector<SimMcSample> samples;  ///< one entry per drawn sample
  std::size_t surviving = 0;  ///< completed samples with fidelity != kFailed
  std::size_t completed = 0;  ///< samples that ran (or restored) to the end
  std::size_t resumed = 0;    ///< of those, how many came from the journal
  /// Why the batch stopped early (kNone when every sample completed).
  support::StopReason stop = support::StopReason::kNone;
  /// Statistics over the surviving samples' V_max.
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// 95 % confidence-interval half-width on `mean` over the survivors.
  double ci95 = 0.0;
  BatchSummary summary;
  /// Merged trust over the surviving samples (worst verdict wins) with
  /// `ci95` mirrored into the statistical-confidence slot.
  verify::TrustReport trust;
};

/// Simulator-backed Monte Carlo over (L, C, rise time, driver width) for the
/// standard SSN bench at `n_drivers`/`rise_time`, resilient per sample.
SimMonteCarloResult monte_carlo_vmax_sim(const Calibration& cal,
                                         const process::Package& package,
                                         int n_drivers, double rise_time,
                                         bool include_c,
                                         const SimMonteCarloOptions& opts = {});

}  // namespace ssnkit::analysis
