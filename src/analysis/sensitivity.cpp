#include "analysis/sensitivity.hpp"

#include "analysis/design.hpp"
#include "core/l_only_model.hpp"
#include "support/diagnostics.hpp"
#include "support/parallel.hpp"

#include <array>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace ssnkit::analysis {

SsnSensitivities l_only_sensitivities(const core::SsnScenario& scenario) {
  core::SsnScenario s = scenario;
  s.capacitance = 0.0;
  s.validate();

  // V = A*(1 - e^{-x}) with A = N*L*K*S and x = (vdd - V_x)/(lambda*A).
  const double a = s.v_inf();
  const double x = (s.vdd - s.device.vx) / (s.device.lambda * a);
  const double em = std::exp(-x);
  const double denom = 1.0 - em;
  if (denom <= 0.0)
    throw std::runtime_error("l_only_sensitivities: degenerate scenario");

  SsnSensitivities out;
  // N, L, K, S all enter only through A (the beta-equivalence of Eqn 9):
  // E_A = [1 - e^{-x}(1+x)] / (1 - e^{-x}).
  const double e_a = (1.0 - em * (1.0 + x)) / denom;
  out.wrt_drivers = e_a;
  out.wrt_inductance = e_a;
  out.wrt_slope = e_a;
  out.wrt_k = e_a;
  // lambda enters only x: E_lambda = -x e^{-x} / (1 - e^{-x}).
  out.wrt_lambda = -x * em / denom;
  // V_x shifts the active ramp: E_vx = E_lambda * vx/(vdd - vx).
  out.wrt_vx = out.wrt_lambda * s.device.vx / (s.vdd - s.device.vx);
  out.wrt_capacitance = 0.0;
  return out;
}

namespace {

/// Central-difference elasticity d ln V / d ln p via a parameter mutator.
template <typename Setter>
double elasticity(const core::SsnScenario& s, double value, double rel_step,
                  const Setter& set) {
  const double h = value * rel_step;
  core::SsnScenario up = s;
  set(up, value + h);
  core::SsnScenario dn = s;
  set(dn, value - h);
  const double v_up = predict_vmax(up);
  const double v_dn = predict_vmax(dn);
  const double v0 = predict_vmax(s);
  return (v_up - v_dn) / (2.0 * h) * value / v0;
}

}  // namespace

SsnSensitivities lc_sensitivities(const core::SsnScenario& scenario,
                                  double rel_step, int threads,
                                  const support::RunContext* run_ctx) {
  scenario.validate();
  if (!(scenario.capacitance > 0.0))
    throw std::invalid_argument("lc_sensitivities: capacitance must be > 0 "
                                "(use l_only_sensitivities)");
  if (!(rel_step > 0.0 && rel_step < 0.1))
    throw std::invalid_argument("lc_sensitivities: rel_step out of range");

  // The six stencils are independent; each writes its own slot, so the
  // parallel evaluation is identical to serial for any thread count.
  using Setter = std::function<void(core::SsnScenario&, double)>;
  struct Param {
    double value = 0.0;
    Setter set;
  };
  // N is discrete in the scenario; scale through (K, lambda-preserving)
  // current instead: N*K enters every formula as a product, so perturbing K
  // with fixed N measures the same elasticity.
  const std::array<Param, 6> params = {{
      {scenario.device.k,
       [](core::SsnScenario& s, double v) { s.device.k = v; }},
      {scenario.inductance,
       [](core::SsnScenario& s, double v) { s.inductance = v; }},
      {scenario.capacitance,
       [](core::SsnScenario& s, double v) { s.capacitance = v; }},
      {scenario.slope, [](core::SsnScenario& s, double v) { s.slope = v; }},
      {scenario.device.lambda,
       [](core::SsnScenario& s, double v) { s.device.lambda = v; }},
      {scenario.device.vx,
       [](core::SsnScenario& s, double v) { s.device.vx = v; }},
  }};
  std::array<double, 6> e{};
  const support::BatchStatus status = support::parallel_for_index(
      threads, params.size(),
      [&](std::size_t i) {
        e[i] = elasticity(scenario, params[i].value, rel_step, params[i].set);
      },
      run_ctx);
  if (status.stopped) {
    // All six elasticities or nothing: a partial vector would silently
    // report zeros for the missing parameters.
    const support::StopReason stop = run_ctx->stop_reason();
    throw support::SolverError(
        stop == support::StopReason::kDeadlineExpired
            ? support::SolverErrorKind::kDeadlineExpired
            : support::SolverErrorKind::kCancelled,
        "lc_sensitivities stopped after " + std::to_string(status.completed) +
            "/6 stencils");
  }

  SsnSensitivities out;
  out.wrt_drivers = e[0];
  out.wrt_k = out.wrt_drivers;
  out.wrt_inductance = e[1];
  out.wrt_capacitance = e[2];
  out.wrt_slope = e[3];
  out.wrt_lambda = e[4];
  out.wrt_vx = e[5];
  return out;
}

}  // namespace ssnkit::analysis
