// Run the MNA simulator on an SSN testbench and extract the quantities the
// paper reports: the ground-bounce waveform, the inductor current and the
// maximum noise during the input ramp.
#pragma once

#include "circuit/testbench.hpp"
#include "core/scenario.hpp"
#include "sim/engine.hpp"
#include "verify/physics.hpp"
#include "verify/trust.hpp"
#include "waveform/waveform.hpp"

namespace ssnkit::analysis {

struct SsnMeasurement {
  double v_max = 0.0;        ///< max ground bounce during the ramp [V]
  double t_at_max = 0.0;     ///< where it occurred [s]
  waveform::Waveform vssi;   ///< internal-ground voltage
  waveform::Waveform i_l;    ///< ground-inductor current
  waveform::Waveform vin;    ///< first driver's input
  waveform::Waveform vout;   ///< first driver's output
  sim::SolverStats stats;
  /// How this measurement was verified: the engine's solve verdict, merged
  /// with the physics-invariant findings when verify_measurement() ran.
  verify::TrustReport trust;
};

struct MeasureOptions {
  /// Simulate this factor past the ramp end (the bounce tail is useful for
  /// plots; the reported max is still taken inside the ramp).
  double overshoot_factor = 1.0;
  sim::TransientOptions transient;  ///< t_start/t_stop are filled in
};

/// Build the bench circuit, simulate it, and measure. The maximum is taken
/// over [0, t_ramp_end], matching the validity window of the paper's
/// formulas.
SsnMeasurement measure_ssn(const circuit::SsnBenchSpec& spec,
                           const MeasureOptions& opts = {});

/// Same, for a bench the caller already customized.
SsnMeasurement measure_ssn(circuit::SsnBench& bench, const MeasureOptions& opts = {});

/// Run the src/verify physics invariants on a simulated measurement and
/// fold the findings into its trust report: passivity of the ground path,
/// V_max/extremum consistency with the fitted Table 1 damping case. Needs
/// the calibrated scenario (package L plus the fitted ASDM device select
/// the damping case); violations downgrade trust, never throw.
void verify_measurement(SsnMeasurement& m, const core::SsnScenario& scenario,
                        const verify::PhysicsCheckOptions& opts = {});

}  // namespace ssnkit::analysis
