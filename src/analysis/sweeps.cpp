#include "analysis/sweeps.hpp"

#include "numeric/stats.hpp"
#include "support/contracts.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"

#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ssnkit::analysis {

namespace {

sim::TransientOptions tuned_transient(const sim::TransientOptions& base,
                                      double rise_time) {
  sim::TransientOptions t = base;
  // Resolve the ramp well regardless of the adaptive controller's mood.
  if (t.dt_max <= 0.0) t.dt_max = rise_time / 200.0;
  return t;
}

/// One sweep point's simulation outcome, in an index-addressed slot.
struct PointResult {
  bool ok = false;
  double v_max = 0.0;
  sim::Fidelity fidelity = sim::Fidelity::kFullDevice;
  std::optional<support::SolverError> error;
  /// The point ran (or was restored from a journal). False means the
  /// lifecycle layer stopped the sweep before this point — it is not-run,
  /// not failed, and must not be recorded in the summary.
  bool attempted = false;
  bool resumed = false;  ///< restored from the resume set
};

/// A completed point's journal form / its restoration. The fields mirror
/// the Monte Carlo driver's encode/decode: fidelity, exact V_max bits, and
/// the error kind — everything the row-assembly loops read.
support::PointRecord encode_point(const PointResult& r) {
  support::PointRecord rec;
  rec.fidelity = int(r.fidelity);
  rec.v_bits = support::double_bits(r.v_max);
  rec.error_kind = r.error ? int(r.error->kind()) : -1;
  return rec;
}

bool decode_point(const support::PointRecord& rec, PointResult& r) {
  if (rec.fidelity < 0 || rec.fidelity > int(sim::Fidelity::kFailed))
    return false;
  if (rec.error_kind < -1 ||
      rec.error_kind > int(support::SolverErrorKind::kDeadlineExpired))
    return false;
  r.fidelity = sim::Fidelity(rec.fidelity);
  r.v_max = support::bits_double(rec.v_bits);
  r.ok = r.fidelity != sim::Fidelity::kFailed;
  if (rec.error_kind >= 0)
    r.error.emplace(support::SolverErrorKind(rec.error_kind),
                    "restored from journal");
  return true;
}

/// Measure every (spec, transient-options) point, in parallel when asked.
/// Each point runs in its own FaultSampleScope and writes only its slot, so
/// the outcome vector is bit-identical for any thread count; the callers
/// replay summary records and assemble rows in sweep order afterwards. In
/// non-resilient mode a failing point throws — the first exception (by
/// completion order) propagates after the batch joins.
///
/// Lifecycle: `ctx` gates each point through try_start_item and is threaded
/// into the point's transient; a point whose transient was interrupted
/// mid-flight stays not-attempted (and is never journaled), so resuming
/// re-runs it and reproduces the uninterrupted sweep bit-for-bit.
std::vector<PointResult> measure_points(
    const std::vector<circuit::SsnBenchSpec>& specs,
    const std::vector<MeasureOptions>& mopts, bool resilient,
    const sim::RecoveryPolicy& policy, int threads,
    const support::RunContext* ctx = nullptr,
    support::BatchJournal* journal = nullptr,
    const std::map<std::size_t, support::PointRecord>* resume = nullptr) {
  std::vector<PointResult> out(specs.size());
  support::parallel_for_index(
      threads, specs.size(),
      [&](std::size_t i) {
        PointResult& r = out[i];
        if (resume != nullptr) {
          const auto it = resume->find(i);
          if (it != resume->end()) {
            if (!decode_point(it->second, r))
              throw std::invalid_argument(
                  "measure_points: journal record for point " +
                  std::to_string(i) + " has out-of-range fields");
            r.attempted = true;
            r.resumed = true;
            if (journal != nullptr) journal->record(i, it->second);
            return;
          }
        }
        if (ctx != nullptr && !ctx->try_start_item()) return;

        const support::FaultSampleScope fault_scope(i);
        MeasureOptions mo = mopts[i];
        mo.transient.run_ctx = ctx;
        if (!resilient) {
          // Non-resilient mode: any failure surfaces as a thrown SolverError
          // (propagated by the pool), so there is no status to inspect here.
          r.v_max = measure_ssn(specs[i], mo).v_max;  // ssnlint-ignore(SSN-L013)
          r.fidelity = sim::Fidelity::kFullDevice;
          r.ok = true;
          r.attempted = true;
          return;
        }
        ResilientMeasurement rm = measure_ssn_resilient(specs[i], mo, policy);
        // An interrupted transient is not a result: leave the point
        // not-attempted so a resume re-simulates it.
        if (rm.error && support::is_stop_kind(rm.error->kind())) return;
        r.ok = rm.ok();
        r.v_max = rm.measurement.v_max;
        r.fidelity = rm.fidelity;
        r.error = std::move(rm.error);
        r.attempted = true;
        if (journal != nullptr) journal->record(i, encode_point(r));
      },
      ctx);
  return out;
}

circuit::SsnBenchSpec bench_spec_for(const process::Technology& tech,
                                     const process::Package& package,
                                     process::GoldenKind golden, int n,
                                     double rise_time, bool include_c,
                                     bool include_pullup) {
  circuit::SsnBenchSpec spec;
  spec.tech = tech;
  spec.package = package;
  spec.golden = golden;
  spec.n_drivers = n;
  spec.input_rise_time = rise_time;
  spec.include_package_c = include_c;
  spec.include_pullup = include_pullup;
  return spec;
}

}  // namespace

std::vector<double> default_capacitance_sweep() {
  // Log sweep 0.1 pF .. 20 pF, 17 points.
  std::vector<double> cs;
  const double lo = std::log10(0.1e-12), hi = std::log10(20e-12);
  for (int i = 0; i < 17; ++i)
    cs.push_back(std::pow(10.0, lo + (hi - lo) * double(i) / 16.0));
  return cs;
}

DriverSweepResult run_driver_sweep(const DriverSweepConfig& config) {
  SSN_REQUIRE(!config.driver_counts.empty(),
              "run_driver_sweep: no driver counts");

  DriverSweepResult out;
  out.calibration = calibrate(config.tech, config.golden);

  MeasureOptions mopts;
  mopts.transient = tuned_transient(config.transient, config.input_rise_time);

  std::vector<circuit::SsnBenchSpec> specs;
  specs.reserve(config.driver_counts.size());
  for (int n : config.driver_counts)
    specs.push_back(bench_spec_for(config.tech, config.package, config.golden,
                                   n, config.input_rise_time,
                                   config.include_package_c,
                                   config.include_pullup));
  const std::vector<PointResult> points = measure_points(
      specs, std::vector<MeasureOptions>(specs.size(), mopts),
      config.resilient, config.recovery, config.threads, config.run_ctx,
      config.journal, config.resume);

  for (std::size_t i = 0; i < config.driver_counts.size(); ++i) {
    const int n = config.driver_counts[i];
    const PointResult& pt = points[i];
    DriverSweepRow row;
    row.n = n;
    if (!pt.attempted) {
      ++out.summary.not_run;
      continue;
    }
    if (pt.resumed) ++out.resumed;
    if (config.resilient)
      out.summary.record("n=" + std::to_string(n), pt.fidelity, pt.error);
    if (!pt.ok) continue;
    row.sim = pt.v_max;
    row.fidelity = pt.fidelity;

    const core::SsnScenario scenario = make_scenario(
        out.calibration, config.package, n, config.input_rise_time,
        config.include_package_c);
    row.this_work = config.include_package_c
                        ? core::LcModel(scenario).v_max()
                        : core::LOnlyModel(scenario).v_max();

    const core::BaselineInputs base = make_baseline_inputs(
        out.calibration, config.package, n, config.input_rise_time);
    row.vemuru = core::vemuru_vmax(base);
    row.song = core::song_vmax(base);
    row.senthinathan = core::senthinathan_prince_vmax(base);

    row.err_this = numeric::relative_error(row.this_work, row.sim);
    row.err_vemuru = numeric::relative_error(row.vemuru, row.sim);
    row.err_song = numeric::relative_error(row.song, row.sim);
    row.err_senthinathan = numeric::relative_error(row.senthinathan, row.sim);
    out.rows.push_back(row);
  }
  if (out.summary.not_run > 0 && config.run_ctx != nullptr)
    out.summary.stop = config.run_ctx->stop_reason();
  return out;
}

CapacitanceSweepResult run_capacitance_sweep(const CapacitanceSweepConfig& config) {
  CapacitanceSweepResult out;
  out.calibration = calibrate(config.tech, config.golden);

  std::vector<double> cs = config.capacitances;
  if (cs.empty()) cs = default_capacitance_sweep();

  MeasureOptions mopts;
  mopts.transient = tuned_transient(config.transient, config.input_rise_time);

  const core::SsnScenario base_scenario =
      make_scenario(out.calibration, config.package, config.n_drivers,
                    config.input_rise_time, /*include_c=*/false);
  out.critical_capacitance = base_scenario.critical_capacitance();
  const double l_only_vmax = core::LOnlyModel(base_scenario).v_max();

  std::vector<circuit::SsnBenchSpec> specs;
  specs.reserve(cs.size());
  for (double c : cs) {
    process::Package pkg = config.package;
    pkg.capacitance = c;
    specs.push_back(bench_spec_for(config.tech, pkg, config.golden,
                                   config.n_drivers, config.input_rise_time,
                                   /*include_c=*/true, config.include_pullup));
  }
  const std::vector<PointResult> points = measure_points(
      specs, std::vector<MeasureOptions>(specs.size(), mopts),
      config.resilient, config.recovery, config.threads, config.run_ctx,
      config.journal, config.resume);

  for (std::size_t i = 0; i < cs.size(); ++i) {
    const double c = cs[i];
    const PointResult& pt = points[i];
    CapacitanceSweepRow row;
    row.c = c;
    if (!pt.attempted) {
      ++out.summary.not_run;
      continue;
    }
    if (pt.resumed) ++out.resumed;
    if (config.resilient) {
      char label[32];
      std::snprintf(label, sizeof(label), "c=%.3gF", c);
      out.summary.record(label, pt.fidelity, pt.error);
    }
    if (!pt.ok) continue;
    row.sim = pt.v_max;
    row.fidelity = pt.fidelity;

    const core::LcModel lc(base_scenario.with_capacitance(c));
    row.lc_model = lc.v_max();
    row.zeta = lc.zeta();
    row.lc_case = lc.max_case();
    row.l_only = l_only_vmax;

    row.err_lc = numeric::relative_error(row.lc_model, row.sim);
    row.err_l_only = numeric::relative_error(row.l_only, row.sim);
    out.rows.push_back(row);
  }
  if (out.summary.not_run > 0 && config.run_ctx != nullptr)
    out.summary.stop = config.run_ctx->stop_reason();
  return out;
}

std::vector<SlopeSweepRow> run_slope_sweep(const Calibration& cal,
                                           const process::Package& package,
                                           int n_drivers,
                                           const std::vector<double>& rise_times,
                                           bool include_c,
                                           const sim::TransientOptions& topts,
                                           BatchSummary* summary, int threads,
                                           const support::RunContext* run_ctx) {
  SSN_REQUIRE(!rise_times.empty(), "run_slope_sweep: no rise times");
  std::vector<SlopeSweepRow> rows;

  std::vector<circuit::SsnBenchSpec> specs;
  std::vector<MeasureOptions> mopts_per_point;
  specs.reserve(rise_times.size());
  mopts_per_point.reserve(rise_times.size());
  for (double tr : rise_times) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.package = package;
    spec.golden = cal.golden;
    spec.n_drivers = n_drivers;
    spec.input_rise_time = tr;
    spec.include_package_c = include_c;
    specs.push_back(spec);
    MeasureOptions mopts;
    mopts.transient = tuned_transient(topts, tr);
    mopts_per_point.push_back(mopts);
  }
  const std::vector<PointResult> points =
      measure_points(specs, mopts_per_point, /*resilient=*/summary != nullptr,
                     {}, threads, run_ctx);

  for (std::size_t i = 0; i < rise_times.size(); ++i) {
    const double tr = rise_times[i];
    const PointResult& pt = points[i];
    SlopeSweepRow row;
    row.rise_time = tr;
    row.slope = cal.tech.vdd / tr;
    if (!pt.attempted) {
      if (summary) ++summary->not_run;
      continue;
    }
    if (summary) {
      char label[32];
      std::snprintf(label, sizeof(label), "tr=%.3gs", tr);
      summary->record(label, pt.fidelity, pt.error);
    }
    if (!pt.ok) continue;
    row.sim = pt.v_max;
    row.fidelity = pt.fidelity;

    const core::SsnScenario scenario =
        make_scenario(cal, package, n_drivers, tr, include_c);
    row.model = include_c ? core::LcModel(scenario).v_max()
                          : core::LOnlyModel(scenario).v_max();
    row.err = numeric::relative_error(row.model, row.sim);
    rows.push_back(row);
  }
  if (summary != nullptr && summary->not_run > 0 && run_ctx != nullptr)
    summary->stop = run_ctx->stop_reason();
  return rows;
}

std::vector<BetaPoint> beta_equivalence_points(const Calibration& cal,
                                               double beta_target,
                                               const std::vector<int>& ns,
                                               double rise_time) {
  if (!(beta_target > 0.0))
    throw std::invalid_argument("beta_equivalence_points: beta_target must be > 0");
  if (!(rise_time > 0.0))
    throw std::invalid_argument("beta_equivalence_points: rise_time must be > 0");
  std::vector<BetaPoint> pts;
  const double slope = cal.tech.vdd / rise_time;
  for (int n : ns) {
    BetaPoint p;
    p.n = n;
    p.slope = slope;
    p.l = beta_target / (double(n) * slope);
    core::SsnScenario s;
    s.n_drivers = n;
    s.inductance = p.l;
    s.capacitance = 0.0;
    s.slope = slope;
    s.vdd = cal.tech.vdd;
    s.device = cal.asdm.params;
    p.beta = s.beta();
    p.v_max = core::LOnlyModel(s).v_max();
    pts.push_back(p);
  }
  return pts;
}

}  // namespace ssnkit::analysis
