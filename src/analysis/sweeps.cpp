#include "analysis/sweeps.hpp"

#include "numeric/stats.hpp"
#include "support/contracts.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace ssnkit::analysis {

namespace {

sim::TransientOptions tuned_transient(const sim::TransientOptions& base,
                                      double rise_time) {
  sim::TransientOptions t = base;
  // Resolve the ramp well regardless of the adaptive controller's mood.
  if (t.dt_max <= 0.0) t.dt_max = rise_time / 200.0;
  return t;
}

// Measure one sweep point, resiliently when asked. Returns false when the
// point failed even after the recovery ladder — the caller skips the row;
// the summary (always updated when `resilient`) carries the account.
bool measure_point(const circuit::SsnBenchSpec& spec,
                   const MeasureOptions& mopts, bool resilient,
                   const sim::RecoveryPolicy& policy, const std::string& label,
                   BatchSummary& summary, double& v_max_out,
                   sim::Fidelity& fidelity_out) {
  if (!resilient) {
    v_max_out = measure_ssn(spec, mopts).v_max;
    fidelity_out = sim::Fidelity::kFullDevice;
    return true;
  }
  const ResilientMeasurement rm = measure_ssn_resilient(spec, mopts, policy);
  summary.record(label, rm.fidelity, rm.error);
  if (!rm.ok()) return false;
  v_max_out = rm.measurement.v_max;
  fidelity_out = rm.fidelity;
  return true;
}

circuit::SsnBenchSpec bench_spec_for(const process::Technology& tech,
                                     const process::Package& package,
                                     process::GoldenKind golden, int n,
                                     double rise_time, bool include_c,
                                     bool include_pullup) {
  circuit::SsnBenchSpec spec;
  spec.tech = tech;
  spec.package = package;
  spec.golden = golden;
  spec.n_drivers = n;
  spec.input_rise_time = rise_time;
  spec.include_package_c = include_c;
  spec.include_pullup = include_pullup;
  return spec;
}

}  // namespace

DriverSweepResult run_driver_sweep(const DriverSweepConfig& config) {
  SSN_REQUIRE(!config.driver_counts.empty(),
              "run_driver_sweep: no driver counts");

  DriverSweepResult out;
  out.calibration = calibrate(config.tech, config.golden);

  MeasureOptions mopts;
  mopts.transient = tuned_transient(config.transient, config.input_rise_time);

  for (int n : config.driver_counts) {
    DriverSweepRow row;
    row.n = n;

    const auto spec =
        bench_spec_for(config.tech, config.package, config.golden, n,
                       config.input_rise_time, config.include_package_c,
                       config.include_pullup);
    if (!measure_point(spec, mopts, config.resilient, config.recovery,
                       "n=" + std::to_string(n), out.summary, row.sim,
                       row.fidelity))
      continue;

    const core::SsnScenario scenario = make_scenario(
        out.calibration, config.package, n, config.input_rise_time,
        config.include_package_c);
    row.this_work = config.include_package_c
                        ? core::LcModel(scenario).v_max()
                        : core::LOnlyModel(scenario).v_max();

    const core::BaselineInputs base = make_baseline_inputs(
        out.calibration, config.package, n, config.input_rise_time);
    row.vemuru = core::vemuru_vmax(base);
    row.song = core::song_vmax(base);
    row.senthinathan = core::senthinathan_prince_vmax(base);

    row.err_this = numeric::relative_error(row.this_work, row.sim);
    row.err_vemuru = numeric::relative_error(row.vemuru, row.sim);
    row.err_song = numeric::relative_error(row.song, row.sim);
    row.err_senthinathan = numeric::relative_error(row.senthinathan, row.sim);
    out.rows.push_back(row);
  }
  return out;
}

CapacitanceSweepResult run_capacitance_sweep(const CapacitanceSweepConfig& config) {
  CapacitanceSweepResult out;
  out.calibration = calibrate(config.tech, config.golden);

  std::vector<double> cs = config.capacitances;
  if (cs.empty()) {
    // Log sweep 0.1 pF .. 20 pF, 17 points.
    const double lo = std::log10(0.1e-12), hi = std::log10(20e-12);
    for (int i = 0; i < 17; ++i)
      cs.push_back(std::pow(10.0, lo + (hi - lo) * double(i) / 16.0));
  }

  MeasureOptions mopts;
  mopts.transient = tuned_transient(config.transient, config.input_rise_time);

  const core::SsnScenario base_scenario =
      make_scenario(out.calibration, config.package, config.n_drivers,
                    config.input_rise_time, /*include_c=*/false);
  out.critical_capacitance = base_scenario.critical_capacitance();
  const double l_only_vmax = core::LOnlyModel(base_scenario).v_max();

  for (double c : cs) {
    CapacitanceSweepRow row;
    row.c = c;

    process::Package pkg = config.package;
    pkg.capacitance = c;
    auto spec =
        bench_spec_for(config.tech, pkg, config.golden, config.n_drivers,
                       config.input_rise_time, /*include_c=*/true,
                       config.include_pullup);
    char label[32];
    std::snprintf(label, sizeof(label), "c=%.3gF", c);
    if (!measure_point(spec, mopts, config.resilient, config.recovery, label,
                       out.summary, row.sim, row.fidelity))
      continue;

    const core::LcModel lc(base_scenario.with_capacitance(c));
    row.lc_model = lc.v_max();
    row.zeta = lc.zeta();
    row.lc_case = lc.max_case();
    row.l_only = l_only_vmax;

    row.err_lc = numeric::relative_error(row.lc_model, row.sim);
    row.err_l_only = numeric::relative_error(row.l_only, row.sim);
    out.rows.push_back(row);
  }
  return out;
}

std::vector<SlopeSweepRow> run_slope_sweep(const Calibration& cal,
                                           const process::Package& package,
                                           int n_drivers,
                                           const std::vector<double>& rise_times,
                                           bool include_c,
                                           const sim::TransientOptions& topts,
                                           BatchSummary* summary) {
  SSN_REQUIRE(!rise_times.empty(), "run_slope_sweep: no rise times");
  std::vector<SlopeSweepRow> rows;
  BatchSummary local;  // discarded when the caller did not ask for one
  for (double tr : rise_times) {
    SlopeSweepRow row;
    row.rise_time = tr;
    row.slope = cal.tech.vdd / tr;

    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.package = package;
    spec.golden = cal.golden;
    spec.n_drivers = n_drivers;
    spec.input_rise_time = tr;
    spec.include_package_c = include_c;
    MeasureOptions mopts;
    mopts.transient = tuned_transient(topts, tr);
    char label[32];
    std::snprintf(label, sizeof(label), "tr=%.3gs", tr);
    if (!measure_point(spec, mopts, /*resilient=*/summary != nullptr, {},
                       label, summary ? *summary : local, row.sim,
                       row.fidelity))
      continue;

    const core::SsnScenario scenario =
        make_scenario(cal, package, n_drivers, tr, include_c);
    row.model = include_c ? core::LcModel(scenario).v_max()
                          : core::LOnlyModel(scenario).v_max();
    row.err = numeric::relative_error(row.model, row.sim);
    rows.push_back(row);
  }
  return rows;
}

std::vector<BetaPoint> beta_equivalence_points(const Calibration& cal,
                                               double beta_target,
                                               const std::vector<int>& ns,
                                               double rise_time) {
  if (!(beta_target > 0.0))
    throw std::invalid_argument("beta_equivalence_points: beta_target must be > 0");
  if (!(rise_time > 0.0))
    throw std::invalid_argument("beta_equivalence_points: rise_time must be > 0");
  std::vector<BetaPoint> pts;
  const double slope = cal.tech.vdd / rise_time;
  for (int n : ns) {
    BetaPoint p;
    p.n = n;
    p.slope = slope;
    p.l = beta_target / (double(n) * slope);
    core::SsnScenario s;
    s.n_drivers = n;
    s.inductance = p.l;
    s.capacitance = 0.0;
    s.slope = slope;
    s.vdd = cal.tech.vdd;
    s.device = cal.asdm.params;
    p.beta = s.beta();
    p.v_max = core::LOnlyModel(s).v_max();
    pts.push_back(p);
  }
  return pts;
}

}  // namespace ssnkit::analysis
