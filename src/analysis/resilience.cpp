#include "analysis/resilience.hpp"

#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "support/contracts.hpp"

#include <algorithm>
#include <utility>

namespace ssnkit::analysis {

SsnMeasurement analytic_measurement(const core::SsnScenario& scenario,
                                    std::size_t points) {
  scenario.validate();
  SsnMeasurement m;
  if (scenario.capacitance > 0.0) {
    const core::LcModel model(scenario);
    m.v_max = model.v_max();
    m.vssi = model.vn_waveform(points);
    m.i_l = model.current_waveform(points);
  } else {
    const core::LOnlyModel model(scenario);
    m.v_max = model.v_max();
    m.vssi = model.vn_waveform(points);
    m.i_l = model.current_waveform(points);
  }
  // v_max comes from the exact Table 1 / Eqn 7 formula; the peak *time* is
  // read off the sampled waveform (good to the sampling resolution).
  m.t_at_max = m.vssi.maximum_in(0.0, scenario.t_ramp_end()).t;
  m.vin = waveform::Waveform::from_function(
      [&](double t) { return std::min(scenario.slope * t, scenario.vdd); },
      0.0, scenario.t_ramp_end(), points);
  // No closed form exists for the driver output node; it stays empty.
  return m;
}

ResilientMeasurement measure_ssn_resilient(
    const circuit::SsnBenchSpec& spec, const MeasureOptions& opts,
    const sim::RecoveryPolicy& policy,
    const core::SsnScenario* analytic_fallback) {
  SSN_REQUIRE(opts.overshoot_factor >= 1.0,
              "measure_ssn_resilient: overshoot_factor must be >= 1");

  circuit::SsnBench bench = circuit::make_ssn_testbench(spec);
  sim::TransientOptions topts = opts.transient;
  topts.t_start = 0.0;
  topts.t_stop = bench.t_ramp_end * opts.overshoot_factor;

  sim::RecoveryOutcome run =
      sim::run_transient_resilient(bench.circuit, topts, policy);

  ResilientMeasurement out;
  out.fidelity = run.fidelity;
  out.attempts = std::move(run.attempts);
  if (run.ok()) {
    const sim::TransientResult& result = run.result;
    out.measurement.stats = result.stats;
    out.measurement.vssi = result.waveform(bench.vssi_node);
    out.measurement.i_l = result.waveform("I(" + bench.inductor_name + ")");
    out.measurement.vin = result.waveform(bench.input_nodes.front());
    out.measurement.vout = result.waveform(bench.output_nodes.front());
    const auto peak = out.measurement.vssi.maximum_in(0.0, bench.t_ramp_end);
    out.measurement.v_max = peak.value;
    out.measurement.t_at_max = peak.t;
    out.measurement.trust = result.trust;
    // Physics invariants need the calibrated scenario; the analytic
    // fallback parameter is exactly that when the caller supplied one.
    if (analytic_fallback != nullptr)
      verify_measurement(out.measurement, *analytic_fallback);
    return out;
  }

  out.error = std::move(run.error);
  // A cooperative stop (cancel / deadline) is not a numerical failure: the
  // analytic rung must not paper over it, or an interrupted sample would be
  // reported as kAnalytic and a resumed run could never reproduce the
  // uninterrupted result. The driver treats stop-kind failures as "not run".
  if (out.error && support::is_stop_kind(out.error->kind())) {
    out.fidelity = sim::Fidelity::kFailed;
    return out;
  }
  if (analytic_fallback != nullptr) {
    out.measurement = analytic_measurement(*analytic_fallback);
    out.fidelity = sim::Fidelity::kAnalytic;
    out.attempts.push_back(support::RecoveryAttempt{
        "analytic", true, "degraded to the closed-form model"});
  } else {
    out.fidelity = sim::Fidelity::kFailed;
  }
  return out;
}

void BatchSummary::record(const std::string& label, sim::Fidelity fidelity,
                          const std::optional<support::SolverError>& error) {
  ++total;
  ++by_fidelity[sim::to_string(fidelity)];
  switch (fidelity) {
    case sim::Fidelity::kFullDevice: ++full_fidelity; break;
    case sim::Fidelity::kAnalytic: ++analytic; break;
    case sim::Fidelity::kFailed: ++failed; break;
    default: ++recovered; break;
  }
  if (error) ++by_error[support::to_string(error->kind())];
  if (fidelity != sim::Fidelity::kFullDevice) {
    std::string note = label;
    note += ": ";
    note += sim::to_string(fidelity);
    if (error) {
      note += " [";
      note += support::to_string(error->kind());
      note += "]";
    }
    notes.push_back(std::move(note));
  }
}

std::string BatchSummary::to_string() const {
  std::string s = std::to_string(total) + " runs: " +
                  std::to_string(full_fidelity) + " full-fidelity";
  if (recovered > 0) s += ", " + std::to_string(recovered) + " recovered";
  if (analytic > 0) s += ", " + std::to_string(analytic) + " analytic";
  if (failed > 0) s += ", " + std::to_string(failed) + " failed";
  if (not_run > 0) {
    s += ", " + std::to_string(not_run) + " not run (" +
         support::to_string(stop) + ")";
  }
  if (!by_error.empty()) {
    s += "; errors:";
    for (const auto& [kind, count] : by_error)
      s += " " + kind + "=" + std::to_string(count);
  }
  return s;
}

}  // namespace ssnkit::analysis
