#include "analysis/measure.hpp"

#include <stdexcept>

namespace ssnkit::analysis {

SsnMeasurement measure_ssn(const circuit::SsnBenchSpec& spec,
                           const MeasureOptions& opts) {
  circuit::SsnBench bench = circuit::make_ssn_testbench(spec);
  return measure_ssn(bench, opts);
}

SsnMeasurement measure_ssn(circuit::SsnBench& bench, const MeasureOptions& opts) {
  if (!(opts.overshoot_factor >= 1.0))
    throw std::invalid_argument("measure_ssn: overshoot_factor must be >= 1");

  sim::TransientOptions topts = opts.transient;
  topts.t_start = 0.0;
  topts.t_stop = bench.t_ramp_end * opts.overshoot_factor;

  const sim::TransientResult result = sim::run_transient(bench.circuit, topts);

  SsnMeasurement m;
  m.stats = result.stats;
  m.vssi = result.waveform(bench.vssi_node);
  m.i_l = result.waveform("I(" + bench.inductor_name + ")");
  m.vin = result.waveform(bench.input_nodes.front());
  m.vout = result.waveform(bench.output_nodes.front());

  const auto peak = m.vssi.maximum_in(0.0, bench.t_ramp_end);
  m.v_max = peak.value;
  m.t_at_max = peak.t;
  m.trust = result.trust;
  return m;
}

void verify_measurement(SsnMeasurement& m, const core::SsnScenario& scenario,
                        const verify::PhysicsCheckOptions& opts) {
  const verify::PhysicsFindings findings = verify::check_ground_path(
      scenario, m.vssi, m.i_l, m.v_max, m.t_at_max, opts);
  verify::apply(findings, m.trust);
}

}  // namespace ssnkit::analysis
