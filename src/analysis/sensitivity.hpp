// Sensitivity of the maximum SSN to every scenario parameter. For the
// L-only model the derivatives of Eqn 7 are analytic; the LC/Table-1 model
// uses central differences (its piecewise structure makes closed-form
// derivatives case-dependent). Sensitivities are reported in normalized
// (elasticity) form, d ln V_max / d ln p — "a 1 % increase in p moves
// V_max by this many %" — which is what a designer trades off.
#pragma once

#include "core/scenario.hpp"
#include "support/runcontext.hpp"

namespace ssnkit::analysis {

struct SsnSensitivities {
  // Elasticities d ln V / d ln p.
  double wrt_drivers = 0.0;      ///< N (treated as continuous)
  double wrt_inductance = 0.0;   ///< L
  double wrt_capacitance = 0.0;  ///< C (0 for the L-only model)
  double wrt_slope = 0.0;        ///< S
  double wrt_k = 0.0;            ///< ASDM K
  double wrt_lambda = 0.0;       ///< ASDM lambda
  double wrt_vx = 0.0;           ///< ASDM V_x
};

/// Analytic elasticities of the L-only V_max (Eqn 7). The scenario's
/// capacitance is ignored. By Eqn 9/10, wrt_drivers == wrt_inductance ==
/// wrt_slope... except slope also moves the turn-on point; see the notes in
/// the implementation.
SsnSensitivities l_only_sensitivities(const core::SsnScenario& scenario);

/// Central-difference elasticities of the full Table 1 V_max. `rel_step`
/// is the relative perturbation per parameter. `threads` parallelizes the
/// six independent difference stencils (1 = serial, 0 = auto); each stencil
/// writes its own slot so the result is identical for any value. When
/// `run_ctx` is set and the batch is stopped before all stencils finish,
/// throws support::SolverError with the stop kind — a partial sensitivity
/// vector has no meaning, unlike a partial sweep.
SsnSensitivities lc_sensitivities(const core::SsnScenario& scenario,
                                  double rel_step = 1e-4, int threads = 1,
                                  const support::RunContext* run_ctx = nullptr);

}  // namespace ssnkit::analysis
