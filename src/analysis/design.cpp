#include "analysis/design.hpp"

#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "numeric/roots.hpp"

#include <stdexcept>

namespace ssnkit::analysis {

double predict_vmax(const core::SsnScenario& scenario) {
  if (scenario.capacitance > 0.0) return core::LcModel(scenario).v_max();
  return core::LOnlyModel(scenario).v_max();
}

int required_ground_pads(const core::SsnScenario& base_scenario,
                         const process::Package& package, double budget,
                         int max_pads) {
  if (!(budget > 0.0))
    throw std::invalid_argument("required_ground_pads: budget must be > 0");
  if (max_pads < 1)
    throw std::invalid_argument("required_ground_pads: max_pads must be >= 1");
  for (int k = 1; k <= max_pads; ++k) {
    const process::Package pk = package.with_ground_pads(k);
    core::SsnScenario s = base_scenario;
    s.inductance = pk.inductance;
    if (s.capacitance > 0.0) s.capacitance = pk.capacitance;
    if (predict_vmax(s) <= budget) return k;
  }
  throw std::runtime_error("required_ground_pads: budget unreachable with " +
                           std::to_string(max_pads) + " pads");
}

int max_simultaneous_drivers(const core::SsnScenario& base_scenario,
                             double budget, int max_drivers) {
  if (!(budget > 0.0))
    throw std::invalid_argument("max_simultaneous_drivers: budget must be > 0");
  if (predict_vmax(base_scenario.with_drivers(1)) > budget) return 0;
  // V_max grows monotonically with N: binary search the largest ok count.
  int lo = 1, hi = max_drivers;
  if (predict_vmax(base_scenario.with_drivers(hi)) <= budget) return hi;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (predict_vmax(base_scenario.with_drivers(mid)) <= budget)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double max_input_slope(const core::SsnScenario& base_scenario, double budget,
                       double slope_lo, double slope_hi) {
  if (!(budget > 0.0))
    throw std::invalid_argument("max_input_slope: budget must be > 0");
  if (!(slope_hi > slope_lo && slope_lo > 0.0))
    throw std::invalid_argument("max_input_slope: bad slope bracket");
  const core::SsnScenario l_only = base_scenario.with_capacitance(0.0);
  const auto violation = [&](double s) {
    return predict_vmax(l_only.with_slope(s)) - budget;
  };
  if (violation(slope_lo) > 0.0)
    throw std::runtime_error("max_input_slope: budget violated even at slope_lo");
  if (violation(slope_hi) <= 0.0) return slope_hi;
  numeric::RootOptions opts;
  opts.x_tol = slope_lo * 1e-6;
  return numeric::brent(violation, slope_lo, slope_hi, opts);
}

}  // namespace ssnkit::analysis
