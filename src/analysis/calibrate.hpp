// Calibration: extract from a technology's golden device everything the
// closed-form models need — the ASDM (K, lambda, V_x) for this paper's
// formulas and the alpha-power (B, V_T, alpha) for the baseline formulas.
// This is the step a user runs once per process corner.
#pragma once

#include "core/baselines.hpp"
#include "core/scenario.hpp"
#include "devices/fit.hpp"
#include "process/package.hpp"
#include "process/technology.hpp"

namespace ssnkit::analysis {

struct Calibration {
  process::Technology tech;
  process::GoldenKind golden = process::GoldenKind::kAlphaPower;
  double width_mult = 1.0;
  devices::AsdmFitResult asdm;          ///< paper's device model
  devices::AlphaPowerFitResult alpha;   ///< baselines' device model

  /// Alpha-power coefficient B = id0/(vdd-vt0)^alpha for BaselineInputs.
  double baseline_b() const;
};

/// Fit both device abstractions over the standard SSN region: drain at vdd,
/// gate in [vg_lo_frac*vdd, vdd], source bounce in [0, vs_hi_frac*vdd].
Calibration calibrate(const process::Technology& tech,
                      process::GoldenKind golden = process::GoldenKind::kAlphaPower,
                      double width_mult = 1.0, double vg_lo_frac = 0.45,
                      double vs_hi_frac = 0.45);

/// Build the closed-form scenario matching an SsnBenchSpec-style setup.
/// `include_c` selects whether the scenario carries the pad capacitance
/// (LcModel) or zero (LOnlyModel).
core::SsnScenario make_scenario(const Calibration& cal,
                                const process::Package& package, int n_drivers,
                                double input_rise_time, bool include_c);

/// Baseline inputs matching the same setup.
core::BaselineInputs make_baseline_inputs(const Calibration& cal,
                                          const process::Package& package,
                                          int n_drivers, double input_rise_time);

}  // namespace ssnkit::analysis
