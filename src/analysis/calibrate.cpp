#include "analysis/calibrate.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::analysis {

double Calibration::baseline_b() const {
  const auto& p = alpha.params;
  return p.id0 / std::pow(p.vdd - p.vt0, p.alpha);
}

Calibration calibrate(const process::Technology& tech, process::GoldenKind golden,
                      double width_mult, double vg_lo_frac, double vs_hi_frac) {
  tech.validate();
  if (!(vg_lo_frac > 0.0 && vg_lo_frac < 1.0))
    throw std::invalid_argument("calibrate: vg_lo_frac must be in (0, 1)");
  if (!(vs_hi_frac > 0.0 && vs_hi_frac < 1.0))
    throw std::invalid_argument("calibrate: vs_hi_frac must be in (0, 1)");

  Calibration cal;
  cal.tech = tech;
  cal.golden = golden;
  cal.width_mult = width_mult;

  const auto device = tech.make_golden(golden, width_mult);

  devices::AsdmFitRegion region;
  region.vd = tech.vdd;
  region.vg_lo = vg_lo_frac * tech.vdd;
  region.vg_hi = tech.vdd;
  region.vs_lo = 0.0;
  region.vs_hi = vs_hi_frac * tech.vdd;
  cal.asdm = devices::fit_asdm(*device, region);

  cal.alpha = devices::fit_alpha_power(*device, tech.vdd, tech.alpha_power);
  return cal;
}

core::SsnScenario make_scenario(const Calibration& cal,
                                const process::Package& package, int n_drivers,
                                double input_rise_time, bool include_c) {
  package.validate();
  if (!(input_rise_time > 0.0))
    throw std::invalid_argument("make_scenario: input_rise_time must be > 0");
  core::SsnScenario s;
  s.n_drivers = n_drivers;
  s.inductance = package.inductance;
  s.capacitance = include_c ? package.capacitance : 0.0;
  s.vdd = cal.tech.vdd;
  s.slope = cal.tech.vdd / input_rise_time;
  s.device = cal.asdm.params;
  s.validate();
  return s;
}

core::BaselineInputs make_baseline_inputs(const Calibration& cal,
                                          const process::Package& package,
                                          int n_drivers, double input_rise_time) {
  core::BaselineInputs in;
  in.n_drivers = n_drivers;
  in.inductance = package.inductance;
  in.slope = cal.tech.vdd / input_rise_time;
  in.vdd = cal.tech.vdd;
  in.b = cal.baseline_b();
  in.vt = cal.alpha.params.vt0;
  in.alpha = cal.alpha.params.alpha;
  in.validate();
  return in;
}

}  // namespace ssnkit::analysis
