#include "analysis/montecarlo.hpp"

#include "analysis/design.hpp"
#include "core/lc_model.hpp"
#include "numeric/stats.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace ssnkit::analysis {

void MonteCarloOptions::validate() const {
  if (samples < 2)
    throw std::invalid_argument("MonteCarloOptions: samples must be >= 2");
  for (double s : {sigma_k, sigma_lambda, sigma_vx, sigma_l, sigma_c, sigma_slope})
    if (s < 0.0 || s > 0.5)
      throw std::invalid_argument(
          "MonteCarloOptions: sigmas must be in [0, 0.5] (relative)");
}

MonteCarloResult monte_carlo_vmax(const core::SsnScenario& nominal,
                                  const MonteCarloOptions& opts) {
  opts.validate();
  nominal.validate();

  const bool with_c = nominal.capacitance > 0.0;
  const core::DampingRegion nominal_region =
      with_c ? core::LcModel(nominal).region()
             : core::DampingRegion::kOverDamped;

  // Draw every sample's multiplicative factors up front, in the exact order
  // the serial loop consumed the Gaussian stream (k, lambda, vx, L, [C],
  // S), clamped so no parameter collapses or flips sign in the far tails.
  // Hoisting the draws is what makes the parallel evaluation below
  // bit-identical to serial for any thread count.
  std::mt19937 rng(opts.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const auto draw = [&](double sigma) {
    return std::clamp(1.0 + sigma * gauss(rng), 0.2, 1.8);
  };
  const std::size_t stride = with_c ? 6 : 5;
  std::vector<double> factors(std::size_t(opts.samples) * stride);
  for (int i = 0; i < opts.samples; ++i) {
    double* f = &factors[std::size_t(i) * stride];
    std::size_t k = 0;
    f[k++] = draw(opts.sigma_k);
    f[k++] = draw(opts.sigma_lambda);
    f[k++] = draw(opts.sigma_vx);
    f[k++] = draw(opts.sigma_l);
    if (with_c) f[k++] = draw(opts.sigma_c);
    f[k++] = draw(opts.sigma_slope);
  }

  MonteCarloResult out;
  out.samples.resize(std::size_t(opts.samples));
  std::vector<unsigned char> flipped(std::size_t(opts.samples), 0);
  std::vector<unsigned char> done(std::size_t(opts.samples), 0);
  const support::BatchStatus status = support::parallel_for_index(
      opts.threads, std::size_t(opts.samples),
      [&](std::size_t i) {
        const double* f = &factors[i * stride];
        core::SsnScenario s = nominal;
        std::size_t k = 0;
        s.device.k *= f[k++];
        s.device.lambda = std::max(1.0, s.device.lambda * f[k++]);
        s.device.vx *= f[k++];
        s.inductance *= f[k++];
        if (with_c) s.capacitance *= f[k++];
        s.slope *= f[k++];
        out.samples[i] = predict_vmax(s);
        if (with_c && core::LcModel(s).region() != nominal_region)
          flipped[i] = 1;
        done[i] = 1;
      },
      opts.run_ctx);

  if (status.stopped) {
    // Keep only the samples that actually finished (in index order). Which
    // ones those are depends on worker timing — a partial closed-form
    // population is best-effort, see the header comment.
    std::vector<double> kept;
    kept.reserve(status.completed);
    int flips = 0;
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (!done[i]) continue;
      kept.push_back(out.samples[i]);
      flips += flipped[i];
    }
    out.samples = std::move(kept);
    out.completed = out.samples.size();
    // Only report a stop that actually cost samples: workers can observe a
    // trip that lands after the final item was already claimed.
    if (out.completed < done.size() && opts.run_ctx != nullptr)
      out.stop = opts.run_ctx->stop_reason();
    if (!out.samples.empty()) {
      out.mean = numeric::mean(out.samples);
      out.stddev =
          out.samples.size() > 1 ? numeric::stddev(out.samples) : 0.0;
      out.min = numeric::min_value(out.samples);
      out.max = numeric::max_value(out.samples);
      out.p95 = numeric::quantile(out.samples, 0.95);
      out.p99 = numeric::quantile(out.samples, 0.99);
      out.ci95 = out.samples.size() > 1
                     ? 1.96 * out.stddev / std::sqrt(double(out.samples.size()))
                     : 0.0;
      out.region_flip_fraction = double(flips) / double(out.samples.size());
    }
    return out;
  }

  int flips = 0;
  for (unsigned char fl : flipped) flips += fl;

  out.completed = out.samples.size();
  out.mean = numeric::mean(out.samples);
  out.stddev = numeric::stddev(out.samples);
  out.min = numeric::min_value(out.samples);
  out.max = numeric::max_value(out.samples);
  out.p95 = numeric::quantile(out.samples, 0.95);
  out.p99 = numeric::quantile(out.samples, 0.99);
  out.ci95 = 1.96 * out.stddev / std::sqrt(double(out.samples.size()));
  out.region_flip_fraction = double(flips) / double(opts.samples);
  return out;
}

void SimMonteCarloOptions::validate() const {
  if (samples < 1)
    throw std::invalid_argument("SimMonteCarloOptions: samples must be >= 1");
  for (double s : {sigma_l, sigma_c, sigma_rise, sigma_width})
    if (s < 0.0 || s > 0.5)
      throw std::invalid_argument(
          "SimMonteCarloOptions: sigmas must be in [0, 0.5] (relative)");
}

namespace {

/// A completed sample's outcome in journal form. Only the fields the
/// sequential replay reads are journaled: fidelity, V_max (exact bits), the
/// error *kind* (BatchSummary keys notes and counters on the kind alone)
/// and the trust verdict, which is exactly what makes a resumed run
/// bit-identical — including the merged TrustReport.
support::PointRecord encode_point(const ResilientMeasurement& rm) {
  support::PointRecord rec;
  rec.fidelity = int(rm.fidelity);
  rec.v_bits = support::double_bits(rm.measurement.v_max);
  rec.error_kind = rm.error ? int(rm.error->kind()) : -1;
  rec.trust = int(rm.measurement.trust.verdict);
  return rec;
}

/// Rebuild the replay-visible slice of a ResilientMeasurement from its
/// journal record. False when the record's enums are out of range (a
/// corrupt or future-version journal that still parsed structurally).
bool decode_point(const support::PointRecord& rec, ResilientMeasurement& rm) {
  if (rec.fidelity < 0 || rec.fidelity > int(sim::Fidelity::kFailed))
    return false;
  if (rec.error_kind < -1 ||
      rec.error_kind > int(support::SolverErrorKind::kResidualDegraded))
    return false;
  // -1 = pre-trust-layer journal; such a sample replays as kUnverified —
  // honest, since nothing recorded how (or whether) it was verified.
  if (rec.trust < -1 || rec.trust > int(verify::Verdict::kDegraded))
    return false;
  rm.fidelity = sim::Fidelity(rec.fidelity);
  rm.measurement.v_max = support::bits_double(rec.v_bits);
  rm.measurement.trust.verdict = rec.trust >= 0
                                     ? verify::Verdict(rec.trust)
                                     : verify::Verdict::kUnverified;
  if (rec.error_kind >= 0)
    rm.error.emplace(support::SolverErrorKind(rec.error_kind),
                     "restored from journal");
  return true;
}

}  // namespace

SimMonteCarloResult monte_carlo_vmax_sim(const Calibration& cal,
                                         const process::Package& package,
                                         int n_drivers, double rise_time,
                                         bool include_c,
                                         const SimMonteCarloOptions& opts) {
  opts.validate();
  package.validate();
  if (!(rise_time > 0.0))
    throw std::invalid_argument("monte_carlo_vmax_sim: rise_time must be > 0");

  // Draw every sample's factors up front, in a fixed order, so the sample
  // set never depends on which simulations later fail (or get injected
  // faults): survivors stay bit-for-bit comparable across runs.
  std::mt19937 rng(opts.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const auto vary = [&](double sigma) {
    return std::clamp(1.0 + sigma * gauss(rng), 0.2, 1.8);
  };
  SimMonteCarloResult out;
  out.samples.resize(std::size_t(opts.samples));
  for (int i = 0; i < opts.samples; ++i) {
    SimMcSample& s = out.samples[std::size_t(i)];
    s.index = i;
    s.l_factor = vary(opts.sigma_l);
    s.c_factor = vary(opts.sigma_c);
    s.rise_factor = vary(opts.sigma_rise);
    s.width_factor = vary(opts.sigma_width);
  }

  // Run the transient batch: each sample is independent, writes only its
  // own slot, and runs inside a FaultSampleScope so any armed fault plan
  // fires identically regardless of thread assignment or completion order.
  // Per-sample state for the replay: 0 = not run (stopped before it
  // finished — never journaled, a resume re-runs it), 1 = ran here,
  // 2 = restored from the resume set.
  std::vector<ResilientMeasurement> measured(out.samples.size());
  std::vector<unsigned char> state(out.samples.size(), 0);
  support::parallel_for_index(
      opts.threads, out.samples.size(),
      [&](std::size_t i) {
        // Resume first: a journaled sample is restored for free — no
        // simulation, no item-budget charge — and re-recorded so the new
        // journal stays complete.
        if (opts.resume != nullptr) {
          const auto it = opts.resume->find(i);
          if (it != opts.resume->end()) {
            if (!decode_point(it->second, measured[i]))
              throw std::invalid_argument(
                  "monte_carlo_vmax_sim: journal record for sample " +
                  std::to_string(i) + " has out-of-range fields");
            state[i] = 2;
            if (opts.journal != nullptr) opts.journal->record(i, it->second);
            return;
          }
        }
        // The lifecycle gate: claims one item of the budget; false when the
        // context is stopped or the budget is spent — the sample stays
        // not-run.
        if (opts.run_ctx != nullptr && !opts.run_ctx->try_start_item())
          return;

        const support::FaultSampleScope fault_scope(i);
        const SimMcSample& s = out.samples[i];
        process::Package pkg = package;
        pkg.inductance *= s.l_factor;
        pkg.capacitance *= s.c_factor;
        const double tr = rise_time * s.rise_factor;

        circuit::SsnBenchSpec spec;
        spec.tech = cal.tech;
        spec.package = pkg;
        spec.golden = cal.golden;
        spec.n_drivers = n_drivers;
        spec.input_rise_time = tr;
        spec.driver_width_mult = s.width_factor;
        spec.include_package_c = include_c;

        MeasureOptions mopts = opts.measure;
        if (mopts.transient.dt_max <= 0.0) mopts.transient.dt_max = tr / 200.0;
        mopts.transient.run_ctx = opts.run_ctx;

        // The calibrated closed form for this sample: K scales with the
        // driver width, everything else comes from the perturbed package
        // and edge.
        core::SsnScenario scenario =
            make_scenario(cal, pkg, n_drivers, tr, include_c);
        scenario.device.k *= s.width_factor;

        measured[i] = measure_ssn_resilient(
            spec, mopts, opts.recovery,
            opts.analytic_fallback ? &scenario : nullptr);

        // A stop-kind failure means the transient was interrupted
        // mid-flight: the sample is NOT a result. It stays not-run (and is
        // not journaled) so a resumed run re-simulates it from scratch and
        // lands on the uninterrupted outcome.
        if (measured[i].error &&
            support::is_stop_kind(measured[i].error->kind()))
          return;
        state[i] = 1;
        if (opts.journal != nullptr)
          opts.journal->record(i, encode_point(measured[i]));
      },
      opts.run_ctx);

  // Sequential replay in index order: the summary's note ordering and the
  // survivor statistics come out identical for any thread count — and
  // identical between a clean run and an interrupt + resume, because the
  // journal restores exactly the fields this loop reads.
  std::vector<double> survivors;
  survivors.reserve(out.samples.size());
  for (SimMcSample& s : out.samples) {
    const std::size_t idx = std::size_t(s.index);
    if (state[idx] == 0) {
      ++out.summary.not_run;
      continue;
    }
    const ResilientMeasurement& rm = measured[idx];
    out.summary.record("sample=" + std::to_string(s.index), rm.fidelity,
                       rm.error);
    s.fidelity = rm.fidelity;
    s.verdict = rm.measurement.trust.verdict;
    s.completed = true;
    s.resumed = state[idx] == 2;
    ++out.completed;
    if (s.resumed) ++out.resumed;
    if (!rm.ok()) continue;
    s.v_max = rm.measurement.v_max;
    // Fold the sample's trust into the batch report: the first survivor
    // seeds it (the default-constructed report says kUnverified, which
    // merge() could never improve on), the rest merge worst-wins.
    if (survivors.empty())
      out.trust = rm.measurement.trust;
    else
      out.trust.merge(rm.measurement.trust);
    survivors.push_back(s.v_max);
  }

  // Report the stop reason only when it actually cost us samples: a
  // deadline that expires just after the last sample finished did not stop
  // anything, and reporting it would make a completed run look partial.
  if (out.completed < out.samples.size() && opts.run_ctx != nullptr)
    out.stop = opts.run_ctx->stop_reason();
  out.summary.stop = out.stop;
  out.surviving = survivors.size();
  if (!survivors.empty()) {
    out.mean = numeric::mean(survivors);
    out.stddev = survivors.size() > 1 ? numeric::stddev(survivors) : 0.0;
    out.min = numeric::min_value(survivors);
    out.max = numeric::max_value(survivors);
    out.ci95 = survivors.size() > 1
                   ? 1.96 * out.stddev / std::sqrt(double(survivors.size()))
                   : 0.0;
    out.trust.ci95 = out.ci95;
  }
  return out;
}

}  // namespace ssnkit::analysis
