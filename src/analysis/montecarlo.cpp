#include "analysis/montecarlo.hpp"

#include "analysis/design.hpp"
#include "core/lc_model.hpp"
#include "numeric/stats.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace ssnkit::analysis {

void MonteCarloOptions::validate() const {
  if (samples < 2)
    throw std::invalid_argument("MonteCarloOptions: samples must be >= 2");
  for (double s : {sigma_k, sigma_lambda, sigma_vx, sigma_l, sigma_c, sigma_slope})
    if (s < 0.0 || s > 0.5)
      throw std::invalid_argument(
          "MonteCarloOptions: sigmas must be in [0, 0.5] (relative)");
}

MonteCarloResult monte_carlo_vmax(const core::SsnScenario& nominal,
                                  const MonteCarloOptions& opts) {
  opts.validate();
  nominal.validate();

  std::mt19937 rng(opts.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  // Multiplicative factor clamped so no parameter collapses or flips sign
  // in the far tails.
  const auto vary = [&](double value, double sigma) {
    const double factor = std::clamp(1.0 + sigma * gauss(rng), 0.2, 1.8);
    return value * factor;
  };

  const bool with_c = nominal.capacitance > 0.0;
  const core::DampingRegion nominal_region =
      with_c ? core::LcModel(nominal).region()
             : core::DampingRegion::kOverDamped;

  MonteCarloResult out;
  out.samples.reserve(std::size_t(opts.samples));
  int flips = 0;
  for (int i = 0; i < opts.samples; ++i) {
    core::SsnScenario s = nominal;
    s.device.k = vary(s.device.k, opts.sigma_k);
    s.device.lambda = std::max(1.0, vary(s.device.lambda, opts.sigma_lambda));
    s.device.vx = vary(s.device.vx, opts.sigma_vx);
    s.inductance = vary(s.inductance, opts.sigma_l);
    if (with_c) s.capacitance = vary(s.capacitance, opts.sigma_c);
    s.slope = vary(s.slope, opts.sigma_slope);
    out.samples.push_back(predict_vmax(s));
    if (with_c && core::LcModel(s).region() != nominal_region) ++flips;
  }

  out.mean = numeric::mean(out.samples);
  out.stddev = numeric::stddev(out.samples);
  out.min = numeric::min_value(out.samples);
  out.max = numeric::max_value(out.samples);
  out.p95 = numeric::quantile(out.samples, 0.95);
  out.p99 = numeric::quantile(out.samples, 0.99);
  out.region_flip_fraction = double(flips) / double(opts.samples);
  return out;
}

}  // namespace ssnkit::analysis
