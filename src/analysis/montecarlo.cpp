#include "analysis/montecarlo.hpp"

#include "analysis/design.hpp"
#include "core/lc_model.hpp"
#include "numeric/stats.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace ssnkit::analysis {

void MonteCarloOptions::validate() const {
  if (samples < 2)
    throw std::invalid_argument("MonteCarloOptions: samples must be >= 2");
  for (double s : {sigma_k, sigma_lambda, sigma_vx, sigma_l, sigma_c, sigma_slope})
    if (s < 0.0 || s > 0.5)
      throw std::invalid_argument(
          "MonteCarloOptions: sigmas must be in [0, 0.5] (relative)");
}

MonteCarloResult monte_carlo_vmax(const core::SsnScenario& nominal,
                                  const MonteCarloOptions& opts) {
  opts.validate();
  nominal.validate();

  const bool with_c = nominal.capacitance > 0.0;
  const core::DampingRegion nominal_region =
      with_c ? core::LcModel(nominal).region()
             : core::DampingRegion::kOverDamped;

  // Draw every sample's multiplicative factors up front, in the exact order
  // the serial loop consumed the Gaussian stream (k, lambda, vx, L, [C],
  // S), clamped so no parameter collapses or flips sign in the far tails.
  // Hoisting the draws is what makes the parallel evaluation below
  // bit-identical to serial for any thread count.
  std::mt19937 rng(opts.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const auto draw = [&](double sigma) {
    return std::clamp(1.0 + sigma * gauss(rng), 0.2, 1.8);
  };
  const std::size_t stride = with_c ? 6 : 5;
  std::vector<double> factors(std::size_t(opts.samples) * stride);
  for (int i = 0; i < opts.samples; ++i) {
    double* f = &factors[std::size_t(i) * stride];
    std::size_t k = 0;
    f[k++] = draw(opts.sigma_k);
    f[k++] = draw(opts.sigma_lambda);
    f[k++] = draw(opts.sigma_vx);
    f[k++] = draw(opts.sigma_l);
    if (with_c) f[k++] = draw(opts.sigma_c);
    f[k++] = draw(opts.sigma_slope);
  }

  MonteCarloResult out;
  out.samples.resize(std::size_t(opts.samples));
  std::vector<unsigned char> flipped(std::size_t(opts.samples), 0);
  support::parallel_for_index(
      opts.threads, std::size_t(opts.samples), [&](std::size_t i) {
        const double* f = &factors[i * stride];
        core::SsnScenario s = nominal;
        std::size_t k = 0;
        s.device.k *= f[k++];
        s.device.lambda = std::max(1.0, s.device.lambda * f[k++]);
        s.device.vx *= f[k++];
        s.inductance *= f[k++];
        if (with_c) s.capacitance *= f[k++];
        s.slope *= f[k++];
        out.samples[i] = predict_vmax(s);
        if (with_c && core::LcModel(s).region() != nominal_region)
          flipped[i] = 1;
      });
  int flips = 0;
  for (unsigned char fl : flipped) flips += fl;

  out.mean = numeric::mean(out.samples);
  out.stddev = numeric::stddev(out.samples);
  out.min = numeric::min_value(out.samples);
  out.max = numeric::max_value(out.samples);
  out.p95 = numeric::quantile(out.samples, 0.95);
  out.p99 = numeric::quantile(out.samples, 0.99);
  out.region_flip_fraction = double(flips) / double(opts.samples);
  return out;
}

void SimMonteCarloOptions::validate() const {
  if (samples < 1)
    throw std::invalid_argument("SimMonteCarloOptions: samples must be >= 1");
  for (double s : {sigma_l, sigma_c, sigma_rise, sigma_width})
    if (s < 0.0 || s > 0.5)
      throw std::invalid_argument(
          "SimMonteCarloOptions: sigmas must be in [0, 0.5] (relative)");
}

SimMonteCarloResult monte_carlo_vmax_sim(const Calibration& cal,
                                         const process::Package& package,
                                         int n_drivers, double rise_time,
                                         bool include_c,
                                         const SimMonteCarloOptions& opts) {
  opts.validate();
  package.validate();
  if (!(rise_time > 0.0))
    throw std::invalid_argument("monte_carlo_vmax_sim: rise_time must be > 0");

  // Draw every sample's factors up front, in a fixed order, so the sample
  // set never depends on which simulations later fail (or get injected
  // faults): survivors stay bit-for-bit comparable across runs.
  std::mt19937 rng(opts.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const auto vary = [&](double sigma) {
    return std::clamp(1.0 + sigma * gauss(rng), 0.2, 1.8);
  };
  SimMonteCarloResult out;
  out.samples.resize(std::size_t(opts.samples));
  for (int i = 0; i < opts.samples; ++i) {
    SimMcSample& s = out.samples[std::size_t(i)];
    s.index = i;
    s.l_factor = vary(opts.sigma_l);
    s.c_factor = vary(opts.sigma_c);
    s.rise_factor = vary(opts.sigma_rise);
    s.width_factor = vary(opts.sigma_width);
  }

  // Run the transient batch: each sample is independent, writes only its
  // own slot, and runs inside a FaultSampleScope so any armed fault plan
  // fires identically regardless of thread assignment or completion order.
  std::vector<ResilientMeasurement> measured(out.samples.size());
  support::parallel_for_index(
      opts.threads, out.samples.size(), [&](std::size_t i) {
        const support::FaultSampleScope fault_scope(i);
        const SimMcSample& s = out.samples[i];
        process::Package pkg = package;
        pkg.inductance *= s.l_factor;
        pkg.capacitance *= s.c_factor;
        const double tr = rise_time * s.rise_factor;

        circuit::SsnBenchSpec spec;
        spec.tech = cal.tech;
        spec.package = pkg;
        spec.golden = cal.golden;
        spec.n_drivers = n_drivers;
        spec.input_rise_time = tr;
        spec.driver_width_mult = s.width_factor;
        spec.include_package_c = include_c;

        MeasureOptions mopts = opts.measure;
        if (mopts.transient.dt_max <= 0.0) mopts.transient.dt_max = tr / 200.0;

        // The calibrated closed form for this sample: K scales with the
        // driver width, everything else comes from the perturbed package
        // and edge.
        core::SsnScenario scenario =
            make_scenario(cal, pkg, n_drivers, tr, include_c);
        scenario.device.k *= s.width_factor;

        measured[i] = measure_ssn_resilient(
            spec, mopts, opts.recovery,
            opts.analytic_fallback ? &scenario : nullptr);
      });

  // Sequential replay in index order: the summary's note ordering and the
  // survivor statistics come out identical for any thread count.
  std::vector<double> survivors;
  survivors.reserve(out.samples.size());
  for (SimMcSample& s : out.samples) {
    const ResilientMeasurement& rm = measured[std::size_t(s.index)];
    out.summary.record("sample=" + std::to_string(s.index), rm.fidelity,
                       rm.error);
    s.fidelity = rm.fidelity;
    if (!rm.ok()) continue;
    s.v_max = rm.measurement.v_max;
    survivors.push_back(s.v_max);
  }

  out.surviving = survivors.size();
  if (!survivors.empty()) {
    out.mean = numeric::mean(survivors);
    out.stddev = survivors.size() > 1 ? numeric::stddev(survivors) : 0.0;
    out.min = numeric::min_value(survivors);
    out.max = numeric::max_value(survivors);
  }
  return out;
}

}  // namespace ssnkit::analysis
