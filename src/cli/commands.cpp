#include "cli/commands.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/design.hpp"
#include "analysis/measure.hpp"
#include "analysis/montecarlo.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/sweeps.hpp"
#include "circuit/netlist.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "waveform/render.hpp"
#include "support/atomic_file.hpp"
#include "io/table.hpp"
#include "sim/ac.hpp"
#include "sim/engine.hpp"
#include "support/faultinject.hpp"
#include "support/journal.hpp"
#include "support/runcontext.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <mutex>
#include <ostream>
#include <sstream>

namespace ssnkit::cli {

namespace {

process::GoldenKind golden_from(const Args& args) {
  const std::string g = args.get_or("golden", "alpha");
  if (g == "alpha") return process::GoldenKind::kAlphaPower;
  if (g == "bsim") return process::GoldenKind::kBsimLite;
  throw std::invalid_argument("--golden must be 'alpha' or 'bsim'");
}

process::Technology tech_from(const Args& args) {
  return process::technology_by_name(args.get_or("tech", "180nm"));
}

process::Package package_from(const Args& args) {
  process::Package pkg = process::package_by_name(args.get_or("package", "pga"));
  const int pads = args.get_int("pads", 1);
  if (pads > 1) pkg = pkg.with_ground_pads(pads);
  if (args.has("l")) pkg.inductance = args.get_double("l", pkg.inductance);
  if (args.has("c")) pkg.capacitance = args.get_double("c", pkg.capacitance);
  return pkg;
}

void warn_unused(const Args& args, std::ostream& os) {
  for (const auto& key : args.unused_keys())
    os << "warning: unrecognized option --" << key << "\n";
}

// --- job lifecycle wiring ---------------------------------------------------

/// One RunContext configured from the lifecycle flags, with the
/// SIGINT/SIGTERM watcher installed for its lifetime. Every batch command
/// constructs one: even without flags, the watcher is what turns Ctrl-C
/// into a graceful drain instead of a lost batch.
struct Lifecycle {
  support::RunContext ctx;
  support::ScopedSignalCancel watcher{ctx};

  explicit Lifecycle(const Args& args) {
    double seconds = -1.0;
    if (args.has("deadline"))
      seconds = args.get_double("deadline", -1.0);
    else if (args.has("max-wall"))
      seconds = args.get_double("max-wall", -1.0);
    if (seconds >= 0.0) ctx.set_timeout(seconds);
    ctx.set_item_budget(args.get_int("max-samples", -1));
  }
};

/// Standard epilogue for a batch that may have been stopped early: reports
/// what was (not) done and maps a stop onto kExitInterrupted. A completed
/// run returns 0 untouched.
int finish_batch(std::ostream& os, support::StopReason stop,
                 std::size_t completed, std::size_t total,
                 const char* what, const std::string& journal_path) {
  if (stop == support::StopReason::kNone) return 0;
  os << "interrupted (" << support::to_string(stop) << "): " << completed
     << "/" << total << " " << what << " done";
  const int sig = support::ScopedSignalCancel::last_signal();
  if (sig != 0) os << " [signal " << sig << "]";
  os << '\n';
  if (!journal_path.empty())
    os << "resume with: --resume " << journal_path << '\n';
  return kExitInterrupted;
}

/// FNV-1a over the canonical batch configuration. Doubles enter as their
/// exact bit patterns: "the same configuration" means the same IEEE values,
/// not the same rounded text. Thread count is deliberately absent — results
/// are bit-identical for any value, so a journal written at --threads 8 is
/// valid for a resume at --threads 1.
std::uint64_t batch_config_hash(const std::string& kind,
                                const std::string& tech_name,
                                const std::string& golden,
                                const process::Package& pkg, int n, double tr,
                                bool with_c, long long items, unsigned seed) {
  std::string s = kind;
  s += '|';
  s += tech_name;
  s += '|';
  s += golden;
  s += '|';
  s += support::hex_u64(support::double_bits(pkg.inductance));
  s += '|';
  s += support::hex_u64(support::double_bits(pkg.capacitance));
  s += '|';
  s += std::to_string(n);
  s += '|';
  s += support::hex_u64(support::double_bits(tr));
  s += '|';
  s += with_c ? 'c' : '-';
  s += '|';
  s += std::to_string(items);
  s += '|';
  s += std::to_string(seed);
  return support::fnv1a(s);
}

/// The --journal / --resume plumbing shared by mc --sim and the sweeps:
/// loads + validates a resume journal, and opens the checkpoint journal
/// (defaulting to the resume path, so an interrupted resume keeps
/// checkpointing into the same file).
struct JournalSetup {
  std::optional<support::BatchJournal> journal;
  std::map<std::size_t, support::PointRecord> resume_items;
  bool resuming = false;
  std::string path;  ///< checkpoint path ("" = no journal)
};

// Out-param because BatchJournal is pinned in place (it owns a mutex).
void setup_journal(const Args& args, const std::string& kind,
                   std::uint64_t config_hash, std::size_t total,
                   JournalSetup& out, std::ostream& os) {
  out.path = args.get_or("journal", "");
  const std::string resume = args.get_or("resume", "");
  if (!resume.empty()) {
    const support::BatchJournal::Loaded loaded =
        support::BatchJournal::load(resume);
    support::BatchJournal::validate_against(loaded, kind, config_hash, total,
                                            resume);
    // A torn trailing record (power loss mid-checkpoint) is discarded, not
    // fatal; tell the user which item will re-run.
    for (const std::string& warning : loaded.warnings)
      os << "warning: " << warning << "\n";
    out.resume_items = loaded.items;
    out.resuming = true;
    if (out.path.empty()) out.path = resume;
  }
  if (!out.path.empty())
    out.journal.emplace(out.path, kind, config_hash, total);
}

/// Render rows into a CSV string at full double precision (17 significant
/// digits round-trips every double exactly) and publish it atomically.
/// Shared by every --out artifact so "clean run" and "interrupt + resume"
/// can be compared byte-for-byte.
class ArtifactCsv {
 public:
  explicit ArtifactCsv(const std::string& header) {
    ss_.precision(17);
    ss_ << header << '\n';
  }
  std::ostringstream& row() { return ss_; }
  void write(const std::string& path) const {
    support::write_file_atomic(path, ss_.str());
  }

 private:
  std::ostringstream ss_;
};

}  // namespace

const char* usage() {
  return R"(ssnkit — simultaneous switching noise estimation (Ding & Mazumder, DATE 2002)

usage: ssnkit <command> [options]

commands:
  calibrate   fit the ASDM (K, lambda, V_x) to a process' golden device
  estimate    closed-form max SSN for a switching event (+ --verify to simulate)
  sweep-n     max SSN vs driver count (CSV on stdout)
  sweep-c     max SSN vs pad capacitance (CSV on stdout)
  design      ground pads / max drivers / slope budget for a noise budget
  mc          Monte Carlo corner distribution of the max SSN
  ac          ground-path impedance sweep |Z(f)| (CSV on stdout)
  simulate    run a SPICE-flavoured netlist transient (.tran required)
  serve       long-lived analysis daemon: newline-delimited JSON requests
              on a Unix socket (--socket PATH) or stdin (docs/SERVING.md)

common options:
  --tech 180nm|250nm|350nm     process (default 180nm)
  --golden alpha|bsim          golden device family (default alpha)
  --package pga|qfp|wire_bond|flip_chip   (default pga)
  --pads K                     parallel ground pads (default 1)
  --l 5n / --c 1p              override package L / C
  --n 8                        simultaneously switching drivers
  --tr 0.1n                    input rise time
  --no-c                       drop the pad capacitance (Section 3 model)
  --threads T                  (sweep-n, sweep-c, mc) worker threads for the
                               batch; 1 = serial (default), 0 = auto.
                               Results are identical for any value
  --extended                   also report the post-ramp (true) peak
  --sim                        (mc) simulator-backed samples with the
                               recovery ladder instead of the closed forms

every simulated result carries a trust verdict (verified / refined /
unverified / degraded): the solve residual is re-checked, physics
invariants (passivity, Table 1 peak consistency) are enforced, and the
closed forms are cross-checked against the simulator at the paper's 3 %
bar. mc results additionally report the 95 % confidence interval on the
mean. See docs/ROBUSTNESS.md.

job lifecycle (sweep-n, sweep-c, mc, simulate):
  --deadline S | --max-wall S  stop cooperatively after S seconds of wall
                               clock; partial results are kept and flushed
  --max-samples K              (mc --sim, sweeps) start at most K new items
                               (resumed items are free)
  --journal FILE               (mc --sim, sweeps) checkpoint each finished
                               item to FILE (atomic rewrite, crash-safe)
  --resume FILE                restore finished items from FILE instead of
                               re-running them; the final result is
                               bit-identical to an uninterrupted run.
                               Keeps checkpointing into FILE unless
                               --journal names a different file
  --out FILE                   write the result CSV to FILE atomically at
                               full precision (clean vs resumed runs are
                               byte-identical)
  SIGINT/SIGTERM               first signal drains the batch gracefully
                               (journal + partial CSV flushed); second
                               signal hard-kills

serve options:
  --socket PATH                listen on a Unix socket (default: stdin pipe)
  --queue N                    admission bound; beyond it requests are shed
                               with SSN-E064 + retry_after_ms (default 64)
  --cache N                    result-cache entries, 0 disables (default 4096)
  --cache-file FILE            crash-safe cache spill; a restarted daemon
                               warms from it
  --request-deadline S         default per-request budget (0 = none)
  --drain S                    drain budget on SIGTERM before in-flight
                               requests are cancelled with SSN-E066
                               (default 5); clean drain exits 0
  --isolate MODE               thread (default) runs requests in-process;
                               process runs each on a supervised sandboxed
                               worker: crashes/hangs/OOMs fail only their
                               own request (SSN-E068/E069), repeat-offender
                               requests are quarantined (SSN-E070)
  --workers K                  process mode: worker processes (default:
                               the resolved --threads count)
  --worker-mem MB              process mode: RLIMIT_AS per worker, 0 = none
                               (default 1024)
  --worker-cpu S               process mode: RLIMIT_CPU per worker, 0 = none
  --grace S                    process mode: wall-clock slack past a
                               request's deadline before the watchdog
                               SIGKILLs its worker (default 0.5)
  --quarantine N               process mode: worker deaths one request key
                               may cause before it is refused (default 2)
  --quarantine-file FILE       process mode: journal of quarantined request
                               lines (replayable for offline repro)

exit codes:
  0  success        1  error          2  usage
  75 interrupted (deadline, signal, or item budget; partial results were
     written — re-run with --resume to finish)
)";
}

int cmd_calibrate(const Args& args, std::ostream& os) {
  const auto tech = tech_from(args);
  const auto cal = analysis::calibrate(tech, golden_from(args));
  io::TextTable t({"parameter", "value"});
  t.add_row({std::string("technology"), tech.name});
  t.add_row({std::string("K [A/V]"), io::si_format(cal.asdm.params.k, 5)});
  t.add_row({std::string("lambda"), io::si_format(cal.asdm.params.lambda, 5)});
  t.add_row({std::string("V_x [V]"), io::si_format(cal.asdm.params.vx, 5)});
  t.add_row({std::string("fit max error [% of Imax]"),
             io::si_format(100.0 * cal.asdm.max_rel_error, 3)});
  t.add_row({std::string("alpha-power B [A/V^a]"),
             io::si_format(cal.baseline_b(), 5)});
  t.add_row({std::string("alpha-power V_T [V]"),
             io::si_format(cal.alpha.params.vt0, 4)});
  t.add_row({std::string("alpha-power alpha"),
             io::si_format(cal.alpha.params.alpha, 4)});
  os << t.to_string();
  warn_unused(args, os);
  return 0;
}

int cmd_estimate(const Args& args, std::ostream& os) {
  const auto tech = tech_from(args);
  const auto pkg = package_from(args);
  const int n = args.get_int("n", 8);
  const double tr = args.get_double("tr", 0.1e-9);
  const bool with_c = !args.flag("no-c") && pkg.capacitance > 0.0;

  const auto cal = analysis::calibrate(tech, golden_from(args));
  const auto scenario = analysis::make_scenario(cal, pkg, n, tr, with_c);

  io::TextTable t({"quantity", "value"});
  t.add_row({std::string("drivers (N)"), std::to_string(n)});
  t.add_row({std::string("L / C"), io::si_format(pkg.inductance) + "H / " +
                                       (with_c ? io::si_format(pkg.capacitance) +
                                                     "F"
                                               : std::string("ignored"))});
  t.add_row({std::string("slope S"), io::si_format(scenario.slope) + "V/s"});
  t.add_row({std::string("beta = N*L*S"), io::si_format(scenario.beta(), 4)});
  if (with_c) {
    const core::LcModel model(scenario);
    t.add_row({std::string("zeta"), io::si_format(model.zeta(), 4)});
    t.add_row({std::string("C_crit"),
               io::si_format(scenario.critical_capacitance()) + "F"});
    t.add_row({std::string("Table 1 case"), core::to_string(model.max_case())});
    t.add_row({std::string("max SSN (LC model)"),
               io::si_format(model.v_max(), 5) + "V"});
    if (args.flag("extended")) {
      const auto ext = model.v_max_extended();
      t.add_row({std::string("max SSN incl. post-ramp"),
                 io::si_format(ext.v, 5) + "V" +
                     (ext.after_ramp ? " (peak after t_r)" : "")});
    }
  } else {
    const core::LOnlyModel model(scenario);
    t.add_row({std::string("max SSN (Eqn 7)"),
               io::si_format(model.v_max(), 5) + "V"});
  }
  const auto sens = with_c ? analysis::lc_sensitivities(scenario)
                           : analysis::l_only_sensitivities(scenario);
  t.add_row({std::string("elasticity wrt L / S"),
             io::si_format(sens.wrt_inductance, 3) + " / " +
                 io::si_format(sens.wrt_slope, 3)});
  os << t.to_string();

  if (args.flag("verify")) {
    circuit::SsnBenchSpec spec;
    spec.tech = tech;
    spec.package = pkg;
    spec.golden = cal.golden;
    spec.n_drivers = n;
    spec.input_rise_time = tr;
    spec.include_package_c = with_c;
    auto m = analysis::measure_ssn(spec);
    // Physics invariants + the paper's 3 % closed-form-vs-simulator bar,
    // folded into the measurement's trust report before it is shown.
    analysis::verify_measurement(m, scenario);
    const double v_model = with_c ? core::LcModel(scenario).v_max()
                                  : core::LOnlyModel(scenario).v_max();
    verify::cross_check_closed_form(v_model, m.v_max, m.trust);
    os << "simulated max SSN: " << io::si_format(m.v_max, 5) << "V ("
       << m.stats.accepted_steps << " steps)\n";
    os << "trust: " << m.trust.summary() << "\n";
  }
  warn_unused(args, os);
  return 0;
}

int cmd_sweep_n(const Args& args, std::ostream& os) {
  analysis::DriverSweepConfig config;
  config.tech = tech_from(args);
  config.package = package_from(args);
  config.golden = golden_from(args);
  config.input_rise_time = args.get_double("tr", 0.1e-9);
  config.include_package_c = !args.flag("no-c");
  const int max_n = args.get_int("max-n", 16);
  config.driver_counts.clear();
  for (int n = 1; n <= max_n; n += (n < 4 ? 1 : 2))
    config.driver_counts.push_back(n);
  config.threads = args.get_int("threads", 1);

  Lifecycle life(args);
  config.run_ctx = &life.ctx;
  const std::uint64_t hash = batch_config_hash(
      "sweep-n", config.tech.name, args.get_or("golden", "alpha"),
      config.package, max_n, config.input_rise_time, config.include_package_c,
      static_cast<long long>(config.driver_counts.size()), 0);
  JournalSetup js;
  setup_journal(args, "sweep-n", hash, config.driver_counts.size(), js, os);
  if (js.journal) config.journal = &*js.journal;
  if (js.resuming) config.resume = &js.resume_items;

  const auto result = analysis::run_driver_sweep(config);
  os << "n,sim,this_work,vemuru,song,senthinathan\n";
  for (const auto& r : result.rows)
    os << r.n << ',' << r.sim << ',' << r.this_work << ',' << r.vemuru << ','
       << r.song << ',' << r.senthinathan << '\n';
  if (!result.summary.all_full_fidelity() || result.summary.not_run > 0)
    os << "# resilience: " << result.summary.to_string() << '\n';

  const std::string out_path = args.get_or("out", "");
  if (!out_path.empty()) {
    ArtifactCsv csv("n,sim,this_work,vemuru,song,senthinathan,fidelity");
    for (const auto& r : result.rows)
      csv.row() << r.n << ',' << r.sim << ',' << r.this_work << ','
                << r.vemuru << ',' << r.song << ',' << r.senthinathan << ','
                << int(r.fidelity) << '\n';
    csv.write(out_path);
  }
  warn_unused(args, os);
  return finish_batch(os, result.summary.stop,
                      config.driver_counts.size() - result.summary.not_run,
                      config.driver_counts.size(), "points", js.path);
}

int cmd_sweep_c(const Args& args, std::ostream& os) {
  analysis::CapacitanceSweepConfig config;
  config.tech = tech_from(args);
  config.package = package_from(args);
  config.golden = golden_from(args);
  config.n_drivers = args.get_int("n", 8);
  config.input_rise_time = args.get_double("tr", 0.1e-9);
  config.threads = args.get_int("threads", 1);
  config.capacitances = analysis::default_capacitance_sweep();

  Lifecycle life(args);
  config.run_ctx = &life.ctx;
  const std::uint64_t hash = batch_config_hash(
      "sweep-c", config.tech.name, args.get_or("golden", "alpha"),
      config.package, config.n_drivers, config.input_rise_time, true,
      static_cast<long long>(config.capacitances.size()), 0);
  JournalSetup js;
  setup_journal(args, "sweep-c", hash, config.capacitances.size(), js, os);
  if (js.journal) config.journal = &*js.journal;
  if (js.resuming) config.resume = &js.resume_items;

  const auto result = analysis::run_capacitance_sweep(config);
  os << "c,zeta,sim,lc_model,l_only,err_lc,err_l_only\n";
  for (const auto& r : result.rows)
    os << r.c << ',' << r.zeta << ',' << r.sim << ',' << r.lc_model << ','
       << r.l_only << ',' << r.err_lc << ',' << r.err_l_only << '\n';
  if (!result.summary.all_full_fidelity() || result.summary.not_run > 0)
    os << "# resilience: " << result.summary.to_string() << '\n';

  const std::string out_path = args.get_or("out", "");
  if (!out_path.empty()) {
    ArtifactCsv csv("c,zeta,sim,lc_model,l_only,err_lc,err_l_only,fidelity");
    for (const auto& r : result.rows)
      csv.row() << r.c << ',' << r.zeta << ',' << r.sim << ',' << r.lc_model
                << ',' << r.l_only << ',' << r.err_lc << ',' << r.err_l_only
                << ',' << int(r.fidelity) << '\n';
    csv.write(out_path);
  }
  warn_unused(args, os);
  return finish_batch(os, result.summary.stop,
                      config.capacitances.size() - result.summary.not_run,
                      config.capacitances.size(), "points", js.path);
}

int cmd_design(const Args& args, std::ostream& os) {
  const auto tech = tech_from(args);
  const auto pkg = package_from(args);
  const int n = args.get_int("n", 8);
  const double tr = args.get_double("tr", 0.1e-9);
  const double budget = args.get_double("budget", 0.15 * tech.vdd);

  const auto cal = analysis::calibrate(tech, golden_from(args));
  const auto scenario = analysis::make_scenario(cal, pkg, n, tr, true);

  io::TextTable t({"design query", "answer"});
  t.add_row({std::string("noise budget"), io::si_format(budget, 4) + "V"});
  t.add_row({std::string("predicted max SSN"),
             io::si_format(analysis::predict_vmax(scenario), 4) + "V"});
  try {
    t.add_row({std::string("ground pads needed"),
               std::to_string(analysis::required_ground_pads(scenario, pkg,
                                                             budget))});
  } catch (const std::runtime_error&) {
    t.add_row({std::string("ground pads needed"), std::string("> 64")});
  }
  t.add_row({std::string("max simultaneous drivers"),
             std::to_string(analysis::max_simultaneous_drivers(scenario,
                                                               budget))});
  try {
    t.add_row({std::string("max input slope"),
               io::si_format(analysis::max_input_slope(scenario, budget)) +
                   "V/s"});
  } catch (const std::runtime_error&) {
    t.add_row({std::string("max input slope"), std::string("below 1e8 V/s")});
  }
  os << t.to_string();
  warn_unused(args, os);
  return 0;
}

int cmd_mc(const Args& args, std::ostream& os) {
  const auto tech = tech_from(args);
  const auto pkg = package_from(args);
  const auto cal = analysis::calibrate(tech, golden_from(args));
  const int n = args.get_int("n", 8);
  const double tr = args.get_double("tr", 0.1e-9);
  const bool with_c = !args.flag("no-c");

  if (args.flag("sim")) {
    // Simulator-backed Monte Carlo: each sample is a full MNA transient run
    // under the recovery ladder; failures degrade instead of aborting.
    analysis::SimMonteCarloOptions opts;
    opts.samples = args.get_int("samples", 16);
    opts.seed = unsigned(args.get_int("seed", 12345));
    opts.threads = args.get_int("threads", 1);

    Lifecycle life(args);
    opts.run_ctx = &life.ctx;
    const std::uint64_t hash = batch_config_hash(
        "mc-sim", tech.name, args.get_or("golden", "alpha"), pkg, n, tr,
        with_c, opts.samples, opts.seed);
    JournalSetup js;
    setup_journal(args, "mc-sim", hash, std::size_t(opts.samples), js, os);
    if (js.journal) opts.journal = &*js.journal;
    if (js.resuming) opts.resume = &js.resume_items;

    const auto mc = analysis::monte_carlo_vmax_sim(cal, pkg, n, tr, with_c, opts);
    io::TextTable t({"statistic", "V_max [V]"});
    t.add_row({std::string("samples (surviving/total)"),
               std::to_string(mc.surviving) + "/" +
                   std::to_string(mc.samples.size())});
    t.add_row({std::string("mean"), io::si_format(mc.mean, 4)});
    t.add_row({std::string("sigma"), io::si_format(mc.stddev, 4)});
    t.add_row({std::string("min / max"),
               io::si_format(mc.min, 4) + " / " + io::si_format(mc.max, 4)});
    t.add_row({std::string("95% CI (mean +/-)"), io::si_format(mc.ci95, 4)});
    os << t.to_string();
    os << "trust: " << mc.trust.summary() << '\n';
    os << "resilience: " << mc.summary.to_string() << '\n';
    for (const auto& note : mc.summary.notes) os << "  " << note << '\n';
    if (mc.resumed > 0)
      os << "resumed " << mc.resumed << " samples from "
         << args.get_or("resume", js.path) << '\n';

    // The CSV artifact holds only per-sample *outcomes*: identical between
    // a clean run and an interrupt + resume (only completed rows appear).
    const std::string out_path = args.get_or("out", "");
    if (!out_path.empty()) {
      ArtifactCsv csv(
          "index,l_factor,c_factor,rise_factor,width_factor,fidelity,v_max");
      for (const auto& s : mc.samples) {
        if (!s.completed) continue;
        csv.row() << s.index << ',' << s.l_factor << ',' << s.c_factor << ','
                  << s.rise_factor << ',' << s.width_factor << ','
                  << int(s.fidelity) << ',' << s.v_max << '\n';
      }
      csv.write(out_path);
    }
    warn_unused(args, os);
    return finish_batch(os, mc.stop, mc.completed, mc.samples.size(),
                        "samples", js.path);
  }

  const auto scenario = analysis::make_scenario(cal, pkg, n, tr, with_c);

  analysis::MonteCarloOptions opts;
  opts.samples = args.get_int("samples", 1000);
  opts.seed = unsigned(args.get_int("seed", 12345));
  opts.threads = args.get_int("threads", 1);

  Lifecycle life(args);
  opts.run_ctx = &life.ctx;
  const auto mc = analysis::monte_carlo_vmax(scenario, opts);

  io::TextTable t({"statistic", "V_max [V]"});
  t.add_row({std::string("samples"), std::to_string(mc.completed) + "/" +
                                         std::to_string(opts.samples)});
  t.add_row({std::string("mean"), io::si_format(mc.mean, 4)});
  t.add_row({std::string("sigma"), io::si_format(mc.stddev, 4)});
  t.add_row({std::string("min / max"),
             io::si_format(mc.min, 4) + " / " + io::si_format(mc.max, 4)});
  t.add_row({std::string("p95"), io::si_format(mc.p95, 4)});
  t.add_row({std::string("p99"), io::si_format(mc.p99, 4)});
  t.add_row({std::string("95% CI (mean +/-)"), io::si_format(mc.ci95, 4)});
  t.add_row({std::string("damping-region flips"),
             io::si_format(100.0 * mc.region_flip_fraction, 3) + "%"});
  os << t.to_string();
  warn_unused(args, os);
  return finish_batch(os, mc.stop, mc.completed, std::size_t(opts.samples),
                      "samples", "");
}

int cmd_ac(const Args& args, std::ostream& os) {
  // Ground-path impedance seen by the drivers, with the bank linearized
  // mid-switching (see bench_ac_impedance for the full study).
  const auto tech = tech_from(args);
  const auto pkg = package_from(args);
  const int n = args.get_int("n", 8);

  circuit::Circuit ckt;
  const circuit::NodeId n_vdd = ckt.node("vdd");
  const circuit::NodeId n_vssi = ckt.node("vssi");
  ckt.add_vsource("Vdd", n_vdd, circuit::kGround, waveform::Dc{tech.vdd});
  ckt.add_inductor("Lgnd", n_vssi, circuit::kGround, pkg.inductance);
  if (pkg.capacitance > 0.0)
    ckt.add_capacitor("Cpad", n_vssi, circuit::kGround, pkg.capacitance);
  std::shared_ptr<const devices::MosfetModel> nmos(
      tech.make_golden(golden_from(args)));
  for (int i = 0; i < n; ++i) {
    const std::string idx = std::to_string(i);
    const circuit::NodeId in = ckt.node("in" + idx);
    const circuit::NodeId out = ckt.node("out" + idx);
    ckt.add_vsource("Vin" + idx, in, circuit::kGround,
                    waveform::Dc{0.5 * tech.vdd + 0.35});
    ckt.add_mosfet("Mn" + idx, out, in, n_vssi, circuit::kGround, nmos);
    ckt.add_resistor("Rload" + idx, n_vdd, out, 200.0);
    ckt.add_capacitor("Cl" + idx, out, circuit::kGround, tech.load_cap);
  }
  auto& probe = ckt.add_isource("Iprobe", circuit::kGround, n_vssi,
                                waveform::Dc{0.0});
  probe.set_ac(1.0);

  sim::AcOptions opts;
  opts.f_start = args.get_double("fstart", 1e8);
  opts.f_stop = args.get_double("fstop", 1e11);
  opts.points_per_decade = args.get_int("ppd", 40);
  const auto res = sim::run_ac(ckt, opts);
  const auto mag = res.magnitude("vssi");
  const auto phase = res.phase_deg("vssi");
  os << "freq,z_mag,z_phase_deg\n";
  for (std::size_t i = 0; i < res.point_count(); ++i)
    os << res.frequencies()[i] << ',' << mag[i] << ',' << phase[i] << '\n';
  warn_unused(args, os);
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& os) {
  if (args.positional().empty())
    throw std::invalid_argument("simulate: need a netlist file");
  const std::string& path = args.positional().front();
  circuit::ParseOptions popts;
  popts.filename = path;
  std::ifstream in(path, std::ios::ate);
  if (!in)
    throw support::IoError(support::IoError::Kind::kOpenFailed, path, "cannot open");
  // Reject oversized files before slurping them into memory; the parser
  // would refuse anyway, but only after the allocation.
  const auto size = in.tellg();
  if (size >= 0 && std::size_t(size) > popts.limits.max_input_bytes) {
    io::DiagnosticSink sink;
    sink.error(support::SrcLoc{path, 0, 0}, "SSN-E030",
               "netlist file is " + std::to_string(size) + " bytes, over the " +
                   std::to_string(popts.limits.max_input_bytes) +
                   " byte limit");
    throw io::ParseError(sink);
  }
  in.seekg(0);
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parse_result = circuit::parse_netlist_ex(ss.str(), popts);
  for (const auto& d : parse_result.diagnostics.diagnostics())
    if (d.severity == io::Severity::kWarning) os << d.format() << "\n";
  if (!parse_result.ok) throw io::ParseError(parse_result.diagnostics);
  auto& parsed = parse_result.netlist;
  if (!parsed.tran)
    throw std::invalid_argument("simulate: netlist has no .tran directive");

  sim::TransientOptions topts;
  topts.t_stop = parsed.tran->tstop;
  topts.dt_initial = parsed.tran->tstep;

  // Lifecycle: Ctrl-C / --deadline stop the transient at an accepted-step
  // boundary with the partial waveform intact; any other solver failure
  // still throws (typed) exactly as before.
  Lifecycle life(args);
  topts.run_ctx = &life.ctx;
  const auto run = sim::run_transient_ex(parsed.circuit, topts);
  if (run.error && !support::is_stop_kind(run.error->kind()))
    throw *run.error;
  const auto& result = run.result;

  const std::string probe = args.get_or("probe", "");
  if (!probe.empty() && result.point_count() == 0) {
    // A run stopped before the first accepted step has nothing to chart.
    os << probe << ": no points\n";
  } else if (!probe.empty()) {
    if (!result.has_signal(probe))
      throw std::invalid_argument("simulate: no signal '" + probe + "'");
    const auto wave = result.waveform(probe);
    io::ChartOptions copts;
    copts.title = "v(" + probe + ")";
    copts.y_label = probe;
    os << waveform::ascii_chart(wave, copts);
    os << probe << ": min " << wave.minimum().value << ", max "
       << wave.maximum().value << "\n";
  } else {
    // CSV of everything.
    os << "time";
    for (const auto& name : result.signal_names()) os << ',' << name;
    os << '\n';
    std::vector<waveform::Waveform> waves;
    for (const auto& name : result.signal_names())
      waves.push_back(result.waveform(name));
    for (std::size_t i = 0; i < result.point_count(); ++i) {
      os << result.times()[i];
      for (const auto& w : waves) os << ',' << w.value(i);
      os << '\n';
    }
  }

  const std::string out_path = args.get_or("out", "");
  if (!out_path.empty()) {
    std::string header = "time";
    for (const auto& name : result.signal_names()) header += ',' + name;
    ArtifactCsv csv(header);
    std::vector<waveform::Waveform> waves;
    for (const auto& name : result.signal_names())
      waves.push_back(result.waveform(name));
    for (std::size_t i = 0; i < result.point_count(); ++i) {
      csv.row() << result.times()[i];
      for (const auto& w : waves) csv.row() << ',' << w.value(i);
      csv.row() << '\n';
    }
    csv.write(out_path);
  }
  warn_unused(args, os);
  if (run.error) {
    os << "interrupted (" << support::to_string(run.error->kind() ==
                                 support::SolverErrorKind::kCancelled
                             ? support::StopReason::kCancelled
                             : support::StopReason::kDeadlineExpired)
       << "): " << result.point_count() << " points written\n";
    return kExitInterrupted;
  }
  return 0;
}

int cmd_serve(const Args& args, std::ostream& os) {
  serve::ServerConfig config;
  config.threads = args.get_int("threads", 0);
  const int queue = args.get_int("queue", 64);
  if (queue < 1) throw std::invalid_argument("--queue must be >= 1");
  config.queue_capacity = std::size_t(queue);
  const int cache = args.get_int("cache", 4096);
  if (cache < 0) throw std::invalid_argument("--cache must be >= 0");
  config.cache_capacity = std::size_t(cache);
  config.cache_file = args.get_or("cache-file", "");
  config.default_deadline_s = args.get_double("request-deadline", 0.0);
  config.drain_deadline_s = args.get_double("drain", 5.0);
  const std::string isolate = args.get_or("isolate", "thread");
  if (isolate == "process") {
    config.isolate = serve::IsolateMode::kProcess;
  } else if (isolate != "thread") {
    throw std::invalid_argument("--isolate must be 'thread' or 'process'");
  }
  config.supervisor.workers = args.get_int("workers", 0);
  const int worker_mem = args.get_int("worker-mem", 1024);
  if (worker_mem < 0) throw std::invalid_argument("--worker-mem must be >= 0");
  config.supervisor.mem_limit_mb = std::size_t(worker_mem);
  config.supervisor.cpu_limit_s = args.get_double("worker-cpu", 0.0);
  config.supervisor.grace_s = args.get_double("grace", 0.5);
  const int quarantine = args.get_int("quarantine", 2);
  if (quarantine < 1) throw std::invalid_argument("--quarantine must be >= 1");
  config.supervisor.quarantine_after = quarantine;
  config.supervisor.quarantine_file = args.get_or("quarantine-file", "");
  const std::string socket_path = args.get_or("socket", "");
  warn_unused(args, os);

  // Fault-injection builds only: a soak harness cannot call arm() inside
  // the daemon process, so it configures the fault plan through the
  // environment. Release builds compile the hooks to `false` and ignore
  // the variable entirely.
  if (support::kFaultInjectionEnabled) {
    const char* plan = std::getenv("SSNKIT_FAULT_PLAN");
    if (plan != nullptr && *plan != '\0') {
      const std::size_t armed = support::arm_from_plan_string(plan);
      os << "{\"event\":\"fault-plan\",\"armed\":" << armed << "}\n";
      os.flush();
    }
  }

  // Same lifecycle wiring as the batch commands: the first SIGINT/SIGTERM
  // starts the graceful drain, the second hard-exits. --deadline bounds the
  // daemon's own lifetime (handy for smoke tests and supervised restarts).
  Lifecycle life(args);

  serve::Server server(config);
  if (socket_path.empty())
    return server.serve_stream(std::cin, os, &life.ctx);

  for (const std::string& warning : server.warm_warnings())
    os << "{\"event\":\"warning\",\"code\":\"SSN-W067\",\"message\":\""
       << serve::json_escape(warning) << "\"}\n";
  os.flush();
  // Socket mode: responses go to the clients' connections, but supervisor
  // lifecycle events (worker spawns/deaths, quarantine warnings) belong on
  // the daemon's own stream, where an operator or soak harness reads them.
  std::mutex event_mu;
  server.set_event_sink([&os, &event_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(event_mu);
    os << line << '\n';
    os.flush();
  });
  serve::SocketOptions sopts;
  sopts.path = socket_path;
  std::string err;
  if (serve::serve_unix_socket(server, sopts, &life.ctx, err) != 0) {
    os << "error: " << err << "\n";
    return 1;
  }
  os << serve::render_stats(server.stats()) << "\n";
  os.flush();
  return 0;
}

int run_cli(const std::vector<std::string>& argv, std::ostream& os,
            std::ostream& err) {
  if (argv.empty()) {
    err << usage();
    return 2;
  }
  const std::string command = argv.front();
  const std::vector<std::string> rest(argv.begin() + 1, argv.end());
  try {
    const Args args = Args::parse(rest, {"no-c", "verify", "extended", "sim"});
    if (command == "calibrate") return cmd_calibrate(args, os);
    if (command == "estimate") return cmd_estimate(args, os);
    if (command == "sweep-n") return cmd_sweep_n(args, os);
    if (command == "sweep-c") return cmd_sweep_c(args, os);
    if (command == "design") return cmd_design(args, os);
    if (command == "mc") return cmd_mc(args, os);
    if (command == "ac") return cmd_ac(args, os);
    if (command == "simulate") return cmd_simulate(args, os);
    if (command == "serve") return cmd_serve(args, os);
    if (command == "help" || command == "--help") {
      os << usage();
      return 0;
    }
    err << "unknown command '" << command << "'\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ssnkit::cli
