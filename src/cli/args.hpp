// A small argument parser for the ssnkit command-line tool. Supports
// --key value, --key=value, boolean --flags, and positional arguments,
// with typed accessors and defaults.
#pragma once

#include "io/diagnostics.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ssnkit::cli {

class Args {
 public:
  /// Parse argv-style input (without the program/subcommand names).
  /// `flag_names` lists options that take no value. Throws io::ParseError
  /// (derives std::invalid_argument) carrying every problem found.
  static Args parse(const std::vector<std::string>& argv,
                    const std::vector<std::string>& flag_names = {});

  /// Error-recovery variant: never throws; every malformed token is
  /// diagnosed in `sink` (code SSN-E050, location "<command-line>:1:<col>"
  /// with the column pointing into the space-joined argv excerpt) and
  /// skipped.
  static Args parse_ex(const std::vector<std::string>& argv,
                       const std::vector<std::string>& flag_names,
                       io::DiagnosticSink& sink);

  bool has(const std::string& key) const;
  bool flag(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;

  /// Numeric accessors accept SPICE-style suffixes ("5n", "0.1n", "1.8").
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never read — for catching typos.
  std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace ssnkit::cli
