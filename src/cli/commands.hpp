// The ssnkit CLI subcommands as testable functions: each takes parsed
// arguments and writes its report to a stream, returning a process exit
// code. The thin tools/ssnkit_cli.cpp main() only dispatches.
//
//   ssnkit calibrate [--tech 180nm] [--golden alpha|bsim]
//   ssnkit estimate  [--tech ...] [--package pga] [--n 8] [--tr 0.1n]
//                    [--no-c] [--verify]
//   ssnkit sweep-n   [--tech ...] [--package ...] [--tr ...] [--max-n 16]
//   ssnkit sweep-c   [--tech ...] [--package ...] [--n 8] [--tr ...]
//   ssnkit design    [--budget 0.27] [--tech ...] [--package ...]
//                    [--n 8] [--tr ...]
//   ssnkit mc        [--samples 1000] [--tech ...] [--package ...] ...
//   ssnkit ac        [--tech ...] [--n 8] [--l 5n] [--c 1p] — ground-path
//                    impedance sweep (CSV on stdout)
//   ssnkit simulate  <netlist.cir> [--probe node]
#pragma once

#include "cli/args.hpp"

#include <iosfwd>

namespace ssnkit::cli {

/// Exit code for a run that was interrupted cooperatively (SIGINT/SIGTERM,
/// --deadline, --max-samples) and wound down cleanly with partial results
/// flushed. Distinct from 1 (error) and 2 (usage) so scripts can tell
/// "re-run with --resume" from "fix your invocation"; 75 follows the
/// sysexits EX_TEMPFAIL convention ("temporary failure, try again").
constexpr int kExitInterrupted = 75;

int cmd_calibrate(const Args& args, std::ostream& os);
int cmd_estimate(const Args& args, std::ostream& os);
int cmd_sweep_n(const Args& args, std::ostream& os);
int cmd_sweep_c(const Args& args, std::ostream& os);
int cmd_design(const Args& args, std::ostream& os);
int cmd_mc(const Args& args, std::ostream& os);
int cmd_ac(const Args& args, std::ostream& os);
int cmd_simulate(const Args& args, std::ostream& os);
int cmd_serve(const Args& args, std::ostream& os);

/// Dispatch on the subcommand name; unknown names print usage and return 2.
int run_cli(const std::vector<std::string>& argv, std::ostream& os,
            std::ostream& err);

/// The usage text.
const char* usage();

}  // namespace ssnkit::cli
