#include "cli/args.hpp"

#include "circuit/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace ssnkit::cli {

Args Args::parse(const std::vector<std::string>& argv,
                 const std::vector<std::string>& flag_names) {
  io::DiagnosticSink sink;
  Args out = parse_ex(argv, flag_names, sink);
  if (sink.has_errors()) throw io::ParseError(sink);
  return out;
}

Args Args::parse_ex(const std::vector<std::string>& argv,
                    const std::vector<std::string>& flag_names,
                    io::DiagnosticSink& sink) {
  Args out;
  const auto is_flag = [&](const std::string& name) {
    return std::find(flag_names.begin(), flag_names.end(), name) !=
           flag_names.end();
  };
  // Diagnostics point into the space-joined command line, so the caret
  // excerpt shows exactly which argument was wrong.
  std::string joined;
  std::vector<int> cols;
  for (const std::string& tok : argv) {
    if (!joined.empty()) joined.push_back(' ');
    cols.push_back(int(joined.size()) + 1);
    joined += tok;
  }
  const auto bad = [&](std::size_t i, const std::string& msg) {
    sink.error(support::SrcLoc{"<command-line>", 1, cols[i]}, "SSN-E050", msg,
               argv[i], joined);
  };
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      out.positional_.push_back(tok);
      continue;
    }
    std::string key = tok.substr(2);
    if (key.empty()) {
      bad(i, "bare '--' is not an option");
      continue;
    }
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      const std::string value = key.substr(eq + 1);
      key = key.substr(0, eq);
      if (key.empty()) {
        bad(i, "option '" + tok + "' has no name before '='");
        continue;
      }
      if (is_flag(key)) {
        bad(i, "flag --" + key + " takes no value");
        continue;
      }
      out.values_[key] = value;
      continue;
    }
    if (is_flag(key)) {
      out.flags_[key] = true;
      continue;
    }
    if (i + 1 >= argv.size()) {
      bad(i, "missing value for --" + key);
      continue;
    }
    out.values_[key] = argv[++i];
  }
  return out;
}

bool Args::has(const std::string& key) const {
  read_[key] = true;
  return values_.count(key) != 0 || flags_.count(key) != 0;
}

bool Args::flag(const std::string& key) const {
  read_[key] = true;
  const auto it = flags_.find(key);
  return it != flags_.end() && it->second;
}

std::optional<std::string> Args::get(const std::string& key) const {
  read_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const io::NumberParse p = circuit::parse_spice_number_ex(*v);
  if (!p.ok)
    throw std::invalid_argument("args: --" + key + " expects a number, got '" +
                                *v + "' (" + p.error + ")");
  return p.value;
}

int Args::get_int(const std::string& key, int fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const io::IntParse p = io::parse_int_strict(*v);
  if (!p.ok)
    throw std::invalid_argument("args: --" + key + " expects an integer, got '" +
                                *v + "' (" + p.error + ")");
  return p.value;
}

std::vector<std::string> Args::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_)
    if (!read_.count(key)) unused.push_back(key);
  for (const auto& [key, set] : flags_)
    if (!read_.count(key)) unused.push_back(key);
  return unused;
}

}  // namespace ssnkit::cli
