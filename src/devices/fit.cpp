#include "devices/fit.hpp"

#include "numeric/least_squares.hpp"
#include "numeric/levenberg_marquardt.hpp"
#include "numeric/matrix.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ssnkit::devices {

using numeric::Matrix;
using numeric::Vector;

void AsdmFitRegion::validate() const {
  if (!(vg_hi > vg_lo)) throw std::invalid_argument("AsdmFitRegion: vg range empty");
  if (!(vs_hi >= vs_lo)) throw std::invalid_argument("AsdmFitRegion: vs range empty");
  if (n_vg < 2 || n_vs < 1)
    throw std::invalid_argument("AsdmFitRegion: need n_vg >= 2 and n_vs >= 1");
}

AsdmFitResult fit_asdm(const MosfetModel& golden, const AsdmFitRegion& region,
                       double on_current_floor) {
  region.validate();
  if (on_current_floor < 0.0 || on_current_floor >= 1.0)
    throw std::invalid_argument("fit_asdm: on_current_floor must be in [0, 1)");

  // Sample the golden surface over the SSN region: vds = vd - vs,
  // vgs = vg - vs, vbs = -vs (bulk at true ground).
  struct Sample {
    double vg = 0.0, vs = 0.0, id = 0.0;
  };
  std::vector<Sample> samples;
  samples.reserve(std::size_t(region.n_vg) * std::size_t(region.n_vs));
  double id_max = 0.0;
  for (int i = 0; i < region.n_vg; ++i) {
    const double vg = region.vg_lo + (region.vg_hi - region.vg_lo) * double(i) /
                                         double(region.n_vg - 1);
    for (int j = 0; j < region.n_vs; ++j) {
      const double vs =
          region.n_vs == 1
              ? region.vs_lo
              : region.vs_lo + (region.vs_hi - region.vs_lo) * double(j) /
                                   double(region.n_vs - 1);
      const double id = golden.ids(vg - vs, region.vd - vs, -vs);
      samples.push_back({vg, vs, id});
      id_max = std::max(id_max, id);
    }
  }
  if (id_max <= 0.0)
    throw std::runtime_error("fit_asdm: golden device never conducts in region");

  // Keep conducting samples only (the paper's near-threshold exclusion).
  const double floor_current = on_current_floor * id_max;
  std::erase_if(samples, [&](const Sample& s) { return s.id < floor_current; });
  if (samples.size() < 4)
    throw std::runtime_error("fit_asdm: too few conducting samples in region");

  // Linear model I = a*vg + b*vs + c  ->  K = a, lambda = -b/a, vx = -c/a.
  Matrix design(samples.size(), 3);
  Vector rhs(samples.size());
  for (std::size_t r = 0; r < samples.size(); ++r) {
    design(r, 0) = samples[r].vg;
    design(r, 1) = samples[r].vs;
    design(r, 2) = 1.0;
    rhs[r] = samples[r].id;
  }
  const auto ls = numeric::solve_least_squares(design, rhs);
  const double a = ls.coefficients[0];
  const double b = ls.coefficients[1];
  const double c = ls.coefficients[2];
  if (!(a > 0.0))
    throw std::runtime_error("fit_asdm: non-physical fit (K <= 0); widen the region");

  AsdmFitResult out;
  out.params.k = a;
  out.params.lambda = std::max(1.0, -b / a);
  out.params.vx = -c / a;
  if (!(out.params.vx > 0.0))
    throw std::runtime_error(
        "fit_asdm: non-physical fit (V_x <= 0); the region likely contains no "
        "meaningful conduction");
  out.params.validate();
  out.samples = samples.size();
  out.rms_error = ls.residual_rms;
  for (const Sample& s : samples) {
    const double model = out.params.k * (s.vg - out.params.lambda * s.vs - out.params.vx);
    out.max_abs_error = std::max(out.max_abs_error, std::fabs(model - s.id));
  }
  out.max_rel_error = out.max_abs_error / id_max;
  return out;
}

AlphaPowerFitResult fit_alpha_power(const MosfetModel& golden, double vdd,
                                    const AlphaPowerParams& seed,
                                    int n_samples) {
  if (!(vdd > 0.0)) throw std::invalid_argument("fit_alpha_power: vdd must be > 0");
  if (n_samples < 5) throw std::invalid_argument("fit_alpha_power: need >= 5 samples");

  // Sample the golden saturation curve I(V_G) at V_S = V_B = 0, V_D = vdd,
  // from a little above the seed threshold to vdd.
  const double vg_lo = std::min(seed.vt0 + 0.15, 0.75 * vdd);
  std::vector<double> vgs(n_samples), ids(n_samples);
  double id_max = 0.0;
  for (int i = 0; i < n_samples; ++i) {
    vgs[i] = vg_lo + (vdd - vg_lo) * double(i) / double(n_samples - 1);
    ids[i] = golden.ids(vgs[i], vdd, 0.0);
    id_max = std::max(id_max, ids[i]);
  }
  if (id_max <= 0.0)
    throw std::runtime_error("fit_alpha_power: golden device never conducts");

  // Parameters p = (id0, vt0, alpha); residual in units of id_max.
  const auto residual = [&](const Vector& p, Vector& r) {
    const double id0 = p[0];
    const double vt0 = p[1];
    const double alpha = p[2];
    for (int i = 0; i < n_samples; ++i) {
      const double vgt = std::max(vgs[i] - vt0, 0.0);
      const double model = id0 * std::pow(vgt / (vdd - vt0), alpha);
      r[std::size_t(i)] = (model - ids[i]) / id_max;
    }
  };

  numeric::LmOptions opts;
  opts.lower_bounds = Vector{1e-9, 0.05, 1.0};
  opts.upper_bounds = Vector{1.0, vdd - 0.2, 2.0};
  Vector p0{id_max, seed.vt0, seed.alpha};
  const auto lm = numeric::levenberg_marquardt(residual, p0,
                                               std::size_t(n_samples), opts);

  AlphaPowerFitResult out;
  out.params = seed;
  out.params.vdd = vdd;
  out.params.id0 = lm.parameters[0];
  out.params.vt0 = lm.parameters[1];
  out.params.alpha = lm.parameters[2];
  out.params.validate();
  out.converged = lm.converged;
  out.rms_error = lm.residual_norm / std::sqrt(double(n_samples)) * id_max;
  for (int i = 0; i < n_samples; ++i) {
    const double vgt = std::max(vgs[i] - out.params.vt0, 0.0);
    const double model =
        out.params.id0 * std::pow(vgt / (vdd - out.params.vt0), out.params.alpha);
    out.max_rel_error =
        std::max(out.max_rel_error, std::fabs(model - ids[i]) / id_max);
  }
  return out;
}

}  // namespace ssnkit::devices
