#include "devices/asdm.hpp"

#include <algorithm>
#include <stdexcept>

// Dimensions for the SSN-L011 units pass (docs/STATIC_ANALYSIS.md). The ASDM
// transconductance K maps overdrive volts to amps; lambda and the softplus
// slope are dimensionless.
// ssn-units: k=A/V, lambda=1, vx=V, eps_smooth=V
// ssn-units: vg=V, vs=V, vgs=V, vds=V, vbs=V, overdrive=V, slope=1
// ssn-units: ids=A, ids_gate_source=A, turn_on_vg=V, gm=A/V, gds=A/V, gmb=A/V
// ssn-units: softplus=V, softplus_deriv=1

namespace ssnkit::devices {

void AsdmParams::validate() const {
  if (!(k > 0.0)) throw std::invalid_argument("AsdmParams: k must be > 0");
  if (!(lambda >= 1.0))
    throw std::invalid_argument("AsdmParams: lambda must be >= 1");
  if (!(vx > 0.0)) throw std::invalid_argument("AsdmParams: vx must be > 0");
  if (!(eps_smooth > 0.0))
    throw std::invalid_argument("AsdmParams: eps_smooth must be > 0");
}

AsdmModel::AsdmModel(AsdmParams params) : params_(params) { params_.validate(); }

double AsdmModel::ids_gate_source(double vg, double vs) const {
  return std::max(0.0, params_.k * (vg - params_.lambda * vs - params_.vx));
}

double AsdmModel::turn_on_vg(double vs) const {
  return params_.lambda * vs + params_.vx;
}

double AsdmModel::ids(double vgs, double /*vds*/, double vbs) const {
  // Smooth-clamped variant of ids_gate_source (see eps_smooth in the
  // params): overdrive = vgs + (lambda-1)*vbs - vx.
  const double overdrive = vgs + (params_.lambda - 1.0) * vbs - params_.vx;
  return params_.k * softplus(overdrive, params_.eps_smooth);
}

MosfetEval AsdmModel::evaluate(double vgs, double vds, double vbs) const {
  MosfetEval out;
  out.ids = ids(vgs, vds, vbs);
  const double overdrive = vgs + (params_.lambda - 1.0) * vbs - params_.vx;
  const double slope = softplus_deriv(overdrive, params_.eps_smooth);
  out.gm = params_.k * slope;
  out.gds = 0.0;
  // d ids / d vbs: ids = k*(vgs + (lambda-1)*vbs - vx) when on.
  out.gmb = params_.k * (params_.lambda - 1.0) * slope;
  return out;
}

std::unique_ptr<MosfetModel> AsdmModel::clone() const {
  return std::make_unique<AsdmModel>(*this);
}

}  // namespace ssnkit::devices
