// Parameter extraction:
//  * fit_asdm(): the paper's ASDM extraction — linear least squares of
//    I_D = K*(V_g − λ·V_s − V_x) over the SSN operating region of a golden
//    device (Fig. 1 of the paper).
//  * fit_alpha_power(): nonlinear extraction of (id0, vt0, alpha) from a
//    golden device, the calibration step the baseline formulas
//    (Senthinathan–Prince, Vemuru, Song) need.
#pragma once

#include "devices/alpha_power.hpp"
#include "devices/asdm.hpp"
#include "devices/mosfet_model.hpp"

namespace ssnkit::devices {

/// Sampling region for the ASDM fit. The paper fits where the SSN transient
/// actually operates: drain at V_DD, gate from "comfortably above
/// threshold" to V_DD, source (the bouncing ground) from 0 to a fraction of
/// V_DD. Near-threshold samples are excluded — the current there is
/// insignificant for SSN and even the alpha-power law is inaccurate there.
struct AsdmFitRegion {
  double vd = 1.8;      ///< drain bias (the supply)
  double vg_lo = 0.8;   ///< lower gate bound, above threshold
  double vg_hi = 1.8;   ///< upper gate bound (the supply)
  double vs_lo = 0.0;   ///< lower source bound
  double vs_hi = 0.8;   ///< upper source bound (max expected bounce)
  int n_vg = 26;        ///< gate grid points
  int n_vs = 9;         ///< source grid points

  void validate() const;
};

struct AsdmFitResult {
  AsdmParams params;
  double rms_error = 0.0;      ///< RMS residual over the fitted grid [A]
  double max_abs_error = 0.0;  ///< worst residual over the fitted grid [A]
  double max_rel_error = 0.0;  ///< worst residual / max fitted current
  std::size_t samples = 0;
};

/// Least-squares ASDM extraction from a golden model. Only grid points
/// where the golden device conducts (current above `on_current_floor`
/// times the region's maximum current) enter the fit — this is the paper's
/// "discard the near-threshold region" rule.
AsdmFitResult fit_asdm(const MosfetModel& golden, const AsdmFitRegion& region,
                       double on_current_floor = 0.02);

struct AlphaPowerFitResult {
  AlphaPowerParams params;
  double rms_error = 0.0;
  double max_rel_error = 0.0;
  bool converged = false;
};

/// Extract the saturation-region alpha-power parameters (id0, vt0, alpha)
/// from a golden device at vs = vb = 0, vd = vdd. vd0/gamma/phi2f/lambda of
/// the result are copied from `seed` (they do not affect the saturation
/// I(V_G) curve being fitted).
AlphaPowerFitResult fit_alpha_power(const MosfetModel& golden, double vdd,
                                    const AlphaPowerParams& seed,
                                    int n_samples = 41);

}  // namespace ssnkit::devices
