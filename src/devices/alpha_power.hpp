// Sakurai–Newton alpha-power-law MOSFET model [12], extended with body
// effect and channel-length modulation. This is one of the two "golden"
// devices standing in for the paper's BSIM3 / HSPICE reference, and it is
// also the device model the reconstructed baseline SSN formulas
// (Vemuru '96, Song '99) are built on.
//
//   vt     = vt0 + gamma*(sqrt(phi2f+vsb) - sqrt(phi2f))
//   vgt    = vgs - vt                       (smoothly clamped at 0)
//   idsat  = id0 * (vgt / (vdd - vt0))^alpha
//   vdsat  = vd0 * (vgt / (vdd - vt0))^(alpha/2)
//   ids    = idsat * (1 + lambda_clm*vds)                    vds >= vdsat
//          = idsat * (2 - vds/vdsat)*(vds/vdsat)
//                  * (1 + lambda_clm*vds)                    vds <  vdsat
//
// The two branches meet with matching value and d/dvds at vds = vdsat.
#pragma once

#include "devices/mosfet_model.hpp"

namespace ssnkit::devices {

struct AlphaPowerParams {
  double vdd = 1.8;         ///< normalization supply [V]
  double vt0 = 0.45;        ///< zero-bias threshold [V]
  double alpha = 1.3;       ///< velocity-saturation index, 1 (short) .. 2 (long)
  double id0 = 5e-3;        ///< drain current at vgs = vdd, vds = vdd [A]
  double vd0 = 0.8;         ///< saturation voltage at vgs = vdd [V]
  double gamma = 0.35;      ///< body-effect coefficient [sqrt(V)]
  double phi2f = 0.85;      ///< surface potential 2*phi_F [V]
  double lambda_clm = 0.05; ///< channel-length modulation [1/V]
  double eps_smooth = 2e-3; ///< off/on smoothing width [V]

  /// Throws std::invalid_argument when a parameter is out of range.
  void validate() const;
};

class AlphaPowerModel final : public MosfetModel {
 public:
  explicit AlphaPowerModel(AlphaPowerParams params);

  const AlphaPowerParams& params() const { return params_; }

  double ids(double vgs, double vds, double vbs) const override;
  std::unique_ptr<MosfetModel> clone() const override;

  /// Threshold including body effect at the given source-bulk bias.
  double vt(double vsb) const;
  /// Saturation voltage at the given gate overdrive.
  double vdsat(double vgs, double vbs) const;

 private:
  AlphaPowerParams params_;
};

}  // namespace ssnkit::devices
