#include "devices/alpha_power.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::devices {

void AlphaPowerParams::validate() const {
  if (!(vdd > 0.0)) throw std::invalid_argument("AlphaPowerParams: vdd must be > 0");
  if (!(vt0 > 0.0 && vt0 < vdd))
    throw std::invalid_argument("AlphaPowerParams: vt0 must be in (0, vdd)");
  if (!(alpha >= 1.0 && alpha <= 2.0))
    throw std::invalid_argument("AlphaPowerParams: alpha must be in [1, 2]");
  if (!(id0 > 0.0)) throw std::invalid_argument("AlphaPowerParams: id0 must be > 0");
  if (!(vd0 > 0.0)) throw std::invalid_argument("AlphaPowerParams: vd0 must be > 0");
  if (gamma < 0.0) throw std::invalid_argument("AlphaPowerParams: gamma must be >= 0");
  if (!(phi2f > 0.0)) throw std::invalid_argument("AlphaPowerParams: phi2f must be > 0");
  if (lambda_clm < 0.0)
    throw std::invalid_argument("AlphaPowerParams: lambda_clm must be >= 0");
  if (!(eps_smooth > 0.0))
    throw std::invalid_argument("AlphaPowerParams: eps_smooth must be > 0");
}

AlphaPowerModel::AlphaPowerModel(AlphaPowerParams params) : params_(params) {
  params_.validate();
}

double AlphaPowerModel::vt(double vsb) const {
  return body_effect_vt(params_.vt0, params_.gamma, params_.phi2f, vsb);
}

double AlphaPowerModel::vdsat(double vgs, double vbs) const {
  const double vgt = softplus(vgs - vt(-vbs), params_.eps_smooth);
  const double x = vgt / (params_.vdd - params_.vt0);
  return params_.vd0 * std::pow(x, 0.5 * params_.alpha);
}

double AlphaPowerModel::ids(double vgs, double vds, double vbs) const {
  const double vsb = -vbs;
  const double vth = vt(vsb);
  const double vgt = softplus(vgs - vth, params_.eps_smooth);
  const double x = vgt / (params_.vdd - params_.vt0);
  const double idsat = params_.id0 * std::pow(x, params_.alpha);
  const double vds_pos = std::max(vds, 0.0);
  const double clm = 1.0 + params_.lambda_clm * vds_pos;
  const double vds_sat = params_.vd0 * std::pow(x, 0.5 * params_.alpha);
  if (vds_pos >= vds_sat || vds_sat <= 0.0) return idsat * clm;
  const double r = vds_pos / vds_sat;
  return idsat * (2.0 - r) * r * clm;
}

std::unique_ptr<MosfetModel> AlphaPowerModel::clone() const {
  return std::make_unique<AlphaPowerModel>(*this);
}

}  // namespace ssnkit::devices
