// Abstract MOSFET model interface. All models are written for an n-channel
// device in forward operation; the circuit-level Mosfet element handles
// p-channel devices and reverse (vds < 0) operation by terminal reflection.
//
// Conventions:
//   vgs, vds, vbs are terminal voltage differences in volts,
//   ids is the drain-to-source current in amperes (>= 0 in forward mode).
#pragma once

#include <memory>

namespace ssnkit::devices {

/// Current plus its small-signal derivatives, as needed by the MNA
/// Newton–Raphson linearization.
struct MosfetEval {
  double ids = 0.0;  ///< drain current [A]
  double gm = 0.0;   ///< d ids / d vgs [S]
  double gds = 0.0;  ///< d ids / d vds [S]
  double gmb = 0.0;  ///< d ids / d vbs [S]
};

class MosfetModel {
 public:
  virtual ~MosfetModel() = default;

  /// Drain current for an NMOS in forward operation (vds >= 0 expected;
  /// implementations must return something finite for any input).
  virtual double ids(double vgs, double vds, double vbs) const = 0;

  /// Current plus derivatives. The default implementation uses central
  /// finite differences on ids(); models with cheap analytic derivatives
  /// may override.
  virtual MosfetEval evaluate(double vgs, double vds, double vbs) const;

  virtual std::unique_ptr<MosfetModel> clone() const = 0;

 protected:
  MosfetModel() = default;
  MosfetModel(const MosfetModel&) = default;
  MosfetModel& operator=(const MosfetModel&) = default;
};

/// Width-scaling adapter: multiplies the wrapped model's current by a
/// constant factor (W/W_nominal). Lets one parameter set serve drivers of
/// any strength.
class ScaledMosfetModel final : public MosfetModel {
 public:
  ScaledMosfetModel(std::unique_ptr<MosfetModel> inner, double factor);

  double factor() const { return factor_; }
  const MosfetModel& inner() const { return *inner_; }

  double ids(double vgs, double vds, double vbs) const override;
  MosfetEval evaluate(double vgs, double vds, double vbs) const override;
  std::unique_ptr<MosfetModel> clone() const override;

 private:
  std::unique_ptr<MosfetModel> inner_;
  double factor_;
};

/// Smooth rectifier: ->0 for x << 0, ->x for x >> 0, C-infinity everywhere.
/// Used by the device models to keep Newton iterations differentiable
/// across the off/on boundary. `eps` sets the blending width in volts.
double smooth_relu(double x, double eps);

/// Derivative of smooth_relu with respect to x.
double smooth_relu_deriv(double x, double eps);

/// Softplus rectifier eps*log(1+exp(x/eps)): like smooth_relu but with an
/// exponentially vanishing off-tail (smooth_relu decays only as eps^2/|x|,
/// which leaks visible current through gigaohm-scale anchors).
double softplus(double x, double eps);

/// Derivative of softplus with respect to x (the logistic function).
double softplus_deriv(double x, double eps);

/// Body-effect threshold shift: vt = vt0 + gamma*(sqrt(phi2f+vsb)-sqrt(phi2f))
/// with vsb clamped at -phi2f/2 to stay real under forward body bias.
double body_effect_vt(double vt0, double gamma, double phi2f, double vsb);

}  // namespace ssnkit::devices
