#include "devices/bsim_lite.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::devices {

void BsimLiteParams::validate() const {
  if (!(kp > 0.0)) throw std::invalid_argument("BsimLiteParams: kp must be > 0");
  if (!(vt0 > 0.0)) throw std::invalid_argument("BsimLiteParams: vt0 must be > 0");
  if (gamma < 0.0) throw std::invalid_argument("BsimLiteParams: gamma must be >= 0");
  if (!(phi2f > 0.0)) throw std::invalid_argument("BsimLiteParams: phi2f must be > 0");
  if (theta < 0.0) throw std::invalid_argument("BsimLiteParams: theta must be >= 0");
  if (!(vsat_v > 0.0)) throw std::invalid_argument("BsimLiteParams: vsat_v must be > 0");
  if (lambda_clm < 0.0)
    throw std::invalid_argument("BsimLiteParams: lambda_clm must be >= 0");
  if (!(eps_smooth > 0.0))
    throw std::invalid_argument("BsimLiteParams: eps_smooth must be > 0");
}

BsimLiteModel::BsimLiteModel(BsimLiteParams params) : params_(params) {
  params_.validate();
}

double BsimLiteModel::vt(double vsb) const {
  return body_effect_vt(params_.vt0, params_.gamma, params_.phi2f, vsb);
}

double BsimLiteModel::vdsat(double vgs, double vbs) const {
  const double vgt = softplus(vgs - vt(-vbs), params_.eps_smooth);
  return vgt * params_.vsat_v / (vgt + params_.vsat_v);
}

double BsimLiteModel::ids(double vgs, double vds, double vbs) const {
  const double vsb = -vbs;
  const double vth = vt(vsb);
  const double vgt = softplus(vgs - vth, params_.eps_smooth);
  const double mu_eff = 1.0 / (1.0 + params_.theta * vgt);
  const double vds_sat = vgt * params_.vsat_v / (vgt + params_.vsat_v);
  const double vds_pos = std::max(vds, 0.0);

  // Smooth blend of vds and vdsat (p-norm, p = 4): vdseff follows vds deep
  // in triode and saturates to vdsat, keeping d(ids)/d(vds) continuous.
  constexpr double p = 4.0;
  const double vdseff =
      (vds_pos <= 0.0 || vds_sat <= 0.0)
          ? 0.0
          : vds_pos * vds_sat /
                std::pow(std::pow(vds_pos, p) + std::pow(vds_sat, p), 1.0 / p);

  const double core = params_.kp * mu_eff * (vgt - 0.5 * vdseff) * vdseff /
                      (1.0 + vdseff / params_.vsat_v);
  const double clm = 1.0 + params_.lambda_clm * std::max(vds_pos - vdseff, 0.0);
  return core * clm;
}

std::unique_ptr<MosfetModel> BsimLiteModel::clone() const {
  return std::make_unique<BsimLiteModel>(*this);
}

}  // namespace ssnkit::devices
