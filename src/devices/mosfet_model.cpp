#include "devices/mosfet_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssnkit::devices {

MosfetEval MosfetModel::evaluate(double vgs, double vds, double vbs) const {
  MosfetEval out;
  out.ids = ids(vgs, vds, vbs);
  // Central differences with a voltage-scale step; accurate enough for
  // Newton convergence (the Jacobian only steers the iteration).
  const double h = 1e-6;
  out.gm = (ids(vgs + h, vds, vbs) - ids(vgs - h, vds, vbs)) / (2.0 * h);
  out.gds = (ids(vgs, vds + h, vbs) - ids(vgs, vds - h, vbs)) / (2.0 * h);
  out.gmb = (ids(vgs, vds, vbs + h) - ids(vgs, vds, vbs - h)) / (2.0 * h);
  return out;
}

ScaledMosfetModel::ScaledMosfetModel(std::unique_ptr<MosfetModel> inner,
                                     double factor)
    : inner_(std::move(inner)), factor_(factor) {
  if (!inner_) throw std::invalid_argument("ScaledMosfetModel: null inner model");
  if (!(factor_ > 0.0))
    throw std::invalid_argument("ScaledMosfetModel: factor must be > 0");
}

double ScaledMosfetModel::ids(double vgs, double vds, double vbs) const {
  return factor_ * inner_->ids(vgs, vds, vbs);
}

MosfetEval ScaledMosfetModel::evaluate(double vgs, double vds, double vbs) const {
  MosfetEval e = inner_->evaluate(vgs, vds, vbs);
  e.ids *= factor_;
  e.gm *= factor_;
  e.gds *= factor_;
  e.gmb *= factor_;
  return e;
}

std::unique_ptr<MosfetModel> ScaledMosfetModel::clone() const {
  return std::make_unique<ScaledMosfetModel>(inner_->clone(), factor_);
}

double smooth_relu(double x, double eps) {
  if (eps <= 0.0) throw std::invalid_argument("smooth_relu: eps must be > 0");
  // 0.5*(x + sqrt(x^2 + 4 eps^2)): equals eps at x = 0, asymptotes to x and
  // to eps^2/|x| on the two sides.
  return 0.5 * (x + std::sqrt(x * x + 4.0 * eps * eps));
}

double smooth_relu_deriv(double x, double eps) {
  if (eps <= 0.0) throw std::invalid_argument("smooth_relu_deriv: eps must be > 0");
  return 0.5 * (1.0 + x / std::sqrt(x * x + 4.0 * eps * eps));
}

double softplus(double x, double eps) {
  if (eps <= 0.0) throw std::invalid_argument("softplus: eps must be > 0");
  // Numerically stable: max(x, 0) + eps*log1p(exp(-|x|/eps)).
  return std::max(x, 0.0) + eps * std::log1p(std::exp(-std::fabs(x) / eps));
}

double softplus_deriv(double x, double eps) {
  if (eps <= 0.0) throw std::invalid_argument("softplus_deriv: eps must be > 0");
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x / eps));
  const double e = std::exp(x / eps);
  return e / (1.0 + e);
}

double body_effect_vt(double vt0, double gamma, double phi2f, double vsb) {
  if (gamma == 0.0) return vt0;  // ssnlint-ignore(SSN-L001)
  if (phi2f <= 0.0) throw std::invalid_argument("body_effect_vt: phi2f must be > 0");
  const double vsb_clamped = std::max(vsb, -0.5 * phi2f);
  return vt0 + gamma * (std::sqrt(phi2f + vsb_clamped) - std::sqrt(phi2f));
}

}  // namespace ssnkit::devices
