// The paper's contribution at the device level: the Application-Specific
// Device Model (ASDM), Eqn (3).
//
//   I_D(V_g, V_s) = K * (V_g - lambda*V_s - V_x),   clamped at 0
//
// valid in the SSN operating region only: drain held near V_DD (device in
// saturation), gate ramping from 0 to V_DD, source sitting on the bouncing
// internal ground node, bulk at the true ground. The three constants are
// fitted, not physical: K is an effective transconductance [A/V], lambda
// (> 1 in real processes) absorbs the body effect of the rising source, and
// V_x is a fitted voltage displacement that is *not* the threshold voltage.
#pragma once

#include "devices/mosfet_model.hpp"

namespace ssnkit::devices {

struct AsdmParams {
  double k = 5e-3;      ///< transconductance K [A/V]
  double lambda = 1.3;  ///< source-coupling factor (dimensionless, >= 1)
  double vx = 0.6;      ///< voltage displacement V_x [V]
  /// Turn-on smoothing width [V] used ONLY by the MosfetModel (simulator)
  /// interface (softplus; exponentially-vanishing off-tail); the
  /// closed-form path keeps the paper's hard clamp. Without it, Newton can
  /// limit-cycle on the piecewise-linear kink. The induced current error
  /// is ~K*eps*ln2 (microamps) — far below model accuracy.
  double eps_smooth = 1e-3;

  void validate() const;
};

/// ASDM as a standalone analytic device (the form the closed-form SSN
/// formulas use) and, secondarily, as a MosfetModel so the same fitted
/// device can be dropped into the MNA simulator (bulk assumed at true
/// ground, i.e. V_s = -vbs).
class AsdmModel final : public MosfetModel {
 public:
  explicit AsdmModel(AsdmParams params);

  const AsdmParams& params() const { return params_; }

  /// The paper's form: current as a function of absolute gate and source
  /// voltages (bulk at 0, drain high). Hard-clamped at zero.
  double ids_gate_source(double vg, double vs) const;

  /// Gate voltage at which the device turns on for a given source voltage:
  /// V_g = lambda*V_s + V_x.
  double turn_on_vg(double vs) const;

  // MosfetModel interface. vds is ignored (pure saturation model); the
  // bulk-referenced identity V_g - lambda*V_s = vgs - (lambda-1)*V_s with
  // V_s = -vbs recovers the paper's form.
  double ids(double vgs, double vds, double vbs) const override;
  MosfetEval evaluate(double vgs, double vds, double vbs) const override;
  std::unique_ptr<MosfetModel> clone() const override;

 private:
  AsdmParams params_;
};

}  // namespace ssnkit::devices
