// "BSIM-lite": a compact drain-current model with vertical-field mobility
// degradation, velocity saturation, body effect, channel-length modulation
// and a smooth triode/saturation blend. It is deliberately *not* the
// alpha-power law — having a second, structurally different golden device
// lets the tests show that the ASDM extraction works against any realistic
// I–V surface, not just the family it resembles.
//
//   vt      = vt0 + gamma*(sqrt(phi2f+vsb) - sqrt(phi2f))
//   vgt     = smooth_relu(vgs - vt)
//   mu_eff  = 1 / (1 + theta*vgt)                 (vertical field)
//   vdsat   = vgt*vsat_v / (vgt + vsat_v)         (velocity saturation)
//   vdseff  = smooth-min(vds, vdsat)
//   ids     = kp*mu_eff*(vgt - vdseff/2)*vdseff / (1 + vdseff/vsat_v)
//             * (1 + lambda_clm*(vds - vdseff))
#pragma once

#include "devices/mosfet_model.hpp"

namespace ssnkit::devices {

struct BsimLiteParams {
  double kp = 3.0e-2;        ///< mu0*Cox*W/L [A/V^2] (W-scaled)
  double vt0 = 0.45;         ///< zero-bias threshold [V]
  double gamma = 0.35;       ///< body-effect coefficient [sqrt(V)]
  double phi2f = 0.85;       ///< surface potential [V]
  double theta = 0.25;       ///< mobility degradation [1/V]
  double vsat_v = 1.1;       ///< velocity-saturation voltage Esat*Leff [V]
  double lambda_clm = 0.06;  ///< channel-length modulation [1/V]
  double eps_smooth = 2e-3;  ///< off/on smoothing width [V]

  void validate() const;
};

class BsimLiteModel final : public MosfetModel {
 public:
  explicit BsimLiteModel(BsimLiteParams params);

  const BsimLiteParams& params() const { return params_; }

  double ids(double vgs, double vds, double vbs) const override;
  std::unique_ptr<MosfetModel> clone() const override;

  double vt(double vsb) const;
  double vdsat(double vgs, double vbs) const;

 private:
  BsimLiteParams params_;
};

}  // namespace ssnkit::devices
