#include "numeric/least_squares.hpp"

#include "numeric/qr.hpp"
#include "support/contracts.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::numeric {

LeastSquaresResult solve_least_squares(const Matrix& a, const Vector& b) {
  SSN_REQUIRE(a.rows() == b.size(), "solve_least_squares: row count mismatch");
  QrFactorization qr(a);
  LeastSquaresResult result;
  result.coefficients = qr.solve(b);
  result.residual_norm = qr.residual_norm(b);
  result.residual_rms =
      a.rows() == 0 ? 0.0 : result.residual_norm / std::sqrt(double(a.rows()));
  return result;
}

LeastSquaresResult solve_least_squares(const Matrix& a, const Vector& b,
                                       const Vector& weights) {
  SSN_REQUIRE(a.rows() == b.size() && a.rows() == weights.size(),
              "solve_least_squares: row count mismatch");
  Matrix wa = a;
  Vector wb = b;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    SSN_REQUIRE(weights[r] >= 0.0, "solve_least_squares: negative weight");
    const double s = std::sqrt(weights[r]);
    for (std::size_t c = 0; c < a.cols(); ++c) wa(r, c) *= s;
    wb[r] *= s;
  }
  return solve_least_squares(wa, wb);
}

}  // namespace ssnkit::numeric
