#include "numeric/lu.hpp"

#include "support/contracts.hpp"
#include "support/diagnostics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ssnkit::numeric {

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  SSN_REQUIRE(lu_.rows() == lu_.cols(), "LuFactorization: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at or below row k.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < std::numeric_limits<double>::min() * 16) {
      singular_ = true;
      continue;  // keep scanning so pivot_ratio() reflects the whole matrix
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
      sign_ = -sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv_pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;  // ssnlint-ignore(SSN-L001)
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = size();
  SSN_REQUIRE(b.size() == n, "LuFactorization::solve: size mismatch");
  if (singular_) {
    support::SolverDiagnostics diag;
    diag.where = "LuFactorization::solve";
    throw support::SolverError(support::SolverErrorKind::kSingularMatrix,
                               "singular matrix", std::move(diag));
  }

  // Apply permutation, then forward/backward substitution.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(i, j) * y[j];
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) y[ii] -= lu_(ii, j) * y[j];
    y[ii] /= lu_(ii, ii);
  }
  // Back-substitution postcondition: a NaN/Inf in b (or catastrophic growth
  // from a near-singular pivot) must surface here, not downstream in Newton.
  SSN_ASSERT_FINITE(y);
  return y;
}

double LuFactorization::determinant() const {
  if (singular_) return 0.0;
  double det = sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

double LuFactorization::pivot_ratio() const {
  if (size() == 0) return 1.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    const double p = std::fabs(lu_(i, i));
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return hi == 0.0 ? 0.0 : lo / hi;  // ssnlint-ignore(SSN-L001)
}

Vector solve_linear(Matrix a, const Vector& b) {
  SSN_REQUIRE(a.rows() == b.size(), "solve_linear: shape mismatch");
  return LuFactorization(std::move(a)).solve(b);
}

}  // namespace ssnkit::numeric
