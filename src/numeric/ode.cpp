#include "numeric/ode.hpp"

#include "support/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssnkit::numeric {

const char* to_string(OdeStatus status) {
  switch (status) {
    case OdeStatus::kOk: return "ok";
    case OdeStatus::kStepBudgetExhausted: return "step-budget-exhausted";
    case OdeStatus::kStepUnderflow: return "step-underflow";
  }
  return "unknown";
}

double OdeSolution::sample(double time, std::size_t k) const {
  SSN_REQUIRE(!t.empty(), "OdeSolution::sample: empty solution");
  if (time <= t.front()) return y.front()[k];
  if (time >= t.back()) return y.back()[k];
  const auto it = std::upper_bound(t.begin(), t.end(), time);
  const std::size_t hi = std::size_t(it - t.begin());
  const std::size_t lo = hi - 1;
  const double span = t[hi] - t[lo];
  const double w = span > 0.0 ? (time - t[lo]) / span : 0.0;
  return (1.0 - w) * y[lo][k] + w * y[hi][k];
}

OdeSolution rk4(const OdeRhs& f, double t0, double t1, Vector y0,
                std::size_t steps) {
  SSN_REQUIRE(steps > 0, "rk4: steps must be > 0");
  SSN_ASSERT_FINITE(y0);
  OdeSolution sol;
  sol.t.reserve(steps + 1);
  sol.y.reserve(steps + 1);
  const double h = (t1 - t0) / double(steps);
  double t = t0;
  Vector y = std::move(y0);
  sol.t.push_back(t);
  sol.y.push_back(y);
  for (std::size_t i = 0; i < steps; ++i) {
    const Vector k1 = f(t, y);
    const Vector k2 = f(t + 0.5 * h, y + 0.5 * h * k1);
    const Vector k3 = f(t + 0.5 * h, y + 0.5 * h * k2);
    const Vector k4 = f(t + h, y + h * k3);
    Vector dy = k1 + 2.0 * k2 + 2.0 * k3 + k4;
    y += (h / 6.0) * dy;
    // Step-acceptance contract: a non-finite state means the RHS blew up
    // (or was handed garbage); stop here instead of filling the solution
    // with NaNs that later look like a plausible waveform of zeros.
    SSN_ASSERT_FINITE(y);
    t = t0 + double(i + 1) * h;
    sol.t.push_back(t);
    sol.y.push_back(y);
    ++sol.steps_taken;
  }
  return sol;
}

namespace {

// Dormand–Prince RK5(4) Butcher tableau.
constexpr double kC[7] = {0.0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};
constexpr double kA[7][6] = {
    {},
    {1.0 / 5},
    {3.0 / 40, 9.0 / 40},
    {44.0 / 45, -56.0 / 15, 32.0 / 9},
    {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
    {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
    {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84}};
constexpr double kB5[7] = {35.0 / 384,     0.0,  500.0 / 1113, 125.0 / 192,
                           -2187.0 / 6784, 11.0 / 84, 0.0};
constexpr double kB4[7] = {5179.0 / 57600,  0.0,           7571.0 / 16695,
                           393.0 / 640,     -92097.0 / 339200,
                           187.0 / 2100,    1.0 / 40};

}  // namespace

OdeSolution rk45(const OdeRhs& f, double t0, double t1, Vector y0,
                 const Rk45Options& opts) {
  const double span = t1 - t0;
  SSN_REQUIRE(span > 0.0, "rk45: t1 must be > t0");
  SSN_ASSERT_FINITE(y0);
  const std::size_t dim = y0.size();

  OdeSolution sol;
  double t = t0;
  Vector y = std::move(y0);
  sol.t.push_back(t);
  sol.y.push_back(y);

  double h = opts.initial_step > 0.0 ? opts.initial_step : span / 1000.0;
  const double h_min = opts.min_step > 0.0 ? opts.min_step : span * 1e-14;

  Vector k[7];
  while (t < t1) {
    if (sol.steps_taken + sol.steps_rejected > opts.max_steps) {
      // Keep the accepted prefix usable instead of discarding it: callers
      // inspect `status` and can still sample() everything up to sol.t.back().
      sol.status = OdeStatus::kStepBudgetExhausted;
      return sol;
    }
    h = std::min(h, t1 - t);

    k[0] = f(t, y);
    for (int s = 1; s < 7; ++s) {
      Vector ys = y;
      for (int j = 0; j < s; ++j)
        if (kA[s][j] != 0.0) ys += (h * kA[s][j]) * k[j];  // ssnlint-ignore(SSN-L001)
      k[s] = f(t + kC[s] * h, ys);
    }
    Vector y5 = y, y4 = y;
    for (int s = 0; s < 7; ++s) {
      if (kB5[s] != 0.0) y5 += (h * kB5[s]) * k[s];  // ssnlint-ignore(SSN-L001)
      if (kB4[s] != 0.0) y4 += (h * kB4[s]) * k[s];  // ssnlint-ignore(SSN-L001)
    }
    // Error norm scaled by tolerance.
    double err = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double scale =
          opts.abs_tol + opts.rel_tol * std::max(std::fabs(y[i]), std::fabs(y5[i]));
      err = std::max(err, std::fabs(y5[i] - y4[i]) / scale);
    }
    // A NaN error estimate would fail every comparison below: the step would
    // be rejected with factor 5.0 (the err > 0 test is false for NaN), h
    // would grow, and the loop would spin to the step budget. Fail fast.
    SSN_REQUIRE(std::isfinite(err),
                "rk45: non-finite error estimate (RHS returned NaN/Inf)");
    if (err <= 1.0) {
      t += h;
      y = std::move(y5);
      SSN_ASSERT_FINITE(y);
      sol.t.push_back(t);
      sol.y.push_back(y);
      ++sol.steps_taken;
    } else {
      ++sol.steps_rejected;
    }
    const double factor = err > 0.0 ? 0.9 * std::pow(err, -0.2) : 5.0;
    h *= std::clamp(factor, 0.2, 5.0);
    if (h < h_min) {
      sol.status = OdeStatus::kStepUnderflow;
      return sol;
    }
  }
  return sol;
}

}  // namespace ssnkit::numeric
