// Scalar root finding. The implicit baseline SSN formulas (Senthinathan–
// Prince, Vemuru, Song) are fixed-point equations in V_max and are solved
// with the safeguarded Newton / Brent routines here.
#pragma once

#include <functional>
#include <optional>

namespace ssnkit::numeric {

/// Options shared by the scalar solvers.
struct RootOptions {
  double x_tol = 1e-12;      ///< absolute tolerance on the root
  double f_tol = 1e-14;      ///< absolute tolerance on |f(x)|
  int max_iterations = 200;
};

/// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite sign
/// (throws std::invalid_argument otherwise). Always converges.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts = {});

/// Brent's method on a bracketing interval [lo, hi]: inverse quadratic
/// interpolation + secant, falling back to bisection. Superlinear and safe.
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts = {});

/// Newton's method safeguarded by a bracket: starts at x0 and falls back to
/// bisection whenever the Newton step leaves [lo, hi] or stalls. The
/// derivative is supplied by the caller.
double newton_safeguarded(const std::function<double(double)>& f,
                          const std::function<double(double)>& df, double x0,
                          double lo, double hi, const RootOptions& opts = {});

/// Plain Newton iteration without a bracket; returns std::nullopt when the
/// iteration diverges or the derivative vanishes.
std::optional<double> newton(const std::function<double(double)>& f,
                             const std::function<double(double)>& df,
                             double x0, const RootOptions& opts = {});

/// Damped fixed-point iteration x <- (1-damping)*x + damping*g(x); returns
/// std::nullopt when it fails to converge. Used by the reconstructed
/// baseline SSN formulas which are naturally of the form V = g(V).
std::optional<double> fixed_point(const std::function<double(double)>& g,
                                  double x0, double damping = 0.5,
                                  const RootOptions& opts = {});

}  // namespace ssnkit::numeric
