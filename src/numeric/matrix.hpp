// Dense linear algebra primitives used by the MNA simulator and the
// fitting routines. Sized for circuit problems with tens to a few hundred
// unknowns; everything is double precision and row-major.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace ssnkit::numeric {

/// Dense column vector.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i);
  double at(std::size_t i) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void resize(std::size_t n, double fill = 0.0) { data_.resize(n, fill); }
  void fill(double value);

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);

  /// Euclidean norm.
  double norm2() const;
  /// Maximum absolute entry (infinity norm).
  double norm_inf() const;
  /// Dot product; both vectors must have equal size.
  double dot(const Vector& rhs) const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double s, Vector v);
Vector operator*(Vector v, double s);

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);
  void fill(double value);

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Matrix-vector product; x.size() must equal cols().
  Vector mul(const Vector& x) const;
  /// Matrix-matrix product; rhs.rows() must equal cols().
  Matrix mul(const Matrix& rhs) const;

  /// Largest absolute entry.
  double norm_inf() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(double s, Matrix m);
Vector operator*(const Matrix& m, const Vector& x);
Matrix operator*(const Matrix& a, const Matrix& b);

std::ostream& operator<<(std::ostream& os, const Vector& v);
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace ssnkit::numeric
