#include "numeric/complex_la.hpp"

#include "support/contracts.hpp"
#include "support/diagnostics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ssnkit::numeric {

void CVector::fill(Complex value) {
  for (auto& x : data_) x = value;
}

double CVector::norm_inf() const {
  double acc = 0.0;
  for (const auto& x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

void CMatrix::fill(Complex value) {
  for (auto& x : data_) x = value;
}

CVector CMatrix::mul(const CVector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CMatrix::mul: size mismatch");
  CVector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

CLuFactorization::CLuFactorization(CMatrix a) : lu_(std::move(a)) {
  SSN_REQUIRE(lu_.rows() == lu_.cols(),
              "CLuFactorization: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < std::numeric_limits<double>::min() * 16) {
      singular_ = true;
      continue;
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const Complex inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex m = lu_(r, k) * inv_pivot;
      lu_(r, k) = m;
      if (m == Complex{}) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

CVector CLuFactorization::solve(const CVector& b) const {
  const std::size_t n = size();
  SSN_REQUIRE(b.size() == n, "CLuFactorization::solve: size");
  if (singular_) {
    support::SolverDiagnostics diag;
    diag.where = "CLuFactorization::solve";
    throw support::SolverError(support::SolverErrorKind::kSingularMatrix,
                               "singular matrix", std::move(diag));
  }
  CVector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(i, j) * y[j];
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) y[ii] -= lu_(ii, j) * y[j];
    y[ii] /= lu_(ii, ii);
  }
  return y;
}

CVector solve_linear(CMatrix a, const CVector& b) {
  SSN_REQUIRE(a.rows() == b.size(), "solve_linear: shape mismatch");
  return CLuFactorization(std::move(a)).solve(b);
}

}  // namespace ssnkit::numeric
