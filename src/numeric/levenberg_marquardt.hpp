// Levenberg–Marquardt nonlinear least squares. Used to extract
// alpha-power-law parameters (B, V_T, alpha) from a golden device model —
// the step a designer would run against foundry BSIM data before using the
// Vemuru/Song baseline formulas.
#pragma once

#include "numeric/matrix.hpp"

#include <functional>

namespace ssnkit::numeric {

/// Residual function: given parameters p, fill r with the residual vector.
/// The residual size must stay constant across calls.
using ResidualFn = std::function<void(const Vector& p, Vector& r)>;

struct LmOptions {
  int max_iterations = 200;
  double gradient_tol = 1e-10;   ///< stop when ||J^T r||_inf is below this
  double step_tol = 1e-12;       ///< stop when the step is this small
  double initial_lambda = 1e-3;  ///< initial damping
  double fd_step = 1e-6;         ///< relative finite-difference step for J
  /// Optional per-parameter lower/upper bounds (empty = unbounded).
  Vector lower_bounds;
  Vector upper_bounds;
};

struct LmResult {
  Vector parameters;
  double residual_norm = 0.0;  ///< ||r||_2 at the solution
  int iterations = 0;
  bool converged = false;
};

/// Minimize ||r(p)||² starting from p0. The Jacobian is computed by forward
/// finite differences. Residual size m must be >= parameter count n.
LmResult levenberg_marquardt(const ResidualFn& residual, Vector p0,
                             std::size_t residual_size,
                             const LmOptions& opts = {});

}  // namespace ssnkit::numeric
