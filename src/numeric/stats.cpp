#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>
#include <limits>
#include <stdexcept>

namespace ssnkit::numeric {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / double(xs.size());
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / double(xs.size()));
}

double max_abs(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc = std::max(acc, std::fabs(x));
  return acc;
}

double min_value(std::span<const double> xs) {
  double acc = std::numeric_limits<double>::infinity();
  for (double x : xs) acc = std::min(acc, x);
  return acc;
}

double max_value(std::span<const double> xs) {
  double acc = -std::numeric_limits<double>::infinity();
  for (double x : xs) acc = std::max(acc, x);
  return acc;
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / double(xs.size() - 1));
}

double relative_error(double a, double b, double floor) {
  if (floor <= 0.0) throw std::invalid_argument("relative_error: floor must be > 0");
  return std::fabs(a - b) / std::max(std::fabs(b), floor);
}

double max_relative_error(std::span<const double> got,
                          std::span<const double> want, double floor) {
  if (got.size() != want.size())
    throw std::invalid_argument("max_relative_error: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i)
    acc = std::max(acc, relative_error(got[i], want[i], floor));
  return acc;
}

double rms_relative_error(std::span<const double> got,
                          std::span<const double> want, double floor) {
  if (got.size() != want.size())
    throw std::invalid_argument("rms_relative_error: size mismatch");
  if (got.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double e = relative_error(got[i], want[i], floor);
    acc += e * e;
  }
  return std::sqrt(acc / double(got.size()));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (!(q >= 0.0 && q <= 1.0))
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * double(sorted.size() - 1);
  const std::size_t lo = std::size_t(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double w = pos - double(lo);
  return (1.0 - w) * sorted[lo] + w * sorted[hi];
}

}  // namespace ssnkit::numeric
