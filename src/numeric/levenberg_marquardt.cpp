#include "numeric/levenberg_marquardt.hpp"

#include "numeric/lu.hpp"
#include "support/contracts.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::numeric {

namespace {

void clamp_to_bounds(Vector& p, const LmOptions& opts) {
  if (!opts.lower_bounds.empty())
    for (std::size_t i = 0; i < p.size(); ++i)
      p[i] = std::max(p[i], opts.lower_bounds[i]);
  if (!opts.upper_bounds.empty())
    for (std::size_t i = 0; i < p.size(); ++i)
      p[i] = std::min(p[i], opts.upper_bounds[i]);
}

}  // namespace

LmResult levenberg_marquardt(const ResidualFn& residual, Vector p0,
                             std::size_t residual_size, const LmOptions& opts) {
  const std::size_t n = p0.size();
  const std::size_t m = residual_size;
  SSN_REQUIRE(m >= n, "levenberg_marquardt: fewer residuals than parameters");
  SSN_REQUIRE(opts.lower_bounds.empty() || opts.lower_bounds.size() == n,
              "levenberg_marquardt: lower bound size mismatch");
  SSN_REQUIRE(opts.upper_bounds.empty() || opts.upper_bounds.size() == n,
              "levenberg_marquardt: upper bound size mismatch");
  SSN_ASSERT_FINITE(p0);

  LmResult out;
  Vector p = std::move(p0);
  clamp_to_bounds(p, opts);

  Vector r(m), r_trial(m), rp(m);
  residual(p, r);
  double cost = r.dot(r);
  // Fail fast on a poisoned starting point: with a non-finite initial cost
  // every trial comparison below is false, the damping loop runs dry, and
  // the fit would exit with converged=true while p never moved.
  SSN_REQUIRE(std::isfinite(cost),
              "levenberg_marquardt: residual is non-finite at the initial "
              "parameters (NaN/Inf cost)");
  double lambda = opts.initial_lambda;
  Matrix jac(m, n);

  for (out.iterations = 0; out.iterations < opts.max_iterations; ++out.iterations) {
    // Forward-difference Jacobian.
    for (std::size_t j = 0; j < n; ++j) {
      const double h = opts.fd_step * std::max(std::fabs(p[j]), 1e-8);
      Vector pj = p;
      pj[j] += h;
      clamp_to_bounds(pj, opts);
      const double hj = pj[j] - p[j];
      if (hj == 0.0) {  // pinned at a bound: step downward instead  ssnlint-ignore(SSN-L001)
        pj = p;
        pj[j] -= h;
        clamp_to_bounds(pj, opts);
      }
      const double dh = pj[j] - p[j];
      residual(pj, rp);
      const double inv = dh != 0.0 ? 1.0 / dh : 0.0;  // ssnlint-ignore(SSN-L001)
      for (std::size_t i = 0; i < m; ++i) jac(i, j) = (rp[i] - r[i]) * inv;
    }

    // Normal equations: (J^T J + lambda diag(J^T J)) dp = -J^T r.
    // n is the (tiny, fixed) parameter count of a device fit, not a circuit
    // size; a per-iteration dense build is the right tool here.
    Matrix jtj(n, n);  // ssnlint-ignore(SSN-L008)
    Vector jtr(n);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a; b < n; ++b) {
        double s = 0.0;
        for (std::size_t i = 0; i < m; ++i) s += jac(i, a) * jac(i, b);
        jtj(a, b) = s;
        jtj(b, a) = s;
      }
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) s += jac(i, a) * r[i];
      jtr[a] = s;
    }

    double grad_inf = 0.0;
    for (std::size_t a = 0; a < n; ++a) grad_inf = std::max(grad_inf, std::fabs(jtr[a]));
    if (grad_inf < opts.gradient_tol) {
      out.converged = true;
      break;
    }

    bool improved = false;
    for (int tries = 0; tries < 30 && !improved; ++tries) {
      Matrix damped = jtj;
      for (std::size_t a = 0; a < n; ++a)
        damped(a, a) += lambda * std::max(jtj(a, a), 1e-30);
      LuFactorization lu(std::move(damped));
      if (lu.singular()) {
        lambda *= 10.0;
        continue;
      }
      Vector neg_jtr(n);
      for (std::size_t a = 0; a < n; ++a) neg_jtr[a] = -jtr[a];
      Vector dp = lu.solve(neg_jtr);

      Vector p_trial = p + dp;
      clamp_to_bounds(p_trial, opts);
      residual(p_trial, r_trial);
      const double cost_trial = r_trial.dot(r_trial);
      if (std::isfinite(cost_trial) && cost_trial < cost) {
        const double step_norm = dp.norm_inf();
        p = p_trial;
        r = r_trial;
        cost = cost_trial;
        SSN_ASSERT_FINITE(cost);
        lambda = std::max(lambda * 0.3, 1e-14);
        improved = true;
        if (step_norm < opts.step_tol) {
          out.converged = true;
          out.iterations++;
          goto done;
        }
      } else {
        lambda *= 10.0;
      }
    }
    if (!improved) {
      out.converged = true;  // stuck: local minimum within damping budget
      break;
    }
  }
done:
  out.parameters = std::move(p);
  out.residual_norm = std::sqrt(cost);
  SSN_ENSURE(std::isfinite(out.residual_norm),
             "levenberg_marquardt: non-finite residual norm at exit");
  SSN_ASSERT_FINITE(out.parameters);
  return out;
}

}  // namespace ssnkit::numeric
