// Sparse linear algebra for large MNA systems. Circuit Jacobians are
// extremely sparse (a handful of entries per row), and their sparsity
// pattern is fixed for a given (circuit, analysis mode): every element
// stamps the same coordinate set at every Newton iteration, only the
// values change. The engine exploits that with StampedMatrix (a cached
// "stamp plan": discover the pattern once, then stamp values straight
// into a reusable CSR workspace) and SparseFactor (symbolic analysis and
// pivot order computed once, numeric-only refactorization per iteration).
//
// SparseMatrix/SparseLu are the original one-shot triplet/CSR classes,
// kept for tests and callers that factor a matrix once.
#pragma once

#include "numeric/matrix.hpp"

#include <cstddef>
#include <vector>

namespace ssnkit::numeric {

/// Compressed-sparse-row matrix, built from accumulating triplets.
class SparseMatrix {
 public:
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Build from the nonzero entries of a dense matrix (|a_ij| > drop).
  static SparseMatrix from_dense(const Matrix& dense, double drop = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const;

  /// Accumulate a value (duplicates sum when compiled).
  void add(std::size_t r, std::size_t c, double v);

  /// Sort/merge triplets into CSR form. Idempotent; called automatically by
  /// the consumers below.
  void compile() const;

  /// Entry lookup (0 when absent). Compiles on first use.
  double at(std::size_t r, std::size_t c) const;

  /// y = A x.
  Vector mul(const Vector& x) const;

  /// Dense copy (for tests and small-problem fallbacks).
  Matrix to_dense() const;

  // CSR access (valid after compile()).
  const std::vector<std::size_t>& row_ptr() const;
  const std::vector<std::size_t>& col_idx() const;
  const std::vector<double>& values() const;

 private:
  struct Triplet {
    std::size_t r, c;
    double v = 0.0;
  };

  std::size_t rows_, cols_;
  mutable std::vector<Triplet> triplets_;
  mutable bool compiled_ = false;
  mutable std::vector<std::size_t> row_ptr_;
  mutable std::vector<std::size_t> col_idx_;
  mutable std::vector<double> values_;
};

/// Sparse LU with partial pivoting (Gilbert–Peierls left-looking
/// factorization over a column-compressed copy). Suitable for the
/// unsymmetric, diagonally-dominant-ish matrices MNA produces.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a);

  bool singular() const { return singular_; }
  std::size_t size() const { return n_; }
  /// Total stored entries of L + U (fill-in metric for tests/benches).
  std::size_t factor_nonzeros() const;

  /// Solve A x = b; throws std::runtime_error when singular.
  Vector solve(const Vector& b) const;

 private:
  std::size_t n_ = 0;
  bool singular_ = false;
  // Column-major factors: L has unit diagonal (not stored).
  std::vector<std::vector<std::size_t>> l_rows_, u_rows_;
  std::vector<std::vector<double>> l_vals_, u_vals_;
  std::vector<double> u_diag_;
  std::vector<std::size_t> perm_;  // row permutation: PA = LU
};

/// Dense-or-sparse dispatch: uses SparseLu when the system is larger than
/// `sparse_threshold` unknowns, dense LU otherwise.
Vector solve_linear_auto(const Matrix& a, const Vector& b,
                         std::size_t sparse_threshold = 48);

/// Fixed-pattern CSR matrix for repeated assembly ("stamp plan" + value
/// workspace). Two modes:
///
///  - discovery: begin_pattern(n) starts collecting (row, col, value)
///    triplets; finalize_pattern() sorts/merges them into CSR form. The
///    discovery pass doubles as a normal assembly — the merged values are
///    immediately usable.
///  - bound: with a finalized pattern, clear() zeroes the values and add()
///    accumulates into the existing slot via binary search. An add() at a
///    coordinate outside the pattern is counted in missed() instead of
///    stored — the caller asserts the pattern held and rebuilds if not.
///
/// epoch() increments on every finalize_pattern(), letting factorizations
/// detect that their symbolic analysis went stale.
class StampedMatrix {
 public:
  StampedMatrix() = default;

  /// Discard any pattern and start a discovery pass for an n x n system.
  void begin_pattern(std::size_t n);
  /// Sort/merge the discovered triplets into CSR; bumps epoch().
  void finalize_pattern();
  /// Drop the pattern entirely (next assembly must rediscover).
  void reset_pattern();

  bool discovering() const { return discovering_; }
  bool has_pattern() const { return !discovering_ && n_ > 0; }
  std::size_t size() const { return n_; }
  std::size_t nonzeros() const { return col_idx_.size(); }
  /// Pattern generation counter (0 = never finalized).
  std::size_t epoch() const { return epoch_; }

  /// Zero the values for a fresh bound-mode assembly; resets missed().
  void clear();
  /// Accumulate a value (both modes; see class comment).
  void add(std::size_t r, std::size_t c, double v);
  /// Bound-mode adds that fell outside the pattern since the last clear().
  std::size_t missed() const { return missed_; }

  /// Entry lookup (0 when absent). Pattern must be finalized.
  double at(std::size_t r, std::size_t c) const;
  /// y = A x into a caller-provided vector (no allocation).
  void mul_into(const Vector& x, Vector& y) const;
  /// Dense copy (tests).
  Matrix to_dense() const;

  // CSR access (valid once finalized).
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  /// Slot of (r, c) in the CSR arrays, or npos when outside the pattern.
  std::size_t slot(std::size_t r, std::size_t c) const;

  struct Triplet {
    std::size_t r = 0, c = 0;
    double v = 0.0;
  };

  std::size_t n_ = 0;
  bool discovering_ = false;
  std::size_t epoch_ = 0;
  std::size_t missed_ = 0;
  std::vector<Triplet> triplets_;  // discovery only; freed on finalize
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<double> values_;
};

/// Sparse LU (Gilbert–Peierls, partial pivoting) split into a full
/// factorization — which performs the symbolic reachability analysis,
/// chooses the pivot order and records the fill pattern — and a numeric
/// refactorization that replays the elimination over the recorded pattern
/// with fresh values. Because an MNA Jacobian's pattern is fixed across
/// Newton iterations and timesteps, the engine factorizes once per pattern
/// epoch and refactorizes everywhere else; solve() is allocation-free.
///
/// Unlike SparseLu, exact-zero entries are kept in the stored pattern so a
/// later refactorization with different values cannot silently lose fill.
class SparseFactor {
 public:
  SparseFactor() = default;

  /// Full factorization: symbolic analysis + pivoting + numerics.
  /// Returns false (and singular() == true) on a singular system.
  bool factorize(const StampedMatrix& a);

  /// Numeric-only refactorization reusing the previous pivot order and
  /// fill pattern. Returns false when the matrix shape/epoch changed, no
  /// factorization exists, a reused pivot degraded badly (the caller
  /// should re-factorize), or the system went singular.
  bool refactorize(const StampedMatrix& a);

  bool singular() const { return singular_; }
  std::size_t size() const { return n_; }
  /// Pattern epoch of the StampedMatrix this factorization was built for.
  std::size_t pattern_epoch() const { return epoch_; }
  /// Total stored entries of L + U (fill-in metric for tests/benches).
  std::size_t factor_nonzeros() const;

  /// Solve A x = b into a caller-provided vector (resized to n; no other
  /// allocation). Throws support::SolverError when singular.
  void solve(const Vector& b, Vector& x) const;

  /// Solve A^T x = b using the same factors (PA = LU gives
  /// A^T = U^T L^T P, so one ascending U^T sweep, one descending L^T
  /// sweep, and the row permutation on the way out). Needed by the Hager
  /// 1-norm condition estimator, which alternates A and A^T solves; it runs
  /// once per factorization epoch, never per accepted step, so the local
  /// scratch vector here is off the hot path. Throws when singular.
  void solve_transpose(const Vector& b, Vector& x) const;

  /// One step of iterative refinement against the currently stamped values:
  /// r = b - A x, solve A d = r, x += d. `r` and `d` are caller scratch so
  /// repeated calls allocate nothing. The factors must match `a`'s epoch
  /// (the usual solve precondition); the caller re-measures the residual
  /// afterwards to decide whether the refinement recovered the solve.
  void refine(const StampedMatrix& a, const Vector& b, Vector& x, Vector& r,
              Vector& d) const;

 private:
  static constexpr std::size_t npos = std::size_t(-1);

  /// Fault-injection hook (kFactorBitFlip): in fault-injection builds an
  /// armed site flips one mantissa bit of a stored pivot after a successful
  /// (re)factorization — the "silently wrong solve" corruption the verify
  /// layer's residual check must catch. Compiled to nothing elsewhere.
  void maybe_corrupt_factors();

  std::size_t n_ = 0;
  std::size_t epoch_ = npos;
  bool singular_ = true;
  // Column-compressed copy of A's pattern; csc_src_[p] indexes into the
  // StampedMatrix CSR values array so refactorize can gather without
  // rebuilding the transpose.
  std::vector<std::size_t> csc_ptr_, csc_row_, csc_src_;
  // Per-column elimination pattern in topological order (original row
  // indices, as discovered by the symbolic DFS at factorize time).
  std::vector<std::vector<std::size_t>> pat_;
  // Column-major factors: L has unit diagonal (not stored); row indices
  // are original (unpermuted) for L, pivot positions for U.
  std::vector<std::vector<std::size_t>> l_rows_, u_rows_;
  std::vector<std::vector<double>> l_vals_, u_vals_;
  std::vector<double> u_diag_;
  std::vector<std::size_t> perm_;  // pivot position -> original row
  std::vector<std::size_t> pinv_;  // original row -> pivot position
  std::vector<double> work_;       // scatter workspace (kept zeroed)
};

}  // namespace ssnkit::numeric
