// Sparse linear algebra for large MNA systems. Circuit Jacobians are
// extremely sparse (a handful of entries per row), so past ~50 unknowns a
// sparse LU beats the dense solver by orders of magnitude. The engine
// assembles dense (stamping stays trivial) and converts — the O(n^2) scan
// is negligible next to the O(n^3) dense factorization it replaces.
#pragma once

#include "numeric/matrix.hpp"

#include <vector>

namespace ssnkit::numeric {

/// Compressed-sparse-row matrix, built from accumulating triplets.
class SparseMatrix {
 public:
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Build from the nonzero entries of a dense matrix (|a_ij| > drop).
  static SparseMatrix from_dense(const Matrix& dense, double drop = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const;

  /// Accumulate a value (duplicates sum when compiled).
  void add(std::size_t r, std::size_t c, double v);

  /// Sort/merge triplets into CSR form. Idempotent; called automatically by
  /// the consumers below.
  void compile() const;

  /// Entry lookup (0 when absent). Compiles on first use.
  double at(std::size_t r, std::size_t c) const;

  /// y = A x.
  Vector mul(const Vector& x) const;

  /// Dense copy (for tests and small-problem fallbacks).
  Matrix to_dense() const;

  // CSR access (valid after compile()).
  const std::vector<std::size_t>& row_ptr() const;
  const std::vector<std::size_t>& col_idx() const;
  const std::vector<double>& values() const;

 private:
  struct Triplet {
    std::size_t r, c;
    double v = 0.0;
  };

  std::size_t rows_, cols_;
  mutable std::vector<Triplet> triplets_;
  mutable bool compiled_ = false;
  mutable std::vector<std::size_t> row_ptr_;
  mutable std::vector<std::size_t> col_idx_;
  mutable std::vector<double> values_;
};

/// Sparse LU with partial pivoting (Gilbert–Peierls left-looking
/// factorization over a column-compressed copy). Suitable for the
/// unsymmetric, diagonally-dominant-ish matrices MNA produces.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a);

  bool singular() const { return singular_; }
  std::size_t size() const { return n_; }
  /// Total stored entries of L + U (fill-in metric for tests/benches).
  std::size_t factor_nonzeros() const;

  /// Solve A x = b; throws std::runtime_error when singular.
  Vector solve(const Vector& b) const;

 private:
  std::size_t n_ = 0;
  bool singular_ = false;
  // Column-major factors: L has unit diagonal (not stored).
  std::vector<std::vector<std::size_t>> l_rows_, u_rows_;
  std::vector<std::vector<double>> l_vals_, u_vals_;
  std::vector<double> u_diag_;
  std::vector<std::size_t> perm_;  // row permutation: PA = LU
};

/// Dense-or-sparse dispatch: uses SparseLu when the system is larger than
/// `sparse_threshold` unknowns, dense LU otherwise.
Vector solve_linear_auto(const Matrix& a, const Vector& b,
                         std::size_t sparse_threshold = 48);

}  // namespace ssnkit::numeric
