#include "numeric/roots.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::numeric {

namespace {

void require_bracket(double flo, double fhi) {
  if (std::isnan(flo) || std::isnan(fhi))
    throw std::invalid_argument("root finding: f is NaN at a bracket endpoint");
  if (flo * fhi > 0.0)
    throw std::invalid_argument("root finding: endpoints do not bracket a root");
}

}  // namespace

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts) {
  if (lo > hi) std::swap(lo, hi);
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;  // ssnlint-ignore(SSN-L001)
  if (fhi == 0.0) return hi;  // ssnlint-ignore(SSN-L001)
  require_bracket(flo, fhi);
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (std::fabs(fmid) <= opts.f_tol || (hi - lo) * 0.5 <= opts.x_tol) return mid;
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return a;  // ssnlint-ignore(SSN-L001)
  if (fb == 0.0) return b;  // ssnlint-ignore(SSN-L001)
  require_bracket(fa, fb);
  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;
  for (int i = 0; i < opts.max_iterations; ++i) {
    if (std::fabs(fb) <= opts.f_tol || std::fabs(b - a) <= opts.x_tol) return b;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      s = b - fb * (b - a) / (fb - fa);  // secant
    }
    const double lo34 = (3.0 * a + b) / 4.0;
    const bool out_of_range = !((s > std::min(lo34, b)) && (s < std::max(lo34, b)));
    const bool slow = mflag ? std::fabs(s - b) >= std::fabs(b - c) / 2.0
                            : std::fabs(s - b) >= std::fabs(c - d) / 2.0;
    const bool tiny = mflag ? std::fabs(b - c) < opts.x_tol
                            : std::fabs(c - d) < opts.x_tol;
    if (out_of_range || slow || tiny) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

double newton_safeguarded(const std::function<double(double)>& f,
                          const std::function<double(double)>& df, double x0,
                          double lo, double hi, const RootOptions& opts) {
  if (lo > hi) std::swap(lo, hi);
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;  // ssnlint-ignore(SSN-L001)
  if (fhi == 0.0) return hi;  // ssnlint-ignore(SSN-L001)
  require_bracket(flo, fhi);
  double x = std::clamp(x0, lo, hi);
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double fx = f(x);
    if (std::fabs(fx) <= opts.f_tol) return x;
    // Shrink the bracket around the sign change.
    if ((fx < 0.0) == (flo < 0.0)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
    }
    const double dfx = df(x);
    double next = (dfx != 0.0) ? x - fx / dfx : lo - 1.0;  // force bisection  ssnlint-ignore(SSN-L001)
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) <= opts.x_tol) return next;
    x = next;
  }
  return x;
}

std::optional<double> newton(const std::function<double(double)>& f,
                             const std::function<double(double)>& df,
                             double x0, const RootOptions& opts) {
  double x = x0;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double fx = f(x);
    if (std::fabs(fx) <= opts.f_tol) return x;
    const double dfx = df(x);
    if (dfx == 0.0 || !std::isfinite(dfx)) return std::nullopt;  // ssnlint-ignore(SSN-L001)
    const double next = x - fx / dfx;
    if (!std::isfinite(next)) return std::nullopt;
    if (std::fabs(next - x) <= opts.x_tol) return next;
    x = next;
  }
  return std::nullopt;
}

std::optional<double> fixed_point(const std::function<double(double)>& g,
                                  double x0, double damping,
                                  const RootOptions& opts) {
  if (damping <= 0.0 || damping > 1.0)
    throw std::invalid_argument("fixed_point: damping must be in (0, 1]");
  double x = x0;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double gx = g(x);
    if (!std::isfinite(gx)) return std::nullopt;
    const double next = (1.0 - damping) * x + damping * gx;
    if (std::fabs(next - x) <= opts.x_tol) return next;
    x = next;
  }
  return std::nullopt;
}

}  // namespace ssnkit::numeric
