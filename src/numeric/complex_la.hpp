// Complex dense linear algebra for small-signal (AC) analysis: the MNA
// system at a frequency point is (G + j*omega*C) x = b with complex x, b.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ssnkit::numeric {

using Complex = std::complex<double>;

/// Dense complex vector.
class CVector {
 public:
  CVector() = default;
  explicit CVector(std::size_t n, Complex fill = {}) : data_(n, fill) {}

  std::size_t size() const { return data_.size(); }
  Complex& operator[](std::size_t i) { return data_[i]; }
  const Complex& operator[](std::size_t i) const { return data_[i]; }
  void fill(Complex value);
  double norm_inf() const;

 private:
  std::vector<Complex> data_;
};

/// Dense row-major complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols, Complex fill = {})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  Complex& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  void fill(Complex value);
  CVector mul(const CVector& x) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Complex> data_;
};

/// LU with partial pivoting over the complex field (pivot by magnitude).
class CLuFactorization {
 public:
  explicit CLuFactorization(CMatrix a);
  bool singular() const { return singular_; }
  std::size_t size() const { return lu_.rows(); }
  /// Solve A x = b; throws std::runtime_error when singular.
  CVector solve(const CVector& b) const;

 private:
  CMatrix lu_;
  std::vector<std::size_t> perm_;
  bool singular_ = false;
};

/// One-shot solve.
CVector solve_linear(CMatrix a, const CVector& b);

}  // namespace ssnkit::numeric
