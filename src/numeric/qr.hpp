// Householder QR factorization, used by the least-squares fitter. QR is
// preferred over normal equations for the ASDM extraction because the
// Vandermonde-like design matrices there can be poorly scaled.
#pragma once

#include "numeric/matrix.hpp"

namespace ssnkit::numeric {

/// Householder QR of an m-by-n matrix with m >= n.
class QrFactorization {
 public:
  explicit QrFactorization(Matrix a);

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// True when some diagonal of R is (numerically) zero, i.e. the columns
  /// of A are linearly dependent.
  bool rank_deficient() const { return rank_deficient_; }

  /// Minimum-residual solution of A x = b (least squares when m > n).
  /// Throws std::runtime_error when rank deficient.
  Vector solve(const Vector& b) const;

  /// Euclidean norm of the least-squares residual for the given rhs.
  double residual_norm(const Vector& b) const;

 private:
  Vector apply_qt(const Vector& b) const;

  Matrix qr_;      // R in the upper triangle, Householder vectors below
  Vector beta_;    // Householder scalar coefficients
  bool rank_deficient_ = false;
};

}  // namespace ssnkit::numeric
