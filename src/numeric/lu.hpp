// LU factorization with partial pivoting — the linear solver behind every
// Newton iteration of the MNA engine.
#pragma once

#include "numeric/matrix.hpp"

#include <vector>

namespace ssnkit::numeric {

/// LU factorization of a square matrix with row partial pivoting.
///
/// Throws std::invalid_argument for non-square input. A numerically
/// singular matrix is detected at factorization time (`singular()` returns
/// true) and `solve()` on it throws std::runtime_error.
class LuFactorization {
 public:
  explicit LuFactorization(Matrix a);

  bool singular() const { return singular_; }
  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b. b.size() must equal size().
  Vector solve(const Vector& b) const;

  /// Determinant of the original matrix (0 when singular).
  double determinant() const;

  /// Reciprocal pivot-growth based condition estimate: the ratio of the
  /// smallest to the largest |pivot|. Near zero means ill-conditioned.
  double pivot_ratio() const;

 private:
  Matrix lu_;                 // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;
  int sign_ = 1;              // permutation parity, for determinant()
  bool singular_ = false;
};

/// One-shot convenience: solve A x = b.
/// Throws std::runtime_error when A is singular.
Vector solve_linear(Matrix a, const Vector& b);

}  // namespace ssnkit::numeric
