#include "numeric/sparse.hpp"

#include "support/contracts.hpp"
#include "support/diagnostics.hpp"
#include "support/faultinject.hpp"

#include "numeric/lu.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace ssnkit::numeric {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double drop) {
  SparseMatrix s(dense.rows(), dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (std::fabs(dense(r, c)) > drop) s.add(r, c, dense(r, c));
  return s;
}

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("SparseMatrix::add: index out of range");
  triplets_.push_back({r, c, v});
  compiled_ = false;
}

void SparseMatrix::compile() const {
  if (compiled_) return;
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.r != b.r ? a.r < b.r : a.c < b.c;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    row_ptr_[r] = col_idx_.size();
    while (i < triplets_.size() && triplets_[i].r == r) {
      const std::size_t c = triplets_[i].c;
      double v = 0.0;
      while (i < triplets_.size() && triplets_[i].r == r && triplets_[i].c == c)
        v += triplets_[i++].v;
      col_idx_.push_back(c);
      values_.push_back(v);
    }
  }
  row_ptr_[rows_] = col_idx_.size();
  compiled_ = true;
}

std::size_t SparseMatrix::nonzeros() const {
  compile();
  return values_.size();
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  compile();
  for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
    if (col_idx_[i] == c) return values_[i];
  return 0.0;
}

Vector SparseMatrix::mul(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("SparseMatrix::mul: size");
  compile();
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      acc += values_[i] * x[col_idx_[i]];
    y[r] = acc;
  }
  return y;
}

Matrix SparseMatrix::to_dense() const {
  compile();
  Matrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      d(r, col_idx_[i]) = values_[i];
  return d;
}

const std::vector<std::size_t>& SparseMatrix::row_ptr() const {
  compile();
  return row_ptr_;
}
const std::vector<std::size_t>& SparseMatrix::col_idx() const {
  compile();
  return col_idx_;
}
const std::vector<double>& SparseMatrix::values() const {
  compile();
  return values_;
}

// --- SparseLu ----------------------------------------------------------------

SparseLu::SparseLu(const SparseMatrix& a) {
  SSN_REQUIRE(a.rows() == a.cols(), "SparseLu: matrix must be square");
  n_ = a.rows();
  a.compile();

  // Column-compressed copy of A.
  std::vector<std::size_t> ccol_ptr(n_ + 1, 0);
  std::vector<std::size_t> crow_idx(a.nonzeros());
  std::vector<double> cvals(a.nonzeros());
  {
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    const auto& vv = a.values();
    for (std::size_t i = 0; i < ci.size(); ++i) ccol_ptr[ci[i] + 1]++;
    for (std::size_t c = 0; c < n_; ++c) ccol_ptr[c + 1] += ccol_ptr[c];
    std::vector<std::size_t> next(ccol_ptr.begin(), ccol_ptr.end() - 1);
    for (std::size_t r = 0; r < n_; ++r)
      for (std::size_t i = rp[r]; i < rp[r + 1]; ++i) {
        const std::size_t dst = next[ci[i]]++;
        crow_idx[dst] = r;
        cvals[dst] = vv[i];
      }
  }

  l_rows_.resize(n_);
  l_vals_.resize(n_);
  u_rows_.resize(n_);
  u_vals_.resize(n_);
  u_diag_.assign(n_, 0.0);
  perm_.assign(n_, kNone);

  std::vector<std::size_t> pinv(n_, kNone);  // original row -> pivot position
  std::vector<double> x(n_, 0.0);
  std::vector<std::size_t> visited(n_, kNone);  // epoch stamps
  std::vector<std::size_t> pattern;             // postorder DFS output
  std::vector<std::size_t> dfs_stack, dfs_edge;

  for (std::size_t j = 0; j < n_; ++j) {
    // Symbolic: reachability of A(:,j)'s rows through the columns of L,
    // collected in postorder (reverse = topological for the numeric pass).
    pattern.clear();
    for (std::size_t p = ccol_ptr[j]; p < ccol_ptr[j + 1]; ++p) {
      const std::size_t root = crow_idx[p];
      if (visited[root] == j) continue;
      dfs_stack.assign(1, root);
      dfs_edge.assign(1, 0);
      visited[root] = j;
      while (!dfs_stack.empty()) {
        const std::size_t t = dfs_stack.back();
        const std::size_t k = pinv[t];
        bool descended = false;
        if (k != kNone) {
          std::size_t& e = dfs_edge.back();
          while (e < l_rows_[k].size()) {
            const std::size_t child = l_rows_[k][e++];
            if (visited[child] != j) {
              visited[child] = j;
              dfs_stack.push_back(child);
              dfs_edge.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended && (k == kNone || dfs_edge.back() >= l_rows_[k].size())) {
          pattern.push_back(t);
          dfs_stack.pop_back();
          dfs_edge.pop_back();
        }
      }
    }

    // Numeric: scatter A(:,j) and eliminate in topological order.
    for (std::size_t p = ccol_ptr[j]; p < ccol_ptr[j + 1]; ++p)
      x[crow_idx[p]] += cvals[p];
    for (std::size_t idx = pattern.size(); idx-- > 0;) {
      const std::size_t t = pattern[idx];
      const std::size_t k = pinv[t];
      if (k == kNone) continue;
      const double xt = x[t];
      if (xt == 0.0) continue;  // ssnlint-ignore(SSN-L001)
      for (std::size_t q = 0; q < l_rows_[k].size(); ++q)
        x[l_rows_[k][q]] -= l_vals_[k][q] * xt;
    }

    // Pivot: the largest-magnitude entry among not-yet-pivotal rows.
    std::size_t pivot_row = kNone;
    double pivot_mag = 0.0;
    for (std::size_t t : pattern) {
      if (pinv[t] != kNone) continue;
      const double mag = std::fabs(x[t]);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = t;
      }
    }
    if (pivot_row == kNone ||
        pivot_mag < std::numeric_limits<double>::min() * 16) {
      singular_ = true;
      for (std::size_t t : pattern) x[t] = 0.0;  // leave state clean
      return;
    }
    const double pivot = x[pivot_row];
    u_diag_[j] = pivot;
    perm_[j] = pivot_row;
    pinv[pivot_row] = j;

    for (std::size_t t : pattern) {
      if (t == pivot_row) {
        x[t] = 0.0;
        continue;
      }
      const double v = x[t];
      x[t] = 0.0;
      if (v == 0.0) continue;  // ssnlint-ignore(SSN-L001)
      if (pinv[t] != kNone) {  // above the diagonal: U entry (permuted row)
        u_rows_[j].push_back(pinv[t]);
        u_vals_[j].push_back(v);
      } else {  // below: L entry, scaled by the pivot
        l_rows_[j].push_back(t);
        l_vals_[j].push_back(v / pivot);
      }
    }
  }
}

std::size_t SparseLu::factor_nonzeros() const {
  std::size_t nnz = n_;  // U diagonal
  for (std::size_t j = 0; j < n_; ++j) nnz += l_rows_[j].size() + u_rows_[j].size();
  return nnz;
}

Vector SparseLu::solve(const Vector& b) const {
  SSN_REQUIRE(b.size() == n_, "SparseLu::solve: size mismatch");
  if (singular_) {
    support::SolverDiagnostics diag;
    diag.where = "SparseLu::solve";
    throw support::SolverError(support::SolverErrorKind::kSingularMatrix,
                               "singular matrix", std::move(diag));
  }

  // Forward solve L y = P b (L unit-diagonal, stored column-wise with
  // original row indices; pinv maps them to solve order = their own pivot
  // position, which is strictly greater than the current column).
  Vector y(n_);
  for (std::size_t k = 0; k < n_; ++k) y[k] = b[perm_[k]];
  // Need pinv at solve time: reconstruct once (cheap, n entries).
  std::vector<std::size_t> pinv(n_);
  for (std::size_t k = 0; k < n_; ++k) pinv[perm_[k]] = k;
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = y[k];
    if (yk == 0.0) continue;  // ssnlint-ignore(SSN-L001)
    for (std::size_t q = 0; q < l_rows_[k].size(); ++q)
      y[pinv[l_rows_[k][q]]] -= l_vals_[k][q] * yk;
  }
  // Backward solve U x = y (U column-wise, rows already permuted).
  for (std::size_t jj = n_; jj-- > 0;) {
    y[jj] /= u_diag_[jj];
    const double yj = y[jj];
    if (yj == 0.0) continue;  // ssnlint-ignore(SSN-L001)
    for (std::size_t q = 0; q < u_rows_[jj].size(); ++q)
      y[u_rows_[jj][q]] -= u_vals_[jj][q] * yj;
  }
  return y;
}

Vector solve_linear_auto(const Matrix& a, const Vector& b,
                         std::size_t sparse_threshold) {
  SSN_REQUIRE(a.rows() == b.size(), "solve_linear_auto: shape mismatch");
  if (a.rows() > sparse_threshold) {
    SparseLu lu(SparseMatrix::from_dense(a));
    if (!lu.singular()) return lu.solve(b);
    // Fall through: let the dense path produce the canonical error.
  }
  return LuFactorization(a).solve(b);
}

// --- StampedMatrix -----------------------------------------------------------

void StampedMatrix::begin_pattern(std::size_t n) {
  n_ = n;
  discovering_ = true;
  missed_ = 0;
  triplets_.clear();
  row_ptr_.clear();
  col_idx_.clear();
  values_.clear();
}

void StampedMatrix::finalize_pattern() {
  SSN_REQUIRE(discovering_, "StampedMatrix::finalize_pattern: not discovering");
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.r != b.r ? a.r < b.r : a.c < b.c;
            });
  row_ptr_.assign(n_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  std::size_t i = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    row_ptr_[r] = col_idx_.size();
    while (i < triplets_.size() && triplets_[i].r == r) {
      const std::size_t c = triplets_[i].c;
      double v = 0.0;
      while (i < triplets_.size() && triplets_[i].r == r && triplets_[i].c == c)
        v += triplets_[i++].v;
      col_idx_.push_back(c);
      values_.push_back(v);
    }
  }
  row_ptr_[n_] = col_idx_.size();
  triplets_.clear();
  triplets_.shrink_to_fit();
  discovering_ = false;
  ++epoch_;
}

void StampedMatrix::reset_pattern() {
  n_ = 0;
  discovering_ = false;
  missed_ = 0;
  triplets_.clear();
  row_ptr_.clear();
  col_idx_.clear();
  values_.clear();
}

void StampedMatrix::clear() {
  SSN_REQUIRE(has_pattern(), "StampedMatrix::clear: no finalized pattern");
  std::fill(values_.begin(), values_.end(), 0.0);
  missed_ = 0;
}

void StampedMatrix::add(std::size_t r, std::size_t c, double v) {
  if (r >= n_ || c >= n_)
    throw std::out_of_range("StampedMatrix::add: index out of range");
  if (discovering_) {
    triplets_.push_back({r, c, v});
    return;
  }
  const std::size_t s = slot(r, c);
  if (s == kNone) {
    ++missed_;
    return;
  }
  values_[s] += v;
}

std::size_t StampedMatrix::slot(std::size_t r, std::size_t c) const {
  const auto first = col_idx_.begin() + long(row_ptr_[r]);
  const auto last = col_idx_.begin() + long(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return kNone;
  return std::size_t(it - col_idx_.begin());
}

double StampedMatrix::at(std::size_t r, std::size_t c) const {
  SSN_REQUIRE(has_pattern(), "StampedMatrix::at: no finalized pattern");
  const std::size_t s = slot(r, c);
  return s == kNone ? 0.0 : values_[s];
}

void StampedMatrix::mul_into(const Vector& x, Vector& y) const {
  SSN_REQUIRE(has_pattern(), "StampedMatrix::mul_into: no finalized pattern");
  if (x.size() != n_)
    throw std::invalid_argument("StampedMatrix::mul_into: size");
  y.resize(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      acc += values_[i] * x[col_idx_[i]];
    y[r] = acc;
  }
}

Matrix StampedMatrix::to_dense() const {
  SSN_REQUIRE(has_pattern(), "StampedMatrix::to_dense: no finalized pattern");
  Matrix d(n_, n_);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      d(r, col_idx_[i]) = values_[i];
  return d;
}

// --- SparseFactor ------------------------------------------------------------

bool SparseFactor::factorize(const StampedMatrix& a) {
  SSN_REQUIRE(a.has_pattern(), "SparseFactor::factorize: pattern not finalized");
  n_ = a.size();
  epoch_ = a.epoch();
  singular_ = false;
  if (n_ == 0) return true;

  // Column-compressed view of A's pattern with a gather map (csc_src_) back
  // into the CSR values array, so refactorize never rebuilds the transpose.
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vals = a.values();
  const std::size_t nnz = ci.size();
  csc_ptr_.assign(n_ + 1, 0);
  csc_row_.resize(nnz);
  csc_src_.resize(nnz);
  for (std::size_t i = 0; i < nnz; ++i) csc_ptr_[ci[i] + 1]++;
  for (std::size_t c = 0; c < n_; ++c) csc_ptr_[c + 1] += csc_ptr_[c];
  {
    std::vector<std::size_t> next(csc_ptr_.begin(), csc_ptr_.end() - 1);
    for (std::size_t r = 0; r < n_; ++r)
      for (std::size_t i = rp[r]; i < rp[r + 1]; ++i) {
        const std::size_t dst = next[ci[i]]++;
        csc_row_[dst] = r;
        csc_src_[dst] = i;
      }
  }

  pat_.assign(n_, {});
  l_rows_.assign(n_, {});
  l_vals_.assign(n_, {});
  u_rows_.assign(n_, {});
  u_vals_.assign(n_, {});
  u_diag_.assign(n_, 0.0);
  perm_.assign(n_, npos);
  pinv_.assign(n_, npos);
  work_.assign(n_, 0.0);

  std::vector<std::size_t> visited(n_, npos);
  std::vector<std::size_t> postorder, dfs_stack, dfs_edge;

  for (std::size_t j = 0; j < n_; ++j) {
    // Symbolic: reachability of A(:,j)'s rows through the columns of L,
    // collected in DFS postorder; reversed it is the topological order the
    // elimination needs. The reversed order is recorded in pat_[j] so the
    // numeric refactorization can replay it without redoing the DFS.
    postorder.clear();
    for (std::size_t p = csc_ptr_[j]; p < csc_ptr_[j + 1]; ++p) {
      const std::size_t root = csc_row_[p];
      if (visited[root] == j) continue;
      dfs_stack.assign(1, root);
      dfs_edge.assign(1, 0);
      visited[root] = j;
      while (!dfs_stack.empty()) {
        const std::size_t t = dfs_stack.back();
        const std::size_t k = pinv_[t];
        bool descended = false;
        if (k != npos) {
          std::size_t& e = dfs_edge.back();
          while (e < l_rows_[k].size()) {
            const std::size_t child = l_rows_[k][e++];
            if (visited[child] != j) {
              visited[child] = j;
              dfs_stack.push_back(child);
              dfs_edge.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended && (k == npos || dfs_edge.back() >= l_rows_[k].size())) {
          postorder.push_back(t);
          dfs_stack.pop_back();
          dfs_edge.pop_back();
        }
      }
    }
    pat_[j].assign(postorder.rbegin(), postorder.rend());

    // Numeric: scatter A(:,j), eliminate in topological order.
    for (std::size_t p = csc_ptr_[j]; p < csc_ptr_[j + 1]; ++p)
      work_[csc_row_[p]] += vals[csc_src_[p]];
    for (std::size_t t : pat_[j]) {
      const std::size_t k = pinv_[t];
      if (k == npos) continue;  // not yet pivotal: nothing to eliminate with
      const double xt = work_[t];
      if (xt == 0.0) continue;  // ssnlint-ignore(SSN-L001)
      const auto& lr = l_rows_[k];
      const auto& lv = l_vals_[k];
      for (std::size_t q = 0; q < lr.size(); ++q) work_[lr[q]] -= lv[q] * xt;
    }

    // Pivot: largest magnitude among not-yet-pivotal rows.
    std::size_t pivot_row = npos;
    double pivot_mag = 0.0;
    for (std::size_t t : pat_[j]) {
      if (pinv_[t] != npos) continue;
      const double mag = std::fabs(work_[t]);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = t;
      }
    }
    if (pivot_row == npos ||
        pivot_mag < std::numeric_limits<double>::min() * 16) {
      singular_ = true;
      for (std::size_t t : pat_[j]) work_[t] = 0.0;  // leave workspace clean
      return false;
    }
    const double pivot = work_[pivot_row];
    u_diag_[j] = pivot;
    perm_[j] = pivot_row;
    pinv_[pivot_row] = j;
    work_[pivot_row] = 0.0;

    // Store every pattern entry — exact zeros included, so the fill pattern
    // survives refactorization with different values — in pat_[j] order.
    for (std::size_t t : pat_[j]) {
      if (t == pivot_row) continue;
      const double v = work_[t];
      work_[t] = 0.0;
      if (pinv_[t] != npos && pinv_[t] < j) {
        u_rows_[j].push_back(pinv_[t]);
        u_vals_[j].push_back(v);
      } else {
        l_rows_[j].push_back(t);
        l_vals_[j].push_back(v / pivot);
      }
    }
  }
  maybe_corrupt_factors();
  return true;
}

bool SparseFactor::refactorize(const StampedMatrix& a) {
  if (n_ == 0 || a.size() != n_ || a.epoch() != epoch_ || perm_.empty() ||
      perm_[n_ - 1] == npos)
    return false;
  const auto& vals = a.values();
  // Until the replay completes, the stored factors are torn: refuse solves.
  singular_ = true;

  for (std::size_t j = 0; j < n_; ++j) {
    const std::vector<std::size_t>& pat = pat_[j];
    for (std::size_t p = csc_ptr_[j]; p < csc_ptr_[j + 1]; ++p)
      work_[csc_row_[p]] += vals[csc_src_[p]];
    for (std::size_t t : pat) {
      const std::size_t k = pinv_[t];
      if (k >= j) continue;  // pivotal only after column j in the old order
      const double xt = work_[t];
      if (xt == 0.0) continue;  // ssnlint-ignore(SSN-L001)
      const auto& lr = l_rows_[k];
      const auto& lv = l_vals_[k];
      for (std::size_t q = 0; q < lr.size(); ++q) work_[lr[q]] -= lv[q] * xt;
    }

    // Reused pivot sanity: it must stay comfortably away from zero relative
    // to the column it is meant to dominate; a degraded pivot means the old
    // pivot order no longer suits these values and the caller must run a
    // full factorize() to re-pivot.
    const std::size_t pivot_row = perm_[j];
    const double pivot = work_[pivot_row];
    double colmax = 0.0;
    for (std::size_t t : pat)
      if (pinv_[t] >= j) colmax = std::max(colmax, std::fabs(work_[t]));
    if (!(std::fabs(pivot) >= std::numeric_limits<double>::min() * 16) ||
        std::fabs(pivot) < 1e-3 * colmax) {
      for (std::size_t t : pat) work_[t] = 0.0;
      return false;
    }
    u_diag_[j] = pivot;
    work_[pivot_row] = 0.0;

    // Gather in the exact order factorize stored the pattern.
    std::size_t ui = 0, li = 0;
    for (std::size_t t : pat) {
      if (t == pivot_row) continue;
      const double v = work_[t];
      work_[t] = 0.0;
      if (pinv_[t] < j)
        u_vals_[j][ui++] = v;
      else
        l_vals_[j][li++] = v / pivot;
    }
  }
  singular_ = false;
  maybe_corrupt_factors();
  return true;
}

void SparseFactor::maybe_corrupt_factors() {
  if (!support::kFaultInjectionEnabled || n_ == 0) return;
  if (!SSN_FAULT_POINT(support::FaultKind::kFactorBitFlip)) return;
  // Flip mantissa bit 48 of the middle column's pivot: a ~2^-4 relative
  // perturbation — large enough that one refinement step cannot hide it
  // (the verify layer must emit a typed degradation), small enough that the
  // wrong answer would look entirely plausible if served unchecked.
  double& target = u_diag_[n_ / 2];
  std::uint64_t bits = 0;
  std::memcpy(&bits, &target, sizeof bits);
  bits ^= std::uint64_t(1) << 48;
  std::memcpy(&target, &bits, sizeof bits);
}

std::size_t SparseFactor::factor_nonzeros() const {
  std::size_t nnz = n_;  // U diagonal
  for (std::size_t j = 0; j < n_; ++j)
    nnz += l_rows_[j].size() + u_rows_[j].size();
  return nnz;
}

void SparseFactor::solve(const Vector& b, Vector& x) const {
  SSN_REQUIRE(b.size() == n_, "SparseFactor::solve: size mismatch");
  if (singular_) {
    support::SolverDiagnostics diag;
    diag.where = "SparseFactor::solve";
    throw support::SolverError(support::SolverErrorKind::kSingularMatrix,
                               "singular matrix", std::move(diag));
  }
  x.resize(n_);
  // Forward solve L y = P b in place (L unit-diagonal, column-wise with
  // original row indices; pinv_ maps them to solve order).
  for (std::size_t k = 0; k < n_; ++k) x[k] = b[perm_[k]];
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = x[k];
    if (yk == 0.0) continue;  // ssnlint-ignore(SSN-L001)
    const auto& lr = l_rows_[k];
    const auto& lv = l_vals_[k];
    for (std::size_t q = 0; q < lr.size(); ++q) x[pinv_[lr[q]]] -= lv[q] * yk;
  }
  // Backward solve U x = y (U column-wise, rows already permuted).
  for (std::size_t jj = n_; jj-- > 0;) {
    x[jj] /= u_diag_[jj];
    const double yj = x[jj];
    if (yj == 0.0) continue;  // ssnlint-ignore(SSN-L001)
    const auto& ur = u_rows_[jj];
    const auto& uv = u_vals_[jj];
    for (std::size_t q = 0; q < ur.size(); ++q) x[ur[q]] -= uv[q] * yj;
  }
}

void SparseFactor::solve_transpose(const Vector& b, Vector& x) const {
  SSN_REQUIRE(b.size() == n_, "SparseFactor::solve_transpose: size mismatch");
  if (singular_) {
    support::SolverDiagnostics diag;
    diag.where = "SparseFactor::solve_transpose";
    throw support::SolverError(support::SolverErrorKind::kSingularMatrix,
                               "singular matrix", std::move(diag));
  }
  x.resize(n_);
  // A^T = U^T L^T P. Step 1: U^T z = b, ascending — U's columns are indexed
  // by unknown j with row entries at pivot positions strictly below j, so
  // U^T is lower triangular in (unknown -> pivot-position) space:
  //   z_j = (b_j - sum_{k in U col j} u_kj z_k) / u_jj.
  std::vector<double> w(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    double acc = b[j];
    const auto& ur = u_rows_[j];
    const auto& uv = u_vals_[j];
    for (std::size_t q = 0; q < ur.size(); ++q) acc -= uv[q] * w[ur[q]];
    w[j] = acc / u_diag_[j];
  }
  // Step 2: L^T w = z, descending — L's column k holds entries at pivot
  // positions pinv_[row] > k, so L^T row k subtracts already-solved
  // positions: w_k -= sum_q l_vals[q] * w[pinv_[l_rows[q]]].
  for (std::size_t k = n_; k-- > 0;) {
    double acc = w[k];
    const auto& lr = l_rows_[k];
    const auto& lv = l_vals_[k];
    for (std::size_t q = 0; q < lr.size(); ++q) acc -= lv[q] * w[pinv_[lr[q]]];
    w[k] = acc;
  }
  // Step 3: x = P^T w, i.e. x[perm_[k]] = w[k].
  for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = w[k];
}

void SparseFactor::refine(const StampedMatrix& a, const Vector& b, Vector& x,
                          Vector& r, Vector& d) const {
  SSN_REQUIRE(b.size() == n_ && x.size() == n_,
              "SparseFactor::refine: size mismatch");
  a.mul_into(x, r);
  for (std::size_t i = 0; i < n_; ++i) r[i] = b[i] - r[i];
  solve(r, d);
  for (std::size_t i = 0; i < n_; ++i) x[i] += d[i];
}

}  // namespace ssnkit::numeric
