#include "numeric/matrix.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace ssnkit::numeric {

double& Vector::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("Vector::at: index out of range");
  return data_[i];
}

double Vector::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("Vector::at: index out of range");
  return data_[i];
}

void Vector::fill(double value) {
  for (double& x : data_) x = value;
}

Vector& Vector::operator+=(const Vector& rhs) {
  if (rhs.size() != size()) throw std::invalid_argument("Vector::operator+=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  if (rhs.size() != size()) throw std::invalid_argument("Vector::operator-=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Vector::norm2() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

double Vector::dot(const Vector& rhs) const {
  if (rhs.size() != size()) throw std::invalid_argument("Vector::dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator*(Vector v, double s) { return v *= s; }

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rhs.rows_ != rows_ || rhs.cols_ != cols_)
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rhs.rows_ != rows_ || rhs.cols_ != cols_)
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector Matrix::mul(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::mul: size mismatch");
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::mul(const Matrix& rhs) const {
  if (rhs.rows_ != cols_) throw std::invalid_argument("Matrix::mul: shape mismatch");
  Matrix y(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;  // ssnlint-ignore(SSN-L001)
      for (std::size_t c = 0; c < rhs.cols_; ++c) y(r, c) += a * rhs(k, c);
    }
  return y;
}

double Matrix::norm_inf() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(double s, Matrix m) { return m *= s; }
Vector operator*(const Matrix& m, const Vector& x) { return m.mul(x); }
Matrix operator*(const Matrix& a, const Matrix& b) { return a.mul(b); }

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ']';
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? '[' : ' ');
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) os << ", ";
      os << m(r, c);
    }
    os << (r + 1 == m.rows() ? "]" : ";\n");
  }
  return os;
}

}  // namespace ssnkit::numeric
