#include "numeric/polynomial.hpp"

#include <cmath>

namespace ssnkit::numeric {

double quadratic_discriminant(double a, double b, double c) {
  // Kahan's trick: compute b*b - 4ac with an error-compensated difference of
  // products so nearly-critically-damped systems classify correctly.
  const double p = b * b;
  const double q = 4.0 * a * c;
  const double err = std::fma(b, b, -p) - std::fma(4.0 * a, c, -q);
  return (p - q) + err;
}

std::optional<std::array<double, 2>> quadratic_real_roots(double a, double b,
                                                          double c) {
  if (a == 0.0) {  // ssnlint-ignore(SSN-L001)
    if (b == 0.0) return std::nullopt;  // degenerate: c == 0 everywhere or never  ssnlint-ignore(SSN-L001)
    const double r = -c / b;
    return std::array<double, 2>{r, r};
  }
  const double disc = quadratic_discriminant(a, b, c);
  if (disc < 0.0) return std::nullopt;
  const double sq = std::sqrt(disc);
  // q has the same sign as b to avoid cancellation in -b ± sq.
  const double q = -0.5 * (b + std::copysign(sq, b));
  double r1, r2;
  if (q == 0.0) {  // ssnlint-ignore(SSN-L001)
    r1 = 0.0;
    r2 = 0.0;
  } else {
    r1 = q / a;
    r2 = c / q;
  }
  if (r1 > r2) std::swap(r1, r2);
  return std::array<double, 2>{r1, r2};
}

std::array<std::complex<double>, 2> quadratic_complex_roots(double a, double b,
                                                            double c) {
  const double disc = quadratic_discriminant(a, b, c);
  if (disc >= 0.0) {
    const auto real = quadratic_real_roots(a, b, c);
    return {std::complex<double>((*real)[0], 0.0),
            std::complex<double>((*real)[1], 0.0)};
  }
  const double re = -b / (2.0 * a);
  const double im = std::sqrt(-disc) / (2.0 * a);
  return {std::complex<double>(re, -im), std::complex<double>(re, im)};
}

double polyval(const double* coeffs, std::size_t n, double x) {
  if (n == 0) return 0.0;
  double acc = coeffs[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

}  // namespace ssnkit::numeric
