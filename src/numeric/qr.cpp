#include "numeric/qr.hpp"

#include "support/contracts.hpp"
#include "support/diagnostics.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ssnkit::numeric {

QrFactorization::QrFactorization(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  SSN_REQUIRE(m >= n, "QrFactorization: need rows >= cols");
  beta_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {  // ssnlint-ignore(SSN-L001)
      beta_[k] = 0.0;
      rank_deficient_ = true;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // v = x - alpha*e1, normalized so v[0] = 1 (stored implicitly).
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    beta_[k] = -v0 / alpha;
    qr_(k, k) = alpha;

    // Apply H = I - beta * v v^T to the remaining columns.
    for (std::size_t c = k + 1; c < n; ++c) {
      double s = qr_(k, c);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, c);
      s *= beta_[k];
      qr_(k, c) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, c) -= s * qr_(i, k);
    }
  }
  // Detect near-zero diagonals of R relative to the largest one.
  double rmax = 0.0;
  for (std::size_t k = 0; k < n; ++k) rmax = std::max(rmax, std::fabs(qr_(k, k)));
  for (std::size_t k = 0; k < n; ++k)
    if (std::fabs(qr_(k, k)) <= rmax * 1e-13) rank_deficient_ = true;
}

Vector QrFactorization::apply_qt(const Vector& b) const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  SSN_REQUIRE(b.size() == m, "QrFactorization: rhs size mismatch");
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;  // ssnlint-ignore(SSN-L001)
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector QrFactorization::solve(const Vector& b) const {
  if (rank_deficient_) {
    support::SolverDiagnostics diag;
    diag.where = "QrFactorization::solve";
    throw support::SolverError(support::SolverErrorKind::kSingularMatrix,
                               "rank-deficient system", std::move(diag));
  }
  const std::size_t n = cols();
  Vector y = apply_qt(b);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    x[ii] = s / qr_(ii, ii);
  }
  SSN_ASSERT_FINITE(x);
  return x;
}

double QrFactorization::residual_norm(const Vector& b) const {
  const Vector y = apply_qt(b);
  double acc = 0.0;
  for (std::size_t i = cols(); i < rows(); ++i) acc += y[i] * y[i];
  return std::sqrt(acc);
}

}  // namespace ssnkit::numeric
