// Small statistics helpers shared by the fit-quality reports and the
// model-vs-simulator comparison tables.
#pragma once

#include <cstddef>
#include <span>

namespace ssnkit::numeric {

double mean(std::span<const double> xs);
double rms(std::span<const double> xs);
double max_abs(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);
/// Sample standard deviation (N-1 denominator); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

/// |a − b| / max(|ref|, floor). The floor guards near-zero references.
double relative_error(double a, double b, double floor = 1e-12);

/// Elementwise relative errors, reduced to the maximum.
double max_relative_error(std::span<const double> got,
                          std::span<const double> want, double floor = 1e-12);

/// Elementwise relative errors, reduced to the RMS.
double rms_relative_error(std::span<const double> got,
                          std::span<const double> want, double floor = 1e-12);

/// q-quantile (q in [0, 1]) by linear interpolation of the sorted sample.
/// Throws std::invalid_argument for empty input or q outside [0, 1].
double quantile(std::span<const double> xs, double q);

}  // namespace ssnkit::numeric
