// Low-degree polynomial root helpers. The LC SSN model classifies its
// damping region from the discriminant of the characteristic quadratic
// L·C·s² + N·L·K·λ·s + 1 = 0; the numerically stable quadratic solver here
// avoids catastrophic cancellation when the two real roots are far apart
// (heavily over-damped systems).
#pragma once

#include <array>
#include <complex>
#include <optional>

namespace ssnkit::numeric {

/// Real roots of a·x² + b·x + c = 0, returned in increasing order.
/// Uses the Kahan/Goldberg formulation q = -(b + sign(b)·sqrt(disc))/2.
/// Returns std::nullopt when the roots are complex (disc < 0) or when the
/// equation is degenerate with no root. A linear equation (a == 0) returns
/// its single root twice.
std::optional<std::array<double, 2>> quadratic_real_roots(double a, double b,
                                                          double c);

/// Both roots of a·x² + b·x + c = 0 in the complex plane (a must be != 0).
std::array<std::complex<double>, 2> quadratic_complex_roots(double a, double b,
                                                            double c);

/// Discriminant b² − 4ac evaluated with a fused style that limits
/// cancellation: uses the identity via difference-of-products.
double quadratic_discriminant(double a, double b, double c);

/// Evaluate a polynomial sum(coeffs[i] * x^i) by Horner's rule.
double polyval(const double* coeffs, std::size_t n, double x);

}  // namespace ssnkit::numeric
