// Linear least squares on top of Householder QR, with optional row weights.
#pragma once

#include "numeric/matrix.hpp"

namespace ssnkit::numeric {

/// Result of a linear least-squares solve.
struct LeastSquaresResult {
  Vector coefficients;     ///< fitted parameter vector
  double residual_norm = 0.0;  ///< ||A x − b||_2
  double residual_rms = 0.0;   ///< residual_norm / sqrt(#rows)
};

/// Minimize ||A x − b||_2. A must have rows >= cols and full column rank.
LeastSquaresResult solve_least_squares(const Matrix& a, const Vector& b);

/// Weighted variant: minimize ||W^(1/2) (A x − b)||_2 with per-row weights
/// w_i >= 0. The reported residuals are the *weighted* residuals.
LeastSquaresResult solve_least_squares(const Matrix& a, const Vector& b,
                                       const Vector& weights);

}  // namespace ssnkit::numeric
