// Reference ODE integrators (explicit RK4, adaptive Dormand–Prince RK45).
// These are NOT used by the circuit simulator — they provide independent
// high-accuracy reference solutions of the SSN differential equations
// (Eqn 5 and Eqn 13 of the paper) against which both the closed-form
// formulas and the MNA transient engine are validated.
#pragma once

#include "numeric/matrix.hpp"

#include <functional>
#include <vector>

namespace ssnkit::numeric {

/// Right-hand side dy/dt = f(t, y).
using OdeRhs = std::function<Vector(double t, const Vector& y)>;

/// Why an adaptive integration ended where it did.
enum class OdeStatus {
  kOk = 0,                   ///< reached t1
  kStepBudgetExhausted = 1,  ///< max_steps hit; solution truncated
  kStepUnderflow = 2,        ///< step size fell below min_step; truncated
};

const char* to_string(OdeStatus status);

/// A sampled ODE trajectory.
struct OdeSolution {
  std::vector<double> t;
  std::vector<Vector> y;
  std::size_t steps_taken = 0;
  std::size_t steps_rejected = 0;
  OdeStatus status = OdeStatus::kOk;

  bool ok() const { return status == OdeStatus::kOk; }

  /// Linear interpolation of component `k` at time `time` (clamped).
  double sample(double time, std::size_t k = 0) const;
};

/// Classic fixed-step RK4 from t0 to t1 with `steps` equal steps.
OdeSolution rk4(const OdeRhs& f, double t0, double t1, Vector y0,
                std::size_t steps);

struct Rk45Options {
  double rel_tol = 1e-9;
  double abs_tol = 1e-12;
  double initial_step = 0.0;  ///< 0 = auto
  double min_step = 0.0;      ///< 0 = auto (span * 1e-14)
  std::size_t max_steps = 2'000'000;
};

/// Adaptive Dormand–Prince RK5(4). When the step size underflows or the
/// step budget is exhausted the solution computed so far is returned with
/// `status` set accordingly — the sampled prefix stays usable. Non-finite
/// inputs or RHS blow-ups still throw (contract violations).
OdeSolution rk45(const OdeRhs& f, double t0, double t1, Vector y0,
                 const Rk45Options& opts = {});

}  // namespace ssnkit::numeric
