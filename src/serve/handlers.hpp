// Request execution for the serve daemon: maps a validated ServeRequest
// onto the analysis layer (closed-form estimate, optional simulator verify,
// closed-form Monte Carlo, driver sweep) and renders the result fragment.
//
// Handlers are pure with respect to the daemon: they throw
// support::SolverError on solver failure (including the cooperative stop
// kinds when the request's RunContext fires) and std::exception for
// anything else; the server maps those onto SSN-E065/E066 responses for
// that one client. Nothing here touches sockets, queues, or global state —
// which is what makes the handlers directly unit-testable.
#pragma once

#include "analysis/calibrate.hpp"
#include "serve/protocol.hpp"
#include "support/runcontext.hpp"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ssnkit::serve {

/// Shared calibration store: fitting the ASDM + alpha-power devices costs
/// far more than one closed-form evaluation, and every request for the same
/// (tech, golden) pair needs the identical fit. Thread-safe; entries are
/// immutable once published.
class CalibrationCache {
 public:
  /// Fit (or return the already-fitted) calibration for a tech/golden pair.
  std::shared_ptr<const analysis::Calibration> get(const std::string& tech,
                                                   const std::string& golden);

 private:
  std::mutex mu_;
  std::unordered_map<std::string,
                     std::shared_ptr<const analysis::Calibration>>
      fits_;  // guarded by mu_
};

/// Execute one request and return its JSON result fragment (a complete
/// JSON value, single line). `ctx` is the request's lifecycle context; the
/// sim-backed paths poll it, and a stop surfaces as a SolverError with a
/// stop kind. Throws on failure — never returns a partial result.
std::string execute_request(const ServeRequest& request,
                            CalibrationCache& calibrations,
                            const support::RunContext* ctx);

}  // namespace ssnkit::serve
