// The worker side of supervised process isolation: a tiny serve loop that
// runs inside each sandboxed child the Supervisor forks.
//
// One worker handles one request at a time: it reads a render_request()
// line from its socketpair, executes it through the same execute_request()
// path the thread-mode server uses, and writes back one standard response
// line (render_ok / render_solver_error / render_error). Everything the
// protocol guarantees on the client wire therefore holds on the worker wire
// too, and the supervisor can parse worker output with split_response_line.
//
// What the worker deliberately does NOT do:
//
//   - No admission, queueing, caching, or stats — those belong to the
//     parent. A worker that duplicated them would have state worth
//     preserving, and the whole point of process isolation is that a worker
//     is disposable at any instant.
//   - No signal handling: the subprocess spawn path ignores SIGINT/SIGTERM
//     so shutdown policy stays with the supervisor (which kills workers
//     explicitly), and leaves SIGKILL — the watchdog's tool — unblockable
//     by construction.
//   - No recovery from its own death: a crash, rlimit OOM, or watchdog
//     SIGKILL simply ends the process; the parent observes it via waitpid
//     and types the failure (SSN-E068/E069) for the client.
//
// Under SSNKIT_FAULT_INJECTION the loop hosts the three process-fatal fault
// sites (worker-crash, worker-hang, worker-oom), scoped per-request by
// driver count so a chaos plan can make one request shape a deterministic
// poison pill (`worker-crash@13=1`).
#pragma once

namespace ssnkit::serve {

/// Run the worker request loop on `fd` until the parent closes its end
/// (normal shutdown) or a read error occurs. Returns the process exit code
/// (0 on EOF). Called by the Supervisor via support::spawn_child; callable
/// directly from tests with any socket/pipe fd.
int worker_main(int fd);

}  // namespace ssnkit::serve
