#include "serve/cache.hpp"

#include "support/atomic_file.hpp"
#include "support/faultinject.hpp"
#include "support/journal.hpp"

#include <fstream>
#include <sstream>
#include <utility>

namespace ssnkit::serve {

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::optional<std::string> ResultCache::get(std::uint64_t key,
                                            std::string* warning) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  // Fault-injection hook (kCacheRot): rot one byte of the stored payload,
  // the failure mode the re-checksum below must convert into a recompute.
  if (support::kFaultInjectionEnabled && !entry.payload.empty() &&
      SSN_FAULT_POINT(support::FaultKind::kCacheRot))
    entry.payload[entry.payload.size() / 2] ^= 0x20;
  if (support::fnv1a(entry.payload) != entry.checksum) {
    ++stats_.corrupt_dropped;
    ++stats_.misses;
    if (warning != nullptr)
      *warning = "SSN-W072: cache entry " + support::hex_u64(key) +
                 " failed its re-checksum (payload rotted in memory); "
                 "dropped, the request recomputes";
    lru_.erase(it->second);
    index_.erase(it);
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

void ResultCache::put_locked(std::uint64_t key, const std::string& payload,
                             bool refresh_existing) {
  if (capacity_ == 0) return;
  if (payload.find('\n') != std::string::npos) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    if (!refresh_existing) return;  // warm-load: live entries win
    it->second->payload = payload;
    it->second->checksum = support::fnv1a(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, payload, support::fnv1a(payload)});
  index_[key] = lru_.begin();
  ++stats_.inserts;
}

void ResultCache::put(std::uint64_t key, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  put_locked(key, payload, /*refresh_existing=*/true);
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::save(const std::string& path) const {
  std::string text = "ssnkit-cache v1\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Oldest first: load() re-inserts in file order, so the rebuilt LRU
    // order matches the saved one. The *insert-time* checksum is spilled,
    // not a fresh one: a payload that rotted in memory then mismatches on
    // load and is discarded there instead of being laundered clean.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      text += "entry ";
      text += support::hex_u64(it->key);
      text += ' ';
      text += support::hex_u64(it->checksum);
      text += ' ';
      text += it->payload;
      text += '\n';
    }
  }
  support::write_file_atomic(path, text);
}

std::vector<std::string> ResultCache::load(const std::string& path) {
  std::vector<std::string> warnings;
  std::ifstream in(path, std::ios::binary);
  if (!in) return warnings;  // cold start, not a fault

  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();
  const auto warn = [&](std::size_t line_no, const std::string& what) {
    warnings.push_back("SSN-W067 cache '" + path + "': discarded line " +
                       std::to_string(line_no) + " (" + what +
                       "); the entry will simply recompute");
  };

  std::size_t pos = 0;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    const bool torn = eol == std::string::npos;
    if (torn) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    if (!saw_header) {
      if (line != "ssnkit-cache v1") {
        warnings.push_back("SSN-W067 cache '" + path +
                           "': not a v1 spill file, starting cold");
        return warnings;
      }
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;
    if (torn) {
      warn(line_no, "torn trailing record");
      continue;
    }
    // entry <key16> <fnv16> <payload>; the payload may contain spaces.
    if (line.rfind("entry ", 0) != 0 || line.size() < 6 + 16 + 1 + 16 + 1) {
      warn(line_no, "malformed record");
      continue;
    }
    std::uint64_t key = 0;
    std::uint64_t checksum = 0;
    if (line[6 + 16] != ' ' || line[6 + 16 + 1 + 16] != ' ' ||
        !support::parse_hex_u64(line.substr(6, 16), key) ||
        !support::parse_hex_u64(line.substr(6 + 17, 16), checksum)) {
      warn(line_no, "malformed record");
      continue;
    }
    const std::string payload = line.substr(6 + 17 + 17);
    if (support::fnv1a(payload) != checksum) {
      warn(line_no, "payload checksum mismatch");
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t before = stats_.inserts;
    put_locked(key, payload, /*refresh_existing=*/false);
    if (stats_.inserts != before) ++stats_.warmed;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.discarded_on_load += warnings.size();
  }
  return warnings;
}

}  // namespace ssnkit::serve
