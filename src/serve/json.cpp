#include "serve/json.hpp"

#include "io/diagnostics.hpp"

#include <cmath>
#include <sstream>

namespace ssnkit::serve {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members)
    if (name == key) return &value;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a byte range. Errors are reported by
/// filling `err`/`err_off` and returning false all the way up; the public
/// wrapper translates that into a JsonParse.
class Parser {
 public:
  Parser(const std::string& text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  bool parse_document(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size())
      return fail(pos_, "trailing characters after JSON value");
    return true;
  }

  const std::string& error() const { return err_; }
  std::size_t error_offset() const { return err_off_; }

 private:
  bool fail(std::size_t offset, const std::string& what) {
    // Keep the first (deepest) error; callers unwind without overwriting.
    if (err_.empty()) {
      err_ = what;
      err_off_ = offset;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume_literal(const char* literal) {
    const std::size_t start = pos_;
    for (const char* p = literal; *p != '\0'; ++p, ++pos_) {
      if (at_end() || peek() != *p) {
        pos_ = start;
        return false;
      }
    }
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > max_depth_)
      return fail(pos_, "nesting deeper than " + std::to_string(max_depth_) +
                            " levels");
    if (at_end()) return fail(pos_, "unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (!consume_literal("true")) return fail(pos_, "invalid literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!consume_literal("false")) return fail(pos_, "invalid literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!consume_literal("null")) return fail(pos_, "invalid literal");
        out.kind = JsonValue::Kind::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"')
        return fail(pos_, "expected string key in object");
      const std::size_t key_off = pos_;
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr)
        return fail(key_off, "duplicate key '" + key + "'");
      skip_ws();
      if (at_end() || peek() != ':')
        return fail(pos_, "expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail(pos_, "unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail(pos_, "expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.elements.push_back(std::move(element));
      skip_ws();
      if (at_end()) return fail(pos_, "unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail(pos_, "expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    const std::size_t start = pos_;
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (at_end()) return fail(start, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail(pos_ - 1, "raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail(start, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) return fail(start, "unterminated \\u escape");
            const char h = text_[pos_++];
            int digit;
            if (h >= '0' && h <= '9')
              digit = h - '0';
            else if (h >= 'a' && h <= 'f')
              digit = 10 + (h - 'a');
            else if (h >= 'A' && h <= 'F')
              digit = 10 + (h - 'A');
            else
              return fail(pos_ - 1, "bad hex digit in \\u escape");
            code = (code << 4) | unsigned(digit);
          }
          // UTF-8 encode the BMP code point. Surrogates are rejected:
          // request fields are identifiers and SI numbers, never astral
          // text, and accepting lone surrogates is how parsers get CVEs.
          if (code >= 0xD800 && code <= 0xDFFF)
            return fail(pos_ - 6, "surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out.push_back(char(code));
          } else if (code < 0x800) {
            out.push_back(char(0xC0 | (code >> 6)));
            out.push_back(char(0x80 | (code & 0x3F)));
          } else {
            out.push_back(char(0xE0 | (code >> 12)));
            out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail(pos_ - 1, "unknown escape sequence");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    // JSON's number grammar is a strict subset of what the hardened prefix
    // parser accepts, so delegate the conversion to the tree's one
    // sanctioned stod site and only police the JSON-specific restrictions
    // (no leading '+', no leading zeros like "01") here.
    if (peek() == '+') return fail(pos_, "JSON numbers cannot start with '+'");
    std::size_t digits = pos_;
    if (!at_end() && text_[digits] == '-') ++digits;
    if (digits >= text_.size() || text_[digits] < '0' || text_[digits] > '9')
      return fail(start, "JSON numbers need a digit before the point");
    if (digits + 1 < text_.size() && text_[digits] == '0' &&
        text_[digits + 1] >= '0' && text_[digits + 1] <= '9')
      return fail(start, "leading zeros are not valid JSON");
    const io::NumberParse parsed = io::parse_double_prefix(text_.substr(pos_));
    if (!parsed.ok || parsed.consumed == 0)
      return fail(start, parsed.error.empty() ? "invalid number"
                                              : parsed.error);
    pos_ += parsed.consumed;
    out.kind = JsonValue::Kind::kNumber;
    out.number = parsed.value;
    return true;
  }

  const std::string& text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::string err_;
  std::size_t err_off_ = 0;
};

}  // namespace

JsonParse parse_json(const std::string& text, std::size_t max_depth,
                     std::size_t max_bytes) {
  JsonParse out;
  if (text.size() > max_bytes) {
    out.error = "input exceeds " + std::to_string(max_bytes) + " bytes";
    out.offset = max_bytes;
    return out;
  }
  Parser parser(text, max_depth);
  if (!parser.parse_document(out.value)) {
    out.error = parser.error();
    out.offset = parser.error_offset();
    return out;
  }
  out.ok = true;
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    const char* what = std::isnan(value)
                           ? "NaN"
                           : (value > 0.0 ? "+infinity" : "-infinity");
    throw NonFiniteJsonError(std::string("non-finite double (") + what +
                             ") in a JSON payload");
  }
  std::ostringstream ss;
  ss.precision(17);
  ss << value;
  return ss.str();
}

std::string json_number_or_null(double value) {
  if (!std::isfinite(value)) return "null";
  return json_number(value);
}

}  // namespace ssnkit::serve
