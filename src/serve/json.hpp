// Minimal JSON support for the serve protocol: a strict, depth- and
// size-capped parser for newline-delimited request objects, plus the
// escaping helpers the response renderer needs.
//
// This is deliberately not a general JSON library. The daemon's requests
// are single-line objects of scalar fields; the parser accepts the full
// JSON value grammar (so a malformed client gets a precise diagnostic
// rather than a crash) but caps nesting depth and input size, rejects the
// non-decimal number forms the hardened io parsers reject (inf/nan/hex —
// numbers route through io::parse_double_prefix, the tree's only sanctioned
// stod site), and reports the byte offset of the first error so the
// SSN-E063 diagnostic can point at it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ssnkit::serve {

/// A parsed JSON value. Object members keep their source order so duplicate
/// keys can be diagnosed instead of silently last-wins.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> elements;                         ///< kArray

  bool is_object() const { return kind == Kind::kObject; }
  /// First member with this key, or nullptr.
  const JsonValue* find(const std::string& key) const;
};

/// Outcome of parsing one request line.
struct JsonParse {
  bool ok = false;
  JsonValue value;
  std::string error;       ///< set when !ok
  std::size_t offset = 0;  ///< byte offset of the error (0-based)
};

/// Parse a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). `max_depth` bounds object/array
/// nesting; `max_bytes` bounds the input (both typed errors, not crashes).
JsonParse parse_json(const std::string& text, std::size_t max_depth = 16,
                     std::size_t max_bytes = 1 << 20);

/// Escape a string for embedding between double quotes in JSON output.
std::string json_escape(const std::string& text);

/// Thrown by json_number when a payload double is NaN or infinite. JSON
/// cannot express non-finite values, and silently rendering them as null
/// would serve a corrupted number as a valid-looking response — the exact
/// "silently wrong" failure the trust layer exists to stop. The server maps
/// this onto a typed SSN-E067 error response.
class NonFiniteJsonError : public std::runtime_error {
 public:
  explicit NonFiniteJsonError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Render a double as a JSON number token. Finite values round-trip at 17
/// significant digits; non-finite values throw NonFiniteJsonError — use
/// json_number_or_null for fields where "not computed" is a legal state.
std::string json_number(double value);

/// Like json_number, but renders non-finite values as an explicit null.
/// Only for optional fields whose absence is meaningful (e.g. a trust
/// report's condition estimate when the estimator did not run) — result
/// payload numbers go through the strict json_number.
std::string json_number_or_null(double value);

}  // namespace ssnkit::serve
