#include "serve/worker.hpp"

#include "serve/handlers.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "support/faultinject.hpp"
#include "support/runcontext.hpp"
#include "support/subprocess.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace ssnkit::serve {

namespace {

#if defined(SSNKIT_FAULT_INJECTION)
/// worker-hang: spin without ever polling a RunContext or the socket, so
/// only the supervisor's SIGKILL watchdog can end this process. The
/// volatile counter keeps the infinite loop observable (a side-effect-free
/// loop would be undefined behavior and fair game for the optimizer).
[[noreturn]] void hang_forever() {
  volatile unsigned spin = 0;
  for (;;) spin = spin + 1;
}

/// worker-oom: a bounded allocation burst (touching every page so the
/// memory is really committed). Under the worker's RLIMIT_AS cap the burst
/// throws bad_alloc well before its bound; the throw happens outside any
/// handler in this translation unit, so it escapes worker_main, hits
/// std::terminate, and kills the process with SIGABRT — an OOM death the
/// supervisor observes via waitpid, exactly like a real one. Without an
/// address-space cap the burst completes, frees, and the request proceeds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SSNKIT_SANITIZER_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SSNKIT_SANITIZER_BUILD 1
#endif
#endif

void allocation_burst() {
#if defined(SSNKIT_SANITIZER_BUILD)
  // Sanitizer builds run without RLIMIT_AS (the shadow mappings exceed any
  // cap — see subprocess.cpp), so committing the burst for real would eat
  // host memory instead of tripping a limit. Simulate the allocation
  // failure at the same point in the code path.
  throw std::bad_alloc();
#else
  constexpr std::size_t kChunk = std::size_t(64) << 20;  // 64 MB
  constexpr std::size_t kMaxChunks = 256;                // 16 GB bound
  std::vector<std::unique_ptr<char[]>> chunks;
  chunks.reserve(kMaxChunks);
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    chunks.push_back(std::make_unique<char[]>(kChunk));
    char* p = chunks.back().get();
    for (std::size_t off = 0; off < kChunk; off += 4096) p[off] = char(1);
  }
#endif
}
#endif

/// Execute one parsed request and render exactly one response line. The
/// same exception-to-code mapping as the thread-mode server, so a client
/// cannot tell which isolation mode answered.
std::string respond(const ServeRequest& request,
                    CalibrationCache& calibrations) {
  support::RunContext ctx;
  if (request.deadline_s > 0.0) ctx.set_timeout(request.deadline_s);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const std::string fragment = execute_request(request, calibrations, &ctx);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    return render_ok(request.id, fragment, false, elapsed.count());
  } catch (const support::SolverError& e) {
    return render_solver_error(request.id, e);
  } catch (const NonFiniteJsonError& e) {
    return render_error(request.id, "SSN-E067", e.what());
  } catch (const std::exception& e) {
    return render_error(request.id, "SSN-E065", e.what());
  }
}

}  // namespace

int worker_main(int fd) {
  // Worker-local calibration cache: fits are re-done per worker process
  // (they cannot be shared across fork once a worker is respawned), but a
  // long-lived worker amortizes them across all requests it serves.
  CalibrationCache calibrations;
  std::string inbuf;
  std::string line;
  for (;;) {
    // No read deadline: an idle worker blocks until the parent writes or
    // closes. Watchdog enforcement only applies while a request is in
    // flight, and that is the parent's job.
    const auto status = support::read_line(
        fd, inbuf, line, std::chrono::steady_clock::time_point::max());
    if (status == support::ReadLineStatus::kEof) return 0;
    if (status != support::ReadLineStatus::kLine) return 1;

    const RequestParse parsed = parse_request(line);
    if (!parsed.ok) {
      // The parent only forwards validated requests, so this is a protocol
      // bug — but answer it typed anyway so the request is never dropped.
      if (!support::write_line(fd, render_error(parsed.id, "SSN-E063",
                                                parsed.error)))
        return 1;
      continue;
    }

    {
      // Scope the fault streams by driver count: `worker-crash@13=1` makes
      // every n=13 request a deterministic poison pill while the rest of
      // the traffic stays clean. The scope is destroyed before the response
      // is written so the sites are queried exactly once per request.
      support::FaultSampleScope scope(std::size_t(parsed.request.n_drivers));
      if (SSN_FAULT_POINT(support::FaultKind::kWorkerCrash)) std::abort();
#if defined(SSNKIT_FAULT_INJECTION)
      if (SSN_FAULT_POINT(support::FaultKind::kWorkerHang)) hang_forever();
      if (SSN_FAULT_POINT(support::FaultKind::kWorkerOom)) allocation_burst();
#endif
    }

    if (!support::write_line(fd, respond(parsed.request, calibrations)))
      return 1;
  }
}

}  // namespace ssnkit::serve
