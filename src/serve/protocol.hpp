// The serve wire protocol: newline-delimited JSON, one object per line in
// each direction.
//
// Request (all fields except "cmd" optional; unknown keys are an error so a
// typo'd field can never be silently ignored):
//
//   {"id":"r1","cmd":"estimate","tech":"180nm","golden":"alpha",
//    "package":"pga","pads":2,"l":5e-9,"c":1e-12,"n":8,"tr":1e-10,
//    "include_c":true,"sim":false,"samples":1000,"seed":12345,
//    "max_n":16,"deadline":2.5}
//
// Responses:
//
//   {"id":"r1","ok":true,"cached":false,"elapsed_us":412,"result":{...}}
//   {"id":"r1","ok":false,"code":"SSN-E064","error":"...","retry_after_ms":50}
//
// Every response is exactly one line of valid JSON; the daemon's final
// stats line is too ({"event":"stats",...}), so a client can parse the
// whole stream uniformly. Numbers are plain JSON in SI base units — no
// SPICE suffixes on the wire.
//
// Error codes (rows in docs/DIAGNOSTICS.md, enforced by ssnlint SSN-L012):
//   SSN-E063  malformed request (bad JSON, unknown key/command, bad range)
//   SSN-E064  overloaded — admission queue full, retry after the hint
//   SSN-E065  request failed in the solver (typed kind attached)
//   SSN-E066  request cancelled (its deadline, or the daemon's drain)
//   SSN-E068  worker missed its deadline + grace and was SIGKILL'd
//   SSN-E069  worker process died mid-request (signal / OOM / bad exit)
//   SSN-E070  request quarantined: its cache key already killed N workers
//
// The same request/response framing doubles as the supervisor's worker wire
// protocol: the parent re-renders an admitted ServeRequest with
// render_request() and ships it over the socketpair, so a worker is just a
// tiny serve loop and every protocol invariant above holds on both hops.
#pragma once

#include "serve/json.hpp"
#include "support/diagnostics.hpp"
#include "verify/trust.hpp"

#include <cstdint>
#include <string>

namespace ssnkit::serve {

// ssn-units: inductance=H, capacitance=F, rise_time=s, deadline_s=s
/// One validated analysis request. Field semantics match the CLI flags of
/// the corresponding commands (estimate / mc / sweep-n).
struct ServeRequest {
  std::string id;            ///< echoed on the response; assigned if empty
  std::string cmd;           ///< "estimate" | "mc" | "sweep-n"
  std::string tech = "180nm";
  std::string golden = "alpha";
  std::string package = "pga";
  int pads = 1;              ///< parallel ground pads (divides L)
  double inductance = -1.0;  ///< [H] override; < 0 = package default
  double capacitance = -1.0; ///< [F] override; < 0 = package default
  int n_drivers = 8;
  double rise_time = 0.1e-9; ///< [s] input ramp
  bool include_c = true;     ///< false = Section 3 L-only model
  bool sim = false;          ///< estimate: verify on the MNA simulator
  int samples = 1000;        ///< mc: closed-form sample count
  int seed = 12345;          ///< mc: PRNG seed
  int max_n = 16;            ///< sweep-n: largest driver count
  double deadline_s = 0.0;   ///< [s] per-request budget; 0 = server default
};

/// Outcome of parsing + validating one request line.
struct RequestParse {
  bool ok = false;
  ServeRequest request;
  std::string error;  ///< set when !ok; becomes the SSN-E063 message
  std::string id;     ///< request id when one could be recovered from the line
};

/// Parse one line into a validated ServeRequest. Never throws: every
/// malformed input — bad JSON, non-object, unknown key or command, a value
/// out of its documented range, an unknown tech/golden/package name — comes
/// back as !ok with a message naming the offending field. When the line
/// parsed far enough to contain an "id", it is returned even on failure so
/// the SSN-E063 response can still be correlated by the client.
RequestParse parse_request(const std::string& line);

/// Canonical cache identity of a request: every field that affects the
/// result, none that does not (id and deadline are excluded). Two requests
/// with equal keys produce bit-identical result payloads.
std::string cache_key_string(const ServeRequest& request);
std::uint64_t cache_key(const ServeRequest& request);

/// Render a validated request back onto the wire so it round-trips through
/// parse_request bit-identically (doubles at 17 significant digits; the
/// l/c overrides are omitted when unset, since their "unset" sentinel is
/// outside the wire range). This is how the supervisor forwards admitted
/// requests to worker processes.
std::string render_request(const ServeRequest& request);

// --- trust serialization -----------------------------------------------------

/// Render a TrustReport as the "trust" member every result fragment
/// carries: {"verdict":"verified","residual":...,"cond":...,"ci95":...}.
/// Not-computed fields (NaN) render as explicit null via json_number_or_null
/// — they are the only payload numbers allowed to be non-finite.
std::string render_trust(const verify::TrustReport& trust);

/// Recover the trust verdict embedded in a (cached) result fragment. False
/// when the fragment has no parseable "trust" member with a known verdict —
/// a pre-trust-layer or damaged entry, which the server must recompute
/// rather than serve.
bool extract_trust_verdict(const std::string& result_fragment,
                           verify::Verdict& out);

// --- response rendering (each returns one line, no trailing newline) --------

/// {"id":...,"ok":true,"cached":...,"elapsed_us":...,"result":{...}}.
/// `result_fragment` must be a complete JSON value (the handlers build it).
std::string render_ok(const std::string& id, const std::string& result_fragment,
                      bool cached, std::int64_t elapsed_us);

/// Generic error response: {"id":...,"ok":false,"code":...,"error":...}.
std::string render_error(const std::string& id, const std::string& code,
                         const std::string& message);

/// SSN-E064 overload response with the retry hint clients should honor.
std::string render_overloaded(const std::string& id, double retry_after_ms);

/// Deterministic per-request jitter for the SSN-E064 retry hint: maps
/// (id, seed) onto a factor in [0.5, 1.5) of `base_ms`, so a synchronized
/// burst of shed clients fans back in over a full base period instead of
/// thundering-herding the admission queue at one instant. Pure function of
/// its inputs (FNV-1a of the id mixed with the seed) — the same client
/// retrying the same id sees a stable hint.
double jittered_retry_after_ms(double base_ms, const std::string& id,
                               unsigned seed);

/// SSN-E065/E066 for a typed solver failure: attaches kind and
/// retryability; stop kinds (cancelled / deadline) render as SSN-E066.
std::string render_solver_error(const std::string& id,
                                const support::SolverError& error);

/// Parent-side view of one worker response line.
struct ResponseView {
  bool ok = false;         ///< the "ok" member
  std::string code;        ///< error code when !ok ("" for ok lines)
  std::string fragment;    ///< raw result fragment when ok (cacheable)
  bool cancelled = false;  ///< !ok with code SSN-E066 (worker-side deadline)
};

/// Split a response line produced by render_ok / render_error /
/// render_solver_error back into its parts. The result fragment is
/// recovered textually — render_ok guarantees `"result":` is the final
/// member — so the parent caches the exact bytes the worker computed, not a
/// re-serialization. Returns false for lines that are not valid responses
/// (a worker that printed garbage is treated as crashed by the caller).
bool split_response_line(const std::string& line, ResponseView& out);

/// Aggregate daemon counters, rendered as the final stats line.
struct ServerStats {
  std::uint64_t accepted = 0;    ///< requests admitted to the queue
  std::uint64_t responded = 0;   ///< responses sent for admitted requests
  std::uint64_t ok = 0;          ///< of those, successful results
  std::uint64_t solver_errors = 0;
  std::uint64_t cancelled = 0;   ///< drain / per-request deadline
  std::uint64_t shed = 0;        ///< rejected at admission (SSN-E064)
  std::uint64_t malformed = 0;   ///< rejected at parse (SSN-E063)
  std::uint64_t cache_hits = 0;
  // Process-isolation counters (zero in thread mode).
  std::uint64_t worker_timeouts = 0;  ///< SSN-E068: watchdog SIGKILLs
  std::uint64_t worker_crashes = 0;   ///< SSN-E069: worker deaths
  std::uint64_t quarantined = 0;      ///< SSN-E070: poison-key refusals
};

/// {"event":"stats","accepted":...,...} — one line, valid JSON.
std::string render_stats(const ServerStats& stats);

}  // namespace ssnkit::serve
