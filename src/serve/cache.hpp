// Content-addressed result cache for the serve daemon.
//
// Keys are FNV-1a hashes of the canonical request string (protocol.hpp's
// cache_key); values are the rendered result fragments. The cache is a
// bounded LRU guarded by one mutex — requests cost milliseconds to seconds
// to compute, so contention on a hash-map lookup is irrelevant.
//
// Crash safety: save() publishes the whole cache through
// support::write_file_atomic (temp + fsync + rename + dir fsync), so the
// spill file on disk is always complete. load() is tolerant the same way
// the journal loader is: a torn or corrupt *record* is discarded with an
// SSN-W067 warning — a cache entry is always safe to lose (the request
// simply recomputes) and never safe to trust when its checksum disagrees.
//
// In-memory integrity: every entry keeps the FNV-1a checksum computed at
// insert, and get() re-verifies it on every hit. A payload whose bytes
// rotted while cached (the kCacheRot fault class simulates exactly this)
// is dropped with an SSN-W072 finding and the request recomputes — a
// corrupted result is never served, which is the cache's share of the
// "never silently wrong" contract.
//
// File format (line-oriented; payloads are single-line JSON, so one record
// is exactly one line):
//
//   ssnkit-cache v1
//   entry <key hex16> <payload-fnv hex16> <payload...>
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ssnkit::serve {

class ResultCache {
 public:
  /// `capacity` = max entries; 0 disables the cache entirely (get always
  /// misses, put is a no-op) so callers never need a null check.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  /// Look up a key; a hit bumps the entry to most-recently-used and
  /// re-verifies the payload checksum first. A checksum mismatch drops the
  /// entry and reports a miss; when `warning` is non-null it receives one
  /// formatted SSN-W072 line describing the dropped entry.
  std::optional<std::string> get(std::uint64_t key,
                                 std::string* warning = nullptr);

  /// Insert or refresh an entry (evicting the least-recently-used one when
  /// full). Payloads containing '\n' are rejected (dropped) — the spill
  /// format is line-oriented and every renderer emits single lines.
  void put(std::uint64_t key, const std::string& payload);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t warmed = 0;             ///< entries restored by load()
    std::uint64_t discarded_on_load = 0;  ///< torn/corrupt records skipped
    std::uint64_t corrupt_dropped = 0;    ///< in-memory re-checksum failures
  };
  Stats stats() const;

  /// Atomically publish every entry to `path` (crash-safe: the file is
  /// always a complete spill). Throws support::IoError on I/O failure.
  void save(const std::string& path) const;

  /// Warm the cache from a spill file. A missing file is a cold start (no
  /// warnings); a damaged header abandons the file; a damaged or torn entry
  /// is discarded. Every non-fatal finding comes back as one formatted
  /// SSN-W067 line. Existing entries win over loaded ones.
  std::vector<std::string> load(const std::string& path);

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::string payload;
    std::uint64_t checksum = 0;  ///< fnv1a(payload), fixed at insert
  };
  using LruList = std::list<Entry>;

  void put_locked(std::uint64_t key, const std::string& payload,
                  bool refresh_existing);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used; guarded by mu_
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  Stats stats_;  ///< guarded by mu_
};

}  // namespace ssnkit::serve
