// Supervised worker pool for `ssnkit serve --isolate=process`: crash
// containment, a hang watchdog, and poison-request quarantine.
//
// Thread mode (PR 7/8) already guarantees exactly-once typed responses and
// never-silently-wrong results — but only for failures that behave: a
// segfault in one solve kills every in-flight request, and a non-cooperative
// hang (a loop that never polls its RunContext) eats a pool thread forever.
// The Supervisor moves execution behind a process boundary so those two
// failure classes become per-request events:
//
//   crash   A worker that dies (signal, rlimit OOM, bad exit) fails only
//           its own request, typed SSN-E069 with the waitpid verdict
//           attached; the slot respawns with exponential backoff so a
//           crash-looping workload cannot turn the daemon into fork(2) spam.
//   hang    Each in-flight request carries a wall-clock kill time
//           (deadline + grace). The watchdog SIGKILLs a worker that is
//           still busy past it and the request fails typed SSN-E068 —
//           deadlines are finally enforced against code that never polls.
//   poison  A crash-correlation table counts worker deaths per cache key.
//           A key that has killed `quarantine_after` workers is refused up
//           front with SSN-E070 and the offending request line is appended
//           to the quarantine file for offline repro — one bad design point
//           can never crash-loop the fleet.
//
// Workers speak the ordinary serve wire protocol over a socketpair
// (render_request in, one response line out), so the protocol invariants —
// exactly one line per request, typed codes, trust-stamped results — hold
// across the process hop with no second code path.
//
// Concurrency: execute() is called from the server's pool threads, one
// in-flight request per worker slot; a single watchdog thread owns kills
// and respawns. The mutex guards slot state only — never held across
// fork, write, read, or waitpid.
#pragma once

#include "serve/protocol.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ssnkit::serve {

// ssn-units: grace_s=s, cpu_limit_s=s, backoff_base_ms=ms, backoff_max_ms=ms
struct SupervisorConfig {
  /// Worker processes (support::resolve_threads semantics: 0 = auto).
  int workers = 0;
  /// Wall-clock slack past a request's deadline before the watchdog
  /// SIGKILLs the worker (covers serialization + a cooperative stop).
  double grace_s = 0.5;
  /// RLIMIT_AS per worker; 0 = unlimited.
  std::size_t mem_limit_mb = 1024;
  /// RLIMIT_CPU per worker; 0 = unlimited.
  double cpu_limit_s = 0.0;
  /// Worker deaths a cache key may cause before it is refused (SSN-E070).
  int quarantine_after = 2;
  /// Where quarantined request lines are journaled; "" = no journal. Each
  /// line is a complete request, so the file replays directly.
  std::string quarantine_file;
  /// Respawn backoff: base * 2^(consecutive-1), capped at max.
  double backoff_base_ms = 25.0;
  double backoff_max_ms = 2000.0;
};

/// Worker-death bookkeeping per cache key, plus the quarantine decision.
/// Separate from the Supervisor so the threshold logic is unit-testable
/// without forking anything.
class CrashCorrelation {
 public:
  CrashCorrelation(int threshold, std::string journal_path)
      : threshold_(threshold), journal_path_(std::move(journal_path)) {}

  /// Record one worker death attributed to `key`; `request_line` is
  /// journaled when this death trips the threshold. Returns the updated
  /// death count for the key.
  int record(std::uint64_t key, const std::string& request_line);

  /// Whether the key has reached the quarantine threshold.
  bool quarantined(std::uint64_t key) const;

  std::size_t quarantined_keys() const;
  int threshold() const { return threshold_; }

 private:
  const int threshold_;
  const std::string journal_path_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, int> deaths_;  // guarded by mu_
  std::size_t quarantined_ = 0;                    // guarded by mu_
};

/// One executed (or refused) request, as observed by the parent.
struct WorkerOutcome {
  enum class Status {
    kOk,             ///< worker returned an ok response; fragment cacheable
    kError,          ///< worker returned a typed error response (pass through)
    kWorkerTimeout,  ///< watchdog SIGKILL — render SSN-E068
    kWorkerCrashed,  ///< worker died mid-request — render SSN-E069
    kQuarantined,    ///< refused up front — render SSN-E070
    kStopped,        ///< drain/shutdown ended it — render SSN-E066
  };
  Status status = Status::kStopped;
  std::string response;   ///< worker's verbatim line (kOk / kError)
  std::string fragment;   ///< result fragment (kOk only)
  bool cancelled = false; ///< kError carrying SSN-E066 (worker-side deadline)
  std::string detail;     ///< human-readable cause for the typed failures
};

class Supervisor {
 public:
  /// Lifecycle event lines ({"event":"worker-spawn",...} and SSN-W075/W076
  /// warnings), one JSON object per call; may be invoked from any
  /// supervisor thread. Pass an empty function to discard.
  using EventSink = std::function<void(const std::string& line)>;

  /// Forks the initial pool (before the caller spins up its own threads,
  /// ideally) and starts the watchdog.
  Supervisor(const SupervisorConfig& config, EventSink events);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Run one request on an idle worker (blocking until one is free).
  /// `deadline_s` is the effective per-request budget the watchdog enforces
  /// (0 = no wall-clock kill). Thread-safe; one worker per concurrent call.
  WorkerOutcome execute(const ServeRequest& request, double deadline_s);

  /// Drain support: SIGKILL every busy worker so their requests resolve as
  /// kStopped promptly. Unlike cooperative cancellation this bounds a
  /// drain even when the hung code never polls.
  void kill_inflight();

  /// Stop the watchdog, kill and reap every worker. Idempotent; the
  /// destructor calls it. After shutdown, execute() returns kStopped.
  void shutdown();

  /// Live worker pids (tests and the chaos soak pick SIGKILL victims here).
  std::vector<long> worker_pids() const;

  /// Workers currently executing a request. Tests use this to time a
  /// mid-request SIGKILL: admission (stats.accepted) precedes the write to
  /// the worker, so only a busy slot is provably holding its request.
  std::size_t busy_workers() const;

  const CrashCorrelation& correlation() const { return correlation_; }

  struct Counters {
    std::uint64_t spawns = 0;
    std::uint64_t crashes = 0;   ///< deaths observed mid-request (E069)
    std::uint64_t timeouts = 0;  ///< watchdog kills (E068)
  };
  Counters counters() const;

  /// The respawn backoff schedule, exposed so tests can pin it down:
  /// min(base * 2^(consecutive_crashes-1), max); consecutive_crashes >= 1.
  static double restart_backoff_ms(int consecutive_crashes, double base_ms,
                                   double max_ms);

 private:
  enum class SlotState { kIdle, kBusy, kDead };
  struct Slot {
    long pid = -1;
    int fd = -1;
    int kill_slot = -1;  ///< crashclean kill-registry handle
    SlotState state = SlotState::kDead;
    bool timed_out = false;     ///< watchdog killed it for its deadline
    bool drain_killed = false;  ///< kill_inflight ended it
    bool kill_sent = false;     ///< SIGKILL already dispatched this request
    bool has_kill_at = false;
    std::chrono::steady_clock::time_point kill_at{};
    std::chrono::steady_clock::time_point respawn_at{};
    int consecutive_crashes = 0;
    std::string inbuf;  ///< owned by the executor while kBusy
  };

  void watchdog_loop();
  bool spawn_slot_locked(std::size_t index);
  /// Close + reap a dead worker and schedule its respawn. Returns the
  /// backoff applied. Caller holds mu_.
  double mark_dead_locked(Slot& slot);
  void emit(const std::string& line);

  const SupervisorConfig config_;
  const EventSink events_;
  CrashCorrelation correlation_;

  mutable std::mutex mu_;
  std::condition_variable cv_idle_;
  std::vector<Slot> slots_;  // guarded by mu_ (inbuf: executor-owned)
  bool stop_ = false;        // guarded by mu_
  Counters counters_;        // guarded by mu_
  bool shut_down_ = false;   // main thread only

  std::thread watchdog_;
};

}  // namespace ssnkit::serve
