#include "serve/handlers.hpp"

#include "analysis/montecarlo.hpp"
#include "analysis/resilience.hpp"
#include "analysis/sweeps.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "sim/recovery.hpp"
#include "verify/physics.hpp"
#include "verify/trust.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace ssnkit::serve {

std::shared_ptr<const analysis::Calibration> CalibrationCache::get(
    const std::string& tech, const std::string& golden) {
  const std::string key = tech + '|' + golden;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = fits_.find(key);
    if (it != fits_.end()) return it->second;
  }
  // Fit outside the lock: two threads may race to fit the same pair; the
  // fits are deterministic, so whichever publishes first wins and the loser
  // just did redundant work — better than serializing unrelated fits.
  const process::GoldenKind kind = golden == "bsim"
                                       ? process::GoldenKind::kBsimLite
                                       : process::GoldenKind::kAlphaPower;
  auto fitted = std::make_shared<const analysis::Calibration>(
      analysis::calibrate(process::technology_by_name(tech), kind));
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = fits_.emplace(key, std::move(fitted));
  (void)inserted;
  return it->second;
}

namespace {

process::Package package_for(const ServeRequest& req) {
  process::Package pkg = process::package_by_name(req.package);
  if (req.pads > 1) pkg = pkg.with_ground_pads(req.pads);
  if (req.inductance >= 0.0) pkg.inductance = req.inductance;
  if (req.capacitance >= 0.0) pkg.capacitance = req.capacitance;
  return pkg;
}

/// Closed-form self-check: the Table 1 / Eqn 7 peak formula and a sampled
/// waveform of the same model must agree on the maximum. A disagreement
/// means the damping case was mis-selected (or a formula was evaluated
/// outside its validity region); it downgrades trust instead of serving a
/// confidently wrong number. The 5 % bar leaves room for the sampling
/// resolution of the waveform's peak.
void check_formula_vs_waveform(double v_model, const waveform::Waveform& vn,
                               double t_end, verify::TrustReport& trust) {
  const double sampled = vn.maximum_in(0.0, t_end).value;
  const double scale = std::max(std::abs(v_model), std::abs(sampled));
  if (!(scale > 0.0)) return;
  if (!(std::abs(v_model - sampled) <= 0.05 * scale)) {
    trust.downgrade(verify::Verdict::kDegraded);
    trust.note(
        "SSN-W073: closed-form v_max disagrees with its own sampled "
        "waveform maximum (mis-selected damping case?)");
  }
}

/// Throw the stop that drained a batch as a typed SolverError, so the
/// server's one catch site maps every cooperative stop onto SSN-E066.
void throw_stop(support::StopReason stop) {
  const auto kind = stop == support::StopReason::kDeadlineExpired
                        ? support::SolverErrorKind::kDeadlineExpired
                        : support::SolverErrorKind::kCancelled;
  throw support::SolverError(kind, "request stopped before completion");
}

std::string handle_estimate(const ServeRequest& req,
                            const analysis::Calibration& cal,
                            const process::Package& pkg,
                            const support::RunContext* ctx) {
  const bool with_c = req.include_c && pkg.capacitance > 0.0;
  const auto scenario = analysis::make_scenario(cal, pkg, req.n_drivers,
                                                req.rise_time, with_c);
  // Every result fragment carries its trust verdict. The closed form starts
  // verified-by-self-check; a simulator verify merges the engine's report
  // and the model-vs-simulator cross-check on top.
  verify::TrustReport trust;
  trust.verdict = verify::Verdict::kVerified;
  double v_model = 0.0;
  std::string out = "{";
  out += "\"n\":" + std::to_string(req.n_drivers);
  out += ",\"l\":" + json_number(pkg.inductance);
  out += ",\"c\":" + json_number(with_c ? pkg.capacitance : 0.0);
  out += ",\"slope\":" + json_number(scenario.slope);
  out += ",\"beta\":" + json_number(scenario.beta());
  if (with_c) {
    const core::LcModel model(scenario);
    v_model = model.v_max();
    out += ",\"model\":\"lc\"";
    out += ",\"v_max\":" + json_number(v_model);
    out += ",\"zeta\":" + json_number(model.zeta());
    out += ",\"case\":\"" +
           json_escape(core::to_string(model.max_case())) + "\"";
    out += ",\"c_crit\":" + json_number(scenario.critical_capacitance());
    check_formula_vs_waveform(v_model, model.vn_waveform(1024),
                              scenario.t_ramp_end(), trust);
  } else {
    const core::LOnlyModel model(scenario);
    v_model = model.v_max();
    out += ",\"model\":\"l-only\"";
    out += ",\"v_max\":" + json_number(v_model);
    check_formula_vs_waveform(v_model, model.vn_waveform(1024),
                              scenario.t_ramp_end(), trust);
  }
  if (req.sim) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.package = pkg;
    spec.golden = cal.golden;
    spec.n_drivers = req.n_drivers;
    spec.input_rise_time = req.rise_time;
    spec.include_package_c = with_c;
    analysis::MeasureOptions opts;
    opts.transient.run_ctx = ctx;
    const auto m = analysis::measure_ssn_resilient(spec, opts, {}, &scenario);
    if (!m.ok()) {
      if (m.error) throw *m.error;
      throw support::SolverError(support::SolverErrorKind::kHomotopyExhausted,
                                 "simulation failed with no diagnostic");
    }
    // A cancelled/deadlined sample must surface as a stop, not as a silent
    // analytic degrade (the resilient driver keeps the stop error set).
    if (m.error && support::is_stop_kind(m.error->kind())) throw *m.error;
    // The engine's solve/physics verdict, then the paper's 3 % bar between
    // the closed form and the simulator (SSN-W074 on disagreement).
    trust.merge(m.measurement.trust);
    verify::cross_check_closed_form(v_model, m.measurement.v_max, trust);
    out += ",\"v_max_sim\":" + json_number(m.measurement.v_max);
    out += ",\"fidelity\":\"" +
           json_escape(sim::to_string(m.fidelity)) + "\"";
  }
  out += ",\"trust\":" + render_trust(trust);
  out += "}";
  return out;
}

std::string handle_mc(const ServeRequest& req,
                      const analysis::Calibration& cal,
                      const process::Package& pkg,
                      const support::RunContext* ctx) {
  const bool with_c = req.include_c && pkg.capacitance > 0.0;
  const auto scenario = analysis::make_scenario(cal, pkg, req.n_drivers,
                                                req.rise_time, with_c);
  analysis::MonteCarloOptions opts;
  opts.samples = req.samples;
  opts.seed = unsigned(req.seed);
  opts.threads = 1;  // the daemon parallelizes across requests, not within
  opts.run_ctx = ctx;
  const auto mc = analysis::monte_carlo_vmax(scenario, opts);
  if (mc.stop != support::StopReason::kNone) throw_stop(mc.stop);
  verify::TrustReport trust;
  trust.verdict = verify::Verdict::kVerified;
  trust.ci95 = mc.ci95;
  std::string out = "{";
  out += "\"samples\":" + std::to_string(mc.completed);
  out += ",\"mean\":" + json_number(mc.mean);
  out += ",\"stddev\":" + json_number(mc.stddev);
  out += ",\"min\":" + json_number(mc.min);
  out += ",\"max\":" + json_number(mc.max);
  out += ",\"p95\":" + json_number(mc.p95);
  out += ",\"p99\":" + json_number(mc.p99);
  out += ",\"ci95\":" + json_number(mc.ci95);
  out += ",\"region_flip_fraction\":" + json_number(mc.region_flip_fraction);
  out += ",\"trust\":" + render_trust(trust);
  out += "}";
  return out;
}

std::string handle_sweep_n(const ServeRequest& req,
                           const analysis::Calibration& cal,
                           const process::Package& pkg,
                           const support::RunContext* ctx) {
  analysis::DriverSweepConfig config;
  config.tech = cal.tech;
  config.package = pkg;
  config.golden = cal.golden;
  config.input_rise_time = req.rise_time;
  config.include_package_c = req.include_c && pkg.capacitance > 0.0;
  config.driver_counts.clear();
  for (int n = 1; n <= req.max_n; n += (n < 4 ? 1 : 2))
    config.driver_counts.push_back(n);
  config.threads = 1;  // see handle_mc
  config.transient.run_ctx = ctx;
  config.run_ctx = ctx;
  const auto result = analysis::run_driver_sweep(config);
  if (result.summary.stop != support::StopReason::kNone)
    throw_stop(result.summary.stop);
  std::string out = "{\"rows\":[";
  bool first = true;
  for (const auto& row : result.rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"n\":" + std::to_string(row.n);
    out += ",\"sim\":" + json_number(row.sim);
    out += ",\"this_work\":" + json_number(row.this_work);
    out += ",\"vemuru\":" + json_number(row.vemuru);
    out += ",\"song\":" + json_number(row.song);
    out += ",\"senthinathan\":" + json_number(row.senthinathan);
    out += ",\"fidelity\":\"" +
           json_escape(sim::to_string(row.fidelity)) + "\"}";
  }
  out += "],\"full_fidelity\":" +
         std::to_string(result.summary.full_fidelity);
  out += ",\"recovered\":" + std::to_string(result.summary.recovered);
  out += ",\"analytic\":" + std::to_string(result.summary.analytic);
  out += ",\"failed\":" + std::to_string(result.summary.failed);
  // Sweep-level trust from the per-row fidelities: analytic rows carry no
  // independent verification, failed rows poison the comparison table.
  verify::TrustReport trust;
  trust.verdict = verify::Verdict::kVerified;
  if (result.summary.analytic > 0) {
    trust.downgrade(verify::Verdict::kUnverified);
    trust.note(std::to_string(result.summary.analytic) +
               " row(s) degraded to the closed-form model");
  }
  if (result.summary.failed > 0) {
    trust.downgrade(verify::Verdict::kDegraded);
    trust.note(std::to_string(result.summary.failed) +
               " row(s) failed outright");
  }
  out += ",\"trust\":" + render_trust(trust);
  out += "}";
  return out;
}

}  // namespace

std::string execute_request(const ServeRequest& request,
                            CalibrationCache& calibrations,
                            const support::RunContext* ctx) {
  const auto cal = calibrations.get(request.tech, request.golden);
  const process::Package pkg = package_for(request);
  if (request.cmd == "estimate")
    return handle_estimate(request, *cal, pkg, ctx);
  if (request.cmd == "mc") return handle_mc(request, *cal, pkg, ctx);
  return handle_sweep_n(request, *cal, pkg, ctx);
}

}  // namespace ssnkit::serve
