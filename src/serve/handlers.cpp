#include "serve/handlers.hpp"

#include "analysis/montecarlo.hpp"
#include "analysis/resilience.hpp"
#include "analysis/sweeps.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "sim/recovery.hpp"

#include <string>

namespace ssnkit::serve {

std::shared_ptr<const analysis::Calibration> CalibrationCache::get(
    const std::string& tech, const std::string& golden) {
  const std::string key = tech + '|' + golden;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = fits_.find(key);
    if (it != fits_.end()) return it->second;
  }
  // Fit outside the lock: two threads may race to fit the same pair; the
  // fits are deterministic, so whichever publishes first wins and the loser
  // just did redundant work — better than serializing unrelated fits.
  const process::GoldenKind kind = golden == "bsim"
                                       ? process::GoldenKind::kBsimLite
                                       : process::GoldenKind::kAlphaPower;
  auto fitted = std::make_shared<const analysis::Calibration>(
      analysis::calibrate(process::technology_by_name(tech), kind));
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = fits_.emplace(key, std::move(fitted));
  (void)inserted;
  return it->second;
}

namespace {

process::Package package_for(const ServeRequest& req) {
  process::Package pkg = process::package_by_name(req.package);
  if (req.pads > 1) pkg = pkg.with_ground_pads(req.pads);
  if (req.inductance >= 0.0) pkg.inductance = req.inductance;
  if (req.capacitance >= 0.0) pkg.capacitance = req.capacitance;
  return pkg;
}

/// Throw the stop that drained a batch as a typed SolverError, so the
/// server's one catch site maps every cooperative stop onto SSN-E066.
void throw_stop(support::StopReason stop) {
  const auto kind = stop == support::StopReason::kDeadlineExpired
                        ? support::SolverErrorKind::kDeadlineExpired
                        : support::SolverErrorKind::kCancelled;
  throw support::SolverError(kind, "request stopped before completion");
}

std::string handle_estimate(const ServeRequest& req,
                            const analysis::Calibration& cal,
                            const process::Package& pkg,
                            const support::RunContext* ctx) {
  const bool with_c = req.include_c && pkg.capacitance > 0.0;
  const auto scenario = analysis::make_scenario(cal, pkg, req.n_drivers,
                                                req.rise_time, with_c);
  std::string out = "{";
  out += "\"n\":" + std::to_string(req.n_drivers);
  out += ",\"l\":" + json_number(pkg.inductance);
  out += ",\"c\":" + json_number(with_c ? pkg.capacitance : 0.0);
  out += ",\"slope\":" + json_number(scenario.slope);
  out += ",\"beta\":" + json_number(scenario.beta());
  if (with_c) {
    const core::LcModel model(scenario);
    out += ",\"model\":\"lc\"";
    out += ",\"v_max\":" + json_number(model.v_max());
    out += ",\"zeta\":" + json_number(model.zeta());
    out += ",\"case\":\"" +
           json_escape(core::to_string(model.max_case())) + "\"";
    out += ",\"c_crit\":" + json_number(scenario.critical_capacitance());
  } else {
    const core::LOnlyModel model(scenario);
    out += ",\"model\":\"l-only\"";
    out += ",\"v_max\":" + json_number(model.v_max());
  }
  if (req.sim) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.package = pkg;
    spec.golden = cal.golden;
    spec.n_drivers = req.n_drivers;
    spec.input_rise_time = req.rise_time;
    spec.include_package_c = with_c;
    analysis::MeasureOptions opts;
    opts.transient.run_ctx = ctx;
    const auto m = analysis::measure_ssn_resilient(spec, opts, {}, &scenario);
    if (!m.ok()) {
      if (m.error) throw *m.error;
      throw support::SolverError(support::SolverErrorKind::kHomotopyExhausted,
                                 "simulation failed with no diagnostic");
    }
    // A cancelled/deadlined sample must surface as a stop, not as a silent
    // analytic degrade (the resilient driver keeps the stop error set).
    if (m.error && support::is_stop_kind(m.error->kind())) throw *m.error;
    out += ",\"v_max_sim\":" + json_number(m.measurement.v_max);
    out += ",\"fidelity\":\"" +
           json_escape(sim::to_string(m.fidelity)) + "\"";
  }
  out += "}";
  return out;
}

std::string handle_mc(const ServeRequest& req,
                      const analysis::Calibration& cal,
                      const process::Package& pkg,
                      const support::RunContext* ctx) {
  const bool with_c = req.include_c && pkg.capacitance > 0.0;
  const auto scenario = analysis::make_scenario(cal, pkg, req.n_drivers,
                                                req.rise_time, with_c);
  analysis::MonteCarloOptions opts;
  opts.samples = req.samples;
  opts.seed = unsigned(req.seed);
  opts.threads = 1;  // the daemon parallelizes across requests, not within
  opts.run_ctx = ctx;
  const auto mc = analysis::monte_carlo_vmax(scenario, opts);
  if (mc.stop != support::StopReason::kNone) throw_stop(mc.stop);
  std::string out = "{";
  out += "\"samples\":" + std::to_string(mc.completed);
  out += ",\"mean\":" + json_number(mc.mean);
  out += ",\"stddev\":" + json_number(mc.stddev);
  out += ",\"min\":" + json_number(mc.min);
  out += ",\"max\":" + json_number(mc.max);
  out += ",\"p95\":" + json_number(mc.p95);
  out += ",\"p99\":" + json_number(mc.p99);
  out += ",\"region_flip_fraction\":" + json_number(mc.region_flip_fraction);
  out += "}";
  return out;
}

std::string handle_sweep_n(const ServeRequest& req,
                           const analysis::Calibration& cal,
                           const process::Package& pkg,
                           const support::RunContext* ctx) {
  analysis::DriverSweepConfig config;
  config.tech = cal.tech;
  config.package = pkg;
  config.golden = cal.golden;
  config.input_rise_time = req.rise_time;
  config.include_package_c = req.include_c && pkg.capacitance > 0.0;
  config.driver_counts.clear();
  for (int n = 1; n <= req.max_n; n += (n < 4 ? 1 : 2))
    config.driver_counts.push_back(n);
  config.threads = 1;  // see handle_mc
  config.transient.run_ctx = ctx;
  config.run_ctx = ctx;
  const auto result = analysis::run_driver_sweep(config);
  if (result.summary.stop != support::StopReason::kNone)
    throw_stop(result.summary.stop);
  std::string out = "{\"rows\":[";
  bool first = true;
  for (const auto& row : result.rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"n\":" + std::to_string(row.n);
    out += ",\"sim\":" + json_number(row.sim);
    out += ",\"this_work\":" + json_number(row.this_work);
    out += ",\"vemuru\":" + json_number(row.vemuru);
    out += ",\"song\":" + json_number(row.song);
    out += ",\"senthinathan\":" + json_number(row.senthinathan);
    out += ",\"fidelity\":\"" +
           json_escape(sim::to_string(row.fidelity)) + "\"}";
  }
  out += "],\"full_fidelity\":" +
         std::to_string(result.summary.full_fidelity);
  out += ",\"recovered\":" + std::to_string(result.summary.recovered);
  out += ",\"analytic\":" + std::to_string(result.summary.analytic);
  out += ",\"failed\":" + std::to_string(result.summary.failed);
  out += "}";
  return out;
}

}  // namespace

std::string execute_request(const ServeRequest& request,
                            CalibrationCache& calibrations,
                            const support::RunContext* ctx) {
  const auto cal = calibrations.get(request.tech, request.golden);
  const process::Package pkg = package_for(request);
  if (request.cmd == "estimate")
    return handle_estimate(request, *cal, pkg, ctx);
  if (request.cmd == "mc") return handle_mc(request, *cal, pkg, ctx);
  return handle_sweep_n(request, *cal, pkg, ctx);
}

}  // namespace ssnkit::serve
