#include "serve/protocol.hpp"

#include "process/package.hpp"
#include "process/technology.hpp"
#include "support/journal.hpp"

#include <cmath>
#include <utility>
#include <vector>

namespace ssnkit::serve {

namespace {

/// Field-level validation helper: accumulates the first error and stops
/// looking at further fields (one precise message beats a wall of them on a
/// one-line protocol).
class Validator {
 public:
  explicit Validator(const JsonValue& object) : object_(object) {}

  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  void fail(const std::string& what) {
    if (error_.empty()) error_ = what;
  }

  /// Mark `key` as known; returns its value or nullptr.
  const JsonValue* known(const std::string& key) {
    seen_.push_back(key);
    return object_.find(key);
  }

  void string_field(const std::string& key, std::string& out) {
    const JsonValue* v = known(key);
    if (v == nullptr || failed()) return;
    if (v->kind != JsonValue::Kind::kString)
      return fail("field '" + key + "' must be a string");
    out = v->string;
  }

  void bool_field(const std::string& key, bool& out) {
    const JsonValue* v = known(key);
    if (v == nullptr || failed()) return;
    if (v->kind != JsonValue::Kind::kBool)
      return fail("field '" + key + "' must be true or false");
    out = v->boolean;
  }

  void int_field(const std::string& key, int& out, int lo, int hi) {
    const JsonValue* v = known(key);
    if (v == nullptr || failed()) return;
    if (v->kind != JsonValue::Kind::kNumber)
      return fail("field '" + key + "' must be a number");
    const double d = v->number;
    if (d != std::floor(d))
      return fail("field '" + key + "' must be an integer");
    if (d < double(lo) || d > double(hi))
      return fail("field '" + key + "' must be in [" + std::to_string(lo) +
                  ", " + std::to_string(hi) + "]");
    out = int(d);
  }

  void double_field(const std::string& key, double& out, double lo,
                    double hi) {
    const JsonValue* v = known(key);
    if (v == nullptr || failed()) return;
    if (v->kind != JsonValue::Kind::kNumber)
      return fail("field '" + key + "' must be a number");
    if (!(v->number >= lo && v->number <= hi))
      return fail("field '" + key + "' out of range");
    out = v->number;
  }

  /// After all fields were declared: reject any member not in `seen_`.
  void reject_unknown() {
    for (const auto& [name, value] : object_.members) {
      (void)value;
      bool found = false;
      for (const auto& s : seen_)
        if (s == name) {
          found = true;
          break;
        }
      if (!found) return fail("unknown field '" + name + "'");
    }
  }

 private:
  const JsonValue& object_;
  std::vector<std::string> seen_;
  std::string error_;
};

}  // namespace

RequestParse parse_request(const std::string& line) {
  RequestParse out;
  const JsonParse parsed = parse_json(line);
  if (!parsed.ok) {
    out.error = "bad JSON at byte " + std::to_string(parsed.offset) + ": " +
                parsed.error;
    return out;
  }
  if (!parsed.value.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }

  Validator v(parsed.value);
  ServeRequest& req = out.request;
  v.string_field("id", req.id);
  out.id = req.id;  // recoverable even if a later field fails
  v.string_field("cmd", req.cmd);
  v.string_field("tech", req.tech);
  v.string_field("golden", req.golden);
  v.string_field("package", req.package);
  v.int_field("pads", req.pads, 1, 64);
  v.double_field("l", req.inductance, 1e-15, 1e-3);
  v.double_field("c", req.capacitance, 0.0, 1e-6);
  v.int_field("n", req.n_drivers, 1, 256);
  v.double_field("tr", req.rise_time, 1e-15, 1e-6);
  v.bool_field("include_c", req.include_c);
  v.bool_field("sim", req.sim);
  v.int_field("samples", req.samples, 1, 200000);
  v.int_field("seed", req.seed, 0, 1 << 30);
  v.int_field("max_n", req.max_n, 1, 64);
  v.double_field("deadline", req.deadline_s, 0.0, 3600.0);
  v.reject_unknown();

  if (!v.failed()) {
    if (req.cmd != "estimate" && req.cmd != "mc" && req.cmd != "sweep-n")
      v.fail(req.cmd.empty()
                 ? std::string("missing 'cmd'")
                 : "unknown command '" + req.cmd +
                       "' (expected estimate, mc, or sweep-n)");
  }
  if (!v.failed() && req.golden != "alpha" && req.golden != "bsim")
    v.fail("field 'golden' must be 'alpha' or 'bsim'");
  if (!v.failed()) {
    // Resolve the names now so a typo is an admission-time SSN-E063, not a
    // worker-side SSN-E065 dressed up as a solver failure.
    try {
      (void)process::technology_by_name(req.tech);
      (void)process::package_by_name(req.package);
    } catch (const std::invalid_argument& e) {
      v.fail(e.what());
    }
  }
  if (v.failed()) {
    out.error = v.error();
    return out;
  }
  out.ok = true;
  return out;
}

std::string cache_key_string(const ServeRequest& r) {
  // Doubles enter as exact bit patterns (same convention as the journal's
  // batch_config_hash): "the same request" means the same IEEE values.
  std::string s = "serve-v1|";
  s += r.cmd;
  s += '|';
  s += r.tech;
  s += '|';
  s += r.golden;
  s += '|';
  s += r.package;
  s += '|';
  s += std::to_string(r.pads);
  s += '|';
  s += support::hex_u64(support::double_bits(r.inductance));
  s += '|';
  s += support::hex_u64(support::double_bits(r.capacitance));
  s += '|';
  s += std::to_string(r.n_drivers);
  s += '|';
  s += support::hex_u64(support::double_bits(r.rise_time));
  s += '|';
  s += r.include_c ? 'c' : '-';
  s += r.sim ? 's' : '-';
  s += '|';
  s += std::to_string(r.samples);
  s += '|';
  s += std::to_string(r.seed);
  s += '|';
  s += std::to_string(r.max_n);
  return s;
}

std::uint64_t cache_key(const ServeRequest& request) {
  return support::fnv1a(cache_key_string(request));
}

std::string render_request(const ServeRequest& r) {
  std::string out = "{\"id\":\"" + json_escape(r.id) + "\"";
  out += ",\"cmd\":\"" + json_escape(r.cmd) + "\"";
  out += ",\"tech\":\"" + json_escape(r.tech) + "\"";
  out += ",\"golden\":\"" + json_escape(r.golden) + "\"";
  out += ",\"package\":\"" + json_escape(r.package) + "\"";
  out += ",\"pads\":" + std::to_string(r.pads);
  // The l/c overrides default to -1 ("use the package value"), which is
  // outside their wire ranges — omit them so the parse-side defaults apply.
  if (r.inductance >= 0.0) out += ",\"l\":" + json_number(r.inductance);
  if (r.capacitance >= 0.0) out += ",\"c\":" + json_number(r.capacitance);
  out += ",\"n\":" + std::to_string(r.n_drivers);
  out += ",\"tr\":" + json_number(r.rise_time);
  out += r.include_c ? ",\"include_c\":true" : ",\"include_c\":false";
  out += r.sim ? ",\"sim\":true" : ",\"sim\":false";
  out += ",\"samples\":" + std::to_string(r.samples);
  out += ",\"seed\":" + std::to_string(r.seed);
  out += ",\"max_n\":" + std::to_string(r.max_n);
  out += ",\"deadline\":" + json_number(r.deadline_s);
  out += "}";
  return out;
}

std::string render_trust(const verify::TrustReport& trust) {
  std::string out = "{\"verdict\":\"";
  out += verify::to_string(trust.verdict);
  out += "\",\"residual\":" + json_number_or_null(trust.residual);
  out += ",\"cond\":" + json_number_or_null(trust.cond_estimate);
  out += ",\"ci95\":" + json_number_or_null(trust.ci95);
  if (trust.refinements > 0)
    out += ",\"refinements\":" + std::to_string(trust.refinements);
  if (!trust.notes.empty()) {
    out += ",\"notes\":[";
    bool first = true;
    for (const std::string& note : trust.notes) {
      if (!first) out += ',';
      first = false;
      out += '"' + json_escape(note) + '"';
    }
    out += ']';
  }
  out += "}";
  return out;
}

bool extract_trust_verdict(const std::string& result_fragment,
                           verify::Verdict& out) {
  const JsonParse parsed = parse_json(result_fragment);
  if (!parsed.ok || !parsed.value.is_object()) return false;
  const JsonValue* trust = parsed.value.find("trust");
  if (trust == nullptr || !trust->is_object()) return false;
  const JsonValue* verdict = trust->find("verdict");
  if (verdict == nullptr || verdict->kind != JsonValue::Kind::kString)
    return false;
  return verify::verdict_from_name(verdict->string, out);
}

std::string render_ok(const std::string& id,
                      const std::string& result_fragment, bool cached,
                      std::int64_t elapsed_us) {
  std::string out = "{\"id\":\"" + json_escape(id) + "\",\"ok\":true";
  out += cached ? ",\"cached\":true" : ",\"cached\":false";
  out += ",\"elapsed_us\":" + std::to_string(elapsed_us);
  out += ",\"result\":" + result_fragment + "}";
  return out;
}

std::string render_error(const std::string& id, const std::string& code,
                         const std::string& message) {
  return "{\"id\":\"" + json_escape(id) + "\",\"ok\":false,\"code\":\"" +
         code + "\",\"error\":\"" + json_escape(message) + "\"}";
}

std::string render_overloaded(const std::string& id, double retry_after_ms) {
  return "{\"id\":\"" + json_escape(id) +
         "\",\"ok\":false,\"code\":\"SSN-E064\",\"error\":\"admission queue "
         "full, retry later\",\"retry_after_ms\":" +
         json_number(retry_after_ms) + "}";
}

double jittered_retry_after_ms(double base_ms, const std::string& id,
                               unsigned seed) {
  // FNV-1a over the id, mixed with the seed, mapped onto [0.5, 1.5). 2^20
  // buckets keep the quotient exact in double, so the hint is reproducible
  // across platforms.
  std::uint64_t h = support::fnv1a(id) ^ (std::uint64_t(seed) * 0x9e3779b97f4a7c15ULL);
  h ^= h >> 33;
  const double unit = double(h & ((std::uint64_t(1) << 20) - 1)) /
                      double(std::uint64_t(1) << 20);
  return base_ms * (0.5 + unit);
}

std::string render_solver_error(const std::string& id,
                                const support::SolverError& error) {
  const bool stopped = support::is_stop_kind(error.kind());
  std::string out = "{\"id\":\"" + json_escape(id) +
                    "\",\"ok\":false,\"code\":\"";
  out += stopped ? "SSN-E066" : "SSN-E065";
  out += "\",\"error\":\"" + json_escape(error.what()) + "\",\"kind\":\"";
  out += support::to_string(error.kind());
  out += "\",\"retryable\":";
  // A cancelled/deadlined request is retryable from the *client's* point of
  // view (resubmit with a larger budget or to a less loaded daemon), unlike
  // a genuinely non-retryable solver failure.
  out += (stopped || error.retryable()) ? "true" : "false";
  out += "}";
  return out;
}

bool split_response_line(const std::string& line, ResponseView& out) {
  const JsonParse parsed = parse_json(line);
  if (!parsed.ok || !parsed.value.is_object()) return false;
  const JsonValue* ok = parsed.value.find("ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) return false;
  out = ResponseView{};
  out.ok = ok->boolean;
  if (!out.ok) {
    const JsonValue* code = parsed.value.find("code");
    if (code == nullptr || code->kind != JsonValue::Kind::kString) return false;
    out.code = code->string;
    out.cancelled = (out.code == "SSN-E066");
    return true;
  }
  // Recover the fragment textually: render_ok emits `,"result":` as the
  // last member, so the fragment is everything between that marker and the
  // final close brace. parse_json already vouched the line is well-formed,
  // and the comma-quote marker cannot occur inside an escaped string (every
  // quote there is backslash-prefixed), so the first hit is the real one.
  const std::string marker = ",\"result\":";
  const std::size_t at = line.find(marker);
  if (at == std::string::npos || line.empty() || line.back() != '}')
    return false;
  out.fragment = line.substr(at + marker.size(),
                             line.size() - 1 - (at + marker.size()));
  return !out.fragment.empty();
}

std::string render_stats(const ServerStats& s) {
  std::string out = "{\"event\":\"stats\"";
  out += ",\"accepted\":" + std::to_string(s.accepted);
  out += ",\"responded\":" + std::to_string(s.responded);
  out += ",\"ok\":" + std::to_string(s.ok);
  out += ",\"solver_errors\":" + std::to_string(s.solver_errors);
  out += ",\"cancelled\":" + std::to_string(s.cancelled);
  out += ",\"shed\":" + std::to_string(s.shed);
  out += ",\"malformed\":" + std::to_string(s.malformed);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"worker_timeouts\":" + std::to_string(s.worker_timeouts);
  out += ",\"worker_crashes\":" + std::to_string(s.worker_crashes);
  out += ",\"quarantined\":" + std::to_string(s.quarantined);
  out += "}";
  return out;
}

}  // namespace ssnkit::serve
