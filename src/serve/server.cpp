#include "serve/server.hpp"

#include "support/atomic_file.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <utility>

namespace ssnkit::serve {

namespace {

/// The supervisor's worker count follows the pool width unless pinned:
/// every pool thread must be able to hold a worker, or concurrency silently
/// collapses to the smaller of the two.
SupervisorConfig resolved_supervisor_config(const ServerConfig& config) {
  SupervisorConfig sup = config.supervisor;
  if (sup.workers <= 0) sup.workers = support::resolve_threads(config.threads);
  return sup;
}

}  // namespace

Server::Server(const ServerConfig& config)
    : config_(config),
      supervisor_(config.isolate == IsolateMode::kProcess
                      ? std::make_unique<Supervisor>(
                            resolved_supervisor_config(config),
                            [this](const std::string& line) {
                              emit_event(line);
                            })
                      : nullptr),
      pool_(support::resolve_threads(config.threads)),
      cache_(config.cache_capacity) {
  if (!config_.cache_file.empty())
    warm_warnings_ = cache_.load(config_.cache_file);
  dispatcher_ = std::thread(&Server::dispatcher_loop, this);
}

Server::~Server() { finish(); }

void Server::submit_line(const std::string& line, ResponseSink sink) {
  RequestParse parsed = parse_request(line);
  if (!parsed.ok) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.malformed;
    }
    sink(render_error(parsed.id, "SSN-E063", parsed.error));
    return;
  }
  if (parsed.request.id.empty()) {
    std::string generated =
        std::to_string(id_seq_.fetch_add(1, std::memory_order_relaxed));
    generated.insert(generated.begin(), 'q');
    parsed.request.id = std::move(generated);
  }
  if (draining()) {
    // Never accepted, so E064 ("go elsewhere"), not E066: the E066 contract
    // is reserved for requests the daemon took responsibility for.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.shed;
    }
    sink(render_error(parsed.request.id, "SSN-E064",
                      "daemon is draining, request not admitted"));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= config_.queue_capacity) {
      ++stats_.shed;
      // Respond outside the lock; fall through via the early unlock below.
    } else {
      ++stats_.accepted;
      queue_.push_back(Pending{std::move(parsed.request), std::move(sink)});
      cv_work_.notify_one();
      return;
    }
  }
  sink(render_overloaded(
      parsed.request.id,
      jittered_retry_after_ms(config_.retry_after_ms, parsed.request.id,
                              config_.retry_jitter_seed)));
}

void Server::begin_drain() {
  draining_.store(true, std::memory_order_release);
}

void Server::dispatcher_loop() {
  std::vector<Pending> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock,
                    [&] { return !queue_.empty() || stop_dispatcher_; });
      if (queue_.empty() && stop_dispatcher_) {
        dispatcher_done_ = true;
        cv_done_.notify_all();
        return;
      }
      batch.clear();
      batch.reserve(queue_.size());
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // No RunContext on the pool itself: a drain must not skip unclaimed
    // items (each still owes its client a response); process() handles the
    // expired-drain case by answering SSN-E066 without executing.
    pool_.for_index(batch.size(),
                    [&](std::size_t i) { process(batch[i]); });
  }
}

void Server::process(Pending& pending) {
  // Workers must never leak an exception: support::ThreadPool rethrows body
  // exceptions on the dispatcher thread, which would take the daemon down —
  // the exact opposite of the isolation contract.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string id = pending.request.id;
  const auto elapsed_us = [&t0] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::string response;
  std::string cache_warning;
  enum class Outcome {
    kOk,
    kCacheHit,
    kSolverError,
    kCancelled,
    kWorkerTimeout,
    kWorkerCrashed,
    kQuarantined
  } outcome = Outcome::kSolverError;
  try {
    if (drain_expired_.load(std::memory_order_acquire)) {
      response = render_error(
          id, "SSN-E066",
          "cancelled: drain deadline passed before the request started");
      outcome = Outcome::kCancelled;
    } else {
      const std::uint64_t key = cache_key(pending.request);
      std::optional<std::string> hit = cache_.get(key, &cache_warning);
      if (hit) {
        // Replay the stored verdict: only a verified/refined entry may be
        // served from cache. Degraded or unverified entries — and entries
        // with no parseable trust member at all (pre-trust-layer or
        // damaged) — are recomputed, never served as-is.
        verify::Verdict verdict = verify::Verdict::kUnverified;
        if (!extract_trust_verdict(*hit, verdict) ||
            verify::verdict_rank(verdict) >
                verify::verdict_rank(verify::Verdict::kRefined))
          hit.reset();
      }
      if (hit) {
        response = render_ok(id, *hit, /*cached=*/true, elapsed_us());
        outcome = Outcome::kCacheHit;
      } else if (supervisor_ != nullptr) {
        // Process isolation: the request executes in a sandboxed worker and
        // the watchdog enforces its wall-clock budget with SIGKILL, so even
        // a solve that never polls its context cannot outlive the deadline.
        const double deadline = pending.request.deadline_s > 0.0
                                    ? pending.request.deadline_s
                                    : config_.default_deadline_s;
        const WorkerOutcome wo = supervisor_->execute(pending.request, deadline);
        switch (wo.status) {
          case WorkerOutcome::Status::kOk:
            cache_.put(key, wo.fragment);
            maybe_spill();
            // The worker's verbatim response line: its id is the client's
            // and its elapsed_us measured the actual solve.
            response = wo.response;
            outcome = Outcome::kOk;
            break;
          case WorkerOutcome::Status::kError:
            response = wo.response;
            outcome = wo.cancelled ? Outcome::kCancelled
                                   : Outcome::kSolverError;
            break;
          case WorkerOutcome::Status::kWorkerTimeout:
            response = render_error(id, "SSN-E068", wo.detail);
            outcome = Outcome::kWorkerTimeout;
            break;
          case WorkerOutcome::Status::kWorkerCrashed:
            response = render_error(id, "SSN-E069", wo.detail);
            outcome = Outcome::kWorkerCrashed;
            break;
          case WorkerOutcome::Status::kQuarantined:
            response = render_error(id, "SSN-E070", wo.detail);
            outcome = Outcome::kQuarantined;
            break;
          case WorkerOutcome::Status::kStopped:
            response = render_error(
                id, "SSN-E066",
                "cancelled: daemon drained while the request was in flight");
            outcome = Outcome::kCancelled;
            break;
        }
      } else {
        support::RunContext ctx;
        const double deadline = pending.request.deadline_s > 0.0
                                    ? pending.request.deadline_s
                                    : config_.default_deadline_s;
        if (deadline > 0.0) ctx.set_timeout(deadline);
        {
          std::lock_guard<std::mutex> lock(mu_);
          active_.push_back(&ctx);
          // A drain that already expired while we queued must still cancel
          // us; the expiry sweep ran before we registered.
          if (drain_expired_.load(std::memory_order_acquire))
            ctx.request_cancel();
        }
        try {
          const std::string fragment =
              execute_request(pending.request, calibrations_, &ctx);
          cache_.put(key, fragment);
          maybe_spill();
          response = render_ok(id, fragment, /*cached=*/false, elapsed_us());
          outcome = Outcome::kOk;
        } catch (const support::SolverError& e) {
          response = render_solver_error(id, e);
          outcome = support::is_stop_kind(e.kind()) ? Outcome::kCancelled
                                                    : Outcome::kSolverError;
        } catch (const NonFiniteJsonError& e) {
          // A NaN/inf reached the serializer: the result is corrupt and is
          // refused with its own typed code rather than rendered as null.
          response = render_error(id, "SSN-E067", e.what());
          outcome = Outcome::kSolverError;
        } catch (const std::exception& e) {
          response = render_error(id, "SSN-E065", e.what());
          outcome = Outcome::kSolverError;
        }
        std::lock_guard<std::mutex> lock(mu_);
        active_.erase(std::remove(active_.begin(), active_.end(), &ctx),
                      active_.end());
      }
    }
  } catch (...) {  // ssnlint-ignore(SSN-L005)
    // Isolation backstop: anything escaping a worker would be rethrown by
    // the pool on the dispatcher thread and kill the daemon.
    response = render_error(id, "SSN-E065", "internal error");
    outcome = Outcome::kSolverError;
  }
  // Count the response before emitting it: a client that has seen its
  // response line must never observe stats that do not yet include it
  // (the accepted == responded drain contract is checked from outside).
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.responded;
    switch (outcome) {
      case Outcome::kOk: ++stats_.ok; break;
      case Outcome::kCacheHit:
        ++stats_.ok;
        ++stats_.cache_hits;
        break;
      case Outcome::kSolverError: ++stats_.solver_errors; break;
      case Outcome::kCancelled: ++stats_.cancelled; break;
      case Outcome::kWorkerTimeout: ++stats_.worker_timeouts; break;
      case Outcome::kWorkerCrashed: ++stats_.worker_crashes; break;
      case Outcome::kQuarantined: ++stats_.quarantined; break;
    }
  }
  try {
    if (!cache_warning.empty())
      pending.sink(
          "{\"event\":\"warning\",\"code\":\"SSN-W072\",\"message\":\"" +
          json_escape(cache_warning) + "\"}");
    pending.sink(response);
  } catch (...) {  // ssnlint-ignore(SSN-L005)
    // A dead client cannot be responded to; the daemon carries on.
  }
}

void Server::maybe_spill() {
  if (config_.cache_file.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (++results_since_spill_ < config_.cache_spill_every) return;
    results_since_spill_ = 0;
  }
  try {
    cache_.save(config_.cache_file);
  } catch (const support::IoError&) {
    // A failed periodic spill costs warm-start coverage, never a response;
    // the drain-time save retries, and a still-failing disk surfaces there.
  }
}

void Server::finish() {
  if (finished_) return;
  finished_ = true;
  begin_drain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_dispatcher_ = true;
    cv_work_.notify_all();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::nanoseconds(
            std::int64_t(config_.drain_deadline_s * 1e9));
    if (!cv_done_.wait_until(lock, deadline,
                             [&] { return dispatcher_done_; })) {
      // Drain deadline passed: cancel in-flight requests cooperatively
      // (each answers SSN-E066 itself) and tell queued-but-unstarted ones
      // to answer without executing. Then wait for real — the engine polls
      // its context every accepted step, so this converges quickly.
      drain_expired_.store(true, std::memory_order_release);
      for (support::RunContext* ctx : active_) ctx->request_cancel();
      // Process mode routes the drain deadline through the watchdog's
      // SIGKILL: a worker wedged in code that never polls would otherwise
      // stall this wait — and the whole stop() — indefinitely. (Thread
      // mode has no such lever; that residual exposure is exactly why
      // --isolate=process exists.)
      if (supervisor_ != nullptr) supervisor_->kill_inflight();
      cv_done_.wait(lock, [&] { return dispatcher_done_; });
    }
  }
  dispatcher_.join();
  // No request is in flight past this point, so the workers can be killed
  // and reaped without racing an execute().
  if (supervisor_ != nullptr) supervisor_->shutdown();
  if (!config_.cache_file.empty()) {
    try {
      cache_.save(config_.cache_file);
    } catch (const support::IoError&) {
      // Losing the spill loses warm starts, nothing else; the daemon is
      // exiting and has nowhere structured left to report I/O failure.
    }
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Server::set_event_sink(ResponseSink sink) {
  std::vector<std::string> backlog;
  {
    std::lock_guard<std::mutex> lock(ev_mu_);
    event_sink_ = std::move(sink);
    if (event_sink_) backlog.swap(event_backlog_);
  }
  // Flush outside ev_mu_ — the sink may take the transport's own lock.
  for (const std::string& line : backlog) {
    try {
      event_sink_(line);
    } catch (...) {  // ssnlint-ignore(SSN-L005)
      // Event lines are advisory; a dead transport must not hurt serving.
    }
  }
}

void Server::emit_event(const std::string& line) {
  ResponseSink sink;
  {
    std::lock_guard<std::mutex> lock(ev_mu_);
    if (!event_sink_) {
      // Buffered until a transport attaches (the initial pool spawns in the
      // constructor); bounded so a crash-looping pool can't hoard memory.
      if (event_backlog_.size() < 1024) event_backlog_.push_back(line);
      return;
    }
    sink = event_sink_;
  }
  try {
    sink(line);
  } catch (...) {  // ssnlint-ignore(SSN-L005)
    // Event lines are advisory; a dead transport must not hurt serving.
  }
}

int Server::serve_stream(std::istream& in, std::ostream& out,
                         const support::RunContext* stop_ctx) {
  std::mutex out_mu;
  for (const std::string& warning : warm_warnings_) {
    out << "{\"event\":\"warning\",\"code\":\"SSN-W067\",\"message\":\""
        << json_escape(warning) << "\"}\n";
  }
  out.flush();
  const ResponseSink sink = [&out, &out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << line << '\n';
    out.flush();
  };
  // Supervisor lifecycle events share the stream (and its lock) with
  // responses; buffered constructor-time spawn events flush here.
  set_event_sink(sink);
  std::string line;
  while (!(stop_ctx != nullptr &&
           stop_ctx->stop_requested() != support::StopReason::kNone) &&
         std::getline(in, line)) {
    if (line.empty()) continue;
    submit_line(line, sink);
  }
  finish();
  // The supervisor is shut down inside finish(); detach the sink so no
  // event can outlive this frame's stream references.
  set_event_sink(nullptr);
  {
    std::lock_guard<std::mutex> lock(out_mu);
    out << render_stats(stats()) << '\n';
    out.flush();
  }
  return 0;
}

}  // namespace ssnkit::serve
