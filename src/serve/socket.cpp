#include "serve/socket.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>
#endif

namespace ssnkit::serve {

#if defined(_WIN32)

int serve_unix_socket(Server& /*server*/, const SocketOptions& /*options*/,
                      const support::RunContext* /*stop_ctx*/,
                      std::string& err) {
  err = "unix sockets are not supported on this platform; use stdin mode";
  return 1;
}

#else

namespace {

/// One client connection. The poll loop owns fd/inbuf/eof; `out` is the
/// worker-facing side (responses append under `mu`, the loop flushes under
/// `mu`). Held by shared_ptr: response sinks for in-flight requests keep
/// the object alive after the socket is gone, so a late response lands in
/// a dead buffer instead of freed memory.
struct Conn {
  int fd = -1;
  std::string inbuf;      ///< loop thread only
  bool eof = false;       ///< loop thread only
  bool line_overflow = false;  ///< loop thread only

  std::mutex mu;
  std::string out;          ///< pending response bytes; guarded by mu
  bool dead = false;        ///< dropped (overflow / write error); mu
  std::size_t pending = 0;  ///< submitted requests not yet responded; mu
};

bool set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

int serve_unix_socket(Server& server, const SocketOptions& options,
                      const support::RunContext* stop_ctx, std::string& err) {
  if (options.path.empty()) {
    err = "socket path is empty";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.path.size() >= sizeof(addr.sun_path)) {
    err = "socket path longer than sockaddr_un allows";
    return 1;
  }
  std::memcpy(addr.sun_path, options.path.c_str(), options.path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    err = std::string("socket() failed: ") + std::strerror(errno);
    return 1;
  }
  // A stale path from a previous run would make bind fail; the daemon owns
  // the path, so replacing it is the right default.
  ::unlink(options.path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0 || !set_nonblock(listen_fd)) {
    err = std::string("cannot listen on '") + options.path +
          "': " + std::strerror(errno);
    ::close(listen_fd);
    return 1;
  }

  int wake_fds[2] = {-1, -1};
  if (::pipe(wake_fds) != 0 || !set_nonblock(wake_fds[0]) ||
      !set_nonblock(wake_fds[1])) {
    err = std::string("cannot create wake pipe: ") + std::strerror(errno);
    ::close(listen_fd);
    if (wake_fds[0] >= 0) ::close(wake_fds[0]);
    if (wake_fds[1] >= 0) ::close(wake_fds[1]);
    return 1;
  }
  const int wake_read = wake_fds[0];
  const int wake_write = wake_fds[1];

  std::vector<std::shared_ptr<Conn>> conns;
  bool listening = true;
  bool drain_started = false;
  std::atomic<bool> drain_done{false};
  std::thread drain_thread;
  std::chrono::steady_clock::time_point flush_deadline{};

  const auto make_sink = [&server, wake_write](std::shared_ptr<Conn> conn) {
    return ResponseSink([conn, wake_write](const std::string& line) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->pending > 0) --conn->pending;
        if (!conn->dead) {
          conn->out += line;
          conn->out += '\n';
        }
      }
      // Nudge the poll loop; a full pipe already guarantees a wake-up.
      const char byte = 'w';
      (void)!::write(wake_write, &byte, 1);
    });
  };

  while (true) {
    const bool stop =
        (stop_ctx != nullptr &&
         stop_ctx->stop_requested() != support::StopReason::kNone) ||
        server.draining();
    if (stop && !drain_started) {
      drain_started = true;
      // Close the front door first so "stop admission" is observable from
      // outside (connect() starts failing) before the drain begins.
      if (listening) {
        ::close(listen_fd);
        ::unlink(options.path.c_str());
        listening = false;
      }
      // finish() blocks until every accepted request has responded; run it
      // off-thread so this loop keeps flushing those responses meanwhile.
      drain_thread = std::thread([&server, &drain_done] {
        server.finish();
        drain_done.store(true, std::memory_order_release);
      });
    }
    if (drain_started && drain_done.load(std::memory_order_acquire)) {
      if (flush_deadline == std::chrono::steady_clock::time_point{})
        flush_deadline = std::chrono::steady_clock::now() +
                         std::chrono::nanoseconds(std::int64_t(
                             options.flush_grace_s * 1e9));
      bool all_flushed = true;
      for (const auto& conn : conns) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->dead && !conn->out.empty()) all_flushed = false;
      }
      if (all_flushed || std::chrono::steady_clock::now() >= flush_deadline)
        break;
    }

    std::vector<pollfd> fds;
    fds.push_back(pollfd{wake_read, POLLIN, 0});
    if (listening) fds.push_back(pollfd{listen_fd, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    // Connections accepted below (after this snapshot) have no pollfd entry
    // yet; the event loop must only walk the ones it actually polled.
    const std::size_t polled_conns = conns.size();
    for (const auto& conn : conns) {
      short events = 0;
      if (!conn->eof && !drain_started) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->dead && !conn->out.empty()) events |= POLLOUT;
      }
      fds.push_back(pollfd{conn->fd, events, 0});
    }
    if (::poll(fds.data(), nfds_t(fds.size()), options.poll_interval_ms) <
        0) {
      if (errno == EINTR) continue;
      break;  // poll itself failing is unrecoverable; drain below
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char scratch[256];
      while (::read(wake_read, scratch, sizeof(scratch)) > 0) {
      }
    }
    if (listening && fds.size() > 1 && (fds[1].revents & POLLIN) != 0) {
      while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;
        if (!set_nonblock(fd)) {
          ::close(fd);
          continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conns.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < polled_conns; ++i) {
      const auto& conn = conns[i];
      const pollfd& pfd = fds[conn_base + i];
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !conn->eof &&
          !drain_started) {
        char buf[65536];
        while (true) {
          const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
          if (n > 0) {
            conn->inbuf.append(buf, std::size_t(n));
            if (conn->inbuf.size() > options.max_line_bytes &&
                conn->inbuf.find('\n') == std::string::npos) {
              // One unbounded line: answer once, stop reading this client.
              conn->line_overflow = true;
              conn->eof = true;
              make_sink(conn)(render_error(
                  "", "SSN-E063",
                  "request line exceeds " +
                      std::to_string(options.max_line_bytes) + " bytes"));
              break;
            }
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          conn->eof = true;  // orderly close or hard error: no more input
          break;
        }
        std::size_t eol;
        while ((eol = conn->inbuf.find('\n')) != std::string::npos) {
          std::string line = conn->inbuf.substr(0, eol);
          conn->inbuf.erase(0, eol + 1);
          if (line.empty()) continue;
          {
            std::lock_guard<std::mutex> lock(conn->mu);
            ++conn->pending;
          }
          server.submit_line(line, make_sink(conn));
        }
        if (conn->line_overflow) conn->inbuf.clear();
      }
      // Flush whatever is buffered whenever the socket is writable (or we
      // just got nudged); partial writes simply stay buffered.
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        while (!conn->dead && !conn->out.empty()) {
          const ssize_t n =
              ::send(conn->fd, conn->out.data(), conn->out.size(),
                     MSG_NOSIGNAL);
          if (n > 0) {
            conn->out.erase(0, std::size_t(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          conn->dead = true;  // client went away; discard its responses
          conn->out.clear();
        }
        if (conn->out.size() > options.max_buffered_bytes) {
          // Slow-client protection: a reader that stopped reading does not
          // get to grow the daemon's memory without bound.
          conn->dead = true;
          conn->out.clear();
        }
      }
    }

    // Reap connections that are finished (or dropped). A connection closes
    // only when its input is done AND every submitted request has been
    // answered AND the answer bytes are flushed — no lost responses.
    for (std::size_t i = 0; i < conns.size();) {
      const auto& conn = conns[i];
      bool close_now;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        close_now = conn->dead ||
                    (conn->eof && conn->pending == 0 && conn->out.empty() &&
                     conn->inbuf.find('\n') == std::string::npos);
      }
      if (close_now) {
        ::close(conn->fd);
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->dead = true;
        }
        conns.erase(conns.begin() + std::ptrdiff_t(i));
      } else {
        ++i;
      }
    }
  }

  if (!drain_started) {
    // poll() failed hard: still drain properly so accepted work answers
    // into the buffers (then is discarded with the connections).
    server.finish();
  }
  if (drain_thread.joinable()) drain_thread.join();
  for (const auto& conn : conns) {
    ::close(conn->fd);
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->dead = true;
  }
  if (listening) {
    ::close(listen_fd);
    ::unlink(options.path.c_str());
  }
  ::close(wake_read);
  ::close(wake_write);
  return 0;
}

#endif

}  // namespace ssnkit::serve
