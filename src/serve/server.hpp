// The serve daemon's core: bounded admission, a dispatcher that multiplexes
// queued requests onto the support::ThreadPool, per-request lifecycle
// contexts, the content-addressed result cache, and graceful drain.
//
// Robustness contract (what the fault-injection and smoke tests pin down):
//
//   - Admission is bounded: when the queue is full a request is *shed* with
//     a typed SSN-E064 response carrying a retry hint — memory stays
//     bounded no matter how hard clients push.
//   - One request's failure is that request's problem: a SolverError (or a
//     per-request deadline) is serialized back to its client as
//     SSN-E065/E066 and the daemon keeps serving.
//   - Every *accepted* request gets exactly one response, even across a
//     drain: requests still queued when the drain deadline passes are
//     answered with SSN-E066 instead of being dropped.
//   - Results are cached by the request's content hash; the cache spills to
//     disk crash-safely and a restarted daemon warms from it.
//   - In process-isolation mode (supervisor.hpp) crashes, rlimit OOMs, and
//     non-cooperative hangs are also per-request events: the failing worker
//     is killed/reaped and its request answers typed SSN-E068/E069, with
//     repeat-offender cache keys quarantined as SSN-E070.
//
// Transport-free by design: submit_line()/ResponseSink is the whole
// surface, so the same core serves a Unix socket (socket.hpp), a stdin
// pipe, an in-process test, or the load-generator bench.
#pragma once

#include "serve/cache.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "serve/supervisor.hpp"
#include "support/parallel.hpp"
#include "support/runcontext.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ssnkit::serve {

/// Where requests execute. kThread runs them on the server's own pool
/// (fast, but a segfault or non-cooperative hang belongs to the whole
/// daemon); kProcess runs each on a supervised worker process behind a
/// SIGKILL watchdog, so crashes and hangs degrade exactly one request.
enum class IsolateMode { kThread, kProcess };

// ssn-units: default_deadline_s=s, drain_deadline_s=s, retry_after_ms=ms
struct ServerConfig {
  /// Worker threads (support::resolve_threads semantics: 0 = auto).
  int threads = 0;
  /// Admission bound: requests beyond this many waiting are shed (E064).
  std::size_t queue_capacity = 64;
  /// Result-cache entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Crash-safe spill file for the cache; "" = in-memory only.
  std::string cache_file;
  /// Spill the cache every this many successful results (and on drain).
  std::size_t cache_spill_every = 256;
  /// Per-request wall-clock budget when the request names none; 0 = none.
  double default_deadline_s = 0.0;
  /// How long a drain waits for in-flight work before cancelling it.
  double drain_deadline_s = 5.0;
  /// Retry hint attached to SSN-E064 shed responses. Each response jitters
  /// it deterministically into [0.5, 1.5) of this base so synchronized
  /// clients don't thundering-herd the queue on retry.
  double retry_after_ms = 50.0;
  /// Mixed into the per-id retry jitter (jittered_retry_after_ms).
  unsigned retry_jitter_seed = 1;
  /// Execution isolation mode; kProcess enables the Supervisor.
  IsolateMode isolate = IsolateMode::kThread;
  /// Supervisor tuning for kProcess mode. `workers` left at 0 inherits the
  /// server's resolved thread count so every pool thread has a worker.
  SupervisorConfig supervisor;
};

/// Delivery callback for one response line (no trailing newline). Invoked
/// from worker threads; the transport owns any serialization needed.
using ResponseSink = std::function<void(const std::string& line)>;

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parse, validate, and admit one request line. Responds immediately
  /// (through `sink`) for malformed input (SSN-E063) and overload shed
  /// (SSN-E064); otherwise queues the request for the dispatcher. Safe from
  /// any thread.
  void submit_line(const std::string& line, ResponseSink sink);

  /// Stop admitting; every further submit_line is shed. Idempotent.
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Graceful shutdown: stop admission, wait up to drain_deadline_s for
  /// queued + in-flight requests, then cancel stragglers (each still gets
  /// its SSN-E066 response), join the workers, and spill the cache.
  /// Idempotent; the destructor calls it.
  void finish();

  /// Warnings from the cache warm-up (SSN-W067 lines; empty when the spill
  /// file was absent or clean).
  const std::vector<std::string>& warm_warnings() const {
    return warm_warnings_;
  }

  ServerStats stats() const;
  const ResultCache& cache() const { return cache_; }

  /// The supervisor behind kProcess mode (nullptr in thread mode); tests
  /// and the chaos soak use it to pick SIGKILL victims and read counters.
  const Supervisor* supervisor() const { return supervisor_.get(); }

  /// Route supervisor lifecycle events ({"event":"worker-spawn",...} and
  /// SSN-W075/W076 warning lines) to a transport. Events emitted before a
  /// sink is set (the initial pool spawn happens in the constructor) are
  /// buffered and flushed on the first set. Pass nullptr to go back to
  /// buffering. Thread-safe.
  void set_event_sink(ResponseSink sink);

  /// Serve newline-delimited requests from a stream until EOF (or until
  /// `stop_ctx` trips between lines), then finish(). Responses and the
  /// final stats line go to `out`, one JSON object per line. Returns 0.
  int serve_stream(std::istream& in, std::ostream& out,
                   const support::RunContext* stop_ctx = nullptr);

 private:
  struct Pending {
    ServeRequest request;
    ResponseSink sink;
  };

  void dispatcher_loop();
  void process(Pending& pending);
  void maybe_spill();
  void emit_event(const std::string& line);

  const ServerConfig config_;
  /// Event-sink state is declared before supervisor_ because the supervisor
  /// emits its initial worker-spawn events from inside Server's member
  /// initializer list — these must already be constructed by then.
  std::mutex ev_mu_;
  ResponseSink event_sink_;                 ///< guarded by ev_mu_
  std::vector<std::string> event_backlog_;  ///< guarded by ev_mu_
  /// Declared before pool_ on purpose: the initial worker pool forks in the
  /// constructor while this process is still single-threaded, and outlives
  /// the pool threads that call into it.
  std::unique_ptr<Supervisor> supervisor_;
  support::ThreadPool pool_;
  ResultCache cache_;
  CalibrationCache calibrations_;
  std::vector<std::string> warm_warnings_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< wakes the dispatcher
  std::condition_variable cv_done_;   ///< wakes finish() when idle
  std::deque<Pending> queue_;         ///< guarded by mu_
  bool stop_dispatcher_ = false;      ///< guarded by mu_
  bool dispatcher_done_ = false;      ///< guarded by mu_
  ServerStats stats_;                 ///< guarded by mu_
  std::uint64_t results_since_spill_ = 0;  ///< guarded by mu_

  /// Contexts of requests currently executing, so a drain past its
  /// deadline can cancel them cooperatively. Guarded by mu_.
  std::vector<support::RunContext*> active_;

  std::atomic<bool> draining_{false};
  /// Set when the drain deadline passed: queued requests answer SSN-E066
  /// immediately instead of executing.
  std::atomic<bool> drain_expired_{false};
  std::atomic<std::uint64_t> id_seq_{0};
  bool finished_ = false;  ///< finish() already ran (main thread only)

  std::thread dispatcher_;
};

}  // namespace ssnkit::serve
