#include "serve/supervisor.hpp"

#include "serve/worker.hpp"
#include "support/crashclean.hpp"
#include "support/journal.hpp"
#include "support/parallel.hpp"
#include "support/subprocess.hpp"

#include <fstream>
#include <utility>

#include <unistd.h>

namespace ssnkit::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

// --- CrashCorrelation --------------------------------------------------------

int CrashCorrelation::record(std::uint64_t key,
                             const std::string& request_line) {
  std::lock_guard<std::mutex> lock(mu_);
  const int count = ++deaths_[key];
  if (count == threshold_) {
    ++quarantined_;
    if (!journal_path_.empty()) {
      // Append the raw request line: the quarantine file replays directly
      // (`ssnkit serve < quarantine.jsonl`) for offline repro. Plain append
      // is fine — one writer at a time under mu_, and a torn tail after a
      // crash costs a repro line, never correctness.
      std::ofstream out(journal_path_, std::ios::app);
      if (out) out << request_line << "\n";
    }
  }
  return count;
}

bool CrashCorrelation::quarantined(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deaths_.find(key);
  return it != deaths_.end() && it->second >= threshold_;
}

std::size_t CrashCorrelation::quarantined_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

// --- Supervisor --------------------------------------------------------------

Supervisor::Supervisor(const SupervisorConfig& config, EventSink events)
    : config_(config),
      events_(std::move(events)),
      correlation_(config.quarantine_after, config.quarantine_file) {
  const int workers = support::resolve_threads(config_.workers);
  slots_.resize(std::size_t(workers));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < slots_.size(); ++i) spawn_slot_locked(i);
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Supervisor::~Supervisor() { shutdown(); }

double Supervisor::restart_backoff_ms(int consecutive_crashes, double base_ms,
                                      double max_ms) {
  if (consecutive_crashes < 1) consecutive_crashes = 1;
  double backoff = base_ms;
  for (int i = 1; i < consecutive_crashes && backoff < max_ms; ++i)
    backoff *= 2.0;
  return backoff < max_ms ? backoff : max_ms;
}

void Supervisor::emit(const std::string& line) {
  if (events_) events_(line);
}

bool Supervisor::spawn_slot_locked(std::size_t index) {
  Slot& slot = slots_[index];
  // The child inherits every other worker's parent-end fd across fork;
  // close them so EOF semantics stay one-to-one (a worker's death must
  // surface as EOF on exactly its own socketpair).
  std::vector<int> other_fds;
  for (const Slot& s : slots_)
    if (s.fd >= 0) other_fds.push_back(s.fd);
  support::ChildLimits limits;
  limits.mem_limit_mb = config_.mem_limit_mb;
  limits.cpu_limit_s = config_.cpu_limit_s;
  support::ChildProcess child;
  std::string err;
  const bool ok = support::spawn_child(
      [other_fds](int fd) {
        for (int ofd : other_fds) ::close(ofd);
        return worker_main(fd);
      },
      limits, child, err);
  if (!ok) {
    slot.state = SlotState::kDead;
    slot.consecutive_crashes += 1;
    slot.respawn_at = Clock::now() + ms_duration(restart_backoff_ms(
                          slot.consecutive_crashes, config_.backoff_base_ms,
                          config_.backoff_max_ms));
    emit("{\"event\":\"warning\",\"code\":\"SSN-W075\",\"message\":\"worker "
         "spawn failed (slot " + std::to_string(index) + "): " +
         json_escape(err) + "\"}");
    return false;
  }
  slot.pid = child.pid;
  slot.fd = child.fd;
  slot.kill_slot = support::crash_kill_register(child.pid);
  slot.state = SlotState::kIdle;
  slot.timed_out = false;
  slot.drain_killed = false;
  slot.kill_sent = false;
  slot.has_kill_at = false;
  slot.inbuf.clear();
  counters_.spawns += 1;
  emit("{\"event\":\"worker-spawn\",\"slot\":" + std::to_string(index) +
       ",\"pid\":" + std::to_string(child.pid) + "}");
  return true;
}

double Supervisor::mark_dead_locked(Slot& slot) {
  if (slot.fd >= 0) ::close(slot.fd);
  slot.fd = -1;
  support::crash_kill_unregister(slot.kill_slot);
  slot.kill_slot = -1;
  slot.pid = -1;
  slot.state = SlotState::kDead;
  slot.has_kill_at = false;
  slot.kill_sent = false;
  slot.inbuf.clear();
  slot.consecutive_crashes += 1;
  const double backoff = restart_backoff_ms(
      slot.consecutive_crashes, config_.backoff_base_ms, config_.backoff_max_ms);
  slot.respawn_at = Clock::now() + ms_duration(backoff);
  return backoff;
}

void Supervisor::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state == SlotState::kBusy && slot.has_kill_at &&
          !slot.kill_sent && now >= slot.kill_at) {
        // Non-cooperative hang (or a solve that ignored its cooperative
        // stop): end it with the one signal nothing can block. The
        // executor blocked on this worker observes EOF and types E068.
        slot.timed_out = true;
        slot.kill_sent = true;
        support::kill_child(slot.pid);
      }
      if (slot.state == SlotState::kDead && slot.pid < 0 &&
          now >= slot.respawn_at) {
        if (spawn_slot_locked(i)) cv_idle_.notify_all();
      }
    }
    cv_idle_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

WorkerOutcome Supervisor::execute(const ServeRequest& request,
                                  double deadline_s) {
  const std::uint64_t key = cache_key(request);
  if (correlation_.quarantined(key)) {
    WorkerOutcome out;
    out.status = WorkerOutcome::Status::kQuarantined;
    out.detail = "request quarantined: cache key " + support::hex_u64(key) +
                 " has killed " + std::to_string(correlation_.threshold()) +
                 " workers";
    return out;
  }
  const std::string line = render_request(request);

  // A worker can die *between* requests (delayed rlimit kill, spawn flake);
  // a request that never reached a worker is retried on another slot
  // instead of being blamed on the key. Bounded so a fully wedged pool
  // still resolves typed.
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::size_t index = slots_.size();
    long pid = -1;
    int fd = -1;
    std::string* inbuf = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_idle_.wait(lock, [&] {
        if (stop_) return true;
        for (std::size_t i = 0; i < slots_.size(); ++i)
          if (slots_[i].state == SlotState::kIdle) {
            index = i;
            return true;
          }
        return false;
      });
      if (stop_) break;
      Slot& slot = slots_[index];
      slot.state = SlotState::kBusy;
      slot.timed_out = false;
      slot.drain_killed = false;
      slot.kill_sent = false;
      slot.has_kill_at = deadline_s > 0.0;
      if (slot.has_kill_at)
        slot.kill_at = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(deadline_s +
                                                         config_.grace_s));
      slot.inbuf.clear();
      pid = slot.pid;
      fd = slot.fd;
      inbuf = &slot.inbuf;  // executor-owned while kBusy
    }

    const bool wrote = support::write_line(fd, line);
    std::string response;
    auto status = support::ReadLineStatus::kEof;
    if (wrote)
      status = support::read_line(fd, *inbuf, response,
                                  Clock::time_point::max());

    if (status == support::ReadLineStatus::kLine) {
      ResponseView view;
      if (split_response_line(response, view)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          Slot& slot = slots_[index];
          slot.state = SlotState::kIdle;
          slot.has_kill_at = false;
          slot.consecutive_crashes = 0;  // a served request proves health
        }
        cv_idle_.notify_one();
        WorkerOutcome out;
        out.status = view.ok ? WorkerOutcome::Status::kOk
                             : WorkerOutcome::Status::kError;
        out.response = response;
        out.fragment = view.fragment;
        out.cancelled = view.cancelled;
        return out;
      }
      // A worker that emits garbage has corrupted state: same treatment as
      // a crash (the kill below makes the blocking reap safe).
      support::kill_child(pid);
    } else if (status == support::ReadLineStatus::kError) {
      support::kill_child(pid);
    }

    // Death path: EOF, read error, or garbage. Reap, schedule respawn,
    // attribute, type.
    support::ExitStatus es;
    support::wait_child(pid, es, /*block=*/true);
    bool was_timeout = false;
    bool was_drain = false;
    bool stopping = false;
    double backoff_ms = 0.0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = slots_[index];
      was_timeout = slot.timed_out;
      was_drain = slot.drain_killed;
      stopping = stop_;
      if (wrote && !was_drain && !stopping) {
        if (was_timeout)
          counters_.timeouts += 1;
        else
          counters_.crashes += 1;
      }
      backoff_ms = mark_dead_locked(slot);
    }
    emit("{\"event\":\"warning\",\"code\":\"SSN-W075\",\"message\":\"worker " +
         std::to_string(pid) + " (slot " + std::to_string(index) +
         ") died: " + json_escape(support::describe_exit(es)) +
         "; restart in " + std::to_string(int(backoff_ms)) + " ms\"}");

    if (was_drain || stopping) break;  // typed SSN-E066 by the caller
    if (!wrote) continue;  // never accepted the request: not the key's fault

    const int count = correlation_.record(key, line);
    if (count == config_.quarantine_after)
      emit("{\"event\":\"warning\",\"code\":\"SSN-W076\",\"message\":\"cache "
           "key " + support::hex_u64(key) + " quarantined after " +
           std::to_string(count) + " worker deaths\"}");

    WorkerOutcome out;
    if (was_timeout) {
      out.status = WorkerOutcome::Status::kWorkerTimeout;
      out.detail = "worker exceeded its " + std::to_string(deadline_s) +
                   " s deadline (+" + std::to_string(config_.grace_s) +
                   " s grace) and was killed";
    } else {
      out.status = WorkerOutcome::Status::kWorkerCrashed;
      out.detail = "worker died mid-request: " + support::describe_exit(es);
    }
    return out;
  }

  WorkerOutcome out;
  out.status = WorkerOutcome::Status::kStopped;
  out.detail = "supervisor stopping";
  return out;
}

void Supervisor::kill_inflight() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.state != SlotState::kBusy) continue;
    slot.drain_killed = true;
    slot.kill_sent = true;
    support::kill_child(slot.pid);
  }
}

void Supervisor::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Unblock executors stuck on busy workers: without their SIGKILL the
    // socketpair never EOFs. (The server guarantees no new execute() calls
    // race shutdown — its pool is joined first.)
    for (Slot& slot : slots_) {
      if (slot.state == SlotState::kBusy) {
        slot.drain_killed = true;
        slot.kill_sent = true;
        support::kill_child(slot.pid);
      }
    }
  }
  cv_idle_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.pid > 0) {
      support::kill_child(slot.pid);
      support::ExitStatus es;
      support::wait_child(slot.pid, es, /*block=*/true);
    }
    if (slot.fd >= 0) ::close(slot.fd);
    slot.fd = -1;
    support::crash_kill_unregister(slot.kill_slot);
    slot.kill_slot = -1;
    slot.pid = -1;
    slot.state = SlotState::kDead;
  }
}

std::vector<long> Supervisor::worker_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<long> pids;
  for (const Slot& slot : slots_)
    if (slot.pid > 0) pids.push_back(slot.pid);
  return pids;
}

std::size_t Supervisor::busy_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t busy = 0;
  for (const Slot& slot : slots_)
    if (slot.state == SlotState::kBusy) ++busy;
  return busy;
}

Supervisor::Counters Supervisor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace ssnkit::serve
