// AF_UNIX stream transport for the serve daemon: a single poll() loop that
// accepts connections, splits their byte streams into request lines for
// Server::submit_line, and flushes response lines back. Worker threads
// never touch a socket — they append to a per-connection output buffer and
// nudge the loop through a self-pipe, so all fd lifecycle stays on one
// thread.
//
// Robustness:
//   - per-connection input line cap (a client streaming an unbounded line
//     is answered with SSN-E063 and disconnected),
//   - per-connection output cap (a client that stops reading while
//     responses pile up is dropped instead of growing the daemon's RSS),
//   - a connection closing mid-request is fine: its pending responses are
//     discarded at the buffer, the computation is not disturbed,
//   - on stop_ctx cancel (SIGTERM via the CLI's watcher): stop accepting,
//     unlink the socket path, drain the server (every accepted request
//     still answered), flush the remaining bytes to connected clients, then
//     return 0 — the clean-drain exit the smoke test asserts on.
//
// POSIX-only, like the daemon itself; the header compiles everywhere but
// serve_unix_socket returns an error on _WIN32.
#pragma once

#include "serve/server.hpp"
#include "support/runcontext.hpp"

#include <cstddef>
#include <string>

namespace ssnkit::serve {

// ssn-units: flush_grace_s=s
struct SocketOptions {
  std::string path;                         ///< filesystem socket path
  std::size_t max_line_bytes = 1 << 20;     ///< input cap per request line
  std::size_t max_buffered_bytes = 4 << 20; ///< output cap per connection
  int poll_interval_ms = 100;               ///< stop_ctx poll granularity
  double flush_grace_s = 2.0;               ///< post-drain flush budget
};

/// Run the accept/read/write loop until `stop_ctx` trips (or `server`
/// starts draining for another reason), then drain and flush. Returns 0 on
/// a clean drain, 1 on a setup failure (bad path, bind/listen error) with a
/// one-line reason on `err`.
int serve_unix_socket(Server& server, const SocketOptions& options,
                      const support::RunContext* stop_ctx, std::string& err);

}  // namespace ssnkit::serve
