// The common parameter set every closed-form SSN model consumes: how many
// drivers switch, the ground parasitics they share, the input ramp, and the
// fitted ASDM device.
#pragma once

#include "devices/asdm.hpp"

// Dimensions for the SSN-L011 units pass (docs/STATIC_ANALYSIS.md): the
// scenario's fields and derived figures. beta = N*L*S is V^2/A so that
// V_inf = K*beta comes out in volts.
// ssn-units: inductance=H, capacitance=F, slope=V/s, vdd=V, k=A/V, lambda=1
// ssn-units: n_drivers=1
// ssn-units: vx=V, t_on=s, t_ramp_end=s, active_ramp=s, beta=V^2/A
// ssn-units: v_inf=V, critical_capacitance=F

namespace ssnkit::core {

/// One simultaneous-switching event:
///   N identical drivers, input ramp v_in(t) = S*t from 0 to vdd,
///   shared ground inductance L and (optionally) pad capacitance C.
struct SsnScenario {
  int n_drivers = 8;          ///< N
  double inductance = 5e-9;   ///< L [H]
  double capacitance = 0.0;   ///< C [F]; 0 selects the L-only analysis
  double slope = 1.8e10;      ///< input slope S [V/s]
  double vdd = 1.8;           ///< supply / ramp top [V]
  devices::AsdmParams device; ///< fitted K, lambda, V_x

  void validate() const;

  /// Noise onset: the time the ramp reaches V_x (the device turns on).
  double t_on() const { return device.vx / slope; }
  /// End of the input ramp, t_r = vdd / S.
  double t_ramp_end() const { return vdd / slope; }
  /// Ramp duration from turn-on to ramp end: (vdd - V_x)/S.
  double active_ramp() const { return (vdd - device.vx) / slope; }

  /// The paper's circuit-oriented figure beta = N*L*S (Eqn 9). Together
  /// with the process constants (K, lambda, V_x, vdd) it fully determines
  /// the L-only maximum SSN -- N, L and S are interchangeable.
  double beta() const { return double(n_drivers) * inductance * slope; }

  /// Asymptote of the noise: V_inf = N*L*K*S = K*beta.
  double v_inf() const { return device.k * beta(); }

  /// Critical pad capacitance (Eqn 27): the LC system is under-damped for
  /// C > C_crit = (N*K*lambda)^2 * L / 4. Quadratic in N: small driver
  /// counts are typically under-damped, large counts over-damped.
  double critical_capacitance() const;

  /// Copy with a different driver count / capacitance (sweep helpers).
  SsnScenario with_drivers(int n) const;
  SsnScenario with_capacitance(double c) const;
  SsnScenario with_inductance(double l) const;
  SsnScenario with_slope(double s) const;
};

}  // namespace ssnkit::core
